// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus throughput benchmarks of the simulator itself. The figure
// benchmarks run reduced-size sweeps per iteration and report the
// figure's key series as custom metrics (normalized to w/o CC, exactly
// like the paper); run cmd/ccnvm-bench for the full-size tables.
package ccnvm_test

import (
	"fmt"
	"testing"

	"ccnvm"
)

// figOptions keeps the per-iteration cost of the figure benchmarks
// manageable while preserving the figures' shapes: the three most
// write-intensive stand-ins at a trace length long past the LLC
// warm-up, so write-back traffic (the figures' subject) is realistic.
// Run cmd/ccnvm-bench -ops 300000 for the full eight-workload tables.
func figOptions() ccnvm.EvalOptions {
	return ccnvm.EvalOptions{Ops: 60000, Benchmarks: []string{"lbm", "libquantum", "gcc"}}
}

// BenchmarkFig5aIPC regenerates Figure 5(a): system IPC of SC, Osiris
// Plus, cc-NVM w/o DS and cc-NVM across the eight SPEC stand-ins,
// normalized to w/o CC. Reported metrics are the figure's "average"
// bars.
func BenchmarkFig5aIPC(b *testing.B) {
	var f *ccnvm.Fig5
	for i := 0; i < b.N; i++ {
		var err error
		f, err = ccnvm.RunFig5(figOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range []string{"sc", "osiris", "ccnvm-wods", "ccnvm"} {
		b.ReportMetric(f.AvgNormIPC[d], d+"_ipc")
	}
}

// BenchmarkFig5bWrites regenerates Figure 5(b): NVM write traffic
// normalized to w/o CC.
func BenchmarkFig5bWrites(b *testing.B) {
	var f *ccnvm.Fig5
	for i := 0; i < b.N; i++ {
		var err error
		f, err = ccnvm.RunFig5(figOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range []string{"sc", "osiris", "ccnvm-wods", "ccnvm"} {
		b.ReportMetric(f.AvgNormWrite[d], d+"_wr")
	}
}

// BenchmarkTextSCOverhead regenerates the §2.3 motivation numbers: the
// naive strict-consistency approach's performance loss and write
// amplification versus the baseline without crash consistency (paper:
// 41.4% and 5.5x).
func BenchmarkTextSCOverhead(b *testing.B) {
	var h ccnvm.Headline
	for i := 0; i < b.N; i++ {
		f, err := ccnvm.RunFig5(figOptions())
		if err != nil {
			b.Fatal(err)
		}
		h = f.Headline()
	}
	b.ReportMetric(h.SCIPCDrop*100, "sc_ipc_loss_pct")
	b.ReportMetric(h.SCWriteFactor, "sc_write_factor")
}

// BenchmarkHeadlineClaims regenerates the abstract's summary: cc-NVM
// vs Osiris Plus IPC gain (paper: 20.4%) and extra write traffic
// (paper: 29.6%), plus cc-NVM's loss vs the baseline (18.7% / 39%).
func BenchmarkHeadlineClaims(b *testing.B) {
	var h ccnvm.Headline
	for i := 0; i < b.N; i++ {
		f, err := ccnvm.RunFig5(figOptions())
		if err != nil {
			b.Fatal(err)
		}
		h = f.Headline()
	}
	b.ReportMetric(h.CCNVMvsOsirisUp*100, "ccnvm_vs_osiris_ipc_pct")
	b.ReportMetric(h.CCNVMExtraWr*100, "ccnvm_vs_osiris_wr_pct")
	b.ReportMetric(h.CCNVMIPCDrop*100, "ccnvm_ipc_loss_pct")
	b.ReportMetric(h.CCNVMWriteOver*100, "ccnvm_wr_over_pct")
}

// BenchmarkFig6aUpdateLimit regenerates Figure 6(a): sensitivity of
// cc-NVM's IPC and write traffic to the update-times limit N
// (4..64, M=64). Reported metrics are cc-NVM's endpoints.
func BenchmarkFig6aUpdateLimit(b *testing.B) {
	o := figOptions()
	o.Benchmarks = []string{"lbm"}
	var f *ccnvm.Fig6
	for i := 0; i < b.N; i++ {
		var err error
		f, err = ccnvm.RunFig6a(o, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := f.Points["ccnvm"]
	b.ReportMetric(pts[0].NormWrite, "wr_at_n4")
	b.ReportMetric(pts[len(pts)-1].NormWrite, "wr_at_n64")
	b.ReportMetric(pts[0].NormIPC, "ipc_at_n4")
	b.ReportMetric(pts[len(pts)-1].NormIPC, "ipc_at_n64")
}

// BenchmarkFig6bQueueEntries regenerates Figure 6(b): sensitivity to
// the dirty address queue entries M (32..64, N=16).
func BenchmarkFig6bQueueEntries(b *testing.B) {
	o := figOptions()
	o.Benchmarks = []string{"lbm"}
	var f *ccnvm.Fig6
	for i := 0; i < b.N; i++ {
		var err error
		f, err = ccnvm.RunFig6b(o, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := f.Points["ccnvm"]
	b.ReportMetric(pts[0].NormIPC, "ipc_at_m32")
	b.ReportMetric(pts[len(pts)-1].NormIPC, "ipc_at_m64")
	b.ReportMetric(pts[0].NormWrite, "wr_at_m32")
	b.ReportMetric(pts[len(pts)-1].NormWrite, "wr_at_m64")
}

// BenchmarkSimThroughput measures the simulator's own speed: simulated
// memory operations per wall-clock second for each design.
func BenchmarkSimThroughput(b *testing.B) {
	for _, d := range ccnvm.Designs() {
		b.Run(d, func(b *testing.B) {
			p, err := ccnvm.ProfileByName("gcc")
			if err != nil {
				b.Fatal(err)
			}
			g, err := ccnvm.NewGenerator(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			ops := ccnvm.CollectOps(g, 20000)
			var r ccnvm.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := ccnvm.NewMachine(ccnvm.Config{Design: d})
				if err != nil {
					b.Fatal(err)
				}
				r = m.Run("gcc", ops)
			}
			b.ReportMetric(float64(len(ops)*b.N)/b.Elapsed().Seconds(), "simops/s")
			b.ReportMetric(r.Sec.MemoHitRatio(), "memohit")
		})
	}
}

// BenchmarkRecovery measures the four-step crash recovery over images
// of growing footprint.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{20000, 60000} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			p, err := ccnvm.ProfileByName("lbm")
			if err != nil {
				b.Fatal(err)
			}
			g, err := ccnvm.NewGenerator(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			ops := ccnvm.CollectOps(g, n)
			m, err := ccnvm.NewMachine(ccnvm.Config{Design: "ccnvm"})
			if err != nil {
				b.Fatal(err)
			}
			_, img := m.RunWithCrash("lbm", ops, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := ccnvm.Recover(img)
				if !rep.Clean() {
					b.Fatal("clean image flagged")
				}
			}
			b.ReportMetric(float64(img.Image.Store.Len()), "nvm_lines")
		})
	}
}

// BenchmarkRecoveryMatrix regenerates the §4.4 capability table: every
// design crashed under every attack, recovered and judged. The reported
// metric is the fraction of attack scenarios cc-NVM localizes (paper:
// all but the bounded DS replay window, which it still detects).
func BenchmarkRecoveryMatrix(b *testing.B) {
	var m *ccnvm.RecoveryMatrix
	for i := 0; i < b.N; i++ {
		var err error
		m, err = ccnvm.RunRecoveryMatrix(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	located := 0
	for _, v := range m.Verdicts["ccnvm"] {
		if v.String() == "LOCATED" {
			located++
		}
	}
	b.ReportMetric(float64(located), "ccnvm_located")
}

// BenchmarkLifetime regenerates the §5.2 endurance comparison on the
// most write-intensive workload; the metric is SC's hottest-line wear
// relative to cc-NVM's (the lifetime penalty of strict consistency).
func BenchmarkLifetime(b *testing.B) {
	var lt *ccnvm.Lifetime
	for i := 0; i < b.N; i++ {
		var err error
		lt, err = ccnvm.RunLifetime(ccnvm.EvalOptions{Ops: 30000}, "lbm")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lt.MaxWear["sc"])/float64(lt.MaxWear["ccnvm"]), "sc_vs_ccnvm_hotline")
}
