package ccnvm_test

import (
	"testing"

	"ccnvm"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// The full public workflow: build, run, crash, attack, recover.
	m, err := ccnvm.NewMachine(ccnvm.Config{Design: "ccnvm"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ccnvm.ProfileByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ccnvm.NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run("lbm", ccnvm.CollectOps(g, 30000))
	if res.IPC <= 0 || res.NVMWrites.Total() == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	img := m.Crash()
	victim := firstData(t, img)
	if err := ccnvm.SpoofData(img, victim); err != nil {
		t.Fatal(err)
	}
	rep := ccnvm.Recover(img)
	if !rep.Located() || len(rep.Tampered) != 1 || rep.Tampered[0].Addr != victim {
		t.Fatalf("spoof not located: %+v", rep.Tampered)
	}
}

func TestPublicDesignsAndBenchmarks(t *testing.T) {
	if len(ccnvm.Designs()) != 5 {
		t.Fatalf("want 5 designs, got %v", ccnvm.Designs())
	}
	if len(ccnvm.Benchmarks()) != 8 {
		t.Fatalf("want 8 benchmarks, got %v", ccnvm.Benchmarks())
	}
	if ccnvm.DesignLabel("ccnvm") != "cc-NVM" {
		t.Fatal("label mapping broken")
	}
}

func TestPublicRunBenchmark(t *testing.T) {
	r, err := ccnvm.RunBenchmark("osiris", "hmmer", 5000, 2, ccnvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != "osiris" || r.Instructions == 0 {
		t.Fatalf("bad result %+v", r)
	}
}

func TestPublicRecoveryResume(t *testing.T) {
	m, err := ccnvm.NewMachine(ccnvm.Config{Design: "ccnvm"})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ccnvm.ProfileByName("gcc")
	g, _ := ccnvm.NewGenerator(p, 3)
	_, img := m.RunWithCrash("gcc", ccnvm.CollectOps(g, 20000), 20000)
	rep := ccnvm.Recover(img)
	if !rep.Clean() {
		t.Fatalf("clean crash flagged: %+v", rep)
	}
	rec := ccnvm.ApplyRecovery(img, rep)
	if rec.TCB.RootNew != rep.RebuiltRoot || rec.TCB.Nwb != 0 {
		t.Fatal("recovered TCB inconsistent with report")
	}
}

func firstData(t *testing.T, img *ccnvm.CrashImage) ccnvm.Addr {
	t.Helper()
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			return a
		}
	}
	t.Fatal("no data in image")
	return 0
}
