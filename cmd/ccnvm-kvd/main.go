// Command ccnvm-kvd serves one secure KV namespace over TCP: the
// paper's memory-controller stack (encryption, BMT integrity, epoch
// crash consistency) fronted by the storage-engine facade and the
// log-structured KV layer, speaking a JSON-lines protocol.
//
// The simulated NVM lives in process memory, so "power failure" is
// process exit: the crash op captures the crash image, persists it to
// -image, and exits with status 7. Restarting with the same -image
// runs the four-step recovery plus journal replay and serves every
// acknowledged write again. The quit op is the clean variant: settle
// the final epoch, checkpoint, exit 0.
//
// Usage:
//
//	ccnvm-kvd -addr 127.0.0.1:7070 -image /tmp/nvm.img
//	ccnvm-kvd -addr 127.0.0.1:0 -workers 4        # parallel BMT drain
//
// Protocol (one JSON object per line, one response per line):
//
//	{"op":"put","key":"k","val":"v"}
//	{"op":"get","key":"k"}
//	{"op":"batch","ops":[{"op":"put","key":"a","val":"1"},{"op":"del","key":"b"}]}
//	{"op":"snap"} / {"op":"snapget","snap":1,"key":"k"} / {"op":"snaprel","snap":1}
//	{"op":"stats"} / {"op":"flush"} / {"op":"compact"} / {"op":"crash"} / {"op":"quit"}
//
// The compact op runs one log-compaction pass (the admin rung of the
// space-pressure ladder) and returns the refreshed stats, including the
// manifest generation and reclaim counters.
//
// A namespace whose media has degraded to read-only keeps serving: get,
// snapget, stats and snapshot ops succeed, writes come back as
// {"ok":false,"code":"readonly",...} so clients can tell the refusal
// from a failure, and quit still checkpoints and exits 0 — a degraded
// daemon is retired gracefully, never wedged.
//
// Exit status: 0 clean shutdown, 1 setup error, 2 image refused by
// recovery (tampered), 7 induced crash (restart to recover).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"ccnvm"
	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address (port 0 picks a free port)")
	design := flag.String("design", ccnvm.DesignCCNVM, "design for a fresh store: "+strings.Join(ccnvm.AllDesigns(), ", "))
	capacity := flag.Uint64("capacity", 64<<20, "data-region bytes for a fresh store")
	n := flag.Uint64("n", 16, "update limit N (deferred-spreading bound)")
	queue := flag.Int("queue", 64, "WPQ entries")
	workers := flag.Int("workers", 0, "parallel BMT pipeline width (0 = serial)")
	image := flag.String("image", "", "crash-image file: loaded at boot if present, written on crash/quit")
	flag.Parse()

	if err := run(*addr, *design, *capacity, *n, *queue, *workers, *image); err != nil {
		fmt.Fprintln(os.Stderr, "ccnvm-kvd:", err)
		os.Exit(1)
	}
}

func run(addr, design string, capacity, n uint64, queue, workers int, image string) error {
	params := engine.Params{UpdateLimit: n, QueueEntries: queue, Workers: workers}
	var st *store.Store
	if image != "" {
		if _, err := os.Stat(image); err == nil {
			img, err := store.LoadImage(image)
			if err != nil {
				return fmt.Errorf("load image %s: %w", image, err)
			}
			st2, rep, err := store.Reboot(img, store.Options{Params: params})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccnvm-kvd: image refused by recovery: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("recovered %s image: clean=%v lossless=%v\n", img.Design, rep.Clean(), rep.Lossless())
			st = st2
		}
	}
	if st == nil {
		var err error
		st, err = store.Open(store.Options{Design: design, Capacity: capacity, Params: params})
		if err != nil {
			return err
		}
	}
	db, err := kv.Open(st, kv.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("serving %s: %d keys, seq %d\n", st.Design(), db.Stats().Keys, db.Stats().Seq)

	srv := kv.NewServer(db)
	srv.OnShutdown = func(img *engine.CrashImage, clean bool) {
		code := 0
		if !clean {
			code = 7
		}
		if image != "" {
			if err := store.SaveImage(image, img); err != nil {
				fmt.Fprintln(os.Stderr, "ccnvm-kvd: save image:", err)
				os.Exit(1)
			}
		}
		kind := "clean shutdown"
		if !clean {
			kind = "power failure"
		}
		fmt.Printf("%s: image persisted, exit %d\n", kind, code)
		os.Exit(code)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The literal "listening on" line is the readiness handshake the
	// load harness and kv-smoke wait for; keep it stable.
	fmt.Printf("listening on %s\n", ln.Addr())
	return srv.Serve(ln)
}
