// Command ccnvm-bench regenerates the paper's evaluation: Figure 5(a)
// system IPC, Figure 5(b) NVM write traffic, Figure 6(a)/(b) trigger
// sensitivity, and the headline summary claims. Results are printed as
// fixed-width tables normalized to the w/o-CC baseline, matching the
// figures' series.
//
// Usage:
//
//	ccnvm-bench -fig all            # everything (default)
//	ccnvm-bench -fig 5a -ops 500000 # one figure, bigger traces
//	ccnvm-bench -summary            # headline claims only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ccnvm/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a, 5b, 5, 6a, 6b, 6, all")
	summary := flag.Bool("summary", false, "print only the headline claims")
	lifetime := flag.String("lifetime", "", "also print the NVM endurance table for this workload (e.g. lbm)")
	recoveryTab := flag.Bool("recovery", false, "also print the design x attack recovery matrix")
	csvDir := flag.String("csv", "", "also write fig5.csv / fig6a.csv / fig6b.csv into this directory")
	ops := flag.Int("ops", 300000, "memory operations per trace")
	warmup := flag.Int("warmup", 0, "warm-up operations excluded from statistics")
	seed := flag.Int64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
	flag.Parse()

	o := experiments.Options{Ops: *ops, Warmup: *warmup, Seed: *seed, Parallelism: *parallel}
	if *benchList != "" {
		o.Benchmarks = strings.Split(*benchList, ",")
	}

	runFig5 := *summary || *fig == "all" || strings.HasPrefix(*fig, "5")
	runF6a := !*summary && (*fig == "all" || *fig == "6" || *fig == "6a")
	runF6b := !*summary && (*fig == "all" || *fig == "6" || *fig == "6b")

	if runFig5 {
		f5, err := experiments.RunFig5(o)
		if err != nil {
			fatal(err)
		}
		if !*summary && (*fig == "all" || *fig == "5" || *fig == "5a") {
			fmt.Println(f5.IPCTable())
		}
		if !*summary && (*fig == "all" || *fig == "5" || *fig == "5b") {
			fmt.Println(f5.WriteTable())
		}
		fmt.Println(f5.Headline())
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig5.csv"), f5.WriteCSV); err != nil {
				fatal(err)
			}
		}
	}
	if runF6a {
		f6, err := experiments.RunFig6a(o, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f6.Tables())
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig6a.csv"), f6.WriteCSV); err != nil {
				fatal(err)
			}
		}
	}
	if runF6b {
		f6, err := experiments.RunFig6b(o, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f6.Tables())
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig6b.csv"), f6.WriteCSV); err != nil {
				fatal(err)
			}
		}
	}
	if *lifetime != "" {
		lt, err := experiments.RunLifetime(o, *lifetime)
		if err != nil {
			fatal(err)
		}
		fmt.Println(lt.Table(*lifetime))
	}
	if *recoveryTab {
		rm, err := experiments.RunRecoveryMatrix(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rm.Table())
	}
}

// writeCSV creates path and streams one table into it.
func writeCSV(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccnvm-bench:", err)
	os.Exit(1)
}
