// Command ccnvm-bench regenerates the paper's evaluation: Figure 5(a)
// system IPC, Figure 5(b) NVM write traffic, Figure 6(a)/(b) trigger
// sensitivity, and the headline summary claims. Results are printed as
// fixed-width tables normalized to the w/o-CC baseline, matching the
// figures' series. Simulations run in parallel by default (one machine
// per worker); results are bit-identical at any parallelism.
//
// Usage:
//
//	ccnvm-bench -fig all            # everything (default)
//	ccnvm-bench -fig 5a -ops 500000 # one figure, bigger traces
//	ccnvm-bench -summary            # headline claims only
//	ccnvm-bench -fig 5 -json        # machine-readable output
//	ccnvm-bench -fig 5 -cpuprofile cpu.out -parallel 1
//	ccnvm-bench -ledger BENCH_6.json          # measure + pin the perf ledger
//	ccnvm-bench -check . -ops 20000           # regression-gate vs newest BENCH_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"time"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/experiments"
	"ccnvm/internal/perf"
)

// output is the machine-readable (-json) form of a bench run: the
// harness metrics (wall time, simulated-op throughput, memo-table hit
// rates) plus whichever figure datasets were produced.
type output struct {
	WallSeconds float64 `json:"wall_seconds"`
	SimOps      int64   `json:"sim_ops"`        // simulated memory operations, all cells
	OpsPerSec   float64 `json:"ops_per_sec"`    // SimOps / WallSeconds
	Parallelism int     `json:"parallelism"`    // worker count used
	MemoStats   *memo   `json:"memo,omitempty"` // crypto memo-table hit rates (Fig5 cells)

	Fig5     *experiments.Fig5     `json:"fig5,omitempty"`
	Headline *experiments.Headline `json:"headline,omitempty"`
	Fig6a    *experiments.Fig6     `json:"fig6a,omitempty"`
	Fig6b    *experiments.Fig6     `json:"fig6b,omitempty"`
	Lifetime *experiments.Lifetime `json:"lifetime,omitempty"`
}

// memo aggregates the crypto memo-table counters over every Fig5 cell.
type memo struct {
	PadHitRatio     float64 `json:"pad_hit_ratio"`
	DataHitRatio    float64 `json:"data_hmac_hit_ratio"`
	NodeHitRatio    float64 `json:"node_hmac_hit_ratio"`
	DefaultHitRatio float64 `json:"default_line_hit_ratio"`
	Overall         float64 `json:"overall_hit_ratio"`
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5a, 5b, 5, 6a, 6b, 6, all")
	summary := flag.Bool("summary", false, "print only the headline claims")
	lifetime := flag.String("lifetime", "", "also print the NVM endurance table for this workload (e.g. lbm)")
	recoveryTab := flag.Bool("recovery", false, "also print the design x attack recovery matrix")
	csvDir := flag.String("csv", "", "also write fig5.csv / fig6a.csv / fig6b.csv into this directory")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	ops := flag.Int("ops", 300000, "memory operations per trace")
	warmup := flag.Int("warmup", 0, "warm-up operations excluded from statistics")
	seed := flag.Int64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations")
	workers := flag.Int("workers", 0, "per-machine parallel-pipeline width (subtree-sharded BMT/drain workers; 0 or 1 = serial, results identical)")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
	ledgerPath := flag.String("ledger", "", "measure the performance ledger and pin it to this file (e.g. BENCH_6.json), then exit")
	checkDir := flag.String("check", "", "measure a fresh ledger and regression-gate it against the newest BENCH_*.json in this directory, then exit")
	kvConns := flag.Int("kvconns", 1024, "ledger mode: concurrent connections for the KV serving row (0 = skip the KV measurement)")
	kvOps := flag.Int("kvops", 8, "ledger mode: batch requests per KV connection")
	churnMult := flag.Int("churn", 4, "ledger mode: sustained-churn log-capacity multiple (0 = skip the churn measurement)")
	flag.Parse()

	if *ledgerPath != "" || *checkDir != "" {
		runLedger(*ledgerPath, *checkDir, *ops, *seed, *benchList, *kvConns, *kvOps, *churnMult)
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	o := experiments.Options{Ops: *ops, Warmup: *warmup, Seed: *seed, Parallelism: *parallel, Workers: *workers}
	if *benchList != "" {
		o.Benchmarks = strings.Split(*benchList, ",")
	}

	runFig5 := *summary || *fig == "all" || strings.HasPrefix(*fig, "5")
	runF6a := !*summary && (*fig == "all" || *fig == "6" || *fig == "6a")
	runF6b := !*summary && (*fig == "all" || *fig == "6" || *fig == "6b")

	out := output{Parallelism: *parallel}
	start := time.Now()
	if runFig5 {
		f5, err := experiments.RunFig5(o)
		if err != nil {
			fatal(err)
		}
		h := f5.Headline()
		out.Fig5, out.Headline = f5, &h
		out.MemoStats = memoStats(f5)
		// One implicit w/o-CC baseline run joins the matrix when absent.
		out.SimOps += cellOps(f5, o)
		if !*asJSON {
			if !*summary && (*fig == "all" || *fig == "5" || *fig == "5a") {
				fmt.Println(f5.IPCTable())
			}
			if !*summary && (*fig == "all" || *fig == "5" || *fig == "5b") {
				fmt.Println(f5.WriteTable())
			}
			fmt.Println(h)
		}
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig5.csv"), f5.WriteCSV); err != nil {
				fatal(err)
			}
		}
	}
	if runF6a {
		f6, err := experiments.RunFig6a(o, nil)
		if err != nil {
			fatal(err)
		}
		out.Fig6a = f6
		out.SimOps += sweepOps(f6, o)
		if !*asJSON {
			fmt.Println(f6.Tables())
		}
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig6a.csv"), f6.WriteCSV); err != nil {
				fatal(err)
			}
		}
	}
	if runF6b {
		f6, err := experiments.RunFig6b(o, nil)
		if err != nil {
			fatal(err)
		}
		out.Fig6b = f6
		out.SimOps += sweepOps(f6, o)
		if !*asJSON {
			fmt.Println(f6.Tables())
		}
		if *csvDir != "" {
			if err := writeCSV(filepath.Join(*csvDir, "fig6b.csv"), f6.WriteCSV); err != nil {
				fatal(err)
			}
		}
	}
	if *lifetime != "" {
		lt, err := experiments.RunLifetime(o, *lifetime)
		if err != nil {
			fatal(err)
		}
		out.Lifetime = lt
		out.SimOps += int64(len(lt.Designs)) * int64(*ops)
		if !*asJSON {
			fmt.Println(lt.Table(*lifetime))
		}
	}
	if *recoveryTab {
		rm, err := experiments.RunRecoveryMatrix(nil)
		if err != nil {
			fatal(err)
		}
		if !*asJSON {
			fmt.Println(rm.Table())
		}
	}
	out.WallSeconds = time.Since(start).Seconds()
	if out.WallSeconds > 0 {
		out.OpsPerSec = float64(out.SimOps) / out.WallSeconds
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// runLedger is the perf-ledger mode behind -ledger and -check: it runs
// the sequential design x benchmark measurement plus the parallel tree
// kernel (see internal/perf), then either pins the result to a file or
// gates it against the newest committed BENCH_*.json.
func runLedger(ledgerPath, checkDir string, ops int, seed int64, benchList string, kvConns, kvOps, churnMult int) {
	opts := perf.MeasureOptions{Ops: ops, Seed: seed}
	if benchList != "" {
		opts.Benchmarks = strings.Split(benchList, ",")
	}
	l, err := perf.Measure(opts)
	if err != nil {
		fatal(err)
	}
	if kvConns > 0 {
		l.KV, err = perf.MeasureKV(perf.KVOptions{Conns: kvConns, OpsPerConn: kvOps})
		if err != nil {
			fatal(err)
		}
	}
	if churnMult > 0 {
		l.Churn, err = perf.MeasureChurn(perf.ChurnOptions{Multiple: churnMult})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(ledgerSummary(l))
	if ledgerPath != "" {
		if err := l.Save(ledgerPath); err != nil {
			fatal(err)
		}
		fmt.Printf("pinned ledger -> %s\n", ledgerPath)
	}
	if checkDir != "" {
		newest, err := perf.Newest(checkDir)
		if err != nil {
			fatal(err)
		}
		pinned, err := perf.Load(newest)
		if err != nil {
			fatal(err)
		}
		if err := perf.Compare(pinned, l); err != nil {
			fatal(err)
		}
		fmt.Printf("regression gate passed vs %s (tolerance %d%%)\n",
			newest, int(perf.Tolerance*100))
	}
}

// ledgerSummary renders the measurement for humans; the JSON file is
// the canonical record.
func ledgerSummary(l *perf.Ledger) string {
	var b strings.Builder
	fmt.Fprintf(&b, "perf ledger: %s, %d cpu(s), %d ops x %d benchmark(s), seed %d\n",
		l.GoVersion, l.CPUs, l.Ops, len(l.Benchmarks), l.Seed)
	fmt.Fprintf(&b, "  overall: %.0f sim-ops/sec over %.2fs (%.1f allocs/op, memo hit %.3f)\n",
		l.OpsPerSec, l.WallSeconds, l.AllocsPerOp, l.Memo.Overall)
	for _, d := range sortedDesigns(l) {
		fmt.Fprintf(&b, "  %-12s %9.0f ops/sec\n", d, l.Designs[d].OpsPerSec)
	}
	for _, p := range l.Parallel {
		fmt.Fprintf(&b, "  tree kernel workers=%d: %.3fs (%.2fx)\n", p.Workers, p.WallSeconds, p.Speedup)
	}
	if k := l.KV; k != nil {
		fmt.Fprintf(&b, "  kv serving: %d conns x %d batches: %.0f ops/sec, p50 %.0fus p99 %.0fus p999 %.0fus\n",
			k.Conns, k.OpsPerConn, k.OpsPerSec, k.P50us, k.P99us, k.P999us)
	}
	if c := l.Churn; c != nil {
		fmt.Fprintf(&b, "  kv churn: %dx capacity (%d batches, %d passes): %.0f ops/sec, stalled %.3fs\n",
			c.Multiple, c.Batches, c.Passes, c.OpsPerSec, c.StallSeconds)
	}
	return b.String()
}

func sortedDesigns(l *perf.Ledger) []string {
	out := make([]string, 0, len(l.Designs))
	for d := range l.Designs {
		out = append(out, d)
	}
	slices.Sort(out)
	return out
}

// cellOps counts the simulated memory operations behind a Fig5 matrix,
// including the implicit w/o-CC baseline column when it was added.
func cellOps(f *experiments.Fig5, o experiments.Options) int64 {
	designs := len(f.Designs)
	hasBase := false
	for _, d := range f.Designs {
		if d == design.BaselineName() {
			hasBase = true
		}
	}
	if !hasBase {
		designs++
	}
	return int64(designs) * int64(len(f.Benchmarks)) * int64(opsOf(o))
}

// sweepOps counts the simulated operations behind a Fig6 sweep: each
// point runs the plotted designs plus the w/o-CC baseline.
func sweepOps(f *experiments.Fig6, o experiments.Options) int64 {
	if len(f.Designs) == 0 {
		return 0
	}
	points := len(f.Points[f.Designs[0]])
	benches := len(o.Benchmarks)
	if benches == 0 {
		benches = 8
	}
	return int64(points) * int64(len(f.Designs)+1) * int64(benches) * int64(opsOf(o))
}

func opsOf(o experiments.Options) int {
	if o.Ops == 0 {
		return 300000
	}
	return o.Ops
}

// memoStats sums the crypto memo counters over all Fig5 cells.
func memoStats(f *experiments.Fig5) *memo {
	var s engine.SecStats
	for _, row := range f.Cells {
		for _, c := range row {
			s.PadCacheHits += c.Raw.Sec.PadCacheHits
			s.PadCacheMisses += c.Raw.Sec.PadCacheMisses
			s.DataMemoHits += c.Raw.Sec.DataMemoHits
			s.DataMemoMisses += c.Raw.Sec.DataMemoMisses
			s.NodeMemoHits += c.Raw.Sec.NodeMemoHits
			s.NodeMemoMisses += c.Raw.Sec.NodeMemoMisses
			s.DefaultLineHits += c.Raw.Sec.DefaultLineHits
			s.DefaultLineMisses += c.Raw.Sec.DefaultLineMisses
		}
	}
	return &memo{
		PadHitRatio:     ratio(s.PadCacheHits, s.PadCacheMisses),
		DataHitRatio:    ratio(s.DataMemoHits, s.DataMemoMisses),
		NodeHitRatio:    ratio(s.NodeMemoHits, s.NodeMemoMisses),
		DefaultHitRatio: ratio(s.DefaultLineHits, s.DefaultLineMisses),
		Overall:         s.MemoHitRatio(),
	}
}

func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// writeCSV creates path and streams one table into it.
func writeCSV(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccnvm-bench:", err)
	os.Exit(1)
}
