// Command ccnvm-kvload is the concurrent client harness for
// ccnvm-kvd: it opens -conns TCP connections, drives batched writes
// (and optionally point reads) through the JSON-lines protocol, and
// reports throughput plus p50/p99/p999 request latency.
//
// It is also the durability auditor for the kill-mid-batch drill.
// With -log FILE every batch is journaled client-side — an "A" line
// (attempted) flushed before the request is sent, a "C" line
// (committed) after the server acknowledges it. With -crash,
// connection 0 injects a simulated power failure halfway through its
// stream. After the daemon restarts from its image, a second run with
// -verify FILE replays the journal against the recovered namespace
// and enforces the two crash-consistency oracles from the client's
// side of the wire:
//
//   - acked-durable: every key of every "C" batch is served;
//   - batch-atomic: an attempted, unacknowledged batch is either fully
//     visible (committed but the ack was lost to the crash) or fully
//     invisible — never partial.
//
// Requests that the server refuses with a typed retriable code
// ("readonly", "full" — the degradation ladder's refusal rungs) or that
// fail on a transient connection error are retried with exponential
// backoff plus jitter, bounded by -retries attempts and a per-request
// -deadline; the summary counts the retries. Batches are idempotent
// (fixed keys and values per slot), so a resend after a lost ack cannot
// double-apply.
//
// Exit status: 0 ok, 1 setup/usage error, 2 verification failure.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"ccnvm/internal/kv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "kvd address")
	conns := flag.Int("conns", 64, "concurrent connections")
	ops := flag.Int("ops", 100, "requests per connection")
	batch := flag.Int("batch", 1, "puts per batch request")
	valBytes := flag.Int("valbytes", 64, "value size in bytes")
	getFrac := flag.Float64("getfrac", 0, "fraction of requests that are point reads")
	seed := flag.Int64("seed", 1, "workload seed")
	logPath := flag.String("log", "", "journal attempted/committed batches to this file")
	verifyPath := flag.String("verify", "", "verify a journal against the namespace instead of loading")
	crash := flag.Bool("crash", false, "connection 0 injects a power failure mid-stream")
	quit := flag.Bool("quit", false, "send a clean-shutdown quit op after the run")
	retries := flag.Int("retries", 4, "max attempts per request on retriable refusals (readonly/full) and transient connection errors")
	deadline := flag.Duration("deadline", 2*time.Second, "per-request deadline spanning all retry attempts")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	flag.Parse()

	raiseNoFile()
	var err error
	if *verifyPath != "" {
		err = verify(*addr, *conns, *verifyPath)
	} else {
		err = load(*addr, *conns, *ops, *batch, *valBytes, *getFrac, *seed, *logPath, *crash, *quit, *jsonOut, *retries, *deadline)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnvm-kvload:", err)
		os.Exit(1)
	}
}

// raiseNoFile lifts the soft fd limit to the hard one so thousand-
// connection runs don't trip the default 1024.
func raiseNoFile() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < lim.Max {
		lim.Cur = lim.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}

// journal serializes the client-side batch log.
type journal struct {
	mu sync.Mutex
	w  *bufio.Writer
	f  *os.File
}

func (j *journal) record(tag string, keys []string) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := fmt.Fprintf(j.w, "%s %s\n", tag, strings.Join(keys, ",")); err != nil {
		return err
	}
	// Attempt lines must hit the file before the request hits the
	// wire, or a crash could make an applied batch look never-sent.
	return j.w.Flush()
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.w.Flush()
	return j.f.Close()
}

// conn wraps one JSON-lines connection.
type conn struct {
	c net.Conn
	r *bufio.Reader
}

func dial(addr string) (*conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &conn{c: c, r: bufio.NewReader(c)}, nil
}

func (c *conn) do(req kv.Request) (kv.Response, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return kv.Response{}, err
	}
	if _, err := c.c.Write(append(b, '\n')); err != nil {
		return kv.Response{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return kv.Response{}, err
	}
	var resp kv.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return kv.Response{}, err
	}
	return resp, nil
}

// workerResult is one connection's tally.
type workerResult struct {
	lat     []time.Duration
	acked   int
	errors  int
	retries int
	crashed bool
}

// Summary is the run report.
type Summary struct {
	Conns     int     `json:"conns"`
	Requests  int     `json:"requests"`
	Acked     int     `json:"acked"`
	Errors    int     `json:"errors"`
	Retries   int     `json:"retries,omitzero"`
	Crashed   bool    `json:"crashed,omitempty"`
	Millis    int64   `json:"duration_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	P999us    float64 `json:"p999_us"`
}

func load(addr string, conns, ops, batch, valBytes int, getFrac float64, seed int64, logPath string, crash, quit, jsonOut bool, retries int, deadline time.Duration) error {
	var jn *journal
	if logPath != "" {
		f, err := os.Create(logPath)
		if err != nil {
			return err
		}
		jn = &journal{w: bufio.NewWriter(f), f: f}
		defer jn.close()
	}

	results := make([]workerResult, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = worker(addr, i, ops, batch, valBytes, getFrac, seed, jn, crash && i == 0, retries, deadline)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	s := Summary{Conns: conns, Millis: elapsed.Milliseconds()}
	for _, r := range results {
		all = append(all, r.lat...)
		s.Acked += r.acked
		s.Errors += r.errors
		s.Retries += r.retries
		s.Crashed = s.Crashed || r.crashed
	}
	s.Requests = len(all)
	if elapsed > 0 {
		s.OpsPerSec = float64(s.Acked) / elapsed.Seconds()
	}
	slices.Sort(all)
	s.P50us = pctUS(all, 0.50)
	s.P99us = pctUS(all, 0.99)
	s.P999us = pctUS(all, 0.999)

	if quit && !s.Crashed {
		c, err := dial(addr)
		if err != nil {
			return fmt.Errorf("quit dial: %w", err)
		}
		if resp, err := c.do(kv.Request{Op: "quit"}); err != nil || !resp.OK {
			return fmt.Errorf("quit: %+v %v", resp, err)
		}
		c.c.Close()
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Printf("%d conns, %d requests, %d acked, %d errors, %d retries in %v\n", s.Conns, s.Requests, s.Acked, s.Errors, s.Retries, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput %.0f ops/sec, latency p50 %.0fus p99 %.0fus p999 %.0fus\n", s.OpsPerSec, s.P50us, s.P99us, s.P999us)
	if s.Crashed {
		fmt.Println("power failure injected: restart the daemon and re-run with -verify")
	}
	return nil
}

func pctUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*p + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds())
}

// retriable reports whether a typed refusal code is worth retrying: the
// ladder's refusal rungs can clear (a compaction pass frees log space;
// an operator can retire a read-only daemon and restart it), so the
// client backs off instead of failing the workload on first refusal.
func retriable(code string) bool {
	return code == kv.CodeReadOnly || code == kv.CodeFull
}

// doRetry issues one request with the retry policy: up to attempts
// tries, exponential backoff with jitter between them, all bounded by
// one per-request deadline. A transient transport error tears the
// connection down and redials; a retriable refusal keeps it. The final
// refusal (or transport error) is handed back once the budget runs out.
// *cp may be swapped for a fresh connection or nil on return.
func doRetry(cp **conn, addr string, req kv.Request, attempts int, deadline time.Duration, rng *rand.Rand) (kv.Response, int, error) {
	if attempts < 1 {
		attempts = 1
	}
	dl := time.Now().Add(deadline)
	backoff := 2 * time.Millisecond
	retried := 0
	for attempt := 1; ; attempt++ {
		var resp kv.Response
		err := fmt.Errorf("connection down")
		if *cp != nil {
			(*cp).c.SetDeadline(dl)
			resp, err = (*cp).do(req)
		}
		if err == nil && (resp.OK || !retriable(resp.Code)) {
			return resp, retried, nil
		}
		if err != nil && *cp != nil {
			(*cp).c.Close()
			*cp = nil
		}
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		if attempt >= attempts || time.Now().Add(sleep).After(dl) {
			return resp, retried, err
		}
		time.Sleep(sleep)
		backoff *= 2
		retried++
		if *cp == nil {
			if nc, derr := dial(addr); derr == nil {
				*cp = nc
			}
		}
	}
}

func worker(addr string, id, ops, batch, valBytes int, getFrac float64, seed int64, jn *journal, crasher bool, retries int, deadline time.Duration) workerResult {
	var res workerResult
	rng := rand.New(rand.NewSource(seed + int64(id)*7919))
	c, err := dial(addr)
	if err != nil {
		res.errors++
		return res
	}
	defer func() {
		if c != nil {
			c.c.Close()
		}
	}()

	var ackedKeys []string
	for j := 0; j < ops; j++ {
		if crasher && j == ops/2 {
			if c != nil {
				if _, err := c.do(kv.Request{Op: "crash"}); err == nil {
					res.crashed = true
				}
			}
			return res
		}
		var req kv.Request
		var keys []string
		if len(ackedKeys) > 0 && rng.Float64() < getFrac {
			req = kv.Request{Op: "get", Key: ackedKeys[rng.Intn(len(ackedKeys))]}
		} else {
			req = kv.Request{Op: "batch"}
			for b := 0; b < batch; b++ {
				k := fmt.Sprintf("c%d-b%d-k%d", id, j, b)
				keys = append(keys, k)
				req.Ops = append(req.Ops, kv.RequestOp{Op: "put", Key: k, Val: randVal(rng, valBytes)})
			}
			if err := jn.record("A", keys); err != nil {
				res.errors++
				return res
			}
		}
		t0 := time.Now()
		resp, retried, err := doRetry(&c, addr, req, retries, deadline, rng)
		res.retries += retried
		if err != nil {
			// Connection gone for good (e.g. an injected crash):
			// everything in flight was unacknowledged by definition.
			res.errors++
			return res
		}
		res.lat = append(res.lat, time.Since(t0))
		if resp.OK {
			res.acked++
			if keys != nil {
				jn.record("C", keys)
				ackedKeys = append(ackedKeys, keys...)
			}
		} else {
			res.errors++
		}
	}
	return res
}

func randVal(rng *rand.Rand, n int) string {
	const hex = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = hex[rng.Intn(len(hex))]
	}
	return string(b)
}

// verify replays a batch journal against the recovered namespace.
func verify(addr string, conns int, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	type batchRec struct {
		keys  []string
		acked bool
	}
	var batches []batchRec
	index := map[string]int{} // first key -> batch
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		tag, rest, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			continue
		}
		keys := strings.Split(rest, ",")
		switch tag {
		case "A":
			index[keys[0]] = len(batches)
			batches = append(batches, batchRec{keys: keys})
		case "C":
			if i, ok := index[keys[0]]; ok {
				batches[i].acked = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	if conns < 1 {
		conns = 1
	}
	pool := make([]*conn, conns)
	for i := range pool {
		c, err := dial(addr)
		if err != nil {
			return err
		}
		defer c.c.Close()
		pool[i] = c
	}

	var lostAcked, partial, applied, invisible int
	for i, b := range batches {
		c := pool[i%conns]
		present := 0
		for _, k := range b.keys {
			resp, err := c.do(kv.Request{Op: "get", Key: k})
			if err != nil {
				return fmt.Errorf("get %s: %w", k, err)
			}
			if resp.Found {
				present++
			}
		}
		switch {
		case present == len(b.keys):
			applied++
		case present == 0 && !b.acked:
			invisible++
		case b.acked:
			lostAcked++
			fmt.Fprintf(os.Stderr, "LOST ACKED: batch %v has %d/%d keys\n", b.keys, present, len(b.keys))
		default:
			partial++
			fmt.Fprintf(os.Stderr, "PARTIAL BATCH: %v has %d/%d keys\n", b.keys, present, len(b.keys))
		}
	}
	fmt.Printf("verified %d batches: %d applied, %d invisible (unacked), %d lost-acked, %d partial\n",
		len(batches), applied, invisible, lostAcked, partial)
	if lostAcked > 0 || partial > 0 {
		os.Exit(2)
	}
	return nil
}
