// Command ccnvm-trace generates, inspects and converts workload traces.
// Traces are stored in a compact binary format so an experiment's exact
// instruction stream can be archived and replayed byte-identically by
// ccnvm-sim across machines and versions.
//
// Usage:
//
//	ccnvm-trace -gen gcc -ops 500000 -o gcc.trc     # generate and save
//	ccnvm-trace -info gcc.trc                       # summarize a trace
package main

import (
	"flag"
	"fmt"
	"os"

	"ccnvm/internal/mem"
	"ccnvm/internal/trace"
)

func main() {
	gen := flag.String("gen", "", "benchmark profile to generate")
	ops := flag.Int("ops", 300000, "operations to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output trace file (with -gen)")
	info := flag.String("info", "", "trace file to summarize")
	flag.Parse()

	switch {
	case *gen != "" && *out != "":
		if err := generate(*gen, *ops, *seed, *out); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := summarize(*info); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(bench string, ops int, seed int64, out string) error {
	p, err := trace.ProfileByName(bench)
	if err != nil {
		return err
	}
	g, err := trace.NewGenerator(p, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Save(f, trace.Collect(g, ops)); err != nil {
		return err
	}
	fmt.Printf("wrote %d ops of %s (seed %d) to %s\n", ops, bench, seed, out)
	return nil
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ops, err := trace.Parse(f)
	if err != nil {
		return err
	}
	var stores, deps int
	var instrs uint64
	pages := map[mem.Addr]bool{}
	var maxAddr mem.Addr
	for _, op := range ops {
		instrs += uint64(op.Gap) + 1
		if op.Kind == trace.Store {
			stores++
		}
		if op.Dep {
			deps++
		}
		pages[op.Addr/mem.PageSize] = true
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
	}
	fmt.Printf("ops:          %d\n", len(ops))
	fmt.Printf("instructions: %d\n", instrs)
	fmt.Printf("stores:       %d (%.1f%%)\n", stores, 100*float64(stores)/float64(len(ops)))
	fmt.Printf("dep loads:    %d\n", deps)
	fmt.Printf("pages:        %d (footprint %.1f MiB)\n", len(pages), float64(len(pages))*4096/(1<<20))
	fmt.Printf("max address:  %#x\n", uint64(maxAddr))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccnvm-trace:", err)
	os.Exit(1)
}
