// Command ccnvm-sim runs one simulation — a single design on a single
// workload — and dumps the full statistics: IPC, NVM traffic by region,
// cache hit ratios, security-engine activity, draining behaviour and
// controller contention. It is the inspection tool behind the
// aggregated figures of ccnvm-bench.
//
// Usage:
//
//	ccnvm-sim -design ccnvm -benchmark gcc -ops 300000
//	ccnvm-sim -design sc -benchmark lbm -n 8 -m 48
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ccnvm/internal/engine"
	"ccnvm/internal/report"
	"ccnvm/internal/sim"
	"ccnvm/internal/trace"
)

func main() {
	design := flag.String("design", "ccnvm", "design: wocc, sc, osiris, ccnvm-wods, ccnvm, ccnvm-ext")
	bench := flag.String("benchmark", "gcc", "workload: one of the eight SPEC stand-ins")
	ops := flag.Int("ops", 300000, "memory operations")
	seed := flag.Int64("seed", 1, "workload seed")
	n := flag.Uint64("n", 16, "update-times limit N")
	m := flag.Int("m", 64, "dirty address queue entries M")
	capacity := flag.Uint64("capacity", 16<<30, "NVM capacity in bytes")
	traceFile := flag.String("trace", "", "replay a recorded trace file instead of a generated workload")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	flag.Parse()

	cfg := sim.Config{
		Capacity: *capacity,
		Params:   engine.Params{UpdateLimit: *n, QueueEntries: *m},
	}
	var r sim.Result
	var err error
	if *traceFile != "" {
		r, err = runTraceFile(*design, *traceFile, cfg)
	} else {
		r, err = sim.RunBenchmark(*design, *bench, *ops, *seed, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnvm-sim:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "ccnvm-sim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(Render(r))
}

// runTraceFile replays a recorded trace on the chosen design.
func runTraceFile(design, path string, cfg sim.Config) (sim.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return sim.Result{}, err
	}
	defer f.Close()
	ops, err := trace.Parse(f)
	if err != nil {
		return sim.Result{}, err
	}
	cfg.Design = design
	m, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return m.Run(path, ops), nil
}

// Render formats one result as a detailed report.
func Render(r sim.Result) string {
	t := report.NewTable(fmt.Sprintf("%s on %s", sim.DesignLabel(r.Design), r.Workload), "value")
	t.AddRow("instructions", fmt.Sprintf("%d", r.Instructions))
	t.AddRow("cycles", fmt.Sprintf("%d", r.Cycles))
	t.AddRow("IPC", fmt.Sprintf("%.4f", r.IPC))
	t.AddRow("NVM reads", fmt.Sprintf("%d", r.NVMReads))
	t.AddRow("NVM writes total", fmt.Sprintf("%d", r.NVMWrites.Total()))
	t.AddRow("  data", fmt.Sprintf("%d", r.NVMWrites.Data))
	t.AddRow("  hmac", fmt.Sprintf("%d", r.NVMWrites.HMAC))
	t.AddRow("  counter", fmt.Sprintf("%d", r.NVMWrites.Counter))
	t.AddRow("  tree", fmt.Sprintf("%d", r.NVMWrites.Tree))
	t.AddRow("L1 hit ratio", fmt.Sprintf("%.4f", r.L1.HitRatio()))
	t.AddRow("L2 hit ratio", fmt.Sprintf("%.4f", r.L2.HitRatio()))
	t.AddRow("meta hit ratio", fmt.Sprintf("%.4f", r.Meta.HitRatio()))
	t.AddRow("LLC write-backs", fmt.Sprintf("%d", r.Sec.Writebacks))
	t.AddRow("memory reads (engine)", fmt.Sprintf("%d", r.Sec.Reads))
	t.AddRow("HMAC ops", fmt.Sprintf("%d", r.Sec.HMACOps))
	t.AddRow("AES ops", fmt.Sprintf("%d", r.Sec.AESOps))
	t.AddRow("integrity violations", fmt.Sprintf("%d", r.Sec.IntegrityViolations))
	t.AddRow("counter overflows", fmt.Sprintf("%d", r.Sec.CounterOverflows))
	t.AddRow("stale-counter retries", fmt.Sprintf("%d", r.Sec.StaleCounterRetries))
	t.AddRow("drains", fmt.Sprintf("%d", r.Sec.Drains))
	t.AddRow("  queue-full", fmt.Sprintf("%d", r.Sec.DrainQueueFull))
	t.AddRow("  meta-evict", fmt.Sprintf("%d", r.Sec.DrainEvict))
	t.AddRow("  update-limit", fmt.Sprintf("%d", r.Sec.DrainUpdateLimit))
	t.AddRow("drain lines flushed", fmt.Sprintf("%d", r.Sec.DrainLinesFlushed))
	t.AddRow("avg epoch length (wb)", fmt.Sprintf("%.1f", r.AvgEpochLen))
	t.AddRow("wb buffer stalls", fmt.Sprintf("%d", r.Sec.WritebackBufferStalls))
	t.AddRow("WPQ full stalls", fmt.Sprintf("%d", r.Ctrl.WPQFullStalls))
	t.AddRow("max line wear", fmt.Sprintf("%d", r.MaxWear))
	return t.String()
}
