// Command ccnvm-sim runs one simulation — a single design on a single
// workload — and dumps the full statistics: IPC, NVM traffic by region,
// cache hit ratios, security-engine activity, draining behaviour and
// controller contention. It is the inspection tool behind the
// aggregated figures of ccnvm-bench.
//
// -design also accepts a comma-separated list or "all"; multiple
// designs run concurrently (each worker owns a full machine) and report
// in the order given.
//
// Usage:
//
//	ccnvm-sim -design ccnvm -benchmark gcc -ops 300000
//	ccnvm-sim -design sc -benchmark lbm -n 8 -m 48
//	ccnvm-sim -design all -benchmark gcc -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/nvm"
	"ccnvm/internal/report"
	"ccnvm/internal/sim"
	"ccnvm/internal/store"
	"ccnvm/internal/trace"
)

func main() {
	designFlag := flag.String("design", design.CCNVM,
		"design ("+strings.Join(design.Names(), ", ")+"), a comma-separated list, or \"all\" for the paper's five")
	bench := flag.String("benchmark", "gcc", "workload: one of the eight SPEC stand-ins")
	ops := flag.Int("ops", 300000, "memory operations")
	seed := flag.Int64("seed", 1, "workload seed")
	n := flag.Uint64("n", 16, "update-times limit N")
	m := flag.Int("m", 64, "dirty address queue entries M")
	capacity := flag.Uint64("capacity", 16<<30, "NVM capacity in bytes")
	faultSeed := flag.Int64("fault-seed", 1, "media fault model seed")
	faultTorn := flag.Bool("fault-torn", false, "tear WPQ entries at 8-byte word granularity on power failure")
	faultADR := flag.Int("fault-adr", 0, "ADR energy budget in WPQ entries at power failure (0 = unbounded)")
	faultWeak := flag.Int("fault-weak", 0, "weak-line rate in percent: transient read errors healed by retry and scrubbing")
	faultStuck := flag.Int("fault-stuck", 0, "lines stuck permanently at each power failure")
	spares := flag.Int("spares", 0, "finite spare-line pool: arms remap accounting and graceful degradation to read-only (requires -fault-weak or -fault-stuck to consume spares)")
	scrubOps := flag.Int("scrub-ops", 0, "trace ops between scrub passes under a fault model (0 = default)")
	traceFile := flag.String("trace", "", "replay a recorded trace file instead of a generated workload")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulations when multiple designs are given")
	workers := flag.Int("workers", 0, "per-machine parallel-pipeline width (subtree-sharded BMT/drain workers; 0 or 1 = serial, results identical)")
	asJSON := flag.Bool("json", false, "emit the result as JSON (an array when multiple designs are given)")
	flag.Parse()

	cfg := sim.Config{
		Capacity: *capacity,
		Params:   engine.Params{UpdateLimit: *n, QueueEntries: *m, Workers: *workers},
		ScrubOps: *scrubOps,
	}
	// Any non-zero fault axis installs the media fault model; with all
	// axes zero the simulator is the idealized device and its output is
	// bit-identical to earlier releases.
	if *spares > 0 && *faultWeak == 0 && *faultStuck == 0 {
		fatal(fmt.Errorf("-spares %d without -fault-weak or -fault-stuck arms a pool nothing can consume", *spares))
	}
	if *faultTorn || *faultADR > 0 || *faultWeak > 0 || *faultStuck > 0 {
		cfg.Faults = &nvm.FaultModel{
			Seed:         *faultSeed,
			TornWrites:   *faultTorn,
			ADRBudget:    *faultADR,
			WeakLineRate: float64(*faultWeak) / 100,
			StuckLines:   *faultStuck,
			SpareLines:   *spares,
		}
	}
	designs, err := parseDesigns(*designFlag)
	if err != nil {
		fatal(err)
	}

	// A recorded trace is parsed once and replayed read-only by every
	// design's private machine.
	var traceOps []trace.Op
	if *traceFile != "" {
		var err error
		traceOps, err = parseTraceFile(*traceFile)
		if err != nil {
			fatal(err)
		}
	}
	runOne := func(d string) (sim.Result, error) {
		if traceOps != nil {
			c := cfg
			c.Design = d
			mach, err := sim.New(c)
			if err != nil {
				return sim.Result{}, err
			}
			return mach.Run(*traceFile, traceOps), nil
		}
		return sim.RunBenchmark(d, *bench, *ops, *seed, cfg)
	}

	results := make([]sim.Result, len(designs))
	errs := make([]error, len(designs))
	conc := *parallel
	if conc < 1 {
		conc = 1
	}
	if conc > len(designs) {
		conc = len(designs)
	}
	var wg sync.WaitGroup
	in := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range in {
				results[i], errs[i] = runOne(designs[i])
			}
		}()
	}
	for i := range designs {
		in <- i
	}
	close(in)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if len(results) == 1 {
			err = enc.Encode(results[0]) // back-compat: single object
		} else {
			err = enc.Encode(results)
		}
		if err != nil {
			fatal(err)
		}
	} else {
		for _, r := range results {
			fmt.Print(Render(r, cfg.Faults != nil))
		}
	}
	// A machine that ended the run read-only is a distinguished,
	// scriptable outcome: every result was still produced and verified,
	// but the media exhausted its spare pool along the way. Exit 3
	// separates it from success (0) and hard errors (1).
	for _, r := range results {
		if r.Health == store.HealthReadOnly.String() {
			os.Exit(3)
		}
	}
}

// parseDesigns expands the -design flag: a single name, a
// comma-separated list, or "all" for the paper's five designs. Every
// name is validated against the design registry up front, so a typo
// fails fast with the registered names instead of a late engine error.
func parseDesigns(s string) ([]string, error) {
	if s == "all" {
		return sim.Designs(), nil
	}
	var out []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d == "" {
			continue
		}
		if _, ok := design.Lookup(d); !ok {
			return nil, design.UnknownError(d)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-design %q names no designs", s)
	}
	return out, nil
}

// parseTraceFile loads a recorded trace from disk.
func parseTraceFile(path string) ([]trace.Op, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccnvm-sim:", err)
	os.Exit(1)
}

// Render formats one result as a detailed report. The fault section is
// printed only when a fault model was installed, keeping the default
// output identical to earlier releases.
func Render(r sim.Result, faults bool) string {
	t := report.NewTable(fmt.Sprintf("%s on %s", sim.DesignLabel(r.Design), r.Workload), "value")
	t.AddRow("instructions", fmt.Sprintf("%d", r.Instructions))
	t.AddRow("cycles", fmt.Sprintf("%d", r.Cycles))
	t.AddRow("IPC", fmt.Sprintf("%.4f", r.IPC))
	t.AddRow("NVM reads", fmt.Sprintf("%d", r.NVMReads))
	t.AddRow("NVM writes total", fmt.Sprintf("%d", r.NVMWrites.Total()))
	t.AddRow("  data", fmt.Sprintf("%d", r.NVMWrites.Data))
	t.AddRow("  hmac", fmt.Sprintf("%d", r.NVMWrites.HMAC))
	t.AddRow("  counter", fmt.Sprintf("%d", r.NVMWrites.Counter))
	t.AddRow("  tree", fmt.Sprintf("%d", r.NVMWrites.Tree))
	t.AddRow("L1 hit ratio", fmt.Sprintf("%.4f", r.L1.HitRatio()))
	t.AddRow("L2 hit ratio", fmt.Sprintf("%.4f", r.L2.HitRatio()))
	t.AddRow("meta hit ratio", fmt.Sprintf("%.4f", r.Meta.HitRatio()))
	t.AddRow("LLC write-backs", fmt.Sprintf("%d", r.Sec.Writebacks))
	t.AddRow("memory reads (engine)", fmt.Sprintf("%d", r.Sec.Reads))
	t.AddRow("HMAC ops", fmt.Sprintf("%d", r.Sec.HMACOps))
	t.AddRow("AES ops", fmt.Sprintf("%d", r.Sec.AESOps))
	t.AddRow("crypto memo hit ratio", fmt.Sprintf("%.4f", r.Sec.MemoHitRatio()))
	t.AddRow("integrity violations", fmt.Sprintf("%d", r.Sec.IntegrityViolations))
	t.AddRow("counter overflows", fmt.Sprintf("%d", r.Sec.CounterOverflows))
	t.AddRow("stale-counter retries", fmt.Sprintf("%d", r.Sec.StaleCounterRetries))
	t.AddRow("drains", fmt.Sprintf("%d", r.Sec.Drains))
	t.AddRow("  queue-full", fmt.Sprintf("%d", r.Sec.DrainQueueFull))
	t.AddRow("  meta-evict", fmt.Sprintf("%d", r.Sec.DrainEvict))
	t.AddRow("  update-limit", fmt.Sprintf("%d", r.Sec.DrainUpdateLimit))
	t.AddRow("drain lines flushed", fmt.Sprintf("%d", r.Sec.DrainLinesFlushed))
	t.AddRow("avg epoch length (wb)", fmt.Sprintf("%.1f", r.AvgEpochLen))
	t.AddRow("wb buffer stalls", fmt.Sprintf("%d", r.Sec.WritebackBufferStalls))
	t.AddRow("WPQ full stalls", fmt.Sprintf("%d", r.Ctrl.WPQFullStalls))
	t.AddRow("max line wear", fmt.Sprintf("%d", r.MaxWear))
	if faults {
		t.AddRow("read retries", fmt.Sprintf("%d", r.Ctrl.ReadRetries))
		t.AddRow("read retry cycles", fmt.Sprintf("%d", r.Ctrl.ReadRetryCycles))
		t.AddRow("permanent read errors", fmt.Sprintf("%d", r.Ctrl.PermanentReadErrors))
		t.AddRow("scrubbed lines", fmt.Sprintf("%d", r.Ctrl.ScrubbedLines))
		t.AddRow("scrub remapped", fmt.Sprintf("%d", r.Ctrl.ScrubRemapped))
	}
	// The media-management section appears only when the run armed a
	// finite spare pool, so faultless (and infinite-pool) output is
	// byte-identical to earlier releases.
	if r.Spares.Finite() {
		t.AddRow("health", r.Health)
		t.AddRow("spares used", fmt.Sprintf("%d/%d", r.Spares.Used, r.Spares.Total))
		t.AddRow("remaps this boot", fmt.Sprintf("%d", r.Spares.Remaps))
		t.AddRow("remaps refused", fmt.Sprintf("%d", r.Spares.Refused))
		t.AddRow("retry-exhaustion remaps", fmt.Sprintf("%d", r.Ctrl.RetryRemapped))
		t.AddRow("refused writes", fmt.Sprintf("%d", r.Ctrl.RefusedWrites))
		t.AddRow("refused epochs", fmt.Sprintf("%d", r.Ctrl.RefusedEpochs))
		t.AddRow("refused stores", fmt.Sprintf("%d", r.RefusedStores))
	}
	return t.String()
}
