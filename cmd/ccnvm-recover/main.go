// Command ccnvm-recover demonstrates crash recovery and attack
// location (paper §4.4): it runs a workload on a chosen design, crashes
// the machine mid-epoch, optionally injects an integrity attack into
// the NVM image, and then runs the four-step recovery, reporting what
// was detected, what was located, and whether the data survives.
//
// Usage:
//
//	ccnvm-recover -design ccnvm -attack none      # clean crash
//	ccnvm-recover -design ccnvm -attack spoof     # located
//	ccnvm-recover -design ccnvm -attack splice    # located at both blocks
//	ccnvm-recover -design ccnvm -attack replay    # detected via Nwb
//	ccnvm-recover -design ccnvm -attack tree      # located by step 1
//	ccnvm-recover -design osiris -attack replay   # detected, NOT located
//	ccnvm-recover -design ccnvm-ext -attack replay # located to the page (§4.4 ext)
//	ccnvm-recover -design wocc -attack none       # unrecoverable
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ccnvm"
)

func main() {
	design := flag.String("design", ccnvm.DesignCCNVM, "design: "+strings.Join(ccnvm.AllDesigns(), ", "))
	kind := flag.String("attack", "none", "attack: none, spoof, splice, replay, tree")
	bench := flag.String("benchmark", "gcc", "workload")
	ops := flag.Int("ops", 30000, "memory operations before the crash")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*design, *kind, *bench, *ops, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ccnvm-recover:", err)
		os.Exit(1)
	}
}

func run(design, kind, bench string, ops int, seed int64) error {
	p, err := ccnvm.ProfileByName(bench)
	if err != nil {
		return err
	}
	g, err := ccnvm.NewGenerator(p, seed)
	if err != nil {
		return err
	}
	stream := ccnvm.CollectOps(g, ops)

	m, err := ccnvm.NewMachine(ccnvm.Config{Design: design})
	if err != nil {
		return err
	}

	fmt.Printf("running %d ops of %s on %s, then crashing mid-epoch...\n",
		ops, bench, ccnvm.DesignLabel(design))

	// The replay attack of Figure 4 needs a precise window: a snapshot of
	// a block's persistent state followed by further write-backs to the
	// same block inside one epoch (no drain between them). Script that
	// window explicitly; the other attacks just run the trace and crash.
	var early *ccnvm.NVMImage
	var victim ccnvm.Addr
	var img *ccnvm.CrashImage
	if kind == "replay" {
		m.Run(bench, stream)
		// One write-back to a dedicated victim page far outside the
		// workload footprint, then snapshot, then two more write-backs —
		// few enough that no draining trigger separates them from the
		// crash.
		victim = ccnvm.Addr(512 << 20)
		m.Run(bench, writeBackTail(victim, 1))
		early = m.Snapshot()
		m.Run(bench, writeBackTail(victim, 2))
		img = m.Crash()
	} else {
		_, img = m.RunWithCrash(bench, stream, ops)
		victim = firstDataAddr(img)
	}
	fmt.Printf("crash image: %d NVM lines, Nwb=%d\n", img.Image.Store.Len(), img.TCB.Nwb)

	switch kind {
	case "none":
	case "spoof":
		if err := ccnvm.SpoofData(img, victim); err != nil {
			return err
		}
		fmt.Printf("injected: spoofed data block %#x\n", uint64(victim))
	case "splice":
		b := lastDataAddr(img)
		if err := ccnvm.SpliceData(img, victim, b); err != nil {
			return err
		}
		fmt.Printf("injected: spliced blocks %#x <-> %#x\n", uint64(victim), uint64(b))
	case "replay":
		if err := ccnvm.ReplayBlock(img, early, victim); err != nil {
			return err
		}
		fmt.Printf("injected: replayed block %#x (and its HMAC) to an older version\n", uint64(victim))
	case "tree":
		if err := ccnvm.SpoofTreeNode(img, 1, firstTreeIdx(img)); err != nil {
			return err
		}
		fmt.Println("injected: corrupted a level-1 Merkle tree node")
	default:
		return fmt.Errorf("unknown attack %q", kind)
	}

	rep := ccnvm.Recover(img)
	fmt.Println()
	fmt.Println("recovery report:")
	fmt.Printf("  consistent NVM tree:     %s\n", orNone(rep.ConsistentRoot))
	fmt.Printf("  counters recovered:      %d blocks across %d lines (Nretry=%d, Nwb=%d)\n",
		rep.RecoveredBlocks, rep.RecoveredLines, rep.Nretry, rep.Nwb)
	fmt.Printf("  located tree mismatches: %d\n", len(rep.TreeMismatches))
	for _, mm := range rep.TreeMismatches {
		fmt.Printf("    - %s\n", mm)
	}
	fmt.Printf("  located tampered blocks: %d\n", len(rep.Tampered))
	for _, tb := range rep.Tampered {
		fmt.Printf("    - %s\n", tb)
	}
	fmt.Printf("  potential replay:        %v\n", rep.PotentialReplay)
	if len(rep.ReplayedPages) > 0 {
		fmt.Printf("  replayed pages (ext):    %d\n", len(rep.ReplayedPages))
		for _, pg := range rep.ReplayedPages {
			fmt.Printf("    - page at %#x\n", uint64(pg))
		}
	}
	fmt.Println()
	switch {
	case rep.Clean():
		fmt.Println("verdict: CLEAN - tree rebuilt, system resumes with all data intact")
	case rep.Located():
		fmt.Println("verdict: ATTACK LOCATED - only the listed blocks are discarded; the rest of NVM survives")
	default:
		fmt.Println("verdict: ATTACK DETECTED but not locatable - all NVM data must be dropped")
	}
	return nil
}

// writeBackTail builds an op sequence that stores into victim n times,
// forcing each store out to NVM by evicting it through L1/L2 set
// conflicts (32 KiB stride aliases both caches' sets).
func writeBackTail(victim ccnvm.Addr, n int) []ccnvm.Op {
	var ops []ccnvm.Op
	for i := 0; i < n; i++ {
		ops = append(ops, ccnvm.Op{Kind: ccnvm.Store, Addr: victim, Gap: 2})
		for k := 1; k <= 10; k++ {
			ops = append(ops, ccnvm.Op{Kind: ccnvm.Load, Addr: victim + ccnvm.Addr(k*32<<10), Gap: 2})
		}
	}
	return ops
}

func firstDataAddr(img *ccnvm.CrashImage) ccnvm.Addr {
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			return a
		}
	}
	return 0
}

func lastDataAddr(img *ccnvm.CrashImage) ccnvm.Addr {
	var last ccnvm.Addr
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			last = a
		}
	}
	return last
}

func firstTreeIdx(img *ccnvm.CrashImage) uint64 {
	lay := img.Image.Layout
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) >= uint64(lay.TreeBase) && uint64(a) < lay.TotalBytes() {
			if level, idx := lay.NodeAt(a); level == 1 {
				return idx
			}
		}
	}
	return 0
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return "ROOT" + s
}
