// Command ccnvm-recover demonstrates crash recovery and attack
// location (paper §4.4): it runs a workload on a chosen design, crashes
// the machine mid-epoch, optionally injects an integrity attack into
// the NVM image, and then runs the four-step recovery, reporting what
// was detected, what was located, and whether the data survives.
//
// With -reboots N the demo also crashes recovery itself: each Apply
// pass is interrupted at its -reboot-every-th persisted recovery write,
// the machine "reboots", and the next recovery resumes from the
// persisted recovery journal instead of restarting blind, until a final
// uninterrupted pass commits.
//
// Usage:
//
//	ccnvm-recover -design ccnvm -attack none      # clean crash
//	ccnvm-recover -design ccnvm -attack spoof     # located
//	ccnvm-recover -design ccnvm -attack splice    # located at both blocks
//	ccnvm-recover -design ccnvm -attack replay    # detected via Nwb
//	ccnvm-recover -design ccnvm -attack tree      # located by step 1
//	ccnvm-recover -design osiris -attack replay   # detected, NOT located
//	ccnvm-recover -design ccnvm-ext -attack replay # located to the page (§4.4 ext)
//	ccnvm-recover -design ccnvm -reboots 4        # crash recovery itself, 4 times
//	ccnvm-recover -design ccnvm -json             # machine-readable report
//
// Exit status: 0 when the report is clean or lossless, 1 on usage or
// setup errors, 2 when recovery reports an image that is neither clean
// nor lossless — tampering was detected and the machine must not
// resume on this image unexamined.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ccnvm"
)

func main() {
	design := flag.String("design", ccnvm.DesignCCNVM, "design: "+strings.Join(ccnvm.AllDesigns(), ", "))
	kind := flag.String("attack", "none", "attack: none, spoof, splice, replay, tree")
	bench := flag.String("benchmark", "gcc", "workload")
	ops := flag.Int("ops", 30000, "memory operations before the crash")
	seed := flag.Int64("seed", 1, "workload seed")
	reboots := flag.Int("reboots", 0, "crash recovery itself this many times before letting it finish")
	revery := flag.Int("reboot-every", 2, "strike the k-th persisted recovery write of each interrupted pass")
	jsonOut := flag.Bool("json", false, "emit the outcome as JSON")
	flag.Parse()

	out, err := run(*design, *kind, *bench, *ops, *seed, *reboots, *revery, !*jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnvm-recover:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ccnvm-recover:", err)
			os.Exit(1)
		}
	}
	if !out.Report.Clean() && !out.Report.Lossless() {
		os.Exit(2)
	}
}

// rebootPass records one interrupted recovery pass of the -reboots loop.
type rebootPass struct {
	Pass      int  `json:"pass"`
	Plan      int  `json:"plan"`   // line writes the pass planned
	Writes    int  `json:"writes"` // persisted writes issued (incl. the struck one)
	Committed bool `json:"committed"`
	Resumed   bool `json:"resumed"` // the re-entered recovery resumed from the journal
}

// outcome is the machine-readable result of one demo run.
type outcome struct {
	Design  string                `json:"design"`
	Attack  string                `json:"attack"`
	Reboots int                   `json:"reboots,omitempty"`
	Passes  []rebootPass          `json:"passes,omitempty"`
	Report  *ccnvm.RecoveryReport `json:"report"`
	Verdict string                `json:"verdict"`
}

func run(design, kind, bench string, ops int, seed int64, reboots, revery int, chatty bool) (*outcome, error) {
	say := func(format string, args ...interface{}) {
		if chatty {
			fmt.Printf(format, args...)
		}
	}
	p, err := ccnvm.ProfileByName(bench)
	if err != nil {
		return nil, err
	}
	g, err := ccnvm.NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	stream := ccnvm.CollectOps(g, ops)

	m, err := ccnvm.NewMachine(ccnvm.Config{Design: design})
	if err != nil {
		return nil, err
	}

	say("running %d ops of %s on %s, then crashing mid-epoch...\n",
		ops, bench, ccnvm.DesignLabel(design))

	// The replay attack of Figure 4 needs a precise window: a snapshot of
	// a block's persistent state followed by further write-backs to the
	// same block inside one epoch (no drain between them). Script that
	// window explicitly; the other attacks just run the trace and crash.
	var early *ccnvm.NVMImage
	var victim ccnvm.Addr
	var img *ccnvm.CrashImage
	if kind == "replay" {
		m.Run(bench, stream)
		// One write-back to a dedicated victim page far outside the
		// workload footprint, then snapshot, then two more write-backs —
		// few enough that no draining trigger separates them from the
		// crash.
		victim = ccnvm.Addr(512 << 20)
		m.Run(bench, writeBackTail(victim, 1))
		early = m.Snapshot()
		m.Run(bench, writeBackTail(victim, 2))
		img = m.Crash()
	} else {
		_, img = m.RunWithCrash(bench, stream, ops)
		victim = firstDataAddr(img)
	}
	say("crash image: %d NVM lines, Nwb=%d\n", img.Image.Store.Len(), img.TCB.Nwb)

	switch kind {
	case "none":
	case "spoof":
		if err := ccnvm.SpoofData(img, victim); err != nil {
			return nil, err
		}
		say("injected: spoofed data block %#x\n", uint64(victim))
	case "splice":
		b := lastDataAddr(img)
		if err := ccnvm.SpliceData(img, victim, b); err != nil {
			return nil, err
		}
		say("injected: spliced blocks %#x <-> %#x\n", uint64(victim), uint64(b))
	case "replay":
		if err := ccnvm.ReplayBlock(img, early, victim); err != nil {
			return nil, err
		}
		say("injected: replayed block %#x (and its HMAC) to an older version\n", uint64(victim))
	case "tree":
		if err := ccnvm.SpoofTreeNode(img, 1, firstTreeIdx(img)); err != nil {
			return nil, err
		}
		say("injected: corrupted a level-1 Merkle tree node\n")
	default:
		return nil, fmt.Errorf("unknown attack %q", kind)
	}

	rep := ccnvm.Recover(img)
	out := &outcome{Design: design, Attack: kind, Reboots: reboots, Report: rep}

	// The reboot loop: crash recovery itself, reboot, resume, repeat.
	if reboots > 0 {
		say("\nreboot loop: striking every %d-th persisted recovery write, up to %d reboots\n", revery, reboots)
		done := false
		for pass := 1; pass <= reboots && !done; pass++ {
			itr := &ccnvm.RecoveryInterrupt{After: revery, Seq: uint64(pass)}
			_, ok := ccnvm.ApplyRecoveryInterrupted(img, rep, itr)
			pr := rebootPass{Pass: pass, Plan: itr.Plan, Writes: itr.Writes, Committed: ok}
			if ok {
				say("  pass %d: committed after %d writes (plan %d lines) — converged early\n",
					pass, itr.Writes, itr.Plan)
				done = true
			} else {
				rep = ccnvm.Recover(img)
				pr.Resumed = rep.Resumed
				say("  pass %d: power failed at write %d of a %d-line plan; journal active=%v, recovery resumed=%v\n",
					pass, itr.Writes, itr.Plan, ccnvm.RecoveryJournalActive(img), rep.Resumed)
			}
			out.Passes = append(out.Passes, pr)
		}
		if !done {
			itr := &ccnvm.RecoveryInterrupt{Seq: uint64(reboots + 1)}
			_, ok := ccnvm.ApplyRecoveryInterrupted(img, rep, itr)
			out.Passes = append(out.Passes, rebootPass{Pass: reboots + 1, Plan: itr.Plan, Writes: itr.Writes, Committed: ok})
			say("  final pass: committed=%v (plan %d lines); journal active=%v\n",
				ok, itr.Plan, ccnvm.RecoveryJournalActive(img))
		}
		out.Report = rep
	}

	say("\nrecovery report:\n")
	say("  consistent NVM tree:     %s\n", orNone(rep.ConsistentRoot))
	say("  counters recovered:      %d blocks across %d lines (Nretry=%d, Nwb=%d)\n",
		rep.RecoveredBlocks, rep.RecoveredLines, rep.Nretry, rep.Nwb)
	say("  located tree mismatches: %d\n", len(rep.TreeMismatches))
	for _, mm := range rep.TreeMismatches {
		say("    - %s\n", mm)
	}
	say("  located tampered blocks: %d\n", len(rep.Tampered))
	for _, tb := range rep.Tampered {
		say("    - %s\n", tb)
	}
	say("  potential replay:        %v\n", rep.PotentialReplay)
	if len(rep.ReplayedPages) > 0 {
		say("  replayed pages (ext):    %d\n", len(rep.ReplayedPages))
		for _, pg := range rep.ReplayedPages {
			say("    - page at %#x\n", uint64(pg))
		}
	}
	switch {
	case rep.Clean():
		out.Verdict = "clean"
		say("\nverdict: CLEAN - tree rebuilt, system resumes with all data intact\n")
	case rep.Located():
		out.Verdict = "located"
		say("\nverdict: ATTACK LOCATED - only the listed blocks are discarded; the rest of NVM survives\n")
	default:
		out.Verdict = "detected"
		say("\nverdict: ATTACK DETECTED but not locatable - all NVM data must be dropped\n")
	}
	return out, nil
}

// writeBackTail builds an op sequence that stores into victim n times,
// forcing each store out to NVM by evicting it through L1/L2 set
// conflicts (32 KiB stride aliases both caches' sets).
func writeBackTail(victim ccnvm.Addr, n int) []ccnvm.Op {
	var ops []ccnvm.Op
	for i := 0; i < n; i++ {
		ops = append(ops, ccnvm.Op{Kind: ccnvm.Store, Addr: victim, Gap: 2})
		for k := 1; k <= 10; k++ {
			ops = append(ops, ccnvm.Op{Kind: ccnvm.Load, Addr: victim + ccnvm.Addr(k*32<<10), Gap: 2})
		}
	}
	return ops
}

func firstDataAddr(img *ccnvm.CrashImage) ccnvm.Addr {
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			return a
		}
	}
	return 0
}

func lastDataAddr(img *ccnvm.CrashImage) ccnvm.Addr {
	var last ccnvm.Addr
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			last = a
		}
	}
	return last
}

func firstTreeIdx(img *ccnvm.CrashImage) uint64 {
	lay := img.Image.Layout
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) >= uint64(lay.TreeBase) && uint64(a) < lay.TotalBytes() {
			if level, idx := lay.NodeAt(a); level == 1 {
				return idx
			}
		}
	}
	return 0
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return "ROOT" + s
}
