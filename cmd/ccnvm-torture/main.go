// Command ccnvm-torture runs the differential crash/attack torture
// matrix: (design x workload x crash point x attack) cells, each
// executed to a crash image, recovered, and checked against the shared
// oracle set (see internal/torture). Failures are minimized by the
// shrinker and printed as one-line repro commands.
//
// Usage:
//
//	ccnvm-torture -seeds 32 -designs all            # full sweep
//	ccnvm-torture -designs ccnvm,sc -attacks spoof  # a slice
//	ccnvm-torture -json                             # machine-readable summary
//	ccnvm-torture -repro 'design=ccnvm,workload=hot,seed=3,ops=160,crash=80,attack=spoof,n=4,m=0'
//	ccnvm-torture -break skip-counter-replay        # prove the oracles bite
//	ccnvm-torture -reboots 4                        # crash recovery itself, re-enter, check convergence
//	ccnvm-torture -reboots 4 -reboot-every 2,3      # choose the strike strides
//	ccnvm-torture -spares 3                         # finite spare pools: heal, degrade, go read-only
//	ccnvm-torture -guided                           # ordering-aware crash points + edge-coverage table
//	ccnvm-torture -kv -reboots 2                    # crash the KV namespace at every write boundary
//	ccnvm-torture -kv -kv-compact 2                 # add the log-compaction crash axis
//	ccnvm-torture -campaign docs/status/durability_report.md  # regenerate the durability report
//	ccnvm-torture -oracles                          # list the invariants
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ccnvm/internal/design"
	"ccnvm/internal/torture"
)

func main() {
	var (
		designs     = flag.String("designs", "all", `comma-separated designs, "all", or "paper"`)
		workloads   = flag.String("workloads", "", "comma-separated workloads (default: all)")
		attacks     = flag.String("attacks", "", `comma-separated attacks incl. "none" (default: all)`)
		seeds       = flag.Int("seeds", 4, "trace seeds per combination")
		ops         = flag.Int("ops", 240, "trace length per cell")
		crashPts    = flag.Int("crashpoints", 3, "crash points per trace")
		faultSeeds  = flag.Int("faultseeds", 0, "media-fault seeds per design/workload, cycled through the fault profiles (0 = no fault cells)")
		reboots     = flag.Int("reboots", 0, "reboot-loop cells: interrupt recovery this many times per cell (0 = no reboot cells)")
		spares      = flag.Int("spares", 0, "finite-spare cells: sweep spare pools from this size down to one line over the weak/stuck fault profiles (0 = no spare cells)")
		rebootEvery = flag.String("reboot-every", "", "comma-separated strike strides for reboot cells (default 2,3,5)")
		budget      = flag.Int("budget", 0, "max cells, evenly sampled after dropping refused cells (0 = run all)")
		guided      = flag.Bool("guided", false, "ordering-aware crash points: profile each trace's persist-ordering graph and schedule one point per distinct edge cut; reports edge coverage vs evenly spaced points")
		kvMode      = flag.Bool("kv", false, "KV-namespace crash cells: sweep every host-write boundary per design and assert atomic batch recovery (-reboots adds the reboot-loop axis)")
		kvBatches   = flag.Int("kv-batches", 5, "batches per KV cell workload")
		kvCompact   = flag.Int("kv-compact", 0, "KV compaction crash axis: also sweep cells that compact after every k-th acked batch (0 = no compact cells)")
		campaign    = flag.String("campaign", "", "run the fixed durability campaign and write the report to this markdown path (JSON artifact written beside it); other matrix flags are ignored")
		parallel    = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "stop dispatching new cells after this duration and report partial results (0 = none)")
		jsonOut     = flag.Bool("json", false, "emit the summary as JSON")
		repro       = flag.String("repro", "", "replay one cell spec and exit")
		breakMode   = flag.String("break", "", "sabotage recovery (modes: "+strings.Join(torture.BrokenModes(), ", ")+")")
		oracles     = flag.Bool("oracles", false, "list the oracles and exit")
		verbose     = flag.Bool("v", false, "print progress")
	)
	flag.Parse()

	if *oracles {
		for _, o := range torture.Oracles() {
			fmt.Printf("%-16s %s\n", o.Name, o.Doc)
		}
		return
	}

	if *campaign != "" {
		if err := runCampaign(*campaign, *parallel); err != nil {
			fatal(err)
		}
		return
	}

	runner := torture.DefaultRunner()
	if *breakMode != "" {
		r, err := torture.BrokenRunner(*breakMode)
		if err != nil {
			fatal(err)
		}
		runner = r
		fmt.Printf("recovery sabotaged: %s (the matrix SHOULD fail)\n", *breakMode)
	}

	if *repro != "" {
		cell, err := torture.ParseCell(*repro)
		if err != nil {
			fatal(err)
		}
		if f := runner.RunCell(cell); f != nil {
			fmt.Printf("FAIL %v\n", f)
			os.Exit(1)
		}
		fmt.Printf("PASS cell %s satisfies every oracle\n", cell.String())
		return
	}

	designList := splitList(*designs, torture.DesignNames(), map[string][]string{"all": torture.DesignNames(), "paper": torture.PaperDesigns()})
	// Fail fast on a typo'd design name before any cell is enumerated,
	// listing the registered names instead of silently running nothing.
	for _, d := range designList {
		if _, ok := design.Lookup(d); !ok {
			fatal(design.UnknownError(d))
		}
	}
	strides, err := parseStrides(*rebootEvery)
	if err != nil {
		fatal(err)
	}
	if *kvMode {
		if err := runKV(runner, designList, *seeds, *kvBatches, *reboots, *kvCompact, strides, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	opts := torture.MatrixOpts{
		Designs:     designList,
		Workloads:   splitList(*workloads, nil, nil),
		Attacks:     splitList(*attacks, nil, nil),
		Seeds:       *seeds,
		Ops:         *ops,
		CrashPts:    *crashPts,
		FaultSeeds:  *faultSeeds,
		Reboots:     *reboots,
		RebootEvery: strides,
		Spares:      *spares,
		Budget:      *budget,
	}
	var cells []torture.Cell
	var coverage []torture.CoverageStat
	if *guided {
		cells, coverage, err = torture.EnumerateGuidedCells(opts)
		if err != nil {
			fatal(err)
		}
	} else {
		cells = torture.EnumerateCells(opts)
	}
	if !*jsonOut {
		mode := ""
		if *guided {
			mode = " (guided crash points)"
		}
		fmt.Printf("torture: running %d cells on %d designs%s...\n", len(cells), len(opts.Designs), mode)
	}
	var progress func(done, total int, f *torture.Failure)
	if *verbose && !*jsonOut {
		progress = func(done, total int, f *torture.Failure) {
			if f != nil {
				fmt.Printf("  FAIL %v\n", f)
			}
			if done%500 == 0 || done == total {
				fmt.Printf("  %d/%d cells\n", done, total)
			}
		}
	}

	// SIGINT/SIGTERM and -timeout cancel the matrix context: in-flight
	// cells finish, the rest are skipped, and the partial summary is
	// still emitted (including as JSON) before the non-zero exit.
	ctx := context.Background()
	var cancel context.CancelFunc
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	sum := torture.RunMatrix(ctx, runner, cells, *parallel, progress)
	if *guided {
		sum.Mode = "guided"
		sum.Coverage = coverage
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%s [%s]\n", sum.Describe(), time.Since(start).Round(time.Millisecond))
		for _, f := range sum.Failures {
			fmt.Printf("  oracle %s: %s\n    repro: %s (shrunk in %d runs)\n", f.Oracle, f.Detail, f.Repro, f.ShrinkRuns)
		}
		if *guided {
			fmt.Print(torture.DescribeCoverage(coverage))
		}
	}
	if sum.Failed() || sum.Interrupted {
		os.Exit(1)
	}
}

// runKV sweeps the KV crash cells: for each crash-consistent design and
// seed, crash the namespace at every host-write boundary (then once at
// each boundary under the reboot-loop axis when -reboots is set, and
// once more under the compaction axis when -kv-compact is set) and
// check the KV oracles. Designs that are not crash-consistent are
// skipped — the KV contract does not apply to them.
func runKV(runner *torture.Runner, designs []string, seeds, batches, reboots, compactEvery int, strides []int, jsonOut bool) error {
	kvOK := map[string]bool{}
	for _, d := range torture.KVDesigns() {
		kvOK[d] = true
	}
	if len(strides) == 0 {
		strides = []int{2}
	}
	type kvSummary struct {
		Designs  []string           `json:"designs"`
		Skipped  []string           `json:"skipped,omitempty"`
		Cells    int                `json:"cells"`
		Failures []*torture.Failure `json:"failures,omitempty"`
	}
	var sum kvSummary
	start := time.Now()
	for _, d := range designs {
		if !kvOK[d] {
			sum.Skipped = append(sum.Skipped, d)
			continue
		}
		sum.Designs = append(sum.Designs, d)
		for seed := 0; seed < seeds; seed++ {
			specs := []torture.KVCell{{Design: d, Seed: int64(seed), Batches: batches}}
			if reboots > 0 {
				specs = append(specs, torture.KVCell{
					Design: d, Seed: int64(seed), Batches: batches,
					Reboots: reboots, RebootEvery: strides[seed%len(strides)],
				})
			}
			if compactEvery > 0 {
				specs = append(specs, torture.KVCell{
					Design: d, Seed: int64(seed), Batches: batches, CompactEvery: compactEvery,
				})
				if reboots > 0 {
					specs = append(specs, torture.KVCell{
						Design: d, Seed: int64(seed), Batches: batches, CompactEvery: compactEvery,
						Reboots: reboots, RebootEvery: strides[seed%len(strides)],
					})
				}
			}
			for _, spec := range specs {
				fail, cells := runner.KVSweep(spec)
				sum.Cells += cells
				if fail != nil {
					sum.Failures = append(sum.Failures, fail)
				}
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("kv torture: %d cells on %d designs, %d failures [%s]\n",
			sum.Cells, len(sum.Designs), len(sum.Failures), time.Since(start).Round(time.Millisecond))
		if len(sum.Skipped) > 0 {
			fmt.Printf("  skipped (not crash-consistent): %s\n", strings.Join(sum.Skipped, ", "))
		}
		for _, f := range sum.Failures {
			fmt.Printf("  oracle %s: %s\n", f.Oracle, f.Detail)
		}
	}
	if len(sum.Failures) > 0 {
		os.Exit(1)
	}
	return nil
}

// runCampaign executes the fixed durability campaign and writes the
// markdown report to mdPath plus the JSON artifact beside it (same name,
// .json extension). Both outputs are deterministic: `make campaign-short`
// regenerates them and asserts byte-identity against the committed pair.
func runCampaign(mdPath string, parallel int) error {
	jsonPath := strings.TrimSuffix(mdPath, filepath.Ext(mdPath)) + ".json"
	res, err := torture.RunCampaign(context.Background(), torture.DefaultCampaignOpts(), parallel)
	if err != nil {
		return err
	}
	md := res.RenderMarkdown(filepath.Base(jsonPath))
	js, err := res.RenderJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(mdPath, md, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
		return err
	}
	fmt.Printf("campaign: %d cells -> %s, %s\n", res.Cells, mdPath, jsonPath)
	if !res.Healthy() {
		return fmt.Errorf("campaign unhealthy: oracle failures observed or the sabotage self-test regressed (see %s)", mdPath)
	}
	return nil
}

// splitList parses a comma-separated flag value; aliases map special
// values ("all", "paper") to full lists. Empty input returns def (nil
// lets MatrixOpts fill its own default).
func splitList(s string, def []string, aliases map[string][]string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return def
	}
	if alias, ok := aliases[s]; ok {
		return alias
	}
	var out []string
	for _, x := range strings.Split(s, ",") {
		if x = strings.TrimSpace(x); x != "" {
			out = append(out, x)
		}
	}
	return out
}

// parseStrides parses the -reboot-every list; empty lets MatrixOpts
// fill its default.
func parseStrides(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, x := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(x))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -reboot-every stride %q (want positive integers)", x)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccnvm-torture:", err)
	os.Exit(1)
}
