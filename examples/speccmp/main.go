// speccmp reproduces the paper's Figure 5 comparison on a chosen
// subset of the SPEC CPU2006 stand-ins: every consistency design runs
// the same traces, and IPC plus NVM write traffic are reported
// normalized to the secure-but-inconsistent baseline (w/o CC), together
// with the headline claims of the abstract.
//
//	go run ./examples/speccmp                 # three representative workloads
//	go run ./examples/speccmp -all -ops 300000  # the full Figure 5
package main

import (
	"flag"
	"fmt"
	"log"

	"ccnvm"
)

func main() {
	all := flag.Bool("all", false, "run all eight workloads (slower)")
	ops := flag.Int("ops", 120000, "memory operations per trace")
	flag.Parse()

	o := ccnvm.EvalOptions{Ops: *ops}
	if !*all {
		o.Benchmarks = []string{"gcc", "lbm", "libquantum"}
	}

	fmt.Println("running the Figure 5 matrix (5 designs x", len(benchList(o)), "workloads)...")
	f5, err := ccnvm.RunFig5(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(f5.IPCTable())
	fmt.Println(f5.WriteTable())
	fmt.Println(f5.Headline())

	fmt.Println("reading the tables:")
	fmt.Println(" - SC persists the whole Merkle path per write-back: most writes, no caching benefit.")
	fmt.Println(" - Osiris Plus avoids metadata writes but still serializes the root per write-back.")
	fmt.Println(" - cc-NVM w/o DS drains in epochs but pays the same per-write-back root cascade.")
	fmt.Println(" - cc-NVM defers spreading to the drain: highest IPC of the consistent designs,")
	fmt.Println("   at a bounded write-traffic premium over Osiris Plus - and unlike Osiris it can")
	fmt.Println("   still locate tampered blocks after a crash (see examples/crashrecovery).")
}

func benchList(o ccnvm.EvalOptions) []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return ccnvm.Benchmarks()
}
