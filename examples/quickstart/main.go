// Quickstart: simulate the cc-NVM secure memory controller on one
// workload, print the headline metrics, then crash the machine and
// recover it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccnvm"
)

func main() {
	// A machine with the paper's configuration: 16 GiB PCM behind a
	// 3 GHz core, 32 KB L1 / 256 KB L2, a 128 KB metadata cache, N=16
	// update-limit and a 64-entry dirty address queue.
	m, err := ccnvm.NewMachine(ccnvm.Config{Design: ccnvm.DesignCCNVM})
	if err != nil {
		log.Fatal(err)
	}

	// Run 100k memory operations of the gcc stand-in workload.
	p, err := ccnvm.ProfileByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	g, err := ccnvm.NewGenerator(p, 1)
	if err != nil {
		log.Fatal(err)
	}
	res := m.Run("gcc", ccnvm.CollectOps(g, 100000))

	fmt.Printf("design:        %s\n", ccnvm.DesignLabel(res.Design))
	fmt.Printf("instructions:  %d\n", res.Instructions)
	fmt.Printf("IPC:           %.3f\n", res.IPC)
	fmt.Printf("NVM writes:    %d (%d data, %d HMAC, %d counter, %d tree)\n",
		res.NVMWrites.Total(), res.NVMWrites.Data, res.NVMWrites.HMAC,
		res.NVMWrites.Counter, res.NVMWrites.Tree)
	fmt.Printf("epoch drains:  %d (avg epoch %.1f write-backs)\n",
		res.Sec.Drains, res.AvgEpochLen)

	// Power off mid-epoch: the metadata cache and drainer state vanish;
	// only NVM and the TCB registers survive.
	img := m.Crash()
	fmt.Printf("\ncrash: %d persistent NVM lines, Nwb=%d\n",
		img.Image.Store.Len(), img.TCB.Nwb)

	// The four-step recovery restores every stalled counter from the
	// data HMACs and rebuilds the Merkle tree.
	rep := ccnvm.Recover(img)
	fmt.Printf("recovery: %d blocks recovered with %d retries, clean=%v\n",
		rep.RecoveredBlocks, rep.Nretry, rep.Clean())
	if !rep.Clean() {
		log.Fatal("unexpected: clean crash flagged as attacked")
	}
	ccnvm.ApplyRecovery(img, rep)
	fmt.Println("tree rebuilt and installed - the system resumes with all data intact")
}
