// sensitivity reproduces Figure 6: how the two draining triggers —
// the per-line update-times limit N and the dirty-address-queue size M
// — trade epoch length against crash-recovery bound and queue hardware.
// Larger N and M mean longer epochs, fewer drains, less metadata
// traffic and higher IPC, with both knobs flattening once the other
// trigger dominates.
//
//	go run ./examples/sensitivity
//	go run ./examples/sensitivity -benchmarks lbm,milc -ops 150000
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ccnvm"
)

func main() {
	ops := flag.Int("ops", 80000, "memory operations per trace")
	benches := flag.String("benchmarks", "gcc,lbm", "comma-separated workloads")
	flag.Parse()

	o := ccnvm.EvalOptions{Ops: *ops, Benchmarks: strings.Split(*benches, ",")}

	fmt.Println("sweeping the update-times limit N (M fixed at 64)...")
	f6a, err := ccnvm.RunFig6a(o, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(f6a.Tables())

	fmt.Println("sweeping the dirty address queue entries M (N fixed at 16)...")
	f6b, err := ccnvm.RunFig6b(o, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(f6b.Tables())

	fmt.Println("what to look for (paper §5.3):")
	fmt.Println(" - larger N: fewer update-limit drains, so cc-NVM's write traffic falls steeply")
	fmt.Println("   and flattens beyond N=32, where the other triggers dominate;")
	fmt.Println(" - larger M: longer epochs until the WPQ bound (64) is reached, with the")
	fmt.Println("   effect slowing past M=48;")
	fmt.Println(" - Osiris Plus only persists counters every N updates, so N barely moves it")
	fmt.Println("   and M does not apply to it at all;")
	fmt.Println(" - the recovery cost of a larger N is more HMAC retries per stalled counter")
	fmt.Println("   after a crash - the paper's fast-recovery motivation for trigger 3.")
}
