// crashrecovery walks the full threat-model matrix of §4.4: a
// persistent key-value-store-like workload runs on cc-NVM, the power
// fails mid-epoch, an adversary with full access to the NVM DIMM
// tampers with it, and recovery must detect — and wherever the paper
// claims it can, locate — the attack. The same replay is then run
// against Osiris Plus to show the difference the consistent in-NVM
// Merkle tree makes: Osiris detects but cannot locate, so all data is
// dropped.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"ccnvm"
)

// kvTrace emulates a small persistent KV store: records live in a 2 MiB
// table; updates read the record line, modify it and write it back, and
// a log region is appended sequentially — update-heavy with high
// temporal locality, the access pattern the paper's introduction
// motivates.
func kvTrace(n int, seed int64) []ccnvm.Op {
	var ops []ccnvm.Op
	const tablePages = 512
	logHead := ccnvm.Addr(tablePages * 4096)
	rng := seed
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := int((rng >> 33) % int64(mod))
		if v < 0 {
			v = -v
		}
		return v
	}
	for i := 0; i < n; i++ {
		rec := ccnvm.Addr(next(tablePages*64)) * 64
		// Read-modify-write the record.
		ops = append(ops,
			ccnvm.Op{Kind: ccnvm.Load, Addr: rec, Gap: 6, Dep: true},
			ccnvm.Op{Kind: ccnvm.Store, Addr: rec, Gap: 4},
			// Append to the log.
			ccnvm.Op{Kind: ccnvm.Store, Addr: logHead, Gap: 8},
		)
		logHead += 64
	}
	return ops
}

func main() {
	fmt.Println("=== scenario 1: clean crash, full recovery ===")
	m := machine(ccnvm.DesignCCNVM)
	img := crash(m, 12000)
	rep := ccnvm.Recover(img)
	fmt.Printf("recovered %d stalled blocks (Nretry=%d == Nwb=%d), clean=%v\n",
		rep.RecoveredBlocks, rep.Nretry, rep.Nwb, rep.Clean())
	ccnvm.ApplyRecovery(img, rep)
	fmt.Println("-> tree rebuilt; the KV store reopens with every committed record intact")

	fmt.Println("\n=== scenario 2: spoofed record after the crash ===")
	m = machine(ccnvm.DesignCCNVM)
	img = crash(m, 12000)
	victim := firstData(img)
	must(ccnvm.SpoofData(img, victim))
	rep = ccnvm.Recover(img)
	fmt.Printf("located %d tampered block(s); Located()=%v\n", len(rep.Tampered), rep.Located())
	fmt.Printf("-> record %#x is discarded, the other %d NVM lines survive\n",
		uint64(victim), img.Image.Store.Len()-1)

	fmt.Println("\n=== scenario 3: spliced records ===")
	m = machine(ccnvm.DesignCCNVM)
	img = crash(m, 12000)
	a, b := firstData(img), lastData(img)
	must(ccnvm.SpliceData(img, a, b))
	rep = ccnvm.Recover(img)
	fmt.Printf("located %d tampered blocks (want both %#x and %#x)\n",
		len(rep.Tampered), uint64(a), uint64(b))

	fmt.Println("\n=== scenario 4: replayed counter line (the 'normal' replay) ===")
	m = machine(ccnvm.DesignCCNVM)
	// Snapshot an early persistent state as the adversary's stash.
	m.Run("kv", kvTrace(6000, 7))
	old := m.Snapshot()
	m.Run("kv", kvTrace(6000, 8))
	img = m.Crash()
	must(ccnvm.ReplayCounterLine(img, old, firstData(img)))
	rep = ccnvm.Recover(img)
	fmt.Printf("step 1 located %d tree mismatch(es): %v\n", len(rep.TreeMismatches), rep.Located())

	fmt.Println("\n=== scenario 5: Figure 4's data replay inside the DS window ===")
	for _, design := range []string{ccnvm.DesignCCNVM, ccnvm.DesignOsiris} {
		m = machine(design)
		m.Run("kv", kvTrace(8000, 7))
		hot := ccnvm.Addr(512 << 20) // a record far from the table
		m.Run("kv", writeBackTail(hot, 1))
		old = m.Snapshot()
		m.Run("kv", writeBackTail(hot, 2))
		img = m.Crash()
		must(ccnvm.ReplayBlock(img, old, hot))
		rep = ccnvm.Recover(img)
		fmt.Printf("%-12s detected=%v located=%v dataDropped=%v",
			ccnvm.DesignLabel(design), !rep.Clean(), rep.Located(), rep.DataDropped())
		if design == ccnvm.DesignCCNVM {
			fmt.Printf("  (Nwb=%d vs Nretry=%d)", rep.Nwb, rep.Nretry)
		}
		fmt.Println()
	}
	fmt.Println("-> both designs detect the replay; neither can locate it — the paper's §4.3")
	fmt.Println("   bounds this window to the dirty address queue (<=42 counters, 0.01% of NVM)")

	fmt.Println("\n=== scenario 5b: the same replay against the §4.4 extension ===")
	m = machine(ccnvm.DesignCCNVMExt)
	m.Run("kv", kvTrace(8000, 7))
	hotExt := ccnvm.Addr(512 << 20)
	m.Run("kv", writeBackTail(hotExt, 1))
	old = m.Snapshot()
	m.Run("kv", writeBackTail(hotExt, 2))
	img = m.Crash()
	must(ccnvm.ReplayBlock(img, old, hotExt))
	rep = ccnvm.Recover(img)
	fmt.Printf("cc-NVM+Ext   detected=%v located=%v page=%#x\n", !rep.Clean(), rep.Located(), uint64(rep.ReplayedPages[0]))
	fmt.Println("-> the extra persistent registers pin the replay to one page: only it is dropped")

	fmt.Println("\n=== scenario 6: the same crash without crash consistency ===")
	m = machine(ccnvm.DesignWoCC)
	// A hot record updated dozens of times: without consistency the NVM
	// counter lags far beyond any recovery bound.
	hot := ccnvm.Addr(0)
	for i := 0; i < 40; i++ {
		m.Run("kv", writeBackTail(hot, 1))
	}
	img = m.Crash()
	rep = ccnvm.Recover(img)
	fmt.Printf("w/o CC: clean=%v, unrecoverable blocks=%d\n", rep.Clean(), len(rep.Tampered))
	fmt.Println("-> staleness is indistinguishable from an attack: all data must be dropped")
}

func machine(design string) *ccnvm.Machine {
	m, err := ccnvm.NewMachine(ccnvm.Config{Design: design})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func crash(m *ccnvm.Machine, ops int) *ccnvm.CrashImage {
	_, img := m.RunWithCrash("kv", kvTrace(ops, 7), ops*3)
	return img
}

// writeBackTail forces n write-backs of victim via L1/L2 set conflicts.
func writeBackTail(victim ccnvm.Addr, n int) []ccnvm.Op {
	var ops []ccnvm.Op
	for i := 0; i < n; i++ {
		ops = append(ops, ccnvm.Op{Kind: ccnvm.Store, Addr: victim, Gap: 2})
		for k := 1; k <= 10; k++ {
			ops = append(ops, ccnvm.Op{Kind: ccnvm.Load, Addr: victim + ccnvm.Addr(k*32<<10), Gap: 2})
		}
	}
	return ops
}

func firstData(img *ccnvm.CrashImage) ccnvm.Addr {
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			return a
		}
	}
	log.Fatal("no data in image")
	return 0
}

func lastData(img *ccnvm.CrashImage) ccnvm.Addr {
	var last ccnvm.Addr
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			last = a
		}
	}
	return last
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
