#!/bin/sh
# kv_smoke.sh — end-to-end kill-mid-batch drill for ccnvm-kvd, run by
# `make kv-smoke`. Builds the daemon and the load harness under the
# race detector, then:
#
#   1. serve a fresh namespace, journal a concurrent burst client-side,
#      and inject a power failure mid-stream (daemon must exit 7);
#   2. restart from the persisted crash image and verify the journal:
#      every acknowledged batch served, no partial batch visible;
#   3. shut down cleanly via the quit op (exit 0);
#   4. restart once more from the clean image, re-verify, quit.
#
# GO overrides the go binary (defaults to go).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "kv-smoke: $1" >&2
    shift
    for log in "$@"; do cat "$log" >&2; done
    exit 1
}

# start LOGFILE [extra kvd flags...] — launch the daemon on a free port
# and wait for its readiness line; sets $pid and $addr.
start() {
    log=$1
    shift
    "$tmp/kvd" -addr 127.0.0.1:0 -image "$tmp/nvm.img" "$@" >"$log" 2>&1 &
    pid=$!
    i=0
    while [ $i -lt 100 ]; do
        if grep -q 'listening on' "$log" 2>/dev/null; then
            break
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            fail "daemon died during startup" "$log"
        fi
        sleep 0.1
        i=$((i + 1))
    done
    addr=$(sed -n 's/^listening on //p' "$log" | head -1)
    [ -n "$addr" ] || fail "daemon never came up" "$log"
}

# stop EXPECTED_CODE LOGFILE — reap the daemon and check its exit code.
stop() {
    code=0
    wait "$pid" || code=$?
    pid=""
    [ "$code" -eq "$1" ] || fail "expected daemon exit $1, got $code" "$2"
}

"$GO" build -race -o "$tmp/kvd" ./cmd/ccnvm-kvd
"$GO" build -race -o "$tmp/kvload" ./cmd/ccnvm-kvload

# 1: concurrent burst, journaled, with an injected power failure.
start "$tmp/kvd1.log" -capacity 8388608
"$tmp/kvload" -addr "$addr" -conns 32 -ops 40 -batch 3 \
    -log "$tmp/journal" -crash
stop 7 "$tmp/kvd1.log"

# 2+3: restart from the crash image, audit the journal, clean shutdown.
start "$tmp/kvd2.log"
grep -q 'recovered' "$tmp/kvd2.log" || fail "restart did not recover the image" "$tmp/kvd2.log"
"$tmp/kvload" -addr "$addr" -conns 8 -verify "$tmp/journal" ||
    fail "durability verification FAILED after crash" "$tmp/kvd2.log"
"$tmp/kvload" -addr "$addr" -conns 4 -ops 5 -quit
stop 0 "$tmp/kvd2.log"

# 4: the clean image recovers too, and still serves every acked batch.
start "$tmp/kvd3.log"
"$tmp/kvload" -addr "$addr" -conns 8 -verify "$tmp/journal" ||
    fail "durability verification FAILED after clean shutdown" "$tmp/kvd3.log"
"$tmp/kvload" -addr "$addr" -conns 1 -ops 1 -quit
stop 0 "$tmp/kvd3.log"

echo "kv-smoke: crash, recover, verify, clean shutdown - all good"
