# Developer entry points. Everything is plain go tooling; the targets
# just pin the combinations CI runs so they are reproducible locally.

GO ?= go

.PHONY: all tier1 vet race ci bench profile clean

all: tier1

# tier1 is the gating check: the build plus the full test suite.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector:
# the parallel evaluation matrix and the simulator it drives.
race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/

# ci is what a merge must pass.
ci: tier1 vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# profile captures CPU and heap profiles of a serial Figure 5 run;
# inspect with `go tool pprof cpu.out`.
profile:
	$(GO) run ./cmd/ccnvm-bench -fig 5 -parallel 1 -cpuprofile cpu.out -memprofile mem.out

clean:
	rm -f cpu.out mem.out
