# Developer entry points. Everything is plain go tooling; the targets
# just pin the combinations CI runs so they are reproducible locally.

GO ?= go

.PHONY: all tier1 vet race fuzz-short vuln lint-designs lint-layering torture torture-faults torture-reboots torture-spares torture-guided torture-kv torture-compact torture-long campaign campaign-short kv-smoke ci bench bench-check profile clean

# Performance-ledger knobs. BENCH_PR numbers the pinned ledger file
# (BENCH_$(BENCH_PR).json); BENCH_OPS sizes the pinning run, and
# BENCH_CHECK_OPS the cheaper gate run that ci executes. Set
# BENCH_SKIP=1 to skip the gate on underpowered or heavily shared
# runners.
BENCH_PR ?= 10
BENCH_OPS ?= 120000
BENCH_CHECK_OPS ?= 20000

all: tier1

# tier1 is the gating check: the build plus the full test suite (which
# includes the short torture matrix).
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the concurrency-sensitive packages under the race detector:
# the parallel evaluation matrix, the simulator it drives, the torture
# harness's parallel cell runner, and the recovery package it re-enters.
race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/ ./internal/torture/ ./internal/recovery/

# fuzz-short gives each native fuzz target a fixed small budget; crashes
# land in testdata/fuzz/ as regression inputs.
fuzz-short:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz=FuzzCompressRoundTrip -fuzztime=10s ./internal/compress/
	$(GO) test -fuzz=FuzzCell -fuzztime=20s ./internal/torture/
	$(GO) test -fuzz=FuzzFaultCell -fuzztime=20s ./internal/torture/
	$(GO) test -fuzz=FuzzRebootCell -fuzztime=20s ./internal/torture/
	$(GO) test -fuzz=FuzzSpareCell -fuzztime=20s ./internal/torture/
	$(GO) test -fuzz=FuzzKVCompactCell -fuzztime=20s ./internal/torture/
	$(GO) test -fuzz=FuzzPorderEvents -fuzztime=15s ./internal/porder/

# vuln scans the module against the Go vulnerability database. Skipped
# with a notice when govulncheck is not installed (it needs network
# access to fetch; we never install tools from a build target).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# lint-designs enforces the design registry: no quoted design names and
# no switches on a .Design field outside internal/design (tests may
# spell names out — that is what pins the registry). A line that is just
# the root-package import `"ccnvm"` is excluded; it is an import path,
# not a design name.
lint-designs:
	@bad=$$(grep -rn -E '"(wocc|sc|osiris|ccnvm|ccnvm-wods|ccnvm-ext|arsenal)"' \
		--include='*.go' . \
		| grep -v '_test\.go' | grep -v '^\./internal/design/' \
		| grep -v -E ':[[:space:]]*(_ )?"ccnvm"$$'); \
	sw=$$(grep -rn -E 'switch[^{]*\.Design\b' --include='*.go' . \
		| grep -v '_test\.go' | grep -v '^\./internal/design/'); \
	if [ -n "$$bad$$sw" ]; then \
		echo "lint-designs: design names must come from the internal/design registry:"; \
		printf '%s\n%s\n' "$$bad" "$$sw" | sed '/^$$/d; s/^/  /'; \
		exit 1; \
	fi; \
	echo "lint-designs: ok"

# lint-layering enforces the storage-engine facade boundary:
# internal/memctrl is an implementation detail, importable only by the
# facade itself and the engine-core packages that assemble a
# controller. Everything else — simulator, KV layer, experiments,
# commands — must go through internal/store.
lint-layering:
	@bad=$$(grep -rl '"ccnvm/internal/memctrl"' --include='*.go' . \
		| grep -v -E '^\./internal/(memctrl|store|engine|core|design|porder)/'); \
	if [ -n "$$bad" ]; then \
		echo "lint-layering: internal/memctrl is behind the internal/store facade; import that instead:"; \
		echo "$$bad" | sed 's/^/  /'; \
		exit 1; \
	fi; \
	echo "lint-layering: ok"

# torture runs the full differential crash/attack matrix via the CLI;
# torture-faults adds the media-fault cells (torn writes, partial ADR
# drains, weak and stuck lines) on top of the clean-crash matrix;
# torture-long widens every axis (minutes, not seconds).
torture:
	$(GO) run ./cmd/ccnvm-torture -seeds 8 -designs all

torture-faults:
	$(GO) run ./cmd/ccnvm-torture -seeds 4 -designs all -attacks none -faultseeds 16

# torture-reboots crashes recovery itself: every interrupted Apply pass
# is struck at its k-th persisted recovery write, re-entered from the
# persisted recovery journal, and the converged image is held to the
# reboot-convergence / no-new-loss / bounded oracles.
torture-reboots:
	$(GO) run ./cmd/ccnvm-torture -seeds 2 -designs all -attacks none -faultseeds 2 -reboots 4

# torture-spares sweeps the finite spare pool from healthy through
# degraded to read-only: pool sizes from 3 down to a single line are
# layered over the weak/stuck fault profiles, and every passing cell is
# classified healed / lost-but-detected / read-only-refused by the
# spare-accounting, remap-consistency and degradation oracles.
torture-spares:
	$(GO) run ./cmd/ccnvm-torture -seeds 2 -designs all -attacks none -spares 3

# torture-guided replaces evenly spaced crash points with the
# ordering-aware enumeration (one point per distinct persist-ordering
# edge cut) and prints the edge-coverage table against evenly spaced
# points of equal budget.
torture-guided:
	$(GO) run ./cmd/ccnvm-torture -guided -seeds 4 -designs all

# torture-kv crashes the KV namespace at every host-write boundary —
# including between a batch frame's payload lines and its commit
# header — for every crash-consistent design, re-crashes recovery
# itself (-reboots), and holds the recovered namespace to the KV
# oracles: acked batches durable, no partial batch ever visible.
torture-kv:
	$(GO) run ./cmd/ccnvm-torture -kv -seeds 2 -designs all -reboots 2

# torture-compact turns on the compaction axis: a GC pass runs after
# every second acknowledged batch, so the crash sweep lands inside the
# copy loop, between the run flush and the manifest commit, on the
# manifest slot write itself, and inside the retired half's reclaim —
# with recovery re-crashed on top (-reboots) and the compaction
# oracles (generation intact, no ghost resurrection, no lost acked
# write, reclaim monotonic, recovery idempotent) holding throughout.
torture-compact:
	$(GO) run ./cmd/ccnvm-torture -kv -kv-compact 2 -seeds 2 -designs all -reboots 2

torture-long:
	$(GO) test ./internal/torture/ -torture.long -timeout 30m -v

# campaign regenerates the committed durability report: the fixed-seed
# guided campaign with every behavior class, its exemplar repro and exit
# code, the ordering-sabotage self-test, and the edge-coverage table.
campaign:
	$(GO) run ./cmd/ccnvm-torture -campaign docs/status/durability_report.md

# campaign-short re-runs the campaign into a scratch directory and
# asserts the committed report (and its JSON artifact) is byte-identical
# — the report is generated, never hand-edited, and ci keeps it honest.
campaign-short:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/ccnvm-torture -campaign $$tmp/durability_report.md >/dev/null && \
	cmp docs/status/durability_report.md $$tmp/durability_report.md && \
	cmp docs/status/durability_report.json $$tmp/durability_report.json && \
	rm -rf $$tmp && echo "campaign-short: report reproduces byte-identically"

# kv-smoke is the end-to-end kill-mid-batch drill, run on real
# processes with the race detector on: serve, journal a concurrent
# burst client-side, inject a power failure mid-stream (exit 7),
# restart from the persisted image, verify that no acknowledged batch
# was lost and no partial batch is visible, shut down cleanly (exit 0)
# and recover once more from the clean image.
kv-smoke:
	@GO=$(GO) sh scripts/kv_smoke.sh

# ci is what a merge must pass.
ci: tier1 vet lint-designs lint-layering race fuzz-short vuln torture-reboots torture-spares torture-kv torture-compact campaign-short kv-smoke bench-check

# bench pins the performance ledger: the Go benchmarks stream into a
# benchstat-friendly raw file (compare two with
# `benchstat BENCH_old.txt BENCH_new.txt`) and ccnvm-bench measures and
# writes the schema-versioned JSON ledger. Both files are committed with
# the PR that changed performance.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ . | tee BENCH_$(BENCH_PR).txt
	$(GO) run ./cmd/ccnvm-bench -ledger BENCH_$(BENCH_PR).json -ops $(BENCH_OPS)

# bench-check is the regression gate: a fresh (cheaper) measurement is
# compared against the newest committed BENCH_*.json and the build fails
# on >15% throughput regression. BENCH_SKIP=1 skips it.
bench-check:
	@if [ "$$BENCH_SKIP" = "1" ]; then \
		echo "bench-check: skipped (BENCH_SKIP=1)"; \
	else \
		$(GO) run ./cmd/ccnvm-bench -check . -ops $(BENCH_CHECK_OPS); \
	fi

# profile captures CPU and heap profiles of a Figure 5 run; inspect with
# `go tool pprof cpu.out`. PROFILE_PARALLEL sets the machine-level
# concurrency and PROFILE_WORKERS the per-machine pipeline width, so
# serial and parallel configurations can both be profiled without
# editing this file:
#
#	make profile                                   # serial baseline
#	make profile PROFILE_PARALLEL=4                # 4 concurrent machines
#	make profile PROFILE_WORKERS=4                 # sharded BMT pipeline
PROFILE_PARALLEL ?= 1
PROFILE_WORKERS ?= 0
profile:
	$(GO) run ./cmd/ccnvm-bench -fig 5 -parallel $(PROFILE_PARALLEL) -workers $(PROFILE_WORKERS) -cpuprofile cpu.out -memprofile mem.out

clean:
	rm -f cpu.out mem.out
