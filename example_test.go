package ccnvm_test

import (
	"fmt"

	"ccnvm"
)

// ExampleRunBenchmark runs cc-NVM on the most write-intensive SPEC
// stand-in and prints the metrics the paper's figures are built from.
func ExampleRunBenchmark() {
	res, err := ccnvm.RunBenchmark("ccnvm", "lbm", 30000, 1, ccnvm.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("design:", ccnvm.DesignLabel(res.Design))
	fmt.Println("writes are data+HMAC+metadata:", res.NVMWrites.Total() > res.NVMWrites.Data)
	fmt.Println("epochs drained:", res.Sec.Drains > 0)
	fmt.Println("violations:", res.Sec.IntegrityViolations)
	// Output:
	// design: cc-NVM
	// writes are data+HMAC+metadata: true
	// epochs drained: true
	// violations: 0
}

// ExampleRecover crashes a machine mid-epoch and runs the paper's §4.4
// four-step recovery: every stalled counter is restored from the data
// HMACs and the Merkle tree is rebuilt.
func ExampleRecover() {
	m, err := ccnvm.NewMachine(ccnvm.Config{Design: "ccnvm"})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p, _ := ccnvm.ProfileByName("gcc")
	g, _ := ccnvm.NewGenerator(p, 1)
	m.Run("gcc", ccnvm.CollectOps(g, 20000))
	img := m.Crash()

	rep := ccnvm.Recover(img)
	fmt.Println("clean:", rep.Clean())
	fmt.Println("retries match Nwb:", rep.Nretry == rep.Nwb)
	// Output:
	// clean: true
	// retries match Nwb: true
}

// ExampleSpoofData shows attack location: a block tampered after a
// crash is pinned down exactly, so only it needs discarding.
func ExampleSpoofData() {
	m, _ := ccnvm.NewMachine(ccnvm.Config{Design: "ccnvm"})
	p, _ := ccnvm.ProfileByName("gcc")
	g, _ := ccnvm.NewGenerator(p, 1)
	m.Run("gcc", ccnvm.CollectOps(g, 20000))
	img := m.Crash()

	var victim ccnvm.Addr
	for _, a := range img.Image.Store.Addrs() {
		if uint64(a) < img.Image.Layout.DataBytes {
			victim = a
			break
		}
	}
	if err := ccnvm.SpoofData(img, victim); err != nil {
		fmt.Println("error:", err)
		return
	}
	rep := ccnvm.Recover(img)
	fmt.Println("located:", rep.Located())
	fmt.Println("tampered blocks:", len(rep.Tampered))
	fmt.Println("pinned to victim:", rep.Tampered[0].Addr == victim)
	// Output:
	// located: true
	// tampered blocks: 1
	// pinned to victim: true
}
