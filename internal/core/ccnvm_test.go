package core

import (
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

func rig(t testing.TB, p engine.Params, variant string) *CCNVM {
	t.Helper()
	lay := mem.MustLayout(1 << 30)
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	ctrl := memctrl.New(memctrl.Config{}, dev)
	keys := seccrypto.DefaultKeys()
	switch variant {
	case "ccnvm":
		return NewCCNVM(lay, keys, ctrl, metacache.Config{}, p)
	case "ccnvm-wods":
		return NewCCNVMWoDS(lay, keys, ctrl, metacache.Config{}, p)
	case "ccnvm-ext":
		return NewCCNVMExt(lay, keys, ctrl, metacache.Config{}, p)
	}
	t.Fatalf("unknown variant %s", variant)
	return nil
}

func fill(b byte) mem.Line {
	var l mem.Line
	l[0] = b
	return l
}

func TestNames(t *testing.T) {
	for _, v := range []string{"ccnvm", "ccnvm-wods", "ccnvm-ext"} {
		if got := rig(t, engine.Params{}, v).Name(); got != v {
			t.Errorf("Name() = %q, want %q", got, v)
		}
	}
}

func TestDrainCauseStrings(t *testing.T) {
	want := map[DrainCause]string{
		DrainQueueFull:   "queue-full",
		DrainEvict:       "meta-evict",
		DrainUpdateLimit: "update-limit",
		DrainOverflow:    "counter-overflow",
		DrainSettle:      "settle",
		DrainCause(99):   "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("cause %d = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestDrainCauseAccounting(t *testing.T) {
	// Update-limit trigger.
	c := rig(t, engine.Params{UpdateLimit: 2}, "ccnvm")
	now := int64(0)
	for i := 0; i < 4; i++ {
		now = c.WriteBack(now, 0, fill(byte(i))) + 10
	}
	if st := c.Stats(); st.DrainUpdateLimit != 2 || st.Drains != 2 {
		t.Fatalf("update-limit accounting wrong: %+v", st)
	}
	// Queue-full trigger: scattered pages with a tiny queue.
	c = rig(t, engine.Params{QueueEntries: 16, UpdateLimit: 1 << 20}, "ccnvm")
	now = 0
	for i := 0; i < 32; i++ {
		a := mem.Addr(uint64(i) * 1237 * 4096 % (1 << 30))
		now = c.WriteBack(now, a, fill(byte(i))) + 10
	}
	if st := c.Stats(); st.DrainQueueFull == 0 {
		t.Fatalf("no queue-full drains: %+v", st)
	}
}

func TestOverflowTriggersImmediateDrain(t *testing.T) {
	c := rig(t, engine.Params{UpdateLimit: 1 << 20}, "ccnvm")
	now := int64(0)
	for i := 0; i <= int(seccrypto.MinorMax); i++ {
		now = c.WriteBack(now, 0, fill(byte(i))) + 10
	}
	st := c.Stats()
	if st.CounterOverflows != 1 {
		t.Fatalf("overflows = %d, want 1", st.CounterOverflows)
	}
	if st.Drains == 0 {
		t.Fatal("overflow did not force a drain")
	}
	// After the drain, the NVM counter line matches the cache: crash and
	// verify the recovered counter needs no retries for this page.
	img := c.Crash()
	raw, ok := img.Image.Read(img.Image.Layout.CounterLineOf(0))
	if !ok {
		t.Fatal("counter line not persisted by overflow drain")
	}
	cl := seccrypto.DecodeCounterLine(raw)
	if cl.Major != 1 {
		t.Fatalf("persisted major = %d, want 1", cl.Major)
	}
}

func TestSettleDrainsEverything(t *testing.T) {
	c := rig(t, engine.Params{}, "ccnvm")
	now := int64(0)
	for i := 0; i < 5; i++ {
		now = c.WriteBack(now, mem.Addr(i*4096), fill(byte(i))) + 10
	}
	c.Settle(now)
	if c.Queue().Len() != 0 {
		t.Fatal("queue not empty after settle")
	}
	if len(c.Meta.DirtyAddrs()) != 0 {
		t.Fatal("dirty metadata survived settle")
	}
	if c.TCB.Nwb != 0 {
		t.Fatal("Nwb not reset by settle")
	}
	if c.TCB.RootNew != c.TCB.RootOld {
		t.Fatal("roots diverged after settle")
	}
}

func TestSettleOnIdleEngineIsNoop(t *testing.T) {
	c := rig(t, engine.Params{}, "ccnvm")
	if got := c.Settle(42); got != 42 {
		t.Fatalf("idle settle advanced time to %d", got)
	}
	if c.Stats().Drains != 0 {
		t.Fatal("idle settle counted a drain")
	}
}

func TestEpochInvariantBetweenDrains(t *testing.T) {
	// Between drains the NVM tree region must not change at all.
	c := rig(t, engine.Params{UpdateLimit: 1 << 20, QueueEntries: 64}, "ccnvm")
	now := c.WriteBack(0, 0, fill(1)) + 10
	now = c.WriteBack(now, 64, fill(2)) + 10
	before := snapshotRegion(c, mem.RegionTree)
	beforeCtr := snapshotRegion(c, mem.RegionCounter)
	for i := 0; i < 5; i++ { // same line: stays under N, no drain
		now = c.WriteBack(now, 128, fill(byte(i))) + 10
	}
	if c.Stats().Drains != 0 {
		t.Skip("unexpected drain; invariant trivially holds")
	}
	if !regionEqual(c, mem.RegionTree, before) || !regionEqual(c, mem.RegionCounter, beforeCtr) {
		t.Fatal("metadata regions changed outside a drain")
	}
}

func snapshotRegion(c *CCNVM, r mem.Region) map[mem.Addr]mem.Line {
	out := map[mem.Addr]mem.Line{}
	img := c.Ctrl.Device().Snapshot()
	for _, a := range img.Store.Addrs() {
		if c.Lay.RegionOf(a) == r {
			l, _ := img.Read(a)
			out[a] = l
		}
	}
	return out
}

func regionEqual(c *CCNVM, r mem.Region, want map[mem.Addr]mem.Line) bool {
	got := snapshotRegion(c, r)
	if len(got) != len(want) {
		return false
	}
	for a, l := range want {
		if got[a] != l {
			return false
		}
	}
	return true
}

func TestWoDSUpdatesRootPerWriteback(t *testing.T) {
	c := rig(t, engine.Params{UpdateLimit: 1 << 20}, "ccnvm-wods")
	rootBefore := c.TCB.RootNew
	c.WriteBack(0, 0, fill(1))
	if c.TCB.RootNew == rootBefore {
		t.Fatal("w/o DS did not update ROOTnew on a write-back")
	}
	if c.TCB.RootOld == c.TCB.RootNew {
		t.Fatal("ROOTold moved without a drain")
	}
}

func TestDSDefersRootToDrain(t *testing.T) {
	c := rig(t, engine.Params{UpdateLimit: 1 << 20}, "ccnvm")
	rootBefore := c.TCB.RootNew
	c.WriteBack(0, 0, fill(1))
	if c.TCB.RootNew != rootBefore {
		t.Fatal("deferred spreading updated ROOTnew before the drain")
	}
	c.Settle(1000)
	if c.TCB.RootNew == rootBefore {
		t.Fatal("drain did not update ROOTnew")
	}
}

func TestDrainBlocksSubsequentEvictions(t *testing.T) {
	c := rig(t, engine.Params{UpdateLimit: 2}, "ccnvm")
	now := c.WriteBack(0, 0, fill(1)) + 1
	now = c.WriteBack(now, 0, fill(2)) + 1 // triggers a drain
	accept := c.WriteBack(now, 4096, fill(3))
	if accept <= now {
		t.Fatal("eviction accepted while the drain was still running")
	}
}

func TestAvgEpochLengthAndQueueAccessors(t *testing.T) {
	c := rig(t, engine.Params{UpdateLimit: 3}, "ccnvm")
	if c.AvgEpochLength() != 0 {
		t.Fatal("epoch length nonzero before any drain")
	}
	now := int64(0)
	for i := 0; i < 6; i++ {
		now = c.WriteBack(now, 0, fill(byte(i))) + 10
	}
	if got := c.AvgEpochLength(); got != 3 {
		t.Fatalf("avg epoch = %v, want 3", got)
	}
	if c.Queue().Capacity() != 64 {
		t.Fatalf("default queue capacity = %d", c.Queue().Capacity())
	}
}

func TestReadTriggersEvictDrain(t *testing.T) {
	// A tiny meta cache forces a read-path fetch to displace dirty
	// metadata, which must fire draining trigger 2.
	lay := mem.MustLayout(1 << 30)
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	c := NewCCNVM(lay, seccrypto.DefaultKeys(), memctrl.New(memctrl.Config{}, dev),
		metacache.Config{SizeBytes: 1024, Ways: 2}, engine.Params{UpdateLimit: 1 << 20})
	now := int64(0)
	for i := 0; i < 24; i++ {
		a := mem.Addr(uint64(i) * 977 * 4096 % (1 << 30))
		now = c.WriteBack(now, a, fill(byte(i))) + 10
		_, done := c.ReadBlock(now, a+64)
		now = done + 10
	}
	if c.Stats().DrainEvict == 0 {
		t.Fatal("no meta-evict drains under a tiny metadata cache")
	}
	if c.Stats().IntegrityViolations != 0 {
		t.Fatalf("%d violations", c.Stats().IntegrityViolations)
	}
}
