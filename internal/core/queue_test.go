package core

import (
	"testing"
	"testing/quick"

	"ccnvm/internal/mem"
)

func TestQueueBasics(t *testing.T) {
	q := NewDirtyAddrQueue(4)
	if q.Capacity() != 4 || q.Len() != 0 || q.Free() != 4 {
		t.Fatal("fresh queue state wrong")
	}
	q.Reserve(0, 64)
	if q.Len() != 2 || q.Free() != 2 {
		t.Fatalf("after reserve: len=%d free=%d", q.Len(), q.Free())
	}
	if !q.Contains(0) || !q.Contains(64) || q.Contains(128) {
		t.Fatal("Contains wrong")
	}
}

func TestQueueDeduplicates(t *testing.T) {
	q := NewDirtyAddrQueue(4)
	q.Reserve(0, 0, 64, 0)
	if q.Len() != 2 {
		t.Fatalf("duplicates counted: len=%d", q.Len())
	}
	// Unaligned addresses normalize to the same line.
	q.Reserve(65)
	if q.Len() != 2 {
		t.Fatal("unaligned duplicate counted")
	}
}

func TestQueueMissing(t *testing.T) {
	q := NewDirtyAddrQueue(8)
	q.Reserve(0, 64)
	if got := q.Missing([]mem.Addr{0, 64, 128, 192}); got != 2 {
		t.Fatalf("Missing = %d, want 2", got)
	}
}

func TestQueueOverflowPanics(t *testing.T) {
	q := NewDirtyAddrQueue(2)
	q.Reserve(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	q.Reserve(128)
}

func TestQueueClear(t *testing.T) {
	q := NewDirtyAddrQueue(2)
	q.Reserve(0, 64)
	q.Clear()
	if q.Len() != 0 || q.Contains(0) {
		t.Fatal("Clear incomplete")
	}
	q.Reserve(128, 192) // capacity restored
	if q.Len() != 2 {
		t.Fatal("queue unusable after Clear")
	}
}

func TestQueueInsertionOrder(t *testing.T) {
	q := NewDirtyAddrQueue(8)
	q.Reserve(192, 0, 64)
	got := q.Addrs()
	want := []mem.Addr{192, 0, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Addrs = %v, want %v", got, want)
		}
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewDirtyAddrQueue(0)
}

func TestQueueInvariantProperty(t *testing.T) {
	// Property: Len + Free == Capacity, and Missing + already-present ==
	// request size, for random reservation sequences.
	f := func(raw []uint16) bool {
		q := NewDirtyAddrQueue(64)
		for _, r := range raw {
			a := mem.Addr(r) * mem.LineSize
			if q.Contains(a) {
				continue
			}
			if q.Free() == 0 {
				q.Clear()
			}
			q.Reserve(a)
			if q.Len()+q.Free() != q.Capacity() {
				return false
			}
			if !q.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
