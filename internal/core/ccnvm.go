package core

import (
	"errors"

	"ccnvm/internal/design/names"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// DrainCause identifies which trigger fired a drain (paper §4.2).
type DrainCause int

// Draining triggers. Settle is the administrative end-of-run flush.
const (
	DrainQueueFull DrainCause = iota
	DrainEvict
	DrainUpdateLimit
	DrainOverflow
	DrainSettle
)

// String implements fmt.Stringer.
func (c DrainCause) String() string {
	switch c {
	case DrainQueueFull:
		return "queue-full"
	case DrainEvict:
		return "meta-evict"
	case DrainUpdateLimit:
		return "update-limit"
	case DrainOverflow:
		return "counter-overflow"
	case DrainSettle:
		return "settle"
	default:
		return "unknown"
	}
}

// CCNVM is the paper's design: security metadata is aggressively cached
// and mutated on chip, while the NVM copy of the Merkle tree only ever
// changes through atomic epoch drains, so it always verifies against
// ROOTold (or, once the end signal is in, ROOTnew). With deferred
// spreading enabled (the full cc-NVM), tree nodes are not recomputed per
// write-back at all; each drain recomputes every affected node exactly
// once, bottom-up. The ablation without deferred spreading (cc-NVM w/o
// DS) recomputes the whole path and ROOTnew on every write-back, like
// the baselines, but still drains in epochs.
type CCNVM struct {
	engine.Base
	deferred bool
	extRegs  bool // §4.4 extension: persistent per-line update registers
	queue    *DirtyAddrQueue

	// stash holds the content of dirty metadata lines displaced from the
	// meta cache since the last drain; they remain part of the epoch's
	// flush set.
	stash map[mem.Addr]mem.Line

	epochWritebacks uint64 // write-backs in the current epoch
	epochLenSum     uint64 // closed-epoch lengths, for average reporting

	// drainBusyUntil blocks subsequent evictions while a drain runs:
	// §4.2 "step 1 and 2 for the subsequent evicted data blocks is
	// blocked until the draining is finished", whichever trigger fired.
	drainBusyUntil int64
}

// NewCCNVM builds the full cc-NVM design (deferred spreading on).
func NewCCNVM(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p engine.Params) *CCNVM {
	return newCCNVM(lay, keys, ctrl, metaCfg, p, true, false)
}

// NewCCNVMWoDS builds the cc-NVM w/o DS ablation (deferred spreading
// off: full path recomputation per write-back).
func NewCCNVMWoDS(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p engine.Params) *CCNVM {
	return newCCNVM(lay, keys, ctrl, metaCfg, p, false, false)
}

// NewCCNVMExt builds the paper's §4.4 extension: cc-NVM plus persistent
// registers that record each dirty counter line's update count since
// the last committed drain. Recovery can then localize a data-replay
// attack inside the deferred-spreading window to the affected page —
// the one attack plain cc-NVM detects but cannot locate — at the cost
// of up to M extra persistent registers in the TCB. Timing is identical
// to cc-NVM (register updates are on-chip).
func NewCCNVMExt(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p engine.Params) *CCNVM {
	c := newCCNVM(lay, keys, ctrl, metaCfg, p, true, true)
	c.TCB.ExtDirty = make(map[mem.Addr]uint64)
	return c
}

func newCCNVM(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p engine.Params, ds, ext bool) *CCNVM {
	c := &CCNVM{deferred: ds, extRegs: ext, stash: make(map[mem.Addr]mem.Line)}
	c.InitBase(lay, keys, ctrl, metaCfg, p)
	// One write-back reserves the counter line plus its whole tree path;
	// a queue smaller than that cannot accept any write-back even right
	// after a drain, so clamp the capacity to the hardware floor.
	entries := c.P.QueueEntries
	if floor := 1 + lay.InternalLevels; entries < floor {
		entries = floor
	}
	c.queue = NewDirtyAddrQueue(entries)
	// Stashed epoch lines are still on chip: fetches must see them
	// instead of the stale NVM copies.
	c.StashLookup = func(a mem.Addr) (mem.Line, bool) {
		l, ok := c.stash[a]
		return l, ok
	}
	return c
}

// Name implements engine.Engine.
func (c *CCNVM) Name() string {
	switch {
	case c.extRegs:
		return names.CCNVMExt
	case c.deferred:
		return names.CCNVM
	default:
		return names.CCNVMWoDS
	}
}

// Queue exposes the dirty address queue for tests and diagnostics.
func (c *CCNVM) Queue() *DirtyAddrQueue { return c.queue }

// AvgEpochLength reports the mean number of write-backs per closed
// epoch, 0 before the first drain.
func (c *CCNVM) AvgEpochLength() float64 {
	if c.StatsRef().Drains == 0 {
		return 0
	}
	return float64(c.epochLenSum) / float64(c.StatsRef().Drains)
}

// ReadBlock implements engine.Engine: the shared verified read path; a
// fetch that displaces dirty metadata fires draining trigger 2.
func (c *CCNVM) ReadBlock(now int64, addr mem.Addr) (mem.Line, int64) {
	pt, done := c.Base.ReadBlock(now, addr)
	c.absorbEvicts()
	if len(c.stash) > 0 {
		c.drain(now, DrainEvict)
	}
	return pt, done
}

// WriteBack implements engine.Engine: the cc-NVM fast path. The
// write-back waits only for the dirty-address-queue reservation and the
// data HMAC; Merkle work is deferred to the drain (with DS) or performed
// on chip (w/o DS) without blocking the data's entry into the WPQ.
func (c *CCNVM) WriteBack(now int64, addr mem.Addr, pt mem.Line) int64 {
	c.StatsRef().Writebacks++
	slot, accept := c.AcquireWBSlot(now)
	if c.drainBusyUntil > accept {
		accept = c.drainBusyUntil
	}

	// Reserve dirty-address-queue entries for the counter line and every
	// path node (deferred spreading computes them only at drain time).
	// The reservation — and a drain, if the queue cannot take the new
	// entries — is on the eviction's critical path: the paper's §5.1
	// attributes cc-NVM's residual IPC loss to exactly this wait.
	ca := c.Lay.CounterLineOf(addr)
	leaf := c.Lay.CounterLineIndex(ca)
	needed := append([]mem.Addr{ca}, c.Lay.PathFrom(leaf)...)
	t := accept + c.P.QueueLookupCycles
	if c.queue.Missing(needed) > c.queue.Free() {
		t = c.drain(t, DrainQueueFull)
	}
	c.queue.Reserve(needed...)
	accept = t

	r := c.BumpCounter(t, addr)
	c.TCB.Nwb++
	c.epochWritebacks++
	if c.extRegs {
		c.TCB.ExtDirty[ca]++
	}

	tready := r.Avail
	if !c.deferred {
		// Without deferred spreading the full path and ROOTnew are
		// recomputed on every write-back; data may enter the WPQ only
		// after the root is updated.
		tready, _ = c.UpdatePathInCache(r.Avail, leaf)
	}
	done := c.WriteDataBlock(t, tready, addr, pt, r.Counter)

	drained := false
	if r.Overflow {
		// The page re-encryption rewrote data under new counters; the
		// counter line must reach NVM atomically with its path now.
		done = c.drain(done, DrainOverflow)
		drained = true
	}
	if !drained && r.UpdateCnt >= c.P.UpdateLimit {
		done = c.drain(done, DrainUpdateLimit)
		drained = true
	}
	c.absorbEvicts()
	if !drained && len(c.stash) > 0 {
		done = c.drain(done, DrainEvict)
	}
	c.ReleaseWBSlot(slot, done)
	return accept
}

// absorbEvicts moves displaced dirty metadata lines into the epoch
// stash. Every dirty line is tracked in the dirty address queue by
// construction, so stashed content stays part of the drain's flush set.
func (c *CCNVM) absorbEvicts() {
	for _, e := range c.TakePendingEvicts() {
		if !c.queue.Contains(e.Addr) {
			panic("ccnvm: dirty metadata line was not tracked in the dirty address queue")
		}
		c.stash[e.Addr] = e.Line
	}
}

// metaContent returns the newest content of a tracked metadata line:
// the meta cache, the epoch stash, or NVM (for reserved-but-clean
// lines).
func (c *CCNVM) metaContent(a mem.Addr) mem.Line {
	if l, ok := c.Meta.Peek(a); ok {
		return l
	}
	if l, ok := c.stash[a]; ok {
		return l
	}
	l, ok := c.Ctrl.Device().Peek(a)
	if !ok {
		switch c.Lay.RegionOf(a) {
		case mem.RegionCounter:
			return c.Tree.DefaultNode(0)
		case mem.RegionTree:
			level, _ := c.Lay.NodeAt(a)
			return c.Tree.DefaultNode(level)
		}
	}
	return l
}

// drain executes the atomic draining protocol (paper §4.2) and, with
// deferred spreading, the once-per-node Merkle recomputation (§4.3).
// It returns the cycle at which the drainer finished issuing — the
// point from which blocked write-backs may resume; the WPQ continues
// flushing in the background under ADR.
func (c *CCNVM) drain(now int64, cause DrainCause) int64 {
	c.absorbEvicts()
	tracked := c.queue.Addrs()
	if len(tracked) == 0 {
		return now
	}
	st := c.StatsRef()
	st.Drains++
	switch cause {
	case DrainQueueFull:
		st.DrainQueueFull++
	case DrainEvict:
		st.DrainEvict++
	case DrainUpdateLimit, DrainOverflow:
		st.DrainUpdateLimit++
	}
	c.epochLenSum += c.epochWritebacks
	c.epochWritebacks = 0

	t := now
	content := make(map[mem.Addr]mem.Line, len(tracked))
	for _, a := range tracked {
		content[a] = c.metaContent(a)
	}

	if c.deferred {
		// Deferred spreading: recompute each affected tree node exactly
		// once, bottom-up, from the dirty counter lines. Within a level
		// every child hash is independent, so the HMAC unit pipelines
		// them (one issue slot each); levels serialize on each other,
		// which is the residual cascade a drain cannot avoid. With
		// Workers > 1 the recomputation fans out by top-level subtree
		// (bmt.SpreadDeferred); the per-level counts driving the timing
		// model are partition-independent, so modeled time, HMACOps and
		// every recomputed node are identical to the serial walk.
		leaves := make(map[uint64]mem.Line)
		for _, a := range tracked {
			if c.Lay.RegionOf(a) == mem.RegionCounter {
				leaves[c.Lay.CounterLineIndex(a)] = content[a]
			}
		}
		// The lookup reads only pre-drain state (the initial content
		// snapshot, caches, NVM), never other workers' output: a parent is
		// always recomputed by the same shard as its children.
		nodes, counts, top := c.Tree.SpreadDeferred(leaves, func(pa mem.Addr) mem.Line {
			if l, ok := content[pa]; ok {
				return l
			}
			return c.metaContent(pa)
		}, c.P.Workers)
		for pa, node := range nodes {
			content[pa] = node
		}
		for _, n := range counts {
			if n == 0 {
				continue
			}
			c.StatsRef().HMACOps += uint64(n)
			t += c.P.HMACCycles + int64(n-1)*c.P.HMACIssueCycles
		}
		// Fold the recomputed top level into ROOTnew.
		for idx, node := range top {
			c.Tree.SetParentSlot(&c.TCB.RootNew, int(idx), node)
		}
	}

	// Atomic draining: start signal, epoch-held WPQ entries, end signal.
	// The typed protocol errors are unreachable from a correct drainer
	// (windows never nest, batches are bounded); a violation is a bug in
	// this engine, so it escalates. The one tolerated refusal is spare
	// exhaustion: the controller is in read-only degradation and no new
	// epoch may persist, so the epoch is parked — metadata stays dirty,
	// ROOTold stays at the last committed epoch, and runtime reads keep
	// verifying against the queue and caches.
	if err := c.Ctrl.BeginEpochDrain(); err != nil {
		var exhausted *nvm.SpareExhaustedError
		if errors.As(err, &exhausted) {
			return t
		}
		panic(err)
	}
	for _, a := range tracked {
		t = max(t, c.Ctrl.Write(t, a, content[a]))
	}
	if _, err := c.Ctrl.EndEpochDrain(t); err != nil {
		panic(err)
	}
	st.DrainLinesFlushed += uint64(len(tracked))

	// Commit: ROOTold now matches the NVM tree; the replay-window
	// counter resets, and so do the extension's per-line registers.
	c.TCB.RootOld = c.TCB.RootNew
	c.TCB.Nwb = 0
	if c.extRegs {
		c.TCB.ExtDirty = make(map[mem.Addr]uint64)
	}

	c.drainBusyUntil = t

	// The epoch's lines are now persistent: clean the survivors, refresh
	// the cache with recomputed nodes, and forget the stash.
	for _, a := range tracked {
		if c.Meta.Contains(a) {
			c.Meta.Fill(a, content[a])
			c.Meta.Clean(a)
		}
	}
	c.stash = make(map[mem.Addr]mem.Line)
	c.queue.Clear()
	// Refreshing resident lines cannot displace anything (Fill of a
	// resident line updates in place), so no evictions arise here.
	if recs := c.TakePendingEvicts(); len(recs) != 0 {
		panic("ccnvm: drain displaced metadata")
	}
	return t
}

// Settle implements engine.Engine: close the epoch.
func (c *CCNVM) Settle(now int64) int64 {
	return c.drain(now, DrainSettle)
}

// Crash implements engine.Engine. Whatever the drainer had not yet
// committed is lost with the caches; the NVM tree remains the last
// committed epoch, consistent with ROOTold.
func (c *CCNVM) Crash() *engine.CrashImage {
	c.ApplyCrashVolatility()
	c.stash = make(map[mem.Addr]mem.Line)
	c.queue.Clear()
	c.epochWritebacks = 0
	return c.MakeCrashImage(c.Name())
}

var _ engine.Engine = (*CCNVM)(nil)
