// Package core implements the paper's contribution: the cc-NVM secure
// memory controller with its epoch-based consistent Bonsai Merkle Tree,
// the drainer and its dirty address queue, the atomic draining protocol
// over the ADR write pending queue, deferred spreading of Merkle-tree
// updates, and the Nwb register that closes the deferred-spreading
// replay window. Both evaluated variants live here: CCNVM (with
// deferred spreading) and the cc-NVM w/o DS ablation.
package core

import (
	"ccnvm/internal/mem"
)

// DirtyAddrQueue is the drainer's tracking structure: the set of
// metadata line addresses (counter lines and Merkle-tree nodes) that
// belong to the current epoch and will be flushed, atomically, at the
// next drain. Entries are reserved eagerly — a write-back reserves its
// counter line and every path node even before the nodes are dirtied,
// as deferred spreading computes them only at drain time.
//
// Capacity is the paper's M parameter; exhaustion is draining trigger 1.
type DirtyAddrQueue struct {
	capacity int
	present  map[mem.Addr]bool
	order    []mem.Addr
}

// NewDirtyAddrQueue builds a queue with the given capacity (entries).
func NewDirtyAddrQueue(capacity int) *DirtyAddrQueue {
	if capacity <= 0 {
		panic("core: dirty address queue capacity must be positive")
	}
	return &DirtyAddrQueue{capacity: capacity, present: make(map[mem.Addr]bool, capacity)}
}

// Capacity returns M.
func (q *DirtyAddrQueue) Capacity() int { return q.capacity }

// Len returns the number of tracked addresses.
func (q *DirtyAddrQueue) Len() int { return len(q.order) }

// Free returns the number of unreserved entries.
func (q *DirtyAddrQueue) Free() int { return q.capacity - len(q.order) }

// Contains reports whether a is already tracked.
func (q *DirtyAddrQueue) Contains(a mem.Addr) bool { return q.present[mem.Align(a)] }

// Missing returns how many of addrs are not yet tracked; the caller
// checks it against Free before reserving.
func (q *DirtyAddrQueue) Missing(addrs []mem.Addr) int {
	n := 0
	for _, a := range addrs {
		if !q.present[mem.Align(a)] {
			n++
		}
	}
	return n
}

// Reserve tracks every address in addrs, skipping duplicates. It panics
// on overflow: callers must drain first when Missing exceeds Free, as
// the hardware blocks the write-back in that case.
func (q *DirtyAddrQueue) Reserve(addrs ...mem.Addr) {
	for _, a := range addrs {
		a = mem.Align(a)
		if q.present[a] {
			continue
		}
		if len(q.order) >= q.capacity {
			panic("core: dirty address queue overflow; drain before reserving")
		}
		q.present[a] = true
		q.order = append(q.order, a)
	}
}

// Addrs returns the tracked addresses in insertion order.
func (q *DirtyAddrQueue) Addrs() []mem.Addr {
	out := make([]mem.Addr, len(q.order))
	copy(out, q.order)
	return out
}

// Clear empties the queue after a committed drain.
func (q *DirtyAddrQueue) Clear() {
	q.order = q.order[:0]
	q.present = make(map[mem.Addr]bool, q.capacity)
}
