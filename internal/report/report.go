// Package report renders the evaluation's tables: fixed-width text
// tables of absolute and normalized metrics, matching the rows and
// series of the paper's figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple fixed-width table with one label column.
type Table struct {
	Title   string
	Columns []string // value column headers
	rows    []row
}

type row struct {
	label  string
	values []string
}

// NewTable creates a table with the given title and value columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of pre-formatted values.
func (t *Table) AddRow(label string, values ...string) {
	t.rows = append(t.rows, row{label, values})
}

// AddFloats appends a row of floats formatted to three decimals.
func (t *Table) AddFloats(label string, values ...float64) {
	s := make([]string, len(values))
	for i, v := range values {
		s[i] = fmt.Sprintf("%.3f", v)
	}
	t.AddRow(label, s...)
}

// String renders the table.
func (t *Table) String() string {
	labelW := len(t.Title)
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r.values {
			if i < len(colW) && len(v) > colW[i] {
				colW[i] = len(v)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", labelW, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[i], c)
	}
	b.WriteByte('\n')
	total := labelW
	for _, w := range colW {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.label)
		for i, v := range r.values {
			if i < len(colW) {
				fmt.Fprintf(&b, "  %*s", colW[i], v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GeoMean returns the geometric mean of positive values; the paper's
// "average" bars over normalized metrics are geometric means.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range values {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
