package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTableGolden pins the exact fixed-width rendering — column
// alignment, separator width, mixed row kinds — against a golden file,
// so accidental layout drift in the evaluation tables is caught.
func TestTableGolden(t *testing.T) {
	tb := NewTable("Normalized IPC", "gcc", "mcf", "average")
	tb.AddFloats("w/o CC", 1, 1, 1)
	tb.AddFloats("cc-NVM", 0.95, 0.92, 0.934987)
	tb.AddRow("writes", "1000", "4000", "n/a")
	got := []byte(tb.String())

	path := filepath.Join("testdata", "table.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run TestTableGolden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("table rendering diverges from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
