package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("bench", "A", "BB")
	tab.AddRow("x", "1", "2")
	tab.AddFloats("longer-label", 0.5, 1.25)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "bench") || !strings.Contains(lines[0], "BB") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[3], "0.500") || !strings.Contains(lines[3], "1.250") {
		t.Fatalf("float row wrong: %q", lines[3])
	}
	// Columns align: every data line has the same width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned rows:\n%s", s)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive values should yield 0")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}
