package design

import (
	"ccnvm/internal/core"
	"ccnvm/internal/design/names"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/seccrypto"
)

// The catalog: one Register call per design, paper order first. This is
// the single place a design's name, label, constructor, recovery
// strategy and capabilities are stated; everything else derives from it.
func init() {
	Register(Descriptor{
		Name:      names.WoCC,
		Label:     "w/o CC",
		InFigures: true,
		Baseline:  true,
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return engine.NewWoCC(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			// Secure but not crash consistent: on-chip counters and tree
			// state die with power, so even an un-attacked crash image
			// fails verification — tamper reports by design, unbounded
			// staleness, no replay evidence.
			CrashConsistent: false,
			TamperOnCrash:   true,
			TreePersisted:   true,
			TamperLocation:  LocateNothing,
			Replay:          ReplayUndetectable,
			// Recovery's own writes go through the shared journaled
			// Apply, so even the unrecoverable baseline re-enters
			// cleanly: what it failed to verify once it fails to verify
			// identically after any number of reboot loops.
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
	Register(Descriptor{
		Name:      names.SC,
		Label:     "SC",
		InFigures: true,
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return engine.NewSC(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			// Strict consistency persists the full metadata path per
			// write-back: recovery needs zero retries, and a clean crash
			// leaves nothing to recover.
			CrashConsistent:   true,
			TreePersisted:     true,
			EpochAtomic:       true,
			ZeroRetryRecovery: true,
			TamperLocation:    LocateLine,
			Replay:            ReplayRootCompare,
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
	Register(Descriptor{
		Name:      names.Osiris,
		Label:     "Osiris Plus",
		InFigures: true,
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return engine.NewOsiris(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			// Osiris bounds counter staleness but does not persist its
			// tree: step 1 is skipped, and replay is detect-only via the
			// rebuilt-root comparison.
			CrashConsistent:   true,
			TreePersisted:     false,
			TamperLocation:    LocateLine,
			Replay:            ReplayRootCompare,
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
	Register(Descriptor{
		Name:      names.CCNVMWoDS,
		Label:     "cc-NVM w/o DS",
		InFigures: true,
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return core.NewCCNVMWoDS(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			// cc-NVM without deferred spreading: epoch-atomic persistence
			// but no Nwb window evidence — replay is root-compare only.
			CrashConsistent:   true,
			TreePersisted:     true,
			EpochAtomic:       true,
			TamperLocation:    LocateLine,
			Replay:            ReplayRootCompare,
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
	Register(Descriptor{
		Name:      names.CCNVM,
		Label:     "cc-NVM",
		InFigures: true,
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return core.NewCCNVM(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			// The paper's design: epoch-atomic persistence plus the Nwb
			// register, so the deferred-spreading replay window is
			// detected (though not located) by Nretry-vs-Nwb.
			CrashConsistent:   true,
			TreePersisted:     true,
			EpochAtomic:       true,
			TamperLocation:    LocateLine,
			Replay:            ReplayNwbWindow,
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
	Register(Descriptor{
		Name:  names.CCNVMExt,
		Label: "cc-NVM+Ext",
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return core.NewCCNVMExt(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			// §4.4 extension: per-counter-line update registers pin a
			// window replay to its 4 KiB page.
			CrashConsistent:   true,
			TreePersisted:     true,
			EpochAtomic:       true,
			TamperLocation:    LocateLine,
			Replay:            ReplayPerLinePage,
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
	Register(Descriptor{
		Name:  names.Arsenal,
		Label: "Arsenal",
		New: func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine {
			return engine.NewArsenal(lay, keys, ctrl, mc, p)
		},
		Strategy: RecoverInlinePacked,
		Caps: Capabilities{
			// Compression baseline: counters/HMACs inline in packed lines,
			// recovered without retries (but blocks still count as
			// recovered, so no ZeroRetryRecovery claim); replay of a whole
			// self-consistent line is detect-only via root compare.
			CrashConsistent:   true,
			TreePersisted:     true,
			TamperLocation:    LocateLine,
			Replay:            ReplayRootCompare,
			ReentrantRecovery: true,
			RebootStride:      3,
			SpareManaged:      true,
		},
	})
}
