// Package names holds the canonical design-name constants. It is a
// leaf package (no imports) so that the engine implementations can name
// themselves and the design registry can key its descriptors without an
// import cycle: engine/core import names; internal/design imports
// engine and core. Everything else should go through internal/design —
// these constants exist so design-name string literals never appear
// outside the internal/design tree (enforced by `make lint-designs`).
package names

// The seven registered designs, in the paper's order followed by the
// extensions.
const (
	WoCC      = "wocc"       // secure NVM without crash consistency (baseline)
	SC        = "sc"         // strict consistency
	Osiris    = "osiris"     // Osiris Plus
	CCNVMWoDS = "ccnvm-wods" // cc-NVM without deferred spreading
	CCNVM     = "ccnvm"      // cc-NVM (the paper's contribution)
	CCNVMExt  = "ccnvm-ext"  // §4.4 extension: per-line update registers
	Arsenal   = "arsenal"    // related-work compression baseline
)
