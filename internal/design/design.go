// Package design is the central registry of secure-NVM designs. Every
// design contributes exactly one Descriptor — its name, paper label,
// engine constructor, recovery strategy and declarative capability set —
// and every consumer (sim, recovery, torture, experiments, the CLIs)
// dispatches off the registry instead of re-encoding per-design facts in
// scattered string switches. Adding a design is one Register call in
// catalog.go; `make lint-designs` keeps dispatch from re-scattering.
package design

import (
	"fmt"
	"sort"
	"strings"

	"ccnvm/internal/design/names"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/seccrypto"
)

// Re-exported name constants: consumers say design.CCNVM instead of a
// string literal. The underlying constants live in the leaf package
// internal/design/names so the engine implementations can use them too.
const (
	WoCC      = names.WoCC
	SC        = names.SC
	Osiris    = names.Osiris
	CCNVMWoDS = names.CCNVMWoDS
	CCNVM     = names.CCNVM
	CCNVMExt  = names.CCNVMExt
	Arsenal   = names.Arsenal
)

// Constructor builds a design's security engine over a laid-out NVM
// device reached through the given memory controller.
type Constructor func(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, mc metacache.Config, p engine.Params) engine.Engine

// Strategy selects which recovery procedure applies to a design's crash
// image. The recovery package maps each value to its implementation;
// design only declares the choice, so the two packages stay acyclic.
type Strategy int

const (
	// RecoverCounterRetry is the generic four-step process (paper §4.4):
	// verify the persisted tree, recover stalled counters by bounded
	// data-HMAC retries, compare the retry total against the design's
	// replay-window evidence, rebuild the tree.
	RecoverCounterRetry Strategy = iota

	// RecoverInlinePacked is the compression-baseline variant: counters
	// and HMACs live inline in packed lines, so recovery unpacks instead
	// of retrying, then rebuilds and root-compares.
	RecoverInlinePacked
)

// ReplayDetection classifies how (and whether) a design detects a
// data-replay inside its post-crash window, i.e. recovery's step 3.
type ReplayDetection int

const (
	// ReplayUndetectable: the design keeps no evidence; replayed stale
	// data recovers silently (the w/o-CC baseline's failure mode).
	ReplayUndetectable ReplayDetection = iota

	// ReplayRootCompare: the rebuilt tree root is compared against the
	// persisted ROOTnew — detect-only, nothing can be located.
	ReplayRootCompare

	// ReplayNwbWindow: the persisted write-back counter Nwb must equal
	// the recovery retry total Nretry — cc-NVM's detected-but-not-located
	// verdict on the deferred-spreading window.
	ReplayNwbWindow

	// ReplayPerLinePage: per-counter-line update registers pin a window
	// replay to the 4 KiB page it hit — the §4.4 extension.
	ReplayPerLinePage
)

// Granularity is how precisely a design locates a tampered object.
type Granularity int

const (
	// LocateNothing: tampering is at best detected, never pinned.
	LocateNothing Granularity = iota

	// LocateLine: tampering is pinned to the affected line/block.
	LocateLine
)

// Capabilities is the declarative per-design fact sheet the oracles and
// recovery consult instead of matching on names.
type Capabilities struct {
	// CrashConsistent: every acknowledged write survives a clean (not
	// attacked, not media-damaged) crash and recovery reports clean.
	CrashConsistent bool

	// TamperOnCrash: the design cries wolf on a clean crash — losing
	// on-chip metadata makes the image unverifiable, so recovery reports
	// tampering by design (the w/o-CC baseline).
	TamperOnCrash bool

	// TreePersisted: the integrity tree is persisted consistently enough
	// for recovery step 1 to verify it against ROOTold/ROOTnew. Osiris
	// does not persist its tree and skips the step.
	TreePersisted bool

	// EpochAtomic: crash recovery lands exactly on an epoch boundary —
	// counter/tree persistence is atomic per epoch, so attacks on
	// persisted counters or tree nodes are caught and located in step 1
	// and the retry total is architecturally pinned.
	EpochAtomic bool

	// ZeroRetryRecovery: the design persists every counter before
	// acknowledging the write-back, so an un-attacked, un-damaged crash
	// recovers with zero HMAC retries and zero recovered blocks (SC).
	ZeroRetryRecovery bool

	// TamperLocation: granularity at which spoofing/splicing is pinned.
	TamperLocation Granularity

	// Replay: how the post-crash replay window is detected (step 3).
	Replay ReplayDetection

	// ReentrantRecovery: the design's recovery journals its own NVM
	// writes, so a power failure during recovery resumes from the
	// persisted journal instead of restarting blind, and repeated
	// reboot-crash-reboot loops converge to the single-shot result.
	ReentrantRecovery bool

	// RebootStride bounds re-entrant recovery's convergence: across any
	// RebootStride consecutive interrupted recovery passes (each struck
	// at its k-th persisted write, k >= 2), the remaining write plan
	// shrinks by at least one entry — so the total reboots needed to
	// converge are at most RebootStride times the initial plan size,
	// plus the stride itself for the journal bootstrap. Zero when
	// ReentrantRecovery is false.
	RebootStride int

	// SpareManaged: the design tolerates finite spare-pool media
	// management — its recovery validates and replays the device's
	// persisted remap table before the four-step walk, and its images
	// stay recoverable across a remap-commit rollback. The torture
	// harness refuses the spare-exhaustion axis on designs that do not
	// declare it.
	SpareManaged bool
}

// Descriptor is one registered design.
type Descriptor struct {
	// Name is the canonical design name (a names.* constant) used in
	// configs, flags, crash images and CSV columns.
	Name string

	// Label is the paper's display label (figure legends, tables).
	Label string

	// InFigures marks the five designs evaluated in the paper's figures;
	// the rest are extensions and related-work baselines.
	InFigures bool

	// Baseline marks the normalization baseline (w/o CC): figure sweeps
	// divide by its IPC and write counts.
	Baseline bool

	// New constructs the design's security engine.
	New Constructor

	// Strategy selects the recovery procedure for the design's images.
	Strategy Strategy

	// Caps is the design's declarative capability set.
	Caps Capabilities
}

// registry holds descriptors in registration order; catalog.go registers
// the paper's five first, then the extensions, so Names() preserves the
// historical ordering every figure and golden file assumes.
var registry []Descriptor

// Register adds a descriptor. It panics on duplicates or incomplete
// descriptors — registration happens in init, so a bad catalog entry is
// a programming error, not a runtime condition.
func Register(d Descriptor) {
	switch {
	case d.Name == "":
		panic("design: Register with empty Name")
	case d.Label == "":
		panic(fmt.Sprintf("design: %q registered without a label", d.Name))
	case d.New == nil:
		panic(fmt.Sprintf("design: %q registered without a constructor", d.Name))
	}
	for _, e := range registry {
		if e.Name == d.Name {
			panic(fmt.Sprintf("design: %q registered twice", d.Name))
		}
	}
	registry = append(registry, d)
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	for _, d := range registry {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// MustLookup is Lookup for names already validated; it panics on an
// unregistered name.
func MustLookup(name string) Descriptor {
	d, ok := Lookup(name)
	if !ok {
		panic(UnknownError(name))
	}
	return d
}

// UnknownError is the uniform unknown-design error: it names the culprit
// and lists every registered name, sorted, so a CLI typo is self-fixing.
func UnknownError(name string) error {
	reg := Names()
	sort.Strings(reg)
	return fmt.Errorf("unknown design %q (registered: %s)", name, strings.Join(reg, ", "))
}

// Names lists every registered design in registration order (the
// paper's five, then the extensions).
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// PaperNames lists the designs evaluated in the paper's figures, in the
// paper's order.
func PaperNames() []string {
	var out []string
	for _, d := range registry {
		if d.InFigures {
			out = append(out, d.Name)
		}
	}
	return out
}

// Label maps a design name to its display label; unregistered names
// label as themselves so ad-hoc experiment columns still render.
func Label(name string) string {
	if d, ok := Lookup(name); ok {
		return d.Label
	}
	return name
}

// BaselineName returns the normalization baseline's name.
func BaselineName() string {
	for _, d := range registry {
		if d.Baseline {
			return d.Name
		}
	}
	panic("design: no baseline registered")
}

// All returns a copy of every descriptor in registration order.
func All() []Descriptor {
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// ForImage resolves the descriptor recovery should use for a crash
// image. Unregistered names (hand-built test images, forward-compat)
// fall back to the conservative historical behaviour: generic recovery,
// tree verified in step 1, no replay-window claim.
func ForImage(name string) Descriptor {
	if d, ok := Lookup(name); ok {
		return d
	}
	return Descriptor{
		Name:     name,
		Label:    name,
		Strategy: RecoverCounterRetry,
		Caps: Capabilities{
			TreePersisted:  true,
			TamperLocation: LocateLine,
			Replay:         ReplayUndetectable,
			// Unregistered images still go through the journaled Apply,
			// so the re-entrancy contract holds for them too.
			ReentrantRecovery: true,
			RebootStride:      3,
			// Table validation lives in the shared Recover front end, so
			// unregistered images get it as well.
			SpareManaged: true,
		},
	}
}
