package design_test

import (
	"reflect"
	"testing"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
)

const capacity = 1 << 30

// TestDescriptorsComplete asserts every registered descriptor is fully
// usable: non-empty unique name and label, a constructor that builds an
// engine answering to the registered name, and a recovery strategy that
// round-trips a real crash image.
func TestDescriptorsComplete(t *testing.T) {
	all := design.All()
	if len(all) == 0 {
		t.Fatal("no designs registered")
	}
	labels := map[string]string{}
	for _, d := range all {
		if d.Name == "" || d.Label == "" {
			t.Fatalf("descriptor %+v has an empty name or label", d)
		}
		if prev, dup := labels[d.Label]; dup {
			t.Fatalf("designs %s and %s share the label %q", prev, d.Name, d.Label)
		}
		labels[d.Label] = d.Name
		if d.New == nil {
			t.Fatalf("%s registered without a constructor", d.Name)
		}
		if got := design.Label(d.Name); got != d.Label {
			t.Fatalf("Label(%s) = %q, want %q", d.Name, got, d.Label)
		}

		lay := mem.MustLayout(capacity)
		dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
		ctrl := memctrl.New(memctrl.Config{}, dev)
		e := d.New(lay, seccrypto.DefaultKeys(), ctrl, metacache.Config{}, engine.Params{UpdateLimit: 4})
		if e == nil {
			t.Fatalf("%s constructor returned nil", d.Name)
		}
		if e.Name() != d.Name {
			t.Fatalf("%s constructor built an engine calling itself %q", d.Name, e.Name())
		}

		// Strategy round-trip: drive a few write-backs, crash, recover.
		// The report must carry the design name, and every crash-consistent
		// design must recover a clean un-attacked image.
		now := int64(0)
		for i, a := range []mem.Addr{0, 64, 4096, 64 << 10} {
			for v := 0; v < 3; v++ {
				var l mem.Line
				for j := range l {
					l[j] = byte(i + v + j)
				}
				now = e.WriteBack(now, a, l) + 50
			}
		}
		img := e.Crash()
		rep := recovery.Recover(img)
		if rep.Design != d.Name {
			t.Fatalf("%s: recovery report names design %q", d.Name, rep.Design)
		}
		if d.Caps.CrashConsistent && !rep.Clean() {
			t.Fatalf("%s claims crash consistency but a clean crash recovered dirty: %+v", d.Name, rep)
		}
		if d.Caps.ZeroRetryRecovery && rep.Nretry != 0 {
			t.Fatalf("%s claims zero-retry recovery but needed %d retries", d.Name, rep.Nretry)
		}
		if d.Caps.TamperOnCrash == d.Caps.CrashConsistent {
			t.Fatalf("%s: TamperOnCrash and CrashConsistent must be complements in the current catalog", d.Name)
		}
	}
	// The paper designs are the in-figure prefix of the full list, and
	// the baseline is one of them.
	names, paper := design.Names(), design.PaperNames()
	if !reflect.DeepEqual(names[:len(paper)], paper) {
		t.Fatalf("PaperNames %v is not a prefix of Names %v", paper, names)
	}
	base := design.BaselineName()
	if d := design.MustLookup(base); !d.InFigures {
		t.Fatalf("baseline %s is not an in-figures design", base)
	}
}

// TestCapabilitiesMatchPreRegistryBehaviour cross-checks the declarative
// capability matrix against the hard-coded per-design behaviour the
// scattered switches encoded before the registry existed. Each map below
// is a literal transcription of a pre-refactor switch statement; if a
// catalog edit drifts from them, this test names the disagreement.
func TestCapabilitiesMatchPreRegistryBehaviour(t *testing.T) {
	oldLabels := map[string]string{
		"wocc":       "w/o CC",
		"sc":         "SC",
		"osiris":     "Osiris Plus",
		"ccnvm-wods": "cc-NVM w/o DS",
		"ccnvm":      "cc-NVM",
		"ccnvm-ext":  "cc-NVM+Ext",
		"arsenal":    "Arsenal",
	}
	oldAll := []string{"wocc", "sc", "osiris", "ccnvm-wods", "ccnvm", "ccnvm-ext", "arsenal"}
	oldPaper := []string{"wocc", "sc", "osiris", "ccnvm-wods", "ccnvm"}
	// torture.treePersisting: designs whose crash image must verify
	// against exactly one root register (epoch-atomic drains).
	oldTreePersisting := map[string]bool{"sc": true, "ccnvm": true, "ccnvm-wods": true, "ccnvm-ext": true}
	// recovery step 1 ran for every design except osiris.
	oldStep1Skipped := map[string]bool{"osiris": true}
	// recovery step 3 switch arms.
	oldNwbWindow := map[string]bool{"ccnvm": true}
	oldPerLinePage := map[string]bool{"ccnvm-ext": true}
	// the rebuilt-root comparison arms (arsenal's lives in its own path).
	oldRootCompare := map[string]bool{"osiris": true, "ccnvm-wods": true, "sc": true, "arsenal": true}
	// the inline-packed recovery special case.
	oldInlinePacked := map[string]bool{"arsenal": true}
	// oracle special cases: sc expects zero retries, wocc is exempt from
	// clean-recovery/attack-caught (cries wolf on every crash).
	oldZeroRetry := map[string]bool{"sc": true}
	oldCryWolf := map[string]bool{"wocc": true}
	// experiments normalized everything against wocc.
	oldBaseline := "wocc"

	if got := design.Names(); !reflect.DeepEqual(got, oldAll) {
		t.Fatalf("Names() = %v, pre-refactor AllDesigns was %v", got, oldAll)
	}
	if got := design.PaperNames(); !reflect.DeepEqual(got, oldPaper) {
		t.Fatalf("PaperNames() = %v, pre-refactor Designs was %v", got, oldPaper)
	}
	if got := design.BaselineName(); got != oldBaseline {
		t.Fatalf("BaselineName() = %q, pre-refactor baseline was %q", got, oldBaseline)
	}
	for _, d := range design.All() {
		if d.Label != oldLabels[d.Name] {
			t.Errorf("%s: label %q, pre-refactor DesignLabel said %q", d.Name, d.Label, oldLabels[d.Name])
		}
		if d.Caps.EpochAtomic != oldTreePersisting[d.Name] {
			t.Errorf("%s: EpochAtomic=%v, pre-refactor treePersisting said %v",
				d.Name, d.Caps.EpochAtomic, oldTreePersisting[d.Name])
		}
		if d.Caps.TreePersisted == oldStep1Skipped[d.Name] {
			t.Errorf("%s: TreePersisted=%v, but recovery step 1 %s run for it before the registry",
				d.Name, d.Caps.TreePersisted, map[bool]string{true: "did not", false: "did"}[oldStep1Skipped[d.Name]])
		}
		if got := d.Caps.Replay == design.ReplayNwbWindow; got != oldNwbWindow[d.Name] {
			t.Errorf("%s: NwbWindow=%v, pre-refactor step 3 said %v", d.Name, got, oldNwbWindow[d.Name])
		}
		if got := d.Caps.Replay == design.ReplayPerLinePage; got != oldPerLinePage[d.Name] {
			t.Errorf("%s: PerLinePage=%v, pre-refactor step 3 said %v", d.Name, got, oldPerLinePage[d.Name])
		}
		if got := d.Caps.Replay == design.ReplayRootCompare; got != oldRootCompare[d.Name] {
			t.Errorf("%s: RootCompare=%v, pre-refactor root comparison said %v", d.Name, got, oldRootCompare[d.Name])
		}
		if got := d.Strategy == design.RecoverInlinePacked; got != oldInlinePacked[d.Name] {
			t.Errorf("%s: InlinePacked=%v, pre-refactor arsenal dispatch said %v", d.Name, got, oldInlinePacked[d.Name])
		}
		if d.Caps.ZeroRetryRecovery != oldZeroRetry[d.Name] {
			t.Errorf("%s: ZeroRetryRecovery=%v, pre-refactor SC oracle said %v",
				d.Name, d.Caps.ZeroRetryRecovery, oldZeroRetry[d.Name])
		}
		if d.Caps.TamperOnCrash != oldCryWolf[d.Name] {
			t.Errorf("%s: TamperOnCrash=%v, pre-refactor wocc exemptions said %v",
				d.Name, d.Caps.TamperOnCrash, oldCryWolf[d.Name])
		}
		if got := d.Caps.TamperLocation == design.LocateNothing; got != oldCryWolf[d.Name] {
			t.Errorf("%s: TamperLocation=%v disagrees with the pre-refactor location claims", d.Name, d.Caps.TamperLocation)
		}
	}
}

// TestForImageFallback pins the conservative behaviour Recover applies
// to crash images of unregistered designs — the same path hand-built
// test images took before the registry existed: generic recovery, tree
// verified in step 1, no replay-window claim.
func TestForImageFallback(t *testing.T) {
	d := design.ForImage("experimental-thing")
	if d.Strategy != design.RecoverCounterRetry {
		t.Fatalf("fallback strategy = %v, want generic counter-retry", d.Strategy)
	}
	if !d.Caps.TreePersisted {
		t.Fatal("fallback must verify the tree in step 1, as pre-registry Recover did for any non-osiris name")
	}
	if d.Caps.Replay != design.ReplayUndetectable {
		t.Fatalf("fallback replay detection = %v, want none", d.Caps.Replay)
	}
	reg, ok := design.Lookup("ccnvm")
	got := design.ForImage("ccnvm")
	if !ok || got.Name != reg.Name || got.Strategy != reg.Strategy || got.Caps != reg.Caps {
		t.Fatal("ForImage must return the registered descriptor for registered names")
	}
}

// TestUnknownErrorListsNames asserts the CLI-facing error names every
// registered design, so a flag typo is self-fixing.
func TestUnknownErrorListsNames(t *testing.T) {
	err := design.UnknownError("cc-nvm")
	for _, n := range design.Names() {
		if !contains(err.Error(), n) {
			t.Fatalf("UnknownError output %q does not list %q", err, n)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
