package design_test

import (
	"os"
	"strings"
	"testing"

	"ccnvm/internal/design"
)

// TestReadmeDesignTable renders the README's design table from the
// registry and fails if the committed markdown has drifted. The table
// lives between the designs:begin/end markers; regenerate it by
// pasting this test's "want" output on mismatch.
func TestReadmeDesignTable(t *testing.T) {
	raw, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	const begin, end = "<!-- designs:begin -->", "<!-- designs:end -->"
	text := string(raw)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(text[i+len(begin) : j])
	want := strings.TrimSpace(renderDesignTable())
	if got != want {
		t.Errorf("README design table is out of date.\n--- README has ---\n%s\n--- registry renders ---\n%s", got, want)
	}
}

// renderDesignTable is the single rendering of the registry the README
// commits to. Everything in it derives from the Descriptor fields.
func renderDesignTable() string {
	var b strings.Builder
	b.WriteString("| design | paper label | role | recovery | capabilities |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, d := range design.All() {
		role := "extra"
		switch {
		case d.Baseline:
			role = "figures (baseline)"
		case d.InFigures:
			role = "figures"
		}
		strat := "counter retry"
		if d.Strategy == design.RecoverInlinePacked {
			strat = "inline packed"
		}
		b.WriteString("| `" + d.Name + "` | " + d.Label + " | " + role + " | " + strat + " | " + capsWords(d.Caps) + " |\n")
	}
	return b.String()
}

func capsWords(c design.Capabilities) string {
	var parts []string
	if c.CrashConsistent {
		parts = append(parts, "crash-consistent")
	} else {
		parts = append(parts, "crash reads as tamper")
	}
	if !c.TreePersisted {
		parts = append(parts, "volatile tree")
	}
	if c.EpochAtomic {
		parts = append(parts, "epoch-atomic")
	}
	if c.ZeroRetryRecovery {
		parts = append(parts, "zero-retry recovery")
	}
	switch c.Replay {
	case design.ReplayRootCompare:
		parts = append(parts, "replay: root compare")
	case design.ReplayNwbWindow:
		parts = append(parts, "replay: Nwb window")
	case design.ReplayPerLinePage:
		parts = append(parts, "replay: per-line page")
	default:
		parts = append(parts, "replay undetected")
	}
	return strings.Join(parts, "; ")
}
