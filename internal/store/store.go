// Package store is the servable storage-engine facade: the one front
// door through which everything outside the secure-NVM core — the
// simulator, the torture harness, the experiments, the KV layer and the
// CLIs — reaches a security engine. It assembles the layered machine
// (layout, NVM device, memory controller, security engine) exactly the
// way the simulator always wired it, and exposes a concurrency-safe
// Open/Read/Write/DeleteRange/FlushEpoch/Snapshot/Close lifecycle over
// the secure NVM address space:
//
//   - Writes go through the engine's write-back path, so they are
//     encrypted, authenticated and batched into ADR epochs by the
//     design's own drain policy; FlushEpoch forces the epoch closed,
//     which is the durability point a server acknowledges at.
//   - Reads decrypt and verify through the engine; a never-written line
//     reads as zero, exactly like a fresh DIMM.
//   - Snapshot captures the adversary-visible NVM image via the COW
//     mem.Store.Clone — O(shards), so point-in-time readers are cheap.
//   - Read-only admission from the controller's media-health machine is
//     surfaced as typed errors instead of silent drops.
//   - Crash/OpenRecovered ride the existing four-step recovery plus
//     recovery-journal path, so a facade-served namespace recovers with
//     the same guarantees the torture matrix pins for raw traffic.
//
// The package also re-exports the controller types consumers need
// (Config, Stats, HealthState) as aliases, so the layering lint can
// forbid direct internal/memctrl imports outside the core without
// breaking a single golden: an alias is the identical type.
package store

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
)

// Controller type re-exports. These are aliases, not definitions: a
// sim.Config or torture Context declared against them is bit-identical
// to one declared against the memctrl originals, which is what keeps
// every golden file byte-stable across the facade extraction.
type (
	// ControllerConfig sizes the memory controller (banks, queues).
	ControllerConfig = memctrl.Config
	// ControllerStats reports controller-level contention and fault
	// counters.
	ControllerStats = memctrl.Stats
	// HealthState is the controller's media-health state machine.
	HealthState = memctrl.HealthState
	// Event is one persistence-ordering event from the controller's
	// observational tap.
	Event = memctrl.Event
)

// Health states, re-exported for admission checks at the facade's rim.
const (
	HealthHealthy  = memctrl.HealthHealthy
	HealthDegraded = memctrl.HealthDegraded
	HealthReadOnly = memctrl.HealthReadOnly
)

// Typed facade errors.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("store: closed")
	// ErrReadOnly reports a write refused by read-only media degradation
	// (the spare pool is exhausted; reads keep verifying).
	ErrReadOnly = errors.New("store: media is read-only (spare pool exhausted)")
	// ErrCrashed reports a write struck by an armed crash point: the
	// simulated power failure happened before this write, so it never
	// reached the media. See ArmCrash.
	ErrCrashed = errors.New("store: power failed before this write")
)

// AddrError reports an address outside the store's data region.
type AddrError struct {
	Addr mem.Addr
	Cap  uint64
}

func (e *AddrError) Error() string {
	return fmt.Sprintf("store: address %#x outside the %d-byte data region", uint64(e.Addr), e.Cap)
}

// Options configures Open. Zero values select the paper's machine:
// design cc-NVM, controller and metadata-cache defaults, deterministic
// keys.
type Options struct {
	Design   string // a design registered in internal/design (default cc-NVM)
	Capacity uint64 // NVM data capacity in bytes (default 16 GiB)

	Params engine.Params
	Ctrl   ControllerConfig
	Meta   metacache.Config
	Keys   *seccrypto.Keys

	// Faults installs a media fault model on the NVM device; nil is the
	// idealized device.
	Faults *nvm.FaultModel
}

func (o *Options) fill() error {
	if o.Design == "" {
		o.Design = design.CCNVM
	}
	if o.Capacity == 0 {
		o.Capacity = 16 << 30
	}
	if o.Keys == nil {
		k := seccrypto.DefaultKeys()
		o.Keys = &k
	}
	if _, ok := design.Lookup(o.Design); !ok {
		return fmt.Errorf("store: %w", design.UnknownError(o.Design))
	}
	return nil
}

// Store is one assembled secure-NVM storage engine. All methods are
// safe for concurrent use; the single mutex serializes the underlying
// deterministic engine, which is the concurrency model the paper's
// single memory controller implies (parallelism lives inside the
// engine's sharded epoch pipeline, enabled via Params.Workers).
type Store struct {
	mu   sync.Mutex
	opts Options
	lay  *mem.Layout
	dev  *nvm.Device
	ctrl *memctrl.Controller
	eng  engine.Engine
	now  int64 // engine-facing virtual clock (cycles)

	closed  bool
	crashed bool

	// Crash-point arming (see ArmCrash): after armWrites facade writes
	// have been accepted, every further write is struck.
	armed      bool
	armWrites  int
	seenWrites int

	refusedWrites uint64
}

// Open assembles a fresh machine over an empty NVM. The wiring order
// mirrors the simulator exactly (fault model before the controller is
// built, engine from the design registry), so a facade-assembled engine
// is bit-identical to a sim-assembled one.
func Open(o Options) (*Store, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	lay, err := mem.NewLayout(o.Capacity)
	if err != nil {
		return nil, err
	}
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	// The fault model must be in place before the controller exists: the
	// controller decides at construction whether to track in-flight WPQ
	// entries for crash-time fault injection.
	dev.SetFaultModel(o.Faults)
	ctrl := memctrl.New(o.Ctrl, dev)
	d, ok := design.Lookup(o.Design)
	if !ok {
		return nil, fmt.Errorf("store: %w", design.UnknownError(o.Design))
	}
	eng := d.New(lay, *o.Keys, ctrl, o.Meta, o.Params)
	return &Store{opts: o, lay: lay, dev: dev, ctrl: ctrl, eng: eng}, nil
}

// OpenRecovered boots a store from a recovered crash image: the device
// is restored from the image and the engine resumes from the recovered
// TCB registers, exactly as a rebooted controller would. The caller
// runs Recover/Apply first (or uses the Reboot convenience below) and
// passes the resulting TCB state.
func OpenRecovered(img *engine.CrashImage, rec recovery.Recovered, o Options) (*Store, error) {
	o.Design = img.Design
	o.Capacity = img.Image.Layout.DataBytes
	if o.Keys == nil {
		k := img.Keys
		o.Keys = &k
	}
	if o.Params.UpdateLimit == 0 {
		o.Params.UpdateLimit = img.UpdateLimit
	}
	if o.Params.Workers == 0 {
		o.Params.Workers = img.Workers
	}
	st, err := Open(o)
	if err != nil {
		return nil, err
	}
	st.dev.Restore(img.Image)
	type tcbRestorer interface{ RestoreTCB(engine.TCB) }
	r, ok := st.eng.(tcbRestorer)
	if !ok {
		return nil, fmt.Errorf("store: design %s cannot restore TCB state", img.Design)
	}
	r.RestoreTCB(rec.TCB)
	return st, nil
}

// Reboot runs the full crash-to-serving path on an image: four-step
// recovery (resuming an interrupted Apply from the persisted journal if
// one is active), Apply, and OpenRecovered. It returns the recovery
// report alongside the store so callers can refuse tampered images.
func Reboot(img *engine.CrashImage, o Options) (*Store, *recovery.Report, error) {
	rep := recovery.Recover(img)
	if !rep.Clean() {
		return nil, rep, fmt.Errorf("store: image does not recover clean (tampered=%d, lossless=%v)",
			len(rep.Tampered), rep.Lossless())
	}
	rec := recovery.Apply(img, rep)
	st, err := OpenRecovered(img, rec, o)
	if err != nil {
		return nil, rep, err
	}
	return st, rep, nil
}

// Design names the engine serving this store.
func (s *Store) Design() string { return s.opts.Design }

// Layout exposes the NVM address-space layout.
func (s *Store) Layout() *mem.Layout { return s.lay }

// Capacity is the data-region capacity in bytes.
func (s *Store) Capacity() uint64 { return s.lay.DataBytes }

// Engine exposes the underlying security engine for callers that drive
// the timed simulation path themselves (the cycle-level simulator).
// Such callers own the clock and must not interleave with facade ops.
func (s *Store) Engine() engine.Engine { return s.eng }

// Device exposes the NVM device (snapshots, wear and spare accounting).
func (s *Store) Device() *nvm.Device { return s.dev }

// Now returns the facade's virtual clock in engine cycles.
func (s *Store) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// checkAddr validates a data-region address.
func (s *Store) checkAddr(a mem.Addr) error {
	if uint64(a) >= s.lay.DataBytes {
		return &AddrError{Addr: a, Cap: s.lay.DataBytes}
	}
	return nil
}

// Read fetches, decrypts and authenticates the line at a. Never-written
// lines read as zero.
func (s *Store) Read(a mem.Addr) (mem.Line, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return mem.Line{}, ErrClosed
	}
	if err := s.checkAddr(a); err != nil {
		return mem.Line{}, err
	}
	pt, done := s.eng.ReadBlock(s.now, mem.Align(a))
	s.now = done
	return pt, nil
}

// Write encrypts, authenticates and persists the line at a through the
// engine's write-back path. The write is durable once the covering
// FlushEpoch returns (writes are batched into ADR epochs; the design's
// drain policy may persist them earlier, never later).
func (s *Store) Write(a mem.Addr, l mem.Line) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeLocked(a, l)
}

// WriteBatch writes addrs[i] <- lines[i] in order under one lock
// acquisition. On the first error the batch stops; earlier writes
// stand (they are ordinary accepted writes).
func (s *Store) WriteBatch(addrs []mem.Addr, lines []mem.Line) error {
	if len(addrs) != len(lines) {
		return fmt.Errorf("store: WriteBatch length mismatch (%d addrs, %d lines)", len(addrs), len(lines))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, a := range addrs {
		if err := s.writeLocked(a, lines[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) writeLocked(a mem.Addr, l mem.Line) error {
	if s.closed {
		return ErrClosed
	}
	if s.crashed {
		return ErrCrashed
	}
	if err := s.checkAddr(a); err != nil {
		return err
	}
	if s.ctrl.Health() == HealthReadOnly {
		// Admission-only refusal at the facade rim, mirroring the
		// controller's HostWrite front door: the write never reaches the
		// engine, so an already-admitted epoch can never tear.
		s.refusedWrites++
		return ErrReadOnly
	}
	if s.armed {
		if s.seenWrites >= s.armWrites {
			s.crashed = true
			return ErrCrashed
		}
		s.seenWrites++
	}
	s.now = s.eng.WriteBack(s.now, mem.Align(a), l)
	return nil
}

// DeleteRange returns every written line in [lo, hi) to the zero state
// by writing zero lines through the engine (the secure address space
// has no "unwrite"; zero is the default content of an untouched line).
// Used by namespace owners to trim retired log regions.
func (s *Store) DeleteRange(lo, hi mem.Addr) error {
	_, err := s.ReclaimRange(lo, hi)
	return err
}

// ReclaimRange is the page-reclaim hook: like DeleteRange it zeroes
// every written non-zero line in [lo, hi), but it reports how many
// lines it returned to the zero state, and it walks the range in
// ascending address order so a reclaim is deterministic — crash-sweep
// harnesses arm a power failure at the n-th accepted write and need the
// n-th write to be the same line on every run. On error the count
// covers the lines already reclaimed; the zero writes that were
// accepted stand.
func (s *Store) ReclaimRange(lo, hi mem.Addr) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if hi > mem.Addr(s.lay.DataBytes) {
		hi = mem.Addr(s.lay.DataBytes)
	}
	addrs := s.dev.Snapshot().Store.Addrs()
	slices.Sort(addrs)
	var zero mem.Line
	reclaimed := 0
	for _, a := range addrs {
		if a < mem.Align(lo) || a >= hi || s.lay.RegionOf(a) != mem.RegionData {
			continue
		}
		// The media holds ciphertext, so "already zero" must be judged on
		// the decrypted content — an encrypted zero line is not the zero
		// ciphertext, and re-zeroing it would make reclaim non-idempotent
		// (and non-monotonic across reopens).
		pt, done := s.eng.ReadBlock(s.now, a)
		s.now = done
		if pt == zero {
			continue
		}
		if err := s.writeLocked(a, zero); err != nil {
			return reclaimed, err
		}
		reclaimed++
	}
	return reclaimed, nil
}

// FlushEpoch closes the current ADR epoch: every accepted write and all
// dirty security metadata are persisted consistently. This is the
// durability point — a batch acknowledged after FlushEpoch survives any
// later crash.
func (s *Store) FlushEpoch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.crashed {
		return ErrCrashed
	}
	s.now = s.eng.Settle(s.now)
	if err := s.ctrl.Err(); err != nil {
		return err
	}
	return nil
}

// Snapshot captures the current NVM contents non-destructively via the
// copy-on-write store clone: O(shards), independent of image size.
func (s *Store) Snapshot() *nvm.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev.Snapshot()
}

// Crash powers the machine off mid-run: on-chip state is lost, ADR
// semantics apply, and the persistent state is captured. The store must
// not be used afterwards (every method returns ErrClosed).
func (s *Store) Crash() *engine.CrashImage {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.eng.Crash()
}

// Close flushes the final epoch and shuts the store down cleanly.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.crashed {
		s.now = s.eng.Settle(s.now)
	}
	s.closed = true
	return s.ctrl.Err()
}

// ArmCrash schedules a simulated power failure after the next n facade
// writes have been accepted: write n+1 and everything after it (writes
// and epoch flushes alike) fail with ErrCrashed and never reach the
// media. The caller then collects the image with Crash. Torture
// harnesses sweep n across a workload to crash a namespace at every
// host-write boundary.
func (s *Store) ArmCrash(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = true
	s.armWrites = n
	s.seenWrites = 0
}

// Crashed reports whether an armed crash point has struck.
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Health reports the controller's media-health state.
func (s *Store) Health() HealthState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Health()
}

// CtrlStats returns the memory controller's contention/fault counters.
func (s *Store) CtrlStats() ControllerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Stats()
}

// Err surfaces the first device or protocol error the controller
// recorded, nil if none.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Err()
}

// RefusedWrites counts facade writes refused in read-only degradation.
func (s *Store) RefusedWrites() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refusedWrites
}

// Scrub runs one media scrub pass at cycle now and returns the cycle
// the scrub writes were accepted. A no-op without a fault model.
// Sim-path callers own the clock and pass their own now.
func (s *Store) Scrub(now int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.Scrub(now)
}

// HostWrite is the controller's host-facing write admission at an
// explicit cycle, for harnesses probing the read-only front door. It
// bypasses the engine's crypto path on purpose: the torture probe needs
// a raw controller write to prove refusal is enforced below the engine.
func (s *Store) HostWrite(now int64, a mem.Addr, l mem.Line) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.HostWrite(now, a, l)
}

// SetEventTap installs fn as the controller's persistence event tap
// (purely observational; see memctrl.SetEventTap). nil removes it.
func (s *Store) SetEventTap(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl.SetEventTap(fn)
}

// SabotageReorderPersist arms the controller's deliberate single-shot
// persist-ordering defect (torture self-tests only).
func (s *Store) SabotageReorderPersist(afterCommits int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl.SabotageReorderPersist(afterCommits)
}
