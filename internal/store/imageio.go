package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"slices"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// Crash-image file codec: the daemon's answer to "the machine lost
// power" is a process exit, so the simulated NVM contents must survive
// as a file for the restarted process to Reboot from. The format is a
// deterministic versioned binary record (sorted maps, little-endian,
// trailing FNV-64a) — encoding the same image twice yields identical
// bytes, which the round-trip tests rely on.
//
// MediaLog is not persisted: it is the torture harness's ground truth,
// which recovery must never read (only Suspects travels). Images that
// carry one are refused so a harness cannot silently lose its oracle
// evidence across a save/load cycle.

const (
	imageMagic   = "CCNVMIMG"
	imageVersion = 1
)

// ErrImageCorrupt reports a crash-image file that fails structural or
// checksum validation.
var ErrImageCorrupt = errors.New("store: crash image file corrupt")

// EncodeImage serializes a crash image to deterministic bytes.
func EncodeImage(img *engine.CrashImage) ([]byte, error) {
	if img == nil || img.Image == nil || img.Image.Layout == nil {
		return nil, errors.New("store: nil crash image")
	}
	if img.MediaLog != nil {
		return nil, errors.New("store: refusing to encode an image with a harness media log")
	}
	b := make([]byte, 0, 1<<16)
	b = append(b, imageMagic...)
	b = binary.LittleEndian.AppendUint32(b, imageVersion)
	b = appendString(b, img.Design)
	b = binary.LittleEndian.AppendUint64(b, img.Image.Layout.DataBytes)
	b = binary.LittleEndian.AppendUint64(b, img.UpdateLimit)
	b = binary.LittleEndian.AppendUint64(b, uint64(img.Workers))
	b = append(b, img.Keys.AES[:]...)
	b = append(b, img.Keys.HMAC[:]...)
	b = append(b, img.TCB.RootNew[:]...)
	b = append(b, img.TCB.RootOld[:]...)
	b = binary.LittleEndian.AppendUint64(b, img.TCB.Nwb)
	b = appendAddrU64Map(b, img.TCB.ExtDirty)
	b = appendAddrByteMap(b, img.Sideband)
	if img.MediaFaults {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendAddrs(b, img.Suspects)
	b = appendBytes(b, img.RecoveryJournal)
	b = appendAddrs(b, sortedKeys(img.Image.Stuck))
	b = appendBytes(b, img.Image.RemapTable)
	addrs := img.Image.Store.Addrs()
	slices.Sort(addrs)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(addrs)))
	for _, a := range addrs {
		l, _ := img.Image.Store.Read(a)
		b = binary.LittleEndian.AppendUint64(b, uint64(a))
		b = append(b, l[:]...)
	}
	h := fnv.New64a()
	h.Write(b)
	b = binary.LittleEndian.AppendUint64(b, h.Sum64())
	return b, nil
}

// DecodeImage parses bytes produced by EncodeImage.
func DecodeImage(b []byte) (*engine.CrashImage, error) {
	if len(b) < len(imageMagic)+4+8 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrImageCorrupt, len(b))
	}
	body, tail := b[:len(b)-8], b[len(b)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrImageCorrupt)
	}
	r := &reader{b: body}
	if string(r.take(8)) != imageMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrImageCorrupt)
	}
	if v := r.u32(); v != imageVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrImageCorrupt, v)
	}
	img := &engine.CrashImage{}
	img.Design = r.str()
	capacity := r.u64()
	img.UpdateLimit = r.u64()
	img.Workers = int(r.u64())
	var keys seccrypto.Keys
	copy(keys.AES[:], r.take(len(keys.AES)))
	copy(keys.HMAC[:], r.take(len(keys.HMAC)))
	img.Keys = keys
	copy(img.TCB.RootNew[:], r.take(mem.LineSize))
	copy(img.TCB.RootOld[:], r.take(mem.LineSize))
	img.TCB.Nwb = r.u64()
	img.TCB.ExtDirty = r.addrU64Map()
	img.Sideband = r.addrByteMap()
	img.MediaFaults = r.take(1)[0] != 0
	img.Suspects = r.addrs()
	img.RecoveryJournal = r.bytes()
	stuck := r.addrs()
	remap := r.bytes()
	lay, err := mem.NewLayout(capacity)
	if err != nil {
		return nil, fmt.Errorf("%w: layout: %v", ErrImageCorrupt, err)
	}
	st := &mem.Store{}
	n := int(r.u64())
	for i := 0; i < n; i++ {
		a := mem.Addr(r.u64())
		var l mem.Line
		copy(l[:], r.take(mem.LineSize))
		st.Write(a, l)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrImageCorrupt, r.err)
	}
	if len(r.b) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrImageCorrupt, len(r.b)-r.off)
	}
	img.Image = &nvm.Image{Layout: lay, Store: st, RemapTable: remap}
	if len(stuck) > 0 {
		img.Image.Stuck = make(map[mem.Addr]bool, len(stuck))
		for _, a := range stuck {
			img.Image.Stuck[a] = true
		}
	}
	return img, nil
}

// SaveImage writes the image to path atomically (temp file + rename).
func SaveImage(path string, img *engine.CrashImage) error {
	b, err := EncodeImage(img)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadImage reads an image file written by SaveImage.
func LoadImage(path string) (*engine.CrashImage, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeImage(b)
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendAddrs(b []byte, as []mem.Addr) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(as)))
	for _, a := range as {
		b = binary.LittleEndian.AppendUint64(b, uint64(a))
	}
	return b
}

func appendAddrU64Map(b []byte, m map[mem.Addr]uint64) []byte {
	keys := sortedKeys(m)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keys)))
	for _, a := range keys {
		b = binary.LittleEndian.AppendUint64(b, uint64(a))
		b = binary.LittleEndian.AppendUint64(b, m[a])
	}
	return b
}

func appendAddrByteMap(b []byte, m map[mem.Addr]byte) []byte {
	keys := sortedKeys(m)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(keys)))
	for _, a := range keys {
		b = binary.LittleEndian.AppendUint64(b, uint64(a))
		b = append(b, m[a])
	}
	return b
}

func sortedKeys[V any](m map[mem.Addr]V) []mem.Addr {
	keys := make([]mem.Addr, 0, len(m))
	for a := range m {
		keys = append(keys, a)
	}
	slices.Sort(keys)
	return keys
}

// reader is a bounds-checked little-endian cursor; the first overrun
// poisons it and every later read returns zeros.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		if r.err == nil {
			r.err = fmt.Errorf("read past end at offset %d", r.off)
		}
		return make([]byte, n)
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p
}

func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *reader) str() string { return string(r.take(int(r.u32()))) }

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	return append([]byte(nil), r.take(n)...)
}

func (r *reader) addrs() []mem.Addr {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	as := make([]mem.Addr, n)
	for i := range as {
		as[i] = mem.Addr(r.u64())
	}
	return as
}

func (r *reader) addrU64Map() map[mem.Addr]uint64 {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	m := make(map[mem.Addr]uint64, n)
	for i := 0; i < n; i++ {
		a := mem.Addr(r.u64())
		m[a] = r.u64()
	}
	return m
}

func (r *reader) addrByteMap() map[mem.Addr]byte {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	m := make(map[mem.Addr]byte, n)
	for i := 0; i < n; i++ {
		a := mem.Addr(r.u64())
		m[a] = r.take(1)[0]
	}
	return m
}
