package store_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

func crashedImage(t *testing.T, design string) *engine.CrashImage {
	t.Helper()
	st, err := store.Open(store.Options{
		Design:   design,
		Capacity: 1 << 20,
		Params:   engine.Params{UpdateLimit: 8, QueueEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		var l mem.Line
		l[0], l[1] = byte(i), byte(i>>4)
		if err := st.Write(mem.Addr((i%12)*4096), l); err != nil {
			t.Fatal(err)
		}
	}
	return st.Crash()
}

func TestImageEncodeDeterministic(t *testing.T) {
	img := crashedImage(t, "ccnvm")
	b1, err := store.EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := store.EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("encoding the same image twice differs")
	}
}

func TestImageRoundTripAllFields(t *testing.T) {
	for _, d := range []string{"ccnvm", "ccnvm-ext", "osiris", "sc"} {
		t.Run(d, func(t *testing.T) {
			img := crashedImage(t, d)
			b, err := store.EncodeImage(img)
			if err != nil {
				t.Fatal(err)
			}
			got, err := store.DecodeImage(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Design != img.Design || got.UpdateLimit != img.UpdateLimit || got.Workers != img.Workers {
				t.Fatalf("identity fields differ: %s/%d/%d vs %s/%d/%d",
					got.Design, got.UpdateLimit, got.Workers, img.Design, img.UpdateLimit, img.Workers)
			}
			if got.Keys != img.Keys {
				t.Fatal("keys differ")
			}
			if got.TCB.RootNew != img.TCB.RootNew || got.TCB.RootOld != img.TCB.RootOld || got.TCB.Nwb != img.TCB.Nwb {
				t.Fatal("TCB registers differ")
			}
			if len(got.TCB.ExtDirty) != len(img.TCB.ExtDirty) {
				t.Fatalf("ExtDirty %d entries, want %d", len(got.TCB.ExtDirty), len(img.TCB.ExtDirty))
			}
			for a, n := range img.TCB.ExtDirty {
				if got.TCB.ExtDirty[a] != n {
					t.Fatalf("ExtDirty[%#x] = %d, want %d", uint64(a), got.TCB.ExtDirty[a], n)
				}
			}
			if got.Image.Layout.DataBytes != img.Image.Layout.DataBytes {
				t.Fatal("capacity differs")
			}
			if !got.Image.Store.Equal(img.Image.Store) {
				t.Fatal("NVM contents differ")
			}
			// And the round-tripped image must re-encode identically.
			b2, err := store.EncodeImage(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatal("re-encode differs")
			}
		})
	}
}

func TestImageDecodeRejectsCorruption(t *testing.T) {
	img := crashedImage(t, "ccnvm")
	b, err := store.EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	// Every 97th byte: exhaustive would be slow, strided is plenty to
	// prove the checksum covers the whole record.
	for off := 0; off < len(b); off += 97 {
		c := append([]byte(nil), b...)
		c[off] ^= 0x20
		if _, err := store.DecodeImage(c); !errors.Is(err, store.ErrImageCorrupt) {
			t.Fatalf("flip at %d decoded (err=%v)", off, err)
		}
	}
	if _, err := store.DecodeImage(b[:10]); !errors.Is(err, store.ErrImageCorrupt) {
		t.Fatal("truncated image decoded")
	}
}

func TestSaveLoadImageFile(t *testing.T) {
	img := crashedImage(t, "ccnvm")
	path := filepath.Join(t.TempDir(), "nvm.img")
	if err := store.SaveImage(path, img); err != nil {
		t.Fatal(err)
	}
	got, err := store.LoadImage(path)
	if err != nil {
		t.Fatal(err)
	}
	st, rep, err := store.Reboot(got, store.Options{})
	if err != nil {
		t.Fatalf("reboot from loaded image: %v (%+v)", err, rep)
	}
	var want mem.Line
	want[0], want[1] = 39, 39>>4
	l, err := st.Read(mem.Addr((39 % 12) * 4096))
	if err != nil {
		t.Fatal(err)
	}
	if l != want {
		t.Fatal("reloaded store serves wrong data")
	}
}
