package metacache

import (
	"testing"

	"ccnvm/internal/mem"
)

func line(b byte) mem.Line {
	var l mem.Line
	l[0] = b
	return l
}

func TestDefaultsMatchPaper(t *testing.T) {
	m := New(Config{}, nil)
	// 128 KiB / 64 B / 8 ways = 256 sets; just verify capacity via fills.
	for i := 0; i < 128<<10/mem.LineSize; i++ {
		m.Fill(mem.Addr(i*mem.LineSize), line(1))
	}
	if st := m.Stats(); st.Evictions != 0 {
		t.Fatalf("paper-sized cache evicted %d lines while filling exactly its capacity", st.Evictions)
	}
}

func TestUpdateCountTracksDirtySpan(t *testing.T) {
	m := New(Config{SizeBytes: 1024, Ways: 2}, nil)
	m.Fill(0, line(0))
	if n := m.Update(0, line(1)); n != 1 {
		t.Fatalf("first update count = %d", n)
	}
	if n := m.Update(0, line(2)); n != 2 {
		t.Fatalf("second update count = %d", n)
	}
	m.Clean(0)
	if m.Updates(0) != 0 {
		t.Fatal("Clean did not reset update count")
	}
	if m.IsDirty(0) {
		t.Fatal("Clean left line dirty")
	}
	if !m.Contains(0) {
		t.Fatal("Clean evicted the line")
	}
	if n := m.Update(0, line(3)); n != 1 {
		t.Fatalf("count after clean = %d, want 1", n)
	}
}

func TestUpdateNonResidentPanics(t *testing.T) {
	m := New(Config{SizeBytes: 1024, Ways: 2}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Update of absent line did not panic")
		}
	}()
	m.Update(0, line(1))
}

func TestEvictionResetsUpdateCount(t *testing.T) {
	var evicted []mem.Addr
	m := New(Config{SizeBytes: 128, Ways: 2}, func(a mem.Addr, _ mem.Line, d bool) {
		if d {
			evicted = append(evicted, a)
		}
	})
	// 1 set, 2 ways: three distinct lines force an eviction.
	m.Fill(0, line(0))
	m.Update(0, line(1))
	m.Fill(64, line(0))
	m.Fill(128, line(0)) // evicts 0 (dirty, LRU)
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("dirty evictions = %v, want [0]", evicted)
	}
	// Re-fill and update: count restarts.
	m.Fill(0, line(0))
	if n := m.Update(0, line(2)); n != 1 {
		t.Fatalf("update count after re-fill = %d, want 1", n)
	}
}

func TestFillDirty(t *testing.T) {
	m := New(Config{SizeBytes: 1024, Ways: 2}, nil)
	m.FillDirty(0, line(5))
	if !m.IsDirty(0) {
		t.Fatal("FillDirty left line clean")
	}
}

func TestPeekInvisible(t *testing.T) {
	m := New(Config{SizeBytes: 1024, Ways: 2}, nil)
	m.Fill(0, line(7))
	before := m.Stats()
	l, ok := m.Peek(0)
	if !ok || l != line(7) {
		t.Fatal("Peek failed")
	}
	if _, ok := m.Peek(64); ok {
		t.Fatal("Peek hit an absent line")
	}
	if m.Stats() != before {
		t.Fatal("Peek perturbed statistics")
	}
}

func TestLose(t *testing.T) {
	m := New(Config{SizeBytes: 1024, Ways: 2}, nil)
	m.Fill(0, line(1))
	m.Update(0, line(2))
	m.Lose()
	if m.Contains(0) {
		t.Fatal("contents survived power failure")
	}
	if m.Updates(0) != 0 {
		t.Fatal("update counts survived power failure")
	}
	if len(m.DirtyAddrs()) != 0 {
		t.Fatal("dirty lines survived power failure")
	}
}

func TestDirtyAddrs(t *testing.T) {
	m := New(Config{SizeBytes: 1024, Ways: 2}, nil)
	m.Fill(0, line(0))
	m.Fill(64, line(0))
	m.Update(64, line(1))
	d := m.DirtyAddrs()
	if len(d) != 1 || d[0] != 64 {
		t.Fatalf("DirtyAddrs = %v, want [64]", d)
	}
}
