// Package metacache implements the on-chip security-metadata cache: the
// combined counter cache and Merkle-tree cache that the paper places at
// the L2 level (128 KB, 8-way, 32-cycle access). Beyond plain caching it
// tracks, per dirty line, how many times the line has been updated since
// it became dirty — the quantity behind the paper's update-limit trigger
// N (draining trigger 3 for cc-NVM, the counter stop-loss for Osiris).
//
// Contents are volatile: a crash loses everything (Lose), which is
// precisely the hazard the consistency schemes under study manage.
package metacache

import (
	"ccnvm/internal/cache"
	"ccnvm/internal/mem"
)

// Cache is the metadata cache. Create with New.
type Cache struct {
	c       *cache.Cache
	updates map[mem.Addr]uint64
}

// Config sizes the cache; zero values select the paper's configuration.
type Config struct {
	SizeBytes int // default 128 KiB
	Ways      int // default 8
}

// New builds the metadata cache. onEvict fires for every displaced line
// with its dirtiness; each consistency design supplies its own policy
// (write through, drop and recover later, or trigger a drain).
func New(cfg Config, onEvict func(addr mem.Addr, line mem.Line, dirty bool)) *Cache {
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 128 << 10
	}
	if cfg.Ways == 0 {
		cfg.Ways = 8
	}
	m := &Cache{updates: make(map[mem.Addr]uint64)}
	m.c = cache.MustNew(cache.Config{Name: "meta", SizeBytes: cfg.SizeBytes, Ways: cfg.Ways},
		func(a mem.Addr, l mem.Line, dirty bool) {
			delete(m.updates, a)
			if onEvict != nil {
				onEvict(a, l, dirty)
			}
		})
	return m
}

// Read looks up a line; miss means the caller fetches and Fills.
func (m *Cache) Read(a mem.Addr) (mem.Line, bool) { return m.c.Read(a) }

// Fill installs a line fetched (and verified) from NVM, clean.
func (m *Cache) Fill(a mem.Addr, l mem.Line) { m.c.Fill(a, l, false) }

// FillDirty installs a line that already differs from NVM (e.g. an
// Osiris counter corrected by online recovery).
func (m *Cache) FillDirty(a mem.Addr, l mem.Line) { m.c.Fill(a, l, true) }

// Update writes a line that must already be resident, marking it dirty
// and advancing its update count. It returns the count of updates since
// the line became dirty. Callers compare it against the N trigger.
func (m *Cache) Update(a mem.Addr, l mem.Line) uint64 {
	a = mem.Align(a)
	if !m.c.Write(a, l) {
		panic("metacache: Update of non-resident line")
	}
	m.updates[a]++
	return m.updates[a]
}

// Updates returns the update count of a since it became dirty.
func (m *Cache) Updates(a mem.Addr) uint64 { return m.updates[mem.Align(a)] }

// Clean marks a line clean after it has been persisted, resetting its
// update count. The line stays resident.
func (m *Cache) Clean(a mem.Addr) {
	a = mem.Align(a)
	m.c.CleanLine(a)
	delete(m.updates, a)
}

// Contains reports residency without touching LRU or stats.
func (m *Cache) Contains(a mem.Addr) bool { return m.c.Contains(a) }

// IsDirty reports dirtiness without touching LRU or stats.
func (m *Cache) IsDirty(a mem.Addr) bool { return m.c.IsDirty(a) }

// Peek returns a line's content without touching LRU or statistics; the
// drainer uses it when flushing tracked lines.
func (m *Cache) Peek(a mem.Addr) (mem.Line, bool) { return m.c.Peek(a) }

// DirtyAddrs lists all dirty resident lines, ascending.
func (m *Cache) DirtyAddrs() []mem.Addr { return m.c.DirtyAddrs() }

// Lose drops the entire contents without eviction callbacks: the power
// failed and on-chip state is gone.
func (m *Cache) Lose() {
	m.c.DropAll()
	m.updates = make(map[mem.Addr]uint64)
}

// Stats returns the underlying cache statistics.
func (m *Cache) Stats() cache.Stats { return m.c.Stats() }
