package perf

import "testing"

// TestMeasureKV sanity-checks the KV serving measurement at a small
// scale: every request must be acked and the percentiles ordered.
func TestMeasureKV(t *testing.T) {
	p, err := MeasureKV(KVOptions{Conns: 16, OpsPerConn: 4, Batch: 2, ValBytes: 32, Capacity: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if want := 16 * 4; p.Requests != want {
		t.Fatalf("acked %d requests, want %d", p.Requests, want)
	}
	if p.OpsPerSec <= 0 {
		t.Fatalf("throughput %f", p.OpsPerSec)
	}
	if p.P50us > p.P99us || p.P99us > p.P999us {
		t.Fatalf("percentiles unordered: p50=%f p99=%f p999=%f", p.P50us, p.P99us, p.P999us)
	}
}
