package perf

import (
	"strings"
	"testing"
)

// TestMeasureChurn drives a small arena through several capacities of
// overwrite traffic: every put must be acked (no permanent stall, no
// refusal), the compactor must have run, and the Compare gate must
// flag a churn regression on matching shapes while ignoring shape
// mismatches.
func TestMeasureChurn(t *testing.T) {
	o := ChurnOptions{Capacity: 1 << 19, ValBytes: 256, Keys: 8, Multiple: 4}
	p, err := MeasureChurn(o)
	if err != nil {
		t.Fatal(err)
	}
	if p.BytesWritten < uint64(o.Multiple)*p.Capacity {
		t.Fatalf("wrote %d bytes, want >= %dx the %d-byte half", p.BytesWritten, o.Multiple, p.Capacity)
	}
	if p.Passes == 0 || p.Reclaimed == 0 {
		t.Fatalf("churn never compacted: passes=%d reclaimed=%d", p.Passes, p.Reclaimed)
	}
	if p.OpsPerSec <= 0 {
		t.Fatalf("throughput %f", p.OpsPerSec)
	}

	mk := func(ops float64) *Ledger {
		l := &Ledger{Schema: Schema}
		l.HostFingerprint()
		c := *p
		c.OpsPerSec = ops
		l.Churn = &c
		return l
	}
	pinned, slow := mk(1000), mk(100)
	if err := Compare(pinned, slow); err == nil || !strings.Contains(err.Error(), "churn") {
		t.Fatalf("90%% churn regression not flagged: %v", err)
	}
	slow.Churn.Multiple++ // shape mismatch: the gate must stand down
	if err := Compare(pinned, slow); err != nil {
		t.Fatalf("shape-mismatched churn rows compared anyway: %v", err)
	}
}
