package perf

import (
	"math/rand"
	"runtime"
	"time"

	"ccnvm/internal/bmt"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
	"ccnvm/internal/sim"
	"ccnvm/internal/trace"
)

// MeasureOptions parameterize one ledger measurement.
type MeasureOptions struct {
	Ops        int      // memory operations per (design, benchmark) cell
	Seed       int64    // workload seed
	Benchmarks []string // nil = the full eight-benchmark suite
	Designs    []string // nil = the paper's five designs
	Workers    []int    // worker counts for the parallel kernel; nil = {1, 2, 4, NumCPU}
	Reps       int      // timing repetitions per design, best-of (0 = 3)

	// KernelLeaves is the number of counter lines populated for the
	// serial-vs-parallel tree kernel. 0 picks a default sized so the
	// kernel runs for a measurable fraction of a second.
	KernelLeaves int
}

func (o *MeasureOptions) fill() {
	if o.Ops <= 0 {
		o.Ops = 60000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Benchmarks == nil {
		o.Benchmarks = trace.Benchmarks()
	}
	if o.Designs == nil {
		o.Designs = sim.Designs()
	}
	if o.Workers == nil {
		o.Workers = []int{1, 2, 4}
		if n := runtime.NumCPU(); n > 4 {
			o.Workers = append(o.Workers, n)
		}
	}
	if o.KernelLeaves <= 0 {
		o.KernelLeaves = 6000
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
}

// Measure runs the ledger measurement: the full design × benchmark
// simulator matrix for throughput, memo rates and allocation density,
// plus the subtree-sharded tree kernel for serial-vs-parallel speedup.
// Cells run sequentially on purpose — concurrent cells would contend
// for cores and corrupt each other's wall-clock numbers.
func Measure(o MeasureOptions) (*Ledger, error) {
	o.fill()
	l := &Ledger{
		Schema:     Schema,
		Ops:        o.Ops,
		Seed:       o.Seed,
		Benchmarks: o.Benchmarks,
		Designs:    make(map[string]DesignPerf, len(o.Designs)),
	}
	l.HostFingerprint()

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)

	// Each design's suite is timed Reps times and the fastest pass is
	// recorded: the simulation is deterministic, so the minimum is the
	// least-noisy estimate — crucial for a stable regression gate on
	// small, shared CI runners.
	var sec engine.SecStats
	for _, d := range o.Designs {
		best := 0.0
		for rep := 0; rep < o.Reps; rep++ {
			dStart := time.Now()
			for _, b := range o.Benchmarks {
				r, err := sim.RunBenchmark(d, b, o.Ops, o.Seed, sim.Config{})
				if err != nil {
					return nil, err
				}
				if rep > 0 {
					continue // count each cell's memo traffic once
				}
				sec.PadCacheHits += r.Sec.PadCacheHits
				sec.PadCacheMisses += r.Sec.PadCacheMisses
				sec.DataMemoHits += r.Sec.DataMemoHits
				sec.DataMemoMisses += r.Sec.DataMemoMisses
				sec.NodeMemoHits += r.Sec.NodeMemoHits
				sec.NodeMemoMisses += r.Sec.NodeMemoMisses
				sec.DefaultLineHits += r.Sec.DefaultLineHits
				sec.DefaultLineMisses += r.Sec.DefaultLineMisses
			}
			if wall := time.Since(dStart).Seconds(); rep == 0 || wall < best {
				best = wall
			}
		}
		ops := int64(o.Ops) * int64(len(o.Benchmarks))
		l.Designs[d] = DesignPerf{WallSeconds: best, OpsPerSec: float64(ops) / best}
		l.SimOps += ops
		l.WallSeconds += best
	}
	l.OpsPerSec = float64(l.SimOps) / l.WallSeconds

	runtime.ReadMemStats(&msAfter)
	if l.SimOps > 0 {
		// The malloc delta spans every repetition; SimOps counts one.
		l.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(l.SimOps*int64(o.Reps))
	}
	l.Memo = MemoRates{
		Pad:     ratio(sec.PadCacheHits, sec.PadCacheMisses),
		Data:    ratio(sec.DataMemoHits, sec.DataMemoMisses),
		Node:    ratio(sec.NodeMemoHits, sec.NodeMemoMisses),
		Overall: sec.MemoHitRatio(),
	}
	l.Parallel = treeKernel(o.KernelLeaves, o.Workers)
	return l, nil
}

func ratio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// treeKernel times the recovery-style VerifyAll + Rebuild sweep — the
// pure-crypto workload the subtree sharding parallelizes — at each
// worker count. The populated store and the expected outputs are
// identical across worker counts (the pipeline's bit-identity
// contract), so only wall time varies.
func treeKernel(leaves int, workerCounts []int) []ParallelPoint {
	lay := mem.MustLayout(64 << 20)
	cry := seccrypto.MustEngine(seccrypto.DefaultKeys())
	tr := bmt.New(lay, cry)
	st := &mem.Store{}

	rng := rand.New(rand.NewSource(99))
	total := lay.LevelNodes(0)
	for i := 0; i < leaves; i++ {
		leaf := rng.Uint64() % total
		a := lay.CounterLineAddr(leaf)
		line, _ := st.Read(a)
		c := seccrypto.DecodeCounterLine(line)
		c.Bump(i % mem.BlocksPerPage)
		st.Write(a, c.Encode())
	}
	var counters []mem.Addr
	for _, a := range st.Addrs() {
		if lay.RegionOf(a) == mem.RegionCounter {
			counters = append(counters, a)
		}
	}
	nodes, root := tr.Rebuild(st, counters)
	for a, n := range nodes {
		st.Write(a, n)
	}
	addrs := st.Addrs()

	points := make([]ParallelPoint, 0, len(workerCounts))
	var serial float64
	for _, w := range workerCounts {
		// One untimed pass first: worker engines are forked lazily and
		// keep their memo tables afterwards, so without a warm-up the
		// first worker count measured would pay every cold miss and later
		// ones would ride warmed forks, skewing the speedup curve.
		tr.VerifyAllParallel(st, root, addrs, w)
		tr.RebuildParallel(st, counters, w)
		// Best of three runs: the kernel is deterministic, so the minimum
		// is the least-noisy estimate of its true cost.
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			tr.VerifyAllParallel(st, root, addrs, w)
			tr.RebuildParallel(st, counters, w)
			if d := time.Since(t0).Seconds(); rep == 0 || d < best {
				best = d
			}
		}
		if w == 1 || serial == 0 {
			serial = best
		}
		points = append(points, ParallelPoint{Workers: w, WallSeconds: best, Speedup: serial / best})
	}
	return points
}
