package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"syscall"
	"time"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/store"
)

// KVOptions parameterize the KV serving measurement: an in-process
// ccnvm-kvd equivalent (the same kv.Server over a fresh secure store)
// is driven over loopback TCP by Conns concurrent connections.
type KVOptions struct {
	Conns      int    // concurrent client connections (0 = 1024)
	OpsPerConn int    // batch requests per connection (0 = 8)
	Batch      int    // puts per batch request (0 = 4)
	ValBytes   int    // value size in bytes (0 = 64)
	Design     string // 0 = the paper's design
	Capacity   uint64 // data-region bytes (0 = 64 MiB)
	Workers    int    // parallel BMT pipeline width (0 = serial)
}

func (o *KVOptions) fill() {
	if o.Conns <= 0 {
		o.Conns = 1024
	}
	if o.OpsPerConn <= 0 {
		o.OpsPerConn = 8
	}
	if o.Batch <= 0 {
		o.Batch = 4
	}
	if o.ValBytes <= 0 {
		o.ValBytes = 64
	}
	if o.Design == "" {
		o.Design = design.CCNVM
	}
	if o.Capacity == 0 {
		o.Capacity = 64 << 20
	}
}

// KVPerf is the KV serving row of the ledger: end-to-end throughput
// and tail latency of batched writes through the JSON-lines protocol,
// the storage-engine facade and the full secure-NVM write path.
type KVPerf struct {
	Design      string  `json:"design"`
	Conns       int     `json:"conns"`
	OpsPerConn  int     `json:"ops_per_conn"`
	Batch       int     `json:"batch"`
	ValBytes    int     `json:"val_bytes"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"` // acked batch requests / second
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
}

// RaiseNoFile lifts the soft fd limit to the hard one so thousand-
// connection measurements don't trip the default 1024.
func RaiseNoFile() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < lim.Max {
		lim.Cur = lim.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}

// MeasureKV serves one KV namespace over loopback and slams it with
// o.Conns concurrent batch writers, timing every request. The store,
// server and clients all live in this process, so the number reflects
// the full stack above the wire — JSON framing, group commit, epoch
// flushes, BMT updates — without kernel scheduling across machines.
func MeasureKV(o KVOptions) (*KVPerf, error) {
	o.fill()
	RaiseNoFile()

	st, err := store.Open(store.Options{
		Design:   o.Design,
		Capacity: o.Capacity,
		Params:   engine.Params{UpdateLimit: 16, QueueEntries: 64, Workers: o.Workers},
	})
	if err != nil {
		return nil, err
	}
	db, err := kv.Open(st, kv.Options{})
	if err != nil {
		return nil, err
	}
	srv := kv.NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	type result struct {
		lat    []time.Duration
		acked  int
		errors int
	}
	results := make([]result, o.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < o.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			c, err := net.Dial("tcp", addr)
			if err != nil {
				r.errors++
				return
			}
			defer c.Close()
			br := bufio.NewReader(c)
			val := make([]byte, o.ValBytes)
			for b := range val {
				val[b] = byte('a' + (i+b)%26)
			}
			for j := 0; j < o.OpsPerConn; j++ {
				req := kv.Request{Op: "batch"}
				for b := 0; b < o.Batch; b++ {
					req.Ops = append(req.Ops, kv.RequestOp{
						Op:  "put",
						Key: fmt.Sprintf("c%d-j%d-b%d", i, j, b),
						Val: string(val),
					})
				}
				buf, err := json.Marshal(req)
				if err != nil {
					r.errors++
					return
				}
				t0 := time.Now()
				if _, err := c.Write(append(buf, '\n')); err != nil {
					r.errors++
					return
				}
				line, err := br.ReadBytes('\n')
				if err != nil {
					r.errors++
					return
				}
				var resp kv.Response
				if err := json.Unmarshal(line, &resp); err != nil || !resp.OK {
					r.errors++
					continue
				}
				r.lat = append(r.lat, time.Since(t0))
				r.acked++
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	srv.Close()
	if err := <-served; err != nil {
		return nil, err
	}

	p := &KVPerf{
		Design: o.Design, Conns: o.Conns, OpsPerConn: o.OpsPerConn,
		Batch: o.Batch, ValBytes: o.ValBytes, WallSeconds: wall,
	}
	var all []time.Duration
	for _, r := range results {
		all = append(all, r.lat...)
		p.Requests += r.acked
		p.Errors += r.errors
	}
	if p.Errors > 0 {
		return nil, fmt.Errorf("perf: kv measurement had %d request errors (%d acked)", p.Errors, p.Requests)
	}
	if wall > 0 {
		p.OpsPerSec = float64(p.Requests) / wall
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p.P50us = percentileUS(all, 0.50)
	p.P99us = percentileUS(all, 0.99)
	p.P999us = percentileUS(all, 0.999)
	return p, nil
}

func percentileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*q + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds())
}
