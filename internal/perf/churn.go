package perf

import (
	"errors"
	"fmt"
	"time"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

// ChurnOptions parameterize the sustained-churn measurement: a small
// hot key set is overwritten until the cumulative log traffic exceeds
// a multiple of the arena half, forcing the degradation ladder and the
// compactor to run in-line with the writes.
type ChurnOptions struct {
	Design   string // 0 = the paper's design
	Capacity uint64 // data-region bytes (0 = 1 MiB)
	ValBytes int    // value size in bytes (0 = 1024)
	Keys     int    // hot-set size (0 = 16)
	Multiple int    // stop after this many log capacities of traffic (0 = 4)
}

func (o *ChurnOptions) fill() {
	if o.Design == "" {
		o.Design = design.CCNVM
	}
	if o.Capacity == 0 {
		o.Capacity = 1 << 20
	}
	if o.ValBytes <= 0 {
		o.ValBytes = 1024
	}
	if o.Keys <= 0 {
		o.Keys = 16
	}
	if o.Multiple <= 0 {
		o.Multiple = 4
	}
}

// ChurnPerf is the sustained-churn row of the ledger: overwrite
// throughput once the log has wrapped and every admission rides the
// write controller, plus the stall time the ladder charged and the
// compactor's reclaim counters. A permanent stall or a refused write
// is a measurement failure, not a data point.
type ChurnPerf struct {
	Design       string  `json:"design"`
	Capacity     uint64  `json:"capacity"` // log-half bytes (write-controller capacity)
	ValBytes     int     `json:"val_bytes"`
	Keys         int     `json:"keys"`
	Multiple     int     `json:"multiple"`
	Batches      int     `json:"batches"`       // acked single-put batches
	BytesWritten uint64  `json:"bytes_written"` // framed log bytes appended
	Passes       uint64  `json:"passes"`        // compaction passes the ladder ran
	Reclaimed    uint64  `json:"reclaimed_lines"`
	WallSeconds  float64 `json:"wall_seconds"`
	OpsPerSec    float64 `json:"ops_per_sec"`   // acked batches / second
	StallSeconds float64 `json:"stall_seconds"` // ladder-charged stall time
}

// MeasureChurn overwrites a small hot set in-process until Multiple
// log-halves of framed traffic have been appended. Because the hot set
// is tiny and the arena is small, every capacity's worth of writes
// forces a full compaction cycle: the number reflects write, flush,
// copy-out and reclaim cost together, which is the paper's sustained
// steady state rather than the fill-once throughput MeasureKV reports.
func MeasureChurn(o ChurnOptions) (*ChurnPerf, error) {
	o.fill()
	st, err := store.Open(store.Options{
		Design:   o.Design,
		Capacity: o.Capacity,
		Params:   engine.Params{UpdateLimit: 16, QueueEntries: 64},
	})
	if err != nil {
		return nil, err
	}
	db, err := kv.Open(st, kv.Options{})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	capBytes := db.Stats().Stall.Capacity
	target := uint64(o.Multiple) * capBytes
	val := make([]byte, o.ValBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	// A one-put batch frames as a header line plus the record payload.
	// Count only the header and value lines — a deliberate underestimate
	// (the key and record framing add a little more), so hitting the
	// byte target guarantees at least Multiple halves really hit media.
	lineSize := uint64(mem.LineSize)
	frame := (uint64(o.ValBytes)+lineSize-1)/lineSize*lineSize + lineSize

	p := &ChurnPerf{
		Design: o.Design, Capacity: capBytes, ValBytes: o.ValBytes,
		Keys: o.Keys, Multiple: o.Multiple,
	}
	start := time.Now()
	for written := uint64(0); written < target; written += frame {
		key := fmt.Sprintf("hot-%04d", p.Batches%o.Keys)
		if err := db.Put([]byte(key), val); err != nil {
			if errors.Is(err, kv.ErrLogFull) || errors.Is(err, store.ErrReadOnly) {
				return nil, fmt.Errorf("perf: churn refused after %d batches (%d/%d bytes): %w",
					p.Batches, written, target, err)
			}
			return nil, err
		}
		p.Batches++
		p.BytesWritten += frame
	}
	p.WallSeconds = time.Since(start).Seconds()

	stats := db.Stats()
	p.StallSeconds = float64(stats.Stall.StallNanos) / 1e9
	if c := stats.Compaction; c != nil {
		p.Passes = c.Passes
		p.Reclaimed = c.ReclaimedLines
	}
	if p.Passes == 0 {
		return nil, fmt.Errorf("perf: churn wrote %d bytes over a %d-byte half without a single compaction pass", p.BytesWritten, capBytes)
	}
	if p.WallSeconds > 0 {
		p.OpsPerSec = float64(p.Batches) / p.WallSeconds
	}
	return p, nil
}
