package perf

import (
	"path/filepath"
	"strings"
	"testing"

	"ccnvm/internal/sim"
	"ccnvm/internal/trace"
)

func ledger(overall float64, designs map[string]float64) *Ledger {
	l := &Ledger{Schema: Schema, OpsPerSec: overall, Designs: map[string]DesignPerf{}}
	l.HostFingerprint()
	for d, ops := range designs {
		l.Designs[d] = DesignPerf{OpsPerSec: ops}
	}
	return l
}

func TestCompareSameHost(t *testing.T) {
	pinned := ledger(1000, map[string]float64{"a": 900, "b": 1100})
	if err := Compare(pinned, ledger(900, map[string]float64{"a": 800, "b": 1000})); err != nil {
		t.Fatalf("10%% slowdown must pass the 15%% gate: %v", err)
	}
	err := Compare(pinned, ledger(700, map[string]float64{"a": 900, "b": 1100}))
	if err == nil || !strings.Contains(err.Error(), "overall") {
		t.Fatalf("30%% overall slowdown must fail naming overall, got %v", err)
	}
	err = Compare(pinned, ledger(1000, map[string]float64{"a": 500, "b": 1100}))
	if err == nil || !strings.Contains(err.Error(), "a:") {
		t.Fatalf("per-design slowdown must fail naming the design, got %v", err)
	}
}

func TestCompareCrossHost(t *testing.T) {
	pinned := ledger(1000, map[string]float64{"a": 1000, "b": 1000})
	pinned.CPUs++ // force the cross-host relative path
	// A uniformly 10x faster host must pass: relative standing unchanged.
	if err := Compare(pinned, ledger(10000, map[string]float64{"a": 10000, "b": 10000})); err != nil {
		t.Fatalf("uniform speedup must pass the relative gate: %v", err)
	}
	// One design collapsing relative to its peer must fail even though
	// its absolute ops/sec went up.
	err := Compare(pinned, ledger(10000, map[string]float64{"a": 2000, "b": 20000}))
	if err == nil || !strings.Contains(err.Error(), "relative") {
		t.Fatalf("relative collapse must fail, got %v", err)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	pinned := ledger(1000, nil)
	pinned.Schema = Schema + 1
	if err := Compare(pinned, ledger(1000, nil)); err == nil {
		t.Fatal("schema mismatch must refuse comparison")
	}
}

func TestSaveLoadNewest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "notes.json"} {
		l := ledger(float64(len(name)), nil)
		if err := l.Save(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Newest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_10.json" {
		t.Fatalf("Newest picked %s, want BENCH_10.json (numeric, not lexical, order)", p)
	}
	if _, err := Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Newest(t.TempDir()); err == nil {
		t.Fatal("Newest on an empty dir must error")
	}
}

// TestMeasureSmoke runs a miniature measurement end to end: one design,
// one benchmark, a small kernel. It pins the ledger invariants the
// Makefile gate relies on rather than any particular speed.
func TestMeasureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement loop")
	}
	l, err := Measure(MeasureOptions{
		Ops:          2000,
		Benchmarks:   trace.Benchmarks()[:1],
		Designs:      sim.Designs()[:1],
		Workers:      []int{1, 2},
		KernelLeaves: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Schema != Schema || l.CPUs < 1 || l.GoVersion == "" {
		t.Fatalf("bad fingerprint: %+v", l)
	}
	if l.SimOps != 2000 || l.OpsPerSec <= 0 || l.WallSeconds <= 0 {
		t.Fatalf("bad throughput accounting: %+v", l)
	}
	if len(l.Designs) != 1 {
		t.Fatalf("want 1 design entry, got %d", len(l.Designs))
	}
	if l.Memo.Overall <= 0 || l.Memo.Overall > 1 {
		t.Fatalf("memo overall ratio out of range: %v", l.Memo.Overall)
	}
	if len(l.Parallel) != 2 || l.Parallel[0].Workers != 1 || l.Parallel[0].Speedup != 1 {
		t.Fatalf("bad parallel points: %+v", l.Parallel)
	}
	// The gate must pass against itself.
	if err := Compare(l, l); err != nil {
		t.Fatal(err)
	}
}
