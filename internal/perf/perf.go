// Package perf owns the repository's performance ledger: the pinned
// BENCH_<pr>.json files that record what the simulator's throughput was
// when each PR merged, and the regression gate that compares a fresh
// measurement against the newest committed ledger. Every speed claim in
// the repo's history is thereby reproducible: the ledger stores the
// numbers, the host fingerprint they were measured on, and the exact
// run parameters.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Schema is the current ledger schema version. Bump it when fields
// change meaning; the regression gate refuses to compare across
// schemas.
const Schema = 1

// Ledger is one pinned performance measurement.
type Ledger struct {
	Schema int `json:"schema"`

	// Host fingerprint. Absolute throughput is only comparable between
	// runs with an equal fingerprint; across hosts the gate falls back
	// to relative per-design throughput (normalized within each run).
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`

	// Run parameters.
	Ops         int      `json:"ops"`  // memory operations per (design, benchmark) cell
	Seed        int64    `json:"seed"` // workload seed
	Benchmarks  []string `json:"benchmarks"`
	WallSeconds float64  `json:"wall_seconds"` // sum of each design's best timed pass
	SimOps      int64    `json:"sim_ops"`      // simulated memory operations, all cells
	OpsPerSec   float64  `json:"ops_per_sec"`  // SimOps / WallSeconds

	// AllocsPerOp is the mean heap allocations per simulated operation
	// over the whole matrix (runtime.MemStats.Mallocs delta / SimOps).
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Designs holds per-design throughput over the benchmark suite.
	Designs map[string]DesignPerf `json:"designs"`

	// Memo reports the crypto memo-table hit rates over the matrix.
	Memo MemoRates `json:"memo"`

	// KV records the end-to-end KV serving measurement (see MeasureKV):
	// batched writes over loopback TCP through the storage-engine
	// facade, at a thousand-connection scale. Nil in ledgers pinned
	// before the KV layer existed.
	KV *KVPerf `json:"kv,omitempty"`

	// Churn records the sustained-churn measurement (see MeasureChurn):
	// overwrite throughput with the log wrapping through the compactor
	// and the degradation ladder, plus the stall time charged. Nil in
	// ledgers pinned before the compactor existed.
	Churn *ChurnPerf `json:"churn,omitempty"`

	// Parallel records the serial-vs-parallel speedup of the
	// subtree-sharded tree pipeline (the recovery-style VerifyAll +
	// Rebuild kernel, which is pure parallel crypto work), one point per
	// worker count. Speedup is serial wall time / point wall time, on
	// this host — a 1-CPU runner necessarily reports ~1x, which is why
	// CPUs is part of the fingerprint.
	Parallel []ParallelPoint `json:"parallel"`
}

// DesignPerf is one design's simulator throughput over the suite.
type DesignPerf struct {
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// MemoRates are the crypto memo-table hit ratios (see seccrypto).
type MemoRates struct {
	Pad     float64 `json:"pad_hit_ratio"`
	Data    float64 `json:"data_hmac_hit_ratio"`
	Node    float64 `json:"node_hmac_hit_ratio"`
	Overall float64 `json:"overall_hit_ratio"`
}

// ParallelPoint is one worker-count measurement of the tree kernel.
type ParallelPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup"` // vs the Workers=1 point
}

// fingerprint reports whether two ledgers were measured on comparable
// hosts, making absolute throughput comparable.
func (l *Ledger) fingerprintEqual(o *Ledger) bool {
	return l.GoVersion == o.GoVersion && l.CPUs == o.CPUs
}

// Save writes the ledger as indented JSON.
func (l *Ledger) Save(path string) error {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a ledger file.
func Load(path string) (*Ledger, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(b, &l); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &l, nil
}

var ledgerName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Newest returns the path of the highest-numbered BENCH_<pr>.json in
// dir, or an error when none exists.
func Newest(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestPR := "", -1
	for _, e := range ents {
		m := ledgerName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if pr, _ := strconv.Atoi(m[1]); pr > bestPR {
			bestPR, best = pr, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		return "", fmt.Errorf("perf: no BENCH_*.json ledger in %s", dir)
	}
	return best, nil
}

// Tolerance is the regression gate's allowed throughput loss: a fresh
// measurement may be up to this fraction slower than the pinned ledger
// before the gate fails.
const Tolerance = 0.15

// Compare gates fresh against the pinned ledger, returning a non-nil
// error describing every regression beyond Tolerance.
//
// With an equal host fingerprint, absolute ops/sec are compared — the
// overall number and each design's. Across differing hosts absolute
// throughput is meaningless, so the gate compares each design's
// throughput relative to the run's geometric mean instead: a design
// whose relative standing fell by more than Tolerance regressed no
// matter how fast the host is.
func Compare(pinned, fresh *Ledger) error {
	if pinned.Schema != Schema {
		return fmt.Errorf("perf: pinned ledger has schema %d, this tool speaks %d — re-measure the ledger", pinned.Schema, Schema)
	}
	var regressions []string
	check := func(name string, old, new float64) {
		if old > 0 && new < old*(1-Tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ops/sec (-%.1f%%)", name, old, new, 100*(1-new/old)))
		}
	}
	if pinned.fingerprintEqual(fresh) {
		check("overall", pinned.OpsPerSec, fresh.OpsPerSec)
		for d, p := range pinned.Designs {
			f, ok := fresh.Designs[d]
			if !ok {
				continue
			}
			check(d, p.OpsPerSec, f.OpsPerSec)
		}
		// The KV row rides the loopback network stack and a thousand
		// goroutines, so it is noisier than the deterministic simulator
		// cells: gate it at double tolerance, and only when the run
		// shapes match.
		if p, f := pinned.KV, fresh.KV; p != nil && f != nil &&
			p.Conns == f.Conns && p.OpsPerConn == f.OpsPerConn && p.Batch == f.Batch {
			if p.OpsPerSec > 0 && f.OpsPerSec < p.OpsPerSec*(1-2*Tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("kv: %.0f -> %.0f ops/sec (-%.1f%%)", p.OpsPerSec, f.OpsPerSec, 100*(1-f.OpsPerSec/p.OpsPerSec)))
			}
		}
		// The churn row is deterministic work but folds in compaction
		// scheduling and sleep-based throttling, so it gets the same
		// doubled tolerance, again only when the run shapes match.
		if p, f := pinned.Churn, fresh.Churn; p != nil && f != nil &&
			p.Design == f.Design && p.Capacity == f.Capacity &&
			p.ValBytes == f.ValBytes && p.Keys == f.Keys && p.Multiple == f.Multiple {
			if p.OpsPerSec > 0 && f.OpsPerSec < p.OpsPerSec*(1-2*Tolerance) {
				regressions = append(regressions,
					fmt.Sprintf("churn: %.0f -> %.0f ops/sec (-%.1f%%)", p.OpsPerSec, f.OpsPerSec, 100*(1-f.OpsPerSec/p.OpsPerSec)))
			}
		}
	} else {
		// Cross-host: compare per-design throughput normalized by the
		// run's geometric mean.
		pn, fn := normalize(pinned), normalize(fresh)
		for d, p := range pn {
			if f, ok := fn[d]; ok {
				check(d+" (relative)", p, f)
			}
		}
	}
	if len(regressions) == 0 {
		return nil
	}
	sort.Strings(regressions)
	return fmt.Errorf("perf: throughput regressed >%d%% vs pinned ledger:\n  %s",
		int(Tolerance*100), joinLines(regressions))
}

// normalize returns each design's ops/sec divided by the geometric mean
// of all designs in the ledger.
func normalize(l *Ledger) map[string]float64 {
	if len(l.Designs) == 0 {
		return nil
	}
	prod, n := 1.0, 0
	for _, d := range l.Designs {
		if d.OpsPerSec > 0 {
			prod *= d.OpsPerSec
			n++
		}
	}
	if n == 0 {
		return nil
	}
	mean := math.Pow(prod, 1/float64(n))
	out := make(map[string]float64, len(l.Designs))
	for name, d := range l.Designs {
		out[name] = d.OpsPerSec / mean
	}
	return out
}

func joinLines(s []string) string {
	out := ""
	for i, l := range s {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// HostFingerprint fills the ledger's host fields from the runtime.
func (l *Ledger) HostFingerprint() {
	l.GoVersion = runtime.Version()
	l.CPUs = runtime.NumCPU()
}
