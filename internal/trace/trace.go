// Package trace generates the simulator's instruction streams. SPEC
// CPU2006 binaries cannot ship with this repository, so each benchmark
// in the paper's evaluation is replaced by a deterministic synthetic
// generator parameterized by the published first-order memory behaviour
// of that benchmark: footprint, memory-operation intensity, store
// fraction, spatial/temporal locality and load-dependence density.
// These are exactly the properties that drive the evaluation's metrics
// (LLC miss and write-back rates, metadata-cache hit ratio and
// shared-ancestor redundancy in the Merkle tree), so the figures'
// shapes are preserved even though per-benchmark absolute IPC is not
// claimed.
package trace

import (
	"fmt"
	"math/rand"

	"ccnvm/internal/mem"
)

// Kind distinguishes memory operations.
type Kind uint8

// Memory operation kinds.
const (
	Load Kind = iota
	Store
)

// Op is one memory operation plus the count of non-memory instructions
// that precede it (executed at one instruction per cycle).
type Op struct {
	Kind Kind
	Addr mem.Addr
	Gap  uint16 // non-memory instructions before this op
	Dep  bool   // load feeds an immediate consumer: the core blocks on it
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	Name string

	// FootprintPages is the number of distinct 4 KB pages the workload
	// touches.
	FootprintPages int

	// HotPages is the size of the hot subset that absorbs HotFraction of
	// the accesses (temporal locality).
	HotPages    int
	HotFraction float64

	// SeqRun is the expected number of consecutive lines touched by a
	// streaming run (spatial locality); 1 disables streaming.
	SeqRun int

	// AccessesPerLine is how many successive operations land in the same
	// 64 B line during a streaming run (word-granular code makes several
	// accesses per line); 0 or 1 means one access per line.
	AccessesPerLine int

	// StoreFraction is the fraction of memory operations that are
	// stores.
	StoreFraction float64

	// MeanGap is the average number of non-memory instructions between
	// memory operations (memory intensity).
	MeanGap float64

	// DepFraction is the fraction of loads the core must block on.
	DepFraction float64
}

// Validate checks profile sanity.
func (p *Profile) Validate() error {
	switch {
	case p.FootprintPages <= 0:
		return fmt.Errorf("trace %s: footprint must be positive", p.Name)
	case p.HotPages <= 0 || p.HotPages > p.FootprintPages:
		return fmt.Errorf("trace %s: hot pages %d out of range", p.Name, p.HotPages)
	case p.HotFraction < 0 || p.HotFraction > 1:
		return fmt.Errorf("trace %s: hot fraction %v out of range", p.Name, p.HotFraction)
	case p.SeqRun < 1:
		return fmt.Errorf("trace %s: seq run must be >= 1", p.Name)
	case p.AccessesPerLine < 0:
		return fmt.Errorf("trace %s: accesses per line %d negative", p.Name, p.AccessesPerLine)
	case p.StoreFraction < 0 || p.StoreFraction > 1:
		return fmt.Errorf("trace %s: store fraction %v out of range", p.Name, p.StoreFraction)
	case p.MeanGap < 0:
		return fmt.Errorf("trace %s: mean gap %v negative", p.Name, p.MeanGap)
	case p.DepFraction < 0 || p.DepFraction > 1:
		return fmt.Errorf("trace %s: dep fraction %v out of range", p.Name, p.DepFraction)
	}
	return nil
}

// Generator produces a deterministic op stream from a profile and seed.
type Generator struct {
	p   Profile
	rng *rand.Rand

	pos      mem.Addr // current streaming position
	runLeft  int
	lineLeft int // remaining same-line accesses
}

// NewGenerator builds a generator; the same (profile, seed) pair always
// produces the same stream, so every design sees identical workloads.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{p: p, rng: rand.New(rand.NewSource(seed))}
	g.pos = g.randomAddr()
	return g, nil
}

// MustGenerator is NewGenerator with panic-on-error for fixed profiles.
func MustGenerator(p Profile, seed int64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

func (g *Generator) randomAddr() mem.Addr {
	var page int
	if g.rng.Float64() < g.p.HotFraction {
		page = g.rng.Intn(g.p.HotPages)
	} else {
		page = g.rng.Intn(g.p.FootprintPages)
	}
	block := g.rng.Intn(mem.BlocksPerPage)
	return mem.Addr(uint64(page)*mem.PageSize + uint64(block)*mem.LineSize)
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	footprint := uint64(g.p.FootprintPages) * mem.PageSize
	apl := g.p.AccessesPerLine
	if apl < 1 {
		apl = 1
	}
	switch {
	case g.lineLeft > 0:
		g.lineLeft--
	case g.runLeft > 0:
		g.runLeft--
		g.pos = mem.Addr((uint64(g.pos) + mem.LineSize) % footprint)
		g.lineLeft = apl - 1
	default:
		g.pos = g.randomAddr()
		if g.p.SeqRun > 1 {
			g.runLeft = g.rng.Intn(2 * g.p.SeqRun) // mean ≈ SeqRun
		}
		g.lineLeft = apl - 1
	}
	op := Op{Addr: g.pos}
	if g.rng.Float64() < g.p.StoreFraction {
		op.Kind = Store
	} else {
		op.Kind = Load
		op.Dep = g.rng.Float64() < g.p.DepFraction
	}
	// Geometric-ish gap around the mean, bounded for the uint16 field.
	gap := g.rng.ExpFloat64() * g.p.MeanGap
	if gap > 60000 {
		gap = 60000
	}
	op.Gap = uint16(gap)
	return op
}

// Collect materializes n operations; every design replays the same
// slice.
func Collect(g *Generator, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}
