package trace

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the trace-file parser against corrupt input: it
// must never panic, and anything it accepts must round-trip.
func FuzzParse(f *testing.F) {
	p, _ := ProfileByName("gcc")
	var seed bytes.Buffer
	if err := Save(&seed, Collect(MustGenerator(p, 1), 64)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("ccnvmt\x01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Save(&out, ops); err != nil {
			t.Fatalf("accepted ops failed to save: %v", err)
		}
		back, err := Parse(&out)
		if err != nil || len(back) != len(ops) {
			t.Fatalf("accepted ops did not round-trip: %v", err)
		}
	})
}
