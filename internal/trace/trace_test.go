package trace

import (
	"testing"
	"testing/quick"

	"ccnvm/internal/mem"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Benchmarks() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestBenchmarksMatchPaperOrder(t *testing.T) {
	want := []string{"leslie3d", "libquantum", "gcc", "lbm", "soplex", "hmmer", "milc", "namd"}
	got := Benchmarks()
	if len(got) != len(want) {
		t.Fatalf("got %d benchmarks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("benchmark[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := ProfileByName("mcf"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good, _ := ProfileByName("gcc")
	cases := []func(*Profile){
		func(p *Profile) { p.FootprintPages = 0 },
		func(p *Profile) { p.HotPages = 0 },
		func(p *Profile) { p.HotPages = p.FootprintPages + 1 },
		func(p *Profile) { p.HotFraction = 1.5 },
		func(p *Profile) { p.SeqRun = 0 },
		func(p *Profile) { p.AccessesPerLine = -1 },
		func(p *Profile) { p.StoreFraction = -0.1 },
		func(p *Profile) { p.MeanGap = -1 },
		func(p *Profile) { p.DepFraction = 2 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ProfileByName("lbm")
	a := Collect(MustGenerator(p, 7), 5000)
	b := Collect(MustGenerator(p, 7), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs for same seed", i)
		}
	}
	c := Collect(MustGenerator(p, 8), 5000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, name := range Benchmarks() {
		p, _ := ProfileByName(name)
		g := MustGenerator(p, 1)
		limit := mem.Addr(uint64(p.FootprintPages) * mem.PageSize)
		for i := 0; i < 20000; i++ {
			op := g.Next()
			if op.Addr >= limit {
				t.Fatalf("%s: address %#x beyond footprint %#x", name, uint64(op.Addr), uint64(limit))
			}
			if op.Addr%mem.LineSize != 0 {
				t.Fatalf("%s: unaligned address %#x", name, uint64(op.Addr))
			}
		}
	}
}

func TestStoreFractionApproximatelyHonored(t *testing.T) {
	p, _ := ProfileByName("lbm") // 0.50 stores
	g := MustGenerator(p, 3)
	stores := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Kind == Store {
			stores++
		}
	}
	frac := float64(stores) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("store fraction %.3f, want ~0.50", frac)
	}
}

func TestMeanGapApproximatelyHonored(t *testing.T) {
	p, _ := ProfileByName("namd") // MeanGap 14
	g := MustGenerator(p, 4)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(g.Next().Gap)
	}
	mean := sum / n
	if mean < 11 || mean > 17 {
		t.Fatalf("mean gap %.2f, want ~14", mean)
	}
}

func TestSpatialLocalityOfStreamers(t *testing.T) {
	// Streaming profiles must produce mostly sequential line transitions.
	p, _ := ProfileByName("libquantum")
	g := MustGenerator(p, 5)
	prev := g.Next().Addr
	seq, moves := 0, 0
	for i := 0; i < 30000; i++ {
		op := g.Next()
		if op.Addr != prev {
			moves++
			if op.Addr == prev+mem.LineSize {
				seq++
			}
			prev = op.Addr
		}
	}
	if ratio := float64(seq) / float64(moves); ratio < 0.9 {
		t.Fatalf("libquantum sequential transition ratio %.2f, want >= 0.9", ratio)
	}
}

func TestAccessesPerLineClustering(t *testing.T) {
	p, _ := ProfileByName("libquantum") // APL 4
	g := MustGenerator(p, 6)
	prev := g.Next().Addr
	run, runs, total := 1, 0, 0
	for i := 0; i < 30000; i++ {
		op := g.Next()
		if op.Addr == prev {
			run++
		} else {
			runs++
			total += run
			run = 1
			prev = op.Addr
		}
	}
	mean := float64(total) / float64(runs)
	if mean < 3 || mean > 5 {
		t.Fatalf("mean same-line run %.2f, want ~4", mean)
	}
}

func TestDepOnlyOnLoads(t *testing.T) {
	f := func(seed int64) bool {
		p, _ := ProfileByName("gcc")
		g := MustGenerator(p, seed)
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if op.Kind == Store && op.Dep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHotSetConcentration(t *testing.T) {
	p, _ := ProfileByName("hmmer") // 95% to 48 hot pages
	g := MustGenerator(p, 9)
	hotLimit := mem.Addr(uint64(p.HotPages) * mem.PageSize)
	hot := 0
	const n = 30000
	for i := 0; i < n; i++ {
		if g.Next().Addr < hotLimit {
			hot++
		}
	}
	if frac := float64(hot) / n; frac < 0.85 {
		t.Fatalf("hot-set fraction %.2f, want >= 0.85", frac)
	}
}

func TestToolkitProfilesValid(t *testing.T) {
	profiles := []Profile{
		UniformProfile("u", 256, 0.3),
		StreamProfile("s", 1024, 0.5),
		PointerChaseProfile("p", 512),
	}
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		g := MustGenerator(p, 1)
		for i := 0; i < 1000; i++ {
			op := g.Next()
			if op.Addr >= mem.Addr(uint64(p.FootprintPages)*mem.PageSize) {
				t.Fatalf("%s: address out of footprint", p.Name)
			}
		}
	}
}

func TestPointerChaseAllLoadsDep(t *testing.T) {
	g := MustGenerator(PointerChaseProfile("p", 64), 2)
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Kind == Load && !op.Dep {
			t.Fatal("pointer chase produced a non-dependent load")
		}
	}
}

func TestStreamIsSequential(t *testing.T) {
	g := MustGenerator(StreamProfile("s", 2048, 0.5), 3)
	prev := g.Next().Addr
	seq, moves := 0, 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Addr != prev {
			moves++
			if op.Addr == prev+mem.LineSize {
				seq++
			}
			prev = op.Addr
		}
	}
	if float64(seq)/float64(moves) < 0.95 {
		t.Fatalf("stream sequential ratio %.2f too low", float64(seq)/float64(moves))
	}
}
