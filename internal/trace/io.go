package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ccnvm/internal/mem"
)

// Trace files let workloads be recorded once and replayed across tools
// or checked into experiment archives. The format is a small binary
// container: an 8-byte magic+version header, the op count, then one
// 11-byte record per op (flags, address, gap).

var traceMagic = [6]byte{'c', 'c', 'n', 'v', 'm', 't'}

const traceVersion = 1

const (
	flagStore = 1 << 0
	flagDep   = 1 << 1
)

// Save writes ops to w in the trace file format.
func Save(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(ops)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	var rec [11]byte
	for _, op := range ops {
		rec[0] = 0
		if op.Kind == Store {
			rec[0] |= flagStore
		}
		if op.Dep {
			rec[0] |= flagDep
		}
		binary.LittleEndian.PutUint64(rec[1:9], uint64(op.Addr))
		binary.LittleEndian.PutUint16(rec[9:11], op.Gap)
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write op: %w", err)
		}
	}
	return bw.Flush()
}

// Parse reads a trace file written by Save.
func Parse(r io.Reader) ([]Op, error) {
	br := bufio.NewReader(r)
	var hdr [7]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if [6]byte(hdr[:6]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:6])
	}
	if hdr[6] != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[6])
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	const maxOps = 1 << 30
	if n > maxOps {
		return nil, fmt.Errorf("trace: implausible op count %d", n)
	}
	// Cap the upfront allocation: a forged header must not commit
	// gigabytes before the (truncated) body fails to parse.
	initial := n
	if initial > 65536 {
		initial = 65536
	}
	ops := make([]Op, 0, initial)
	var rec [11]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: read op %d: %w", i, err)
		}
		op := Op{
			Addr: mem.Addr(binary.LittleEndian.Uint64(rec[1:9])),
			Gap:  binary.LittleEndian.Uint16(rec[9:11]),
		}
		if rec[0]&flagStore != 0 {
			op.Kind = Store
		}
		op.Dep = rec[0]&flagDep != 0
		if op.Kind == Store && op.Dep {
			return nil, fmt.Errorf("trace: op %d: stores cannot carry the dep flag", i)
		}
		ops = append(ops, op)
	}
	return ops, nil
}
