package trace

import (
	"fmt"
	"sort"
)

// The eight SPEC CPU2006 stand-ins used by the paper's Figure 5, in the
// figure's order. Parameters encode each benchmark's published
// first-order memory behaviour (see the package comment); they were
// calibrated so the simulated LLC miss and write-back intensities fall
// in the ranges reported for the real benchmarks.
var profiles = []Profile{
	{
		// leslie3d: fluid dynamics; streaming stencil sweeps over a large
		// grid with a moderate store share.
		Name: "leslie3d", FootprintPages: 4096, HotPages: 40, HotFraction: 0.45,
		SeqRun: 96, AccessesPerLine: 4, StoreFraction: 0.30, MeanGap: 10, DepFraction: 0.20,
	},
	{
		// libquantum: quantum simulation; long unit-stride scans of one
		// huge vector, famously memory-bound but prefetch-friendly.
		Name: "libquantum", FootprintPages: 8192, HotPages: 8, HotFraction: 0.05,
		SeqRun: 512, AccessesPerLine: 4, StoreFraction: 0.20, MeanGap: 10, DepFraction: 0.10,
	},
	{
		// gcc: compiler; irregular pointer chasing over a medium heap with
		// a warm hot set and dependent loads.
		Name: "gcc", FootprintPages: 1024, HotPages: 48, HotFraction: 0.80,
		SeqRun: 24, AccessesPerLine: 4, StoreFraction: 0.30, MeanGap: 12, DepFraction: 0.25,
	},
	{
		// lbm: lattice Boltzmann; streaming and the most write-intensive
		// of the suite.
		Name: "lbm", FootprintPages: 8192, HotPages: 8, HotFraction: 0.05,
		SeqRun: 256, AccessesPerLine: 4, StoreFraction: 0.50, MeanGap: 9, DepFraction: 0.10,
	},
	{
		// soplex: LP solver; large sparse matrices, read-dominated with
		// dependent loads.
		Name: "soplex", FootprintPages: 6144, HotPages: 56, HotFraction: 0.65,
		SeqRun: 40, AccessesPerLine: 3, StoreFraction: 0.20, MeanGap: 10, DepFraction: 0.30,
	},
	{
		// hmmer: sequence search; compute-bound with a small resident
		// working set.
		Name: "hmmer", FootprintPages: 256, HotPages: 48, HotFraction: 0.95,
		SeqRun: 8, AccessesPerLine: 5, StoreFraction: 0.45, MeanGap: 10, DepFraction: 0.20,
	},
	{
		// milc: lattice QCD; large footprint with scattered accesses.
		Name: "milc", FootprintPages: 8192, HotPages: 16, HotFraction: 0.30,
		SeqRun: 48, AccessesPerLine: 3, StoreFraction: 0.35, MeanGap: 10, DepFraction: 0.25,
	},
	{
		// namd: molecular dynamics; compute-bound, cache-resident.
		Name: "namd", FootprintPages: 512, HotPages: 96, HotFraction: 0.92,
		SeqRun: 24, AccessesPerLine: 5, StoreFraction: 0.30, MeanGap: 14, DepFraction: 0.20,
	},
}

// Benchmarks returns the SPEC stand-in names in the paper's figure
// order.
func Benchmarks() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ProfileByName returns the named stand-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	known := Benchmarks()
	sort.Strings(known)
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q (known: %v)", name, known)
}
