package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p, _ := ProfileByName("milc")
	ops := Collect(MustGenerator(p, 5), 10000)
	var buf bytes.Buffer
	if err := Save(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("count %d != %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip failed: %v %v", got, err)
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Parse(strings.NewReader("notatrace-file....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, []Op{{Kind: Load, Addr: 0, Gap: 1}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[6] = 99 // version byte
	if _, err := Parse(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	p, _ := ProfileByName("gcc")
	ops := Collect(MustGenerator(p, 1), 100)
	var buf bytes.Buffer
	if err := Save(&buf, ops); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for _, cut := range []int{3, 10, len(b) / 2, len(b) - 1} {
		if _, err := Parse(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsDepStore(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, []Op{{Kind: Store, Dep: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(&buf); err == nil {
		t.Fatal("dep-flagged store accepted")
	}
}
