package trace

// Beyond the SPEC stand-ins, the package offers generic workload
// shapes for custom experiments: uniform random access, pure streaming,
// and pointer chasing. All are ordinary Profiles, so they compose with
// Generator, Collect and the trace file format.

// UniformProfile is uniformly random line access over footprintPages
// 4 KiB pages with the given store fraction: the worst case for every
// cache and for dirty-address-queue dedup.
func UniformProfile(name string, footprintPages int, storeFraction float64) Profile {
	return Profile{
		Name:           name,
		FootprintPages: footprintPages,
		HotPages:       footprintPages,
		HotFraction:    0,
		SeqRun:         1,
		StoreFraction:  storeFraction,
		MeanGap:        6,
		DepFraction:    0.25,
	}
}

// StreamProfile is a pure unit-stride sweep (copy/init kernels): long
// sequential runs with several accesses per line, the best case for
// epoch-based draining.
func StreamProfile(name string, footprintPages int, storeFraction float64) Profile {
	return Profile{
		Name:            name,
		FootprintPages:  footprintPages,
		HotPages:        1,
		HotFraction:     0,
		SeqRun:          512,
		AccessesPerLine: 4,
		StoreFraction:   storeFraction,
		MeanGap:         6,
		DepFraction:     0.1,
	}
}

// PointerChaseProfile is a dependent random walk (linked lists, trees):
// every load feeds the next address, so the core serializes on memory
// latency — the read-path worst case for the security engine.
func PointerChaseProfile(name string, footprintPages int) Profile {
	return Profile{
		Name:           name,
		FootprintPages: footprintPages,
		HotPages:       footprintPages,
		HotFraction:    0,
		SeqRun:         1,
		StoreFraction:  0.02,
		MeanGap:        4,
		DepFraction:    1,
	}
}
