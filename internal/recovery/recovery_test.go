package recovery_test

import (
	"math/rand"
	"testing"

	"ccnvm/internal/attack"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/store"
	"ccnvm/internal/torture"
)

const capacity = 1 << 30

func build(t testing.TB, name string, p engine.Params) engine.Engine {
	t.Helper()
	st, err := store.Open(store.Options{Design: name, Capacity: capacity, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	return st.Engine()
}

// snapshotNVM captures persistent state without the destructive Crash.
func snapshotNVM(t *testing.T, e engine.Engine) *nvm.Image {
	t.Helper()
	s, ok := e.(interface{ NVMSnapshot() *nvm.Image })
	if !ok {
		t.Fatal("engine lacks NVMSnapshot")
	}
	return s.NVMSnapshot()
}

func pattern(addr mem.Addr, v byte) mem.Line {
	var l mem.Line
	for i := range l {
		l[i] = byte(uint64(addr)>>(8*(i%8))) ^ v ^ byte(i)
	}
	return l
}

// workload runs a mixed write stream and returns the engine mid-epoch
// (no settle), so counters are stalled at the crash point.
func workload(t testing.TB, e engine.Engine, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := int64(0)
	for i := 0; i < n; i++ {
		a := mem.Addr(rng.Intn(48) * 4096)
		if rng.Intn(4) == 0 {
			a += mem.Addr(rng.Intn(4) * 64)
		}
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 25
	}
}

func TestCleanCrashRecoversAllDesigns(t *testing.T) {
	// cc-NVM (both variants), Osiris and SC must all recover a crash
	// without attacks: counters restored, no attacks reported.
	for _, d := range []string{"sc", "osiris", "ccnvm-wods", "ccnvm"} {
		t.Run(d, func(t *testing.T) {
			e := build(t, d, engine.Params{UpdateLimit: 16, QueueEntries: 64})
			workload(t, e, 250, 1)
			img := e.Crash()
			rep := recovery.Recover(img)
			if !rep.Clean() {
				t.Fatalf("%s: clean crash flagged: mismatches=%d tampered=%d replay=%v (Nwb=%d Nretry=%d)",
					d, len(rep.TreeMismatches), len(rep.Tampered), rep.PotentialReplay, rep.Nwb, rep.Nretry)
			}
			if d == "ccnvm" && rep.Nretry != rep.Nwb {
				t.Fatalf("ccnvm: Nretry %d != Nwb %d on a clean crash", rep.Nretry, rep.Nwb)
			}
		})
	}
}

func TestCCNVMRecoveryRetriesBounded(t *testing.T) {
	e := build(t, "ccnvm", engine.Params{UpdateLimit: 8})
	workload(t, e, 300, 2)
	img := e.Crash()
	rep := recovery.Recover(img)
	if !rep.Clean() {
		t.Fatalf("clean crash flagged: %+v", rep)
	}
	if rep.Nwb > 0 && rep.RecoveredBlocks == 0 {
		t.Fatal("mid-epoch crash should need counter recovery")
	}
}

func TestSCNeedsNoRecovery(t *testing.T) {
	e := build(t, "sc", engine.Params{})
	workload(t, e, 150, 3)
	rep := recovery.Recover(e.Crash())
	if rep.Nretry != 0 || rep.RecoveredBlocks != 0 {
		t.Fatalf("SC image needed recovery: Nretry=%d", rep.Nretry)
	}
	if !rep.Clean() {
		t.Fatal("SC clean crash flagged")
	}
}

func TestWoCCIsUnrecoverable(t *testing.T) {
	// The motivating failure: without crash consistency, enough traffic
	// leaves NVM metadata stale beyond the retry bound, so innocent data
	// is indistinguishable from an attack.
	e := build(t, "wocc", engine.Params{UpdateLimit: 16})
	rng := rand.New(rand.NewSource(4))
	now := int64(0)
	a := mem.Addr(0)
	for i := 0; i < 64; i++ { // one hot line: counters lag far beyond N
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 25
		_ = rng
	}
	rep := recovery.Recover(e.Crash())
	if rep.Clean() {
		t.Fatal("w/o-CC crash image recovered cleanly; expected unrecoverable damage")
	}
}

func TestSpoofLocatedAfterCrash(t *testing.T) {
	for _, d := range []string{"ccnvm", "ccnvm-wods"} {
		t.Run(d, func(t *testing.T) {
			e := build(t, d, engine.Params{UpdateLimit: 16})
			workload(t, e, 200, 5)
			img := e.Crash()
			victim := firstDataAddr(t, img)
			if err := attack.SpoofData(img, victim); err != nil {
				t.Fatal(err)
			}
			rep := recovery.Recover(img)
			if len(rep.Tampered) != 1 || rep.Tampered[0].Addr != victim {
				t.Fatalf("%s: spoof not located: %+v", d, rep.Tampered)
			}
			if !rep.Located() {
				t.Fatalf("%s: spoof detected but Located()==false", d)
			}
		})
	}
}

func TestSpliceLocatedAtBothBlocks(t *testing.T) {
	e := build(t, "ccnvm", engine.Params{UpdateLimit: 16})
	workload(t, e, 200, 6)
	img := e.Crash()
	addrs := dataAddrs(img)
	if len(addrs) < 2 {
		t.Fatal("not enough data blocks")
	}
	a, b := addrs[0], addrs[len(addrs)/2]
	if err := attack.SpliceData(img, a, b); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	found := map[mem.Addr]bool{}
	for _, tb := range rep.Tampered {
		found[tb.Addr] = true
	}
	if !found[a] || !found[b] {
		t.Fatalf("splice not located at both blocks: %+v", rep.Tampered)
	}
}

func TestCounterReplayLocatedByTreeCheck(t *testing.T) {
	// Replaying an NVM counter line to a pre-drain version breaks the
	// parent/child chain: step 1 locates it.
	e := build(t, "ccnvm", engine.Params{UpdateLimit: 4}) // small N: drains happen
	var snapshot *nvm.Image
	now := int64(0)
	hot := mem.Addr(0)
	for i := 0; i < 30; i++ {
		now = e.WriteBack(now, hot, pattern(hot, byte(i))) + 25
		if i == 10 {
			snapshot = snapshotNVM(t, e) // early persistent state
		}
	}
	img := e.Crash()
	if err := attack.ReplayCounterLine(img, snapshot, hot); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if len(rep.TreeMismatches) == 0 {
		t.Fatal("replayed counter line not located by the tree check")
	}
	lay := img.Image.Layout
	want := lay.CounterLineOf(hot)
	located := false
	for _, m := range rep.TreeMismatches {
		if m.Addr == want {
			located = true
		}
	}
	if !located {
		t.Fatalf("mismatches %v do not include the replayed counter line %#x", rep.TreeMismatches, uint64(want))
	}
}

func TestTreeNodeSpoofLocated(t *testing.T) {
	e := build(t, "ccnvm", engine.Params{UpdateLimit: 4})
	workload(t, e, 120, 8)
	img := e.Crash()
	// Find a written level-1 node to corrupt.
	lay := img.Image.Layout
	var idx uint64
	found := false
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) == mem.RegionTree {
			if lv, i := lay.NodeAt(a); lv == 1 {
				idx, found = i, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no level-1 node persisted; increase workload")
	}
	if err := attack.SpoofTreeNode(img, 1, idx); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if len(rep.TreeMismatches) == 0 {
		t.Fatal("corrupted tree node not detected")
	}
}

func TestDataReplayDetectedViaNwb(t *testing.T) {
	// Figure 4's attack: crash before the drain commits, replay newly
	// written data + HMAC to their old version. The old Merkle tree is
	// consistent and the old counter matches the replayed pair, so only
	// Nwb != Nretry reveals it.
	e := build(t, "ccnvm", engine.Params{UpdateLimit: 64, QueueEntries: 64})
	hot := mem.Addr(8 * 4096)
	now := e.WriteBack(0, hot, pattern(hot, 1)) + 100
	early := snapshotNVM(t, e) // persistent state with version 1
	// More write-backs to the same block within one epoch.
	now = e.WriteBack(now, hot, pattern(hot, 2)) + 100
	_ = e.WriteBack(now, hot, pattern(hot, 3))
	img := e.Crash()
	if img.TCB.Nwb == 0 {
		t.Fatal("test setup: epoch drained; replay window closed")
	}
	if err := attack.ReplayBlock(img, early, hot); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if !rep.PotentialReplay {
		t.Fatalf("replay within the DS window not detected: Nwb=%d Nretry=%d", rep.Nwb, rep.Nretry)
	}
	if rep.Located() {
		t.Fatal("this attack is detectable but must not be locatable")
	}
	if !rep.DataDropped() {
		t.Fatal("detected-not-located attack must drop data")
	}
}

func TestOsirisDetectsButCannotLocate(t *testing.T) {
	// The §3 contrast: Osiris Plus detects a spoofed block only as a
	// root mismatch — the tampered HMAC check fires too here (since the
	// spoof breaks the data HMAC), so use a replay instead, which Osiris
	// cannot pin down.
	e := build(t, "osiris", engine.Params{UpdateLimit: 16})
	hot := mem.Addr(4096)
	now := e.WriteBack(0, hot, pattern(hot, 1)) + 100
	early := snapshotNVM(t, e)
	now = e.WriteBack(now, hot, pattern(hot, 2)) + 100
	_ = e.WriteBack(now, hot, pattern(hot, 3))
	img := e.Crash()
	if err := attack.ReplayBlock(img, early, hot); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if !rep.PotentialReplay {
		t.Fatal("osiris: replayed block not detected via root mismatch")
	}
	if rep.Located() {
		t.Fatal("osiris must not be able to locate the attack")
	}
}

func TestApplyThenResume(t *testing.T) {
	// Recover a clean crash, apply the rebuilt state, boot a fresh
	// cc-NVM engine on the image and verify data still reads back.
	e := build(t, "ccnvm", engine.Params{UpdateLimit: 16})
	want := map[mem.Addr]byte{}
	now := int64(0)
	for i := 0; i < 150; i++ {
		a := mem.Addr((i % 24) * 4096)
		want[a] = byte(i)
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 25
	}
	img := e.Crash()
	rep := recovery.Recover(img)
	if !rep.Clean() {
		t.Fatalf("clean crash flagged: %+v", rep)
	}
	rec := recovery.Apply(img, rep)

	st2, err := store.OpenRecovered(img, rec, store.Options{Params: engine.Params{UpdateLimit: 16}})
	if err != nil {
		t.Fatal(err)
	}
	e2 := st2.Engine()
	now = 0
	for a, v := range want {
		pt, done := e2.ReadBlock(now, a)
		if pt != pattern(a, v) {
			t.Fatalf("post-recovery read of %#x wrong", uint64(a))
		}
		now = done + 10
	}
	if viol := e2.Stats().IntegrityViolations; viol != 0 {
		t.Fatalf("%d violations reading recovered image", viol)
	}
	// And the resumed engine keeps working.
	a := mem.Addr(0)
	now = e2.WriteBack(now, a, pattern(a, 200)) + 50
	pt, _ := e2.ReadBlock(now, a)
	if pt != pattern(a, 200) {
		t.Fatal("resumed engine lost a write")
	}
}

func TestRandomizedCrashPointsPropertyCCNVM(t *testing.T) {
	// Property: for any crash point in a random workload without
	// attacks, recovery satisfies every torture oracle — clean report,
	// Nretry == Nwb replay-window accounting, all-or-nothing epochs, and
	// bit-for-bit agreement with the golden reference machine. The
	// oracles subsume the bespoke assertions this test used to make.
	r := torture.DefaultRunner()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cell := torture.Cell{
			Design:   "ccnvm",
			Workload: "hot",
			Seed:     seed,
			Ops:      40 + rng.Intn(200),
			N:        4 + uint64(seed*4),
			M:        32,
		}
		cell.CrashAt = 1 + rng.Intn(cell.Ops)
		if f := r.RunCell(cell); f != nil {
			t.Fatalf("seed %d: %v\nrepro: %s", seed, f, f.Cell.Repro())
		}
	}
}

func firstDataAddr(t *testing.T, img *engine.CrashImage) mem.Addr {
	t.Helper()
	as := dataAddrs(img)
	if len(as) == 0 {
		t.Fatal("no data blocks in image")
	}
	return as[0]
}

func dataAddrs(img *engine.CrashImage) []mem.Addr {
	var out []mem.Addr
	for _, a := range img.Image.Store.Addrs() {
		if img.Image.Layout.RegionOf(a) == mem.RegionData {
			out = append(out, a)
		}
	}
	return out
}

func TestExtensionLocatesDataReplay(t *testing.T) {
	// The §4.4 extension: with persistent per-line update registers, the
	// Figure 4 replay is localized to its page instead of forcing a
	// whole-NVM drop.
	e := build(t, "ccnvm-ext", engine.Params{UpdateLimit: 64, QueueEntries: 64})
	hot := mem.Addr(8 * 4096)
	now := e.WriteBack(0, hot, pattern(hot, 1)) + 100
	early := snapshotNVM(t, e)
	now = e.WriteBack(now, hot, pattern(hot, 2)) + 100
	_ = e.WriteBack(now, hot, pattern(hot, 3))
	img := e.Crash()
	if img.TCB.ExtDirty == nil || len(img.TCB.ExtDirty) == 0 {
		t.Fatal("extension registers empty")
	}
	if err := attack.ReplayBlock(img, early, hot); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if !rep.Located() {
		t.Fatalf("extension failed to locate the replay: %+v", rep)
	}
	if rep.PotentialReplay {
		t.Fatal("extension should locate, not merely detect")
	}
	if len(rep.ReplayedPages) != 1 || rep.ReplayedPages[0] != mem.Addr(8*4096) {
		t.Fatalf("replayed pages = %v, want [0x8000]", rep.ReplayedPages)
	}
}

func TestExtensionCleanCrash(t *testing.T) {
	e := build(t, "ccnvm-ext", engine.Params{UpdateLimit: 16})
	workload(t, e, 200, 11)
	rep := recovery.Recover(e.Crash())
	if !rep.Clean() {
		t.Fatalf("extension flagged a clean crash: %+v", rep)
	}
}

func TestExtensionRegistersResetAtDrain(t *testing.T) {
	e := build(t, "ccnvm-ext", engine.Params{UpdateLimit: 4})
	hot := mem.Addr(0)
	now := int64(0)
	for i := 0; i < 4; i++ { // exactly N: the 4th write-back drains
		now = e.WriteBack(now, hot, pattern(hot, byte(i))) + 10
	}
	img := e.Crash()
	if len(img.TCB.ExtDirty) != 0 {
		t.Fatalf("registers survived the drain: %v", img.TCB.ExtDirty)
	}
}

func TestExtensionSpoofStillLocatedAtBlock(t *testing.T) {
	// The extension must not regress the block-granular location of
	// spoofing attacks.
	e := build(t, "ccnvm-ext", engine.Params{UpdateLimit: 16})
	workload(t, e, 150, 12)
	img := e.Crash()
	victim := firstDataAddr(t, img)
	if err := attack.SpoofData(img, victim); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if len(rep.Tampered) != 1 || rep.Tampered[0].Addr != victim {
		t.Fatalf("spoof not located under extension: %+v", rep.Tampered)
	}
}

// TestAttackFuzzer is the adversarial property test: random attacks of
// random kinds against random crash points must always be caught (no
// false negatives), and untouched images must always recover cleanly
// (no false positives). Only attacks that actually change persistent
// state count — a replay of an unchanged block is a no-op, not a miss.
func TestAttackFuzzer(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := build(t, "ccnvm", engine.Params{UpdateLimit: 4 + uint64(rng.Intn(3))*8})
		var snapshot *nvm.Image
		now := int64(0)
		n := 60 + rng.Intn(150)
		snapAt := n / 2
		for i := 0; i < n; i++ {
			a := mem.Addr(rng.Intn(32) * 4096)
			now = e.WriteBack(now, a, pattern(a, byte(i))) + 25
			if i == snapAt {
				snapshot = snapshotNVM(t, e)
			}
		}
		img := e.Crash()

		// Control: the untouched image must be clean.
		if rep := recovery.Recover(cloneImage(img)); !rep.Clean() {
			t.Fatalf("seed %d: false positive on clean image", seed)
		}

		mutated := cloneImage(img)
		changed := false
		kind := rng.Intn(4)
		addrs := dataAddrs(mutated)
		victim := addrs[rng.Intn(len(addrs))]
		switch kind {
		case 0:
			if err := attack.SpoofData(mutated, victim); err != nil {
				t.Fatal(err)
			}
			changed = true
		case 1:
			other := addrs[rng.Intn(len(addrs))]
			before1, _ := mutated.Image.Read(victim)
			before2, _ := mutated.Image.Read(other)
			if err := attack.SpliceData(mutated, victim, other); err != nil {
				t.Fatal(err)
			}
			changed = before1 != before2
		case 2:
			ca := mutated.Image.Layout.CounterLineOf(victim)
			before, _ := mutated.Image.Read(ca)
			if err := attack.ReplayCounterLine(mutated, snapshot, victim); err != nil {
				t.Fatal(err)
			}
			after, _ := mutated.Image.Read(ca)
			changed = before != after
		case 3:
			before, _ := mutated.Image.Read(victim)
			ha, _ := mutated.Image.Layout.HMACLineOf(victim)
			beforeH, _ := mutated.Image.Read(ha)
			if err := attack.ReplayBlock(mutated, snapshot, victim); err != nil {
				t.Fatal(err)
			}
			after, _ := mutated.Image.Read(victim)
			afterH, _ := mutated.Image.Read(ha)
			changed = before != after || beforeH != afterH
		}
		if !changed {
			continue // no-op mutation: nothing to detect
		}
		rep := recovery.Recover(mutated)
		if rep.Clean() {
			t.Fatalf("seed %d kind %d: attack on %#x went undetected", seed, kind, uint64(victim))
		}
	}
}

func cloneImage(img *engine.CrashImage) *engine.CrashImage {
	cp := *img
	cp.Image = img.Image.Clone()
	cp.TCB = img.TCB.CloneExt()
	return &cp
}
