// The persisted recovery journal: recovery's Apply writes counters and
// tree nodes back into the same NVM that just tore writes and dropped
// ADR drains, so a power failure during recovery itself must be
// survivable. Apply therefore journals its progress in a small reserved
// region of the crash image (real hardware would dedicate a few
// metadata lines next to the root registers) under the same
// word-granularity persistence rules as every other NVM write: a
// journal record update can tear, and recovery must tolerate that too.
//
// The journal is two alternating 192-byte slots. Every record carries
// the full pass header — the committed rebuilt root and the first
// pass's report verdicts — plus an optional pending write: the one
// counter line whose in-place persist is in flight. Records go to slot
// Seq%2, so a torn record corrupts only the newest slot and the
// previous record remains loadable; a checksum tells the two apart.
// Tree-node writes are never journaled individually — they are
// recomputable from the counters, so the header's root is enough.
//
// The protocol per Apply pass:
//
//	jBegin  — header record, Active set (skipped when resuming a pass
//	          whose journal is already active with the same header:
//	          rewriting it would re-arm the same strike point every
//	          reboot without making progress).
//	jPend   — before each counter-line write: header plus the pending
//	          address and content. The journal copy is authoritative —
//	          if the in-place write tears, resume reads the journaled
//	          line. A pending record matching the journal's current
//	          pending entry is not rewritten (same livelock argument).
//	jCommit — header record, Active cleared: recovery is complete and
//	          the next boot recovers from scratch.
package recovery

import (
	"encoding/binary"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

const (
	journalMagic   = "CCRJ"
	journalVersion = 1
	// journalSlotLen is one record slot: 176 bytes of payload, an 8-byte
	// FNV-64a checksum, padded to three 64-byte lines.
	journalSlotLen = 192
	journalLen     = 2 * journalSlotLen
)

// Slot byte offsets. The payload is checksummed as one unit; the
// checksum sits at the end so a record torn anywhere fails closed.
const (
	joMagic    = 0   // 4 bytes
	joVersion  = 4   // 1 byte
	joFlags    = 5   // 1 byte: bit0 Active, bit1 PendingValid
	joRoot     = 6   // 1 byte: ConsistentRoot (0 "", 1 "old", 2 "new")
	joVerdicts = 7   // 1 byte: bit0 PotentialReplay, bit1 CrashLossWindow
	joSeq      = 8   // 8 bytes
	joNwb      = 16  // 8 bytes
	joNretry   = 24  // 8 bytes
	joBlocks   = 32  // 4 bytes
	joLines    = 36  // 4 bytes
	joRootLine = 40  // 64 bytes: committed rebuilt root
	joPendAddr = 104 // 8 bytes
	joPendLine = 112 // 64 bytes
	joChecksum = 176 // 8 bytes over [0, 176)
)

// journalRecord is one decoded journal slot.
type journalRecord struct {
	Active bool
	Seq    uint64

	// The pass header: the rebuilt root this pass commits and the first
	// pass's report verdicts, so a resumed recovery reports what the
	// interrupted one established instead of re-deriving verdicts from
	// half-applied state.
	Root            mem.Line
	ConsistentRoot  string
	PotentialReplay bool
	CrashLossWindow bool
	Nwb             uint64
	Nretry          uint64
	Blocks          int
	Lines           int

	// The in-flight counter-line write, if any.
	PendingValid bool
	PendingAddr  mem.Addr
	PendingLine  mem.Line
}

// sameHeader reports whether two records describe the same Apply pass
// (pending entries aside) — the test for skipping a redundant jBegin.
func sameHeader(a, b journalRecord) bool {
	return a.Root == b.Root && a.ConsistentRoot == b.ConsistentRoot &&
		a.PotentialReplay == b.PotentialReplay && a.CrashLossWindow == b.CrashLossWindow &&
		a.Nwb == b.Nwb && a.Nretry == b.Nretry && a.Blocks == b.Blocks && a.Lines == b.Lines
}

// journalChecksum is FNV-64a; content integrity only (the journal is
// inside the TCB's trust boundary, like the root registers, so no MAC).
func journalChecksum(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

func encodeSlot(rec journalRecord) [journalSlotLen]byte {
	var b [journalSlotLen]byte
	copy(b[joMagic:], journalMagic)
	b[joVersion] = journalVersion
	if rec.Active {
		b[joFlags] |= 1
	}
	if rec.PendingValid {
		b[joFlags] |= 2
	}
	switch rec.ConsistentRoot {
	case "old":
		b[joRoot] = 1
	case "new":
		b[joRoot] = 2
	}
	if rec.PotentialReplay {
		b[joVerdicts] |= 1
	}
	if rec.CrashLossWindow {
		b[joVerdicts] |= 2
	}
	binary.LittleEndian.PutUint64(b[joSeq:], rec.Seq)
	binary.LittleEndian.PutUint64(b[joNwb:], rec.Nwb)
	binary.LittleEndian.PutUint64(b[joNretry:], rec.Nretry)
	binary.LittleEndian.PutUint32(b[joBlocks:], uint32(rec.Blocks))
	binary.LittleEndian.PutUint32(b[joLines:], uint32(rec.Lines))
	copy(b[joRootLine:], rec.Root[:])
	binary.LittleEndian.PutUint64(b[joPendAddr:], uint64(rec.PendingAddr))
	copy(b[joPendLine:], rec.PendingLine[:])
	binary.LittleEndian.PutUint64(b[joChecksum:], journalChecksum(b[:joChecksum]))
	return b
}

func decodeSlot(b []byte) (journalRecord, bool) {
	if len(b) < journalSlotLen || string(b[joMagic:joMagic+4]) != journalMagic || b[joVersion] != journalVersion {
		return journalRecord{}, false
	}
	if binary.LittleEndian.Uint64(b[joChecksum:]) != journalChecksum(b[:joChecksum]) {
		return journalRecord{}, false
	}
	rec := journalRecord{
		Active:          b[joFlags]&1 != 0,
		PendingValid:    b[joFlags]&2 != 0,
		PotentialReplay: b[joVerdicts]&1 != 0,
		CrashLossWindow: b[joVerdicts]&2 != 0,
		Seq:             binary.LittleEndian.Uint64(b[joSeq:]),
		Nwb:             binary.LittleEndian.Uint64(b[joNwb:]),
		Nretry:          binary.LittleEndian.Uint64(b[joNretry:]),
		Blocks:          int(binary.LittleEndian.Uint32(b[joBlocks:])),
		Lines:           int(binary.LittleEndian.Uint32(b[joLines:])),
		PendingAddr:     mem.Addr(binary.LittleEndian.Uint64(b[joPendAddr:])),
	}
	switch b[joRoot] {
	case 1:
		rec.ConsistentRoot = "old"
	case 2:
		rec.ConsistentRoot = "new"
	}
	copy(rec.Root[:], b[joRootLine:])
	copy(rec.PendingLine[:], b[joPendLine:])
	return rec, true
}

// loadJournal returns the newest intact record. A record torn mid-write
// fails its checksum and the previous record (the other slot) rules.
func loadJournal(img *engine.CrashImage) (journalRecord, bool) {
	if len(img.RecoveryJournal) != journalLen {
		return journalRecord{}, false
	}
	r0, ok0 := decodeSlot(img.RecoveryJournal[:journalSlotLen])
	r1, ok1 := decodeSlot(img.RecoveryJournal[journalSlotLen:])
	switch {
	case ok0 && ok1:
		if r1.Seq > r0.Seq {
			return r1, true
		}
		return r0, true
	case ok0:
		return r0, true
	case ok1:
		return r1, true
	}
	return journalRecord{}, false
}

// ensureJournal reserves the journal region. Allocation is not a
// persisted write: hardware pre-provisions the lines at format time.
func ensureJournal(img *engine.CrashImage) {
	if len(img.RecoveryJournal) != journalLen {
		img.RecoveryJournal = make([]byte, journalLen)
	}
}

// JournalActive reports whether the image carries an uncommitted
// recovery journal — an Apply pass began and its commit record never
// persisted. Recover resumes such an image; the torture harness's
// bounded-reboots oracle checks that a converged recovery left it
// inactive.
func JournalActive(img *engine.CrashImage) bool {
	rec, ok := loadJournal(img)
	return ok && rec.Active
}

// Interrupt models a power failure during recovery: the After-th
// persisted write of one Apply pass is struck — torn at 8-byte word
// granularity under a fault model, dropped whole without one — and the
// pass stops, exactly as if power died mid-write. The reboot-loop
// torture drives ApplyInterrupted with increasing pass numbers until
// recovery converges.
type Interrupt struct {
	// After is the 1-based index of the persisted recovery write to
	// strike; 0 disables the strike (the pass runs to completion but
	// still counts its writes).
	After int

	// Faults, when non-nil, decides the struck write's tear mask the
	// same way the device decides a WPQ entry's fate; nil drops the
	// write whole.
	Faults *nvm.FaultModel

	// Seq disambiguates tear decisions across recovery passes: the same
	// write struck on a different reboot tears differently, as wear and
	// timing would make it.
	Seq uint64

	// Outputs: how many persisted writes the pass issued (including the
	// struck one) and how many line writes its plan held.
	Writes int
	Plan   int
}

// journalWriter issues Apply's persisted writes, counting them and
// striking the one the interrupt names. Line writes and journal-record
// updates each count as one write: both are one-line-or-less NVM
// updates on real hardware (the 192-byte record tears per 64-byte
// line, like a multi-line WPQ burst).
type journalWriter struct {
	img *engine.CrashImage
	itr *Interrupt
	n   int
}

// strike advances the write counter and reports whether this write is
// the one the interrupt kills.
func (w *journalWriter) strike() bool {
	w.n++
	if w.itr == nil {
		return false
	}
	w.itr.Writes = w.n
	return w.itr.After > 0 && w.n == w.itr.After
}

// writeLine persists one in-place line write; false means the interrupt
// fired and the pass must stop.
func (w *journalWriter) writeLine(a mem.Addr, l mem.Line) bool {
	if w.strike() {
		w.tearLine(a, l)
		return false
	}
	w.img.Image.Write(a, l)
	return true
}

// tearLine applies the struck write's surviving words. A whole drop
// leaves the line untouched (a stuck line stays stuck: no cells were
// rewritten); a partial tear mixes old and new words and, like any
// write, remaps a stuck line.
func (w *journalWriter) tearLine(a mem.Addr, l mem.Line) {
	var mask byte
	if w.itr.Faults != nil {
		mask = w.itr.Faults.TearMask(a, w.itr.Seq)
	}
	if mask == 0 {
		return
	}
	old, _ := w.img.Image.Store.Read(a)
	w.img.Image.Write(a, nvm.MixWords(old, l, mask))
}

// writeSlot persists one journal-record update into slot Seq%2; false
// means the interrupt fired.
func (w *journalWriter) writeSlot(rec journalRecord) bool {
	buf := encodeSlot(rec)
	off := int(rec.Seq%2) * journalSlotLen
	if w.strike() {
		w.tearSlot(off, buf)
		return false
	}
	copy(w.img.RecoveryJournal[off:], buf[:])
	return true
}

// tearSlot tears a struck record update per 64-byte chunk, each chunk
// deciding its fate at a pseudo-address past the end of the layout (the
// journal's reserved lines live outside the data/metadata regions).
func (w *journalWriter) tearSlot(off int, buf [journalSlotLen]byte) {
	if w.itr.Faults == nil {
		return // dropped whole
	}
	base := mem.Addr(w.img.Image.Layout.TotalBytes())
	for c := 0; c < journalSlotLen; c += mem.LineSize {
		var old, new mem.Line
		copy(old[:], w.img.RecoveryJournal[off+c:])
		copy(new[:], buf[c:])
		mask := w.itr.Faults.TearMask(base+mem.Addr(off+c), w.itr.Seq)
		mixed := nvm.MixWords(old, new, mask)
		copy(w.img.RecoveryJournal[off+c:], mixed[:])
	}
}
