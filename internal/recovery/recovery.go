// Package recovery implements post-crash recovery and attack location
// for secure-NVM crash images (paper §4.4). Given the persistent state
// a design left behind — the NVM image and the TCB registers — it
// executes the four-step process:
//
//  1. Verify the in-NVM Merkle tree against ROOTold/ROOTnew and locate
//     replay attacks as parent/child mismatches.
//  2. Recover every stalled counter by retrying the data HMAC up to N
//     increments, locating spoofing/splicing attacks as blocks whose
//     HMAC never matches.
//  3. Compare the total retry count Nretry against the Nwb register to
//     detect the deferred-spreading replay window (detected, not
//     locatable).
//  4. Rebuild the Merkle tree from the recovered counters and install
//     the new root.
//
// The same machinery recovers the baselines with their respective
// validation rules: Osiris Plus and cc-NVM w/o DS compare the rebuilt
// root against ROOTnew (detect-only), SC expects zero retries, and a
// w/o-CC image is generally unrecoverable — which is the paper's
// motivation.
package recovery

import (
	"fmt"

	"ccnvm/internal/bmt"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// TamperedBlock is a data block whose HMAC could not be matched within
// the retry budget: a located spoofing or splicing attack (or, for
// designs without bounded counter staleness, an unrecoverable block).
type TamperedBlock struct {
	Addr          mem.Addr
	StoredCounter uint64 // counter value found in the NVM image
}

// String renders the finding.
func (b TamperedBlock) String() string {
	return fmt.Sprintf("tampered data block %#x (stored counter %d)", uint64(b.Addr), b.StoredCounter)
}

// Report is the outcome of recovery.
type Report struct {
	Design string

	// ConsistentRoot records which root register the NVM tree verified
	// against in step 1: "old", "new", or "" when the tree does not
	// verify (TreeMismatches then locates the damage). Designs that do
	// not persist the tree (Osiris) skip step 1 and leave it "".
	ConsistentRoot string

	// TreeMismatches are located replay attacks on counters or tree
	// nodes (step 1).
	TreeMismatches []bmt.Mismatch

	// Tampered are located spoofing/splicing attacks (step 2).
	Tampered []TamperedBlock

	// Nwb and Nretry feed step 3. PotentialReplay is the paper's
	// "detected but not locatable" verdict: Nretry != Nwb for cc-NVM, or
	// a rebuilt-root mismatch for the root-per-write-back designs.
	Nwb             uint64
	Nretry          uint64
	PotentialReplay bool

	// ReplayedPages lists the 4 KiB pages whose recorded per-line update
	// count disagrees with the recovered retries — the §4.4 extension's
	// page-granular location of data-replay attacks inside the
	// deferred-spreading window. Only the "ccnvm-ext" design produces
	// entries; plain cc-NVM can only set PotentialReplay.
	ReplayedPages []mem.Addr

	// RecoveredBlocks counts data blocks whose counters were advanced;
	// RecoveredLines counts distinct counter lines rewritten.
	RecoveredBlocks int
	RecoveredLines  int

	// RebuiltRoot is the step-4 root implied by the recovered counters.
	RebuiltRoot mem.Line
}

// Clean reports whether no attack was detected: the image decrypts,
// authenticates, and may resume service with the rebuilt tree.
func (r *Report) Clean() bool {
	return len(r.TreeMismatches) == 0 && len(r.Tampered) == 0 &&
		len(r.ReplayedPages) == 0 && !r.PotentialReplay
}

// Located reports whether every detected attack was pinned to specific
// blocks or nodes, so only those need discarding. This is cc-NVM's
// headline capability; a potential-replay verdict is detection without
// location.
func (r *Report) Located() bool {
	return !r.PotentialReplay &&
		(len(r.TreeMismatches) > 0 || len(r.Tampered) > 0 || len(r.ReplayedPages) > 0)
}

// DataDropped reports whether the whole NVM content must be discarded:
// an attack was detected but could not be located.
func (r *Report) DataDropped() bool { return r.PotentialReplay }

// Recovered is the post-recovery persistent state produced by Apply.
type Recovered struct {
	TCB engine.TCB
}

// Recover runs the four-step process on a crash image.
func Recover(img *engine.CrashImage) *Report {
	if img.Design == "arsenal" {
		return recoverArsenalImage(img)
	}
	r := &Report{Design: img.Design, Nwb: img.TCB.Nwb}
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)

	// Step 1: locate replay attacks via the consistent NVM tree. Osiris
	// does not persist its tree, so there is nothing to check.
	if img.Design != "osiris" {
		addrs := img.Image.Store.Addrs()
		if bad := tree.VerifyAll(img.Image.Store, img.TCB.RootOld, addrs); len(bad) == 0 {
			r.ConsistentRoot = "old"
		} else if bad2 := tree.VerifyAll(img.Image.Store, img.TCB.RootNew, addrs); len(bad2) == 0 {
			// Crash between the end signal and the ROOTold update: ADR
			// completed the drain, so the tree matches ROOTnew.
			r.ConsistentRoot = "new"
		} else {
			r.TreeMismatches = bad
		}
	}

	// Step 2: recover stalled counters via data HMAC retries.
	recoveredLines, nretry, blocks, tampered, perLine := recoverCounters(img, cry)
	r.Nretry = nretry
	r.RecoveredBlocks = blocks
	r.Tampered = tampered
	r.RecoveredLines = len(recoveredLines)

	// Step 3: detect the replay window. The check is conclusive only
	// when steps 1-2 located nothing: a located spoof/splice already
	// accounts for missing retries (its true retry count is unknowable).
	stepsClean := len(r.TreeMismatches) == 0 && len(r.Tampered) == 0
	switch img.Design {
	case "ccnvm":
		if r.Nretry != r.Nwb && stepsClean {
			r.PotentialReplay = true
		}
	case "ccnvm-ext":
		// The extension compares each recorded per-line update count
		// against the line's recovered retries: a disagreeing line pins
		// the replay to its page.
		if stepsClean {
			for ca, recorded := range img.TCB.ExtDirty {
				if perLine[ca] != recorded {
					page := lay.CounterLineIndex(ca) * mem.PageSize
					r.ReplayedPages = append(r.ReplayedPages, mem.Addr(page))
				}
			}
			for ca, got := range perLine {
				if got > 0 && img.TCB.ExtDirty[ca] == 0 {
					page := lay.CounterLineIndex(ca) * mem.PageSize
					r.ReplayedPages = append(r.ReplayedPages, mem.Addr(page))
				}
			}
			sortAddrs(r.ReplayedPages)
		}
	}

	// Step 4: rebuild the Merkle tree from the recovered counters.
	overlay := overlayReader{base: img.Image.Store, lines: encodeLines(recoveredLines)}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, recoveredLines)
	_, rebuilt := tree.Rebuild(overlay, counterAddrs)
	r.RebuiltRoot = rebuilt

	// Root-per-write-back designs validate the rebuilt root against
	// ROOTnew: a mismatch proves an attack that cannot be located.
	switch img.Design {
	case "osiris", "ccnvm-wods", "sc":
		if rebuilt != img.TCB.RootNew && len(r.TreeMismatches) == 0 && len(r.Tampered) == 0 {
			r.PotentialReplay = true
		}
	}
	return r
}

// Apply writes the recovered counters and the rebuilt tree into the
// image and returns the TCB state a rebooted controller starts from.
// Call it only when the report is Clean (or after discarding located
// tampered blocks).
func Apply(img *engine.CrashImage, _ *Report) Recovered {
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)

	// Re-run counter recovery to obtain the lines (Recover is pure).
	recovered, _, _, _, _ := recoverCounters(img, cry)
	for ca, cl := range recovered {
		img.Image.Write(ca, cl.Encode())
	}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, recovered)
	nodes, root := tree.Rebuild(img.Image.Store, counterAddrs)
	for a, n := range nodes {
		img.Image.Write(a, n)
	}
	return Recovered{TCB: engine.TCB{RootNew: root, RootOld: root, Nwb: 0}}
}

// recoverCounters walks every data block in the image, recovering its
// counter by HMAC retries bounded by the design's update limit. It
// returns the advanced counter lines, the total retries (Nretry), the
// number of recovered blocks, the blocks whose HMAC never matched, and
// the per-counter-line retry totals the §4.4 extension compares against
// its persistent registers.
func recoverCounters(img *engine.CrashImage, cry *seccrypto.Engine) (map[mem.Addr]seccrypto.CounterLine, uint64, int, []TamperedBlock, map[mem.Addr]uint64) {
	lay := img.Image.Layout
	lines := map[mem.Addr]seccrypto.CounterLine{}
	perLine := map[mem.Addr]uint64{}
	var nretry uint64
	blocks := 0
	var tampered []TamperedBlock
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) != mem.RegionData {
			continue
		}
		ct, _ := img.Image.Read(a)
		stored := storedHMAC(img, cry, a)
		ca := lay.CounterLineOf(a)
		cl, ok := lines[ca]
		if !ok {
			raw, _ := img.Image.Read(ca)
			cl = seccrypto.DecodeCounterLine(raw)
		}
		slot := lay.CounterSlotOf(a)
		base := cl.Counter(slot)
		found := false
		for retry := uint64(0); retry <= img.UpdateLimit; retry++ {
			if cry.DataHMAC(a, base+retry, ct) != stored {
				continue
			}
			if retry > 0 {
				if uint64(cl.Minors[slot])+retry > seccrypto.MinorMax {
					// A legitimate lag never crosses a minor overflow
					// (overflows persist immediately): treat as tampered.
					break
				}
				nretry += retry
				perLine[ca] += retry
				blocks++
				cl.Minors[slot] += uint8(retry)
				lines[ca] = cl
			}
			found = true
			break
		}
		if !found {
			tampered = append(tampered, TamperedBlock{Addr: a, StoredCounter: base})
		}
	}
	return lines, nretry, blocks, tampered, perLine
}

// storedHMAC extracts the stored data HMAC of block a, synthesizing the
// never-written default when the HMAC line is absent.
func storedHMAC(img *engine.CrashImage, cry *seccrypto.Engine, a mem.Addr) seccrypto.HMAC {
	lay := img.Image.Layout
	ha, hslot := lay.HMACLineOf(a)
	hl, ok := img.Image.Read(ha)
	if !ok {
		lineIdx := uint64(ha-lay.HMACBase) / mem.LineSize
		for s := 0; s < mem.HMACsPerLine; s++ {
			da := mem.Addr((lineIdx*mem.HMACsPerLine + uint64(s)) * mem.LineSize)
			seccrypto.PutHMAC(&hl, s, cry.DataHMAC(da, 0, mem.Line{}))
		}
	}
	return seccrypto.GetHMAC(hl, hslot)
}

// collectCounterAddrs lists every counter line that exists in the store
// or was recovered; Rebuild needs the complete set.
func collectCounterAddrs(lay *mem.Layout, st *mem.Store, recovered map[mem.Addr]seccrypto.CounterLine) []mem.Addr {
	seen := map[mem.Addr]bool{}
	var out []mem.Addr
	for _, a := range st.Addrs() {
		if lay.RegionOf(a) == mem.RegionCounter {
			seen[a] = true
			out = append(out, a)
		}
	}
	for ca := range recovered {
		if !seen[ca] {
			out = append(out, ca)
		}
	}
	return out
}

func sortAddrs(a []mem.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

type overlayReader struct {
	base  *mem.Store
	lines map[mem.Addr]mem.Line
}

func (o overlayReader) Read(a mem.Addr) (mem.Line, bool) {
	if l, ok := o.lines[mem.Align(a)]; ok {
		return l, true
	}
	return o.base.Read(a)
}

func encodeLines(m map[mem.Addr]seccrypto.CounterLine) map[mem.Addr]mem.Line {
	out := make(map[mem.Addr]mem.Line, len(m))
	for a, cl := range m {
		out[a] = cl.Encode()
	}
	return out
}

var _ bmt.Reader = overlayReader{}

// recoverArsenalImage handles the compression-based baseline: counters
// and HMACs live inline in packed lines (raw-fallback blocks use the
// conventional regions, written synchronously), so recovery needs no
// retries at all. Spoofing/splicing breaks the inline HMAC and is
// located; a whole-line replay is internally consistent, so it is
// detected only by rebuilding the tree from the recovered counters and
// comparing against ROOTnew — like Osiris, detect-only.
func recoverArsenalImage(img *engine.CrashImage) *Report {
	r := &Report{Design: img.Design}
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)

	lines := map[mem.Addr]seccrypto.CounterLine{}
	lineOf := func(ca mem.Addr) seccrypto.CounterLine {
		if cl, ok := lines[ca]; ok {
			return cl
		}
		raw, _ := img.Image.Read(ca)
		return seccrypto.DecodeCounterLine(raw)
	}
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) != mem.RegionData {
			continue
		}
		ca := lay.CounterLineOf(a)
		slot := lay.CounterSlotOf(a)
		line, _ := img.Image.Read(a)
		if img.Sideband[a] == 1 { // engine.TagPacked
			_, ctr, ok := engine.UnpackArsenalLine(cry, a, line)
			if !ok {
				r.Tampered = append(r.Tampered, TamperedBlock{Addr: a})
				continue
			}
			cl := lineOf(ca)
			cl.Major = ctr >> seccrypto.MinorBits
			cl.Minors[slot] = uint8(ctr & seccrypto.MinorMax)
			lines[ca] = cl
			r.RecoveredBlocks++
		} else {
			cl := lineOf(ca)
			base := cl.Counter(slot)
			stored := storedHMAC(img, cry, a)
			if cry.DataHMAC(a, base, line) != stored {
				r.Tampered = append(r.Tampered, TamperedBlock{Addr: a, StoredCounter: base})
			}
		}
	}
	r.RecoveredLines = len(lines)

	overlay := overlayReader{base: img.Image.Store, lines: encodeLines(lines)}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, lines)
	_, rebuilt := tree.Rebuild(overlay, counterAddrs)
	r.RebuiltRoot = rebuilt
	if rebuilt != img.TCB.RootNew && len(r.Tampered) == 0 {
		r.PotentialReplay = true
	}
	return r
}
