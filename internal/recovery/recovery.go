// Package recovery implements post-crash recovery and attack location
// for secure-NVM crash images (paper §4.4). Given the persistent state
// a design left behind — the NVM image and the TCB registers — it
// executes the four-step process:
//
//  1. Verify the in-NVM Merkle tree against ROOTold/ROOTnew and locate
//     replay attacks as parent/child mismatches.
//  2. Recover every stalled counter by retrying the data HMAC up to N
//     increments, locating spoofing/splicing attacks as blocks whose
//     HMAC never matches.
//  3. Compare the total retry count Nretry against the Nwb register to
//     detect the deferred-spreading replay window (detected, not
//     locatable).
//  4. Rebuild the Merkle tree from the recovered counters and install
//     the new root.
//
// The same machinery recovers the baselines with their respective
// validation rules: Osiris Plus and cc-NVM w/o DS compare the rebuilt
// root against ROOTnew (detect-only), SC expects zero retries, and a
// w/o-CC image is generally unrecoverable — which is the paper's
// motivation.
package recovery

import (
	"fmt"
	"slices"

	"ccnvm/internal/bmt"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// TamperedBlock is a data block whose HMAC could not be matched within
// the retry budget: a located spoofing or splicing attack (or, for
// designs without bounded counter staleness, an unrecoverable block).
type TamperedBlock struct {
	Addr          mem.Addr
	StoredCounter uint64 // counter value found in the NVM image
}

// String renders the finding.
func (b TamperedBlock) String() string {
	return fmt.Sprintf("tampered data block %#x (stored counter %d)", uint64(b.Addr), b.StoredCounter)
}

// LostBlock is a data block recovery could not restore but attributes
// to crash-time media damage rather than tampering: the authentication
// failure is covered by the suspects manifest (a line the WPQ had
// accepted but possibly not serviced whole) or by a stuck line the
// device reports unreadable. Lost blocks are crash loss — detected,
// enumerated, and distinguishable from an attack.
type LostBlock struct {
	Addr  mem.Addr // the data block that could not be recovered
	Line  mem.Addr // the damaged line implicated (data, counter or HMAC line)
	Cause string   // "torn-data", "torn-counter", "torn-hmac", "stuck-data", "stuck-counter", "stuck-hmac"
}

// String renders the finding.
func (b LostBlock) String() string {
	return fmt.Sprintf("lost data block %#x (%s at %#x)", uint64(b.Addr), b.Cause, uint64(b.Line))
}

// Report is the outcome of recovery.
type Report struct {
	Design string

	// ConsistentRoot records which root register the NVM tree verified
	// against in step 1: "old", "new", or "" when the tree does not
	// verify (TreeMismatches then locates the damage). Designs that do
	// not persist the tree (Osiris) skip step 1 and leave it "".
	ConsistentRoot string

	// TreeMismatches are located replay attacks on counters or tree
	// nodes (step 1).
	TreeMismatches []bmt.Mismatch

	// Tampered are located spoofing/splicing attacks (step 2).
	Tampered []TamperedBlock

	// Nwb and Nretry feed step 3. PotentialReplay is the paper's
	// "detected but not locatable" verdict: Nretry != Nwb for cc-NVM, or
	// a rebuilt-root mismatch for the root-per-write-back designs.
	Nwb             uint64
	Nretry          uint64
	PotentialReplay bool

	// ReplayedPages lists the 4 KiB pages whose recorded per-line update
	// count disagrees with the recovered retries — the §4.4 extension's
	// page-granular location of data-replay attacks inside the
	// deferred-spreading window. Only designs with per-line replay
	// registers (cc-NVM+Ext) produce entries; plain cc-NVM can only set
	// PotentialReplay.
	ReplayedPages []mem.Addr

	// RecoveredBlocks counts data blocks whose counters were advanced;
	// RecoveredLines counts distinct counter lines rewritten.
	RecoveredBlocks int
	RecoveredLines  int

	// RebuiltRoot is the step-4 root implied by the recovered counters.
	RebuiltRoot mem.Line

	// LostBlocks are data blocks recovery could not restore but whose
	// authentication failure is media-attributable (see LostBlock): crash
	// loss, not tampering. Only produced when the image was taken under a
	// fault model.
	LostBlocks []LostBlock

	// MediaErrors lists lines the device reports permanently unreadable
	// (stuck-at after exhausting read retries). Recovery learns them from
	// the device, as real hardware would from uncorrectable-ECC machine
	// checks.
	MediaErrors []mem.Addr

	// HealedLines are suspect lines recovery verified or repaired — lines
	// the crash may have damaged but that were not implicated in any
	// loss: either the ADR flush completed them, or HMAC-replay / tree
	// rebuild restored their logical content.
	HealedLines []mem.Addr

	// CrashLossWindow reports that some acknowledged writes may have been
	// lost to media damage at crash. It is set pessimistically whenever
	// the suspects manifest is non-empty — an entry the ADR failed to
	// service whole may have dropped a write without leaving mismatching
	// bytes (a fully-masked tear keeps the previous self-consistent
	// content), so no amount of verification can prove the loss away —
	// and the enumerated LostBlocks refine it where damage is provable.
	// It is the media-fault analogue of PotentialReplay: detected, not
	// locatable beyond the suspect set — but attributable to the crash,
	// not to an attacker.
	CrashLossWindow bool

	// Resumed reports that the image carried an active recovery journal:
	// a previous Apply pass was interrupted mid-write, and this recovery
	// resumed it — verdicts restored from the journal, the pending write
	// read from its journaled copy — instead of restarting blind.
	Resumed bool

	// Spare-pool fields, populated only for images taken with a finite
	// spare pool (the device's remap table rode the image). The table is
	// validated and replayed before the four-step walk: SparesTotal and
	// SparesUsed come from the ruling record, and RemapTableTorn reports
	// that a remap commit was caught in flight — its slot failed the
	// checksum, the previous record ruled, and the interrupted remap
	// rolled back (the affected line simply re-presents as stuck or
	// weak; never as tampering).
	SparesTotal    int
	SparesUsed     int
	RemapTableTorn bool

	// res caches the step-2 counter walk so Apply reuses it instead of
	// walking the image a second time.
	res *counterResult
}

// Clean reports whether no attack was detected: the image decrypts,
// authenticates, and may resume service with the rebuilt tree.
func (r *Report) Clean() bool {
	return len(r.TreeMismatches) == 0 && len(r.Tampered) == 0 &&
		len(r.ReplayedPages) == 0 && !r.PotentialReplay
}

// Located reports whether every detected attack was pinned to specific
// blocks or nodes, so only those need discarding. This is cc-NVM's
// headline capability; a potential-replay verdict is detection without
// location.
func (r *Report) Located() bool {
	return !r.PotentialReplay &&
		(len(r.TreeMismatches) > 0 || len(r.Tampered) > 0 || len(r.ReplayedPages) > 0)
}

// DataDropped reports whether the whole NVM content must be discarded:
// an attack was detected but could not be located.
func (r *Report) DataDropped() bool { return r.PotentialReplay }

// Lossless reports whether recovery restored every acknowledged write:
// no attack detected, no blocks lost to media damage, no unreadable
// lines, and no crash-loss window. When false with Clean() true, the
// image is attack-free but some writes were lost to the crash — the
// report enumerates or bounds them.
func (r *Report) Lossless() bool {
	return r.Clean() && len(r.LostBlocks) == 0 && len(r.MediaErrors) == 0 && !r.CrashLossWindow
}

// Recovered is the post-recovery persistent state produced by Apply.
type Recovered struct {
	TCB engine.TCB
}

// Recover dispatches a crash image to the recovery procedure its
// design's registry descriptor declares. Images of unregistered designs
// get the conservative generic procedure (design.ForImage). An image
// whose recovery journal is active — power failed during a previous
// Apply — resumes that pass instead of recovering from scratch.
func Recover(img *engine.CrashImage) *Report {
	spares, hasSpares := replayRemapTable(img)
	var r *Report
	if rec, ok := loadJournal(img); ok && rec.Active {
		r = resumeRecover(img, rec)
	} else {
		d := design.ForImage(img.Design)
		if d.Strategy == design.RecoverInlinePacked {
			r = recoverInlinePackedImage(img)
		} else {
			r = recoverGenericImage(img, d)
		}
	}
	if hasSpares {
		r.SparesTotal = spares.rec.Total
		r.SparesUsed = len(spares.rec.Entries)
		r.RemapTableTorn = spares.torn
	}
	return r
}

// spareReplay is the outcome of the pre-walk remap-table validation.
type spareReplay struct {
	rec  nvm.RemapRecord
	torn bool
}

// replayRemapTable validates the finite spare pool's remap table before
// the four-step walk, mirroring the two-slot journal rules: both slots
// are decoded, the newest intact record wins, and a torn slot — a remap
// commit caught in flight — is repaired from the winner, making the
// rollback durable. The mappings a rolled-back commit loses need no
// further replay: the affected lines re-present as stuck or weak and
// are remapped again in service, which is why a lost mapping is never
// misread as tampering. Images without a table (the unlimited legacy
// pool) return ok=false and are untouched.
func replayRemapTable(img *engine.CrashImage) (spareReplay, bool) {
	if img == nil || img.Image == nil || len(img.Image.RemapTable) == 0 {
		return spareReplay{}, false
	}
	rec, ok, torn := nvm.RepairRemapTable(img.Image.RemapTable)
	if !ok {
		// No intact record at all: treat the table as unformatted. The
		// pool restarts empty; runtime remaps re-commit as lines fail.
		return spareReplay{torn: torn}, true
	}
	return spareReplay{rec: rec, torn: torn}, true
}

// resumeRecover rebuilds a Report for an image whose recovery was
// interrupted mid-Apply. Steps 1 and 3 are not re-run: their verdicts
// were established on the pre-Apply image and persisted in the journal
// header — re-deriving them from half-applied state would be wrong (a
// partially rebuilt tree matches neither root). The step-2 walk is
// recomputed with the journaled pending write overlaid, so the counter
// lines Apply already persisted verify at retry zero and the pass's
// remaining write plan falls out of the walk; the media sections are
// recomputed because Apply's completed writes legitimately heal stuck
// metadata lines.
func resumeRecover(img *engine.CrashImage, rec journalRecord) *Report {
	r := &Report{Design: img.Design, Resumed: true}
	cry := seccrypto.MustEngine(img.Keys)
	var pend *pendingWrite
	if rec.PendingValid {
		pend = &pendingWrite{addr: rec.PendingAddr, line: rec.PendingLine}
	}
	d := design.ForImage(img.Design)
	var res counterResult
	if d.Strategy == design.RecoverInlinePacked {
		res = recoverInlineCounters(img, cry, pend)
	} else {
		res = recoverCounters(img, cry, pend)
	}
	r.res = &res

	r.ConsistentRoot = rec.ConsistentRoot
	r.Nwb = rec.Nwb
	r.Nretry = rec.Nretry
	r.RecoveredBlocks = rec.Blocks
	r.RecoveredLines = rec.Lines
	r.PotentialReplay = rec.PotentialReplay
	r.CrashLossWindow = rec.CrashLossWindow
	r.RebuiltRoot = rec.Root

	// Apply is only legal on a clean (or scrubbed) report, so a resumed
	// walk finds no tampering; keep the recomputed classification anyway
	// rather than asserting it away.
	r.Tampered = res.tampered
	r.LostBlocks = res.lost
	finishMediaReport(r, img, suspectSet(img), res.implicated)
	return r
}

// recoverGenericImage runs the four-step counter-retry process, with
// steps 1 and 3 shaped by the design's declared capabilities.
func recoverGenericImage(img *engine.CrashImage, d design.Descriptor) *Report {
	r := &Report{Design: img.Design, Nwb: img.TCB.Nwb}
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)
	sus := suspectSet(img)

	// Step 1: locate replay attacks via the consistent NVM tree. Designs
	// that do not persist their tree (Osiris) have nothing to check.
	// Under a fault model, mismatches covered by the suspects manifest
	// (the torn line itself, or a child whose torn parent stores a stale
	// link) are crash damage: the step-4 rebuild heals them, and only the
	// unexplained remainder is reported as an attack.
	if d.Caps.TreePersisted {
		addrs := img.Image.Store.Addrs()
		rd := imageReader{img.Image}
		if bad := tree.VerifyAllParallel(rd, img.TCB.RootOld, addrs, img.Workers); len(bad) == 0 {
			r.ConsistentRoot = "old"
		} else if bad2 := tree.VerifyAllParallel(rd, img.TCB.RootNew, addrs, img.Workers); len(bad2) == 0 {
			// Crash between the end signal and the ROOTold update: ADR
			// completed the drain, so the tree matches ROOTnew.
			r.ConsistentRoot = "new"
		} else if img.MediaFaults {
			atkOld := attackMismatches(lay, bad, sus)
			atkNew := attackMismatches(lay, bad2, sus)
			// The root whose unexplained mismatches are fewest is the one
			// the crash left authoritative.
			if len(atkNew) < len(atkOld) {
				r.TreeMismatches = atkNew
			} else {
				r.TreeMismatches = atkOld
			}
		} else {
			r.TreeMismatches = bad
		}
	}

	// Step 2: recover stalled counters via data HMAC retries.
	res := recoverCounters(img, cry, nil)
	r.res = &res
	r.Nretry = res.nretry
	r.RecoveredBlocks = res.blocks
	r.Tampered = res.tampered
	r.RecoveredLines = len(res.lines)
	r.LostBlocks = res.lost

	// faultEscape: media damage could explain a consistency anomaly that
	// would otherwise read as an attack. Requires evidence — suspects,
	// stuck lines, or enumerated losses — not merely an enabled model.
	faultEscape := img.MediaFaults && (len(sus) > 0 || len(res.lost) > 0)
	pagesSus := suspectCounterLines(lay, sus)

	// A non-empty manifest means the ADR flush stopped short: some entry
	// may have dropped whole, leaving stale self-consistent bytes no
	// check can flag. Report the loss window pessimistically.
	if img.MediaFaults && len(img.Suspects) > 0 {
		r.CrashLossWindow = true
	}

	// Step 3: detect the replay window. The check is conclusive only
	// when steps 1-2 located nothing: a located spoof/splice already
	// accounts for missing retries (its true retry count is unknowable).
	stepsClean := len(r.TreeMismatches) == 0 && len(r.Tampered) == 0
	switch d.Caps.Replay {
	case design.ReplayNwbWindow:
		if r.Nretry != r.Nwb && stepsClean {
			switch {
			case !faultEscape:
				r.PotentialReplay = true
			case r.Nretry < r.Nwb:
				// Fewer retries than acknowledged write-backs: some writes
				// never reached the media (dropped or torn by the partial
				// ADR drain). Crash loss, not replay.
				r.CrashLossWindow = true
			case r.Nretry-r.Nwb <= suspectRetries(res.perLine, pagesSus):
				// More retries than Nwb accounts for, but the excess is
				// fully explained by retries on media-damaged counter
				// lines (e.g. a committed epoch's counter drain torn after
				// Nwb was reset). Everything re-authenticated: healed.
			default:
				r.PotentialReplay = true
			}
		}
	case design.ReplayPerLinePage:
		// The extension compares each recorded per-line update count
		// against the line's recovered retries: a disagreeing line pins
		// the replay to its page — unless the page's lines are in the
		// suspect set, in which case the disagreement is crash loss.
		if stepsClean {
			for ca, recorded := range img.TCB.ExtDirty {
				if res.perLine[ca] == recorded {
					continue
				}
				if faultEscape && pagesSus[ca] {
					r.CrashLossWindow = true
					continue
				}
				page := lay.CounterLineIndex(ca) * mem.PageSize
				r.ReplayedPages = append(r.ReplayedPages, mem.Addr(page))
			}
			for ca, got := range res.perLine {
				if got > 0 && img.TCB.ExtDirty[ca] == 0 {
					if faultEscape && pagesSus[ca] {
						r.CrashLossWindow = true
						continue
					}
					page := lay.CounterLineIndex(ca) * mem.PageSize
					r.ReplayedPages = append(r.ReplayedPages, mem.Addr(page))
				}
			}
			slices.Sort(r.ReplayedPages)
		}
	}

	// Step 4: rebuild the Merkle tree from the recovered counters.
	overlay := overlayReader{base: imageReader{img.Image}, lines: encodeLines(res.lines)}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, res.lines)
	_, rebuilt := tree.RebuildParallel(overlay, counterAddrs, img.Workers)
	r.RebuiltRoot = rebuilt

	// Root-compare designs validate the rebuilt root against ROOTnew: a
	// mismatch proves an attack that cannot be located — or, with
	// media-damage evidence, acknowledged writes lost to the crash (these
	// designs cannot tell the two apart; that inability is the paper's
	// argument for cc-NVM's located mechanisms).
	if d.Caps.Replay == design.ReplayRootCompare {
		if rebuilt != img.TCB.RootNew && stepsClean {
			if faultEscape {
				r.CrashLossWindow = true
			} else {
				r.PotentialReplay = true
			}
		}
	}

	finishMediaReport(r, img, sus, res.implicated)
	return r
}

// finishMediaReport fills the media sections of the report: the stuck
// lines the device reports unreadable, and the suspect lines that were
// not implicated in any loss — healed (flushed whole, re-authenticated
// by HMAC replay, or rebuilt with the tree).
func finishMediaReport(r *Report, img *engine.CrashImage, sus, implicated map[mem.Addr]bool) {
	if !img.MediaFaults {
		return
	}
	for a := range img.Image.Stuck {
		r.MediaErrors = append(r.MediaErrors, a)
	}
	slices.Sort(r.MediaErrors)
	for _, s := range img.Suspects {
		if !implicated[s] && !img.Image.Stuck[s] {
			r.HealedLines = append(r.HealedLines, s)
		}
	}
	slices.Sort(r.HealedLines)
}

// suspectSet is the union of the controller's WPQ manifest and the
// device's stuck lines: every line whose content recovery may not trust
// to be whole. Nil when the image was taken without a fault model, which
// keeps the faultless paths bit-identical.
func suspectSet(img *engine.CrashImage) map[mem.Addr]bool {
	if !img.MediaFaults {
		return nil
	}
	m := make(map[mem.Addr]bool, len(img.Suspects)+len(img.Image.Stuck))
	for _, a := range img.Suspects {
		m[a] = true
	}
	for a := range img.Image.Stuck {
		m[a] = true
	}
	return m
}

// attackMismatches filters a step-1 mismatch list down to the entries
// that media damage cannot explain. A mismatch is media-attributable
// when the reported child is itself suspect (its content may be torn) or
// its parent is (the stored link may be torn) — VerifyAll reports a torn
// parent both at itself and at each child its stale links disown.
func attackMismatches(lay *mem.Layout, ms []bmt.Mismatch, sus map[mem.Addr]bool) []bmt.Mismatch {
	var attack []bmt.Mismatch
	for _, m := range ms {
		if sus[m.Addr] {
			continue
		}
		if m.Level < lay.TopLevel() {
			pl, pi, _ := lay.ParentOf(m.Level, m.Index)
			if sus[lay.NodeAddr(pl, pi)] {
				continue
			}
		}
		attack = append(attack, m)
	}
	return attack
}

// suspectCounterLines maps the suspect set onto the counter lines whose
// pages it can affect: a suspect data line implicates its page's counter
// line, a suspect HMAC line the counter line of the blocks it covers,
// and a suspect counter line itself. Tree nodes carry no per-page state.
func suspectCounterLines(lay *mem.Layout, sus map[mem.Addr]bool) map[mem.Addr]bool {
	if len(sus) == 0 {
		return nil
	}
	m := make(map[mem.Addr]bool, len(sus))
	for s := range sus {
		switch lay.RegionOf(s) {
		case mem.RegionData:
			m[lay.CounterLineOf(s)] = true
		case mem.RegionCounter:
			m[s] = true
		case mem.RegionHMAC:
			lineIdx := uint64(s-lay.HMACBase) / mem.LineSize
			da := mem.Addr(lineIdx * mem.HMACsPerLine * mem.LineSize)
			m[lay.CounterLineOf(da)] = true
		}
	}
	return m
}

// suspectRetries totals the recovered retries that landed on counter
// lines media damage can explain.
func suspectRetries(perLine map[mem.Addr]uint64, pagesSus map[mem.Addr]bool) uint64 {
	var n uint64
	for ca, r := range perLine {
		if pagesSus[ca] {
			n += r
		}
	}
	return n
}

// Apply writes the recovered counters and the rebuilt tree into the
// image and returns the TCB state a rebooted controller starts from.
// Call it only when the report is Clean (or after discarding located
// tampered blocks). The report must come from Recover on this image —
// Apply reuses its counter walk instead of walking the image again; a
// nil report makes Apply run Recover itself.
func Apply(img *engine.CrashImage, rep *Report) Recovered {
	rec, _ := ApplyInterrupted(img, rep, nil)
	return rec
}

// pendingWrite is a journaled counter-line write whose in-place persist
// may not have completed; the journal record holds the authoritative
// content.
type pendingWrite struct {
	addr mem.Addr
	line mem.Line
}

// readLine reads a line through the resume overlay: the journaled
// pending write shadows its possibly-torn in-place copy.
func readLine(img *engine.CrashImage, pend *pendingWrite, a mem.Addr) (mem.Line, bool) {
	if pend != nil && pend.addr == a {
		return pend.line, true
	}
	return img.Image.Read(a)
}

// planned is one line write of an Apply pass. Counter lines are
// journaled (a jPend record precedes the in-place write) because their
// content is the product of the retry walk and would be unrecoverable
// from a torn line; tree nodes and reverts are written bare — they are
// recomputed from the counters on every pass.
type planned struct {
	addr mem.Addr
	line mem.Line
	jrnl bool
}

// ApplyInterrupted is Apply with a power-failure seam: every persisted
// write — in-place lines and journal records alike — goes through a
// counting writer, and the write itr.After names is struck (torn under
// itr.Faults, dropped whole without) exactly as the device would strike
// a WPQ entry. It returns done=false when the interrupt fired; the
// caller re-enters recovery, which resumes from the journal. A nil itr
// (or itr.After 0) runs the pass to completion.
//
// The pass is idempotent and convergent: the write plan is filtered to
// lines whose current content differs from the target, so every
// completed write shrinks the next pass's plan, and the journaled
// pending write is re-issued without a fresh journal record when it
// matches the journal's current pending entry — rewriting it would
// re-arm the same strike point each reboot and livelock at stride two.
func ApplyInterrupted(img *engine.CrashImage, rep *Report, itr *Interrupt) (Recovered, bool) {
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)

	loaded, haveJournal := loadJournal(img)
	active := haveJournal && loaded.Active
	var pend *pendingWrite
	if active && loaded.PendingValid {
		pend = &pendingWrite{addr: loaded.PendingAddr, line: loaded.PendingLine}
	}

	if rep == nil {
		rep = Recover(img)
	}
	res := rep.res
	if res == nil {
		var walk counterResult
		if design.ForImage(img.Design).Strategy == design.RecoverInlinePacked {
			walk = recoverInlineCounters(img, cry, pend)
		} else {
			walk = recoverCounters(img, cry, pend)
		}
		res = &walk
	}

	// Rebuild from the recovered counters plus the journaled pending
	// line: its in-place copy may be torn, the journal copy is whole.
	overlay := encodeLines(res.lines)
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, res.lines)
	if pend != nil {
		if _, dup := overlay[pend.addr]; !dup {
			overlay[pend.addr] = pend.line
			found := false
			for _, ca := range counterAddrs {
				if ca == pend.addr {
					found = true
					break
				}
			}
			if !found {
				counterAddrs = append(counterAddrs, pend.addr)
			}
		}
	}
	nodes, root := tree.RebuildParallel(overlayReader{base: imageReader{img.Image}, lines: overlay}, counterAddrs, img.Workers)

	// The write plan, in deterministic order (striking the k-th write
	// must replay identically): the pending counter line first so an
	// interrupted write completes before new ground is journaled, the
	// remaining counter lines, the rebuilt tree nodes, then stored tree
	// nodes the rebuild did not cover, reverted to the level default —
	// a stored node with no surviving counter line under it carries
	// stale links that would contradict the rebuilt root. Lines already
	// holding their target content are skipped (a stuck line reads as
	// absent, so it is always rewritten, healing it as any write does);
	// the skip keeps every pass's plan a subset of the previous one.
	var plan []planned
	add := func(a mem.Addr, l mem.Line, jrnl bool) {
		if cur, ok := img.Image.Read(a); ok && cur == l {
			return
		}
		plan = append(plan, planned{addr: a, line: l, jrnl: jrnl})
	}
	if pend != nil {
		if _, dup := res.lines[pend.addr]; !dup {
			add(pend.addr, pend.line, true)
		}
	}
	for _, ca := range sortedLineKeys(res.lines) {
		cl := res.lines[ca]
		add(ca, cl.Encode(), true)
	}
	for _, a := range sortedNodeKeys(nodes) {
		add(a, nodes[a], false)
	}
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) != mem.RegionTree {
			continue
		}
		if _, covered := nodes[a]; !covered {
			lv, _ := lay.NodeAt(a)
			add(a, tree.DefaultNode(lv), false)
		}
	}
	if itr != nil {
		itr.Plan = len(plan)
	}

	ensureJournal(img)
	w := journalWriter{img: img, itr: itr}
	seq := uint64(0)
	if haveJournal {
		seq = loaded.Seq
	}
	hdr := journalRecord{
		Active:          true,
		Root:            root,
		ConsistentRoot:  rep.ConsistentRoot,
		PotentialReplay: rep.PotentialReplay,
		CrashLossWindow: rep.CrashLossWindow,
		Nwb:             rep.Nwb,
		Nretry:          rep.Nretry,
		Blocks:          rep.RecoveredBlocks,
		Lines:           rep.RecoveredLines,
	}

	// jBegin — unless this pass resumes one whose journal already
	// carries the same header.
	if !(active && sameHeader(loaded, hdr)) {
		seq++
		rec := hdr
		rec.Seq = seq
		if !w.writeSlot(rec) {
			return Recovered{}, false
		}
	}

	pendUsed := false
	for _, it := range plan {
		if it.jrnl {
			if pend != nil && !pendUsed && it.addr == pend.addr && it.line == pend.line {
				// Already journaled; go straight to the in-place write.
				pendUsed = true
			} else {
				seq++
				rec := hdr
				rec.Seq = seq
				rec.PendingValid = true
				rec.PendingAddr = it.addr
				rec.PendingLine = it.line
				if !w.writeSlot(rec) {
					return Recovered{}, false
				}
			}
		}
		if !w.writeLine(it.addr, it.line) {
			return Recovered{}, false
		}
	}

	// jCommit: the commit is the TCB root-register update — atomic, as
	// the paper's ROOTold/ROOTnew drain protocol makes register updates —
	// and the journal's inactive record persists with it. It still counts
	// as a persisted write (an interrupt can strike the window between
	// the last line write and the commit), but a strike leaves the
	// journal active and the registers untouched: the next boot resumes
	// an empty plan and re-commits. A commit record can therefore never
	// tear into a valid-but-inactive state over stale registers.
	seq++
	rec := hdr
	rec.Seq = seq
	rec.Active = false
	if w.strike() {
		return Recovered{}, false
	}
	buf := encodeSlot(rec)
	copy(img.RecoveryJournal[int(rec.Seq%2)*journalSlotLen:], buf[:])
	img.TCB = engine.TCB{RootNew: root, RootOld: root, Nwb: 0}
	return Recovered{TCB: img.TCB}, true
}

// sortedLineKeys and sortedNodeKeys order map iteration: the plan (and
// therefore which write an interrupt strikes) must be deterministic.
func sortedLineKeys(m map[mem.Addr]seccrypto.CounterLine) []mem.Addr {
	out := make([]mem.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

func sortedNodeKeys(m map[mem.Addr]mem.Line) []mem.Addr {
	out := make([]mem.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// counterResult is the outcome of the step-2 counter recovery walk.
type counterResult struct {
	lines      map[mem.Addr]seccrypto.CounterLine // counter lines advanced by retries
	nretry     uint64                             // total retries (Nretry)
	blocks     int                                // data blocks whose counters advanced
	tampered   []TamperedBlock                    // HMAC never matched, not media-attributable
	lost       []LostBlock                        // HMAC never matched, media-attributable
	perLine    map[mem.Addr]uint64                // per-counter-line retry totals (§4.4 extension)
	implicated map[mem.Addr]bool                  // suspect/stuck lines tied to a loss
}

// recoverCounters walks every data block in the image, recovering its
// counter by HMAC retries bounded by the design's update limit. Under a
// fault model, blocks whose lines are stuck are lost outright, and
// blocks whose HMAC never matches are classified lost rather than
// tampered when the failure is covered by a suspect line — torn data,
// counter or HMAC content left by the partial ADR drain. pend, set when
// resuming an interrupted Apply, shadows the one counter line whose
// in-place write may be torn with its journaled copy.
func recoverCounters(img *engine.CrashImage, cry *seccrypto.Engine, pend *pendingWrite) counterResult {
	lay := img.Image.Layout
	res := counterResult{
		lines:      map[mem.Addr]seccrypto.CounterLine{},
		perLine:    map[mem.Addr]uint64{},
		implicated: map[mem.Addr]bool{},
	}
	sus := suspectSet(img)
	stuck := img.Image.Stuck
	for _, a := range dataWalkAddrs(img, sus) {
		ca := lay.CounterLineOf(a)
		ha, _ := lay.HMACLineOf(a)
		if img.MediaFaults {
			if cause, line := stuckCause(stuck, a, ca, ha); cause != "" {
				res.lost = append(res.lost, LostBlock{Addr: a, Line: line, Cause: cause})
				res.implicated[line] = true
				continue
			}
		}
		ct, _ := img.Image.Read(a)
		stored := storedHMAC(img, cry, a)
		cl, ok := res.lines[ca]
		if !ok {
			raw, _ := readLine(img, pend, ca)
			cl = seccrypto.DecodeCounterLine(raw)
		}
		slot := lay.CounterSlotOf(a)
		base := cl.Counter(slot)
		found := false
		for retry := uint64(0); retry <= img.UpdateLimit; retry++ {
			if cry.DataHMAC(a, base+retry, ct) != stored {
				continue
			}
			if retry > 0 {
				if uint64(cl.Minors[slot])+retry > seccrypto.MinorMax {
					// A legitimate lag never crosses a minor overflow
					// (overflows persist immediately): treat as tampered.
					break
				}
				res.nretry += retry
				res.perLine[ca] += retry
				res.blocks++
				cl.Minors[slot] += uint8(retry)
				res.lines[ca] = cl
			}
			found = true
			break
		}
		if found {
			continue
		}
		if img.MediaFaults && (sus[a] || sus[ca] || sus[ha]) {
			line, cause := ca, "torn-counter"
			if !sus[ca] {
				if sus[a] {
					line, cause = a, "torn-data"
				} else {
					line, cause = ha, "torn-hmac"
				}
			}
			res.lost = append(res.lost, LostBlock{Addr: a, Line: line, Cause: cause})
			for _, s := range []mem.Addr{a, ca, ha} {
				if sus[s] {
					res.implicated[s] = true
				}
			}
			continue
		}
		res.tampered = append(res.tampered, TamperedBlock{Addr: a, StoredCounter: base})
	}
	return res
}

// dataWalkAddrs lists the data blocks the counter-recovery walk must
// visit: every data line in the store plus, under a fault model, every
// suspect data line absent from it — a dropped first write leaves no
// stored line, but its block may still carry non-virgin counter or HMAC
// evidence that must be classified as loss, not skipped.
func dataWalkAddrs(img *engine.CrashImage, sus map[mem.Addr]bool) []mem.Addr {
	lay := img.Image.Layout
	var out []mem.Addr
	seen := map[mem.Addr]bool{}
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) == mem.RegionData {
			out = append(out, a)
			seen[a] = true
		}
	}
	if !img.MediaFaults {
		return out
	}
	extra := false
	for s := range sus {
		if lay.RegionOf(s) == mem.RegionData && !seen[s] {
			out = append(out, s)
			extra = true
		}
	}
	if extra {
		slices.Sort(out)
	}
	return out
}

// stuckCause classifies a data block covered by a stuck line, returning
// the cause label and the unreadable line, or "" when none of the
// block's lines is stuck.
func stuckCause(stuck map[mem.Addr]bool, a, ca, ha mem.Addr) (string, mem.Addr) {
	switch {
	case stuck[a]:
		return "stuck-data", a
	case stuck[ca]:
		return "stuck-counter", ca
	case stuck[ha]:
		return "stuck-hmac", ha
	}
	return "", 0
}

// storedHMAC extracts the stored data HMAC of block a, synthesizing the
// never-written default when the HMAC line is absent.
func storedHMAC(img *engine.CrashImage, cry *seccrypto.Engine, a mem.Addr) seccrypto.HMAC {
	lay := img.Image.Layout
	ha, hslot := lay.HMACLineOf(a)
	hl, ok := img.Image.Read(ha)
	if !ok {
		lineIdx := uint64(ha-lay.HMACBase) / mem.LineSize
		for s := 0; s < mem.HMACsPerLine; s++ {
			da := mem.Addr((lineIdx*mem.HMACsPerLine + uint64(s)) * mem.LineSize)
			seccrypto.PutHMAC(&hl, s, cry.DataHMAC(da, 0, mem.Line{}))
		}
	}
	return seccrypto.GetHMAC(hl, hslot)
}

// collectCounterAddrs lists every counter line that exists in the store
// or was recovered; Rebuild needs the complete set.
func collectCounterAddrs(lay *mem.Layout, st *mem.Store, recovered map[mem.Addr]seccrypto.CounterLine) []mem.Addr {
	seen := map[mem.Addr]bool{}
	var out []mem.Addr
	for _, a := range st.Addrs() {
		if lay.RegionOf(a) == mem.RegionCounter {
			seen[a] = true
			out = append(out, a)
		}
	}
	for ca := range recovered {
		if !seen[ca] {
			out = append(out, ca)
		}
	}
	return out
}

// imageReader adapts an nvm.Image to bmt.Reader: reads go through the
// image so stuck lines present as absent (default content) instead of
// leaking their unreadable stored bytes into verification or rebuild.
type imageReader struct {
	img *nvm.Image
}

func (r imageReader) Read(a mem.Addr) (mem.Line, bool) { return r.img.Read(a) }

var _ bmt.Reader = imageReader{}

type overlayReader struct {
	base  bmt.Reader
	lines map[mem.Addr]mem.Line
}

func (o overlayReader) Read(a mem.Addr) (mem.Line, bool) {
	if l, ok := o.lines[mem.Align(a)]; ok {
		return l, true
	}
	return o.base.Read(a)
}

func encodeLines(m map[mem.Addr]seccrypto.CounterLine) map[mem.Addr]mem.Line {
	out := make(map[mem.Addr]mem.Line, len(m))
	for a, cl := range m {
		out[a] = cl.Encode()
	}
	return out
}

var _ bmt.Reader = overlayReader{}

// recoverInlinePackedImage handles the compression-based baseline:
// counters and HMACs live inline in packed lines (raw-fallback blocks
// use the conventional regions, written synchronously), so recovery
// needs no retries at all. Spoofing/splicing breaks the inline HMAC and
// is located; a whole-line replay is internally consistent, so it is
// detected only by rebuilding the tree from the recovered counters and
// comparing against ROOTnew — like Osiris, detect-only.
func recoverInlinePackedImage(img *engine.CrashImage) *Report {
	r := &Report{Design: img.Design}
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)
	sus := suspectSet(img)

	res := recoverInlineCounters(img, cry, nil)
	r.res = &res
	r.Tampered = res.tampered
	r.LostBlocks = res.lost
	r.RecoveredBlocks = res.blocks
	r.RecoveredLines = len(res.lines)

	// Same pessimism as the generic path: an unserviced WPQ entry may
	// have dropped whole without leaving verifiable damage.
	if img.MediaFaults && len(img.Suspects) > 0 {
		r.CrashLossWindow = true
	}

	overlay := overlayReader{base: imageReader{img.Image}, lines: encodeLines(res.lines)}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, res.lines)
	_, rebuilt := tree.RebuildParallel(overlay, counterAddrs, img.Workers)
	r.RebuiltRoot = rebuilt
	if rebuilt != img.TCB.RootNew && len(r.Tampered) == 0 {
		if img.MediaFaults && (len(sus) > 0 || len(r.LostBlocks) > 0) {
			r.CrashLossWindow = true
		} else {
			r.PotentialReplay = true
		}
	}
	finishMediaReport(r, img, sus, res.implicated)
	return r
}

// recoverInlineCounters is the inline-packed design's step-2 walk:
// packed lines are self-describing (counter and HMAC unpack from the
// line itself, no retries), raw-fallback blocks verify conventionally
// at their stored counter. The reconstructed counter lines land in
// res.lines so Apply persists them and the tree rebuild covers them,
// exactly like the generic walk's retried lines. pend is the resume
// overlay, as in recoverCounters.
func recoverInlineCounters(img *engine.CrashImage, cry *seccrypto.Engine, pend *pendingWrite) counterResult {
	lay := img.Image.Layout
	res := counterResult{
		lines:      map[mem.Addr]seccrypto.CounterLine{},
		perLine:    map[mem.Addr]uint64{},
		implicated: map[mem.Addr]bool{},
	}
	sus := suspectSet(img)
	stuck := img.Image.Stuck
	lineOf := func(ca mem.Addr) seccrypto.CounterLine {
		if cl, ok := res.lines[ca]; ok {
			return cl
		}
		raw, _ := readLine(img, pend, ca)
		return seccrypto.DecodeCounterLine(raw)
	}
	for _, a := range dataWalkAddrs(img, sus) {
		ca := lay.CounterLineOf(a)
		slot := lay.CounterSlotOf(a)
		line, _ := img.Image.Read(a)
		if img.Sideband[a] == 1 { // engine.TagPacked
			// Packed lines are self-describing; only the data line itself
			// can lose them (the counter line is reconstructed inline).
			if img.MediaFaults && stuck[a] {
				res.lost = append(res.lost, LostBlock{Addr: a, Line: a, Cause: "stuck-data"})
				res.implicated[a] = true
				continue
			}
			_, ctr, ok := engine.UnpackArsenalLine(cry, a, line)
			if !ok {
				if img.MediaFaults && sus[a] {
					res.lost = append(res.lost, LostBlock{Addr: a, Line: a, Cause: "torn-data"})
					res.implicated[a] = true
					continue
				}
				res.tampered = append(res.tampered, TamperedBlock{Addr: a})
				continue
			}
			cl := lineOf(ca)
			cl.Major = ctr >> seccrypto.MinorBits
			cl.Minors[slot] = uint8(ctr & seccrypto.MinorMax)
			res.lines[ca] = cl
			res.blocks++
		} else {
			ha, _ := lay.HMACLineOf(a)
			if img.MediaFaults {
				if cause, bad := stuckCause(stuck, a, ca, ha); cause != "" {
					res.lost = append(res.lost, LostBlock{Addr: a, Line: bad, Cause: cause})
					res.implicated[bad] = true
					continue
				}
			}
			cl := lineOf(ca)
			base := cl.Counter(slot)
			stored := storedHMAC(img, cry, a)
			if cry.DataHMAC(a, base, line) != stored {
				if img.MediaFaults && (sus[a] || sus[ca] || sus[ha]) {
					bad, cause := ca, "torn-counter"
					if !sus[ca] {
						if sus[a] {
							bad, cause = a, "torn-data"
						} else {
							bad, cause = ha, "torn-hmac"
						}
					}
					res.lost = append(res.lost, LostBlock{Addr: a, Line: bad, Cause: cause})
					for _, s := range []mem.Addr{a, ca, ha} {
						if sus[s] {
							res.implicated[s] = true
						}
					}
					continue
				}
				res.tampered = append(res.tampered, TamperedBlock{Addr: a, StoredCounter: base})
			}
		}
	}
	return res
}
