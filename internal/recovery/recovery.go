// Package recovery implements post-crash recovery and attack location
// for secure-NVM crash images (paper §4.4). Given the persistent state
// a design left behind — the NVM image and the TCB registers — it
// executes the four-step process:
//
//  1. Verify the in-NVM Merkle tree against ROOTold/ROOTnew and locate
//     replay attacks as parent/child mismatches.
//  2. Recover every stalled counter by retrying the data HMAC up to N
//     increments, locating spoofing/splicing attacks as blocks whose
//     HMAC never matches.
//  3. Compare the total retry count Nretry against the Nwb register to
//     detect the deferred-spreading replay window (detected, not
//     locatable).
//  4. Rebuild the Merkle tree from the recovered counters and install
//     the new root.
//
// The same machinery recovers the baselines with their respective
// validation rules: Osiris Plus and cc-NVM w/o DS compare the rebuilt
// root against ROOTnew (detect-only), SC expects zero retries, and a
// w/o-CC image is generally unrecoverable — which is the paper's
// motivation.
package recovery

import (
	"fmt"

	"ccnvm/internal/bmt"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// TamperedBlock is a data block whose HMAC could not be matched within
// the retry budget: a located spoofing or splicing attack (or, for
// designs without bounded counter staleness, an unrecoverable block).
type TamperedBlock struct {
	Addr          mem.Addr
	StoredCounter uint64 // counter value found in the NVM image
}

// String renders the finding.
func (b TamperedBlock) String() string {
	return fmt.Sprintf("tampered data block %#x (stored counter %d)", uint64(b.Addr), b.StoredCounter)
}

// LostBlock is a data block recovery could not restore but attributes
// to crash-time media damage rather than tampering: the authentication
// failure is covered by the suspects manifest (a line the WPQ had
// accepted but possibly not serviced whole) or by a stuck line the
// device reports unreadable. Lost blocks are crash loss — detected,
// enumerated, and distinguishable from an attack.
type LostBlock struct {
	Addr  mem.Addr // the data block that could not be recovered
	Line  mem.Addr // the damaged line implicated (data, counter or HMAC line)
	Cause string   // "torn-data", "torn-counter", "torn-hmac", "stuck-data", "stuck-counter", "stuck-hmac"
}

// String renders the finding.
func (b LostBlock) String() string {
	return fmt.Sprintf("lost data block %#x (%s at %#x)", uint64(b.Addr), b.Cause, uint64(b.Line))
}

// Report is the outcome of recovery.
type Report struct {
	Design string

	// ConsistentRoot records which root register the NVM tree verified
	// against in step 1: "old", "new", or "" when the tree does not
	// verify (TreeMismatches then locates the damage). Designs that do
	// not persist the tree (Osiris) skip step 1 and leave it "".
	ConsistentRoot string

	// TreeMismatches are located replay attacks on counters or tree
	// nodes (step 1).
	TreeMismatches []bmt.Mismatch

	// Tampered are located spoofing/splicing attacks (step 2).
	Tampered []TamperedBlock

	// Nwb and Nretry feed step 3. PotentialReplay is the paper's
	// "detected but not locatable" verdict: Nretry != Nwb for cc-NVM, or
	// a rebuilt-root mismatch for the root-per-write-back designs.
	Nwb             uint64
	Nretry          uint64
	PotentialReplay bool

	// ReplayedPages lists the 4 KiB pages whose recorded per-line update
	// count disagrees with the recovered retries — the §4.4 extension's
	// page-granular location of data-replay attacks inside the
	// deferred-spreading window. Only designs with per-line replay
	// registers (cc-NVM+Ext) produce entries; plain cc-NVM can only set
	// PotentialReplay.
	ReplayedPages []mem.Addr

	// RecoveredBlocks counts data blocks whose counters were advanced;
	// RecoveredLines counts distinct counter lines rewritten.
	RecoveredBlocks int
	RecoveredLines  int

	// RebuiltRoot is the step-4 root implied by the recovered counters.
	RebuiltRoot mem.Line

	// LostBlocks are data blocks recovery could not restore but whose
	// authentication failure is media-attributable (see LostBlock): crash
	// loss, not tampering. Only produced when the image was taken under a
	// fault model.
	LostBlocks []LostBlock

	// MediaErrors lists lines the device reports permanently unreadable
	// (stuck-at after exhausting read retries). Recovery learns them from
	// the device, as real hardware would from uncorrectable-ECC machine
	// checks.
	MediaErrors []mem.Addr

	// HealedLines are suspect lines recovery verified or repaired — lines
	// the crash may have damaged but that were not implicated in any
	// loss: either the ADR flush completed them, or HMAC-replay / tree
	// rebuild restored their logical content.
	HealedLines []mem.Addr

	// CrashLossWindow reports that some acknowledged writes may have been
	// lost to media damage at crash. It is set pessimistically whenever
	// the suspects manifest is non-empty — an entry the ADR failed to
	// service whole may have dropped a write without leaving mismatching
	// bytes (a fully-masked tear keeps the previous self-consistent
	// content), so no amount of verification can prove the loss away —
	// and the enumerated LostBlocks refine it where damage is provable.
	// It is the media-fault analogue of PotentialReplay: detected, not
	// locatable beyond the suspect set — but attributable to the crash,
	// not to an attacker.
	CrashLossWindow bool
}

// Clean reports whether no attack was detected: the image decrypts,
// authenticates, and may resume service with the rebuilt tree.
func (r *Report) Clean() bool {
	return len(r.TreeMismatches) == 0 && len(r.Tampered) == 0 &&
		len(r.ReplayedPages) == 0 && !r.PotentialReplay
}

// Located reports whether every detected attack was pinned to specific
// blocks or nodes, so only those need discarding. This is cc-NVM's
// headline capability; a potential-replay verdict is detection without
// location.
func (r *Report) Located() bool {
	return !r.PotentialReplay &&
		(len(r.TreeMismatches) > 0 || len(r.Tampered) > 0 || len(r.ReplayedPages) > 0)
}

// DataDropped reports whether the whole NVM content must be discarded:
// an attack was detected but could not be located.
func (r *Report) DataDropped() bool { return r.PotentialReplay }

// Lossless reports whether recovery restored every acknowledged write:
// no attack detected, no blocks lost to media damage, no unreadable
// lines, and no crash-loss window. When false with Clean() true, the
// image is attack-free but some writes were lost to the crash — the
// report enumerates or bounds them.
func (r *Report) Lossless() bool {
	return r.Clean() && len(r.LostBlocks) == 0 && len(r.MediaErrors) == 0 && !r.CrashLossWindow
}

// Recovered is the post-recovery persistent state produced by Apply.
type Recovered struct {
	TCB engine.TCB
}

// Recover dispatches a crash image to the recovery procedure its
// design's registry descriptor declares. Images of unregistered designs
// get the conservative generic procedure (design.ForImage).
func Recover(img *engine.CrashImage) *Report {
	d := design.ForImage(img.Design)
	if d.Strategy == design.RecoverInlinePacked {
		return recoverInlinePackedImage(img)
	}
	return recoverGenericImage(img, d)
}

// recoverGenericImage runs the four-step counter-retry process, with
// steps 1 and 3 shaped by the design's declared capabilities.
func recoverGenericImage(img *engine.CrashImage, d design.Descriptor) *Report {
	r := &Report{Design: img.Design, Nwb: img.TCB.Nwb}
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)
	sus := suspectSet(img)

	// Step 1: locate replay attacks via the consistent NVM tree. Designs
	// that do not persist their tree (Osiris) have nothing to check.
	// Under a fault model, mismatches covered by the suspects manifest
	// (the torn line itself, or a child whose torn parent stores a stale
	// link) are crash damage: the step-4 rebuild heals them, and only the
	// unexplained remainder is reported as an attack.
	if d.Caps.TreePersisted {
		addrs := img.Image.Store.Addrs()
		rd := imageReader{img.Image}
		if bad := tree.VerifyAll(rd, img.TCB.RootOld, addrs); len(bad) == 0 {
			r.ConsistentRoot = "old"
		} else if bad2 := tree.VerifyAll(rd, img.TCB.RootNew, addrs); len(bad2) == 0 {
			// Crash between the end signal and the ROOTold update: ADR
			// completed the drain, so the tree matches ROOTnew.
			r.ConsistentRoot = "new"
		} else if img.MediaFaults {
			atkOld := attackMismatches(lay, bad, sus)
			atkNew := attackMismatches(lay, bad2, sus)
			// The root whose unexplained mismatches are fewest is the one
			// the crash left authoritative.
			if len(atkNew) < len(atkOld) {
				r.TreeMismatches = atkNew
			} else {
				r.TreeMismatches = atkOld
			}
		} else {
			r.TreeMismatches = bad
		}
	}

	// Step 2: recover stalled counters via data HMAC retries.
	res := recoverCounters(img, cry)
	r.Nretry = res.nretry
	r.RecoveredBlocks = res.blocks
	r.Tampered = res.tampered
	r.RecoveredLines = len(res.lines)
	r.LostBlocks = res.lost

	// faultEscape: media damage could explain a consistency anomaly that
	// would otherwise read as an attack. Requires evidence — suspects,
	// stuck lines, or enumerated losses — not merely an enabled model.
	faultEscape := img.MediaFaults && (len(sus) > 0 || len(res.lost) > 0)
	pagesSus := suspectCounterLines(lay, sus)

	// A non-empty manifest means the ADR flush stopped short: some entry
	// may have dropped whole, leaving stale self-consistent bytes no
	// check can flag. Report the loss window pessimistically.
	if img.MediaFaults && len(img.Suspects) > 0 {
		r.CrashLossWindow = true
	}

	// Step 3: detect the replay window. The check is conclusive only
	// when steps 1-2 located nothing: a located spoof/splice already
	// accounts for missing retries (its true retry count is unknowable).
	stepsClean := len(r.TreeMismatches) == 0 && len(r.Tampered) == 0
	switch d.Caps.Replay {
	case design.ReplayNwbWindow:
		if r.Nretry != r.Nwb && stepsClean {
			switch {
			case !faultEscape:
				r.PotentialReplay = true
			case r.Nretry < r.Nwb:
				// Fewer retries than acknowledged write-backs: some writes
				// never reached the media (dropped or torn by the partial
				// ADR drain). Crash loss, not replay.
				r.CrashLossWindow = true
			case r.Nretry-r.Nwb <= suspectRetries(res.perLine, pagesSus):
				// More retries than Nwb accounts for, but the excess is
				// fully explained by retries on media-damaged counter
				// lines (e.g. a committed epoch's counter drain torn after
				// Nwb was reset). Everything re-authenticated: healed.
			default:
				r.PotentialReplay = true
			}
		}
	case design.ReplayPerLinePage:
		// The extension compares each recorded per-line update count
		// against the line's recovered retries: a disagreeing line pins
		// the replay to its page — unless the page's lines are in the
		// suspect set, in which case the disagreement is crash loss.
		if stepsClean {
			for ca, recorded := range img.TCB.ExtDirty {
				if res.perLine[ca] == recorded {
					continue
				}
				if faultEscape && pagesSus[ca] {
					r.CrashLossWindow = true
					continue
				}
				page := lay.CounterLineIndex(ca) * mem.PageSize
				r.ReplayedPages = append(r.ReplayedPages, mem.Addr(page))
			}
			for ca, got := range res.perLine {
				if got > 0 && img.TCB.ExtDirty[ca] == 0 {
					if faultEscape && pagesSus[ca] {
						r.CrashLossWindow = true
						continue
					}
					page := lay.CounterLineIndex(ca) * mem.PageSize
					r.ReplayedPages = append(r.ReplayedPages, mem.Addr(page))
				}
			}
			sortAddrs(r.ReplayedPages)
		}
	}

	// Step 4: rebuild the Merkle tree from the recovered counters.
	overlay := overlayReader{base: imageReader{img.Image}, lines: encodeLines(res.lines)}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, res.lines)
	_, rebuilt := tree.Rebuild(overlay, counterAddrs)
	r.RebuiltRoot = rebuilt

	// Root-compare designs validate the rebuilt root against ROOTnew: a
	// mismatch proves an attack that cannot be located — or, with
	// media-damage evidence, acknowledged writes lost to the crash (these
	// designs cannot tell the two apart; that inability is the paper's
	// argument for cc-NVM's located mechanisms).
	if d.Caps.Replay == design.ReplayRootCompare {
		if rebuilt != img.TCB.RootNew && stepsClean {
			if faultEscape {
				r.CrashLossWindow = true
			} else {
				r.PotentialReplay = true
			}
		}
	}

	finishMediaReport(r, img, sus, res.implicated)
	return r
}

// finishMediaReport fills the media sections of the report: the stuck
// lines the device reports unreadable, and the suspect lines that were
// not implicated in any loss — healed (flushed whole, re-authenticated
// by HMAC replay, or rebuilt with the tree).
func finishMediaReport(r *Report, img *engine.CrashImage, sus, implicated map[mem.Addr]bool) {
	if !img.MediaFaults {
		return
	}
	for a := range img.Image.Stuck {
		r.MediaErrors = append(r.MediaErrors, a)
	}
	sortAddrs(r.MediaErrors)
	for _, s := range img.Suspects {
		if !implicated[s] && !img.Image.Stuck[s] {
			r.HealedLines = append(r.HealedLines, s)
		}
	}
	sortAddrs(r.HealedLines)
}

// suspectSet is the union of the controller's WPQ manifest and the
// device's stuck lines: every line whose content recovery may not trust
// to be whole. Nil when the image was taken without a fault model, which
// keeps the faultless paths bit-identical.
func suspectSet(img *engine.CrashImage) map[mem.Addr]bool {
	if !img.MediaFaults {
		return nil
	}
	m := make(map[mem.Addr]bool, len(img.Suspects)+len(img.Image.Stuck))
	for _, a := range img.Suspects {
		m[a] = true
	}
	for a := range img.Image.Stuck {
		m[a] = true
	}
	return m
}

// attackMismatches filters a step-1 mismatch list down to the entries
// that media damage cannot explain. A mismatch is media-attributable
// when the reported child is itself suspect (its content may be torn) or
// its parent is (the stored link may be torn) — VerifyAll reports a torn
// parent both at itself and at each child its stale links disown.
func attackMismatches(lay *mem.Layout, ms []bmt.Mismatch, sus map[mem.Addr]bool) []bmt.Mismatch {
	var attack []bmt.Mismatch
	for _, m := range ms {
		if sus[m.Addr] {
			continue
		}
		if m.Level < lay.TopLevel() {
			pl, pi, _ := lay.ParentOf(m.Level, m.Index)
			if sus[lay.NodeAddr(pl, pi)] {
				continue
			}
		}
		attack = append(attack, m)
	}
	return attack
}

// suspectCounterLines maps the suspect set onto the counter lines whose
// pages it can affect: a suspect data line implicates its page's counter
// line, a suspect HMAC line the counter line of the blocks it covers,
// and a suspect counter line itself. Tree nodes carry no per-page state.
func suspectCounterLines(lay *mem.Layout, sus map[mem.Addr]bool) map[mem.Addr]bool {
	if len(sus) == 0 {
		return nil
	}
	m := make(map[mem.Addr]bool, len(sus))
	for s := range sus {
		switch lay.RegionOf(s) {
		case mem.RegionData:
			m[lay.CounterLineOf(s)] = true
		case mem.RegionCounter:
			m[s] = true
		case mem.RegionHMAC:
			lineIdx := uint64(s-lay.HMACBase) / mem.LineSize
			da := mem.Addr(lineIdx * mem.HMACsPerLine * mem.LineSize)
			m[lay.CounterLineOf(da)] = true
		}
	}
	return m
}

// suspectRetries totals the recovered retries that landed on counter
// lines media damage can explain.
func suspectRetries(perLine map[mem.Addr]uint64, pagesSus map[mem.Addr]bool) uint64 {
	var n uint64
	for ca, r := range perLine {
		if pagesSus[ca] {
			n += r
		}
	}
	return n
}

// Apply writes the recovered counters and the rebuilt tree into the
// image and returns the TCB state a rebooted controller starts from.
// Call it only when the report is Clean (or after discarding located
// tampered blocks).
func Apply(img *engine.CrashImage, _ *Report) Recovered {
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)

	// Re-run counter recovery to obtain the lines (Recover is pure).
	res := recoverCounters(img, cry)
	for ca, cl := range res.lines {
		img.Image.Write(ca, cl.Encode())
	}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, res.lines)
	nodes, root := tree.Rebuild(imageReader{img.Image}, counterAddrs)
	for a, n := range nodes {
		img.Image.Write(a, n)
	}
	// The rebuild defines the entire tree. A stored node it did not
	// cover has no surviving counter line under it — the partial ADR
	// drain dropped the leaves an earlier epoch's node update assumed —
	// and its stale links would contradict the rebuilt root; revert it
	// to the level default the rebuild used. Faultless images never
	// carry uncovered nodes, so this is a no-op there.
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) != mem.RegionTree {
			continue
		}
		if _, ok := nodes[a]; !ok {
			lv, _ := lay.NodeAt(a)
			img.Image.Write(a, tree.DefaultNode(lv))
		}
	}
	return Recovered{TCB: engine.TCB{RootNew: root, RootOld: root, Nwb: 0}}
}

// counterResult is the outcome of the step-2 counter recovery walk.
type counterResult struct {
	lines      map[mem.Addr]seccrypto.CounterLine // counter lines advanced by retries
	nretry     uint64                             // total retries (Nretry)
	blocks     int                                // data blocks whose counters advanced
	tampered   []TamperedBlock                    // HMAC never matched, not media-attributable
	lost       []LostBlock                        // HMAC never matched, media-attributable
	perLine    map[mem.Addr]uint64                // per-counter-line retry totals (§4.4 extension)
	implicated map[mem.Addr]bool                  // suspect/stuck lines tied to a loss
}

// recoverCounters walks every data block in the image, recovering its
// counter by HMAC retries bounded by the design's update limit. Under a
// fault model, blocks whose lines are stuck are lost outright, and
// blocks whose HMAC never matches are classified lost rather than
// tampered when the failure is covered by a suspect line — torn data,
// counter or HMAC content left by the partial ADR drain.
func recoverCounters(img *engine.CrashImage, cry *seccrypto.Engine) counterResult {
	lay := img.Image.Layout
	res := counterResult{
		lines:      map[mem.Addr]seccrypto.CounterLine{},
		perLine:    map[mem.Addr]uint64{},
		implicated: map[mem.Addr]bool{},
	}
	sus := suspectSet(img)
	stuck := img.Image.Stuck
	for _, a := range dataWalkAddrs(img, sus) {
		ca := lay.CounterLineOf(a)
		ha, _ := lay.HMACLineOf(a)
		if img.MediaFaults {
			if cause, line := stuckCause(stuck, a, ca, ha); cause != "" {
				res.lost = append(res.lost, LostBlock{Addr: a, Line: line, Cause: cause})
				res.implicated[line] = true
				continue
			}
		}
		ct, _ := img.Image.Read(a)
		stored := storedHMAC(img, cry, a)
		cl, ok := res.lines[ca]
		if !ok {
			raw, _ := img.Image.Read(ca)
			cl = seccrypto.DecodeCounterLine(raw)
		}
		slot := lay.CounterSlotOf(a)
		base := cl.Counter(slot)
		found := false
		for retry := uint64(0); retry <= img.UpdateLimit; retry++ {
			if cry.DataHMAC(a, base+retry, ct) != stored {
				continue
			}
			if retry > 0 {
				if uint64(cl.Minors[slot])+retry > seccrypto.MinorMax {
					// A legitimate lag never crosses a minor overflow
					// (overflows persist immediately): treat as tampered.
					break
				}
				res.nretry += retry
				res.perLine[ca] += retry
				res.blocks++
				cl.Minors[slot] += uint8(retry)
				res.lines[ca] = cl
			}
			found = true
			break
		}
		if found {
			continue
		}
		if img.MediaFaults && (sus[a] || sus[ca] || sus[ha]) {
			line, cause := ca, "torn-counter"
			if !sus[ca] {
				if sus[a] {
					line, cause = a, "torn-data"
				} else {
					line, cause = ha, "torn-hmac"
				}
			}
			res.lost = append(res.lost, LostBlock{Addr: a, Line: line, Cause: cause})
			for _, s := range []mem.Addr{a, ca, ha} {
				if sus[s] {
					res.implicated[s] = true
				}
			}
			continue
		}
		res.tampered = append(res.tampered, TamperedBlock{Addr: a, StoredCounter: base})
	}
	return res
}

// dataWalkAddrs lists the data blocks the counter-recovery walk must
// visit: every data line in the store plus, under a fault model, every
// suspect data line absent from it — a dropped first write leaves no
// stored line, but its block may still carry non-virgin counter or HMAC
// evidence that must be classified as loss, not skipped.
func dataWalkAddrs(img *engine.CrashImage, sus map[mem.Addr]bool) []mem.Addr {
	lay := img.Image.Layout
	var out []mem.Addr
	seen := map[mem.Addr]bool{}
	for _, a := range img.Image.Store.Addrs() {
		if lay.RegionOf(a) == mem.RegionData {
			out = append(out, a)
			seen[a] = true
		}
	}
	if !img.MediaFaults {
		return out
	}
	extra := false
	for s := range sus {
		if lay.RegionOf(s) == mem.RegionData && !seen[s] {
			out = append(out, s)
			extra = true
		}
	}
	if extra {
		sortAddrs(out)
	}
	return out
}

// stuckCause classifies a data block covered by a stuck line, returning
// the cause label and the unreadable line, or "" when none of the
// block's lines is stuck.
func stuckCause(stuck map[mem.Addr]bool, a, ca, ha mem.Addr) (string, mem.Addr) {
	switch {
	case stuck[a]:
		return "stuck-data", a
	case stuck[ca]:
		return "stuck-counter", ca
	case stuck[ha]:
		return "stuck-hmac", ha
	}
	return "", 0
}

// storedHMAC extracts the stored data HMAC of block a, synthesizing the
// never-written default when the HMAC line is absent.
func storedHMAC(img *engine.CrashImage, cry *seccrypto.Engine, a mem.Addr) seccrypto.HMAC {
	lay := img.Image.Layout
	ha, hslot := lay.HMACLineOf(a)
	hl, ok := img.Image.Read(ha)
	if !ok {
		lineIdx := uint64(ha-lay.HMACBase) / mem.LineSize
		for s := 0; s < mem.HMACsPerLine; s++ {
			da := mem.Addr((lineIdx*mem.HMACsPerLine + uint64(s)) * mem.LineSize)
			seccrypto.PutHMAC(&hl, s, cry.DataHMAC(da, 0, mem.Line{}))
		}
	}
	return seccrypto.GetHMAC(hl, hslot)
}

// collectCounterAddrs lists every counter line that exists in the store
// or was recovered; Rebuild needs the complete set.
func collectCounterAddrs(lay *mem.Layout, st *mem.Store, recovered map[mem.Addr]seccrypto.CounterLine) []mem.Addr {
	seen := map[mem.Addr]bool{}
	var out []mem.Addr
	for _, a := range st.Addrs() {
		if lay.RegionOf(a) == mem.RegionCounter {
			seen[a] = true
			out = append(out, a)
		}
	}
	for ca := range recovered {
		if !seen[ca] {
			out = append(out, ca)
		}
	}
	return out
}

func sortAddrs(a []mem.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// imageReader adapts an nvm.Image to bmt.Reader: reads go through the
// image so stuck lines present as absent (default content) instead of
// leaking their unreadable stored bytes into verification or rebuild.
type imageReader struct {
	img *nvm.Image
}

func (r imageReader) Read(a mem.Addr) (mem.Line, bool) { return r.img.Read(a) }

var _ bmt.Reader = imageReader{}

type overlayReader struct {
	base  bmt.Reader
	lines map[mem.Addr]mem.Line
}

func (o overlayReader) Read(a mem.Addr) (mem.Line, bool) {
	if l, ok := o.lines[mem.Align(a)]; ok {
		return l, true
	}
	return o.base.Read(a)
}

func encodeLines(m map[mem.Addr]seccrypto.CounterLine) map[mem.Addr]mem.Line {
	out := make(map[mem.Addr]mem.Line, len(m))
	for a, cl := range m {
		out[a] = cl.Encode()
	}
	return out
}

var _ bmt.Reader = overlayReader{}

// recoverInlinePackedImage handles the compression-based baseline:
// counters and HMACs live inline in packed lines (raw-fallback blocks
// use the conventional regions, written synchronously), so recovery
// needs no retries at all. Spoofing/splicing breaks the inline HMAC and
// is located; a whole-line replay is internally consistent, so it is
// detected only by rebuilding the tree from the recovered counters and
// comparing against ROOTnew — like Osiris, detect-only.
func recoverInlinePackedImage(img *engine.CrashImage) *Report {
	r := &Report{Design: img.Design}
	cry := seccrypto.MustEngine(img.Keys)
	lay := img.Image.Layout
	tree := bmt.New(lay, cry)
	sus := suspectSet(img)
	stuck := img.Image.Stuck
	implicated := map[mem.Addr]bool{}

	lines := map[mem.Addr]seccrypto.CounterLine{}
	lineOf := func(ca mem.Addr) seccrypto.CounterLine {
		if cl, ok := lines[ca]; ok {
			return cl
		}
		raw, _ := img.Image.Read(ca)
		return seccrypto.DecodeCounterLine(raw)
	}
	for _, a := range dataWalkAddrs(img, sus) {
		ca := lay.CounterLineOf(a)
		slot := lay.CounterSlotOf(a)
		line, _ := img.Image.Read(a)
		if img.Sideband[a] == 1 { // engine.TagPacked
			// Packed lines are self-describing; only the data line itself
			// can lose them (the counter line is reconstructed inline).
			if img.MediaFaults && stuck[a] {
				r.LostBlocks = append(r.LostBlocks, LostBlock{Addr: a, Line: a, Cause: "stuck-data"})
				implicated[a] = true
				continue
			}
			_, ctr, ok := engine.UnpackArsenalLine(cry, a, line)
			if !ok {
				if img.MediaFaults && sus[a] {
					r.LostBlocks = append(r.LostBlocks, LostBlock{Addr: a, Line: a, Cause: "torn-data"})
					implicated[a] = true
					continue
				}
				r.Tampered = append(r.Tampered, TamperedBlock{Addr: a})
				continue
			}
			cl := lineOf(ca)
			cl.Major = ctr >> seccrypto.MinorBits
			cl.Minors[slot] = uint8(ctr & seccrypto.MinorMax)
			lines[ca] = cl
			r.RecoveredBlocks++
		} else {
			ha, _ := lay.HMACLineOf(a)
			if img.MediaFaults {
				if cause, bad := stuckCause(stuck, a, ca, ha); cause != "" {
					r.LostBlocks = append(r.LostBlocks, LostBlock{Addr: a, Line: bad, Cause: cause})
					implicated[bad] = true
					continue
				}
			}
			cl := lineOf(ca)
			base := cl.Counter(slot)
			stored := storedHMAC(img, cry, a)
			if cry.DataHMAC(a, base, line) != stored {
				if img.MediaFaults && (sus[a] || sus[ca] || sus[ha]) {
					bad, cause := ca, "torn-counter"
					if !sus[ca] {
						if sus[a] {
							bad, cause = a, "torn-data"
						} else {
							bad, cause = ha, "torn-hmac"
						}
					}
					r.LostBlocks = append(r.LostBlocks, LostBlock{Addr: a, Line: bad, Cause: cause})
					for _, s := range []mem.Addr{a, ca, ha} {
						if sus[s] {
							implicated[s] = true
						}
					}
					continue
				}
				r.Tampered = append(r.Tampered, TamperedBlock{Addr: a, StoredCounter: base})
			}
		}
	}
	r.RecoveredLines = len(lines)

	// Same pessimism as the generic path: an unserviced WPQ entry may
	// have dropped whole without leaving verifiable damage.
	if img.MediaFaults && len(img.Suspects) > 0 {
		r.CrashLossWindow = true
	}

	overlay := overlayReader{base: imageReader{img.Image}, lines: encodeLines(lines)}
	counterAddrs := collectCounterAddrs(lay, img.Image.Store, lines)
	_, rebuilt := tree.Rebuild(overlay, counterAddrs)
	r.RebuiltRoot = rebuilt
	if rebuilt != img.TCB.RootNew && len(r.Tampered) == 0 {
		if img.MediaFaults && (len(sus) > 0 || len(r.LostBlocks) > 0) {
			r.CrashLossWindow = true
		} else {
			r.PotentialReplay = true
		}
	}
	finishMediaReport(r, img, sus, implicated)
	return r
}
