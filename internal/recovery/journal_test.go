package recovery

import (
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
)

func sampleRecord(seq uint64, active bool) journalRecord {
	rec := journalRecord{
		Active:          active,
		Seq:             seq,
		ConsistentRoot:  "new",
		PotentialReplay: seq%2 == 0,
		CrashLossWindow: seq%3 == 0,
		Nwb:             41,
		Nretry:          41,
		Blocks:          7,
		Lines:           3,
		PendingValid:    true,
		PendingAddr:     mem.Addr(0x51000040),
	}
	for i := range rec.Root {
		rec.Root[i] = byte(seq) + byte(i)
	}
	for i := range rec.PendingLine {
		rec.PendingLine[i] = ^byte(i)
	}
	return rec
}

func TestJournalSlotRoundTrip(t *testing.T) {
	for _, rec := range []journalRecord{
		sampleRecord(3, true),
		sampleRecord(4, false),
		{Seq: 1, ConsistentRoot: "old"},
		{}, // zero record must still round-trip
	} {
		buf := encodeSlot(rec)
		got, ok := decodeSlot(buf[:])
		if !ok {
			t.Fatalf("encoded record Seq=%d did not decode", rec.Seq)
		}
		if got != rec {
			t.Fatalf("round trip changed the record:\n got %+v\nwant %+v", got, rec)
		}
	}
}

func TestJournalChecksumFailsClosed(t *testing.T) {
	// A record torn anywhere — payload or checksum — must decode as
	// invalid, never as a plausible half-record.
	base := encodeSlot(sampleRecord(9, true))
	// Offsets cover the payload and the checksum itself; the padding past
	// joChecksum+8 is not protected (and carries no state).
	for _, off := range []int{joMagic, joFlags, joSeq, joRootLine, joPendLine, joChecksum, joChecksum + 7} {
		buf := base
		buf[off] ^= 0x40
		if _, ok := decodeSlot(buf[:]); ok {
			t.Errorf("record with byte %d corrupted still decoded", off)
		}
	}
	if _, ok := decodeSlot(base[:journalSlotLen-1]); ok {
		t.Error("short buffer decoded")
	}
}

func TestJournalNewestSeqWins(t *testing.T) {
	img := &engine.CrashImage{}
	if _, ok := loadJournal(img); ok {
		t.Fatal("absent journal loaded")
	}
	ensureJournal(img)
	if _, ok := loadJournal(img); ok {
		t.Fatal("all-zero journal loaded a record")
	}

	// Seq 3 in slot 1, Seq 4 in slot 0: the newest intact record rules.
	r3, r4 := sampleRecord(3, true), sampleRecord(4, false)
	b3, b4 := encodeSlot(r3), encodeSlot(r4)
	copy(img.RecoveryJournal[journalSlotLen:], b3[:])
	copy(img.RecoveryJournal[:journalSlotLen], b4[:])
	if got, ok := loadJournal(img); !ok || got.Seq != 4 {
		t.Fatalf("loadJournal = %+v, %v; want Seq 4", got, ok)
	}
	if JournalActive(img) {
		t.Fatal("inactive newest record reported active")
	}

	// Tear the newest record: the previous slot must rule again, exactly
	// the fall-back a mid-update power failure relies on.
	img.RecoveryJournal[joRootLine] ^= 0xff
	if got, ok := loadJournal(img); !ok || got.Seq != 3 {
		t.Fatalf("after tearing slot 0: loadJournal = %+v, %v; want Seq 3", got, ok)
	}
	if !JournalActive(img) {
		t.Fatal("active surviving record not reported active")
	}
}
