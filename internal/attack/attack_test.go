package attack_test

import (
	"testing"

	"ccnvm/internal/attack"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

func image(t *testing.T) *engine.CrashImage {
	t.Helper()
	st, err := store.Open(store.Options{Capacity: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	e := st.Engine()
	now := int64(0)
	var pt mem.Line
	for i := 0; i < 8; i++ {
		pt[0] = byte(i)
		now = e.WriteBack(now, mem.Addr(i*4096), pt) + 50
	}
	return e.Crash()
}

func TestSpoofMutatesExactlyOneLine(t *testing.T) {
	img := image(t)
	before := img.Image.Store.Clone()
	if err := attack.SpoofData(img, 0); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, a := range img.Image.Store.Addrs() {
		old, _ := before.Read(a)
		cur, _ := img.Image.Read(a)
		if old != cur {
			changed++
			if a != 0 {
				t.Fatalf("spoof touched %#x", uint64(a))
			}
		}
	}
	if changed != 1 {
		t.Fatalf("spoof changed %d lines, want 1", changed)
	}
}

func TestSpoofRejectsNonDataAddress(t *testing.T) {
	img := image(t)
	if err := attack.SpoofData(img, mem.Addr(img.Image.Layout.DataBytes)); err == nil {
		t.Fatal("spoof of counter region accepted")
	}
}

func TestSpliceSwapsContents(t *testing.T) {
	img := image(t)
	a, b := mem.Addr(0), mem.Addr(4096)
	la, _ := img.Image.Read(a)
	lb, _ := img.Image.Read(b)
	if err := attack.SpliceData(img, a, b); err != nil {
		t.Fatal(err)
	}
	ga, _ := img.Image.Read(a)
	gb, _ := img.Image.Read(b)
	if ga != lb || gb != la {
		t.Fatal("splice did not swap")
	}
	if err := attack.SpliceData(img, a, img.Image.Layout.CounterBase); err == nil {
		t.Fatal("splice into metadata accepted")
	}
}

func TestReplayRestoresOldVersion(t *testing.T) {
	st, err := store.Open(store.Options{Capacity: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	lay := st.Layout()
	e := st.Engine()
	var v1, v2 mem.Line
	v1[0], v2[0] = 1, 2
	now := e.WriteBack(0, 0, v1) + 50
	old := st.Snapshot()
	e.WriteBack(now, 0, v2)
	img := e.Crash()
	if err := attack.ReplayBlock(img, old, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := img.Image.Read(0)
	want, _ := old.Read(0)
	if got != want {
		t.Fatal("replay did not restore the old data")
	}
	// The HMAC line must come along, or the attack would be trivially
	// caught by the data HMAC rather than the replay logic.
	ha, _ := lay.HMACLineOf(0)
	gh, _ := img.Image.Read(ha)
	wh, _ := old.Read(ha)
	if gh != wh {
		t.Fatal("replay did not restore the HMAC line")
	}
	if err := attack.ReplayBlock(img, old, lay.CounterBase); err == nil {
		t.Fatal("replay of metadata address accepted")
	}
}

func TestReplayCounterLine(t *testing.T) {
	img := image(t)
	old := img.Image.Clone()
	// Mutate the counter line in the live image, then replay the old one.
	ca := img.Image.Layout.CounterLineOf(0)
	l, _ := img.Image.Read(ca)
	l[0] ^= 1
	img.Image.Write(ca, l)
	if err := attack.ReplayCounterLine(img, old, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := img.Image.Read(ca)
	want, _ := old.Read(ca)
	if got != want {
		t.Fatal("counter line not restored")
	}
}

func TestSpoofTreeNodeBounds(t *testing.T) {
	img := image(t)
	if err := attack.SpoofTreeNode(img, 0, 0); err == nil {
		t.Fatal("level 0 accepted (counters are not tree nodes)")
	}
	if err := attack.SpoofTreeNode(img, img.Image.Layout.InternalLevels+1, 0); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := attack.SpoofTreeNode(img, 1, 0); err != nil {
		t.Fatal(err)
	}
}
