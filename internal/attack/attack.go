// Package attack injects the threat model's integrity attacks into
// crash images: spoofing (direct tampering), splicing (swapping content
// between addresses) and replay (restoring an older value at the same
// location). The attacker controls everything outside the TCB — the NVM
// image — but not the TCB registers, which is exactly the paper's §2.1
// adversary.
package attack

import (
	"fmt"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

// SpoofData flips bits in the data block at addr: a spoofing attack the
// data HMAC must catch.
func SpoofData(img *engine.CrashImage, addr mem.Addr) error {
	addr = mem.Align(addr)
	if img.Image.Layout.RegionOf(addr) != mem.RegionData {
		return fmt.Errorf("attack: %#x is not a data address", uint64(addr))
	}
	l, _ := img.Image.Read(addr)
	l[0] ^= 0xFF
	l[63] ^= 0x0F
	img.Image.Write(addr, l)
	return nil
}

// SpliceData exchanges the contents of data blocks a and b: a splicing
// attack; both HMACs bind the address, so both blocks must be flagged.
func SpliceData(img *engine.CrashImage, a, b mem.Addr) error {
	a, b = mem.Align(a), mem.Align(b)
	lay := img.Image.Layout
	if lay.RegionOf(a) != mem.RegionData || lay.RegionOf(b) != mem.RegionData {
		return fmt.Errorf("attack: splice endpoints %#x/%#x must be data addresses", uint64(a), uint64(b))
	}
	la, _ := img.Image.Read(a)
	lb, _ := img.Image.Read(b)
	img.Image.Write(a, lb)
	img.Image.Write(b, la)
	return nil
}

// ReplayBlock restores the data block at addr and its HMAC line from an
// older snapshot: the replay attack of Figure 4. Against a consistent
// but old Merkle tree the pair still verifies, so the attack is
// detectable only through the Nwb/Nretry bookkeeping (or, for designs
// that update the root per write-back, the rebuilt-root comparison).
func ReplayBlock(img *engine.CrashImage, old *nvm.Image, addr mem.Addr) error {
	addr = mem.Align(addr)
	lay := img.Image.Layout
	if lay.RegionOf(addr) != mem.RegionData {
		return fmt.Errorf("attack: %#x is not a data address", uint64(addr))
	}
	data, _ := old.Read(addr)
	ha, _ := lay.HMACLineOf(addr)
	hmacLine, _ := old.Read(ha)
	img.Image.Write(addr, data)
	img.Image.Write(ha, hmacLine)
	return nil
}

// ReplayCounterLine restores the counter line covering addr from an
// older snapshot: the "normal" replay attack that step 1 of recovery
// locates as a parent/child mismatch in the NVM tree.
func ReplayCounterLine(img *engine.CrashImage, old *nvm.Image, addr mem.Addr) error {
	lay := img.Image.Layout
	ca := lay.CounterLineOf(mem.Align(addr))
	l, _ := old.Read(ca)
	img.Image.Write(ca, l)
	return nil
}

// SpoofTreeNode corrupts the Merkle node at (level, idx); recovery must
// locate it as a mismatch.
func SpoofTreeNode(img *engine.CrashImage, level int, idx uint64) error {
	lay := img.Image.Layout
	if level < 1 || level > lay.InternalLevels {
		return fmt.Errorf("attack: tree level %d out of range", level)
	}
	a := lay.NodeAddr(level, idx)
	l, _ := img.Image.Read(a)
	l[7] ^= 0xA5
	img.Image.Write(a, l)
	return nil
}
