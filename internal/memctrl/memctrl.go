// Package memctrl models the memory controller in front of the NVM
// device: a banked PCM channel, a read queue, a 64-entry write pending
// queue (WPQ) inside the ADR persistence domain, and the start/end
// signalling that cc-NVM's atomic draining protocol layers on top of it.
//
// Timing uses a resource-reservation model: each bank has a next-free
// time, each WPQ slot is occupied until its write is serviced, and
// callers receive completion (for reads) or acceptance (for writes)
// timestamps. The model is deterministic and single-threaded, matching
// the trace-driven simulator.
//
// ADR semantics: a write accepted into the WPQ is durable — on a power
// failure, residual WPQ entries are flushed with backup power. The one
// exception is the atomic-draining window: metadata writes issued
// between BeginEpochDrain and EndEpochDrain are held in the WPQ and are
// dropped on a crash that precedes the end signal, which is exactly what
// keeps the Merkle tree in NVM consistent.
package memctrl

import (
	"errors"
	"fmt"
	"slices"

	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

// Typed protocol errors. They replace the panics that used to guard the
// draining protocol, so fuzzed and torture paths can surface a broken
// caller as a reported failure instead of crashing the sweep.
var (
	// ErrNestedDrain reports BeginEpochDrain inside an open window.
	ErrNestedDrain = errors.New("memctrl: nested BeginEpochDrain")
	// ErrNoDrain reports EndEpochDrain without a matching begin signal.
	ErrNoDrain = errors.New("memctrl: EndEpochDrain without BeginEpochDrain")
	// ErrWPQWedged reports a WPQ whose every slot is a held epoch entry:
	// the drainer failed to bound its batch by the queue size.
	ErrWPQWedged = errors.New("memctrl: WPQ wedged with held epoch entries")
)

// Config sizes the controller. Zero values select the paper's setup.
type Config struct {
	Banks      int // parallel PCM banks (default 24)
	ReadQueue  int // read queue entries (default 32)
	WriteQueue int // WPQ entries (default 64)

	// ReadRetryLimit bounds how many times a failing media read is
	// retried (with exponential backoff) before the controller reports a
	// permanent read error. Only consulted when the device carries a
	// fault model; default 4, which covers the transient-error model's
	// worst case of two consecutive failures.
	ReadRetryLimit int
}

func (c *Config) fill() {
	if c.Banks == 0 {
		c.Banks = 24
	}
	if c.ReadQueue == 0 {
		c.ReadQueue = 32
	}
	if c.WriteQueue == 0 {
		c.WriteQueue = 64
	}
	if c.ReadRetryLimit == 0 {
		c.ReadRetryLimit = 4
	}
}

// Stats reports controller-level contention and, under a fault model,
// the retry/scrub/crash-damage counters.
type Stats struct {
	Reads          uint64
	Writes         uint64
	WPQFullStalls  uint64 // writes that found the WPQ full
	WPQStallCycles int64  // cycles producers spent waiting for a slot
	EpochWrites    uint64 // writes issued inside a draining window
	DroppedOnCrash uint64 // held epoch entries discarded by a crash

	// Fault-model counters; all zero on the idealized device.
	ReadRetries         uint64 // read attempts repeated after a transient error
	ReadRetryCycles     int64  // extra cycles spent in retry backoff
	PermanentReadErrors uint64 // reads that exhausted the retry budget
	ScrubbedLines       uint64 // weak lines rewritten by scrub passes
	ScrubRemapped       uint64 // lines scrubbing gave up on and remapped
	TornOnCrash         uint64 // WPQ entries torn at power failure
	DroppedByADR        uint64 // WPQ entries wholly lost past the ADR budget
	StuckOnCrash        uint64 // lines stuck-at failed at power failure
	WriteErrors         uint64 // device writes rejected with a typed error

	// Finite spare-pool counters; all zero on the unlimited legacy pool
	// and omitted from JSON when zero, so faultless machine-readable
	// output stays byte-identical to earlier releases.
	RetryRemapped    uint64 `json:",omitzero"` // lines remapped after exhausting the read-retry budget
	RefusedWrites    uint64 `json:",omitzero"` // writes refused in read-only degradation
	RefusedEpochs    uint64 `json:",omitzero"` // epoch drains refused in read-only degradation
	RemapTornOnCrash uint64 `json:",omitzero"` // remap-record commits torn at power failure
}

// EventKind tags one entry of the controller's persistence event
// stream (see SetEventTap). The five kinds are exactly the durability
// transitions the ADR/atomic-draining contract defines; everything a
// persist-ordering analysis needs is derivable from them.
type EventKind uint8

const (
	// EvWriteAccept: a non-epoch write was accepted into the WPQ and is
	// durable from this point on (the ADR guarantee).
	EvWriteAccept EventKind = iota
	// EvEpochBegin: BeginEpochDrain opened an atomic-draining window.
	EvEpochBegin
	// EvEpochHold: a write inside the draining window was accepted but
	// held — it is not durable until the end signal arrives.
	EvEpochHold
	// EvEpochCommit: EndEpochDrain delivered the end signal — the
	// single atomic point after which the held batch is durable as a
	// whole. The engine's TCB commit is ordered after this event.
	EvEpochCommit
	// EvADRFlush: one held entry was serviced to the media after its
	// epoch's commit, emitted in shard order (deterministic even when
	// drain sharding fans the servicing out).
	EvADRFlush
)

// String names the event kind for diagnostics and golden files.
func (k EventKind) String() string {
	switch k {
	case EvWriteAccept:
		return "write-accept"
	case EvEpochBegin:
		return "epoch-begin"
	case EvEpochHold:
		return "epoch-hold"
	case EvEpochCommit:
		return "epoch-commit"
	case EvADRFlush:
		return "adr-flush"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one persistence-ordering event. Addr is meaningful for
// write-accept/hold/flush events and zero for the begin/commit signals.
type Event struct {
	Kind EventKind
	Addr mem.Addr
}

// SetEventTap installs fn as the persistence event tap: it is called
// synchronously, in program order, at every durability transition the
// controller performs. Purely observational — installing a tap cannot
// change timing, content, or crash behavior. nil removes the tap.
func (c *Controller) SetEventTap(fn func(Event)) { c.tap = fn }

// emit forwards one event to the tap, if any.
func (c *Controller) emit(k EventKind, a mem.Addr) {
	if c.tap != nil {
		c.tap(Event{Kind: k, Addr: a})
	}
}

type heldEntry struct {
	addr mem.Addr
	line mem.Line
}

// pendingWrite tracks one accepted-but-unserviced WPQ entry while a
// fault model is active, with enough context to tear or revert it at a
// power failure: the media content before the write and whether the
// line existed at all.
type pendingWrite struct {
	addr  mem.Addr
	line  mem.Line // the new content the producer wrote
	old   mem.Line // media content before this write
	oldOk bool
	seq   uint64 // global write sequence (disambiguates tear decisions)
}

// Controller fronts one NVM device.
//
// Reads are prioritized over buffered writes, as in real memory
// controllers: banks keep a read timeline, while the WPQ drains as a
// fluid backlog at the aggregate write bandwidth (Banks lines per
// WriteCycles). A read therefore never waits behind buffered writes;
// write pressure reaches producers only through WPQ backpressure — a
// full queue blocks the writer until enough backlog has drained.
type Controller struct {
	cfg       Config
	dev       *nvm.Device
	readBanks []int64 // next-free cycle per bank, read stream
	readQ     []int64 // completion times of in-flight reads (queue bound)

	backlog    float64 // WPQ occupancy being drained (lines)
	backlogUpd int64   // cycle of the last backlog update
	inDrain    bool
	stats      Stats

	// Held epoch entries, as per-shard queues. The default is one queue;
	// ConfigureDrainSharding splits the epoch batch by independent
	// subtree so the end-of-drain servicing can fan out. An address maps
	// to exactly one shard, so forwarding scans only its queue and sees
	// the same first-match entry the single global FIFO would.
	held         [][]heldEntry
	heldCount    int
	drainShardOf func(mem.Addr) int // nil when unsharded
	drainWorkers int

	// Fault-model state (empty on the idealized device).
	pending  []pendingWrite // accepted writes not yet serviced, FIFO
	wseq     uint64         // monotonic write sequence for tear decisions
	faultLog *nvm.FaultLog  // built by Crash when a fault model is active
	err      error          // first device/protocol error (sticky)

	// Persistence event tap (SetEventTap); nil when nothing listens.
	tap func(Event)

	// Reorder-persist sabotage state (SabotageReorderPersist): a
	// deliberate single-shot ADR-ordering defect the torture harness
	// arms to prove guided crash enumeration has teeth.
	sabAfter   int        // arm after this many epoch commits; 0 = off
	sabCommits int        // epoch commits delivered so far
	sabVictim  *heldEntry // the parked non-epoch write; nil when none
	sabDone    bool       // the defect already fired; behavior nominal
}

// New builds a controller over dev.
func New(cfg Config, dev *nvm.Device) *Controller {
	cfg.fill()
	return &Controller{
		cfg:       cfg,
		dev:       dev,
		readBanks: make([]int64, cfg.Banks),
		held:      make([][]heldEntry, 1),
	}
}

// ConfigureDrainSharding splits the held epoch queue into shards
// independent batches keyed by shardOf (the engine supplies its
// subtree partition) and lets EndEpochDrain service them on up to
// workers goroutines. The commit point stays atomic — the end signal
// lands before any servicing — and the WPQ-wedge and ADR-budget
// invariants are unchanged because acceptance accounting still runs on
// the caller's thread against the shared occupancy.
//
// Sharding is refused (the single global FIFO is kept) when the device
// carries a fault model: crash-time tear composition replays the held
// queue in global write order, which a sharded layout would not
// preserve.
func (c *Controller) ConfigureDrainSharding(shards int, shardOf func(mem.Addr) int, workers int) {
	if c.heldCount != 0 || c.inDrain {
		panic("memctrl: ConfigureDrainSharding inside a draining window")
	}
	if shards <= 1 || shardOf == nil || c.dev.FaultModel() != nil {
		c.held = make([][]heldEntry, 1)
		c.drainShardOf = nil
		c.drainWorkers = 1
		return
	}
	c.held = make([][]heldEntry, shards)
	c.drainShardOf = shardOf
	c.drainWorkers = max(workers, 1)
}

// heldQueue returns the shard queue owning address a.
func (c *Controller) heldQueue(a mem.Addr) *[]heldEntry {
	if c.drainShardOf == nil {
		return &c.held[0]
	}
	return &c.held[c.drainShardOf(a)]
}

// allHeld flattens the shard queues in shard order. Crash-fault
// injection replays it as the global held FIFO, which is exact because
// sharding is disabled whenever a fault model is present.
func (c *Controller) allHeld() []heldEntry {
	if len(c.held) == 1 {
		return c.held[0]
	}
	out := make([]heldEntry, 0, c.heldCount)
	for _, q := range c.held {
		out = append(out, q...)
	}
	return out
}

// heldForward looks a up among the held epoch entries (first match in
// acceptance order, as the WPQ would forward).
func (c *Controller) heldForward(a mem.Addr) (mem.Line, bool) {
	if c.sabVictim != nil && c.sabVictim.addr == a {
		// The parked reorder-persist victim still occupies the WPQ and
		// forwards like any entry; only its durability is sabotaged.
		return c.sabVictim.line, true
	}
	if c.heldCount == 0 {
		return mem.Line{}, false
	}
	for _, h := range *c.heldQueue(a) {
		if h.addr == a {
			return h.line, true
		}
	}
	return mem.Line{}, false
}

// drainRate is the aggregate write bandwidth in lines per cycle.
func (c *Controller) drainRate() float64 {
	return float64(c.cfg.Banks) / float64(c.dev.Timing().WriteCycles)
}

// advance drains the write backlog up to cycle now. Callers may present
// out-of-order (pipeline-internal) timestamps; only forward progress
// drains.
func (c *Controller) advance(now int64) {
	if now > c.backlogUpd {
		c.backlog -= float64(now-c.backlogUpd) * c.drainRate()
		if c.backlog < 0 {
			c.backlog = 0
		}
		c.backlogUpd = now
	}
	if c.pending != nil {
		// Entries retire FIFO as the fluid backlog drains below them.
		unserviced := int(c.backlog)
		if float64(unserviced) < c.backlog {
			unserviced++
		}
		if drop := len(c.pending) - unserviced; drop > 0 {
			c.pending = append(c.pending[:0], c.pending[drop:]...)
		}
	}
}

// trackPending reports whether accepted writes must be tracked for
// crash-time fault injection.
func (c *Controller) trackPending() bool {
	return c.dev.FaultModel().CrashAffectsWPQ()
}

// fail records the first device or protocol error; later errors are
// dropped (the first is the root cause).
func (c *Controller) fail(err error) {
	c.stats.WriteErrors++
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first device or protocol error the controller
// swallowed, nil if none. Torture cells report a non-nil value as a
// failure.
func (c *Controller) Err() error { return c.err }

// HealthState is the controller's media-health state machine, driven by
// the device's finite spare pool: Healthy while spares are plentiful;
// Degraded once the pool falls to its threshold (scrub is throttled and
// stops consuming spares — only retry-exhaustion remaps still draw from
// the pool); ReadOnly when the pool is empty (new writes and epochs are
// refused with a typed *nvm.SpareExhaustedError while reads keep
// verifying). The unlimited legacy pool is always Healthy.
type HealthState int

const (
	HealthHealthy HealthState = iota
	HealthDegraded
	HealthReadOnly
)

// String names the state for stats rendering and JSON summaries.
func (h HealthState) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthReadOnly:
		return "read-only"
	}
	return fmt.Sprintf("HealthState(%d)", int(h))
}

// SpareThreshold is the Degraded boundary: a quarter of the pool,
// at least one line.
func SpareThreshold(total int) int {
	return max(1, total/4)
}

// Health derives the current state from the spare pool. It is a pure
// function of pool occupancy, so crossing a boundary is visible to the
// very next call — the harness's front door for refusing new work.
func (c *Controller) Health() HealthState {
	s := c.dev.SpareStats()
	if !s.Finite() {
		return HealthHealthy
	}
	switch rem := s.Remaining(); {
	case rem <= 0:
		return HealthReadOnly
	case rem <= SpareThreshold(s.Total):
		return HealthDegraded
	}
	return HealthHealthy
}

// readOnly is the hot-path form of Health() == HealthReadOnly.
func (c *Controller) readOnly() bool {
	s := c.dev.SpareStats()
	return s.Finite() && s.Remaining() <= 0
}

// Device returns the fronted NVM device.
func (c *Controller) Device() *nvm.Device { return c.dev }

// Stats returns a copy of the contention counters.
func (c *Controller) Stats() Stats { return c.stats }

func (c *Controller) bankOf(a mem.Addr) int {
	return int(uint64(a) / mem.LineSize % uint64(len(c.readBanks)))
}

// Read services a line read: it returns the current NVM content (with
// forwarding from held drain entries), whether the line was ever
// written, and the completion time including read-queue and bank
// contention.
func (c *Controller) Read(now int64, a mem.Addr) (mem.Line, bool, int64) {
	a = mem.Align(a)
	c.stats.Reads++
	if l, ok := c.heldForward(a); ok {
		// Forward from the WPQ; no bank access needed.
		return l, true, now
	}
	// Read-queue bound: a new read needs a free entry; entries retire at
	// their completion times.
	kept := c.readQ[:0]
	for _, f := range c.readQ {
		if f > now {
			kept = append(kept, f)
		}
	}
	c.readQ = kept
	if len(c.readQ) >= c.cfg.ReadQueue {
		earliest := c.readQ[0]
		for _, f := range c.readQ[1:] {
			if f < earliest {
				earliest = f
			}
		}
		if earliest > now {
			now = earliest
		}
	}
	b := c.bankOf(a)
	start := max(now, c.readBanks[b])
	done := start + c.dev.Timing().ReadCycles
	l, ok := c.dev.Read(a)
	done += c.retryPenalty(a)
	c.readBanks[b] = done
	c.readQ = append(c.readQ, done)
	return l, ok, done
}

// retryPenalty models bounded retry-with-backoff for media read errors:
// each failing attempt is retried after an exponentially growing backoff
// until the device succeeds or the retry budget is exhausted (a
// permanent read error; the content is still returned — the simulator
// has it — but the error is counted, and the fault oracles require the
// count to stay zero under the transient-error model). Returns the extra
// cycles the retries cost. Zero without a fault model.
func (c *Controller) retryPenalty(a mem.Addr) int64 {
	if c.dev.FaultModel() == nil {
		return 0
	}
	var extra int64
	for attempt := 0; c.dev.ReadFails(a, attempt); {
		attempt++
		shift := uint(attempt - 1)
		if shift > 6 {
			shift = 6
		}
		cost := c.dev.Timing().ReadCycles << shift
		c.stats.ReadRetries++
		c.stats.ReadRetryCycles += cost
		extra += cost
		if attempt >= c.cfg.ReadRetryLimit {
			if c.dev.SpareStats().Finite() {
				// Runtime remap: the retry budget is exhausted, so the
				// controller reconstructs the line via ECC and moves it to
				// a spare instead of erroring forever (remap-on-demand).
				// Only an empty pool leaves a permanent error behind.
				if err := c.dev.Remap(a, true); err == nil {
					c.stats.RetryRemapped++
					break
				}
			}
			c.stats.PermanentReadErrors++
			break
		}
	}
	return extra
}

// HostWrite is the host-facing write admission. In read-only
// degradation (spare pool exhausted) new host data is refused — counted
// in RefusedWrites, never silently dropped — while Write, the
// engine-internal path, always completes: metadata maintenance, heals
// and the tail of an already-admitted write-back must finish or they
// would tear state the device has acknowledged. It is the same split a
// worn SSD makes when it goes read-only but keeps its internal
// machinery running. Refusal happens per whole host store, so the
// refused write simply never reaches the media.
func (c *Controller) HostWrite(now int64, a mem.Addr, l mem.Line) int64 {
	if c.readOnly() {
		c.stats.RefusedWrites++
		return now
	}
	return c.Write(now, a, l)
}

// Write enqueues a line write into the WPQ and returns the cycle at
// which the producer obtained a slot (the producer-visible acceptance
// time; service completes in the background). Non-epoch writes are
// durable from acceptance onward, per ADR.
//
// Epoch writes (issued between BeginEpochDrain and EndEpochDrain) are
// held: they occupy slots but are neither serviced nor durable until the
// end signal arrives.
func (c *Controller) Write(now int64, a mem.Addr, l mem.Line) int64 {
	a = mem.Align(a)
	c.stats.Writes++
	c.advance(now)
	if occ := c.backlog + float64(c.heldCount); occ+1 > float64(c.cfg.WriteQueue) {
		// Block until enough backlog drains for one slot. If every slot
		// is a held epoch entry the protocol is broken: the drainer must
		// bound its batch by the WPQ size.
		if c.backlog <= 0 {
			c.fail(fmt.Errorf("%w (%d held)", ErrWPQWedged, c.heldCount))
			return now
		}
		need := occ + 1 - float64(c.cfg.WriteQueue)
		wait := int64(need/c.drainRate() + 0.999999)
		c.stats.WPQFullStalls++
		c.stats.WPQStallCycles += wait
		now += wait
		c.advance(now)
	}
	if c.inDrain {
		c.stats.EpochWrites++
		c.emit(EvEpochHold, a)
		q := c.heldQueue(a)
		*q = append(*q, heldEntry{a, l})
		c.heldCount++
		return now
	}
	c.emit(EvWriteAccept, a)
	if c.sabParks() {
		// Reorder-persist sabotage: the victim write is accepted (and
		// forwarded to readers) but NOT written through — it loses the
		// ADR guarantee and persists only at the next epoch commit.
		// Later writes to the victim line coalesce into the parked slot.
		if c.sabVictim == nil {
			c.sabVictim = &heldEntry{a, l}
			return now
		}
		if c.sabVictim.addr == a {
			c.sabVictim.line = l
			return now
		}
	}
	c.devWrite(a, l) // durable at acceptance (ADR)
	return now
}

// sabParks reports whether the reorder-persist defect is armed and
// still hunting (or holding) its victim.
func (c *Controller) sabParks() bool {
	return c.sabAfter > 0 && !c.sabDone && c.sabCommits >= c.sabAfter
}

// SabotageReorderPersist arms a deliberate persist-ordering defect used
// by the torture harness's guided-mode self-test: the first non-epoch
// write accepted after the afterCommits-th epoch commit silently loses
// its ADR durability guarantee. The write still occupies the WPQ and
// forwards to readers, but it reaches the media only at the NEXT epoch
// commit; a crash before that commit drops it entirely. The defect is
// invisible to any crash point outside the victim-write→next-commit
// window — exactly one persist-ordering edge of the cell's graph — so
// it discriminates guided from evenly spaced crash enumeration.
// Single-shot: once the victim flushes or drops, behavior is nominal.
// Panics when the device carries a fault model, whose crash composition
// assumes nominal WPQ ordering.
func (c *Controller) SabotageReorderPersist(afterCommits int) {
	if c.dev.FaultModel() != nil {
		panic("memctrl: SabotageReorderPersist is incompatible with a fault model")
	}
	c.sabAfter = afterCommits
}

// devWrite services one WPQ entry: the line becomes durable, the fluid
// backlog grows by one, and — under a fault model — the entry is
// remembered until it retires, so a power failure can tear it.
func (c *Controller) devWrite(a mem.Addr, l mem.Line) {
	var old mem.Line
	var oldOk bool
	track := c.trackPending()
	if track {
		old, oldOk = c.dev.Peek(a)
	}
	if err := c.dev.Write(a, l); err != nil {
		c.fail(err)
		return
	}
	c.backlog++
	if track {
		c.wseq++
		c.pending = append(c.pending, pendingWrite{addr: a, line: l, old: old, oldOk: oldOk, seq: c.wseq})
	}
}

// ReadBypass services a metadata or write-path read with pure device
// latency, without reserving a bank slot. The simulator issues such
// reads at future (pipeline-internal) timestamps; reserving banks there
// would make earlier program-order reads queue behind work that has not
// physically started. Metadata bandwidth is a few percent of a bank's
// capacity, so the elision is harmless; core-facing data reads use Read
// and contend normally.
func (c *Controller) ReadBypass(now int64, a mem.Addr) (mem.Line, bool, int64) {
	a = mem.Align(a)
	c.stats.Reads++
	if l, ok := c.heldForward(a); ok {
		return l, true, now
	}
	l, ok := c.dev.Read(a)
	return l, ok, now + c.dev.Timing().ReadCycles + c.retryPenalty(a)
}

// InDrain reports whether a draining window is open.
func (c *Controller) InDrain() bool { return c.inDrain }

// HeldEntries reports how many epoch writes are currently held.
func (c *Controller) HeldEntries() int { return c.heldCount }

// BeginEpochDrain opens the atomic-draining window: subsequent writes
// are tagged as epoch metadata and held in the WPQ. Nesting windows is a
// protocol violation and returns ErrNestedDrain (also recorded sticky).
func (c *Controller) BeginEpochDrain() error {
	if c.inDrain {
		c.fail(ErrNestedDrain)
		return ErrNestedDrain
	}
	if c.readOnly() {
		// Graceful degradation, not a protocol violation: the error is
		// typed and not sticky, so the engine can park the epoch and
		// leave runtime reads verifying. No window opens.
		c.stats.RefusedEpochs++
		return &nvm.SpareExhaustedError{Total: c.dev.SpareStats().Total}
	}
	c.inDrain = true
	c.emit(EvEpochBegin, 0)
	return nil
}

// EndEpochDrain delivers the end signal: every held entry becomes
// durable and is scheduled on the banks. It returns the cycle at which
// the last entry's NVM write completes (background time; producers need
// not wait for it), or ErrNoDrain when no window is open.
//
// The commit point is atomic and single: clearing inDrain is the end
// signal, after which the batch is durable as a whole. Servicing the
// entries — the device/store bookkeeping — happens after that point
// and, when drain sharding is configured, fans the independent subtree
// batches out across the worker pool; shard queues hold disjoint
// address sets, so the fan-out cannot change the final image, the wear
// accounting, or the returned completion time.
func (c *Controller) EndEpochDrain(now int64) (int64, error) {
	if !c.inDrain {
		c.fail(ErrNoDrain)
		return now, ErrNoDrain
	}
	c.inDrain = false // the atomic commit point: the epoch is now durable
	c.emit(EvEpochCommit, 0)
	c.advance(now)
	if c.drainWorkers > 1 && c.heldCount > 1 && !c.trackPending() {
		// Flatten the shard queues in shard order and service the whole
		// batch through the device's parallel path. Accounting stays
		// serial inside WriteBatch; only store inserts fan out.
		addrs := make([]mem.Addr, 0, c.heldCount)
		lines := make([]mem.Line, 0, c.heldCount)
		for _, q := range c.held {
			for _, h := range q {
				addrs = append(addrs, h.addr)
				lines = append(lines, h.line)
				c.emit(EvADRFlush, h.addr)
			}
		}
		errs := c.dev.WriteBatch(addrs, lines, c.drainWorkers)
		for _, err := range errs {
			c.fail(err)
		}
		c.backlog += float64(len(addrs) - len(errs))
	} else {
		for _, q := range c.held {
			for _, h := range q {
				c.emit(EvADRFlush, h.addr)
				c.devWrite(h.addr, h.line)
			}
		}
	}
	for i := range c.held {
		c.held[i] = c.held[i][:0]
	}
	c.heldCount = 0
	if c.sabVictim != nil {
		// The reorder-persist victim finally reaches the media: its
		// durability was delayed past this commit instead of holding at
		// acceptance, which is the injected ordering bug.
		v := *c.sabVictim
		c.sabVictim = nil
		c.sabDone = true
		c.devWrite(v.addr, v.line)
	}
	c.sabCommits++
	return now + int64(c.backlog/c.drainRate()), nil
}

// Scrub runs one scrubbing pass over the device's weak lines: each is
// read and rewritten in place (re-rolling its cell state) until it holds
// stable data, up to eight rewrites; a line still weak after that is
// remapped to a spare and exempted. On the unlimited pool the pass
// guarantees no weak line survives it, which the read-error-bounded-
// retry oracle asserts. A finite pool makes the pass health-aware:
// Degraded throttles it (two rewrites, no spare-consuming give-ups —
// remaining spares are reserved for retry-exhaustion remaps) and
// ReadOnly skips it entirely, so weak survivors are then expected. It
// returns the cycle at which the scrub writes were accepted. A no-op
// without a fault model.
func (c *Controller) Scrub(now int64) int64 {
	dev := c.dev
	if dev.FaultModel() == nil {
		return now
	}
	if c.Health() == HealthReadOnly {
		return now
	}
	for _, a := range dev.WeakLines() {
		limit := 8
		if c.Health() != HealthHealthy {
			limit = 2
		}
		healed := false
		for i := 0; i < limit; i++ {
			l, ok := dev.Peek(a)
			if !ok {
				healed = true
				break
			}
			now = c.Write(now, a, l)
			c.stats.ScrubbedLines++
			if !dev.LineWeak(a) {
				healed = true
				break
			}
		}
		if !healed && c.Health() == HealthHealthy {
			if err := dev.Remap(a, true); err == nil {
				c.stats.ScrubRemapped++
			}
		}
	}
	return now
}

// Crash applies power-failure semantics: serviceable WPQ entries are
// already durable (ADR flushes them with backup power), while held
// epoch entries that never saw the end signal are dropped, leaving the
// NVM Merkle tree in its previous consistent state. The controller is
// left empty and idle.
//
// Under a fault model the ADR guarantee weakens: only the first
// ADRBudget unserviced entries flush whole; later entries tear at
// 8-byte granularity or drop, held entries tear instead of vanishing
// cleanly, and StuckLines written lines fail permanently. The damage is
// recorded in a FaultLog (see TakeFaultLog) whose Suspects manifest —
// the addresses of every in-flight or held entry — is the only part
// recovery may consult.
func (c *Controller) Crash() {
	if c.dev.FaultModel().Enabled() {
		c.crashFaults()
	}
	c.stats.DroppedOnCrash += uint64(c.heldCount)
	if c.sabVictim != nil {
		// The parked reorder-persist victim never reached the media: the
		// injected defect loses it exactly as a real ordering bug would.
		c.sabVictim = nil
		c.sabDone = true
	}
	for i := range c.held {
		c.held[i] = c.held[i][:0]
	}
	c.heldCount = 0
	c.pending = nil
	c.inDrain = false
	c.backlog = 0
	c.backlogUpd = 0
	for i := range c.readBanks {
		c.readBanks[i] = 0
	}
}

// crashFaults injects the fault model's power-failure damage and builds
// the fault log.
func (c *Controller) crashFaults() {
	fm := c.dev.FaultModel()
	log := &nvm.FaultLog{}

	// Partial ADR drain: the first K unserviced entries flush whole
	// (they are already durable — acceptance wrote them through); the
	// rest tear or drop. Damage is applied per address in FIFO order so
	// overlapping writes compose word-by-word like real media.
	victims := c.pending
	if fm.ADRBudget > 0 && len(victims) > fm.ADRBudget {
		log.Flushed = fm.ADRBudget
		victims = victims[fm.ADRBudget:]
	} else if fm.ADRBudget > 0 {
		log.Flushed = len(victims)
		victims = nil
	} else {
		// Unbounded budget: every serviced entry survives whole.
		log.Flushed = len(victims)
		victims = nil
	}

	// The suspects manifest: the lines the ADR flush FAILED to service —
	// the entries past the energy budget and everything held without an
	// end signal. Real hardware knows exactly this (the flush pointer
	// stops, and NVDIMM SMART reports the dirty shutdown); entries it
	// flushed whole are durable and need no suspicion. The manifest is
	// persisted first (a few hundred bytes, well inside any budget), so
	// recovery can distinguish crash loss from tampering.
	seen := map[mem.Addr]bool{}
	for _, p := range victims {
		if !seen[p.addr] {
			seen[p.addr] = true
			log.Suspects = append(log.Suspects, p.addr)
		}
	}
	held := c.allHeld()
	for _, h := range held {
		if !seen[h.addr] {
			seen[h.addr] = true
			log.Suspects = append(log.Suspects, h.addr)
		}
	}
	slices.Sort(log.Suspects)

	perAddr := map[mem.Addr][]pendingWrite{}
	var order []mem.Addr
	for _, p := range victims {
		if _, ok := perAddr[p.addr]; !ok {
			order = append(order, p.addr)
		}
		perAddr[p.addr] = append(perAddr[p.addr], p)
	}
	for _, a := range order {
		entries := perAddr[a]
		// Start from the media content before the first beyond-budget
		// entry; every earlier write to a flushed or retired entry is
		// already folded into that base.
		cur, present := entries[0].old, entries[0].oldOk
		damaged := false
		for _, p := range entries {
			mask := fm.TearMask(p.addr, p.seq)
			switch {
			case mask == 0:
				c.stats.DroppedByADR++
				log.Events = append(log.Events, nvm.FaultEvent{Addr: p.addr, Kind: "dropped"})
				damaged = true
			case mask == 0xff:
				cur, present = p.line, true
			default:
				base := cur
				if !present {
					base = mem.Line{}
				}
				cur, present = nvm.MixWords(base, p.line, mask), true
				c.stats.TornOnCrash++
				log.Events = append(log.Events, nvm.FaultEvent{Addr: p.addr, Kind: "torn", Mask: mask})
				damaged = true
			}
		}
		if damaged {
			c.dev.ApplyCrashFault(a, cur, present)
		}
	}

	// Held epoch entries never saw the end signal. The idealized device
	// drops them whole (the atomic-draining guarantee); with torn writes
	// enabled, words of them may have leaked to the media.
	if fm.TornWrites {
		for i, h := range held {
			mask := fm.TearMask(h.addr, c.wseq+uint64(i)+1)
			if mask == 0 || mask == 0xff {
				// 0xff would be a fully persisted held entry — the end
				// signal never arrived, so cap the leak below a full line
				// to preserve "held entries are never durable whole".
				log.Events = append(log.Events, nvm.FaultEvent{Addr: h.addr, Kind: "dropped", Held: true})
				continue
			}
			cur, ok := c.dev.Peek(h.addr)
			if !ok {
				cur = mem.Line{}
			}
			c.dev.ApplyCrashFault(h.addr, nvm.MixWords(cur, h.line, mask), true)
			c.stats.TornOnCrash++
			log.Events = append(log.Events, nvm.FaultEvent{Addr: h.addr, Kind: "torn", Mask: mask, Held: true})
		}
	}

	// Stuck-at failures: cells that do not survive the power cycle.
	for _, a := range c.dev.InjectStuckLines() {
		c.stats.StuckOnCrash++
		log.Events = append(log.Events, nvm.FaultEvent{Addr: a, Kind: "stuck"})
	}

	// A remap-record commit caught in flight tears per 64-byte chunk
	// like any line. The table's own checksums turn the damage into a
	// clean rollback at recovery, so the event needs no suspects entry.
	if c.dev.TearNewestRemapSlot() {
		c.stats.RemapTornOnCrash++
	}
	c.faultLog = log
}

// TakeFaultLog returns the fault log of the last Crash and clears it;
// nil when no fault model is active or Crash has not run.
func (c *Controller) TakeFaultLog() *nvm.FaultLog {
	log := c.faultLog
	c.faultLog = nil
	return log
}
