// Package memctrl models the memory controller in front of the NVM
// device: a banked PCM channel, a read queue, a 64-entry write pending
// queue (WPQ) inside the ADR persistence domain, and the start/end
// signalling that cc-NVM's atomic draining protocol layers on top of it.
//
// Timing uses a resource-reservation model: each bank has a next-free
// time, each WPQ slot is occupied until its write is serviced, and
// callers receive completion (for reads) or acceptance (for writes)
// timestamps. The model is deterministic and single-threaded, matching
// the trace-driven simulator.
//
// ADR semantics: a write accepted into the WPQ is durable — on a power
// failure, residual WPQ entries are flushed with backup power. The one
// exception is the atomic-draining window: metadata writes issued
// between BeginEpochDrain and EndEpochDrain are held in the WPQ and are
// dropped on a crash that precedes the end signal, which is exactly what
// keeps the Merkle tree in NVM consistent.
package memctrl

import (
	"fmt"

	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

// Config sizes the controller. Zero values select the paper's setup.
type Config struct {
	Banks      int // parallel PCM banks (default 24)
	ReadQueue  int // read queue entries (default 32)
	WriteQueue int // WPQ entries (default 64)
}

func (c *Config) fill() {
	if c.Banks == 0 {
		c.Banks = 24
	}
	if c.ReadQueue == 0 {
		c.ReadQueue = 32
	}
	if c.WriteQueue == 0 {
		c.WriteQueue = 64
	}
}

// Stats reports controller-level contention.
type Stats struct {
	Reads          uint64
	Writes         uint64
	WPQFullStalls  uint64 // writes that found the WPQ full
	WPQStallCycles int64  // cycles producers spent waiting for a slot
	EpochWrites    uint64 // writes issued inside a draining window
	DroppedOnCrash uint64 // held epoch entries discarded by a crash
}

type heldEntry struct {
	addr mem.Addr
	line mem.Line
}

// Controller fronts one NVM device.
//
// Reads are prioritized over buffered writes, as in real memory
// controllers: banks keep a read timeline, while the WPQ drains as a
// fluid backlog at the aggregate write bandwidth (Banks lines per
// WriteCycles). A read therefore never waits behind buffered writes;
// write pressure reaches producers only through WPQ backpressure — a
// full queue blocks the writer until enough backlog has drained.
type Controller struct {
	cfg       Config
	dev       *nvm.Device
	readBanks []int64 // next-free cycle per bank, read stream
	readQ     []int64 // completion times of in-flight reads (queue bound)

	backlog    float64 // WPQ occupancy being drained (lines)
	backlogUpd int64   // cycle of the last backlog update
	held       []heldEntry
	inDrain    bool
	stats      Stats
}

// New builds a controller over dev.
func New(cfg Config, dev *nvm.Device) *Controller {
	cfg.fill()
	return &Controller{
		cfg:       cfg,
		dev:       dev,
		readBanks: make([]int64, cfg.Banks),
	}
}

// drainRate is the aggregate write bandwidth in lines per cycle.
func (c *Controller) drainRate() float64 {
	return float64(c.cfg.Banks) / float64(c.dev.Timing().WriteCycles)
}

// advance drains the write backlog up to cycle now. Callers may present
// out-of-order (pipeline-internal) timestamps; only forward progress
// drains.
func (c *Controller) advance(now int64) {
	if now > c.backlogUpd {
		c.backlog -= float64(now-c.backlogUpd) * c.drainRate()
		if c.backlog < 0 {
			c.backlog = 0
		}
		c.backlogUpd = now
	}
}

// Device returns the fronted NVM device.
func (c *Controller) Device() *nvm.Device { return c.dev }

// Stats returns a copy of the contention counters.
func (c *Controller) Stats() Stats { return c.stats }

func (c *Controller) bankOf(a mem.Addr) int {
	return int(uint64(a) / mem.LineSize % uint64(len(c.readBanks)))
}

// Read services a line read: it returns the current NVM content (with
// forwarding from held drain entries), whether the line was ever
// written, and the completion time including read-queue and bank
// contention.
func (c *Controller) Read(now int64, a mem.Addr) (mem.Line, bool, int64) {
	a = mem.Align(a)
	c.stats.Reads++
	for _, h := range c.held {
		if h.addr == a {
			// Forward from the WPQ; no bank access needed.
			return h.line, true, now
		}
	}
	// Read-queue bound: a new read needs a free entry; entries retire at
	// their completion times.
	kept := c.readQ[:0]
	for _, f := range c.readQ {
		if f > now {
			kept = append(kept, f)
		}
	}
	c.readQ = kept
	if len(c.readQ) >= c.cfg.ReadQueue {
		earliest := c.readQ[0]
		for _, f := range c.readQ[1:] {
			if f < earliest {
				earliest = f
			}
		}
		if earliest > now {
			now = earliest
		}
	}
	b := c.bankOf(a)
	start := max64(now, c.readBanks[b])
	done := start + c.dev.Timing().ReadCycles
	c.readBanks[b] = done
	c.readQ = append(c.readQ, done)
	l, ok := c.dev.Read(a)
	return l, ok, done
}

// Write enqueues a line write into the WPQ and returns the cycle at
// which the producer obtained a slot (the producer-visible acceptance
// time; service completes in the background). Non-epoch writes are
// durable from acceptance onward, per ADR.
//
// Epoch writes (issued between BeginEpochDrain and EndEpochDrain) are
// held: they occupy slots but are neither serviced nor durable until the
// end signal arrives.
func (c *Controller) Write(now int64, a mem.Addr, l mem.Line) int64 {
	a = mem.Align(a)
	c.stats.Writes++
	c.advance(now)
	if occ := c.backlog + float64(len(c.held)); occ+1 > float64(c.cfg.WriteQueue) {
		// Block until enough backlog drains for one slot. If every slot
		// is a held epoch entry the protocol is broken: the drainer must
		// bound its batch by the WPQ size.
		if c.backlog <= 0 {
			panic(fmt.Sprintf("memctrl: WPQ wedged with %d held epoch entries", len(c.held)))
		}
		need := occ + 1 - float64(c.cfg.WriteQueue)
		wait := int64(need/c.drainRate() + 0.999999)
		c.stats.WPQFullStalls++
		c.stats.WPQStallCycles += wait
		now += wait
		c.advance(now)
	}
	if c.inDrain {
		c.stats.EpochWrites++
		c.held = append(c.held, heldEntry{a, l})
		return now
	}
	c.backlog++
	c.dev.Write(a, l) // durable at acceptance (ADR)
	return now
}

// ReadBypass services a metadata or write-path read with pure device
// latency, without reserving a bank slot. The simulator issues such
// reads at future (pipeline-internal) timestamps; reserving banks there
// would make earlier program-order reads queue behind work that has not
// physically started. Metadata bandwidth is a few percent of a bank's
// capacity, so the elision is harmless; core-facing data reads use Read
// and contend normally.
func (c *Controller) ReadBypass(now int64, a mem.Addr) (mem.Line, bool, int64) {
	a = mem.Align(a)
	c.stats.Reads++
	for _, h := range c.held {
		if h.addr == a {
			return h.line, true, now
		}
	}
	l, ok := c.dev.Read(a)
	return l, ok, now + c.dev.Timing().ReadCycles
}

// InDrain reports whether a draining window is open.
func (c *Controller) InDrain() bool { return c.inDrain }

// HeldEntries reports how many epoch writes are currently held.
func (c *Controller) HeldEntries() int { return len(c.held) }

// BeginEpochDrain opens the atomic-draining window: subsequent writes
// are tagged as epoch metadata and held in the WPQ.
func (c *Controller) BeginEpochDrain() {
	if c.inDrain {
		panic("memctrl: nested BeginEpochDrain")
	}
	c.inDrain = true
}

// EndEpochDrain delivers the end signal: every held entry becomes
// durable and is scheduled on the banks. It returns the cycle at which
// the last entry's NVM write completes (background time; producers need
// not wait for it).
func (c *Controller) EndEpochDrain(now int64) int64 {
	if !c.inDrain {
		panic("memctrl: EndEpochDrain without BeginEpochDrain")
	}
	c.inDrain = false
	c.advance(now)
	for _, h := range c.held {
		c.backlog++
		c.dev.Write(h.addr, h.line)
	}
	c.held = c.held[:0]
	return now + int64(c.backlog/c.drainRate())
}

// Crash applies power-failure semantics: serviceable WPQ entries are
// already durable (ADR flushes them with backup power), while held
// epoch entries that never saw the end signal are dropped, leaving the
// NVM Merkle tree in its previous consistent state. The controller is
// left empty and idle.
func (c *Controller) Crash() {
	c.stats.DroppedOnCrash += uint64(len(c.held))
	c.held = c.held[:0]
	c.inDrain = false
	c.backlog = 0
	c.backlogUpd = 0
	for i := range c.readBanks {
		c.readBanks[i] = 0
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
