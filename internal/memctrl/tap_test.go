package memctrl

import (
	"reflect"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

// TestEventTapStream pins the tap's event taxonomy against a scripted
// write/drain sequence: non-epoch accepts, the begin signal, held
// entries, the commit point, and the post-commit ADR flushes in order.
func TestEventTapStream(t *testing.T) {
	c := ctrl(t, Config{})
	var got []Event
	c.SetEventTap(func(ev Event) { got = append(got, ev) })

	c.Write(0, 0, line(1))
	if err := c.BeginEpochDrain(); err != nil {
		t.Fatal(err)
	}
	c.Write(0, 64, line(2))
	c.Write(0, 128, line(3))
	if _, err := c.EndEpochDrain(10); err != nil {
		t.Fatal(err)
	}
	c.Write(20, 192, line(4))

	want := []Event{
		{EvWriteAccept, 0},
		{EvEpochBegin, 0},
		{EvEpochHold, 64},
		{EvEpochHold, 128},
		{EvEpochCommit, 0},
		{EvADRFlush, 64},
		{EvADRFlush, 128},
		{EvWriteAccept, 192},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stream = %v, want %v", got, want)
	}
}

// TestEventTapObservational proves installing a tap changes nothing:
// timings, stats and device content match a tapless twin run.
func TestEventTapObservational(t *testing.T) {
	run := func(tap bool) (int64, Stats, mem.Line) {
		c := ctrl(t, Config{Banks: 1})
		if tap {
			c.SetEventTap(func(Event) {})
		}
		now := c.Write(0, 0, line(9))
		c.BeginEpochDrain()
		c.Write(now, 64, line(8))
		end, _ := c.EndEpochDrain(now + 5)
		got, _ := c.Device().Peek(64)
		return end, c.Stats(), got
	}
	e1, s1, l1 := run(false)
	e2, s2, l2 := run(true)
	if e1 != e2 || s1 != s2 || l1 != l2 {
		t.Fatalf("tap changed behavior: (%d,%+v,%v) vs (%d,%+v,%v)", e1, s1, l1, e2, s2, l2)
	}
}

// drainEpoch runs one empty-bodied epoch window so the sabotage commit
// counter advances.
func drainEpoch(t *testing.T, c *Controller, now int64) {
	t.Helper()
	if err := c.BeginEpochDrain(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EndEpochDrain(now); err != nil {
		t.Fatal(err)
	}
}

// TestSabotageReorderPersist exercises the injected ordering defect end
// to end: the victim write is parked (absent from media, forwarded to
// readers), persists at the next commit, and behavior is nominal after.
func TestSabotageReorderPersist(t *testing.T) {
	c := ctrl(t, Config{})
	c.SabotageReorderPersist(1)

	// Before the arming commit the defect is dormant.
	c.Write(0, 0, line(1))
	if _, ok := c.Device().Peek(0); !ok {
		t.Fatal("pre-arm write must be durable at acceptance")
	}
	drainEpoch(t, c, 10)

	// First non-epoch write after commit #1 is the victim: parked.
	c.Write(20, 64, line(2))
	if _, ok := c.Device().Peek(64); ok {
		t.Fatal("victim write reached the media despite the sabotage")
	}
	if got, ok, _ := c.Read(20, 64); !ok || got != line(2) {
		t.Fatal("parked victim must still forward to readers")
	}
	if got, ok, _ := c.ReadBypass(20, 64); !ok || got != line(2) {
		t.Fatal("parked victim must forward on the bypass path too")
	}

	// A later write to the victim line coalesces into the parked slot;
	// writes to other lines proceed normally.
	c.Write(30, 64, line(3))
	if _, ok := c.Device().Peek(64); ok {
		t.Fatal("coalesced victim write must stay parked")
	}
	c.Write(30, 128, line(4))
	if _, ok := c.Device().Peek(128); !ok {
		t.Fatal("non-victim write must stay durable at acceptance")
	}

	// The next commit finally persists the (coalesced) victim.
	drainEpoch(t, c, 40)
	if got, ok := c.Device().Peek(64); !ok || got != line(3) {
		t.Fatalf("victim not persisted at the next commit: %v, %v", got, ok)
	}

	// Single-shot: the defect never fires again.
	c.Write(50, 192, line(5))
	if _, ok := c.Device().Peek(192); !ok {
		t.Fatal("post-defect write must be durable at acceptance")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("controller error: %v", err)
	}
}

// TestSabotageReorderPersistDropsOnCrash: a crash inside the
// victim-write→next-commit window loses the victim entirely.
func TestSabotageReorderPersistDropsOnCrash(t *testing.T) {
	c := ctrl(t, Config{})
	c.SabotageReorderPersist(1)
	drainEpoch(t, c, 10)
	c.Write(20, 64, line(2))
	c.Crash()
	if _, ok := c.Device().Peek(64); ok {
		t.Fatal("parked victim must be lost at a crash before the next commit")
	}
}

// TestSabotageRefusesFaultModel: the defect is incompatible with the
// media fault model and must refuse loudly rather than corrupt its
// crash composition.
func TestSabotageRefusesFaultModel(t *testing.T) {
	dev := nvm.NewDevice(mem.MustLayout(64<<20), nvm.Timing{ReadCycles: 100, WriteCycles: 400})
	dev.SetFaultModel(&nvm.FaultModel{Seed: 1, TornWrites: true})
	c := New(Config{}, dev)
	defer func() {
		if recover() == nil {
			t.Fatal("SabotageReorderPersist must panic under a fault model")
		}
	}()
	c.SabotageReorderPersist(1)
}
