package memctrl

import (
	"errors"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

func ctrl(t testing.TB, cfg Config) *Controller {
	t.Helper()
	dev := nvm.NewDevice(mem.MustLayout(64<<20), nvm.Timing{ReadCycles: 100, WriteCycles: 400})
	return New(cfg, dev)
}

func line(b byte) mem.Line {
	var l mem.Line
	l[0] = b
	return l
}

func TestReadTiming(t *testing.T) {
	c := ctrl(t, Config{Banks: 1})
	_, _, done := c.Read(10, 0)
	if done != 110 {
		t.Fatalf("read done at %d, want 110", done)
	}
	// Second read on the same single bank queues behind the first.
	_, _, done2 := c.Read(10, 64)
	if done2 != 210 {
		t.Fatalf("second read done at %d, want 210", done2)
	}
}

func TestBankParallelism(t *testing.T) {
	c := ctrl(t, Config{Banks: 2})
	_, _, d0 := c.Read(0, 0)  // bank 0
	_, _, d1 := c.Read(0, 64) // bank 1
	if d0 != 100 || d1 != 100 {
		t.Fatalf("parallel banks: done = %d,%d, want 100,100", d0, d1)
	}
}

func TestWriteDurableAtAcceptance(t *testing.T) {
	c := ctrl(t, Config{})
	accept := c.Write(5, 0, line(7))
	if accept != 5 {
		t.Fatalf("accept = %d, want 5 (free slot)", accept)
	}
	got, ok := c.Device().Peek(0)
	if !ok || got != line(7) {
		t.Fatal("ADR write not durable at acceptance")
	}
}

func TestWPQBackpressure(t *testing.T) {
	c := ctrl(t, Config{Banks: 1, WriteQueue: 2})
	// Two writes fill the queue; service times 400 and 800 on one bank.
	c.Write(0, 0, line(1))
	c.Write(0, 64, line(2))
	accept := c.Write(0, 128, line(3))
	if accept != 400 {
		t.Fatalf("third write accepted at %d, want 400 (first retire)", accept)
	}
	st := c.Stats()
	if st.WPQFullStalls != 1 || st.WPQStallCycles != 400 {
		t.Fatalf("stall stats = %+v", st)
	}
}

func TestWPQSlotsReclaimedByTime(t *testing.T) {
	c := ctrl(t, Config{Banks: 1, WriteQueue: 1})
	c.Write(0, 0, line(1)) // finishes at 400
	accept := c.Write(500, 64, line(2))
	if accept != 500 {
		t.Fatalf("accept = %d, want 500 (slot already free)", accept)
	}
	if c.Stats().WPQFullStalls != 0 {
		t.Fatal("unexpected stall")
	}
}

func TestEpochDrainHoldsUntilEnd(t *testing.T) {
	c := ctrl(t, Config{Banks: 1})
	c.BeginEpochDrain()
	c.Write(0, 0, line(9))
	if _, ok := c.Device().Peek(0); ok {
		t.Fatal("held epoch write became durable before end signal")
	}
	if c.HeldEntries() != 1 {
		t.Fatalf("held = %d, want 1", c.HeldEntries())
	}
	last, err := c.EndEpochDrain(100)
	if err != nil {
		t.Fatal(err)
	}
	if last != 500 {
		t.Fatalf("drain background completion = %d, want 500", last)
	}
	got, ok := c.Device().Peek(0)
	if !ok || got != line(9) {
		t.Fatal("epoch write not durable after end signal")
	}
}

func TestEpochDrainForwarding(t *testing.T) {
	c := ctrl(t, Config{})
	c.Write(0, 0, line(1))
	c.BeginEpochDrain()
	c.Write(10, 0, line(2))
	got, ok, done := c.Read(20, 0)
	if !ok || got != line(2) {
		t.Fatal("read did not forward held entry")
	}
	if done != 20 {
		t.Fatalf("forwarded read took bank time: done=%d", done)
	}
	c.EndEpochDrain(30)
}

func TestCrashDropsHeldEntriesOnly(t *testing.T) {
	c := ctrl(t, Config{})
	c.Write(0, 0, line(1)) // durable
	c.BeginEpochDrain()
	c.Write(10, 64, line(2)) // held
	c.Crash()
	if _, ok := c.Device().Peek(64); ok {
		t.Fatal("held entry survived crash without end signal")
	}
	if got, ok := c.Device().Peek(0); !ok || got != line(1) {
		t.Fatal("durable entry lost in crash")
	}
	if c.Stats().DroppedOnCrash != 1 {
		t.Fatalf("DroppedOnCrash = %d, want 1", c.Stats().DroppedOnCrash)
	}
	if c.InDrain() {
		t.Fatal("controller still in drain after crash")
	}
}

func TestCrashAfterEndKeepsEntries(t *testing.T) {
	c := ctrl(t, Config{})
	c.BeginEpochDrain()
	c.Write(0, 64, line(2))
	c.EndEpochDrain(10)
	c.Crash()
	if got, ok := c.Device().Peek(64); !ok || got != line(2) {
		t.Fatal("end-signalled entry lost in crash (ADR should flush it)")
	}
}

func TestNestedBeginReturnsTypedError(t *testing.T) {
	c := ctrl(t, Config{})
	if err := c.BeginEpochDrain(); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginEpochDrain(); !errors.Is(err, ErrNestedDrain) {
		t.Fatalf("nested BeginEpochDrain returned %v, want ErrNestedDrain", err)
	}
	if !errors.Is(c.Err(), ErrNestedDrain) {
		t.Fatalf("sticky Err() = %v, want ErrNestedDrain", c.Err())
	}
}

func TestEndWithoutBeginReturnsTypedError(t *testing.T) {
	c := ctrl(t, Config{})
	if _, err := c.EndEpochDrain(0); !errors.Is(err, ErrNoDrain) {
		t.Fatalf("EndEpochDrain without begin returned %v, want ErrNoDrain", err)
	}
}

func TestWedgedWPQReturnsTypedError(t *testing.T) {
	c := ctrl(t, Config{WriteQueue: 1})
	c.BeginEpochDrain()
	c.Write(0, 0, line(1))
	c.Write(0, 64, line(2))
	if !errors.Is(c.Err(), ErrWPQWedged) {
		t.Fatalf("wedged WPQ recorded %v, want ErrWPQWedged", c.Err())
	}
}

func TestEpochWriteCounting(t *testing.T) {
	c := ctrl(t, Config{})
	c.Write(0, 0, line(1))
	c.BeginEpochDrain()
	c.Write(0, 64, line(2))
	c.Write(0, 128, line(3))
	c.EndEpochDrain(0)
	st := c.Stats()
	if st.Writes != 3 || st.EpochWrites != 2 {
		t.Fatalf("stats = %+v, want 3 writes / 2 epoch", st)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := ctrl(t, Config{})
	if len(c.readBanks) != 24 || c.cfg.WriteQueue != 64 || c.cfg.ReadQueue != 32 {
		t.Fatalf("defaults not applied: %+v banks=%d", c.cfg, len(c.readBanks))
	}
}

func TestFluidBacklogProperty(t *testing.T) {
	// Property: acceptance never precedes the request, occupancy never
	// exceeds the queue, and forward progress always happens.
	c := ctrl(t, Config{Banks: 2, WriteQueue: 8})
	now := int64(0)
	rng := int64(12345)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		a := mem.Addr((rng>>33)&0xFFFF) * 64
		if a >= mem.Addr(32<<20) {
			a %= 32 << 20
		}
		accept := c.Write(now, a, line(byte(i)))
		if accept < now {
			t.Fatalf("acceptance %d before request %d", accept, now)
		}
		if c.backlog > float64(c.cfg.WriteQueue) {
			t.Fatalf("backlog %v exceeds queue %d", c.backlog, c.cfg.WriteQueue)
		}
		now = accept + rng%7&3
	}
}

func TestReadBypassForwardsHeld(t *testing.T) {
	c := ctrl(t, Config{})
	c.BeginEpochDrain()
	c.Write(0, 64, line(5))
	l, ok, done := c.ReadBypass(10, 64)
	if !ok || l != line(5) || done != 10 {
		t.Fatal("bypass read did not forward held entry instantly")
	}
	c.EndEpochDrain(20)
	// Normal bypass charges pure latency.
	_, _, done = c.ReadBypass(100, 64)
	if done != 200 {
		t.Fatalf("bypass read done at %d, want 200", done)
	}
}

// TestEndEpochDrainRounding pins the fluid-drain completion semantics:
// when the backlog divides the drain rate exactly, the returned cycle is
// exactly backlog*WriteCycles/Banks; when it does not, the completion
// truncates to the cycle at which less than one line remains in flight
// (advance's ceiling keeps that final sub-line entry occupying a WPQ
// slot until it is fully pushed, so nothing retires early).
func TestEndEpochDrainRounding(t *testing.T) {
	// Exact division: 2 lines at 1 line per 400 cycles.
	c := ctrl(t, Config{Banks: 1})
	c.BeginEpochDrain()
	c.Write(0, 0, line(1))
	c.Write(0, 64, line(2))
	done, err := c.EndEpochDrain(0)
	if err != nil {
		t.Fatal(err)
	}
	if done != 800 {
		t.Fatalf("exact drain done at %d, want 800", done)
	}

	// Fractional division: 5 lines at 3 lines per 400 cycles is
	// 666.67 cycles; the completion truncates, and the final sub-line
	// must still hold its slot at that cycle.
	c = ctrl(t, Config{Banks: 3})
	c.BeginEpochDrain()
	for i := 0; i < 5; i++ {
		c.Write(0, mem.Addr(i*64), line(byte(i+1)))
	}
	done, err = c.EndEpochDrain(0)
	if err != nil {
		t.Fatal(err)
	}
	rate := 3.0 / 400.0
	if lo := float64(done) * rate; lo < 4 {
		t.Fatalf("drain done at %d covers only %.3f of 5 lines", done, lo)
	}
	if hi := float64(done+1) * rate; hi < 5 {
		t.Fatalf("drain done at %d: even the next cycle drains only %.3f of 5 lines", done, hi)
	}
	if float64(done)*rate >= 5 {
		t.Fatalf("drain done at %d over-waits the fluid backlog", done)
	}
}

// TestCrashMidDrainAfterPartialEnd crashes while the backlog of an
// already end-signalled epoch is still draining, under an ADR energy
// budget smaller than the backlog: the first ADRBudget entries flush
// whole, the rest drop, and the suspects manifest names exactly the
// dropped lines.
func TestCrashMidDrainAfterPartialEnd(t *testing.T) {
	dev := nvm.NewDevice(mem.MustLayout(64<<20), nvm.Timing{ReadCycles: 100, WriteCycles: 400})
	dev.SetFaultModel(&nvm.FaultModel{Seed: 7, ADRBudget: 2})
	c := New(Config{Banks: 1}, dev)

	// Durable base content, fully serviced long before the drain.
	for i := 0; i < 4; i++ {
		c.Write(0, mem.Addr(i*64), line(byte(10+i)))
	}
	t0 := int64(1 << 20) // far past the base writes' service time
	if err := c.BeginEpochDrain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c.Write(t0, mem.Addr(i*64), line(byte(20+i)))
	}
	if _, err := c.EndEpochDrain(t0); err != nil {
		t.Fatal(err)
	}
	c.Crash() // power fails before the four-entry backlog drains

	for i := 0; i < 2; i++ {
		if got, _ := c.Device().Peek(mem.Addr(i * 64)); got != line(byte(20+i)) {
			t.Fatalf("entry %d inside the ADR budget did not flush", i)
		}
	}
	for i := 2; i < 4; i++ {
		if got, _ := c.Device().Peek(mem.Addr(i * 64)); got != line(byte(10+i)) {
			t.Fatalf("entry %d past the ADR budget did not revert to its pre-drain content", i)
		}
	}
	log := c.TakeFaultLog()
	if log == nil || log.Flushed != 2 {
		t.Fatalf("fault log = %+v, want Flushed 2", log)
	}
	if len(log.Suspects) != 2 || log.Suspects[0] != 128 || log.Suspects[1] != 192 {
		t.Fatalf("suspects = %v, want the two dropped lines [128 192]", log.Suspects)
	}
	if got := c.Stats().DroppedByADR; got != 2 {
		t.Fatalf("DroppedByADR = %d, want 2", got)
	}
}
