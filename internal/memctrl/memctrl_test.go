package memctrl

import (
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
)

func ctrl(t testing.TB, cfg Config) *Controller {
	t.Helper()
	dev := nvm.NewDevice(mem.MustLayout(64<<20), nvm.Timing{ReadCycles: 100, WriteCycles: 400})
	return New(cfg, dev)
}

func line(b byte) mem.Line {
	var l mem.Line
	l[0] = b
	return l
}

func TestReadTiming(t *testing.T) {
	c := ctrl(t, Config{Banks: 1})
	_, _, done := c.Read(10, 0)
	if done != 110 {
		t.Fatalf("read done at %d, want 110", done)
	}
	// Second read on the same single bank queues behind the first.
	_, _, done2 := c.Read(10, 64)
	if done2 != 210 {
		t.Fatalf("second read done at %d, want 210", done2)
	}
}

func TestBankParallelism(t *testing.T) {
	c := ctrl(t, Config{Banks: 2})
	_, _, d0 := c.Read(0, 0)  // bank 0
	_, _, d1 := c.Read(0, 64) // bank 1
	if d0 != 100 || d1 != 100 {
		t.Fatalf("parallel banks: done = %d,%d, want 100,100", d0, d1)
	}
}

func TestWriteDurableAtAcceptance(t *testing.T) {
	c := ctrl(t, Config{})
	accept := c.Write(5, 0, line(7))
	if accept != 5 {
		t.Fatalf("accept = %d, want 5 (free slot)", accept)
	}
	got, ok := c.Device().Peek(0)
	if !ok || got != line(7) {
		t.Fatal("ADR write not durable at acceptance")
	}
}

func TestWPQBackpressure(t *testing.T) {
	c := ctrl(t, Config{Banks: 1, WriteQueue: 2})
	// Two writes fill the queue; service times 400 and 800 on one bank.
	c.Write(0, 0, line(1))
	c.Write(0, 64, line(2))
	accept := c.Write(0, 128, line(3))
	if accept != 400 {
		t.Fatalf("third write accepted at %d, want 400 (first retire)", accept)
	}
	st := c.Stats()
	if st.WPQFullStalls != 1 || st.WPQStallCycles != 400 {
		t.Fatalf("stall stats = %+v", st)
	}
}

func TestWPQSlotsReclaimedByTime(t *testing.T) {
	c := ctrl(t, Config{Banks: 1, WriteQueue: 1})
	c.Write(0, 0, line(1)) // finishes at 400
	accept := c.Write(500, 64, line(2))
	if accept != 500 {
		t.Fatalf("accept = %d, want 500 (slot already free)", accept)
	}
	if c.Stats().WPQFullStalls != 0 {
		t.Fatal("unexpected stall")
	}
}

func TestEpochDrainHoldsUntilEnd(t *testing.T) {
	c := ctrl(t, Config{Banks: 1})
	c.BeginEpochDrain()
	c.Write(0, 0, line(9))
	if _, ok := c.Device().Peek(0); ok {
		t.Fatal("held epoch write became durable before end signal")
	}
	if c.HeldEntries() != 1 {
		t.Fatalf("held = %d, want 1", c.HeldEntries())
	}
	last := c.EndEpochDrain(100)
	if last != 500 {
		t.Fatalf("drain background completion = %d, want 500", last)
	}
	got, ok := c.Device().Peek(0)
	if !ok || got != line(9) {
		t.Fatal("epoch write not durable after end signal")
	}
}

func TestEpochDrainForwarding(t *testing.T) {
	c := ctrl(t, Config{})
	c.Write(0, 0, line(1))
	c.BeginEpochDrain()
	c.Write(10, 0, line(2))
	got, ok, done := c.Read(20, 0)
	if !ok || got != line(2) {
		t.Fatal("read did not forward held entry")
	}
	if done != 20 {
		t.Fatalf("forwarded read took bank time: done=%d", done)
	}
	c.EndEpochDrain(30)
}

func TestCrashDropsHeldEntriesOnly(t *testing.T) {
	c := ctrl(t, Config{})
	c.Write(0, 0, line(1)) // durable
	c.BeginEpochDrain()
	c.Write(10, 64, line(2)) // held
	c.Crash()
	if _, ok := c.Device().Peek(64); ok {
		t.Fatal("held entry survived crash without end signal")
	}
	if got, ok := c.Device().Peek(0); !ok || got != line(1) {
		t.Fatal("durable entry lost in crash")
	}
	if c.Stats().DroppedOnCrash != 1 {
		t.Fatalf("DroppedOnCrash = %d, want 1", c.Stats().DroppedOnCrash)
	}
	if c.InDrain() {
		t.Fatal("controller still in drain after crash")
	}
}

func TestCrashAfterEndKeepsEntries(t *testing.T) {
	c := ctrl(t, Config{})
	c.BeginEpochDrain()
	c.Write(0, 64, line(2))
	c.EndEpochDrain(10)
	c.Crash()
	if got, ok := c.Device().Peek(64); !ok || got != line(2) {
		t.Fatal("end-signalled entry lost in crash (ADR should flush it)")
	}
}

func TestNestedBeginPanics(t *testing.T) {
	c := ctrl(t, Config{})
	c.BeginEpochDrain()
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginEpochDrain did not panic")
		}
	}()
	c.BeginEpochDrain()
}

func TestEndWithoutBeginPanics(t *testing.T) {
	c := ctrl(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("EndEpochDrain without begin did not panic")
		}
	}()
	c.EndEpochDrain(0)
}

func TestWedgedWPQPanics(t *testing.T) {
	c := ctrl(t, Config{WriteQueue: 1})
	c.BeginEpochDrain()
	c.Write(0, 0, line(1))
	defer func() {
		if recover() == nil {
			t.Fatal("wedged WPQ did not panic")
		}
	}()
	c.Write(0, 64, line(2))
}

func TestEpochWriteCounting(t *testing.T) {
	c := ctrl(t, Config{})
	c.Write(0, 0, line(1))
	c.BeginEpochDrain()
	c.Write(0, 64, line(2))
	c.Write(0, 128, line(3))
	c.EndEpochDrain(0)
	st := c.Stats()
	if st.Writes != 3 || st.EpochWrites != 2 {
		t.Fatalf("stats = %+v, want 3 writes / 2 epoch", st)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := ctrl(t, Config{})
	if len(c.readBanks) != 24 || c.cfg.WriteQueue != 64 || c.cfg.ReadQueue != 32 {
		t.Fatalf("defaults not applied: %+v banks=%d", c.cfg, len(c.readBanks))
	}
}

func TestFluidBacklogProperty(t *testing.T) {
	// Property: acceptance never precedes the request, occupancy never
	// exceeds the queue, and forward progress always happens.
	c := ctrl(t, Config{Banks: 2, WriteQueue: 8})
	now := int64(0)
	rng := int64(12345)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		a := mem.Addr((rng>>33)&0xFFFF) * 64
		if a >= mem.Addr(32<<20) {
			a %= 32 << 20
		}
		accept := c.Write(now, a, line(byte(i)))
		if accept < now {
			t.Fatalf("acceptance %d before request %d", accept, now)
		}
		if c.backlog > float64(c.cfg.WriteQueue) {
			t.Fatalf("backlog %v exceeds queue %d", c.backlog, c.cfg.WriteQueue)
		}
		now = accept + rng%7&3
	}
}

func TestReadBypassForwardsHeld(t *testing.T) {
	c := ctrl(t, Config{})
	c.BeginEpochDrain()
	c.Write(0, 64, line(5))
	l, ok, done := c.ReadBypass(10, 64)
	if !ok || l != line(5) || done != 10 {
		t.Fatal("bypass read did not forward held entry instantly")
	}
	c.EndEpochDrain(20)
	// Normal bypass charges pure latency.
	_, _, done = c.ReadBypass(100, 64)
	if done != 200 {
		t.Fatalf("bypass read done at %d, want 200", done)
	}
}
