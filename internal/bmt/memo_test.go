package bmt

import (
	"math/rand"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// TestTreeMemoizedMatchesUncached drives the Merkle tree with a cached
// and an uncached crypto engine over the same randomized counter
// workload: roots, rebuilt nodes and verification outcomes must be
// identical. This covers the node-HMAC memo end to end, including the
// default-subtree reuse that makes it effective on sparse images.
func TestTreeMemoizedMatchesUncached(t *testing.T) {
	lay := mem.MustLayout(64 << 20)
	cachedTree := New(lay, seccrypto.MustEngine(seccrypto.DefaultKeys()))
	uncachedCry, err := seccrypto.NewEngineUncached(seccrypto.DefaultKeys())
	if err != nil {
		t.Fatal(err)
	}
	goldenTree := New(lay, uncachedCry)

	st := &mem.Store{}
	rng := rand.New(rand.NewSource(7))
	leaves := lay.LevelNodes(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 20; i++ {
			writeCounter(cachedTree, st, uint64(rng.Intn(int(leaves))), 1+rng.Intn(3))
		}
		var counters []mem.Addr
		for _, a := range st.Addrs() {
			if lay.RegionOf(a) == mem.RegionCounter {
				counters = append(counters, a)
			}
		}
		nodes, root := cachedTree.Rebuild(st, counters)
		goldenNodes, goldenRoot := goldenTree.Rebuild(st, counters)
		if root != goldenRoot {
			t.Fatalf("round %d: memoized root diverges from uncached", round)
		}
		if len(nodes) != len(goldenNodes) {
			t.Fatalf("round %d: node count %d vs %d", round, len(nodes), len(goldenNodes))
		}
		for a, n := range nodes {
			if goldenNodes[a] != n {
				t.Fatalf("round %d: node %#x diverges", round, a)
			}
		}
		for a, n := range nodes {
			st.Write(a, n)
		}
		if got := cachedTree.RootNode(st); got != goldenTree.RootNode(st) {
			t.Fatalf("round %d: RootNode diverges", round)
		}
		if bad := cachedTree.VerifyAll(st, root, st.Addrs()); len(bad) != 0 {
			t.Fatalf("round %d: memoized verify flagged %v", round, bad)
		}
		if bad := goldenTree.VerifyAll(st, root, st.Addrs()); len(bad) != 0 {
			t.Fatalf("round %d: uncached verify flagged %v", round, bad)
		}
	}
	if cs := cachedTree.Crypto().CacheStats(); cs.NodeHits == 0 {
		t.Fatalf("tree workload never hit the node memo: %+v", cs)
	}
}
