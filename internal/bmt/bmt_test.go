package bmt

import (
	"math/rand"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

func tree(t testing.TB, capacity uint64) (*Tree, *mem.Store) {
	t.Helper()
	lay := mem.MustLayout(capacity)
	cry := seccrypto.MustEngine(seccrypto.DefaultKeys())
	return New(lay, cry), &mem.Store{}
}

// persistTree writes a full consistent tree for the written counter
// lines in st, returning the root node, by materializing Rebuild output.
func persistTree(tr *Tree, st *mem.Store) mem.Line {
	var counters []mem.Addr
	for _, a := range st.Addrs() {
		if tr.Layout().RegionOf(a) == mem.RegionCounter {
			counters = append(counters, a)
		}
	}
	nodes, root := tr.Rebuild(st, counters)
	for a, n := range nodes {
		st.Write(a, n)
	}
	return root
}

func writeCounter(tr *Tree, st *mem.Store, leaf uint64, bumps int) {
	a := tr.Layout().CounterLineAddr(leaf)
	l, _ := st.Read(a)
	c := seccrypto.DecodeCounterLine(l)
	for i := 0; i < bumps; i++ {
		c.Bump(i % mem.BlocksPerPage)
	}
	st.Write(a, c.Encode())
}

func TestDefaultNodesChain(t *testing.T) {
	tr, _ := tree(t, 64<<20)
	lay := tr.Layout()
	// Each level's default must hold the HMAC of the previous level's
	// default in every slot.
	for k := 1; k <= lay.InternalLevels; k++ {
		for s := 0; s < mem.HMACsPerLine; s++ {
			if !tr.VerifyChild(tr.DefaultNode(k), s, tr.DefaultNode(k-1)) {
				t.Fatalf("default chain broken at level %d slot %d", k, s)
			}
		}
	}
}

func TestEmptyTreeVerifies(t *testing.T) {
	tr, st := tree(t, 64<<20)
	root := tr.RootNode(st)
	if bad := tr.VerifyAll(st, root, st.Addrs()); len(bad) != 0 {
		t.Fatalf("empty tree has mismatches: %v", bad)
	}
}

func TestRebuildMatchesRootNode(t *testing.T) {
	tr, st := tree(t, 64<<20)
	writeCounter(tr, st, 0, 3)
	writeCounter(tr, st, 5, 1)
	writeCounter(tr, st, tr.Layout().LevelNodes(0)-1, 2)
	root := persistTree(tr, st)
	if got := tr.RootNode(st); got != root {
		t.Fatal("RootNode over persisted tree differs from Rebuild root")
	}
	if bad := tr.VerifyAll(st, root, st.Addrs()); len(bad) != 0 {
		t.Fatalf("persisted rebuilt tree has mismatches: %v", bad)
	}
}

func TestRebuildIgnoresStaleTreeNodes(t *testing.T) {
	tr, st := tree(t, 64<<20)
	writeCounter(tr, st, 7, 1)
	root1 := persistTree(tr, st)
	// Mutate the counter again without updating the tree: stale nodes.
	writeCounter(tr, st, 7, 1)
	_, root2 := tr.Rebuild(st, []mem.Addr{tr.Layout().CounterLineAddr(7)})
	if root1 == root2 {
		t.Fatal("rebuild insensitive to counter change")
	}
	// Rebuild must ignore the stale persisted nodes entirely.
	nodes, root3 := tr.Rebuild(st, []mem.Addr{tr.Layout().CounterLineAddr(7)})
	if root3 != root2 {
		t.Fatal("rebuild not deterministic")
	}
	for a, n := range nodes {
		st.Write(a, n)
	}
	if bad := tr.VerifyAll(st, root2, st.Addrs()); len(bad) != 0 {
		t.Fatalf("re-persisted tree has mismatches: %v", bad)
	}
}

func TestVerifyAllLocatesTamperedCounter(t *testing.T) {
	tr, st := tree(t, 64<<20)
	writeCounter(tr, st, 3, 2)
	writeCounter(tr, st, 9, 1)
	root := persistTree(tr, st)
	// Replay counter line 3 to an older value (fewer bumps).
	a := tr.Layout().CounterLineAddr(3)
	var old seccrypto.CounterLine
	old.Bump(0)
	st.Write(a, old.Encode())
	bad := tr.VerifyAll(st, root, st.Addrs())
	if len(bad) == 0 {
		t.Fatal("replayed counter not detected")
	}
	found := false
	for _, m := range bad {
		if m.Level == 0 && m.Index == 3 {
			found = true
		}
		if m.Level == 0 && m.Index == 9 {
			t.Fatal("untampered counter flagged")
		}
	}
	if !found {
		t.Fatalf("mismatch list %v does not locate counter 3", bad)
	}
}

func TestVerifyAllLocatesTamperedInternalNode(t *testing.T) {
	tr, st := tree(t, 64<<20)
	writeCounter(tr, st, 0, 1)
	root := persistTree(tr, st)
	na := tr.Layout().NodeAddr(1, 0)
	n, _ := st.Read(na)
	n[0] ^= 0xFF
	st.Write(na, n)
	bad := tr.VerifyAll(st, root, st.Addrs())
	if len(bad) == 0 {
		t.Fatal("tampered internal node not detected")
	}
	hasNode := false
	for _, m := range bad {
		if m.Addr == na {
			hasNode = true
		}
	}
	if !hasNode {
		t.Fatalf("mismatches %v do not include tampered node %#x", bad, uint64(na))
	}
}

func TestVerifyAllDetectsRootMismatch(t *testing.T) {
	tr, st := tree(t, 64<<20)
	writeCounter(tr, st, 1, 1)
	root := persistTree(tr, st)
	root[0] ^= 1
	if bad := tr.VerifyAll(st, root, st.Addrs()); len(bad) == 0 {
		t.Fatal("wrong TCB root not detected")
	}
}

func TestVerifyAllDetectsSplicedCounters(t *testing.T) {
	tr, st := tree(t, 64<<20)
	writeCounter(tr, st, 2, 1)
	writeCounter(tr, st, 4, 3)
	root := persistTree(tr, st)
	lay := tr.Layout()
	a2, a4 := lay.CounterLineAddr(2), lay.CounterLineAddr(4)
	l2, _ := st.Read(a2)
	l4, _ := st.Read(a4)
	st.Write(a2, l4)
	st.Write(a4, l2)
	bad := tr.VerifyAll(st, root, st.Addrs())
	idx := map[uint64]bool{}
	for _, m := range bad {
		if m.Level == 0 {
			idx[m.Index] = true
		}
	}
	if !idx[2] || !idx[4] {
		t.Fatalf("splice not located at both counters: %v", bad)
	}
}

func TestSetParentSlotRoundTrip(t *testing.T) {
	tr, _ := tree(t, 64<<20)
	var parent, child mem.Line
	child[5] = 42
	tr.SetParentSlot(&parent, 2, child)
	if !tr.VerifyChild(parent, 2, child) {
		t.Fatal("SetParentSlot/VerifyChild round-trip failed")
	}
	child[5] = 43
	if tr.VerifyChild(parent, 2, child) {
		t.Fatal("VerifyChild accepted modified child")
	}
}

func TestNodeContentBeyondPopulatedRangeIsDefault(t *testing.T) {
	tr, st := tree(t, 64<<20)
	lay := tr.Layout()
	got := tr.NodeContent(st, 1, lay.LevelNodes(1)+10)
	if got != tr.DefaultNode(1) {
		t.Fatal("out-of-range node content not default")
	}
}

func TestRandomizedRebuildConsistency(t *testing.T) {
	tr, st := tree(t, 16<<20)
	rng := rand.New(rand.NewSource(42))
	leaves := tr.Layout().LevelNodes(0)
	for i := 0; i < 50; i++ {
		writeCounter(tr, st, rng.Uint64()%leaves, 1+rng.Intn(4))
	}
	root := persistTree(tr, st)
	if bad := tr.VerifyAll(st, root, st.Addrs()); len(bad) != 0 {
		t.Fatalf("randomized tree has %d mismatches: %v", len(bad), bad[0])
	}
	// Tamper one random written counter; exactly that leaf (and possibly
	// only it) must be flagged at level 0.
	var counterAddrs []mem.Addr
	for _, a := range st.Addrs() {
		if tr.Layout().RegionOf(a) == mem.RegionCounter {
			counterAddrs = append(counterAddrs, a)
		}
	}
	victim := counterAddrs[rng.Intn(len(counterAddrs))]
	l, _ := st.Read(victim)
	l[20] ^= 0x10
	st.Write(victim, l)
	bad := tr.VerifyAll(st, root, st.Addrs())
	if len(bad) == 0 {
		t.Fatal("tampered counter not detected")
	}
	for _, m := range bad {
		if m.Level == 0 && m.Addr != victim {
			t.Fatalf("innocent counter flagged: %v (victim %#x)", m, uint64(victim))
		}
	}
}

func TestTinyTreeGeometry(t *testing.T) {
	// A capacity so small the counter lines hang directly off the root.
	tr, st := tree(t, 4*mem.PageSize)
	lay := tr.Layout()
	if lay.InternalLevels != 0 {
		t.Skipf("layout has %d internal levels; test targets 0", lay.InternalLevels)
	}
	writeCounter(tr, st, 1, 2)
	root := persistTree(tr, st)
	if bad := tr.VerifyAll(st, root, st.Addrs()); len(bad) != 0 {
		t.Fatalf("tiny tree mismatches: %v", bad)
	}
	writeCounter(tr, st, 1, 1)
	if bad := tr.VerifyAll(st, root, st.Addrs()); len(bad) == 0 {
		t.Fatal("stale root accepted in tiny tree")
	}
}

func TestAnyBitFlipDetectedProperty(t *testing.T) {
	// Property: flipping any single bit of any persisted counter or tree
	// line breaks verification somewhere.
	tr, st := tree(t, 16<<20)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		writeCounter(tr, st, rng.Uint64()%tr.Layout().LevelNodes(0), 1+rng.Intn(3))
	}
	root := persistTree(tr, st)
	addrs := st.Addrs()
	for trial := 0; trial < 60; trial++ {
		victim := addrs[rng.Intn(len(addrs))]
		l, _ := st.Read(victim)
		bit := rng.Intn(mem.LineSize * 8)
		l[bit/8] ^= 1 << (bit % 8)
		mut := st.Clone()
		mut.Write(victim, l)
		if bad := tr.VerifyAll(mut, root, mut.Addrs()); len(bad) == 0 {
			t.Fatalf("bit flip at %#x bit %d undetected", uint64(victim), bit)
		}
	}
}

func TestRebuildIdempotentProperty(t *testing.T) {
	// Property: rebuilding from an already-consistent image reproduces
	// the identical tree and root.
	tr, st := tree(t, 16<<20)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		writeCounter(tr, st, rng.Uint64()%tr.Layout().LevelNodes(0), 1+rng.Intn(5))
	}
	root := persistTree(tr, st)
	var counters []mem.Addr
	for _, a := range st.Addrs() {
		if tr.Layout().RegionOf(a) == mem.RegionCounter {
			counters = append(counters, a)
		}
	}
	nodes, root2 := tr.Rebuild(st, counters)
	if root2 != root {
		t.Fatal("rebuild of consistent image changed the root")
	}
	for a, n := range nodes {
		cur, _ := st.Read(a)
		if cur != n {
			t.Fatalf("rebuild changed node %#x", uint64(a))
		}
	}
}
