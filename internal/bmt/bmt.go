// Package bmt implements the Bonsai Merkle Tree over the counter region:
// a 4-ary tree whose leaves are 64 B counter lines and whose internal
// nodes each hold four 128-bit counter HMACs, one per child. The single
// top node — the HMACs of the highest in-NVM level — is the root held in
// a TCB register.
//
// The tree operates over any line reader (the live NVM device, a crash
// image, or a cache-overlaid view), never storing state of its own, so
// the same code serves runtime verification, the drainer's deferred
// spreading, and post-crash reconstruction. Default (never-written)
// subtrees are uniform per level and memoized, which makes sparse images
// exact without materializing 4M leaves.
package bmt

import (
	"fmt"

	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// Reader supplies line content by address, reporting whether the line
// was ever written. Absent lines are defaults (all zero for counters,
// memoized default HMAC vectors for internal nodes).
type Reader interface {
	Read(a mem.Addr) (mem.Line, bool)
}

// ReaderFunc adapts a function to the Reader interface.
type ReaderFunc func(a mem.Addr) (mem.Line, bool)

// Read implements Reader.
func (f ReaderFunc) Read(a mem.Addr) (mem.Line, bool) { return f(a) }

// Tree binds a layout and a crypto engine into Merkle-tree logic.
type Tree struct {
	lay      *mem.Layout
	cry      *seccrypto.Engine
	defaults []mem.Line // default node content per level; [0] is the zero counter line
	workers  []*Tree    // lazily forked per-worker clones for the parallel paths (shard.go)
}

// New builds the tree helper and precomputes the per-level default
// nodes: level k's default holds four HMACs of level k-1's default.
func New(lay *mem.Layout, cry *seccrypto.Engine) *Tree {
	t := &Tree{lay: lay, cry: cry}
	t.defaults = make([]mem.Line, lay.InternalLevels+1)
	for k := 1; k <= lay.InternalLevels; k++ {
		h := cry.NodeHMAC(t.defaults[k-1])
		for s := 0; s < mem.HMACsPerLine; s++ {
			seccrypto.PutHMAC(&t.defaults[k], s, h)
		}
	}
	return t
}

// Layout returns the bound address-space layout.
func (t *Tree) Layout() *mem.Layout { return t.lay }

// Crypto exposes the tree's crypto engine, e.g. to inspect memo-table
// statistics.
func (t *Tree) Crypto() *seccrypto.Engine { return t.cry }

// DefaultNode returns the content of a never-written node at the given
// level (0 = counter line).
func (t *Tree) DefaultNode(level int) mem.Line {
	return t.defaults[level]
}

// NodeContent reads the node at (level, idx) from r, substituting the
// level default when absent or beyond the populated node count.
func (t *Tree) NodeContent(r Reader, level int, idx uint64) mem.Line {
	if idx >= t.lay.LevelNodes(level) {
		return t.defaults[level]
	}
	var a mem.Addr
	if level == 0 {
		a = t.lay.CounterLineAddr(idx)
	} else {
		a = t.lay.NodeAddr(level, idx)
	}
	if l, ok := r.Read(a); ok {
		return l
	}
	return t.defaults[level]
}

// RootNode assembles the TCB root node implied by r: the HMACs of the
// top in-NVM level's nodes, with unused slots holding default HMACs.
func (t *Tree) RootNode(r Reader) mem.Line {
	var root mem.Line
	top := t.lay.TopLevel()
	for s := 0; s < mem.HMACsPerLine; s++ {
		child := t.NodeContent(r, top, uint64(s))
		seccrypto.PutHMAC(&root, s, t.cry.NodeHMAC(child))
	}
	return root
}

// SetParentSlot recomputes the HMAC of child and stores it in slot s of
// parent. This is the incremental path-update primitive the engines use
// when spreading a counter update toward the root.
func (t *Tree) SetParentSlot(parent *mem.Line, s int, child mem.Line) {
	seccrypto.PutHMAC(parent, s, t.cry.NodeHMAC(child))
}

// VerifyChild checks that slot s of parent matches child's HMAC.
func (t *Tree) VerifyChild(parent mem.Line, s int, child mem.Line) bool {
	return seccrypto.GetHMAC(parent, s) == t.cry.NodeHMAC(child)
}

// Mismatch reports one parent/child verification failure: the node whose
// content does not match the HMAC its parent (or the TCB root, for
// Level == TopLevel) stores for it. Located replay attacks surface as
// mismatches.
type Mismatch struct {
	Level int      // level of the child node (0 = counter line)
	Index uint64   // node index within the level
	Addr  mem.Addr // NVM address of the child
}

// String renders the mismatch for reports.
func (m Mismatch) String() string {
	return fmt.Sprintf("tree mismatch at level %d index %d (addr %#x)", m.Level, m.Index, uint64(m.Addr))
}

// VerifyAll checks the whole tree image in r against the given TCB root
// node, returning every parent/child mismatch. It checks, for every
// written counter or tree line, the upward link (its HMAC against the
// slot its parent stores) and, for written internal nodes, all four
// downward links; absent relatives take level defaults. An empty result
// means the in-NVM tree is internally consistent and matches root.
func (t *Tree) VerifyAll(r Reader, root mem.Line, addrs []mem.Addr) []Mismatch {
	var bad []Mismatch
	seen := make(map[mem.Addr]bool)
	report := func(level int, idx uint64, a mem.Addr) {
		if !seen[a] {
			seen[a] = true
			bad = append(bad, Mismatch{Level: level, Index: idx, Addr: a})
		}
	}
	for _, a := range addrs {
		var level int
		var idx uint64
		switch t.lay.RegionOf(a) {
		case mem.RegionCounter:
			level, idx = 0, t.lay.CounterLineIndex(a)
		case mem.RegionTree:
			level, idx = t.lay.NodeAt(a)
		default:
			continue
		}
		content := t.NodeContent(r, level, idx)
		// Upward link.
		var parent mem.Line
		var slot int
		if level == t.lay.TopLevel() {
			parent, slot = root, int(idx)
		} else {
			pl, pi, s := t.lay.ParentOf(level, idx)
			parent, slot = t.NodeContent(r, pl, pi), s
		}
		if !t.VerifyChild(parent, slot, content) {
			report(level, idx, a)
		}
		// Downward links for internal nodes.
		if level >= 1 {
			for s := 0; s < mem.HMACsPerLine; s++ {
				cl, ci := t.lay.ChildOf(level, idx, s)
				child := t.NodeContent(r, cl, ci)
				if !t.VerifyChild(content, s, child) {
					var ca mem.Addr
					if cl == 0 {
						ca = t.lay.CounterLineAddr(ci)
					} else {
						ca = t.lay.NodeAddr(cl, ci)
					}
					report(cl, ci, ca)
				}
			}
		}
	}
	return bad
}

// Rebuild recomputes every internal node implied by the given set of
// written counter-line addresses, reading counter content from r and
// ignoring any tree nodes present in r. counterAddrs must list every
// written counter line; lines it omits are treated as default (zero).
// It returns the rebuilt internal nodes keyed by NVM address, plus the
// implied root node. Recovery uses it to reconstruct the tree from
// recovered counters (paper §4.4 step 4).
func (t *Tree) Rebuild(r Reader, counterAddrs []mem.Addr) (map[mem.Addr]mem.Line, mem.Line) {
	nodes := make(map[mem.Addr]mem.Line)
	// Seed the affected set with the leaf indices.
	affected := make(map[uint64]bool)
	for _, a := range counterAddrs {
		if t.lay.RegionOf(a) == mem.RegionCounter {
			affected[t.lay.CounterLineIndex(a)] = true
		}
	}
	content := func(level int, idx uint64) mem.Line {
		if level == 0 {
			return t.NodeContent(r, 0, idx)
		}
		if n, ok := nodes[t.lay.NodeAddr(level, idx)]; ok {
			return n
		}
		return t.defaults[level]
	}
	for level := 0; level < t.lay.TopLevel(); level++ {
		parents := make(map[uint64]bool)
		for idx := range affected {
			_, pi, _ := t.lay.ParentOf(level, idx)
			parents[pi] = true
		}
		for pi := range parents {
			node := t.defaults[level+1]
			for s := 0; s < mem.HMACsPerLine; s++ {
				_, ci := t.lay.ChildOf(level+1, pi, s)
				if affected[ci] {
					t.SetParentSlot(&node, s, content(level, ci))
				}
			}
			nodes[t.lay.NodeAddr(level+1, pi)] = node
		}
		affected = parents
	}
	// Assemble the root from the (possibly rebuilt) top level.
	var root mem.Line
	top := t.lay.TopLevel()
	for s := 0; s < mem.HMACsPerLine; s++ {
		child := t.defaults[top]
		if uint64(s) < t.lay.LevelNodes(top) {
			child = content(top, uint64(s))
		}
		seccrypto.PutHMAC(&root, s, t.cry.NodeHMAC(child))
	}
	return nodes, root
}
