// Subtree-sharded parallel scheduling for the Merkle tree.
//
// The tree's top in-NVM level has at most four nodes (the TCB root
// node's children), and every counter line or internal node below it
// descends from exactly one of them. Partitioning work by that
// top-level subtree therefore yields conflict-free shards: no two
// shards ever touch the same node, and only the TCB root — recomputed
// in the deterministic merge step — is shared. This is the
// update-scheduling observation of Freij et al., "Streamlining
// Integrity Tree Updates for Secure Persistent Non-Volatile Memory":
// non-conflicting tree updates may proceed concurrently once same-node
// updates are coalesced, and the subtree partition makes the
// no-conflict property structural instead of discovered.
//
// Every parallel entry point is bit-identical to its serial
// counterpart: workers receive a deterministic shard assignment,
// produce shard-local results, and a single merge pass folds them in
// fixed shard order. Each worker's crypto engine is a Fork of the
// tree's — memo tables never change answers, so forked engines are
// exact.
package bmt

import (
	"sync"

	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// Shards returns the number of top-level subtrees: the populated node
// count of the top in-NVM level, at most mem.HMACsPerLine. This is the
// maximum useful worker count for intra-tree parallelism.
func (t *Tree) Shards() int {
	return int(t.lay.LevelNodes(t.lay.TopLevel()))
}

// ShardOf returns the top-level-subtree shard owning tree position
// (level, idx): the index of its ancestor at the top in-NVM level. The
// tree is HMACsPerLine-ary, so each level up divides the index by the
// arity.
func (t *Tree) ShardOf(level int, idx uint64) int {
	for ; level < t.lay.TopLevel(); level++ {
		idx /= mem.HMACsPerLine
	}
	return int(idx)
}

// forks returns n forked trees of t, lazily created and retained on t
// so repeated parallel calls (one per drain) reuse warmed memo tables.
// Like the Tree itself, the fork list is grown only by the owning
// goroutine; the forks are then used concurrently, one per worker.
func (t *Tree) forks(n int) []*Tree {
	for len(t.workers) < n {
		t.workers = append(t.workers, &Tree{lay: t.lay, cry: t.cry.Fork(), defaults: t.defaults})
	}
	return t.workers[:n]
}

// runShards executes fn(shard, worker) for every shard index in
// [0, shards) on at most workers goroutines, worker w taking shards
// w, w+workers, ... — a deterministic assignment, so any state keyed by
// shard or worker is schedule-independent. With workers <= 1 it runs
// inline.
func runShards(shards, workers int, fn func(shard, worker int)) {
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(s, 0)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < shards; s += workers {
				fn(s, w)
			}
		}(w)
	}
	wg.Wait()
}

// VerifyAllParallel is VerifyAll across a bounded worker pool. The
// address list is partitioned by top-level subtree, each worker checks
// its shards' entries with a forked crypto engine (the Reader is only
// read, never written), and the merge pass replays the per-address
// verdicts in the original traversal order — the returned mismatch
// slice is byte-for-byte the serial result, including its first-report
// dedup order. workers <= 1 delegates to the serial walk.
func (t *Tree) VerifyAllParallel(r Reader, root mem.Line, addrs []mem.Addr, workers int) []Mismatch {
	shards := t.Shards()
	if workers <= 1 || shards <= 1 || len(addrs) < 2 {
		return t.VerifyAll(r, root, addrs)
	}
	// Partition address-list indices by shard. Addresses outside the
	// counter and tree regions are skipped by the serial walk too; the
	// checks themselves are pure reads, so the partition only decides
	// which worker performs each one.
	byShard := make([][]int, shards)
	for i, a := range addrs {
		var s int
		switch t.lay.RegionOf(a) {
		case mem.RegionCounter:
			s = t.ShardOf(0, t.lay.CounterLineIndex(a))
		case mem.RegionTree:
			s = t.ShardOf(t.lay.NodeAt(a))
		default:
			continue
		}
		byShard[s] = append(byShard[s], i)
	}
	// Workers produce per-address candidate reports; each is a pure
	// function of (r, root, addr), so the shard split cannot change it.
	cands := make([][]Mismatch, len(addrs))
	forks := t.forks(min(workers, shards))
	runShards(shards, workers, func(shard, worker int) {
		wt := forks[worker]
		for _, i := range byShard[shard] {
			cands[i] = wt.verifyOne(r, root, addrs[i])
		}
	})
	// Merge: replay in original order with the serial dedup rule.
	var bad []Mismatch
	seen := make(map[mem.Addr]bool)
	for _, cs := range cands {
		for _, m := range cs {
			if !seen[m.Addr] {
				seen[m.Addr] = true
				bad = append(bad, m)
			}
		}
	}
	return bad
}

// verifyOne returns the (pre-dedup) mismatch reports the serial
// VerifyAll walk would emit for one address, in emission order.
func (t *Tree) verifyOne(r Reader, root mem.Line, a mem.Addr) []Mismatch {
	var level int
	var idx uint64
	switch t.lay.RegionOf(a) {
	case mem.RegionCounter:
		level, idx = 0, t.lay.CounterLineIndex(a)
	case mem.RegionTree:
		level, idx = t.lay.NodeAt(a)
	default:
		return nil
	}
	var out []Mismatch
	content := t.NodeContent(r, level, idx)
	// Upward link.
	var parent mem.Line
	var slot int
	if level == t.lay.TopLevel() {
		parent, slot = root, int(idx)
	} else {
		pl, pi, s := t.lay.ParentOf(level, idx)
		parent, slot = t.NodeContent(r, pl, pi), s
	}
	if !t.VerifyChild(parent, slot, content) {
		out = append(out, Mismatch{Level: level, Index: idx, Addr: a})
	}
	// Downward links for internal nodes.
	if level >= 1 {
		for s := 0; s < mem.HMACsPerLine; s++ {
			cl, ci := t.lay.ChildOf(level, idx, s)
			child := t.NodeContent(r, cl, ci)
			if !t.VerifyChild(content, s, child) {
				var ca mem.Addr
				if cl == 0 {
					ca = t.lay.CounterLineAddr(ci)
				} else {
					ca = t.lay.NodeAddr(cl, ci)
				}
				out = append(out, Mismatch{Level: cl, Index: ci, Addr: ca})
			}
		}
	}
	return out
}

// RebuildParallel is Rebuild across a bounded worker pool: counter
// addresses are partitioned by top-level subtree, each worker rebuilds
// its subtrees bottom-up exactly like the serial level loop (subtrees
// never share internal nodes, so worker node maps are disjoint), and
// the merge unions the maps and assembles the root exactly as the
// serial pass does. The returned node map and root are bit-identical
// to Rebuild's. workers <= 1 delegates to the serial pass.
func (t *Tree) RebuildParallel(r Reader, counterAddrs []mem.Addr, workers int) (map[mem.Addr]mem.Line, mem.Line) {
	shards := t.Shards()
	if workers <= 1 || t.lay.TopLevel() == 0 || shards <= 1 || len(counterAddrs) < 2 {
		return t.Rebuild(r, counterAddrs)
	}
	byShard := make([][]uint64, shards)
	for _, a := range counterAddrs {
		if t.lay.RegionOf(a) == mem.RegionCounter {
			idx := t.lay.CounterLineIndex(a)
			s := t.ShardOf(0, idx)
			byShard[s] = append(byShard[s], idx)
		}
	}
	outs := make([]map[mem.Addr]mem.Line, shards)
	forks := t.forks(min(workers, shards))
	runShards(shards, workers, func(shard, worker int) {
		if len(byShard[shard]) == 0 {
			return
		}
		outs[shard] = forks[worker].rebuildSubtree(r, byShard[shard])
	})
	// Merge: shard node maps are disjoint by construction, so the union
	// is order-independent.
	nodes := make(map[mem.Addr]mem.Line)
	for _, out := range outs {
		for a, n := range out {
			nodes[a] = n
		}
	}
	// Assemble the root from the (possibly rebuilt) top level, exactly
	// as the serial pass does: rebuilt nodes from the union, defaults
	// elsewhere. Internal levels never read r.
	var root mem.Line
	top := t.lay.TopLevel()
	for s := 0; s < mem.HMACsPerLine; s++ {
		child := t.defaults[top]
		if uint64(s) < t.lay.LevelNodes(top) {
			if n, ok := nodes[t.lay.NodeAddr(top, uint64(s))]; ok {
				child = n
			}
		}
		seccrypto.PutHMAC(&root, s, t.cry.NodeHMAC(child))
	}
	return nodes, root
}

// SpreadDeferred performs the drainer's deferred spreading (cc-NVM
// §4.3): starting from the dirty counter leaves (index -> new content),
// it recomputes every affected internal node exactly once, bottom-up,
// coalescing same-node updates. lookup supplies the pre-drain content
// of an internal node the first time a level touches it; with
// workers > 1 it is called from worker goroutines and must be safe for
// concurrent reads.
//
// It returns the recomputed internal nodes keyed by NVM address, the
// per-level affected counts (counts[l] nodes were hashed at level l,
// for l in 0..TopLevel; the last entry is the top-level set folded into
// the root) for the caller's HMAC-unit timing model, and the top-level
// nodes (index -> content) for the root fold. The three results are
// bit-identical for any workers value: shards are disjoint subtrees, so
// per-shard node maps and top sets union without conflict and per-level
// counts sum in shard order.
func (t *Tree) SpreadDeferred(leaves map[uint64]mem.Line, lookup func(mem.Addr) mem.Line, workers int) (map[mem.Addr]mem.Line, []int, map[uint64]mem.Line) {
	shards := t.Shards()
	if workers <= 1 || t.lay.TopLevel() == 0 || shards <= 1 || len(leaves) < 2 {
		return t.spreadSubtree(leaves, lookup)
	}
	byShard := make([]map[uint64]mem.Line, shards)
	for idx, child := range leaves {
		s := t.ShardOf(0, idx)
		if byShard[s] == nil {
			byShard[s] = make(map[uint64]mem.Line)
		}
		byShard[s][idx] = child
	}
	type spreadOut struct {
		nodes  map[mem.Addr]mem.Line
		counts []int
		top    map[uint64]mem.Line
	}
	outs := make([]spreadOut, shards)
	forks := t.forks(min(workers, shards))
	runShards(shards, workers, func(shard, worker int) {
		if byShard[shard] == nil {
			return
		}
		o := &outs[shard]
		o.nodes, o.counts, o.top = forks[worker].spreadSubtree(byShard[shard], lookup)
	})
	nodes := make(map[mem.Addr]mem.Line)
	counts := make([]int, t.lay.TopLevel()+1)
	top := make(map[uint64]mem.Line)
	for _, o := range outs {
		for a, n := range o.nodes {
			nodes[a] = n
		}
		for l, n := range o.counts {
			counts[l] += n
		}
		for idx, n := range o.top {
			top[idx] = n
		}
	}
	return nodes, counts, top
}

// spreadSubtree is the serial deferred-spreading level loop over one
// set of dirty leaves (the whole tree, or one shard's subtree — all
// nodes it touches are ancestors of its leaves).
func (t *Tree) spreadSubtree(leaves map[uint64]mem.Line, lookup func(mem.Addr) mem.Line) (map[mem.Addr]mem.Line, []int, map[uint64]mem.Line) {
	nodes := make(map[mem.Addr]mem.Line)
	counts := make([]int, t.lay.TopLevel()+1)
	affected := leaves
	for level := 0; level < t.lay.TopLevel(); level++ {
		parents := make(map[uint64]mem.Line)
		for idx, child := range affected {
			_, pi, slot := t.lay.ParentOf(level, idx)
			node, started := parents[pi]
			if !started {
				node = lookup(t.lay.NodeAddr(level+1, pi))
			}
			t.SetParentSlot(&node, slot, child)
			parents[pi] = node
		}
		counts[level] = len(affected)
		for pi, node := range parents {
			nodes[t.lay.NodeAddr(level+1, pi)] = node
		}
		affected = parents
	}
	counts[t.lay.TopLevel()] = len(affected)
	return nodes, counts, affected
}

// rebuildSubtree runs the serial Rebuild level loop over one shard's
// leaf indices, returning the rebuilt internal nodes keyed by NVM
// address. All leaves share a top-level ancestor, so every node the
// loop writes lies inside that subtree.
func (t *Tree) rebuildSubtree(r Reader, leaves []uint64) map[mem.Addr]mem.Line {
	nodes := make(map[mem.Addr]mem.Line)
	affected := make(map[uint64]bool, len(leaves))
	for _, idx := range leaves {
		affected[idx] = true
	}
	content := func(level int, idx uint64) mem.Line {
		if level == 0 {
			return t.NodeContent(r, 0, idx)
		}
		if n, ok := nodes[t.lay.NodeAddr(level, idx)]; ok {
			return n
		}
		return t.defaults[level]
	}
	for level := 0; level < t.lay.TopLevel(); level++ {
		parents := make(map[uint64]bool)
		for idx := range affected {
			_, pi, _ := t.lay.ParentOf(level, idx)
			parents[pi] = true
		}
		for pi := range parents {
			node := t.defaults[level+1]
			for s := 0; s < mem.HMACsPerLine; s++ {
				_, ci := t.lay.ChildOf(level+1, pi, s)
				if affected[ci] {
					t.SetParentSlot(&node, s, content(level, ci))
				}
			}
			nodes[t.lay.NodeAddr(level+1, pi)] = node
		}
		affected = parents
	}
	return nodes
}
