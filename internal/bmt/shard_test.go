package bmt

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// populate writes a spread of counter lines across all top-level
// subtrees plus a couple of corruptions, returning the consistent root
// computed before the corruption so VerifyAll has real mismatches to
// report.
func populate(t *testing.T, tr *Tree, st *mem.Store, seed int64, corrupt int) mem.Line {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	leaves := tr.Layout().LevelNodes(0)
	for i := 0; i < 200; i++ {
		writeCounter(tr, st, rng.Uint64()%leaves, 1+rng.Intn(3))
	}
	// Dense run inside one subtree to exercise coalescing.
	for i := uint64(0); i < 32; i++ {
		writeCounter(tr, st, i, 1)
	}
	root := persistTree(tr, st)
	addrs := st.Addrs()
	for i := 0; i < corrupt; i++ {
		a := addrs[rng.Intn(len(addrs))]
		l, _ := st.Read(a)
		l[rng.Intn(mem.LineSize)] ^= 0xFF
		st.Write(a, l)
	}
	return root
}

func TestVerifyAllParallelBitIdentical(t *testing.T) {
	for _, corrupt := range []int{0, 1, 7} {
		tr, st := tree(t, 64<<20)
		root := populate(t, tr, st, int64(corrupt)*977+1, corrupt)
		addrs := st.Addrs()
		want := tr.VerifyAll(st, root, addrs)
		for _, workers := range []int{2, 4, runtime.NumCPU(), 9} {
			got := tr.VerifyAllParallel(st, root, addrs, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("corrupt=%d workers=%d: parallel verify diverged:\n got %v\nwant %v",
					corrupt, workers, got, want)
			}
		}
	}
}

func TestRebuildParallelBitIdentical(t *testing.T) {
	tr, st := tree(t, 64<<20)
	populate(t, tr, st, 42, 0)
	var counters []mem.Addr
	for _, a := range st.Addrs() {
		if tr.Layout().RegionOf(a) == mem.RegionCounter {
			counters = append(counters, a)
		}
	}
	wantNodes, wantRoot := tr.Rebuild(st, counters)
	for _, workers := range []int{2, 4, runtime.NumCPU(), 9} {
		gotNodes, gotRoot := tr.RebuildParallel(st, counters, workers)
		if gotRoot != wantRoot {
			t.Fatalf("workers=%d: parallel rebuild root differs", workers)
		}
		if len(gotNodes) != len(wantNodes) {
			t.Fatalf("workers=%d: node count %d != %d", workers, len(gotNodes), len(wantNodes))
		}
		for a, n := range wantNodes {
			if gotNodes[a] != n {
				t.Fatalf("workers=%d: node %#x differs", workers, uint64(a))
			}
		}
	}
}

// TestShardOfPartition checks that ShardOf is consistent with the
// parent walk: a node and its parent always land in the same shard,
// and top-level nodes are their own shard index.
func TestShardOfPartition(t *testing.T) {
	tr, _ := tree(t, 64<<20)
	lay := tr.Layout()
	if tr.Shards() != lay.RootChildren() {
		t.Fatalf("Shards() = %d, want RootChildren() = %d", tr.Shards(), lay.RootChildren())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		level := rng.Intn(lay.TopLevel() + 1)
		idx := rng.Uint64() % lay.LevelNodes(level)
		s := tr.ShardOf(level, idx)
		if level == lay.TopLevel() {
			if s != int(idx) {
				t.Fatalf("top-level node %d in shard %d", idx, s)
			}
			continue
		}
		pl, pi, _ := lay.ParentOf(level, idx)
		if ps := tr.ShardOf(pl, pi); ps != s {
			t.Fatalf("node (%d,%d) shard %d but parent (%d,%d) shard %d", level, idx, s, pl, pi, ps)
		}
	}
}

// TestForkBitIdentical checks the crypto-engine Fork contract the
// worker pool relies on: forked engines return identical HMACs and
// pads for identical inputs.
func TestForkBitIdentical(t *testing.T) {
	e := seccrypto.MustEngine(seccrypto.DefaultKeys())
	f := e.Fork()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		var l mem.Line
		rng.Read(l[:])
		a := mem.Addr(rng.Uint64())
		c := 1 + rng.Uint64()%1000
		if e.NodeHMAC(l) != f.NodeHMAC(l) {
			t.Fatal("forked NodeHMAC diverged")
		}
		if e.DataHMAC(a, c, l) != f.DataHMAC(a, c, l) {
			t.Fatal("forked DataHMAC diverged")
		}
		if e.Encrypt(a, c, l) != f.Encrypt(a, c, l) {
			t.Fatal("forked Encrypt diverged")
		}
	}
}
