package mem

import "encoding/binary"

// Mix64 is a 64-bit finalizing mixer (the SplitMix64 / MurmurHash3
// fmix64 constants). The simulator's hot-path memo tables index with it
// because map-free direct-mapped slots need a deterministic, well-mixed
// hash: Go's built-in map would randomize iteration and seed, which
// breaks bit-reproducible cache statistics.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HashLine hashes a full 64-byte line with an FNV-1a pass over its
// eight words followed by a final mix. Used to index content-keyed memo
// tables (Merkle-node HMAC memos); collisions are resolved by full
// content comparison, so the hash only affects hit rate, never results.
func HashLine(l *Line) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < LineSize; i += 8 {
		h = (h ^ binary.LittleEndian.Uint64(l[i:])) * 1099511628211
	}
	return Mix64(h)
}
