package mem

import (
	"testing"
	"testing/quick"
)

const gib = 1 << 30

func TestLayoutPaperGeometry(t *testing.T) {
	// The paper's configuration: 16 GB NVM, 128-bit HMACs => 4-ary tree,
	// "12 levels" counted as counter level + 10 internal NVM levels + TCB
	// root.
	l := MustLayout(16 * gib)
	if l.Levels != 12 {
		t.Errorf("16 GiB layout: Levels = %d, want 12", l.Levels)
	}
	if l.InternalLevels != 10 {
		t.Errorf("16 GiB layout: InternalLevels = %d, want 10", l.InternalLevels)
	}
	if got, want := l.LevelNodes(0), uint64(16*gib/PageSize); got != want {
		t.Errorf("counter lines = %d, want %d", got, want)
	}
	if got := l.RootChildren(); got != 4 {
		t.Errorf("root has %d NVM children, want 4", got)
	}
}

func TestLayoutRejectsBadCapacity(t *testing.T) {
	for _, c := range []uint64{0, 100, PageSize - 1, PageSize + 1} {
		if _, err := NewLayout(c); err == nil {
			t.Errorf("NewLayout(%d) succeeded, want error", c)
		}
	}
}

func TestLayoutRegions(t *testing.T) {
	l := MustLayout(1 * gib)
	cases := []struct {
		a Addr
		r Region
	}{
		{0, RegionData},
		{Addr(l.DataBytes - LineSize), RegionData},
		{l.CounterBase, RegionCounter},
		{l.HMACBase - LineSize, RegionCounter},
		{l.HMACBase, RegionHMAC},
		{l.TreeBase - LineSize, RegionHMAC},
		{l.TreeBase, RegionTree},
		{Addr(l.TotalBytes() - LineSize), RegionTree},
		{Addr(l.TotalBytes()), RegionInvalid},
	}
	for _, c := range cases {
		if got := l.RegionOf(c.a); got != c.r {
			t.Errorf("RegionOf(%#x) = %v, want %v", uint64(c.a), got, c.r)
		}
	}
}

func TestCounterMapping(t *testing.T) {
	l := MustLayout(1 * gib)
	// Blocks of the same page share one counter line; distinct slots.
	a0, a1 := Addr(5*PageSize), Addr(5*PageSize+3*LineSize)
	if l.CounterLineOf(a0) != l.CounterLineOf(a1) {
		t.Fatalf("same-page blocks map to different counter lines")
	}
	if l.CounterSlotOf(a0) != 0 || l.CounterSlotOf(a1) != 3 {
		t.Fatalf("slots = %d,%d, want 0,3", l.CounterSlotOf(a0), l.CounterSlotOf(a1))
	}
	// Counter line index/address round-trips.
	ca := l.CounterLineOf(a0)
	if l.CounterLineAddr(l.CounterLineIndex(ca)) != ca {
		t.Fatalf("counter line index/address round-trip failed")
	}
	// Adjacent pages get adjacent counter lines.
	if l.CounterLineOf(a0+PageSize) != ca+LineSize {
		t.Fatalf("adjacent page counter line not adjacent")
	}
}

func TestHMACMapping(t *testing.T) {
	l := MustLayout(1 * gib)
	seen := map[Addr][4]bool{}
	for b := 0; b < 8; b++ {
		a := Addr(b * LineSize)
		line, slot := l.HMACLineOf(a)
		if l.RegionOf(line) != RegionHMAC {
			t.Fatalf("HMAC line %#x not in HMAC region", uint64(line))
		}
		s := seen[line]
		if s[slot] {
			t.Fatalf("block %d: HMAC slot (%#x,%d) reused", b, uint64(line), slot)
		}
		s[slot] = true
		seen[line] = s
	}
	if len(seen) != 2 {
		t.Fatalf("8 blocks used %d HMAC lines, want 2 (4 HMACs per line)", len(seen))
	}
}

func TestTreeParentChildInverse(t *testing.T) {
	l := MustLayout(1 * gib)
	for level := 0; level < l.InternalLevels; level++ {
		n := l.LevelNodes(level)
		for _, idx := range []uint64{0, 1, n / 2, n - 1} {
			pl, pi, slot := l.ParentOf(level, idx)
			cl, ci := l.ChildOf(pl, pi, slot)
			if cl != level || ci != idx {
				t.Fatalf("ParentOf/ChildOf not inverse at level %d idx %d: got (%d,%d)", level, idx, cl, ci)
			}
		}
	}
}

func TestPathFrom(t *testing.T) {
	l := MustLayout(1 * gib)
	path := l.PathFrom(0)
	if len(path) != l.InternalLevels {
		t.Fatalf("path length %d, want %d", len(path), l.InternalLevels)
	}
	for i, a := range path {
		lev, _ := l.NodeAt(a)
		if lev != i+1 {
			t.Fatalf("path element %d at level %d, want %d", i, lev, i+1)
		}
	}
	// Every path must end at a top-NVM-level node, i.e. a direct child of
	// the TCB root node.
	for _, leaf := range []uint64{0, 1, l.LevelNodes(0) - 1} {
		p := l.PathFrom(leaf)
		lev, idx := l.NodeAt(p[len(p)-1])
		if lev != l.TopLevel() || idx >= uint64(l.RootChildren()) {
			t.Fatalf("path from leaf %d ends at level %d idx %d, not a root child", leaf, lev, idx)
		}
	}
}

func TestNodeAddrNodeAtRoundTrip(t *testing.T) {
	l := MustLayout(256 << 20)
	f := func(rawLevel uint8, rawIdx uint32) bool {
		level := 1 + int(rawLevel)%l.InternalLevels
		idx := uint64(rawIdx) % l.LevelNodes(level)
		a := l.NodeAddr(level, idx)
		gl, gi := l.NodeAt(a)
		return gl == level && gi == idx && l.RegionOf(a) == RegionTree
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelsAreDisjoint(t *testing.T) {
	l := MustLayout(64 << 20)
	seen := map[Addr]bool{}
	total := 0
	for level := 1; level <= l.InternalLevels; level++ {
		for idx := uint64(0); idx < l.LevelNodes(level); idx++ {
			a := l.NodeAddr(level, idx)
			if seen[a] {
				t.Fatalf("node address %#x reused", uint64(a))
			}
			seen[a] = true
			total++
		}
	}
	if uint64(total*LineSize) != l.TreeBytes {
		t.Fatalf("tree occupies %d bytes, layout says %d", total*LineSize, l.TreeBytes)
	}
}

func TestAlign(t *testing.T) {
	if Align(0) != 0 || Align(63) != 0 || Align(64) != 64 || Align(130) != 128 {
		t.Fatal("Align misbehaves")
	}
}

func TestStoreBasics(t *testing.T) {
	var s Store
	if _, ok := s.Read(0); ok {
		t.Fatal("empty store reports a written line")
	}
	var l Line
	l[0] = 0xFF
	s.Write(70, l) // unaligned: must land on line 64
	got, ok := s.Read(64)
	if !ok || got != l {
		t.Fatal("write/read round-trip failed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	s.Delete(64)
	if _, ok := s.Read(64); ok {
		t.Fatal("delete did not clear the line")
	}
}

func TestStoreCloneIsDeep(t *testing.T) {
	var s Store
	var l Line
	l[1] = 1
	s.Write(0, l)
	c := s.Clone()
	l[1] = 2
	s.Write(0, l)
	got, _ := c.Read(0)
	if got[1] != 1 {
		t.Fatal("clone shares storage with original")
	}
	if s.Equal(c) {
		t.Fatal("diverged stores report equal")
	}
}

func TestStoreEqualTreatsZeroAsAbsent(t *testing.T) {
	var a, b Store
	var zero Line
	a.Write(128, zero)
	if !a.Equal(&b) || !b.Equal(&a) {
		t.Fatal("explicit zero line should equal absent line")
	}
}

func TestStoreAddrsSorted(t *testing.T) {
	var s Store
	var l Line
	for _, a := range []Addr{640, 0, 128, 64} {
		l[0] = byte(a)
		s.Write(a, l)
	}
	addrs := s.Addrs()
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Fatalf("Addrs not sorted: %v", addrs)
		}
	}
	if len(addrs) != 4 {
		t.Fatalf("got %d addrs, want 4", len(addrs))
	}
}
