// Package mem provides the physical-memory primitives shared by every
// layer of the simulator: 64-byte cache lines, physical addresses, and
// the address-space layout that places encrypted data, encryption
// counters, data HMACs and Merkle-tree nodes in one flat physical
// address space, mirroring how a secure memory controller carves up an
// NVM DIMM.
package mem

import "fmt"

// LineSize is the size of a cache line / memory line in bytes. The whole
// system (caches, NVM, security metadata) operates on 64-byte lines, as
// in the paper's configuration.
const LineSize = 64

// PageSize is the size of a data page. Counters for all blocks of one
// page share a single counter line (the split-counter organization).
const PageSize = 4096

// BlocksPerPage is the number of 64 B data blocks per 4 KB page, and
// equally the number of per-block minor counters held in one counter
// line.
const BlocksPerPage = PageSize / LineSize

// HMACSize is the size in bytes of a truncated HMAC codeword (128 bits),
// used both for data HMACs and for Merkle-tree counter HMACs.
const HMACSize = 16

// HMACsPerLine is how many 128-bit HMACs fit in one 64 B line. It is
// also the arity of the Bonsai Merkle Tree: each tree node stores one
// HMAC per child, so a 64 B node has four children.
const HMACsPerLine = LineSize / HMACSize

// Addr is a physical line-aligned address. All addresses handed between
// components are line aligned; use Align to enforce that.
type Addr uint64

// Align rounds a down to the containing line boundary.
func Align(a Addr) Addr { return a &^ (LineSize - 1) }

// Line is one 64-byte memory line, passed by value.
type Line [LineSize]byte

// Region identifies which part of the physical address space an address
// falls into.
type Region int

// Address-space regions, in physical order.
const (
	RegionData Region = iota
	RegionCounter
	RegionHMAC
	RegionTree
	RegionInvalid
)

// String implements fmt.Stringer for diagnostics.
func (r Region) String() string {
	switch r {
	case RegionData:
		return "data"
	case RegionCounter:
		return "counter"
	case RegionHMAC:
		return "hmac"
	case RegionTree:
		return "tree"
	default:
		return "invalid"
	}
}

// Layout describes how the physical address space is carved into the
// data region and the three security-metadata regions. All bases and
// sizes are in bytes and line aligned.
//
// The layout places, in order: encrypted data, counter lines (one 64 B
// line per 4 KB data page), data HMAC lines (four 128-bit HMACs per
// line), and the internal levels of the Bonsai Merkle Tree from level 1
// (just above the counter leaves) upward. The single top node's HMAC (the
// root) lives in a TCB register, not in NVM.
type Layout struct {
	DataBytes    uint64 // capacity of the protected data region
	CounterBase  Addr
	CounterBytes uint64
	HMACBase     Addr
	HMACBytes    uint64
	TreeBase     Addr
	TreeBytes    uint64

	// Levels is the number of Merkle-tree levels counted the way the
	// paper counts them: the counter (leaf) level, the internal levels
	// stored in NVM, and the root held in the TCB. A 16 GB NVM yields 12.
	Levels int

	// InternalLevels is the number of tree levels stored in NVM
	// (Levels minus the counter level and the TCB root).
	InternalLevels int

	// levelBase[k] for k in [1, InternalLevels] is the base address of
	// internal level k; levelNodes[k] its node count. Level
	// InternalLevels has exactly one node (the top NVM node).
	levelBase  []Addr
	levelNodes []uint64
}

// NewLayout builds the layout for a data region of dataBytes bytes.
// dataBytes must be a positive multiple of PageSize.
func NewLayout(dataBytes uint64) (*Layout, error) {
	if dataBytes == 0 || dataBytes%PageSize != 0 {
		return nil, fmt.Errorf("mem: data capacity %d is not a positive multiple of %d", dataBytes, PageSize)
	}
	l := &Layout{DataBytes: dataBytes}
	counterLines := dataBytes / PageSize
	l.CounterBase = Addr(dataBytes)
	l.CounterBytes = counterLines * LineSize
	l.HMACBase = l.CounterBase + Addr(l.CounterBytes)
	l.HMACBytes = dataBytes / LineSize * HMACSize
	l.TreeBase = l.HMACBase + Addr(l.HMACBytes)

	// Internal tree levels: level k has ceil(level[k-1] / arity) nodes,
	// starting from the counter lines as level 0. The first level with a
	// single node is the root node, which lives in a TCB register rather
	// than NVM, so it is not given an address here. For 16 GiB this
	// yields 10 internal NVM levels, matching the paper's "10 internal
	// path nodes and the leaf-level counter are updated in the NVM".
	l.levelBase = []Addr{0} // index 0 unused; counters are level 0
	l.levelNodes = []uint64{counterLines}
	base := l.TreeBase
	nodes := counterLines
	for {
		nodes = (nodes + HMACsPerLine - 1) / HMACsPerLine
		if nodes <= 1 {
			break
		}
		l.levelBase = append(l.levelBase, base)
		l.levelNodes = append(l.levelNodes, nodes)
		base += Addr(nodes * LineSize)
	}
	l.InternalLevels = len(l.levelNodes) - 1
	l.TreeBytes = uint64(base - l.TreeBase)
	// Counter level + internal NVM levels + TCB root node.
	l.Levels = l.InternalLevels + 2
	return l, nil
}

// MustLayout is NewLayout that panics on error, for tests and examples
// with constant capacities.
func MustLayout(dataBytes uint64) *Layout {
	l, err := NewLayout(dataBytes)
	if err != nil {
		panic(err)
	}
	return l
}

// TotalBytes is the full physical extent, data plus all metadata.
func (l *Layout) TotalBytes() uint64 {
	return uint64(l.TreeBase) + l.TreeBytes
}

// RegionOf classifies a line address.
func (l *Layout) RegionOf(a Addr) Region {
	switch {
	case uint64(a) < l.DataBytes:
		return RegionData
	case a < l.HMACBase:
		return RegionCounter
	case a < l.TreeBase:
		return RegionHMAC
	case uint64(a) < l.TotalBytes():
		return RegionTree
	default:
		return RegionInvalid
	}
}

// CounterLineOf returns the address of the counter line covering the
// 4 KB page that contains data address a.
func (l *Layout) CounterLineOf(a Addr) Addr {
	page := uint64(a) / PageSize
	return l.CounterBase + Addr(page*LineSize)
}

// CounterSlotOf returns the minor-counter slot index (0..63) of data
// block a within its counter line.
func (l *Layout) CounterSlotOf(a Addr) int {
	return int(uint64(a) % PageSize / LineSize)
}

// CounterLineIndex returns the leaf index (level-0 node index) of a
// counter-region line address.
func (l *Layout) CounterLineIndex(a Addr) uint64 {
	return uint64(a-l.CounterBase) / LineSize
}

// CounterLineAddr returns the address of the counter line with leaf
// index idx.
func (l *Layout) CounterLineAddr(idx uint64) Addr {
	return l.CounterBase + Addr(idx*LineSize)
}

// HMACLineOf returns the address of the line holding the data HMAC of
// data block a, and the slot (0..3) within that line.
func (l *Layout) HMACLineOf(a Addr) (Addr, int) {
	block := uint64(a) / LineSize
	return l.HMACBase + Addr(block/HMACsPerLine*LineSize), int(block % HMACsPerLine)
}

// NodeAddr returns the address of internal tree node idx at level k
// (1 <= k <= InternalLevels).
func (l *Layout) NodeAddr(level int, idx uint64) Addr {
	if level < 1 || level > l.InternalLevels {
		panic(fmt.Sprintf("mem: tree level %d out of range [1,%d]", level, l.InternalLevels))
	}
	if idx >= l.levelNodes[level] {
		panic(fmt.Sprintf("mem: tree node %d out of range at level %d (max %d)", idx, level, l.levelNodes[level]))
	}
	return l.levelBase[level] + Addr(idx*LineSize)
}

// NodeAt inverts NodeAddr: it returns the level and index of a
// tree-region address.
func (l *Layout) NodeAt(a Addr) (level int, idx uint64) {
	for k := 1; k <= l.InternalLevels; k++ {
		end := l.levelBase[k] + Addr(l.levelNodes[k]*LineSize)
		if a >= l.levelBase[k] && a < end {
			return k, uint64(a-l.levelBase[k]) / LineSize
		}
	}
	panic(fmt.Sprintf("mem: address %#x is not a tree node", uint64(a)))
}

// LevelNodes returns the number of nodes at tree level k, where level 0
// is the counter (leaf) level.
func (l *Layout) LevelNodes(level int) uint64 {
	if level < 0 || level > l.InternalLevels {
		panic(fmt.Sprintf("mem: tree level %d out of range [0,%d]", level, l.InternalLevels))
	}
	return l.levelNodes[level]
}

// ParentOf returns the tree position of the parent of the node at
// (level, idx), and the child slot (0..3) the node occupies in the
// parent. Level 0 is the counter level. Nodes at the top NVM level
// (TopLevel) are children of the TCB root node; ParentOf must not be
// called for them — their slot in the root is simply their index.
func (l *Layout) ParentOf(level int, idx uint64) (plevel int, pidx uint64, slot int) {
	if level >= l.InternalLevels {
		panic("mem: top NVM level's parent is the TCB root node")
	}
	return level + 1, idx / HMACsPerLine, int(idx % HMACsPerLine)
}

// TopLevel is the highest tree level stored in NVM: InternalLevels when
// the tree has internal levels, otherwise 0 (the counter lines hang
// directly off the TCB root node).
func (l *Layout) TopLevel() int { return l.InternalLevels }

// RootChildren is the number of NVM nodes that are direct children of
// the TCB root node: the node count of the top NVM level (at most 4).
func (l *Layout) RootChildren() int { return int(l.levelNodes[l.InternalLevels]) }

// TopNodeAddr returns the address of child slot s (0 <= s <
// RootChildren) of the TCB root node. At the top level these are
// internal nodes, unless the tree is so small that the counter lines
// themselves are the root's children.
func (l *Layout) TopNodeAddr(s int) Addr {
	if l.InternalLevels == 0 {
		return l.CounterLineAddr(uint64(s))
	}
	return l.NodeAddr(l.InternalLevels, uint64(s))
}

// ChildOf returns the position of child slot s of internal node
// (level, idx). The children of level-1 nodes are counter lines
// (level 0). The returned index may exceed the populated node count at
// the child level when the level sizes are not exact powers of the
// arity; callers treat such children as default (all-zero) nodes.
func (l *Layout) ChildOf(level int, idx uint64, s int) (clevel int, cidx uint64) {
	if level < 1 || level > l.InternalLevels {
		panic(fmt.Sprintf("mem: tree level %d out of range [1,%d]", level, l.InternalLevels))
	}
	return level - 1, idx*HMACsPerLine + uint64(s)
}

// PathFrom returns the addresses of the internal tree nodes on the path
// from the counter line with leaf index idx up to and including the top
// NVM node: first the level-1 parent, then level 2, and so on.
func (l *Layout) PathFrom(leafIdx uint64) []Addr {
	path := make([]Addr, 0, l.InternalLevels)
	level, idx := 0, leafIdx
	for level < l.InternalLevels {
		level, idx, _ = l.ParentOf(level, idx)
		path = append(path, l.NodeAddr(level, idx))
	}
	return path
}
