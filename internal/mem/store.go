package mem

import "sort"

// Store is a sparse line-granular memory image. Absent lines read as
// zero, which the security layer interprets as "never written": the
// functional crypto layer derives deterministic default counters, HMACs
// and tree nodes for untouched lines, so a sparse image behaves exactly
// like a zero-initialized DIMM without materializing it.
//
// The zero value is an empty store ready to use.
type Store struct {
	lines map[Addr]Line
}

// Read returns the line at a and whether it has ever been written.
// Absent lines read as all zero.
func (s *Store) Read(a Addr) (Line, bool) {
	l, ok := s.lines[Align(a)]
	return l, ok
}

// Write stores line l at address a.
func (s *Store) Write(a Addr, l Line) {
	if s.lines == nil {
		s.lines = make(map[Addr]Line)
	}
	s.lines[Align(a)] = l
}

// Delete removes the line at a, returning it to the default (zero)
// state. Used by tests to model loss.
func (s *Store) Delete(a Addr) {
	delete(s.lines, Align(a))
}

// Len reports how many distinct lines have been written.
func (s *Store) Len() int { return len(s.lines) }

// Clone returns a deep copy of the store. Used to snapshot NVM images at
// crash points.
func (s *Store) Clone() *Store {
	c := &Store{lines: make(map[Addr]Line, len(s.lines))}
	for a, l := range s.lines {
		c.lines[a] = l
	}
	return c
}

// Addrs returns the addresses of all written lines in ascending order.
// Deterministic ordering keeps recovery scans and tests reproducible.
func (s *Store) Addrs() []Addr {
	out := make([]Addr, 0, len(s.lines))
	for a := range s.lines {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two stores hold identical contents, treating
// absent lines as zero.
func (s *Store) Equal(o *Store) bool {
	var zero Line
	for a, l := range s.lines {
		ol, ok := o.lines[a]
		if !ok {
			ol = zero
		}
		if l != ol {
			return false
		}
	}
	for a, ol := range o.lines {
		if _, ok := s.lines[a]; !ok && ol != zero {
			return false
		}
	}
	return true
}
