package mem

import (
	"sort"
	"sync"
)

// storeShards is the number of line-map shards in a Store. Sharding
// serves copy-on-write cloning: a crash snapshot shares all shard maps
// with its source, and a later write re-copies only the one shard it
// touches instead of the whole image. 64 shards keep the per-write copy
// under ~2% of the store for typical images. Must be a power of two.
const storeShards = 64

// storeShard is one slice of the address space. A shard whose owned
// flag is false shares its map with at least one other Store (a clone
// ancestor or descendant) and must re-copy it before mutating.
type storeShard struct {
	lines map[Addr]Line
	owned bool
}

// ensureOwned makes the shard's map private to this store, copying it
// if it is currently shared (or nil). After it returns the shard may be
// mutated freely.
func (sh *storeShard) ensureOwned() {
	if sh.owned && sh.lines != nil {
		return
	}
	m := make(map[Addr]Line, len(sh.lines)+1)
	for a, l := range sh.lines {
		m[a] = l
	}
	sh.lines = m
	sh.owned = true
}

// Store is a sparse line-granular memory image. Absent lines read as
// zero, which the security layer interprets as "never written": the
// functional crypto layer derives deterministic default counters, HMACs
// and tree nodes for untouched lines, so a sparse image behaves exactly
// like a zero-initialized DIMM without materializing it.
//
// Internally the image is sharded so Clone is O(shards), not O(lines):
// crash-consistency experiments snapshot the NVM image at every
// potential crash point, and with copy-on-write sharing each snapshot
// costs a handful of map-header copies plus re-copying only the shards
// actually written afterwards.
//
// The zero value is an empty store ready to use.
type Store struct {
	shards [storeShards]storeShard
}

// shardOf selects the shard for a line-aligned address. Consecutive
// lines round-robin across shards, so a localized write burst after a
// snapshot still dirties few shards only when it is small, and spreads
// copy cost evenly when it is not.
func shardOf(a Addr) uint64 { return (uint64(a) / LineSize) & (storeShards - 1) }

// Read returns the line at a and whether it has ever been written.
// Absent lines read as all zero.
func (s *Store) Read(a Addr) (Line, bool) {
	a = Align(a)
	l, ok := s.shards[shardOf(a)].lines[a]
	return l, ok
}

// Write stores line l at address a.
func (s *Store) Write(a Addr, l Line) {
	a = Align(a)
	sh := &s.shards[shardOf(a)]
	sh.ensureOwned()
	sh.lines[a] = l
}

// WriteBatch stores lines[i] at addrs[i] for every i, equivalent to
// calling Write in index order but with the map inserts spread across
// up to workers goroutines. Safety comes from the store's sharding:
// entries are partitioned by internal shard, each shard is privatized
// up front, and no two goroutines ever touch the same shard map. Within
// a shard, entries apply in input order, so duplicate addresses resolve
// exactly as serial Write calls would.
func (s *Store) WriteBatch(addrs []Addr, lines []Line, workers int) {
	if workers <= 1 || len(addrs) < 2 {
		for i, a := range addrs {
			s.Write(a, lines[i])
		}
		return
	}
	byShard := make([][]int, storeShards)
	for i, a := range addrs {
		sh := shardOf(Align(a))
		byShard[sh] = append(byShard[sh], i)
	}
	if workers > storeShards {
		workers = storeShards
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sh := w; sh < storeShards; sh += workers {
				if len(byShard[sh]) == 0 {
					continue
				}
				shard := &s.shards[sh]
				shard.ensureOwned()
				for _, i := range byShard[sh] {
					shard.lines[Align(addrs[i])] = lines[i]
				}
			}
		}(w)
	}
	wg.Wait()
}

// Delete removes the line at a, returning it to the default (zero)
// state. Used by tests to model loss.
func (s *Store) Delete(a Addr) {
	a = Align(a)
	sh := &s.shards[shardOf(a)]
	if _, ok := sh.lines[a]; !ok {
		return // nothing to delete; don't privatize the shard for a no-op
	}
	sh.ensureOwned()
	delete(sh.lines, a)
}

// Len reports how many distinct lines have been written.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].lines)
	}
	return n
}

// Clone returns a logically independent copy of the store. Used to
// snapshot NVM images at crash points. The copy is lazy: both stores
// share the shard maps until one of them writes, at which point the
// writer re-copies just the affected shard. Either side may therefore
// be mutated or discarded without the other noticing.
func (s *Store) Clone() *Store {
	c := &Store{}
	for i := range s.shards {
		s.shards[i].owned = false
		c.shards[i].lines = s.shards[i].lines
	}
	return c
}

// Addrs returns the addresses of all written lines in ascending order.
// Deterministic ordering keeps recovery scans and tests reproducible.
func (s *Store) Addrs() []Addr {
	out := make([]Addr, 0, s.Len())
	for i := range s.shards {
		for a := range s.shards[i].lines {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two stores hold identical contents, treating
// absent lines as zero.
func (s *Store) Equal(o *Store) bool {
	var zero Line
	for i := range s.shards {
		sl, ol := s.shards[i].lines, o.shards[i].lines
		for a, l := range sl {
			got, ok := ol[a]
			if !ok {
				got = zero
			}
			if l != got {
				return false
			}
		}
		for a, l := range ol {
			if _, ok := sl[a]; !ok && l != zero {
				return false
			}
		}
	}
	return true
}
