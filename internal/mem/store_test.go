package mem

import "testing"

// TestStoreCloneCOWIsolation exercises the copy-on-write sharing in
// both directions: writes, deletes and overwrites on either side of a
// Clone must never become visible on the other side.
func TestStoreCloneCOWIsolation(t *testing.T) {
	var s Store
	var l Line
	// Populate enough lines to span several shards.
	for a := Addr(0); a < 200*LineSize; a += LineSize {
		l[0] = byte(a / LineSize)
		s.Write(a, l)
	}
	c := s.Clone()

	// Mutate the original: overwrite, delete, and fresh write.
	l[0] = 0xEE
	s.Write(0, l)
	s.Delete(64)
	s.Write(4096*LineSize, l)

	if got, _ := c.Read(0); got[0] != 0 {
		t.Fatalf("original overwrite leaked into clone: got %#x", got[0])
	}
	if _, ok := c.Read(64); !ok {
		t.Fatal("original delete leaked into clone")
	}
	if _, ok := c.Read(4096 * LineSize); ok {
		t.Fatal("original fresh write leaked into clone")
	}

	// Mutate the clone: the original must be equally unaffected.
	l[0] = 0xDD
	c.Write(128, l)
	c.Delete(192)
	if got, _ := s.Read(128); got[0] != 2 {
		t.Fatalf("clone overwrite leaked into original: got %#x", got[0])
	}
	if _, ok := s.Read(192); !ok {
		t.Fatal("clone delete leaked into original")
	}
}

// TestStoreCloneOfClone checks that chains of snapshots stay
// independent — the crash-consistency experiments snapshot the image at
// every potential crash point, producing long ancestor chains.
func TestStoreCloneOfClone(t *testing.T) {
	var s Store
	var l Line
	l[0] = 1
	s.Write(0, l)

	snaps := make([]*Store, 0, 8)
	for i := 0; i < 8; i++ {
		snaps = append(snaps, s.Clone())
		l[0] = byte(i + 2)
		s.Write(0, l)
	}
	for i, c := range snaps {
		got, _ := c.Read(0)
		if int(got[0]) != i+1 {
			t.Fatalf("snapshot %d: got %d, want %d", i, got[0], i+1)
		}
	}
}

// TestStoreCloneStructCopy mirrors nvm.Device.Restore, which assigns
// *img.Store.Clone() by value: the by-value copy must still be
// copy-on-write isolated from the source image.
func TestStoreCloneStructCopy(t *testing.T) {
	var img Store
	var l Line
	l[0] = 7
	img.Write(0, l)

	restored := *img.Clone()
	l[0] = 9
	restored.Write(0, l)
	if got, _ := img.Read(0); got[0] != 7 {
		t.Fatalf("write through by-value clone leaked into source: got %d", got[0])
	}
	restored.Delete(0)
	if _, ok := img.Read(0); !ok {
		t.Fatal("delete through by-value clone leaked into source")
	}
}

// TestStoreZeroValueAfterClone makes sure cloning an empty zero-value
// store yields a usable, writable store.
func TestStoreZeroValueAfterClone(t *testing.T) {
	var s Store
	c := s.Clone()
	var l Line
	l[0] = 3
	c.Write(64, l)
	if s.Len() != 0 {
		t.Fatal("write to clone of empty store leaked into source")
	}
	if got, _ := c.Read(64); got[0] != 3 {
		t.Fatal("clone of empty store dropped a write")
	}
}

// TestStoreDeleteAbsentKeepsSharing verifies the no-op fast path:
// deleting an absent line must not privatize a shared shard (that would
// defeat the point of lazy snapshots) and must stay correct.
func TestStoreDeleteAbsentKeepsSharing(t *testing.T) {
	var s Store
	var l Line
	l[0] = 5
	s.Write(0, l)
	c := s.Clone()
	c.Delete(64 * LineSize) // absent; same shard as addr 0
	if sh := &c.shards[shardOf(0)]; sh.owned {
		t.Fatal("no-op delete privatized a shared shard")
	}
	if got, _ := c.Read(0); got[0] != 5 {
		t.Fatal("no-op delete corrupted shard contents")
	}
}
