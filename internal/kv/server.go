package kv

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"ccnvm/internal/engine"
	"ccnvm/internal/store"
)

// The wire protocol is JSON lines over TCP: one request object per
// line, one response object per line, pipelinable per connection.
// Keys and values travel as JSON strings.

// Request is one client command.
type Request struct {
	Op   string      `json:"op"`             // ping get put del batch snap snapget snaprel flush stats compact crash quit
	Key  string      `json:"key,omitempty"`  // get put del snapget
	Val  string      `json:"val,omitempty"`  // put
	Ops  []RequestOp `json:"ops,omitempty"`  // batch
	Snap uint64      `json:"snap,omitempty"` // snapget snaprel
}

// RequestOp is one mutation inside a batch request.
type RequestOp struct {
	Op  string `json:"op"` // put del
	Key string `json:"key"`
	Val string `json:"val,omitempty"`
}

// Response answers one request. Code types refusals so clients can
// tell a retriable/degraded condition from a plain failure: "readonly"
// (media degraded, reads still served), "full" (log out of space and
// compaction cannot help), "closed" (namespace shut down).
type Response struct {
	OK    bool   `json:"ok"`
	Found bool   `json:"found,omitempty"`
	Val   string `json:"val,omitempty"`
	Snap  uint64 `json:"snap,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
	Err   string `json:"err,omitempty"`
	Code  string `json:"code,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}

// Refusal codes carried in Response.Code.
const (
	CodeReadOnly = "readonly"
	CodeFull     = "full"
	CodeClosed   = "closed"
)

// Server serves one DB over a listener. Termination ops (crash, quit)
// capture the crash image and hand it to OnShutdown exactly once; the
// daemon persists it and exits, the tests assert on it.
type Server struct {
	db *DB

	// OnShutdown receives the crash image after a crash (clean=false)
	// or quit (clean=true) request has been acknowledged. Called once,
	// from the requesting connection's goroutine, after the listener is
	// closed. Nil is allowed.
	OnShutdown func(img *engine.CrashImage, clean bool)

	mu       sync.Mutex
	ln       net.Listener
	snaps    map[uint64]*Snapshot
	nextSnap uint64
	stopping bool

	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewServer wraps db.
func NewServer(db *DB) *Server {
	return &Server{db: db, snaps: make(map[uint64]*Snapshot)}
}

// Serve accepts connections on ln until Close (or a termination op)
// shuts it down; it returns nil on orderly shutdown. Each connection
// is served by its own goroutine; Serve waits for them to drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	stopping := s.stopping
	s.mu.Unlock()
	if stopping {
		ln.Close()
		return nil
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			s.mu.Lock()
			stopping := s.stopping
			s.mu.Unlock()
			if stopping || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and unblocks Serve. In-flight connections
// finish their current request.
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopping = true
		ln := s.ln
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
	})
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = Response{Err: "bad request: " + err.Error()}
		} else {
			var terminal func()
			resp, terminal = s.handle(&req)
			if terminal != nil {
				enc.Encode(&resp)
				w.Flush()
				terminal()
				return
			}
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// handle executes one request. A non-nil terminal closure means the
// connection must flush the response and then run it (crash/quit).
func (s *Server) handle(req *Request) (Response, func()) {
	switch req.Op {
	case "ping":
		return Response{OK: true}, nil
	case "get":
		v, found, err := s.db.Get([]byte(req.Key))
		if err != nil {
			return errResp(err), nil
		}
		return Response{OK: true, Found: found, Val: string(v)}, nil
	case "put":
		if err := s.db.Put([]byte(req.Key), []byte(req.Val)); err != nil {
			return errResp(err), nil
		}
		return Response{OK: true}, nil
	case "del":
		if err := s.db.Delete([]byte(req.Key)); err != nil {
			return errResp(err), nil
		}
		return Response{OK: true}, nil
	case "batch":
		ops := make([]Op, 0, len(req.Ops))
		for _, ro := range req.Ops {
			switch ro.Op {
			case "put":
				ops = append(ops, Op{Kind: OpPut, Key: []byte(ro.Key), Val: []byte(ro.Val)})
			case "del":
				ops = append(ops, Op{Kind: OpDelete, Key: []byte(ro.Key)})
			default:
				return Response{Err: fmt.Sprintf("bad batch op %q", ro.Op)}, nil
			}
		}
		if err := s.db.Batch(ops); err != nil {
			return errResp(err), nil
		}
		return Response{OK: true}, nil
	case "snap":
		snap := s.db.Snapshot()
		s.mu.Lock()
		s.nextSnap++
		id := s.nextSnap
		s.snaps[id] = snap
		s.mu.Unlock()
		return Response{OK: true, Snap: id, Seq: snap.Seq()}, nil
	case "snapget":
		s.mu.Lock()
		snap := s.snaps[req.Snap]
		s.mu.Unlock()
		if snap == nil {
			return Response{Err: fmt.Sprintf("no snapshot %d", req.Snap)}, nil
		}
		v, found, err := snap.Get([]byte(req.Key))
		if err != nil {
			return errResp(err), nil
		}
		return Response{OK: true, Found: found, Val: string(v)}, nil
	case "snaprel":
		s.mu.Lock()
		snap := s.snaps[req.Snap]
		delete(s.snaps, req.Snap)
		s.mu.Unlock()
		if snap != nil {
			snap.Release()
		}
		return Response{OK: true}, nil
	case "flush":
		if err := s.db.Flush(); err != nil {
			return errResp(err), nil
		}
		return Response{OK: true}, nil
	case "stats":
		st := s.db.Stats()
		return Response{OK: true, Seq: st.Seq, Stats: &st}, nil
	case "compact":
		// Admin verb: run (or join) one compaction pass.
		if err := s.db.Compact(); err != nil {
			return errResp(err), nil
		}
		st := s.db.Stats()
		return Response{OK: true, Seq: st.Seq, Stats: &st}, nil
	case "crash":
		// Simulated power failure: on-chip state (and any un-flushed
		// epoch) is lost; the image is what the media held.
		return Response{OK: true}, func() {
			s.Close()
			img := s.db.Crash()
			if s.OnShutdown != nil {
				s.OnShutdown(img, false)
			}
		}
	case "quit":
		// Clean shutdown: settle the final epoch, then checkpoint. A
		// read-only namespace cannot flush, but it has nothing unacked
		// to lose either — quit must still succeed (exit 0) so a
		// degraded daemon can be retired gracefully.
		if err := s.db.Flush(); err != nil && !errors.Is(err, store.ErrReadOnly) {
			return errResp(err), nil
		}
		return Response{OK: true}, func() {
			s.Close()
			img := s.db.Crash()
			if s.OnShutdown != nil {
				s.OnShutdown(img, true)
			}
		}
	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op)}, nil
	}
}

// errResp types known refusals so clients can react without parsing
// error strings.
func errResp(err error) Response {
	resp := Response{Err: err.Error()}
	switch {
	case errors.Is(err, store.ErrReadOnly):
		resp.Code = CodeReadOnly
	case errors.Is(err, ErrLogFull):
		resp.Code = CodeFull
	case errors.Is(err, ErrDBClosed):
		resp.Code = CodeClosed
	}
	return resp
}
