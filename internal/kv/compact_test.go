package kv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

// Internal-package tests: the compaction machinery (manifest slots,
// pass phases, test hooks) is exercised white-box here; the black-box
// crash sweeps live in internal/torture.

func compactStore(t testing.TB, capacity uint64) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{
		Capacity: capacity,
		Params:   engine.Params{UpdateLimit: 16, QueueEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func compactDB(t testing.TB, st *store.Store) *DB {
	t.Helper()
	db, err := Open(st, Options{
		WriteController: WriteControllerOptions{SlowdownDelay: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestManifestRoundTripAndRuling(t *testing.T) {
	rec := manifestRecord{Seq: 7, StartSeq: 123, Half: 1}
	got, ok, err := decodeManifest(encodeManifest(rec))
	if err != nil || !ok || got != rec {
		t.Fatalf("round trip: %+v ok=%v err=%v", got, ok, err)
	}
	if _, ok, err := decodeManifest(mem.Line{}); ok || err != nil {
		t.Fatalf("zero line: ok=%v err=%v", ok, err)
	}
	// Any damaged byte in the sealed region must read as torn, never as
	// a different valid record.
	for i := 0; i < 40; i++ {
		l := encodeManifest(rec)
		l[i] ^= 0x20
		if _, ok, err := decodeManifest(l); ok || !errors.Is(err, errManifestTorn) {
			t.Fatalf("byte %d flip decoded: ok=%v err=%v", i, ok, err)
		}
	}

	// Newest seq wins; a torn slot falls back to the survivor and is
	// named for repair.
	newer := manifestRecord{Seq: 8, StartSeq: 200, Half: 0}
	ruled, torn, err := chooseManifest(encodeManifest(rec), encodeManifest(newer))
	if err != nil || ruled != newer || torn != -1 {
		t.Fatalf("newest-seq-wins: %+v torn=%d err=%v", ruled, torn, err)
	}
	tornLine := encodeManifest(newer)
	tornLine[12] ^= 0xFF
	ruled, torn, err = chooseManifest(encodeManifest(rec), tornLine)
	if err != nil || ruled != rec || torn != 1 {
		t.Fatalf("torn fallback: %+v torn=%d err=%v", ruled, torn, err)
	}
	if _, _, err := chooseManifest(tornLine, tornLine); err == nil {
		t.Fatal("two torn slots accepted")
	}
}

// TestChurnSurvivesBeyondLogCapacity is the acceptance churn workload:
// overwrite a small key set until the namespace has absorbed more than
// four times its log capacity. Without compaction the stop trigger
// would refuse around one capacity's worth; with it every batch must be
// acknowledged — zero permanent stalls, zero lost acked writes.
func TestChurnSurvivesBeyondLogCapacity(t *testing.T) {
	st := compactStore(t, 1<<18)
	db := compactDB(t, st)
	logCap := db.wc.Stats().Capacity
	val := bytes.Repeat([]byte{0xC7}, 1024)
	var written uint64
	model := map[string]byte{}
	for i := 0; written < 4*logCap; i++ {
		key := fmt.Sprintf("churn-%02d", i%16)
		v := append([]byte{byte(i)}, val...)
		if err := db.Put([]byte(key), v); err != nil {
			t.Fatalf("put %d refused after %d bytes (%.1fx capacity): %v",
				i, written, float64(written)/float64(logCap), err)
		}
		model[key] = byte(i)
		written += uint64(len(v))
	}
	s := db.Stats()
	if s.Compaction == nil || s.Compaction.Passes == 0 {
		t.Fatalf("churn of %d bytes over a %d-byte log ran no compaction: %+v", written, logCap, s.Compaction)
	}
	if s.Compaction.ReclaimedLines == 0 {
		t.Fatal("compaction reclaimed no lines")
	}
	for key, tag := range model {
		v, ok, err := db.Get([]byte(key))
		if err != nil || !ok || v[0] != tag || !bytes.Equal(v[1:], val) {
			t.Fatalf("key %s lost through churn: ok=%v err=%v", key, ok, err)
		}
	}
	// The full state must survive a crash + reboot + rescan.
	img := db.Crash()
	st2, _, err := store.Reboot(img, store.Options{Params: engine.Params{UpdateLimit: 16, QueueEntries: 64}})
	if err != nil {
		t.Fatal(err)
	}
	db2 := compactDB(t, st2)
	for key, tag := range model {
		v, ok, err := db2.Get([]byte(key))
		if err != nil || !ok || v[0] != tag {
			t.Fatalf("key %s lost across reboot: ok=%v err=%v", key, ok, err)
		}
	}
	if db2.Generation() == 0 {
		t.Fatal("recovered namespace lost its compaction generation")
	}
}

// TestCompactCrashAtEveryWriteBoundary arms a power failure at every
// accepted host write across a workload with an explicit mid-stream
// pass, and demands reopen always lands on a consistent prefix: acked
// batches present, deleted keys dead, no partial state.
func TestCompactCrashAtEveryWriteBoundary(t *testing.T) {
	type step struct {
		ops []Op
	}
	steps := []step{
		{ops: []Op{{Kind: OpPut, Key: []byte("a"), Val: bytes.Repeat([]byte{1}, 100)}}},
		{ops: []Op{{Kind: OpPut, Key: []byte("b"), Val: bytes.Repeat([]byte{2}, 100)}}},
		{ops: []Op{{Kind: OpDelete, Key: []byte("a")}}},
		{ops: []Op{{Kind: OpPut, Key: []byte("c"), Val: bytes.Repeat([]byte{3}, 100)}}},
	}
	// Prefix states: state after j steps, with compaction after step 2.
	states := make([]map[string]bool, len(steps)+1)
	states[0] = map[string]bool{}
	for i, s := range steps {
		cp := map[string]bool{}
		for k, v := range states[i] {
			cp[k] = v
		}
		for _, op := range s.ops {
			if op.Kind == OpDelete {
				delete(cp, string(op.Key))
			} else {
				cp[string(op.Key)] = true
			}
		}
		states[i+1] = cp
	}

	for n := 0; ; n++ {
		st := compactStore(t, 1<<20)
		db := compactDB(t, st)
		st.ArmCrash(n)
		acked, struck := 0, false
		for i, s := range steps {
			if err := db.Batch(s.ops); err != nil {
				if !errors.Is(err, store.ErrCrashed) {
					t.Fatalf("crash %d step %d: %v", n, i, err)
				}
				struck = true
				break
			}
			acked = i + 1
			if i == 1 {
				if err := db.Compact(); err != nil {
					if !errors.Is(err, store.ErrCrashed) {
						t.Fatalf("crash %d compact: %v", n, err)
					}
					struck = true
					break
				}
			}
		}
		img := db.Crash()
		st2, _, err := store.Reboot(img, store.Options{Params: engine.Params{UpdateLimit: 16, QueueEntries: 64}})
		if err != nil {
			t.Fatalf("crash %d reboot: %v", n, err)
		}
		db2 := compactDB(t, st2)
		// The recovered namespace must equal states[j] for some j >= acked.
		match := -1
		for j := acked; j <= len(steps); j++ {
			okAll := true
			for _, k := range []string{"a", "b", "c"} {
				_, ok, err := db2.Get([]byte(k))
				if err != nil {
					t.Fatalf("crash %d get %s: %v", n, k, err)
				}
				if ok != states[j][k] {
					okAll = false
					break
				}
			}
			if okAll {
				match = j
				break
			}
		}
		if match < 0 {
			t.Fatalf("crash %d: recovered state matches no prefix >= %d acked", n, acked)
		}
		if !struck {
			t.Logf("swept %d crash boundaries", n)
			return
		}
	}
}

// TestSnapshotMidCompactionReadsPreSwitchView pins the satellite
// contract: a snapshot taken while a pass is relocating the live set
// keeps serving the consistent pre-switch view after the switch, the
// retired half's reclaim is deferred to its Release, and a further pass
// is refused while the pin lasts.
func TestSnapshotMidCompactionReadsPreSwitchView(t *testing.T) {
	st := compactStore(t, 1<<20)
	db := compactDB(t, st)
	if err := db.Put([]byte("keep"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("gone"), []byte("dead")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("gone")); err != nil {
		t.Fatal(err)
	}

	var snap *Snapshot
	db.testHookMidCopy = func() { snap = db.Snapshot() }
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.testHookMidCopy = nil
	if snap == nil {
		t.Fatal("mid-copy hook never ran")
	}
	// Overwrite after the pass; the snapshot must still see v1 and the
	// pre-snapshot deletion.
	if err := db.Put([]byte("keep"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := snap.Get([]byte("keep")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("snapshot view moved: (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := snap.Get([]byte("gone")); ok {
		t.Fatal("snapshot resurrects a deleted key")
	}
	if v, _, _ := db.Get([]byte("keep")); string(v) != "v2" {
		t.Fatalf("live view stale: %q", v)
	}
	db.mu.Lock()
	pending := db.pendingReclaim
	db.mu.Unlock()
	if pending < 0 {
		t.Fatal("retired half reclaimed under an open snapshot")
	}
	if err := db.Compact(); !errors.Is(err, ErrCompactPinned) {
		t.Fatalf("pass over a pinned retired half: %v", err)
	}
	snap.Release()
	db.mu.Lock()
	pending = db.pendingReclaim
	db.mu.Unlock()
	if pending >= 0 {
		t.Fatal("Release did not reclaim the retired half")
	}
	if _, _, err := snap.Get([]byte("keep")); !errors.Is(err, ErrSnapshotReleased) {
		t.Fatalf("released snapshot still readable: %v", err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("pass after Release: %v", err)
	}
}

// TestDeletedKeyNeverResurrectsThroughCompactCrashRecover is the
// delete-heavy churn satellite: keys deleted before a pass must stay
// dead through compact + crash + recover, at every crash boundary of
// the pass itself.
func TestDeletedKeyNeverResurrectsThroughCompactCrashRecover(t *testing.T) {
	for n := 0; ; n++ {
		st := compactStore(t, 1<<20)
		db := compactDB(t, st)
		for i := 0; i < 8; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 120)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			if err := db.Delete([]byte(fmt.Sprintf("k%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		// Everything above is acked; only the pass is under the gun.
		st.ArmCrash(n)
		struck := false
		if err := db.Compact(); err != nil {
			if !errors.Is(err, store.ErrCrashed) {
				t.Fatalf("crash %d compact: %v", n, err)
			}
			struck = true
		}
		img := db.Crash()
		st2, _, err := store.Reboot(img, store.Options{Params: engine.Params{UpdateLimit: 16, QueueEntries: 64}})
		if err != nil {
			t.Fatalf("crash %d reboot: %v", n, err)
		}
		db2 := compactDB(t, st2)
		for i := 0; i < 4; i++ {
			if _, ok, _ := db2.Get([]byte(fmt.Sprintf("k%d", i))); ok {
				t.Fatalf("crash %d: deleted key k%d resurrected", n, i)
			}
		}
		for i := 4; i < 8; i++ {
			v, ok, err := db2.Get([]byte(fmt.Sprintf("k%d", i)))
			if err != nil || !ok || len(v) != 120 || v[0] != byte(i) {
				t.Fatalf("crash %d: live key k%d lost (%v,%v)", n, i, ok, err)
			}
		}
		if !struck {
			t.Logf("swept %d pass-internal crash boundaries", n)
			return
		}
	}
}

// TestReopenDiscardsOrphanRunAndConverges: an interrupted pass leaves
// an orphan run (no committed manifest); reopen must hide and reclaim
// it, and a second reopen must find nothing left to reclaim —
// space-reclaimed is monotonic and reopen idempotent.
func TestReopenDiscardsOrphanRunAndConverges(t *testing.T) {
	st := compactStore(t, 1<<20)
	db := compactDB(t, st)
	for i := 0; i < 6; i++ {
		if err := db.Put([]byte(fmt.Sprintf("o%d", i)), bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash right after the run flush, before the manifest commit: the
	// run is fully on media but uncommitted.
	db.testHookMidCopy = func() { st.ArmCrash(0) }
	err := db.Compact()
	if err == nil || !errors.Is(err, store.ErrCrashed) {
		t.Fatalf("pass survived the armed crash: %v", err)
	}
	img := db.Crash()
	st2, _, rerr := store.Reboot(img, store.Options{Params: engine.Params{UpdateLimit: 16, QueueEntries: 64}})
	if rerr != nil {
		t.Fatal(rerr)
	}
	db2 := compactDB(t, st2)
	if g := db2.Generation(); g != 0 {
		t.Fatalf("orphan run committed a generation: %d", g)
	}
	s2 := db2.Stats()
	if s2.Compaction == nil || s2.Compaction.ReclaimedLines == 0 {
		t.Fatalf("reopen did not reclaim the orphan run: %+v", s2.Compaction)
	}
	for i := 0; i < 6; i++ {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("o%d", i)))
		if err != nil || !ok || len(v) != 200 {
			t.Fatalf("key o%d lost to an orphan run: ok=%v err=%v", i, ok, err)
		}
	}
	// Second reopen over the same store: nothing left to reclaim.
	db3 := compactDB(t, st2)
	if s3 := db3.Stats(); s3.Compaction != nil && s3.Compaction.ReclaimedLines != 0 {
		t.Fatalf("reclaim not monotonic: second reopen zeroed %d more lines", s3.Compaction.ReclaimedLines)
	}
}

// TestLadderAndStallStatsStayQuietWhenHealthy pins the satellite
// byte-identity contract: a namespace that never stalled marshals its
// stall stats exactly as the pre-ladder schema did, and the ladder and
// compaction fields are absent entirely.
func TestLadderAndStallStatsStayQuietWhenHealthy(t *testing.T) {
	st := compactStore(t, 1<<20)
	db := compactDB(t, st)
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Ladder != LadderHealthy || s.Compaction != nil {
		t.Fatalf("healthy namespace reports ladder=%q compaction=%+v", s.Ladder, s.Compaction)
	}
	b, err := json.Marshal(s.Stall)
	if err != nil {
		t.Fatal(err)
	}
	wc := db.wc.Stats()
	want := fmt.Sprintf(`{"capacity":%d,"slowdown_at":%d,"stop_at":%d}`, wc.Capacity, wc.SlowdownAt, wc.StopAt)
	if string(b) != want {
		t.Fatalf("faultless stall JSON changed shape:\n got %s\nwant %s", b, want)
	}
	// And the full Stats object omits ladder/compaction keys.
	full, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(full, []byte("ladder")) || bytes.Contains(full, []byte("compaction")) {
		t.Fatalf("faultless stats leak ladder fields: %s", full)
	}
}

// TestBackpressureCountsWritersQueuedBehindPass: a writer arriving
// while a pass runs waits on the backpressure rung and is admitted
// after the switch, with the wait counted and the ladder reporting the
// rung while the pass is active.
func TestBackpressureCountsWritersQueuedBehindPass(t *testing.T) {
	st := compactStore(t, 1<<20)
	db := compactDB(t, st)
	for i := 0; i < 4; i++ {
		if err := db.Put([]byte(fmt.Sprintf("b%d", i)), bytes.Repeat([]byte{9}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	enter := make(chan struct{})
	done := make(chan error, 1)
	db.testHookMidCopy = func() {
		db.mu.Lock()
		ladder := db.ladderLocked()
		db.mu.Unlock()
		if ladder != LadderBackpressure {
			t.Errorf("mid-pass ladder = %q, want backpressure", ladder)
		}
		close(enter)
		// Give the writer a moment to reach the queue; the pass then
		// finishes and releases it.
		time.Sleep(10 * time.Millisecond)
	}
	go func() {
		<-enter
		done <- db.Put([]byte("queued"), []byte("after-pass"))
	}()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued writer refused: %v", err)
	}
	if v, ok, _ := db.Get([]byte("queued")); !ok || string(v) != "after-pass" {
		t.Fatalf("queued write lost: (%q,%v)", v, ok)
	}
}
