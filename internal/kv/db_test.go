package kv_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/store"
)

const capacity = 1 << 20

func openStore(t testing.TB) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{
		Capacity: capacity,
		Params:   engine.Params{UpdateLimit: 16, QueueEntries: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func openDB(t testing.TB, st *store.Store) *kv.DB {
	t.Helper()
	db, err := kv.Open(st, kv.Options{
		WriteController: kv.WriteControllerOptions{SlowdownDelay: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openDB(t, openStore(t))
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get k1 = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("k1")); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestValuesSpanningLines(t *testing.T) {
	db := openDB(t, openStore(t))
	for _, n := range []int{0, 1, 63, 64, 65, 500, 4096} {
		key := []byte(fmt.Sprintf("len-%d", n))
		val := bytes.Repeat([]byte{byte(n)}, n)
		if err := db.Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, ok, err := db.Get(key)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("len %d: round-trip failed (ok=%v err=%v got %d bytes)", n, ok, err, len(got))
		}
	}
}

func TestReopenRebuildsKeymap(t *testing.T) {
	st := openStore(t)
	db := openDB(t, st)
	want := map[string]string{}
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("key-%02d", i), fmt.Sprintf("val-%02d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := db.Delete([]byte("key-07")); err != nil {
		t.Fatal(err)
	}
	delete(want, "key-07")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A second DB over the same store must rebuild the identical keymap
	// from the log alone.
	db2 := openDB(t, st)
	if got := db2.Stats().Keys; got != len(want) {
		t.Fatalf("reopened keymap has %d keys, want %d", got, len(want))
	}
	for k, v := range want {
		got, ok, err := db2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("reopened get %s = (%q,%v,%v)", k, got, ok, err)
		}
	}
	if _, ok, _ := db2.Get([]byte("key-07")); ok {
		t.Fatal("deleted key resurrected by reopen")
	}
}

func TestBatchVisibleAtomically(t *testing.T) {
	db := openDB(t, openStore(t))
	ops := []kv.Op{
		{Kind: kv.OpPut, Key: []byte("a"), Val: []byte("1")},
		{Kind: kv.OpPut, Key: []byte("b"), Val: []byte("2")},
		{Kind: kv.OpDelete, Key: []byte("a")},
	}
	if err := db.Batch(ops); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("a")); ok {
		t.Fatal("in-batch delete not applied")
	}
	v, ok, _ := db.Get([]byte("b"))
	if !ok || string(v) != "2" {
		t.Fatal("batch put missing")
	}
}

// TestCrashMidBatchAtomicEverywhere is the namespace-level crash sweep:
// arm a power failure at every facade host-write boundary inside a
// batch and check, after the full recovery path, that acknowledged
// writes survive and the in-flight batch is all-or-nothing.
func TestCrashMidBatchAtomicEverywhere(t *testing.T) {
	// The victim batch: 3 ops, multi-line payload.
	victim := []kv.Op{
		{Kind: kv.OpPut, Key: []byte("v1"), Val: bytes.Repeat([]byte{1}, 100)},
		{Kind: kv.OpPut, Key: []byte("v2"), Val: bytes.Repeat([]byte{2}, 100)},
		{Kind: kv.OpDelete, Key: []byte("acked-1")},
	}
	for n := 0; n < 12; n++ {
		t.Run(fmt.Sprintf("crash-after-%d-writes", n), func(t *testing.T) {
			st := openStore(t)
			db := openDB(t, st)
			// Acked prefix: these must survive no matter what.
			if err := db.Put([]byte("acked-1"), []byte("A1")); err != nil {
				t.Fatal(err)
			}
			if err := db.Put([]byte("acked-2"), []byte("A2")); err != nil {
				t.Fatal(err)
			}
			st.ArmCrash(n)
			err := db.Batch(victim)
			acked := err == nil
			if !acked && !errors.Is(err, store.ErrCrashed) {
				t.Fatalf("batch failed with %v, want ErrCrashed", err)
			}
			img := db.Crash()

			st2, rep, rerr := store.Reboot(img, store.Options{})
			if rerr != nil {
				t.Fatalf("reboot: %v (report %+v)", rerr, rep)
			}
			db2 := openDB(t, st2)
			// Oracle 1: acked writes are never lost.
			v2, ok, gerr := db2.Get([]byte("acked-2"))
			if gerr != nil || !ok || string(v2) != "A2" {
				t.Fatalf("acked-2 lost: (%q,%v,%v)", v2, ok, gerr)
			}
			if acked {
				// The victim batch was acknowledged: all of it.
				assertBatchApplied(t, db2, true)
				return
			}
			// Oracle 2: all-or-nothing. The batch is applied iff its
			// commit frame made it; either way, never partially.
			_, hasV1, _ := db2.Get([]byte("v1"))
			assertBatchApplied(t, db2, hasV1)
		})
	}
}

func assertBatchApplied(t *testing.T, db *kv.DB, applied bool) {
	t.Helper()
	_, hasV1, _ := db.Get([]byte("v1"))
	_, hasV2, _ := db.Get([]byte("v2"))
	_, hasAcked1, _ := db.Get([]byte("acked-1"))
	if applied {
		if !hasV1 || !hasV2 || hasAcked1 {
			t.Fatalf("batch partially applied: v1=%v v2=%v acked-1=%v (want true,true,false)", hasV1, hasV2, hasAcked1)
		}
	} else {
		if hasV1 || hasV2 || !hasAcked1 {
			t.Fatalf("batch partially applied: v1=%v v2=%v acked-1=%v (want false,false,true)", hasV1, hasV2, hasAcked1)
		}
	}
}

func TestConcurrentWritersGroupCommit(t *testing.T) {
	st := openStore(t)
	db := openDB(t, st)
	const writers, perWriter = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if err := db.Put([]byte(k), []byte(k)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			k := fmt.Sprintf("w%d-%d", w, i)
			v, ok, err := db.Get([]byte(k))
			if err != nil || !ok || string(v) != k {
				t.Fatalf("get %s = (%q,%v,%v)", k, v, ok, err)
			}
		}
	}
	if s := db.Stats(); s.Ops != writers*perWriter {
		t.Fatalf("ops = %d, want %d", s.Ops, writers*perWriter)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := openDB(t, openStore(t))
	if err := db.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("gone"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if err := db.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("later"), []byte("y")); err != nil {
		t.Fatal(err)
	}

	v, ok, err := snap.Get([]byte("k"))
	if err != nil || !ok || string(v) != "old" {
		t.Fatalf("snapshot sees (%q,%v,%v), want old", v, ok, err)
	}
	if _, ok, _ := snap.Get([]byte("gone")); !ok {
		t.Fatal("snapshot lost a key deleted after the snapshot")
	}
	if _, ok, _ := snap.Get([]byte("later")); ok {
		t.Fatal("snapshot sees a key written after the snapshot")
	}
	v, _, _ = db.Get([]byte("k"))
	if string(v) != "new" {
		t.Fatal("live view stale")
	}
}

func TestWriteControllerStopsWhenFull(t *testing.T) {
	st := openStore(t)
	db, err := kv.Open(st, kv.Options{
		WriteController: kv.WriteControllerOptions{
			SlowdownFrac:  0.001,
			StopFrac:      0.01, // ~10 KiB of a 1 MiB log
			SlowdownDelay: time.Nanosecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{7}, 512)
	var full bool
	for i := 0; i < 64 && !full; i++ {
		err := db.Put([]byte(fmt.Sprintf("fill-%d", i)), val)
		if errors.Is(err, kv.ErrLogFull) {
			full = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("log never reported full past the stop trigger")
	}
	s := db.Stats()
	if s.Stall.Stops == 0 || s.Stall.Slowdowns == 0 {
		t.Fatalf("stall stats did not fire: %+v", s.Stall)
	}
	// Reads keep working at the stop trigger.
	if _, ok, err := db.Get([]byte("fill-0")); err != nil || !ok {
		t.Fatalf("read under stop trigger: (%v,%v)", ok, err)
	}
}

func TestClosedDBRefuses(t *testing.T) {
	db := openDB(t, openStore(t))
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k2"), []byte("v")); !errors.Is(err, kv.ErrDBClosed) {
		t.Fatalf("put on closed db: %v", err)
	}
	if _, _, err := db.Get([]byte("k")); !errors.Is(err, kv.ErrDBClosed) {
		t.Fatalf("get on closed db: %v", err)
	}
}

func TestImageRoundTripServesReads(t *testing.T) {
	st := openStore(t)
	db := openDB(t, st)
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	img := db.Crash()
	b, err := store.EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := store.DecodeImage(b)
	if err != nil {
		t.Fatal(err)
	}
	st2, _, err := store.Reboot(img2, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2 := openDB(t, st2)
	for i := 0; i < 10; i++ {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after encode/decode/reboot: (%q,%v,%v)", i, v, ok, err)
		}
	}
}
