// Package kv is a secure log-structured key-value namespace over the
// storage-engine facade. All persistent state lives in the facade's
// data region as an append-only frame log; the in-memory keymap is a
// pure cache rebuilt by scanning the log at Open, so a crash at any
// host-write boundary recovers to exactly the prefix of committed
// frames.
//
// Atomicity comes from frame layout, not locking: a batch's payload
// lines are written first and its header line last, and the header
// carries checksums over both itself and the payload. A crash anywhere
// before the header write leaves an orphan payload with no valid
// header — invisible to the recovery scan — while a torn or
// half-serviced header fails its checksum. Either way the namespace
// exposes all of the batch or none of it. Durability of an
// acknowledged batch comes from the facade's FlushEpoch: the DB only
// acks a batch once a covering epoch flush has returned.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"ccnvm/internal/mem"
)

// OpKind discriminates log records.
type OpKind uint8

const (
	// OpPut maps a key to a value.
	OpPut OpKind = 1
	// OpDelete removes a key.
	OpDelete OpKind = 2
)

// Op is one mutation in a batch.
type Op struct {
	Kind OpKind
	Key  []byte
	Val  []byte
}

// Frame header line layout (one mem.Line):
//
//	[0:8)   magic "CKVBATCH"
//	[8:16)  seq   — 1-based, strictly sequential; a gap ends the log
//	[16:20) count — ops in the frame
//	[20:24) payloadBytes
//	[24:32) FNV-64a over the payload bytes
//	[32:40) FNV-64a over header bytes [0:32)
//	[40:64) zero
const (
	frameMagic   = "CKVBATCH"
	maxKeyLen    = 1 << 16
	maxValLen    = 1 << 24
	recHeadBytes = 1 + 4 + 4 // kind + keyLen + valLen
)

// errFrameEnd distinguishes "no more frames" from a malformed record
// inside a checksummed frame (which is a corruption bug, not an end).
var errFrameEnd = errors.New("kv: end of log")

func fnv64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// encodePayload serializes ops back-to-back. Record: kind(1),
// keyLen(4), valLen(4), key, val.
func encodePayload(ops []Op) ([]byte, error) {
	var n int
	for _, op := range ops {
		if op.Kind != OpPut && op.Kind != OpDelete {
			return nil, fmt.Errorf("kv: bad op kind %d", op.Kind)
		}
		if len(op.Key) == 0 || len(op.Key) > maxKeyLen {
			return nil, fmt.Errorf("kv: key length %d out of range [1,%d]", len(op.Key), maxKeyLen)
		}
		if len(op.Val) > maxValLen {
			return nil, fmt.Errorf("kv: value length %d exceeds %d", len(op.Val), maxValLen)
		}
		if op.Kind == OpDelete && len(op.Val) != 0 {
			return nil, errors.New("kv: delete op carries a value")
		}
		n += recHeadBytes + len(op.Key) + len(op.Val)
	}
	buf := make([]byte, 0, n)
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Key)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Val)))
		buf = append(buf, op.Key...)
		buf = append(buf, op.Val...)
	}
	return buf, nil
}

// record is one decoded log record plus the byte range its value
// occupies inside the frame payload (for the index's value refs).
type record struct {
	kind   OpKind
	key    []byte
	valOff int // value offset within the payload
	valLen int
}

// decodePayload walks count records out of a checksummed payload.
func decodePayload(payload []byte, count int) ([]record, error) {
	recs := make([]record, 0, count)
	off := 0
	for i := 0; i < count; i++ {
		if off+recHeadBytes > len(payload) {
			return nil, fmt.Errorf("kv: record %d header past payload end", i)
		}
		kind := OpKind(payload[off])
		kl := int(binary.LittleEndian.Uint32(payload[off+1:]))
		vl := int(binary.LittleEndian.Uint32(payload[off+5:]))
		off += recHeadBytes
		if kind != OpPut && kind != OpDelete {
			return nil, fmt.Errorf("kv: record %d bad kind %d", i, kind)
		}
		if kl <= 0 || kl > maxKeyLen || vl < 0 || vl > maxValLen || off+kl+vl > len(payload) {
			return nil, fmt.Errorf("kv: record %d lengths (%d,%d) past payload end", i, kl, vl)
		}
		recs = append(recs, record{
			kind:   kind,
			key:    payload[off : off+kl],
			valOff: off + kl,
			valLen: vl,
		})
		off += kl + vl
	}
	if off != len(payload) {
		return nil, fmt.Errorf("kv: %d trailing payload bytes", len(payload)-off)
	}
	return recs, nil
}

// encodeHeader builds the frame header line.
func encodeHeader(seq uint64, count, payloadBytes int) mem.Line {
	var l mem.Line
	copy(l[0:8], frameMagic)
	binary.LittleEndian.PutUint64(l[8:16], seq)
	binary.LittleEndian.PutUint32(l[16:20], uint32(count))
	binary.LittleEndian.PutUint32(l[20:24], uint32(payloadBytes))
	// payload checksum is patched in by the caller (it owns the bytes)
	return l
}

func sealHeader(l *mem.Line, payloadCk uint64) {
	binary.LittleEndian.PutUint64(l[24:32], payloadCk)
	binary.LittleEndian.PutUint64(l[32:40], fnv64(l[0:32]))
}

// parseHeader validates a header line and returns (seq, count,
// payloadBytes, payloadCk). errFrameEnd means "not a frame" — the
// normal end of the scan.
func parseHeader(l mem.Line) (seq uint64, count, payloadBytes int, payloadCk uint64, err error) {
	if string(l[0:8]) != frameMagic {
		return 0, 0, 0, 0, errFrameEnd
	}
	if got, want := binary.LittleEndian.Uint64(l[32:40]), fnv64(l[0:32]); got != want {
		return 0, 0, 0, 0, errFrameEnd
	}
	seq = binary.LittleEndian.Uint64(l[8:16])
	count = int(binary.LittleEndian.Uint32(l[16:20]))
	payloadBytes = int(binary.LittleEndian.Uint32(l[20:24]))
	payloadCk = binary.LittleEndian.Uint64(l[24:32])
	if seq == 0 || count <= 0 || payloadBytes <= 0 {
		return 0, 0, 0, 0, errFrameEnd
	}
	return seq, count, payloadBytes, payloadCk, nil
}

// payloadLines is the line count covering n payload bytes.
func payloadLines(n int) int {
	return (n + mem.LineSize - 1) / mem.LineSize
}

// frameLines is the full frame footprint: header plus payload.
func frameLines(payloadBytes int) int {
	return 1 + payloadLines(payloadBytes)
}
