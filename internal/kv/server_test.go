package kv_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/nvm"
	"ccnvm/internal/store"
)

// client is a test-side JSON-lines connection.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t testing.TB, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) do(t testing.TB, req kv.Request) kv.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.conn.Write(append(b, '\n')); err != nil {
		t.Fatal(err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp kv.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func startServer(t *testing.T, db *kv.DB) (*kv.Server, string, chan shutdown) {
	t.Helper()
	srv := kv.NewServer(db)
	down := make(chan shutdown, 1)
	srv.OnShutdown = func(img *engine.CrashImage, clean bool) {
		down <- shutdown{img: img, clean: clean}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String(), down
}

type shutdown struct {
	img   *engine.CrashImage
	clean bool
}

func TestServerBasicOps(t *testing.T) {
	db := openDB(t, openStore(t))
	_, addr, _ := startServer(t, db)
	c := dial(t, addr)

	if resp := c.do(t, kv.Request{Op: "ping"}); !resp.OK {
		t.Fatalf("ping: %+v", resp)
	}
	if resp := c.do(t, kv.Request{Op: "put", Key: "k", Val: "v"}); !resp.OK {
		t.Fatalf("put: %+v", resp)
	}
	resp := c.do(t, kv.Request{Op: "get", Key: "k"})
	if !resp.OK || !resp.Found || resp.Val != "v" {
		t.Fatalf("get: %+v", resp)
	}
	if resp := c.do(t, kv.Request{Op: "del", Key: "k"}); !resp.OK {
		t.Fatalf("del: %+v", resp)
	}
	if resp := c.do(t, kv.Request{Op: "get", Key: "k"}); resp.Found {
		t.Fatalf("get after del: %+v", resp)
	}
	if resp := c.do(t, kv.Request{Op: "nope"}); resp.Err == "" {
		t.Fatal("unknown op accepted")
	}
	resp = c.do(t, kv.Request{Op: "batch", Ops: []kv.RequestOp{
		{Op: "put", Key: "b1", Val: "1"},
		{Op: "put", Key: "b2", Val: "2"},
	}})
	if !resp.OK {
		t.Fatalf("batch: %+v", resp)
	}
	resp = c.do(t, kv.Request{Op: "stats"})
	if !resp.OK || resp.Stats == nil || resp.Stats.Keys != 2 {
		t.Fatalf("stats: %+v", resp)
	}
}

func TestServerSnapshotOps(t *testing.T) {
	db := openDB(t, openStore(t))
	_, addr, _ := startServer(t, db)
	c := dial(t, addr)

	c.do(t, kv.Request{Op: "put", Key: "k", Val: "old"})
	snap := c.do(t, kv.Request{Op: "snap"})
	if !snap.OK || snap.Snap == 0 {
		t.Fatalf("snap: %+v", snap)
	}
	c.do(t, kv.Request{Op: "put", Key: "k", Val: "new"})

	got := c.do(t, kv.Request{Op: "snapget", Snap: snap.Snap, Key: "k"})
	if !got.OK || got.Val != "old" {
		t.Fatalf("snapget: %+v", got)
	}
	live := c.do(t, kv.Request{Op: "get", Key: "k"})
	if live.Val != "new" {
		t.Fatalf("live get: %+v", live)
	}
	if rel := c.do(t, kv.Request{Op: "snaprel", Snap: snap.Snap}); !rel.OK {
		t.Fatalf("snaprel: %+v", rel)
	}
	if after := c.do(t, kv.Request{Op: "snapget", Snap: snap.Snap, Key: "k"}); after.Err == "" {
		t.Fatal("released snapshot still readable")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	db := openDB(t, openStore(t))
	_, addr, _ := startServer(t, db)

	const clients, ops = 16, 8
	var wg sync.WaitGroup
	fail := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fail <- err.Error()
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			enc := json.NewEncoder(conn)
			for j := 0; j < ops; j++ {
				k := fmt.Sprintf("c%d-%d", i, j)
				if err := enc.Encode(kv.Request{Op: "put", Key: k, Val: k}); err != nil {
					fail <- err.Error()
					return
				}
				line, err := r.ReadBytes('\n')
				if err != nil {
					fail <- err.Error()
					return
				}
				var resp kv.Response
				if err := json.Unmarshal(line, &resp); err != nil || !resp.OK {
					fail <- fmt.Sprintf("put %s: %s err=%v", k, line, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	for i := 0; i < clients; i++ {
		for j := 0; j < ops; j++ {
			k := fmt.Sprintf("c%d-%d", i, j)
			v, ok, err := db.Get([]byte(k))
			if err != nil || !ok || string(v) != k {
				t.Fatalf("get %s = (%q,%v,%v)", k, v, ok, err)
			}
		}
	}
}

// TestServerCrashRestartKeepsAckedWrites is the end-to-end kill-mid-
// stream drill: acked writes before a crash op must be served again
// after reboot from the captured image.
func TestServerCrashRestartKeepsAckedWrites(t *testing.T) {
	db := openDB(t, openStore(t))
	_, addr, down := startServer(t, db)
	c := dial(t, addr)
	for i := 0; i < 10; i++ {
		resp := c.do(t, kv.Request{Op: "put", Key: fmt.Sprintf("k%d", i), Val: fmt.Sprintf("v%d", i)})
		if !resp.OK {
			t.Fatalf("put %d: %+v", i, resp)
		}
	}
	if resp := c.do(t, kv.Request{Op: "crash"}); !resp.OK {
		t.Fatalf("crash: %+v", resp)
	}
	d := <-down
	if d.clean {
		t.Fatal("crash reported as clean shutdown")
	}

	st2, rep, err := store.Reboot(d.img, store.Options{})
	if err != nil {
		t.Fatalf("reboot: %v (%+v)", err, rep)
	}
	db2 := openDB(t, st2)
	_, addr2, _ := startServer(t, db2)
	c2 := dial(t, addr2)
	for i := 0; i < 10; i++ {
		resp := c2.do(t, kv.Request{Op: "get", Key: fmt.Sprintf("k%d", i)})
		if !resp.OK || !resp.Found || resp.Val != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after crash+reboot: %+v", i, resp)
		}
	}
}

func TestServerQuitIsCleanShutdown(t *testing.T) {
	db := openDB(t, openStore(t))
	_, addr, down := startServer(t, db)
	c := dial(t, addr)
	c.do(t, kv.Request{Op: "put", Key: "k", Val: "v"})
	if resp := c.do(t, kv.Request{Op: "quit"}); !resp.OK {
		t.Fatalf("quit: %+v", resp)
	}
	d := <-down
	if !d.clean {
		t.Fatal("quit reported as crash")
	}
	st2, _, err := store.Reboot(d.img, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db2 := openDB(t, st2)
	if v, ok, _ := db2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("value lost across clean shutdown: (%q,%v)", v, ok)
	}
}

// TestServerReadOnlyDegradationServesReads retires a namespace
// gracefully: with the media degraded to read-only (spare pool
// exhausted), gets and stats keep serving, writes come back as typed
// "readonly" refusals rather than connection errors, and quit still
// checkpoints and reports a clean shutdown.
func TestServerReadOnlyDegradationServesReads(t *testing.T) {
	st, err := store.Open(store.Options{
		Capacity: capacity,
		Params:   engine.Params{UpdateLimit: 16, QueueEntries: 64},
		Faults:   &nvm.FaultModel{SpareLines: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := openDB(t, st)
	_, addr, down := startServer(t, db)
	c := dial(t, addr)

	if resp := c.do(t, kv.Request{Op: "put", Key: "k", Val: "v"}); !resp.OK {
		t.Fatalf("healthy put: %+v", resp)
	}
	// Consume the single spare: the pure-function health machine flips
	// to read-only on the very next admission check.
	if err := st.Device().Remap(st.Device().Snapshot().Store.Addrs()[0], true); err != nil {
		t.Fatal(err)
	}
	if st.Health() != store.HealthReadOnly {
		t.Fatalf("health = %v after pool exhaustion", st.Health())
	}

	if resp := c.do(t, kv.Request{Op: "get", Key: "k"}); !resp.OK || !resp.Found || resp.Val != "v" {
		t.Fatalf("read-only get: %+v", resp)
	}
	if resp := c.do(t, kv.Request{Op: "stats"}); !resp.OK || resp.Stats == nil || resp.Stats.Ladder != kv.LadderReadOnly {
		t.Fatalf("read-only stats: %+v", resp)
	}
	resp := c.do(t, kv.Request{Op: "put", Key: "k2", Val: "x"})
	if resp.OK || resp.Code != kv.CodeReadOnly {
		t.Fatalf("read-only put not typed: %+v", resp)
	}
	resp = c.do(t, kv.Request{Op: "batch", Ops: []kv.RequestOp{{Op: "put", Key: "k3", Val: "y"}}})
	if resp.OK || resp.Code != kv.CodeReadOnly {
		t.Fatalf("read-only batch not typed: %+v", resp)
	}

	if resp := c.do(t, kv.Request{Op: "quit"}); !resp.OK {
		t.Fatalf("read-only quit: %+v", resp)
	}
	if d := <-down; !d.clean {
		t.Fatal("read-only quit reported as crash")
	}
}
