package kv

// Snapshot is a point-in-time read view: the keymap as of some frame
// sequence number. Because the log is append-only and value refs point
// into committed frames that are never rewritten, a snapshot is a pure
// index copy — no log pages are pinned and writers are never stalled
// by open snapshots. (The facade's COW NVM snapshot serves crash
// images; this one serves consistent reads.)
type Snapshot struct {
	db  *DB
	idx map[string]valRef
	seq uint64
}

// Snapshot captures the current keymap. The view is immutable: writes
// applied after the call are invisible to it.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	idx := make(map[string]valRef, len(db.idx))
	for k, v := range db.idx {
		idx[k] = v
	}
	return &Snapshot{db: db, idx: idx, seq: db.seq}
}

// Seq is the frame sequence number the snapshot froze at.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Len is the number of live keys in the view.
func (s *Snapshot) Len() int { return len(s.idx) }

// Get returns the value key had when the snapshot was taken.
func (s *Snapshot) Get(key []byte) ([]byte, bool, error) {
	ref, ok := s.idx[string(key)]
	if !ok {
		return nil, false, nil
	}
	v, err := s.db.readBytes(ref)
	return v, ok, err
}
