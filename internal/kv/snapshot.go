package kv

import "errors"

// ErrSnapshotReleased reports a read on a released snapshot.
var ErrSnapshotReleased = errors.New("kv: snapshot released")

// Snapshot is a point-in-time read view: the keymap as of some frame
// sequence number. The log is append-only between compaction passes,
// so a snapshot is a pure index copy; what keeps the copy readable
// across a pass is the pin it holds on the arena half its refs point
// into — a committed pass defers reclaiming that half until the last
// pinning snapshot is Released, so a snapshot taken mid-compaction
// keeps serving the consistent pre-switch view. (The facade's COW NVM
// snapshot serves crash images; this one serves consistent reads.)
type Snapshot struct {
	db       *DB
	idx      map[string]valRef
	seq      uint64
	half     int
	released bool
}

// Snapshot captures the current keymap and pins the active half
// against reclamation until Release.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	idx := make(map[string]valRef, len(db.idx))
	for k, v := range db.idx {
		idx[k] = v
	}
	db.pins[db.active]++
	return &Snapshot{db: db, idx: idx, seq: db.seq, half: db.active}
}

// Seq is the frame sequence number the snapshot froze at.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Len is the number of live keys in the view.
func (s *Snapshot) Len() int { return len(s.idx) }

// Get returns the value key had when the snapshot was taken.
func (s *Snapshot) Get(key []byte) ([]byte, bool, error) {
	s.db.rmu.RLock()
	defer s.db.rmu.RUnlock()
	s.db.mu.Lock()
	released := s.released
	s.db.mu.Unlock()
	if released {
		return nil, false, ErrSnapshotReleased
	}
	ref, ok := s.idx[string(key)]
	if !ok {
		return nil, false, nil
	}
	v, err := s.db.readBytes(ref)
	return v, ok, err
}

// Release drops the snapshot's pin. If a committed compaction pass was
// waiting on it, the retired half is reclaimed now. Idempotent; reads
// after Release fail with ErrSnapshotReleased.
func (s *Snapshot) Release() {
	db := s.db
	db.mu.Lock()
	if s.released {
		db.mu.Unlock()
		return
	}
	s.released = true
	db.pins[s.half]--
	reclaim := db.pendingReclaim == s.half && db.pins[s.half] == 0 && s.half != db.active
	db.mu.Unlock()
	if reclaim {
		// Deferred reclaim errors (read-only media, crash) keep
		// pendingReclaim set; the next pass or reopen retries.
		db.reclaimRetired(s.half)
	}
}
