package kv

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

// ErrDBClosed reports an operation on a closed or crashed DB.
var ErrDBClosed = errors.New("kv: db closed")

// Options tunes a DB.
type Options struct {
	// WriteController configures the stall triggers (see
	// WriteControllerOptions for the defaults).
	WriteController WriteControllerOptions
}

// valRef locates one value inside the append-only log: the frame's
// first payload line plus the value's byte range within the payload.
// Log addresses are never rewritten while the DB is open, so refs stay
// valid for the DB's lifetime — which is what makes snapshots a pure
// index copy.
type valRef struct {
	payload mem.Addr
	off     int
	n       int
}

// Stats is a point-in-time view of a DB.
type Stats struct {
	Keys       int                  `json:"keys"`
	Seq        uint64               `json:"seq"`
	DurableSeq uint64               `json:"durable_seq"`
	LogBytes   uint64               `json:"log_bytes"`
	Capacity   uint64               `json:"capacity"`
	Gets       uint64               `json:"gets"`
	Batches    uint64               `json:"batches"`
	Ops        uint64               `json:"ops"`
	Stall      WriteControllerStats `json:"stall"`
}

// DB is one KV namespace over a storage-engine facade. All methods are
// safe for concurrent use; batches from concurrent writers serialize
// at the log head and share epoch flushes (group commit).
type DB struct {
	st *store.Store
	wc *WriteController

	mu     sync.Mutex // index, log head, append ordering
	idx    map[string]valRef
	head   mem.Addr // next free log line
	seq    uint64   // last appended frame
	closed bool

	gets    uint64
	batches uint64
	opCount uint64

	fmu      sync.Mutex // group-commit state
	fcond    *sync.Cond
	flushing bool
	appended uint64 // highest seq fully in the log
	durable  uint64 // highest seq covered by a returned FlushEpoch
	flushErr error  // sticky terminal flush failure
}

// Open builds the namespace over st, rebuilding the keymap by scanning
// the frame log from the start of the data region. The scan stops at
// the first line that is not a valid next frame header — everything
// past the last committed frame (orphan payloads of a crashed batch,
// never-written zero lines) is invisible, which is the crash-atomicity
// guarantee.
func Open(st *store.Store, o Options) (*DB, error) {
	wc, err := NewWriteController(st.Capacity(), o.WriteController)
	if err != nil {
		return nil, err
	}
	db := &DB{st: st, wc: wc, idx: make(map[string]valRef)}
	db.fcond = sync.NewCond(&db.fmu)
	if err := db.scan(); err != nil {
		return nil, err
	}
	db.appended, db.durable = db.seq, db.seq
	return db, nil
}

// scan replays the committed frame prefix into the index.
func (db *DB) scan() error {
	capBytes := db.st.Capacity()
	addr := mem.Addr(0)
	for {
		if uint64(addr)+mem.LineSize > capBytes {
			break
		}
		hl, err := db.st.Read(addr)
		if err != nil {
			return fmt.Errorf("kv: log scan read %#x: %w", uint64(addr), err)
		}
		seq, count, payloadBytes, payloadCk, err := parseHeader(hl)
		if err != nil || seq != db.seq+1 {
			break
		}
		need := uint64(frameLines(payloadBytes)) * mem.LineSize
		if uint64(addr)+need > capBytes {
			break
		}
		payloadStart := addr + mem.LineSize
		payload, err := db.readRange(payloadStart, payloadBytes)
		if err != nil {
			return fmt.Errorf("kv: log scan payload at %#x: %w", uint64(payloadStart), err)
		}
		if fnv64(payload) != payloadCk {
			break
		}
		recs, err := decodePayload(payload, count)
		if err != nil {
			break
		}
		db.apply(payloadStart, payload, recs)
		db.seq = seq
		addr += mem.Addr(need)
	}
	db.head = addr
	return nil
}

// apply folds one frame's records into the index.
func (db *DB) apply(payloadStart mem.Addr, payload []byte, recs []record) {
	for _, r := range recs {
		switch r.kind {
		case OpPut:
			db.idx[string(r.key)] = valRef{payload: payloadStart, off: r.valOff, n: r.valLen}
		case OpDelete:
			delete(db.idx, string(r.key))
		}
	}
}

// readRange assembles n bytes starting at line-aligned addr.
func (db *DB) readRange(addr mem.Addr, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for got := 0; got < n; {
		l, err := db.st.Read(addr)
		if err != nil {
			return nil, err
		}
		take := n - got
		if take > mem.LineSize {
			take = mem.LineSize
		}
		out = append(out, l[:take]...)
		got += take
		addr += mem.LineSize
	}
	return out, nil
}

// readBytes reads one value by ref. Refs point into committed frames,
// which are never rewritten, so this needs no index lock.
func (db *DB) readBytes(ref valRef) ([]byte, error) {
	if ref.n == 0 {
		return []byte{}, nil
	}
	out := make([]byte, 0, ref.n)
	pos := uint64(ref.payload) + uint64(ref.off)
	for got := 0; got < ref.n; {
		la := mem.Align(mem.Addr(pos))
		l, err := db.st.Read(la)
		if err != nil {
			return nil, err
		}
		off := int(pos - uint64(la))
		take := mem.LineSize - off
		if take > ref.n-got {
			take = ref.n - got
		}
		out = append(out, l[off:off+take]...)
		got += take
		pos += uint64(take)
	}
	return out, nil
}

// Get returns the value for key, reporting whether it exists. Reads
// see every applied batch, including ones not yet acknowledged
// (read-your-writes); use a Snapshot for a frozen view.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, false, ErrDBClosed
	}
	db.gets++
	ref, ok := db.idx[string(key)]
	db.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	v, err := db.readBytes(ref)
	return v, ok, err
}

// Put maps key to val, acknowledged durable.
func (db *DB) Put(key, val []byte) error {
	return db.Batch([]Op{{Kind: OpPut, Key: key, Val: val}})
}

// Delete removes key, acknowledged durable.
func (db *DB) Delete(key []byte) error {
	return db.Batch([]Op{{Kind: OpDelete, Key: key}})
}

// Batch applies ops atomically: after a crash at any point, recovery
// sees either every op or none. Batch returns only once a covering
// epoch flush has committed — a nil return means the batch survives
// any later crash.
func (db *DB) Batch(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	payload, err := encodePayload(ops)
	if err != nil {
		return err
	}
	need := uint64(frameLines(len(payload))) * mem.LineSize

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrDBClosed
	}
	delay, err := db.wc.Admit(uint64(db.head), need)
	if err != nil {
		db.mu.Unlock()
		return err
	}
	header := db.head
	payloadStart := header + mem.LineSize
	// Payload first, header last: a crash before the header write
	// leaves no valid frame, so the batch is all-or-nothing.
	for i := 0; i < payloadLines(len(payload)); i++ {
		var l mem.Line
		copy(l[:], payload[i*mem.LineSize:])
		if werr := db.st.Write(payloadStart+mem.Addr(i*mem.LineSize), l); werr != nil {
			db.mu.Unlock()
			return fmt.Errorf("kv: batch payload write: %w", werr)
		}
	}
	hl := encodeHeader(db.seq+1, len(ops), len(payload))
	sealHeader(&hl, fnv64(payload))
	if werr := db.st.Write(header, hl); werr != nil {
		db.mu.Unlock()
		return fmt.Errorf("kv: batch commit write: %w", werr)
	}
	db.seq++
	mySeq := db.seq
	db.head += mem.Addr(need)
	db.batches++
	db.opCount += uint64(len(ops))
	recs, derr := decodePayload(payload, len(ops))
	if derr != nil {
		// Cannot happen: we just encoded it. Guard anyway.
		db.mu.Unlock()
		return fmt.Errorf("kv: round-trip decode: %w", derr)
	}
	db.apply(payloadStart, payload, recs)
	db.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	return db.waitDurable(mySeq)
}

// waitDurable blocks until an epoch flush covering seq has returned,
// sharing flushes across concurrent writers: whichever writer finds no
// flush in flight runs one for everybody appended so far; the rest
// wait on the condvar.
func (db *DB) waitDurable(seq uint64) error {
	db.fmu.Lock()
	defer db.fmu.Unlock()
	if seq > db.appended {
		db.appended = seq
	}
	for db.durable < seq && db.flushErr == nil {
		if db.flushing {
			db.fcond.Wait()
			continue
		}
		db.flushing = true
		target := db.appended
		db.fmu.Unlock()
		err := db.st.FlushEpoch()
		db.fmu.Lock()
		db.flushing = false
		if err != nil {
			db.flushErr = err
		} else if target > db.durable {
			db.durable = target
		}
		db.fcond.Broadcast()
	}
	if db.durable >= seq {
		return nil
	}
	return fmt.Errorf("kv: batch %d not durable: %w", seq, db.flushErr)
}

// Flush forces an epoch flush covering everything appended so far.
func (db *DB) Flush() error {
	db.mu.Lock()
	seq := db.seq
	db.mu.Unlock()
	if seq == 0 {
		return nil
	}
	return db.waitDurable(seq)
}

// Stats snapshots the namespace counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	s := Stats{
		Keys:     len(db.idx),
		Seq:      db.seq,
		LogBytes: uint64(db.head),
		Capacity: db.st.Capacity(),
		Gets:     db.gets,
		Batches:  db.batches,
		Ops:      db.opCount,
	}
	db.mu.Unlock()
	db.fmu.Lock()
	s.DurableSeq = db.durable
	db.fmu.Unlock()
	s.Stall = db.wc.Stats()
	return s
}

// Store exposes the underlying facade (health probes, torture seams).
func (db *DB) Store() *store.Store { return db.st }

// Crash powers the machine off mid-run and returns the crash image.
// The DB is unusable afterwards.
func (db *DB) Crash() *engine.CrashImage {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.fmu.Lock()
	if db.flushErr == nil {
		db.flushErr = ErrDBClosed
	}
	db.fcond.Broadcast()
	db.fmu.Unlock()
	return db.st.Crash()
}

// Close flushes outstanding appends and marks the DB closed. The
// caller still owns the store's lifecycle.
func (db *DB) Close() error {
	err := db.Flush()
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.fmu.Lock()
	if db.flushErr == nil {
		db.flushErr = ErrDBClosed
	}
	db.fcond.Broadcast()
	db.fmu.Unlock()
	return err
}
