package kv

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

// ErrDBClosed reports an operation on a closed or crashed DB.
var ErrDBClosed = errors.New("kv: db closed")

// Options tunes a DB.
type Options struct {
	// WriteController configures the stall triggers (see
	// WriteControllerOptions for the defaults).
	WriteController WriteControllerOptions
}

// valRef locates one value inside the frame log: the frame's first
// payload line plus the value's byte range within the payload. Refs
// stay valid until the half of the arena they point into is reclaimed,
// which only happens after every reader of that half (the live keymap,
// pinned snapshots) has moved to the compacted copy.
type valRef struct {
	payload mem.Addr
	off     int
	n       int
}

// Ladder states, most to least healthy. Stats.Ladder reports the
// current rung; healthy marshals as the empty string so faultless
// stats JSON is byte-identical to a namespace without the ladder.
const (
	LadderHealthy      = ""
	LadderThrottled    = "throttled"
	LadderBackpressure = "backpressure"
	LadderReadOnly     = "readonly"
)

// Stats is a point-in-time view of a DB.
type Stats struct {
	Keys       int                  `json:"keys"`
	Seq        uint64               `json:"seq"`
	DurableSeq uint64               `json:"durable_seq"`
	LogBytes   uint64               `json:"log_bytes"`
	Capacity   uint64               `json:"capacity"`
	Gets       uint64               `json:"gets"`
	Batches    uint64               `json:"batches"`
	Ops        uint64               `json:"ops"`
	Stall      WriteControllerStats `json:"stall"`
	Ladder     string               `json:"ladder,omitempty"`
	Compaction *CompactionStats     `json:"compaction,omitempty"`
}

// DB is one KV namespace over a storage-engine facade. All methods are
// safe for concurrent use; batches from concurrent writers serialize
// at the log head and share epoch flushes (group commit).
//
// The data region is laid out as two manifest slots followed by a log
// arena split into two equal halves. The live log occupies exactly one
// half (the write controller's capacity); compaction rewrites the live
// set into the other half and flips the manifest, so the namespace
// survives indefinite write traffic as long as the live set fits.
type DB struct {
	st *store.Store
	wc *WriteController

	// rmu orders value reads against half reclamation: readers hold it
	// shared from index lookup through the last line read, the
	// reclaimer exclusively while zeroing a retired half. Always
	// acquired before mu, never while holding it.
	rmu sync.RWMutex

	mu        sync.Mutex // index, log head, append ordering, compaction state
	idx       map[string]valRef
	head      mem.Addr // next free log line (inside the active half)
	seq       uint64   // last appended frame
	closed    bool
	halfBytes uint64 // log capacity: bytes per arena half
	active    int    // arena half holding the live log
	gen       uint64 // committed manifest generation
	startSeq  uint64 // frame seq preceding the active half's first frame
	liveBytes uint64 // payload bytes of live records (compaction estimate)

	compacting     bool       // a pass is relocating the live set
	ccond          *sync.Cond // over mu; broadcast when a pass ends
	pins           [2]int     // open snapshots pinning each half
	pendingReclaim int        // retired half awaiting reclaim (-1: none)

	compactions    uint64
	compactFreed   uint64 // log bytes freed by passes
	reclaimedLines uint64 // lines returned to zero (passes + reopen)

	sabotageDropManifest bool   // torture self-tests: skip the manifest commit
	testHookMidCopy      func() // tests: runs after the copy phase, before commit
	testHookAfterSwitch  func() // tests: runs between switch and reclaim

	gets    uint64
	batches uint64
	opCount uint64

	fmu      sync.Mutex // group-commit state
	fcond    *sync.Cond
	flushing bool
	appended uint64 // highest seq fully in the log
	durable  uint64 // highest seq covered by a returned FlushEpoch
	flushErr error  // sticky terminal flush failure
}

// Open builds the namespace over st: load the compaction manifest
// (newest valid slot wins, torn slot falls back), rebuild the keymap by
// scanning the active half's frame log, then finish whatever a crash
// interrupted — repair the torn manifest slot and reclaim the inactive
// half, which discards orphan compacted runs that never committed a
// manifest and finishes the reclaim of a committed pass. The scan stops
// at the first line that is not a valid next frame header — everything
// past the last committed frame (orphan payloads of a crashed batch,
// never-written zero lines) is invisible, which is the crash-atomicity
// guarantee.
func Open(st *store.Store, o Options) (*DB, error) {
	capacity := st.Capacity()
	hb := (capacity - min(capacity, uint64(arenaStart))) / 2
	hb -= hb % mem.LineSize
	if hb < 4*mem.LineSize {
		return nil, fmt.Errorf("kv: capacity %d too small for a two-half log arena", capacity)
	}
	wc, err := NewWriteController(hb, o.WriteController)
	if err != nil {
		return nil, err
	}
	db := &DB{st: st, wc: wc, idx: make(map[string]valRef), halfBytes: hb, pendingReclaim: -1}
	db.fcond = sync.NewCond(&db.fmu)
	db.ccond = sync.NewCond(&db.mu)

	l0, err := st.Read(0)
	if err != nil {
		return nil, fmt.Errorf("kv: manifest slot 0: %w", err)
	}
	l1, err := st.Read(mem.LineSize)
	if err != nil {
		return nil, fmt.Errorf("kv: manifest slot 1: %w", err)
	}
	rec, torn, err := chooseManifest(l0, l1)
	if err != nil {
		return nil, err
	}
	db.gen, db.active, db.startSeq = rec.Seq, rec.Half, rec.StartSeq
	db.seq = rec.StartSeq
	if err := db.scan(); err != nil {
		return nil, err
	}
	db.appended, db.durable = db.seq, db.seq
	if err := db.repairAndReclaim(rec, torn); err != nil {
		return nil, err
	}
	return db, nil
}

// halfStart is the first line of arena half h.
func (db *DB) halfStart(h int) mem.Addr {
	return arenaStart + mem.Addr(h)*mem.Addr(db.halfBytes)
}

// usedLocked is the active half's consumed bytes. Caller holds mu.
func (db *DB) usedLocked() uint64 {
	return uint64(db.head - db.halfStart(db.active))
}

// scan replays the active half's committed frame prefix into the index.
func (db *DB) scan() error {
	start := db.halfStart(db.active)
	end := start + mem.Addr(db.halfBytes)
	addr := start
	for {
		if addr+mem.LineSize > end {
			break
		}
		hl, err := db.st.Read(addr)
		if err != nil {
			return fmt.Errorf("kv: log scan read %#x: %w", uint64(addr), err)
		}
		seq, count, payloadBytes, payloadCk, err := parseHeader(hl)
		if err != nil || seq != db.seq+1 {
			break
		}
		need := mem.Addr(frameLines(payloadBytes)) * mem.LineSize
		if addr+need > end {
			break
		}
		payloadStart := addr + mem.LineSize
		payload, err := db.readRange(payloadStart, payloadBytes)
		if err != nil {
			return fmt.Errorf("kv: log scan payload at %#x: %w", uint64(payloadStart), err)
		}
		if fnv64(payload) != payloadCk {
			break
		}
		recs, err := decodePayload(payload, count)
		if err != nil {
			break
		}
		db.apply(payloadStart, payload, recs)
		db.seq = seq
		addr += need
	}
	db.head = addr
	return nil
}

// repairAndReclaim finishes an interrupted compaction pass at reopen:
// re-encode the ruling manifest record over a torn slot (or zero it
// when no commit ever ruled), then return the inactive half to the
// all-zero state — orphan runs without a committed manifest become
// invisible and reclaimed, a committed pass gets its reclaim completed.
// Read-only media degradation is tolerated: the namespace still serves
// reads, orphans stay invisible either way.
func (db *DB) repairAndReclaim(rec manifestRecord, torn int) error {
	if torn >= 0 {
		var l mem.Line
		if rec.Seq > 0 {
			l = encodeManifest(rec)
		}
		err := db.st.Write(mem.Addr(torn)*mem.LineSize, l)
		if err != nil && !errors.Is(err, store.ErrReadOnly) {
			return fmt.Errorf("kv: manifest slot %d repair: %w", torn, err)
		}
	}
	if err := db.reclaimHalf(1 - db.active); err != nil && !errors.Is(err, store.ErrReadOnly) {
		return fmt.Errorf("kv: reclaim inactive half: %w", err)
	}
	return nil
}

// reclaimHalf zeroes every written line of arena half h — only ever an
// inactive half: a retired log after a committed pass, or an orphan run
// at reopen. Takes rmu exclusively so no in-flight value read can
// observe the zeroing.
func (db *DB) reclaimHalf(h int) error {
	lo := db.halfStart(h)
	db.rmu.Lock()
	n, err := db.st.ReclaimRange(lo, lo+mem.Addr(db.halfBytes))
	db.rmu.Unlock()
	db.mu.Lock()
	db.reclaimedLines += uint64(n)
	if err == nil && db.pendingReclaim == h {
		db.pendingReclaim = -1
	}
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if n > 0 {
		if ferr := db.st.FlushEpoch(); ferr != nil {
			return ferr
		}
	}
	return nil
}

// reclaimRetired is the deferred-reclaim path (snapshot Release): it
// re-validates that h is still a retired half owing a reclaim while
// already holding rmu exclusively, so it can never race a new pass
// that is about to write a fresh run into h — a pass that has not yet
// taken rmu for its own destination cleaning cannot have written yet,
// and one that has is ordered entirely before or after us.
func (db *DB) reclaimRetired(h int) {
	db.rmu.Lock()
	db.mu.Lock()
	ok := db.pendingReclaim == h && db.pins[h] == 0 && h != db.active &&
		!db.compacting && !db.closed
	db.mu.Unlock()
	if !ok {
		db.rmu.Unlock()
		return
	}
	lo := db.halfStart(h)
	n, err := db.st.ReclaimRange(lo, lo+mem.Addr(db.halfBytes))
	db.rmu.Unlock()
	db.mu.Lock()
	db.reclaimedLines += uint64(n)
	if err == nil && db.pendingReclaim == h {
		db.pendingReclaim = -1
	}
	db.mu.Unlock()
	if err == nil && n > 0 {
		// Reclaim durability is best-effort here: a failed flush is
		// retried by the next pass or reopen.
		_ = db.st.FlushEpoch()
	}
}

// apply folds one frame's records into the index, keeping the live-set
// byte estimate the compaction gain floor uses.
func (db *DB) apply(payloadStart mem.Addr, payload []byte, recs []record) {
	for _, r := range recs {
		old, had := db.idx[string(r.key)]
		if had {
			db.liveBytes -= uint64(recHeadBytes + len(r.key) + old.n)
		}
		switch r.kind {
		case OpPut:
			db.idx[string(r.key)] = valRef{payload: payloadStart, off: r.valOff, n: r.valLen}
			db.liveBytes += uint64(recHeadBytes + len(r.key) + r.valLen)
		case OpDelete:
			delete(db.idx, string(r.key))
		}
	}
}

// readRange assembles n bytes starting at line-aligned addr.
func (db *DB) readRange(addr mem.Addr, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for got := 0; got < n; {
		l, err := db.st.Read(addr)
		if err != nil {
			return nil, err
		}
		take := n - got
		if take > mem.LineSize {
			take = mem.LineSize
		}
		out = append(out, l[:take]...)
		got += take
		addr += mem.LineSize
	}
	return out, nil
}

// readBytes reads one value by ref. The caller must hold rmu shared
// (or otherwise know the ref's half cannot be reclaimed, as the
// compactor does for the active half it is copying out of).
func (db *DB) readBytes(ref valRef) ([]byte, error) {
	if ref.n == 0 {
		return []byte{}, nil
	}
	out := make([]byte, 0, ref.n)
	pos := uint64(ref.payload) + uint64(ref.off)
	for got := 0; got < ref.n; {
		la := mem.Align(mem.Addr(pos))
		l, err := db.st.Read(la)
		if err != nil {
			return nil, err
		}
		off := int(pos - uint64(la))
		take := mem.LineSize - off
		if take > ref.n-got {
			take = ref.n - got
		}
		out = append(out, l[off:off+take]...)
		got += take
		pos += uint64(take)
	}
	return out, nil
}

// Get returns the value for key, reporting whether it exists. Reads
// see every applied batch, including ones not yet acknowledged
// (read-your-writes); use a Snapshot for a frozen view. Reads keep
// serving through every ladder rung, including read-only refusal.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.rmu.RLock()
	defer db.rmu.RUnlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, false, ErrDBClosed
	}
	db.gets++
	ref, ok := db.idx[string(key)]
	db.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	v, err := db.readBytes(ref)
	return v, ok, err
}

// Put maps key to val, acknowledged durable.
func (db *DB) Put(key, val []byte) error {
	return db.Batch([]Op{{Kind: OpPut, Key: key, Val: val}})
}

// Delete removes key, acknowledged durable.
func (db *DB) Delete(key []byte) error {
	return db.Batch([]Op{{Kind: OpDelete, Key: key}})
}

// Batch applies ops atomically: after a crash at any point, recovery
// sees either every op or none. Batch returns only once a covering
// epoch flush has committed — a nil return means the batch survives
// any later crash.
//
// Admission walks the degradation ladder: healthy batches append
// immediately; in the throttled band each admission is delayed and a
// worthwhile compaction pass runs first; while a pass is relocating
// the live set, writers queue behind it (backpressure); and when
// neither the media (read-only degradation) nor compaction (live set
// too big to free space) can make room, the write gets a typed refusal
// while reads keep serving. Delete-only batches are admitted past the
// stop trigger while physical room remains, so a full namespace can
// always shrink its way back to health.
func (db *DB) Batch(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	payload, err := encodePayload(ops)
	if err != nil {
		return err
	}
	need := uint64(frameLines(len(payload))) * mem.LineSize
	deleteOnly := true
	for _, op := range ops {
		if op.Kind != OpDelete {
			deleteOnly = false
			break
		}
	}

	db.mu.Lock()
	triedCompact := false
	var delay time.Duration
	for {
		delay = 0
		if db.closed {
			db.mu.Unlock()
			return ErrDBClosed
		}
		if db.compacting {
			// Backpressure rung: queue behind the running pass, then
			// re-evaluate against the compacted layout.
			db.wc.noteBackpressure()
			t0 := time.Now()
			for db.compacting && !db.closed {
				db.ccond.Wait()
			}
			db.wc.noteStall(time.Since(t0))
			continue
		}
		if db.st.Health() == store.HealthReadOnly {
			db.wc.noteReadOnlyStop()
			db.mu.Unlock()
			return fmt.Errorf("kv: write refused: %w", store.ErrReadOnly)
		}
		used := db.usedLocked()
		adm := db.wc.evaluate(used, need)
		if !adm.overStop {
			delay = adm.delay
			if delay > 0 {
				db.wc.noteSlowdown()
				// Throttled rung: run a worthwhile pass before the
				// delayed admission so the log drains back to healthy.
				if !triedCompact && db.worthCompactingLocked(0, false) {
					triedCompact = true
					if cerr := db.compactLocked(); cerr != nil {
						db.mu.Unlock()
						return fmt.Errorf("kv: compaction before admission: %w", cerr)
					}
					continue
				}
			}
			break
		}
		// Past the stop trigger: compaction is the only way forward.
		if !triedCompact && db.worthCompactingLocked(need, true) {
			triedCompact = true
			if cerr := db.compactLocked(); cerr != nil {
				db.mu.Unlock()
				return fmt.Errorf("kv: compaction before admission: %w", cerr)
			}
			continue
		}
		if deleteOnly && used+need <= db.halfBytes {
			// Tombstone headroom: deletes shrink the live set, so they
			// are admitted past the stop trigger while lines remain —
			// otherwise a full namespace could never free itself.
			break
		}
		db.wc.noteCapacityStop()
		db.mu.Unlock()
		return fmt.Errorf("%w: %d used + %d needed > %d stop trigger and compaction cannot free enough",
			ErrLogFull, used, need, db.wc.stopTrigger())
	}

	header := db.head
	payloadStart := header + mem.LineSize
	// Payload first, header last: a crash before the header write
	// leaves no valid frame, so the batch is all-or-nothing.
	for i := 0; i < payloadLines(len(payload)); i++ {
		var l mem.Line
		copy(l[:], payload[i*mem.LineSize:])
		if werr := db.st.Write(payloadStart+mem.Addr(i*mem.LineSize), l); werr != nil {
			db.mu.Unlock()
			return fmt.Errorf("kv: batch payload write: %w", werr)
		}
	}
	hl := encodeHeader(db.seq+1, len(ops), len(payload))
	sealHeader(&hl, fnv64(payload))
	if werr := db.st.Write(header, hl); werr != nil {
		db.mu.Unlock()
		return fmt.Errorf("kv: batch commit write: %w", werr)
	}
	db.seq++
	mySeq := db.seq
	db.head += mem.Addr(need)
	db.batches++
	db.opCount += uint64(len(ops))
	recs, derr := decodePayload(payload, len(ops))
	if derr != nil {
		// Cannot happen: we just encoded it. Guard anyway.
		db.mu.Unlock()
		return fmt.Errorf("kv: round-trip decode: %w", derr)
	}
	db.apply(payloadStart, payload, recs)
	db.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	return db.waitDurable(mySeq)
}

// waitDurable blocks until an epoch flush covering seq has returned,
// sharing flushes across concurrent writers: whichever writer finds no
// flush in flight runs one for everybody appended so far; the rest
// wait on the condvar.
func (db *DB) waitDurable(seq uint64) error {
	db.fmu.Lock()
	defer db.fmu.Unlock()
	if seq > db.appended {
		db.appended = seq
	}
	for db.durable < seq && db.flushErr == nil {
		if db.flushing {
			db.fcond.Wait()
			continue
		}
		db.flushing = true
		target := db.appended
		db.fmu.Unlock()
		err := db.st.FlushEpoch()
		db.fmu.Lock()
		db.flushing = false
		if err != nil {
			db.flushErr = err
		} else if target > db.durable {
			db.durable = target
		}
		db.fcond.Broadcast()
	}
	if db.durable >= seq {
		return nil
	}
	return fmt.Errorf("kv: batch %d not durable: %w", seq, db.flushErr)
}

// Flush forces an epoch flush covering everything appended so far.
func (db *DB) Flush() error {
	db.mu.Lock()
	seq := db.seq
	db.mu.Unlock()
	if seq == 0 {
		return nil
	}
	return db.waitDurable(seq)
}

// Stats snapshots the namespace counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	s := Stats{
		Keys:     len(db.idx),
		Seq:      db.seq,
		LogBytes: db.usedLocked(),
		Capacity: db.st.Capacity(),
		Gets:     db.gets,
		Batches:  db.batches,
		Ops:      db.opCount,
		Ladder:   db.ladderLocked(),
	}
	if db.gen > 0 || db.compactions > 0 || db.reclaimedLines > 0 {
		s.Compaction = &CompactionStats{
			Generation:     db.gen,
			ActiveHalf:     db.active,
			Passes:         db.compactions,
			FreedBytes:     db.compactFreed,
			ReclaimedLines: db.reclaimedLines,
			LiveBytes:      db.liveBytes,
		}
	}
	db.mu.Unlock()
	db.fmu.Lock()
	s.DurableSeq = db.durable
	db.fmu.Unlock()
	s.Stall = db.wc.Stats()
	return s
}

// ladderLocked names the current degradation rung. Caller holds mu.
func (db *DB) ladderLocked() string {
	switch {
	case db.st.Health() == store.HealthReadOnly:
		return LadderReadOnly
	case db.compacting:
		return LadderBackpressure
	case db.usedLocked() >= db.wc.slowdownTrigger():
		return LadderThrottled
	default:
		return LadderHealthy
	}
}

// Generation is the committed compaction manifest generation.
func (db *DB) Generation() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.gen
}

// Store exposes the underlying facade (health probes, torture seams).
func (db *DB) Store() *store.Store { return db.st }

// Crash powers the machine off mid-run and returns the crash image.
// The DB is unusable afterwards.
func (db *DB) Crash() *engine.CrashImage {
	db.mu.Lock()
	db.closed = true
	db.ccond.Broadcast()
	db.mu.Unlock()
	db.fmu.Lock()
	if db.flushErr == nil {
		db.flushErr = ErrDBClosed
	}
	db.fcond.Broadcast()
	db.fmu.Unlock()
	return db.st.Crash()
}

// Close flushes outstanding appends and marks the DB closed. The
// caller still owns the store's lifecycle.
func (db *DB) Close() error {
	err := db.Flush()
	db.mu.Lock()
	db.closed = true
	db.ccond.Broadcast()
	db.mu.Unlock()
	db.fmu.Lock()
	if db.flushErr == nil {
		db.flushErr = ErrDBClosed
	}
	db.fcond.Broadcast()
	db.fmu.Unlock()
	return err
}
