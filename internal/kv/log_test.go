package kv

import (
	"bytes"
	"errors"
	"testing"
)

func TestPayloadRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpPut, Key: []byte("alpha"), Val: []byte("one")},
		{Kind: OpDelete, Key: []byte("beta")},
		{Kind: OpPut, Key: []byte("gamma"), Val: bytes.Repeat([]byte{0xAB}, 300)},
		{Kind: OpPut, Key: []byte("empty"), Val: nil},
	}
	payload, err := encodePayload(ops)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := decodePayload(payload, len(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ops) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(ops))
	}
	for i, r := range recs {
		if r.kind != ops[i].Kind || !bytes.Equal(r.key, ops[i].Key) {
			t.Fatalf("record %d: kind/key mismatch", i)
		}
		if got := payload[r.valOff : r.valOff+r.valLen]; !bytes.Equal(got, ops[i].Val) {
			t.Fatalf("record %d: value mismatch", i)
		}
	}
}

func TestPayloadRejectsBadOps(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
	}{
		{"empty key", []Op{{Kind: OpPut, Key: nil, Val: []byte("v")}}},
		{"bad kind", []Op{{Kind: 9, Key: []byte("k")}}},
		{"delete with value", []Op{{Kind: OpDelete, Key: []byte("k"), Val: []byte("v")}}},
		{"huge key", []Op{{Kind: OpPut, Key: make([]byte, maxKeyLen+1)}}},
	}
	for _, c := range cases {
		if _, err := encodePayload(c.ops); err == nil {
			t.Errorf("%s: encode accepted", c.name)
		}
	}
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	payload, err := encodePayload([]Op{{Kind: OpPut, Key: []byte("k"), Val: []byte("value")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePayload(payload[:len(payload)-2], 1); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := decodePayload(payload, 2); err == nil {
		t.Fatal("over-count decoded")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	payload := []byte("some payload bytes")
	hl := encodeHeader(7, 3, len(payload))
	sealHeader(&hl, fnv64(payload))
	seq, count, pb, ck, err := parseHeader(hl)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || count != 3 || pb != len(payload) || ck != fnv64(payload) {
		t.Fatalf("parsed (%d,%d,%d,%#x)", seq, count, pb, ck)
	}
}

func TestHeaderRejectsDamage(t *testing.T) {
	payload := []byte("p")
	good := encodeHeader(1, 1, len(payload))
	sealHeader(&good, fnv64(payload))
	// Any mutated header byte in the sealed region must read as
	// end-of-log, never as a different valid frame: this is the torn
	// commit-write defense.
	for i := 0; i < 40; i++ {
		hl := good
		hl[i] ^= 0x40
		if _, _, _, _, err := parseHeader(hl); !errors.Is(err, errFrameEnd) {
			t.Fatalf("byte %d flip parsed as a frame", i)
		}
	}
	var zero [64]byte
	if _, _, _, _, err := parseHeader(zero); !errors.Is(err, errFrameEnd) {
		t.Fatal("zero line parsed as a frame")
	}
}

func TestFrameLines(t *testing.T) {
	if frameLines(1) != 2 || frameLines(64) != 2 || frameLines(65) != 3 {
		t.Fatalf("frameLines: %d %d %d", frameLines(1), frameLines(64), frameLines(65))
	}
}
