package kv

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLogFull reports that the namespace's log region is out of space:
// the stop trigger fired and the write was refused outright.
var ErrLogFull = errors.New("kv: log region full")

// WriteController throttles writers as the append-only log fills, in
// the classic LSM shape: past the slowdown trigger every batch is
// delayed, past the stop trigger writes are refused. The triggers are
// fractions of the log capacity, so one controller works across
// namespace sizes. It is also the read-only gate: when the media
// health machine degrades the store to read-only, the DB routes the
// refusal through here so the stats count both causes of stalling.
type WriteController struct {
	mu sync.Mutex

	capacity   uint64 // log bytes available
	slowdownAt uint64 // used >= this: delay every admission
	stopAt     uint64 // used + need > this: refuse

	delay time.Duration // per-admission delay in the slowdown band

	slowdowns uint64
	stops     uint64
}

// WriteControllerOptions tunes the triggers. Zero values take the
// defaults noted on each field.
type WriteControllerOptions struct {
	// SlowdownFrac is the used/capacity fraction past which admissions
	// are delayed. Default 0.85.
	SlowdownFrac float64
	// StopFrac is the fraction past which admissions are refused with
	// ErrLogFull. Default 0.95.
	StopFrac float64
	// SlowdownDelay is the per-batch delay in the slowdown band.
	// Default 1ms; tests set it to a nanosecond to stay fast.
	SlowdownDelay time.Duration
}

// NewWriteController builds a controller over a log of capacity bytes.
func NewWriteController(capacity uint64, o WriteControllerOptions) (*WriteController, error) {
	if o.SlowdownFrac == 0 {
		o.SlowdownFrac = 0.85
	}
	if o.StopFrac == 0 {
		o.StopFrac = 0.95
	}
	if o.SlowdownDelay == 0 {
		o.SlowdownDelay = time.Millisecond
	}
	if o.SlowdownFrac < 0 || o.SlowdownFrac > o.StopFrac || o.StopFrac > 1 {
		return nil, fmt.Errorf("kv: bad write-controller triggers slowdown=%v stop=%v", o.SlowdownFrac, o.StopFrac)
	}
	return &WriteController{
		capacity:   capacity,
		slowdownAt: uint64(float64(capacity) * o.SlowdownFrac),
		stopAt:     uint64(float64(capacity) * o.StopFrac),
		delay:      o.SlowdownDelay,
	}, nil
}

// Admit decides whether a batch needing need bytes may proceed when
// used bytes of log are already consumed. It returns the delay the
// writer must observe (zero below the slowdown trigger) or ErrLogFull
// past the stop trigger.
func (wc *WriteController) Admit(used, need uint64) (time.Duration, error) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if used+need > wc.stopAt {
		wc.stops++
		return 0, fmt.Errorf("%w: %d used + %d needed > %d stop trigger", ErrLogFull, used, need, wc.stopAt)
	}
	if used >= wc.slowdownAt {
		wc.slowdowns++
		return wc.delay, nil
	}
	return 0, nil
}

// WriteControllerStats is a point-in-time view of the throttle.
type WriteControllerStats struct {
	Capacity   uint64 `json:"capacity"`
	SlowdownAt uint64 `json:"slowdown_at"`
	StopAt     uint64 `json:"stop_at"`
	Slowdowns  uint64 `json:"slowdowns,omitzero"`
	Stops      uint64 `json:"stops,omitzero"`
}

// Stats snapshots the trigger configuration and firing counts.
func (wc *WriteController) Stats() WriteControllerStats {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return WriteControllerStats{
		Capacity:   wc.capacity,
		SlowdownAt: wc.slowdownAt,
		StopAt:     wc.stopAt,
		Slowdowns:  wc.slowdowns,
		Stops:      wc.stops,
	}
}
