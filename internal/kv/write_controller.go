package kv

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrLogFull reports that the namespace's log region is out of space:
// the stop trigger fired, compaction could not free enough, and the
// write was refused outright.
var ErrLogFull = errors.New("kv: log region full")

// WriteController throttles writers as the log's active half fills, in
// the classic LSM shape: past the slowdown trigger every batch is
// delayed, past the stop trigger writes are refused unless a compaction
// pass can make room. It is also the ladder's scoreboard: the DB routes
// every stall through it — capacity refusals, read-only refusals and
// backpressure waits behind a running pass are counted separately so
// the stats name the cause, not just the symptom.
type WriteController struct {
	mu sync.Mutex

	capacity   uint64 // log bytes available (one arena half)
	slowdownAt uint64 // used >= this: delay every admission
	stopAt     uint64 // used + need > this: refuse

	delay time.Duration // per-admission delay in the slowdown band

	slowdowns     uint64
	capacityStops uint64
	readOnlyStops uint64
	backpressure  uint64
	stallNanos    int64
}

// WriteControllerOptions tunes the triggers. Zero values take the
// defaults noted on each field.
type WriteControllerOptions struct {
	// SlowdownFrac is the used/capacity fraction past which admissions
	// are delayed. Default 0.85.
	SlowdownFrac float64
	// StopFrac is the fraction past which admissions are refused with
	// ErrLogFull. Default 0.95.
	StopFrac float64
	// SlowdownDelay is the per-batch delay in the slowdown band.
	// Default 1ms; tests set it to a nanosecond to stay fast.
	SlowdownDelay time.Duration
}

// NewWriteController builds a controller over a log of capacity bytes.
func NewWriteController(capacity uint64, o WriteControllerOptions) (*WriteController, error) {
	if o.SlowdownFrac == 0 {
		o.SlowdownFrac = 0.85
	}
	if o.StopFrac == 0 {
		o.StopFrac = 0.95
	}
	if o.SlowdownDelay == 0 {
		o.SlowdownDelay = time.Millisecond
	}
	if o.SlowdownFrac < 0 || o.SlowdownFrac > o.StopFrac || o.StopFrac > 1 {
		return nil, fmt.Errorf("kv: bad write-controller triggers slowdown=%v stop=%v", o.SlowdownFrac, o.StopFrac)
	}
	return &WriteController{
		capacity:   capacity,
		slowdownAt: uint64(float64(capacity) * o.SlowdownFrac),
		stopAt:     uint64(float64(capacity) * o.StopFrac),
		delay:      o.SlowdownDelay,
	}, nil
}

// admission is the controller's pure verdict on one batch; the DB walks
// the ladder (compact, queue, refuse) and reports what it actually did
// through the note* counters.
type admission struct {
	delay    time.Duration
	overStop bool
}

// evaluate judges a batch needing need bytes when used bytes of log are
// already consumed. Pure: counters move only via the note* calls.
func (wc *WriteController) evaluate(used, need uint64) admission {
	if used+need > wc.stopAt {
		return admission{overStop: true}
	}
	if used >= wc.slowdownAt {
		return admission{delay: wc.delay}
	}
	return admission{}
}

func (wc *WriteController) slowdownTrigger() uint64 { return wc.slowdownAt }
func (wc *WriteController) stopTrigger() uint64     { return wc.stopAt }

func (wc *WriteController) noteSlowdown() {
	wc.mu.Lock()
	wc.slowdowns++
	wc.mu.Unlock()
}

func (wc *WriteController) noteCapacityStop() {
	wc.mu.Lock()
	wc.capacityStops++
	wc.mu.Unlock()
}

func (wc *WriteController) noteReadOnlyStop() {
	wc.mu.Lock()
	wc.readOnlyStops++
	wc.mu.Unlock()
}

func (wc *WriteController) noteBackpressure() {
	wc.mu.Lock()
	wc.backpressure++
	wc.mu.Unlock()
}

func (wc *WriteController) noteStall(d time.Duration) {
	wc.mu.Lock()
	wc.stallNanos += int64(d)
	wc.mu.Unlock()
}

// WriteControllerStats is a point-in-time view of the throttle. Stops
// stays the aggregate refusal count; the per-cause counters split it so
// "out of space" and "media read-only" and "queued behind compaction"
// are distinguishable. Everything variable is omitzero, so a namespace
// that never stalled marshals exactly as it always has.
type WriteControllerStats struct {
	Capacity          uint64 `json:"capacity"`
	SlowdownAt        uint64 `json:"slowdown_at"`
	StopAt            uint64 `json:"stop_at"`
	Slowdowns         uint64 `json:"slowdowns,omitzero"`
	Stops             uint64 `json:"stops,omitzero"`
	CapacityStops     uint64 `json:"capacity_stops,omitzero"`
	ReadOnlyStops     uint64 `json:"readonly_stops,omitzero"`
	BackpressureWaits uint64 `json:"backpressure_waits,omitzero"`
	StallNanos        int64  `json:"stall_nanos,omitzero"`
}

// Stats snapshots the trigger configuration and firing counts.
func (wc *WriteController) Stats() WriteControllerStats {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return WriteControllerStats{
		Capacity:          wc.capacity,
		SlowdownAt:        wc.slowdownAt,
		StopAt:            wc.stopAt,
		Slowdowns:         wc.slowdowns,
		Stops:             wc.capacityStops + wc.readOnlyStops,
		CapacityStops:     wc.capacityStops,
		ReadOnlyStops:     wc.readOnlyStops,
		BackpressureWaits: wc.backpressure,
		StallNanos:        wc.stallNanos,
	}
}
