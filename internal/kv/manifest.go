package kv

import (
	"encoding/binary"
	"errors"

	"ccnvm/internal/mem"
)

// The compaction manifest is the namespace's one piece of non-append
// metadata: two single-line slots at the very start of the data region,
// in front of the log arena. A compaction pass rewrites the live set
// into the inactive half of the arena and then commits the relocation
// with ONE line write into the slot its sequence number selects
// (seq%2), following the same atomic-commit discipline as the device's
// remap table: newest valid sequence wins, a torn slot (non-empty but
// failing its checksum) falls back to the other slot, and reopen
// repairs the torn slot by re-encoding the ruling record. Both slots
// empty is a fresh namespace: generation 0, half 0 active, log starts
// at frame 1.
//
// Slot line layout (one mem.Line per slot; slot s at byte s*64):
//
//	[0:8)   magic "CKVMANIF"
//	[8:16)  seq      — commit generation, 1-based; the slot written is seq%2
//	[16:24) startSeq — last frame seq before the compacted run; the
//	                   active half's first frame carries startSeq+1
//	[24]    half     — arena half (0/1) holding the live log
//	[25:32) zero
//	[32:40) FNV-64a over bytes [0:32)
//	[40:64) zero
const (
	manifestMagic = "CKVMANIF"
	manifestSlots = 2
	// arenaStart is the first log byte: the arena sits past the slots.
	arenaStart = mem.Addr(manifestSlots * mem.LineSize)
)

// errManifestTorn distinguishes a half-written slot from an empty one.
var errManifestTorn = errors.New("kv: torn manifest slot")

// manifestRecord is one decoded manifest commit. The zero value is the
// fresh-namespace state.
type manifestRecord struct {
	Seq      uint64 // commit generation (0 = never compacted)
	StartSeq uint64 // frame seq preceding the active run
	Half     int    // arena half holding the live log
}

// manifestSlotAddr is where generation seq commits.
func manifestSlotAddr(seq uint64) mem.Addr {
	return mem.Addr(seq%manifestSlots) * mem.LineSize
}

// encodeManifest seals one slot line.
func encodeManifest(rec manifestRecord) mem.Line {
	var l mem.Line
	copy(l[0:8], manifestMagic)
	binary.LittleEndian.PutUint64(l[8:16], rec.Seq)
	binary.LittleEndian.PutUint64(l[16:24], rec.StartSeq)
	l[24] = byte(rec.Half)
	binary.LittleEndian.PutUint64(l[32:40], fnv64(l[0:32]))
	return l
}

// decodeManifest validates one slot. ok=false with a nil error is an
// empty (all-zero) slot; errManifestTorn is a non-empty slot that fails
// validation — a torn commit write to fall back from and repair.
func decodeManifest(l mem.Line) (manifestRecord, bool, error) {
	if l == (mem.Line{}) {
		return manifestRecord{}, false, nil
	}
	if string(l[0:8]) != manifestMagic {
		return manifestRecord{}, false, errManifestTorn
	}
	if got, want := binary.LittleEndian.Uint64(l[32:40]), fnv64(l[0:32]); got != want {
		return manifestRecord{}, false, errManifestTorn
	}
	rec := manifestRecord{
		Seq:      binary.LittleEndian.Uint64(l[8:16]),
		StartSeq: binary.LittleEndian.Uint64(l[16:24]),
		Half:     int(l[24]),
	}
	if rec.Seq == 0 || rec.Half >= manifestSlots {
		return manifestRecord{}, false, errManifestTorn
	}
	return rec, true, nil
}

// chooseManifest rules between the two slots: newest valid sequence
// wins, so a torn commit write rolls back to the previous generation.
// tornSlot is the slot index reopen must repair (-1 if both slots are
// healthy), and holds at most one slot: two torn slots mean the
// metadata is gone, which the error surfaces.
func chooseManifest(l0, l1 mem.Line) (rec manifestRecord, tornSlot int, err error) {
	r0, ok0, e0 := decodeManifest(l0)
	r1, ok1, e1 := decodeManifest(l1)
	if e0 != nil && e1 != nil {
		return manifestRecord{}, -1, errors.New("kv: both compaction manifest slots torn")
	}
	tornSlot = -1
	if e0 != nil {
		tornSlot = 0
	}
	if e1 != nil {
		tornSlot = 1
	}
	switch {
	case ok0 && ok1:
		if r1.Seq > r0.Seq {
			return r1, tornSlot, nil
		}
		return r0, tornSlot, nil
	case ok0:
		return r0, tornSlot, nil
	case ok1:
		return r1, tornSlot, nil
	}
	// No valid record: fresh namespace (possibly with a torn slot from
	// a crashed very first commit, which repair zeroes).
	return manifestRecord{}, tornSlot, nil
}
