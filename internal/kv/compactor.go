package kv

import (
	"errors"
	"fmt"
	"sort"

	"ccnvm/internal/mem"
	"ccnvm/internal/store"
)

// ErrCompactPinned reports a pass refused because open snapshots still
// pin the retired half the pass would overwrite. Release the snapshots
// and retry.
var ErrCompactPinned = errors.New("kv: compaction blocked: open snapshots pin the retired half")

// Compacted-run frame shape: live records are packed into full frames
// instead of one frame per original batch, which is where compaction's
// space win beyond garbage collection comes from.
const (
	compactFrameOps   = 64      // max records per compacted frame
	compactMaxPayload = 16 << 10 // max payload bytes per compacted frame
)

// CompactionStats reports the compactor's lifetime counters. Nil in
// Stats until the namespace has compacted or reclaimed anything, so
// faultless stats JSON is unchanged.
type CompactionStats struct {
	Generation     uint64 `json:"generation"`
	ActiveHalf     int    `json:"active_half"`
	Passes         uint64 `json:"passes,omitzero"`
	FreedBytes     uint64 `json:"freed_bytes,omitzero"`
	ReclaimedLines uint64 `json:"reclaimed_lines,omitzero"`
	LiveBytes      uint64 `json:"live_bytes,omitzero"`
}

// estCompactedLocked is a conservative upper bound on the log bytes the
// live set would occupy after a pass: the live record bytes plus one
// header line and worst-case padding per compacted frame. Caller holds
// mu.
func (db *DB) estCompactedLocked() uint64 {
	recs := len(db.idx)
	if recs == 0 {
		return 0
	}
	frames := (recs + compactFrameOps - 1) / compactFrameOps
	if byPayload := int(db.liveBytes/compactMaxPayload) + 1; byPayload > frames {
		frames = byPayload
	}
	return db.liveBytes + uint64(frames)*(2*mem.LineSize-1)
}

// worthCompactingLocked is the gain floor: run a pass only when it
// frees at least a quarter of the used log (so an all-live namespace
// does not thrash in compaction storms) and, for a write already past
// the stop trigger, only when the compacted layout actually admits it.
// Caller holds mu.
func (db *DB) worthCompactingLocked(need uint64, overStop bool) bool {
	if db.pins[1-db.active] > 0 {
		return false
	}
	used := db.usedLocked()
	est := db.estCompactedLocked()
	if overStop && est+need > db.wc.stopTrigger() {
		return false
	}
	return used > est && used-est >= used/4 && used-est >= 4*mem.LineSize
}

// Compact runs one garbage-collection pass unconditionally (the admin
// verb; admission-triggered passes apply the gain floor first): rewrite
// the live set into the inactive half as fresh header-last sealed
// frames, flush, commit the relocation with one manifest slot write,
// flush again, switch the in-memory keymap, and only then reclaim the
// retired half. If a pass is already running, Compact waits for it and
// returns. Open snapshots pinning the retired half refuse the pass with
// ErrCompactPinned.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrDBClosed
	}
	if db.compacting {
		for db.compacting && !db.closed {
			db.ccond.Wait()
		}
		return nil
	}
	if db.pins[1-db.active] > 0 {
		return ErrCompactPinned
	}
	return db.compactLocked()
}

// compactLocked runs one pass. Called with mu held and compaction idle;
// returns with mu held. The pass owns the backpressure rung: writers
// arriving while it runs queue on ccond, so the frame sequence cannot
// advance under it — which is what makes a crash at any host-write
// boundary leave either the old layout or the committed new one.
func (db *DB) compactLocked() error {
	db.compacting = true
	src := db.active
	dst := 1 - src
	startSeq := db.seq
	genBefore := db.gen
	usedBefore := db.usedLocked()
	needClean := db.pendingReclaim == dst
	keys := make([]string, 0, len(db.idx))
	for k := range db.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	refs := make([]valRef, len(keys))
	for i, k := range keys {
		refs[i] = db.idx[k]
	}
	db.mu.Unlock()

	fail := func(err error) error {
		db.mu.Lock()
		db.compacting = false
		db.ccond.Broadcast()
		return err
	}

	if needClean {
		// A previous pass's reclaim was deferred (pinned snapshots,
		// read-only window) and the pins are gone now: the destination
		// must be all-zero before the run lands in it.
		if err := db.reclaimHalf(dst); err != nil {
			return fail(fmt.Errorf("kv: reclaim destination half: %w", err))
		}
	}

	// Copy phase: pack the live set into fresh sealed frames in the
	// destination half, in sorted key order so a pass is deterministic
	// for the crash-sweep harness. Values are read without rmu — they
	// live in the active half, which is never reclaimed while a pass
	// runs.
	newIdx := make(map[string]valRef, len(keys))
	dstStart := db.halfStart(dst)
	w := dstStart
	seq := startSeq
	for i := 0; i < len(keys); {
		ops := make([]Op, 0, compactFrameOps)
		payloadBytes := 0
		for i < len(keys) && len(ops) < compactFrameOps && payloadBytes < compactMaxPayload {
			val, err := db.readBytes(refs[i])
			if err != nil {
				return fail(fmt.Errorf("kv: compaction read %q: %w", keys[i], err))
			}
			ops = append(ops, Op{Kind: OpPut, Key: []byte(keys[i]), Val: val})
			payloadBytes += recHeadBytes + len(keys[i]) + len(val)
			i++
		}
		payload, err := encodePayload(ops)
		if err != nil {
			return fail(fmt.Errorf("kv: compaction encode: %w", err))
		}
		need := mem.Addr(frameLines(len(payload))) * mem.LineSize
		if uint64(w-dstStart)+uint64(need) > db.halfBytes {
			return fail(fmt.Errorf("kv: compacted run overflows the %d-byte half", db.halfBytes))
		}
		payloadStart := w + mem.LineSize
		for j := 0; j < payloadLines(len(payload)); j++ {
			var l mem.Line
			copy(l[:], payload[j*mem.LineSize:])
			if werr := db.st.Write(payloadStart+mem.Addr(j*mem.LineSize), l); werr != nil {
				return fail(fmt.Errorf("kv: compaction payload write: %w", werr))
			}
		}
		hl := encodeHeader(seq+1, len(ops), len(payload))
		sealHeader(&hl, fnv64(payload))
		if werr := db.st.Write(w, hl); werr != nil {
			return fail(fmt.Errorf("kv: compaction commit write: %w", werr))
		}
		seq++
		recs, derr := decodePayload(payload, len(ops))
		if derr != nil {
			return fail(fmt.Errorf("kv: compaction round-trip decode: %w", derr))
		}
		for _, r := range recs {
			newIdx[string(r.key)] = valRef{payload: payloadStart, off: r.valOff, n: r.valLen}
		}
		w += need
	}
	if db.testHookMidCopy != nil {
		db.testHookMidCopy()
	}
	// The run must be durable before the manifest can point at it.
	if err := db.st.FlushEpoch(); err != nil {
		return fail(fmt.Errorf("kv: compaction run flush: %w", err))
	}

	// Commit phase: one checksummed slot write switches the layout.
	// Before this write the run is an invisible orphan (reopen reclaims
	// it); after it the old half is the invisible garbage. The sabotage
	// knob drops exactly this write, which the break-compact-switch
	// torture self-test proves the oracles catch.
	if !db.sabotageDropManifest {
		rec := manifestRecord{Seq: genBefore + 1, StartSeq: startSeq, Half: dst}
		if err := db.st.Write(manifestSlotAddr(rec.Seq), encodeManifest(rec)); err != nil {
			return fail(fmt.Errorf("kv: manifest commit write: %w", err))
		}
		if err := db.st.FlushEpoch(); err != nil {
			return fail(fmt.Errorf("kv: manifest commit flush: %w", err))
		}
	}

	// Switch phase: the keymap flips to the compacted refs atomically
	// under mu. Writers are still queued, so seq cannot have moved.
	db.mu.Lock()
	if db.seq != startSeq {
		db.mu.Unlock()
		return fail(fmt.Errorf("kv: frame seq advanced from %d to %d during a pass", startSeq, db.seq))
	}
	db.idx = newIdx
	db.seq = seq
	db.head = w
	db.active = dst
	db.gen = genBefore + 1
	db.startSeq = startSeq
	db.compactions++
	if newUsed := uint64(w - dstStart); usedBefore > newUsed {
		db.compactFreed += usedBefore - newUsed
	}
	// The retired half owes a reclaim; reclaimHalf clears this once the
	// zeroing actually lands (it may be deferred past pinned snapshots
	// or a read-only window).
	db.pendingReclaim = src
	pinned := db.pins[src] > 0
	db.mu.Unlock()

	// Everything through the run's last frame was flushed above, so
	// group commit may acknowledge it without another epoch.
	db.fmu.Lock()
	if seq > db.appended {
		db.appended = seq
	}
	if db.flushErr == nil && seq > db.durable {
		db.durable = seq
	}
	db.fmu.Unlock()

	if db.testHookAfterSwitch != nil {
		db.testHookAfterSwitch()
	}

	// Reclaim phase, strictly after the committed switch: zero the
	// retired half so dead pages return to the allocatable state.
	// Pinned snapshots defer it to their Release; read-only degradation
	// defers it to the next reopen. Either way the retired frames stay
	// invisible — the manifest no longer reaches them.
	var reclaimErr error
	if !pinned {
		if err := db.reclaimHalf(src); err != nil && !errors.Is(err, store.ErrReadOnly) {
			reclaimErr = fmt.Errorf("kv: reclaim retired half: %w", err)
		}
	}
	db.mu.Lock()
	db.compacting = false
	db.ccond.Broadcast()
	return reclaimErr
}

// SabotageDropManifestCommit makes every future pass skip its manifest
// commit write while still switching and reclaiming — the
// "half-switched keymap" defect class. Torture self-tests only: it
// exists to prove the compaction oracles bite.
func (db *DB) SabotageDropManifestCommit() {
	db.mu.Lock()
	db.sabotageDropManifest = true
	db.mu.Unlock()
}
