package experiments

import "testing"

// TestRecoveryMatrixMatchesPaperClaims pins the §3/§4.4 capability
// table: who detects, who locates, and who cannot even survive a clean
// crash.
func TestRecoveryMatrixMatchesPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	m, err := RunRecoveryMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]Verdict{
		// Without crash consistency, staleness is indistinguishable from
		// attack: nothing is trustworthy after a crash.
		"wocc": {"none": VerdictUnrecover, "spoof": VerdictUnrecover,
			"data-replay": VerdictUnrecover},
		// Strict consistency pays for itself with full location.
		"sc": {"none": VerdictClean, "spoof": VerdictLocated,
			"splice": VerdictLocated, "counter-replay": VerdictLocated,
			"data-replay": VerdictLocated},
		// Osiris Plus detects the replay only as a root mismatch (§3).
		"osiris": {"none": VerdictClean, "spoof": VerdictLocated,
			"data-replay": VerdictDetected},
		// cc-NVM locates everything except the bounded DS window, which
		// Nwb turns into detection (§4.3/§4.4).
		"ccnvm": {"none": VerdictClean, "spoof": VerdictLocated,
			"splice": VerdictLocated, "counter-replay": VerdictLocated,
			"data-replay": VerdictDetected},
		// The §4.4 extension closes the last gap.
		"ccnvm-ext": {"data-replay": VerdictLocated},
	}
	for d, row := range want {
		for a, v := range row {
			if got := m.Verdicts[d][a]; got != v {
				t.Errorf("%s/%s = %v, want %v", d, a, got, v)
			}
		}
	}
}

func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		VerdictClean: "clean", VerdictMissed: "MISSED!", VerdictDetected: "detected",
		VerdictLocated: "LOCATED", VerdictUnrecover: "unrecoverable", Verdict(42): "?",
	}
	for v, s := range cases {
		if v.String() != s {
			t.Errorf("%d = %q, want %q", int(v), v.String(), s)
		}
	}
}

func TestLifetimeTable(t *testing.T) {
	o := Options{Ops: 30000}
	lt, err := RunLifetime(o, "lbm")
	if err != nil {
		t.Fatal(err)
	}
	if lt.RelativeL["wocc"] != 1 {
		t.Fatalf("baseline relative lifetime = %v, want 1", lt.RelativeL["wocc"])
	}
	if !(lt.MaxWear["sc"] > lt.MaxWear["ccnvm"]) {
		t.Errorf("SC max wear %d not above ccnvm %d", lt.MaxWear["sc"], lt.MaxWear["ccnvm"])
	}
	if tab := lt.Table("lbm"); len(tab) == 0 {
		t.Fatal("empty lifetime table")
	}
}
