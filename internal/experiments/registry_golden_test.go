package experiments

import (
	"bytes"
	"testing"
)

// TestRegistryFig5Golden pins a real (small) Figure 5 sweep bit-for-bit
// across the design-dispatch refactor: the whole path — registry-built
// engines, the simulated machines, normalization against the w/o-CC
// baseline, CSV rendering — must reproduce the golden generated before
// the registry existed. Regenerate (only after an intentional behaviour
// change) with
//
//	go test ./internal/experiments/ -run TestRegistryFig5Golden -update
func TestRegistryFig5Golden(t *testing.T) {
	o := Options{Ops: 60000, Benchmarks: []string{"gcc", "lbm"}}
	f, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5.registry.golden.csv", buf.Bytes())
}
