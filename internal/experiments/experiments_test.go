package experiments

import (
	"strings"
	"testing"

	"ccnvm/internal/nvm"
)

// small keeps test sweeps fast while exercising the full pipeline;
// lbm is the most write-intensive stand-in, so even a short trace
// produces the LLC write-backs the figures measure.
func small() Options {
	return Options{Ops: 30000, Benchmarks: []string{"lbm"}}
}

func TestFig5Pipeline(t *testing.T) {
	f, err := RunFig5(small())
	if err != nil {
		t.Fatal(err)
	}
	// The baseline normalizes to exactly 1.0 everywhere.
	for _, b := range f.Benchmarks {
		c := f.Cells["wocc"][b]
		if c.NormIPC != 1 || c.NormWrite != 1 {
			t.Fatalf("wocc not normalized to 1: %+v", c)
		}
	}
	// Paper orderings on the averages.
	if !(f.AvgNormIPC["ccnvm"] > f.AvgNormIPC["osiris"]) {
		t.Errorf("cc-NVM IPC %v not above Osiris %v", f.AvgNormIPC["ccnvm"], f.AvgNormIPC["osiris"])
	}
	if !(f.AvgNormWrite["sc"] > 4) {
		t.Errorf("SC write factor %v implausibly low", f.AvgNormWrite["sc"])
	}
	if !(f.AvgNormWrite["ccnvm"] > f.AvgNormWrite["osiris"]) {
		t.Errorf("cc-NVM writes %v not above Osiris %v", f.AvgNormWrite["ccnvm"], f.AvgNormWrite["osiris"])
	}
	// Tables render every benchmark row plus the average.
	ipcTab := f.IPCTable()
	for _, b := range f.Benchmarks {
		if !strings.Contains(ipcTab, b) {
			t.Errorf("IPC table missing %s", b)
		}
	}
	if !strings.Contains(ipcTab, "average") || !strings.Contains(f.WriteTable(), "average") {
		t.Error("tables missing average row")
	}
}

func TestHeadlineDerivation(t *testing.T) {
	f := &Fig5{
		AvgNormIPC:   map[string]float64{"sc": 0.6, "osiris": 0.675, "ccnvm": 0.813},
		AvgNormWrite: map[string]float64{"sc": 5.5, "osiris": 1.073, "ccnvm": 1.39},
	}
	h := f.Headline()
	if !approx(h.SCIPCDrop, 0.4) || !approx(h.SCWriteFactor, 5.5) {
		t.Fatalf("SC headline wrong: %+v", h)
	}
	if !approx(h.CCNVMvsOsirisUp, 0.2044) {
		t.Fatalf("cc-NVM vs Osiris = %v, want ~0.204", h.CCNVMvsOsirisUp)
	}
	if !approx(h.CCNVMExtraWr, 0.2954) {
		t.Fatalf("cc-NVM extra writes = %v, want ~0.295", h.CCNVMExtraWr)
	}
	if !approx(h.CCNVMIPCDrop, 0.187) || !approx(h.CCNVMWriteOver, 0.39) {
		t.Fatalf("cc-NVM vs baseline wrong: %+v", h)
	}
	s := h.String()
	if !strings.Contains(s, "20.4%") || !strings.Contains(s, "41.4%") {
		t.Fatalf("headline table missing paper references:\n%s", s)
	}
}

func TestFig6aSweep(t *testing.T) {
	o := small()
	f, err := RunFig6a(o, []uint64{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Points["ccnvm"]
	if len(pts) != 2 || pts[0].Param != 4 || pts[1].Param != 32 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
	// Larger N means longer epochs: write traffic must fall.
	if !(pts[0].NormWrite > pts[1].NormWrite) {
		t.Errorf("writes did not fall with N: %v -> %v", pts[0].NormWrite, pts[1].NormWrite)
	}
	if !strings.Contains(f.Tables(), "cc-NVM") {
		t.Error("tables missing design label")
	}
}

func TestFig6bSweep(t *testing.T) {
	o := small()
	f, err := RunFig6b(o, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Points["ccnvm"]
	if len(pts) != 2 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
	// Larger M means fewer queue-full drains: traffic must not rise.
	if pts[0].NormWrite < pts[1].NormWrite {
		t.Errorf("writes rose with M: %v -> %v", pts[0].NormWrite, pts[1].NormWrite)
	}
	// Osiris is insensitive to M.
	op := f.Points["osiris"]
	if approxDelta(op[0].NormWrite, op[1].NormWrite) > 0.01 {
		t.Errorf("osiris writes vary with M: %v vs %v", op[0].NormWrite, op[1].NormWrite)
	}
}

func TestUnknownBenchmarkPropagates(t *testing.T) {
	o := small()
	o.Benchmarks = []string{"nosuch"}
	if _, err := RunFig5(o); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func approx(got, want float64) bool { return approxDelta(got, want) < 0.01 }

func approxDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

func TestArsenalTradeoffOrdering(t *testing.T) {
	// The related-work triangle: Arsenal minimizes writes (inline
	// metadata beats even the baseline's separate HMAC line), cc-NVM
	// maximizes consistent-design IPC, Osiris sits between on writes.
	o := Options{Ops: 40000, Benchmarks: []string{"lbm"},
		Designs: []string{"wocc", "osiris", "ccnvm", "arsenal"}}
	f, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if !(f.AvgNormWrite["arsenal"] < 1.0) {
		t.Errorf("arsenal writes %v not below baseline", f.AvgNormWrite["arsenal"])
	}
	if !(f.AvgNormIPC["ccnvm"] > f.AvgNormIPC["arsenal"]) {
		t.Errorf("ccnvm IPC %v not above arsenal %v", f.AvgNormIPC["ccnvm"], f.AvgNormIPC["arsenal"])
	}
	if !(f.AvgNormWrite["ccnvm"] > f.AvgNormWrite["arsenal"]) {
		t.Errorf("write ordering violated: ccnvm %v vs arsenal %v", f.AvgNormWrite["ccnvm"], f.AvgNormWrite["arsenal"])
	}
}

// TestSpareLifetimeCurve pins the graceful-degradation sweep: under an
// identical trace and damage schedule, a bigger spare pool survives at
// least as long, a starved pool goes read-only, and a pool larger than
// the damage ever inflicted stays writable to the end.
func TestSpareLifetimeCurve(t *testing.T) {
	o := Options{Ops: 6000, Seed: 5, Capacity: 64 << 20}
	pools := []int{1, 2, 64}
	s, err := RunSpareLifetime(o, "ccnvm", "hmmer", pools)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(pools) {
		t.Fatalf("got %d points, want %d", len(s.Points), len(pools))
	}
	for i, p := range s.Points {
		if p.Spares != pools[i] {
			t.Fatalf("point %d carries pool %d, want %d", i, p.Spares, pools[i])
		}
		if p.Spent.Total != min(pools[i], nvm.RemapMaxEntries) {
			t.Errorf("pool %d: stats report total %d", pools[i], p.Spent.Total)
		}
		if p.Spent.Used > p.Spent.Total {
			t.Errorf("pool %d: used %d exceeds total %d", pools[i], p.Spent.Used, p.Spent.Total)
		}
		if i > 0 && p.OpsToReadOnly < s.Points[i-1].OpsToReadOnly {
			t.Errorf("survival not monotone: pool %d lasted %d ops, pool %d only %d",
				pools[i-1], s.Points[i-1].OpsToReadOnly, pools[i], p.OpsToReadOnly)
		}
	}
	small, big := s.Points[0], s.Points[len(s.Points)-1]
	if !small.ReadOnly {
		t.Errorf("a single spare survived the whole trace: %+v", small)
	}
	if small.RefusedStores == 0 {
		t.Errorf("read-only machine refused no stores: %+v", small)
	}
	if big.ReadOnly {
		t.Errorf("a %d-spare pool still went read-only: %+v", big.Spares, big)
	}
	if big.OpsToReadOnly != s.Ops {
		t.Errorf("writable pool reports %d ops, want the full %d", big.OpsToReadOnly, s.Ops)
	}
	tab := s.Table()
	for _, want := range []string{"spares vs lifetime", "read-only", "writable", "refused stores"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}
