package experiments

import (
	"strings"
	"testing"
)

// small keeps test sweeps fast while exercising the full pipeline;
// lbm is the most write-intensive stand-in, so even a short trace
// produces the LLC write-backs the figures measure.
func small() Options {
	return Options{Ops: 30000, Benchmarks: []string{"lbm"}}
}

func TestFig5Pipeline(t *testing.T) {
	f, err := RunFig5(small())
	if err != nil {
		t.Fatal(err)
	}
	// The baseline normalizes to exactly 1.0 everywhere.
	for _, b := range f.Benchmarks {
		c := f.Cells["wocc"][b]
		if c.NormIPC != 1 || c.NormWrite != 1 {
			t.Fatalf("wocc not normalized to 1: %+v", c)
		}
	}
	// Paper orderings on the averages.
	if !(f.AvgNormIPC["ccnvm"] > f.AvgNormIPC["osiris"]) {
		t.Errorf("cc-NVM IPC %v not above Osiris %v", f.AvgNormIPC["ccnvm"], f.AvgNormIPC["osiris"])
	}
	if !(f.AvgNormWrite["sc"] > 4) {
		t.Errorf("SC write factor %v implausibly low", f.AvgNormWrite["sc"])
	}
	if !(f.AvgNormWrite["ccnvm"] > f.AvgNormWrite["osiris"]) {
		t.Errorf("cc-NVM writes %v not above Osiris %v", f.AvgNormWrite["ccnvm"], f.AvgNormWrite["osiris"])
	}
	// Tables render every benchmark row plus the average.
	ipcTab := f.IPCTable()
	for _, b := range f.Benchmarks {
		if !strings.Contains(ipcTab, b) {
			t.Errorf("IPC table missing %s", b)
		}
	}
	if !strings.Contains(ipcTab, "average") || !strings.Contains(f.WriteTable(), "average") {
		t.Error("tables missing average row")
	}
}

func TestHeadlineDerivation(t *testing.T) {
	f := &Fig5{
		AvgNormIPC:   map[string]float64{"sc": 0.6, "osiris": 0.675, "ccnvm": 0.813},
		AvgNormWrite: map[string]float64{"sc": 5.5, "osiris": 1.073, "ccnvm": 1.39},
	}
	h := f.Headline()
	if !approx(h.SCIPCDrop, 0.4) || !approx(h.SCWriteFactor, 5.5) {
		t.Fatalf("SC headline wrong: %+v", h)
	}
	if !approx(h.CCNVMvsOsirisUp, 0.2044) {
		t.Fatalf("cc-NVM vs Osiris = %v, want ~0.204", h.CCNVMvsOsirisUp)
	}
	if !approx(h.CCNVMExtraWr, 0.2954) {
		t.Fatalf("cc-NVM extra writes = %v, want ~0.295", h.CCNVMExtraWr)
	}
	if !approx(h.CCNVMIPCDrop, 0.187) || !approx(h.CCNVMWriteOver, 0.39) {
		t.Fatalf("cc-NVM vs baseline wrong: %+v", h)
	}
	s := h.String()
	if !strings.Contains(s, "20.4%") || !strings.Contains(s, "41.4%") {
		t.Fatalf("headline table missing paper references:\n%s", s)
	}
}

func TestFig6aSweep(t *testing.T) {
	o := small()
	f, err := RunFig6a(o, []uint64{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Points["ccnvm"]
	if len(pts) != 2 || pts[0].Param != 4 || pts[1].Param != 32 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
	// Larger N means longer epochs: write traffic must fall.
	if !(pts[0].NormWrite > pts[1].NormWrite) {
		t.Errorf("writes did not fall with N: %v -> %v", pts[0].NormWrite, pts[1].NormWrite)
	}
	if !strings.Contains(f.Tables(), "cc-NVM") {
		t.Error("tables missing design label")
	}
}

func TestFig6bSweep(t *testing.T) {
	o := small()
	f, err := RunFig6b(o, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	pts := f.Points["ccnvm"]
	if len(pts) != 2 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
	// Larger M means fewer queue-full drains: traffic must not rise.
	if pts[0].NormWrite < pts[1].NormWrite {
		t.Errorf("writes rose with M: %v -> %v", pts[0].NormWrite, pts[1].NormWrite)
	}
	// Osiris is insensitive to M.
	op := f.Points["osiris"]
	if approxDelta(op[0].NormWrite, op[1].NormWrite) > 0.01 {
		t.Errorf("osiris writes vary with M: %v vs %v", op[0].NormWrite, op[1].NormWrite)
	}
}

func TestUnknownBenchmarkPropagates(t *testing.T) {
	o := small()
	o.Benchmarks = []string{"nosuch"}
	if _, err := RunFig5(o); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func approx(got, want float64) bool { return approxDelta(got, want) < 0.01 }

func approxDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d
}

func TestArsenalTradeoffOrdering(t *testing.T) {
	// The related-work triangle: Arsenal minimizes writes (inline
	// metadata beats even the baseline's separate HMAC line), cc-NVM
	// maximizes consistent-design IPC, Osiris sits between on writes.
	o := Options{Ops: 40000, Benchmarks: []string{"lbm"},
		Designs: []string{"wocc", "osiris", "ccnvm", "arsenal"}}
	f, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if !(f.AvgNormWrite["arsenal"] < 1.0) {
		t.Errorf("arsenal writes %v not below baseline", f.AvgNormWrite["arsenal"])
	}
	if !(f.AvgNormIPC["ccnvm"] > f.AvgNormIPC["arsenal"]) {
		t.Errorf("ccnvm IPC %v not above arsenal %v", f.AvgNormIPC["ccnvm"], f.AvgNormIPC["arsenal"])
	}
	if !(f.AvgNormWrite["ccnvm"] > f.AvgNormWrite["arsenal"]) {
		t.Errorf("write ordering violated: ccnvm %v vs arsenal %v", f.AvgNormWrite["ccnvm"], f.AvgNormWrite["arsenal"])
	}
}
