// Package experiments drives the paper's evaluation: it runs the
// design × workload × parameter sweeps behind Figure 5 (system IPC and
// NVM write traffic across SPEC stand-ins), Figure 6 (sensitivity to
// the update-times limit N and the dirty-address-queue size M) and the
// §2.3/§5 headline numbers, normalizing everything to the w/o-CC
// baseline exactly as the paper does. The bench harness, the CLI and
// the examples all call into this package, so every figure has a single
// source of truth.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/nvm"
	"ccnvm/internal/report"
	"ccnvm/internal/sim"
	"ccnvm/internal/store"
	"ccnvm/internal/trace"
)

// Options control an evaluation run.
type Options struct {
	Ops      int    // memory operations per trace (default 300000)
	Warmup   int    // warm-up operations excluded from statistics (default 0)
	Seed     int64  // workload seed (default 1)
	Capacity uint64 // NVM capacity (default 16 GiB: the paper's geometry)

	Benchmarks []string // default: the paper's eight SPEC stand-ins
	Designs    []string // default: the paper's five designs

	// UpdateLimit (N) and QueueEntries (M) default to the paper's 16/64.
	UpdateLimit  uint64
	QueueEntries int

	// Parallelism bounds concurrent simulations. Default:
	// runtime.NumCPU(). Every worker owns a complete simulated machine
	// (core, caches, engine, NVM, crypto) — sim machines and their
	// crypto Engines are not concurrency-safe, and nothing is shared
	// between cells — so results are bit-identical at any parallelism;
	// only wall-clock time changes. Output ordering is deterministic
	// either way because results land in keyed maps. Set to 1 to force
	// serial execution (e.g. when profiling a single run).
	Parallelism int

	// Workers is the per-machine parallel-pipeline width
	// (engine.Params.Workers): how many goroutines ONE simulated
	// machine may use for subtree-sharded BMT work and epoch drains.
	// Orthogonal to Parallelism, which fans out whole machines.
	// Default 0 (serial engine); results are bit-identical either way.
	Workers int
}

func (o *Options) fill() {
	if o.Ops == 0 {
		o.Ops = 300000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Capacity == 0 {
		o.Capacity = 16 << 30
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = trace.Benchmarks()
	}
	if len(o.Designs) == 0 {
		o.Designs = sim.Designs()
	}
	if o.UpdateLimit == 0 {
		o.UpdateLimit = 16
	}
	if o.QueueEntries == 0 {
		o.QueueEntries = 64
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.NumCPU()
	}
}

// Cell is one design's metrics on one workload, normalized to the
// w/o-CC baseline of the same workload.
type Cell struct {
	IPC       float64 // absolute
	NormIPC   float64 // vs w/o CC
	Writes    uint64  // absolute NVM line writes
	NormWrite float64 // vs w/o CC
	Raw       sim.Result
}

// Fig5 holds the data behind Figure 5(a) and 5(b).
type Fig5 struct {
	Benchmarks []string
	Designs    []string
	Cells      map[string]map[string]Cell // design -> benchmark -> cell

	// Averages over benchmarks of the normalized metrics (geometric
	// mean, the convention for normalized ratios).
	AvgNormIPC   map[string]float64
	AvgNormWrite map[string]float64
}

// RunFig5 runs the full design × benchmark matrix.
func RunFig5(o Options) (*Fig5, error) {
	o.fill()
	f := &Fig5{
		Benchmarks:   o.Benchmarks,
		Designs:      o.Designs,
		Cells:        map[string]map[string]Cell{},
		AvgNormIPC:   map[string]float64{},
		AvgNormWrite: map[string]float64{},
	}
	baseline := design.BaselineName()
	designs := o.Designs
	hasBase := false
	for _, d := range designs {
		if d == baseline {
			hasBase = true
		}
	}
	if !hasBase {
		designs = append([]string{baseline}, designs...)
	}
	matrix, err := runMatrix(o, designs, o.Benchmarks)
	if err != nil {
		return nil, err
	}
	base := matrix[baseline]
	for _, d := range o.Designs {
		f.Cells[d] = map[string]Cell{}
		var ipcs, writes []float64
		for _, b := range o.Benchmarks {
			r := matrix[d][b]
			c := Cell{
				IPC:    r.IPC,
				Writes: r.NVMWrites.Total(),
				Raw:    r,
			}
			if base[b].IPC > 0 {
				c.NormIPC = r.IPC / base[b].IPC
			}
			if bw := base[b].NVMWrites.Total(); bw > 0 {
				c.NormWrite = float64(r.NVMWrites.Total()) / float64(bw)
			}
			f.Cells[d][b] = c
			ipcs = append(ipcs, c.NormIPC)
			writes = append(writes, c.NormWrite)
		}
		f.AvgNormIPC[d] = report.GeoMean(ipcs)
		f.AvgNormWrite[d] = report.GeoMean(writes)
	}
	return f, nil
}

func runOne(design, bench string, o Options) (sim.Result, error) {
	cfg := sim.Config{
		Capacity: o.Capacity,
		Params: engine.Params{
			UpdateLimit:  o.UpdateLimit,
			QueueEntries: o.QueueEntries,
			Workers:      o.Workers,
		},
	}
	return sim.RunBenchmarkWarm(design, bench, o.Ops, o.Warmup, o.Seed, cfg)
}

// runMatrix evaluates f-style (design, benchmark) cells with bounded
// parallelism; every machine is independent, so concurrency changes
// nothing but wall-clock time.
func runMatrix(o Options, designs, benches []string) (map[string]map[string]sim.Result, error) {
	type job struct{ d, b string }
	type outcome struct {
		j   job
		r   sim.Result
		err error
	}
	jobs := make([]job, 0, len(designs)*len(benches))
	for _, d := range designs {
		for _, b := range benches {
			jobs = append(jobs, job{d, b})
		}
	}
	results := make(map[string]map[string]sim.Result, len(designs))
	for _, d := range designs {
		results[d] = make(map[string]sim.Result, len(benches))
	}
	in := make(chan job)
	out := make(chan outcome)
	workers := o.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range in {
				r, err := runOne(j.d, j.b, o)
				out <- outcome{j, r, err}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
		wg.Wait()
		close(out)
	}()
	var firstErr error
	for oc := range out {
		if oc.err != nil && firstErr == nil {
			firstErr = oc.err
		}
		results[oc.j.d][oc.j.b] = oc.r
	}
	return results, firstErr
}

// IPCTable renders Figure 5(a): IPC normalized to w/o CC.
func (f *Fig5) IPCTable() string {
	t := report.NewTable("Fig 5(a) IPC (norm. to w/o CC)", labels(f.Designs)...)
	for _, b := range f.Benchmarks {
		var vals []float64
		for _, d := range f.Designs {
			vals = append(vals, f.Cells[d][b].NormIPC)
		}
		t.AddFloats(b, vals...)
	}
	var avg []float64
	for _, d := range f.Designs {
		avg = append(avg, f.AvgNormIPC[d])
	}
	t.AddFloats("average", avg...)
	return t.String()
}

// WriteTable renders Figure 5(b): NVM write traffic normalized to
// w/o CC.
func (f *Fig5) WriteTable() string {
	t := report.NewTable("Fig 5(b) # of writes (norm. to w/o CC)", labels(f.Designs)...)
	for _, b := range f.Benchmarks {
		var vals []float64
		for _, d := range f.Designs {
			vals = append(vals, f.Cells[d][b].NormWrite)
		}
		t.AddFloats(b, vals...)
	}
	var avg []float64
	for _, d := range f.Designs {
		avg = append(avg, f.AvgNormWrite[d])
	}
	t.AddFloats("average", avg...)
	return t.String()
}

// Headline computes the paper's summary claims from a Fig5 run.
type Headline struct {
	SCIPCDrop       float64 // §2.3: SC vs w/o CC performance loss (paper: 41.4%)
	SCWriteFactor   float64 // §2.3: SC write amplification (paper: 5.5x)
	CCNVMvsOsirisUp float64 // §5: cc-NVM IPC gain over Osiris Plus (paper: 20.4%)
	CCNVMExtraWr    float64 // §5: cc-NVM write traffic over Osiris Plus (paper: 29.6%)
	CCNVMIPCDrop    float64 // §5.1: cc-NVM IPC loss vs w/o CC (paper: 18.7%)
	CCNVMWriteOver  float64 // §5.2: cc-NVM write traffic over w/o CC (paper: 39%)
}

// Headline derives the summary deltas.
func (f *Fig5) Headline() Headline {
	h := Headline{}
	if v, ok := f.AvgNormIPC[design.SC]; ok {
		h.SCIPCDrop = 1 - v
	}
	if v, ok := f.AvgNormWrite[design.SC]; ok {
		h.SCWriteFactor = v
	}
	cc, os := f.AvgNormIPC[design.CCNVM], f.AvgNormIPC[design.Osiris]
	if os > 0 {
		h.CCNVMvsOsirisUp = cc/os - 1
	}
	ccw, osw := f.AvgNormWrite[design.CCNVM], f.AvgNormWrite[design.Osiris]
	if osw > 0 {
		h.CCNVMExtraWr = ccw/osw - 1
	}
	h.CCNVMIPCDrop = 1 - cc
	h.CCNVMWriteOver = ccw - 1
	return h
}

// String renders the headline comparison against the paper's numbers.
func (h Headline) String() string {
	t := report.NewTable("Headline claims", "measured", "paper")
	t.AddRow("SC IPC loss vs w/o CC", pct(h.SCIPCDrop), "41.4%")
	t.AddRow("SC write amplification", fmt.Sprintf("%.2fx", h.SCWriteFactor), "5.50x")
	t.AddRow("cc-NVM IPC gain vs Osiris Plus", pct(h.CCNVMvsOsirisUp), "20.4%")
	t.AddRow("cc-NVM extra writes vs Osiris Plus", pct(h.CCNVMExtraWr), "29.6%")
	t.AddRow("cc-NVM IPC loss vs w/o CC", pct(h.CCNVMIPCDrop), "18.7%")
	t.AddRow("cc-NVM write overhead vs w/o CC", pct(h.CCNVMWriteOver), "39.0%")
	return t.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func labels(designs []string) []string {
	out := make([]string, len(designs))
	for i, d := range designs {
		out[i] = sim.DesignLabel(d)
	}
	return out
}

// Lifetime summarizes the endurance impact the paper's §5.2 ties to
// write traffic: per design, total NVM line writes, the hottest line's
// write count, and the implied relative lifetime (inverse of max wear,
// normalized to w/o CC). PCM endurance is bounded by the hottest cell,
// so the hottest-line ratio is the first-order lifetime ratio.
type Lifetime struct {
	Designs   []string
	Writes    map[string]uint64
	MaxWear   map[string]uint64
	RelativeL map[string]float64 // lifetime vs w/o CC (higher is better)
}

// RunLifetime measures endurance impact on one workload across designs.
func RunLifetime(o Options, benchmark string) (*Lifetime, error) {
	o.fill()
	l := &Lifetime{
		Designs:   o.Designs,
		Writes:    map[string]uint64{},
		MaxWear:   map[string]uint64{},
		RelativeL: map[string]float64{},
	}
	matrix, err := runMatrix(o, o.Designs, []string{benchmark})
	if err != nil {
		return nil, err
	}
	var baseWear uint64
	for _, d := range o.Designs {
		r := matrix[d][benchmark]
		l.Writes[d] = r.NVMWrites.Total()
		l.MaxWear[d] = r.MaxWear
		if d == design.BaselineName() {
			baseWear = r.MaxWear
		}
	}
	for _, d := range o.Designs {
		if l.MaxWear[d] > 0 && baseWear > 0 {
			l.RelativeL[d] = float64(baseWear) / float64(l.MaxWear[d])
		}
	}
	return l, nil
}

// Table renders the lifetime comparison.
func (l *Lifetime) Table(benchmark string) string {
	t := report.NewTable("NVM lifetime on "+benchmark, "writes", "max line wear", "rel. lifetime")
	for _, d := range l.Designs {
		t.AddRow(sim.DesignLabel(d),
			fmt.Sprintf("%d", l.Writes[d]),
			fmt.Sprintf("%d", l.MaxWear[d]),
			fmt.Sprintf("%.3gx", l.RelativeL[d]))
	}
	return t.String()
}

// SweepPoint is one (parameter value, design) measurement of Figure 6.
type SweepPoint struct {
	Param     uint64
	NormIPC   float64
	NormWrite float64
}

// Fig6 holds one sensitivity sweep (a: update limit N; b: queue
// entries M).
type Fig6 struct {
	Title   string
	Designs []string
	Points  map[string][]SweepPoint // design -> series
}

// RunFig6a sweeps the update-times limit N with M fixed (paper: M=64,
// N in {4,8,16,32,64}), on the designs the figure plots.
func RunFig6a(o Options, ns []uint64) (*Fig6, error) {
	o.fill()
	if len(ns) == 0 {
		ns = []uint64{4, 8, 16, 32, 64}
	}
	designs := []string{design.Osiris, design.CCNVMWoDS, design.CCNVM}
	f := &Fig6{Title: "Fig 6(a) update-times limit N", Designs: designs, Points: map[string][]SweepPoint{}}
	for _, n := range ns {
		oo := o
		oo.UpdateLimit = n
		if err := sweepPoint(f, oo, n, designs); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// RunFig6b sweeps the dirty-address-queue entries M with N fixed
// (paper: N=16, M in {32,40,48,56,64}).
func RunFig6b(o Options, ms []int) (*Fig6, error) {
	o.fill()
	if len(ms) == 0 {
		ms = []int{32, 40, 48, 56, 64}
	}
	designs := []string{design.Osiris, design.CCNVMWoDS, design.CCNVM}
	f := &Fig6{Title: "Fig 6(b) dirty address queue entries M", Designs: designs, Points: map[string][]SweepPoint{}}
	for _, m := range ms {
		oo := o
		oo.QueueEntries = m
		if err := sweepPoint(f, oo, uint64(m), designs); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// sweepPoint measures one parameter value across designs, normalizing
// against a w/o-CC run of the same workloads. The whole
// (baseline + designs) × benchmarks block goes through runMatrix so
// one sweep point saturates the worker pool.
func sweepPoint(f *Fig6, o Options, param uint64, designs []string) error {
	baseline := design.BaselineName()
	matrix, err := runMatrix(o, append([]string{baseline}, designs...), o.Benchmarks)
	if err != nil {
		return err
	}
	base := matrix[baseline]
	for _, d := range designs {
		var ipcs, wrs []float64
		for _, b := range o.Benchmarks {
			r := matrix[d][b]
			ipcs = append(ipcs, r.IPC/base[b].IPC)
			wrs = append(wrs, float64(r.NVMWrites.Total())/float64(base[b].NVMWrites.Total()))
		}
		f.Points[d] = append(f.Points[d], SweepPoint{
			Param:     param,
			NormIPC:   report.GeoMean(ipcs),
			NormWrite: report.GeoMean(wrs),
		})
	}
	return nil
}

// Tables renders the sweep as IPC and write tables.
func (f *Fig6) Tables() string {
	ipc := report.NewTable(f.Title+" - IPC (norm.)", labels(f.Designs)...)
	wr := report.NewTable(f.Title+" - # of writes (norm.)", labels(f.Designs)...)
	if len(f.Designs) == 0 || len(f.Points[f.Designs[0]]) == 0 {
		return ipc.String()
	}
	for i := range f.Points[f.Designs[0]] {
		var is, ws []float64
		for _, d := range f.Designs {
			is = append(is, f.Points[d][i].NormIPC)
			ws = append(ws, f.Points[d][i].NormWrite)
		}
		param := fmt.Sprintf("%d", f.Points[f.Designs[0]][i].Param)
		ipc.AddFloats(param, is...)
		wr.AddFloats(param, ws...)
	}
	return ipc.String() + "\n" + wr.String()
}

// SparePoint is one pool size's outcome in the spares-vs-lifetime
// sweep: how far into the trace the machine kept accepting stores
// before the finite spare pool ran dry and the controller degraded to
// read-only.
type SparePoint struct {
	Spares        int
	OpsToReadOnly int  // ops serviced before read-only (the full trace if never reached)
	ReadOnly      bool // pool exhausted within the trace
	Spent         nvm.SpareStats
	RefusedStores uint64
}

// SpareLifetime is the graceful-degradation counterpart of Lifetime:
// instead of asking how fast a design wears its hottest line, it asks
// how long a machine provisioned with a finite spare pool keeps
// accepting stores while stuck-line damage recurs. Because every pool
// size replays the identical trace and damage schedule, survival time
// is weakly monotone in the pool size — the property the tests pin.
type SpareLifetime struct {
	Design    string
	Benchmark string
	Ops       int
	Events    int // stuck-line power events injected across the trace
	Points    []SparePoint
}

// RunSpareLifetime sweeps spare pool sizes on one design and workload.
// Each point runs the same trace on a fresh machine whose fault model
// arms a pool of the given size, with periodic power events that stick
// fresh lines; the point records the op count at which the controller
// first reported read-only. The machines deliberately run with tiny
// caches — this is a media-endurance stress protocol, not a paper
// figure, and the default hierarchy would absorb the store traffic
// that consumes spares.
func RunSpareLifetime(o Options, designName, benchmark string, pools []int) (*SpareLifetime, error) {
	o.fill()
	p, err := trace.ProfileByName(benchmark)
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(p, o.Seed)
	if err != nil {
		return nil, err
	}
	ops := trace.Collect(g, o.Ops)
	s := &SpareLifetime{Design: designName, Benchmark: benchmark, Ops: len(ops), Events: 6}
	chunk := len(ops) / (s.Events + 1)
	if chunk == 0 {
		chunk = len(ops)
	}
	for _, pool := range pools {
		m, err := sim.New(sim.Config{
			Design:   designName,
			Capacity: o.Capacity,
			L1Size:   2 << 10,
			L2Size:   4 << 10,
			Params: engine.Params{
				UpdateLimit:  o.UpdateLimit,
				QueueEntries: o.QueueEntries,
				Workers:      o.Workers,
			},
			Faults:   &nvm.FaultModel{Seed: o.Seed, StuckLines: 2, SpareLines: pool},
			ScrubOps: max(1, len(ops)/10),
		})
		if err != nil {
			return nil, err
		}
		pt := SparePoint{Spares: pool, OpsToReadOnly: len(ops)}
		var r sim.Result
		for served := 0; served < len(ops); {
			end := min(served+chunk, len(ops))
			r = m.Run(benchmark, ops[served:end])
			served = end
			if !pt.ReadOnly && m.Health() == store.HealthReadOnly {
				pt.ReadOnly = true
				pt.OpsToReadOnly = served
			}
			if served < len(ops) {
				m.Device().InjectStuckLines()
			}
		}
		pt.Spent = r.Spares
		pt.RefusedStores = r.RefusedStores
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Table renders the spares-vs-lifetime curve.
func (s *SpareLifetime) Table() string {
	t := report.NewTable(
		fmt.Sprintf("spares vs lifetime: %s on %s (%d ops, %d damage events)",
			sim.DesignLabel(s.Design), s.Benchmark, s.Ops, s.Events),
		"ops to read-only", "spares used", "refused stores", "final state")
	for _, p := range s.Points {
		state := "writable"
		if p.ReadOnly {
			state = "read-only"
		}
		t.AddRow(fmt.Sprintf("%d", p.Spares),
			fmt.Sprintf("%d", p.OpsToReadOnly),
			fmt.Sprintf("%d/%d", p.Spent.Used, p.Spent.Total),
			fmt.Sprintf("%d", p.RefusedStores),
			state)
	}
	return t.String()
}
