package experiments

import (
	"math"
	"runtime"
	"testing"

	"ccnvm/internal/sim"
	"ccnvm/internal/trace"
)

// eqF compares floats bitwise-identically while treating NaN as equal
// to itself (tiny traces can produce 0/0 normalized writes on both
// sides; that is still "identical").
func eqF(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// workers returns the parallelism to pit against serial execution: the
// machine's CPU count, floored at 8 so the concurrent path is exercised
// even on small CI boxes.
func workers() int {
	if n := runtime.NumCPU(); n > 8 {
		return n
	}
	return 8
}

// TestParallelMatchesSerial runs the full design × benchmark matrix at
// Parallelism 1 and at NumCPU-or-more workers: every cell must be
// bit-identical. Machines share nothing, so any divergence would mean a
// hidden shared-state bug in the simulator or crypto memo layer.
func TestParallelMatchesSerial(t *testing.T) {
	o := Options{Ops: 8000, Designs: sim.Designs(), Benchmarks: trace.Benchmarks()}
	oa, ob := o, o
	oa.Parallelism = 1
	ob.Parallelism = workers()
	a, err := RunFig5(oa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig5(ob)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Designs {
		for _, bench := range a.Benchmarks {
			ca, cb := a.Cells[d][bench], b.Cells[d][bench]
			if ca.IPC != cb.IPC || ca.Writes != cb.Writes {
				t.Fatalf("%s/%s: parallel cell differs: %+v vs %+v", d, bench, ca, cb)
			}
			if ca.Raw.Cycles != cb.Raw.Cycles || ca.Raw.Instructions != cb.Raw.Instructions {
				t.Fatalf("%s/%s: raw result differs across parallelism", d, bench)
			}
		}
		if !eqF(a.AvgNormIPC[d], b.AvgNormIPC[d]) || !eqF(a.AvgNormWrite[d], b.AvgNormWrite[d]) {
			t.Fatalf("%s: aggregate differs across parallelism", d)
		}
	}
}

// TestParallelSweepMatchesSerial applies the same bit-identity check to
// the Figure 6(a)-style sensitivity sweep, which routes through the
// same worker pool per sweep point.
func TestParallelSweepMatchesSerial(t *testing.T) {
	o := Options{Ops: 6000, Benchmarks: []string{"lbm", "gcc"}}
	oa, ob := o, o
	oa.Parallelism = 1
	ob.Parallelism = workers()
	ns := []uint64{8, 16}
	a, err := RunFig6a(oa, ns)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig6a(ob, ns)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Designs {
		pa, pb := a.Points[d], b.Points[d]
		if len(pa) != len(pb) {
			t.Fatalf("%s: point count differs: %d vs %d", d, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i].Param != pb[i].Param || !eqF(pa[i].NormIPC, pb[i].NormIPC) || !eqF(pa[i].NormWrite, pb[i].NormWrite) {
				t.Fatalf("%s point %d: parallel sweep differs: %+v vs %+v", d, i, pa[i], pb[i])
			}
		}
	}
}

// TestParallelLifetimeMatchesSerial covers the remaining parallelized
// entry point, RunLifetime.
func TestParallelLifetimeMatchesSerial(t *testing.T) {
	o := Options{Ops: 8000}
	oa, ob := o, o
	oa.Parallelism = 1
	ob.Parallelism = workers()
	a, err := RunLifetime(oa, "lbm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifetime(ob, "lbm")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Designs {
		if a.Writes[d] != b.Writes[d] || a.MaxWear[d] != b.MaxWear[d] || a.RelativeL[d] != b.RelativeL[d] {
			t.Fatalf("%s: parallel lifetime differs", d)
		}
	}
}
