package experiments

import "testing"

func TestParallelMatchesSerial(t *testing.T) {
	a, err := RunFig5(Options{Ops: 25000, Benchmarks: []string{"lbm"}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig5(Options{Ops: 25000, Benchmarks: []string{"lbm"}, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Designs {
		ca, cb := a.Cells[d]["lbm"], b.Cells[d]["lbm"]
		if ca.IPC != cb.IPC || ca.Writes != cb.Writes {
			t.Fatalf("%s: parallel run differs: %+v vs %+v", d, ca, cb)
		}
	}
}
