package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ccnvm/internal/sim"
)

// WriteCSV emits the Figure 5 matrix as tidy CSV (one row per design x
// benchmark cell) for external plotting pipelines.
func (f *Fig5) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"design", "label", "benchmark", "ipc", "norm_ipc", "writes", "norm_writes"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, d := range f.Designs {
		for _, b := range f.Benchmarks {
			c := f.Cells[d][b]
			rec := []string{
				d, sim.DesignLabel(d), b,
				strconv.FormatFloat(c.IPC, 'f', 6, 64),
				strconv.FormatFloat(c.NormIPC, 'f', 6, 64),
				strconv.FormatUint(c.Writes, 10),
				strconv.FormatFloat(c.NormWrite, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("experiments: csv: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits a sensitivity sweep as tidy CSV (one row per design x
// parameter point).
func (f *Fig6) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"design", "label", "param", "norm_ipc", "norm_writes"}); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	for _, d := range f.Designs {
		for _, p := range f.Points[d] {
			rec := []string{
				d, sim.DesignLabel(d),
				strconv.FormatUint(p.Param, 10),
				strconv.FormatFloat(p.NormIPC, 'f', 6, 64),
				strconv.FormatFloat(p.NormWrite, 'f', 6, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("experiments: csv: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
