package experiments

import (
	"fmt"

	"ccnvm/internal/attack"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/recovery"
	"ccnvm/internal/report"
	"ccnvm/internal/sim"
	"ccnvm/internal/trace"
)

// Verdict summarizes one design's recovery outcome against one attack.
type Verdict int

// Verdict values.
const (
	VerdictClean     Verdict = iota // clean crash recovered cleanly
	VerdictMissed                   // an injected attack went undetected
	VerdictDetected                 // attack detected, all data dropped
	VerdictLocated                  // attack detected and pinned to blocks/pages
	VerdictUnrecover                // staleness indistinguishable from attack
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictMissed:
		return "MISSED!"
	case VerdictDetected:
		return "detected"
	case VerdictLocated:
		return "LOCATED"
	case VerdictUnrecover:
		return "unrecoverable"
	default:
		return "?"
	}
}

// Attacks lists the §4.4 scenarios of the recovery matrix, in report
// order.
func Attacks() []string {
	return []string{"none", "spoof", "splice", "counter-replay", "data-replay"}
}

// RecoveryMatrix is the E7 experiment: every design crashed under every
// attack, recovered, and judged. The paper's claims become one table:
// cc-NVM locates everything except the DS-window data replay (which it
// detects via Nwb), Osiris Plus only ever detects, and w/o CC cannot
// even survive a clean crash.
type RecoveryMatrix struct {
	Designs  []string
	Attacks  []string
	Verdicts map[string]map[string]Verdict // design -> attack -> verdict
}

// RunRecoveryMatrix executes the matrix. Designs defaults to the five
// paper designs plus the §4.4 extension; pass sim.AllDesigns() to add
// Arsenal (whose counter-region replay cell is a no-op, since packed
// blocks keep their counters inline).
func RunRecoveryMatrix(designs []string) (*RecoveryMatrix, error) {
	if len(designs) == 0 {
		designs = append(sim.Designs(), design.CCNVMExt)
	}
	m := &RecoveryMatrix{
		Designs:  designs,
		Attacks:  Attacks(),
		Verdicts: map[string]map[string]Verdict{},
	}
	for _, d := range designs {
		m.Verdicts[d] = map[string]Verdict{}
		clean, err := runScenario(d, "none")
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/none: %w", d, err)
		}
		m.Verdicts[d]["none"] = clean
		for _, a := range m.Attacks[1:] {
			if clean == VerdictUnrecover {
				// A design that cannot even survive a clean crash has no
				// way to attribute damage to an attacker: every flagged
				// block might be innocent staleness.
				m.Verdicts[d][a] = VerdictUnrecover
				continue
			}
			v, err := runScenario(d, a)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", d, a, err)
			}
			m.Verdicts[d][a] = v
		}
	}
	return m, nil
}

// runScenario crashes design d under attack a and classifies recovery.
func runScenario(design, att string) (Verdict, error) {
	cfg := sim.Config{Design: design}
	machine, err := sim.New(cfg)
	if err != nil {
		return 0, err
	}
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		return 0, err
	}
	g, err := trace.NewGenerator(p, 9)
	if err != nil {
		return 0, err
	}
	ops := trace.Collect(g, 20000)
	// Hammer one hot line far beyond the recovery bound N before the
	// trace: consistent designs drain it, w/o CC leaves its NVM counter
	// hopelessly stale — the paper's motivating failure.
	hammer := writeBackTail(mem.Addr(256<<20), 40)

	var img *engine.CrashImage
	switch att {
	case "data-replay":
		// The Figure 4 window: snapshot between write-backs of one block
		// inside a single epoch.
		machine.Run("gcc", hammer)
		machine.Run("gcc", ops)
		victim := mem.Addr(512 << 20)
		machine.Run("gcc", writeBackTail(victim, 1))
		snap := machine.Snapshot()
		machine.Run("gcc", writeBackTail(victim, 2))
		img = machine.Crash()
		if err := attack.ReplayBlock(img, snap, victim); err != nil {
			return 0, err
		}
	case "counter-replay":
		// The hot line drains repeatedly (its update count keeps hitting
		// N), so its NVM counter is guaranteed to change between the
		// snapshot and the crash; the replay then breaks the tree's
		// parent/child chain (or the counter's recoverability).
		hot := mem.Addr(256 << 20)
		machine.Run("gcc", hammer)
		machine.Run("gcc", ops[:len(ops)/2])
		snap := machine.Snapshot()
		machine.Run("gcc", writeBackTail(hot, 40))
		machine.Run("gcc", ops[len(ops)/2:])
		img = machine.Crash()
		if err := attack.ReplayCounterLine(img, snap, hot); err != nil {
			return 0, err
		}
	default:
		machine.Run("gcc", hammer)
		machine.Run("gcc", ops)
		img = machine.Crash()
		switch att {
		case "none":
		case "spoof":
			if err := attack.SpoofData(img, firstData(img)); err != nil {
				return 0, err
			}
		case "splice":
			a, b := firstData(img), lastData(img)
			if err := attack.SpliceData(img, a, b); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("unknown attack %q", att)
		}
	}

	rep := recovery.Recover(img)
	switch {
	case att == "none" && rep.Clean():
		return VerdictClean, nil
	case att == "none":
		return VerdictUnrecover, nil
	case rep.Clean():
		// The injected attack produced no report at all.
		return VerdictMissed, nil
	case rep.Located():
		return VerdictLocated, nil
	default:
		return VerdictDetected, nil
	}
}

// writeBackTail forces n write-backs of victim via L1/L2 set conflicts.
func writeBackTail(victim mem.Addr, n int) []trace.Op {
	var ops []trace.Op
	for i := 0; i < n; i++ {
		ops = append(ops, trace.Op{Kind: trace.Store, Addr: victim, Gap: 2})
		for k := 1; k <= 10; k++ {
			ops = append(ops, trace.Op{Kind: trace.Load, Addr: victim + mem.Addr(k*32<<10), Gap: 2})
		}
	}
	return ops
}

func firstData(img *engine.CrashImage) mem.Addr {
	for _, a := range img.Image.Store.Addrs() {
		if img.Image.Layout.RegionOf(a) == mem.RegionData {
			return a
		}
	}
	return 0
}

func lastData(img *engine.CrashImage) mem.Addr {
	var last mem.Addr
	for _, a := range img.Image.Store.Addrs() {
		if img.Image.Layout.RegionOf(a) == mem.RegionData {
			last = a
		}
	}
	return last
}

// Table renders the matrix.
func (m *RecoveryMatrix) Table() string {
	t := report.NewTable("Recovery matrix (attack -> verdict)", labels(m.Designs)...)
	for _, a := range m.Attacks {
		row := make([]string, len(m.Designs))
		for i, d := range m.Designs {
			row[i] = m.Verdicts[d][a].String()
		}
		t.AddRow(a, row...)
	}
	return t.String()
}
