package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenFig5 is a small hand-built matrix with round numbers, so the
// golden files stay readable and diffs reviewable.
func goldenFig5() *Fig5 {
	return &Fig5{
		Benchmarks: []string{"gcc", "mcf"},
		Designs:    []string{"wocc", "ccnvm"},
		Cells: map[string]map[string]Cell{
			"wocc": {
				"gcc": {IPC: 2, NormIPC: 1, Writes: 1000, NormWrite: 1},
				"mcf": {IPC: 0.5, NormIPC: 1, Writes: 4000, NormWrite: 1},
			},
			"ccnvm": {
				"gcc": {IPC: 1.9, NormIPC: 0.95, Writes: 1100, NormWrite: 1.1},
				"mcf": {IPC: 0.46, NormIPC: 0.92, Writes: 4600, NormWrite: 1.15},
			},
		},
		AvgNormIPC:   map[string]float64{"wocc": 1, "ccnvm": 0.934987},
		AvgNormWrite: map[string]float64{"wocc": 1, "ccnvm": 1.124722},
	}
}

func goldenFig6() *Fig6 {
	return &Fig6{
		Title:   "Figure 6(a): sensitivity to update-times limit N",
		Designs: []string{"ccnvm"},
		Points: map[string][]SweepPoint{
			"ccnvm": {
				{Param: 4, NormIPC: 0.91, NormWrite: 1.2},
				{Param: 16, NormIPC: 0.95, NormWrite: 1.1},
				{Param: 64, NormIPC: 0.97, NormWrite: 1.05},
			},
		},
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverges from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", t.Name(), path, got, want)
	}
}

func TestFig5CSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFig5().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5.golden.csv", buf.Bytes())
}

func TestFig6CSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenFig6().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig6.golden.csv", buf.Bytes())
}

// TestFig5TablesGolden pins the rendered report tables end to end
// (column layout, normalization footers) — the output the sim CLI shows.
func TestFig5TablesGolden(t *testing.T) {
	f := goldenFig5()
	checkGolden(t, "fig5.ipc.golden.txt", []byte(f.IPCTable()))
	checkGolden(t, "fig5.writes.golden.txt", []byte(f.WriteTable()))
}

func TestFig6TablesGolden(t *testing.T) {
	checkGolden(t, "fig6.tables.golden.txt", []byte(goldenFig6().Tables()))
}
