package engine

import (
	"ccnvm/internal/design/names"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/seccrypto"
)

// Osiris is Osiris Plus [Ye et al., MICRO'18] as described in the
// paper's evaluation: dirty counter lines are never written back on
// eviction — a stale NVM counter is recovered by online checking against
// the data HMAC, bounded by writing a counter line to NVM whenever it
// runs N updates ahead of its persistent copy (the stop-loss). The
// Merkle tree is maintained on chip only and the root is updated in the
// TCB on every write-back, so the in-NVM tree is never persisted;
// recovery rebuilds it from recovered counters and compares the result
// against the root register. A mismatch proves an attack but cannot
// locate the tampered block, which is cc-NVM's point of comparison.
//
// Functionally the newest counters and tree live in volatile shadow
// state (standing in for the on-chip truth that Osiris reconstructs via
// its ECC trick); timing charges the online-recovery retries whenever a
// stale line is brought on chip.
type Osiris struct {
	Base
	shadowCtr  map[mem.Addr]seccrypto.CounterLine // newest counter truth
	shadowTree map[mem.Addr]mem.Line              // newest tree truth
	distance   map[mem.Addr]uint64                // updates ahead of NVM per counter line
}

// NewOsiris builds the Osiris Plus engine.
func NewOsiris(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p Params) *Osiris {
	o := &Osiris{
		shadowCtr:  make(map[mem.Addr]seccrypto.CounterLine),
		shadowTree: make(map[mem.Addr]mem.Line),
		distance:   make(map[mem.Addr]uint64),
	}
	o.InitBase(lay, keys, ctrl, metaCfg, p)
	o.VerifyFetchedMeta = false // the in-NVM tree is not maintained
	o.SetCounterSource(o.counterLine)
	return o
}

// Name implements Engine.
func (o *Osiris) Name() string { return names.Osiris }

// truth returns the newest content of counter line ca: the shadow entry
// if the line ever ran ahead of NVM, otherwise the persistent copy.
func (o *Osiris) truth(ca mem.Addr) seccrypto.CounterLine {
	if cl, ok := o.shadowCtr[ca]; ok {
		return cl
	}
	l, _ := o.Ctrl.Device().Peek(ca)
	return seccrypto.DecodeCounterLine(l)
}

// counterLine is the design's counter source: a metadata-cache hit costs
// the cache access; a miss reads NVM and pays one HMAC verification per
// update the persistent copy is behind (the online recovery of Osiris),
// bounded by N thanks to the stop-loss.
func (o *Osiris) counterLine(now int64, ca mem.Addr) (seccrypto.CounterLine, int64) {
	if _, ok := o.Meta.Read(ca); ok {
		return o.truth(ca), now + o.P.MetaCycles
	}
	_, _, t := o.Ctrl.ReadBypass(now+o.P.MetaCycles, ca)
	cl := o.truth(ca)
	retries := int(o.distance[ca])
	o.stats.StaleCounterRetries += uint64(retries)
	t = o.HMACOp(t, retries+1)
	if retries > 0 {
		o.Meta.FillDirty(ca, cl.Encode())
	} else {
		o.Meta.Fill(ca, cl.Encode())
	}
	return cl, t
}

// persistCounter writes the newest counter line to NVM, resetting its
// recovery distance.
func (o *Osiris) persistCounter(now int64, ca mem.Addr, cl seccrypto.CounterLine) int64 {
	t := o.Ctrl.Write(now, ca, cl.Encode())
	delete(o.shadowCtr, ca)
	o.distance[ca] = 0
	o.Meta.Clean(ca)
	return t
}

// updatePath recomputes the Merkle path of leaf in the shadow tree and
// the ROOT register, charging the same fetch and HMAC costs a cached
// tree walk would incur.
func (o *Osiris) updatePath(now int64, leaf uint64) int64 {
	cl := o.truth(o.Lay.CounterLineAddr(leaf))
	child := cl.Encode()
	level, idx := 0, leaf
	t := now
	for level < o.Lay.TopLevel() {
		pl, pi, slot := o.Lay.ParentOf(level, idx)
		pa := o.Lay.NodeAddr(pl, pi)
		node, ok := o.shadowTree[pa]
		if !ok {
			node = o.Tree.DefaultNode(pl)
		}
		if !o.Meta.Contains(pa) {
			// Timing: the node must be brought on chip (reconstructed in
			// real Osiris); charge one NVM access.
			_, _, tr := o.Ctrl.ReadBypass(t, pa)
			t = tr
		}
		o.Tree.SetParentSlot(&node, slot, child)
		t = o.HMACOp(t, 1)
		o.shadowTree[pa] = node
		o.Meta.Fill(pa, node)
		child = node
		level, idx = pl, pi
	}
	o.Tree.SetParentSlot(&o.TCB.RootNew, int(idx), child)
	t = o.HMACOp(t, 1)
	o.TCB.RootOld = o.TCB.RootNew
	return t
}

// ReadBlock implements Engine via the shared path with the
// online-recovery counter source.
func (o *Osiris) ReadBlock(now int64, addr mem.Addr) (mem.Line, int64) {
	pt, done := o.Base.ReadBlock(now, addr)
	o.dropEvicts()
	return pt, done
}

// WriteBack implements Engine.
func (o *Osiris) WriteBack(now int64, addr mem.Addr, pt mem.Line) int64 {
	o.stats.Writebacks++
	slot, accept := o.AcquireWBSlot(now)
	ca := o.Lay.CounterLineOf(addr)
	cl, avail := o.counterLine(accept, ca)
	cslot := o.Lay.CounterSlotOf(addr)
	old := cl
	if cl.Bump(cslot) {
		o.stats.CounterOverflows++
		avail = o.ReencryptPage(avail, addr, old, cl)
		o.shadowCtr[ca] = cl
		avail = o.persistCounter(avail, ca, cl)
		o.Meta.Fill(ca, cl.Encode())
	} else {
		o.shadowCtr[ca] = cl
		o.distance[ca]++
		if o.Meta.Contains(ca) {
			o.Meta.Update(ca, cl.Encode())
		} else {
			o.Meta.FillDirty(ca, cl.Encode())
		}
		if o.distance[ca] >= o.P.UpdateLimit {
			avail = o.persistCounter(avail, ca, cl)
		}
	}
	// The write-back may proceed only once the root is updated.
	tPath := o.updatePath(avail, o.Lay.CounterLineIndex(ca))
	done := o.WriteDataBlock(tPath, tPath, addr, pt, cl.Counter(cslot))
	o.dropEvicts()
	o.ReleaseWBSlot(slot, done)
	return accept
}

// dropEvicts discards displaced dirty metadata: Osiris never writes
// counters or tree nodes back on eviction.
func (o *Osiris) dropEvicts() { o.TakePendingEvicts() }

// Settle implements Engine: persist every counter line that runs ahead
// of NVM. The tree stays volatile by design.
func (o *Osiris) Settle(now int64) int64 {
	o.dropEvicts()
	for ca, cl := range o.shadowCtr {
		nv, _ := o.Ctrl.Device().Peek(ca)
		if seccrypto.DecodeCounterLine(nv) != cl {
			o.Ctrl.Write(now, ca, cl.Encode())
		}
		o.distance[ca] = 0
	}
	o.shadowCtr = make(map[mem.Addr]seccrypto.CounterLine)
	return now
}

// Crash implements Engine: shadow state is volatile and vanishes.
func (o *Osiris) Crash() *CrashImage {
	o.ApplyCrashVolatility()
	o.shadowCtr = make(map[mem.Addr]seccrypto.CounterLine)
	o.shadowTree = make(map[mem.Addr]mem.Line)
	o.distance = make(map[mem.Addr]uint64)
	return o.MakeCrashImage(o.Name())
}
