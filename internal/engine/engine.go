// Package engine defines the secure memory-controller engine interface
// and the machinery shared by every consistency design: the functional
// and timed read path (decrypt + authenticate), counter management with
// split-counter overflow handling, Merkle-tree path maintenance, the
// TCB's persistent registers, and the writeback victim buffer.
//
// The five designs of the paper's evaluation implement Engine:
//
//   - w/o CC (wocc.go): secure NVM without crash consistency — the
//     normalization baseline.
//   - SC (sc.go): strict consistency; every write-back atomically
//     persists the data, counter and the whole tree path.
//   - Osiris Plus (osiris.go): counters recovered by online checking;
//     tree never persisted; root updated per write-back.
//   - cc-NVM w/o DS and cc-NVM live in package internal/core — they are
//     the paper's contribution.
package engine

import (
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// Engine is one secure-NVM consistency design plugged under the LLC.
// The simulator calls ReadBlock for LLC read misses and WriteBack for
// dirty LLC evictions; both return completion/acceptance timestamps in
// core cycles.
type Engine interface {
	// Name identifies the design; implementations return their
	// internal/design/names constant so registry keys and crash images
	// agree.
	Name() string

	// ReadBlock fetches, decrypts and authenticates the data block at
	// addr. It returns the plaintext and the cycle at which the verified
	// value is available to the core.
	ReadBlock(now int64, addr mem.Addr) (mem.Line, int64)

	// WriteBack accepts a dirty LLC eviction. The returned cycle is when
	// the victim entered the engine's writeback buffer — the earliest
	// point at which the evicting fill may proceed; encryption,
	// authentication and persistence continue in the background.
	WriteBack(now int64, addr mem.Addr, plaintext mem.Line) int64

	// Settle persists all dirty on-chip metadata so that NVM reflects
	// the newest state; used at clean shutdown and by functional tests.
	// It returns the cycle at which the engine finished issuing work.
	Settle(now int64) int64

	// Crash models a power failure: on-chip caches and in-flight state
	// are lost, ADR semantics are applied to the WPQ, and the persistent
	// state (NVM image plus TCB registers) is captured. The engine must
	// not be used afterwards — a real system runs recovery and boots a
	// fresh controller from the recovered image.
	Crash() *CrashImage

	// Stats returns the engine's accumulated counters.
	Stats() SecStats
}

// TCB holds the secure processor's persistent registers: the two Merkle
// root registers of the atomic draining protocol and the write-back
// counter Nwb used to detect deferred-spreading replay windows. Designs
// that keep a single consistent root simply keep RootNew == RootOld.
//
// Each "root" register holds the 64 B root node content (the four
// counter HMACs of the top in-NVM level), as the root must verify four
// children.
type TCB struct {
	RootNew mem.Line
	RootOld mem.Line
	Nwb     uint64

	// ExtDirty implements the paper's §4.4 extension: additional
	// persistent registers recording, for every dirty counter line of
	// the current epoch, how many times it has been updated since the
	// last committed drain. With them, recovery can localize a
	// data-replay attack inside the deferred-spreading window to the
	// page whose recorded update count disagrees with its recovered
	// retries, instead of merely detecting it via Nwb. Nil unless the
	// extended design is in use. At most M entries — the hardware cost
	// the paper trades off.
	ExtDirty map[mem.Addr]uint64
}

// CloneExt deep-copies the extension registers (maps are references;
// crash images must not alias live TCB state).
func (t TCB) CloneExt() TCB {
	if t.ExtDirty == nil {
		return t
	}
	cp := make(map[mem.Addr]uint64, len(t.ExtDirty))
	for a, n := range t.ExtDirty {
		cp[a] = n
	}
	t.ExtDirty = cp
	return t
}

// CrashImage is everything that survives a power failure.
type CrashImage struct {
	Image *nvm.Image
	TCB   TCB
	// Keys gives recovery the same secrets the runtime engine used; in
	// hardware they are fused into the chip.
	Keys seccrypto.Keys
	// UpdateLimit is the design's N, bounding recovery retries.
	UpdateLimit uint64
	// Workers is the engine's parallel-pipeline width; recovery reuses
	// it for the subtree-sharded tree verification and rebuild.
	Workers int
	// Design names the engine that produced the image.
	Design string
	// Sideband carries per-line out-of-band state that real hardware
	// keeps in ECC spare bits and that survives power failure; Arsenal
	// stores its per-block compressibility tags here.
	Sideband map[mem.Addr]byte

	// MediaFaults reports that the device ran under a fault model, so
	// recovery must expect torn lines, partial ADR drains and stuck
	// lines, and classify the resulting damage as crash loss rather than
	// tampering where the suspects manifest covers it.
	MediaFaults bool
	// Suspects is the WPQ manifest the controller persists first at a
	// power failure: the line addresses that were accepted or held but
	// possibly not serviced. Recovery may consult it — real hardware
	// would have it — to attribute authentication failures to crash
	// damage. Nil on the idealized device.
	Suspects []mem.Addr
	// MediaLog is the harness's ground-truth fault record. It exists for
	// the torture oracles and diagnostics only; recovery must never read
	// anything beyond Suspects from it.
	MediaLog *nvm.FaultLog

	// RecoveryJournal is the persisted recovery journal: a small
	// reserved region (real hardware would dedicate a few metadata
	// lines) recovery's Apply writes through the same word-granularity
	// persistence rules as everything else, so an interrupted recovery
	// resumes from it instead of restarting blind. Nil until recovery
	// first writes it; the recovery package owns the encoding.
	RecoveryJournal []byte
}

// Clone deep-copies the crash image so recovery experiments can run on
// a copy — the reboot-loop torture compares an interrupted recovery
// against a single-shot golden recovery of the same image. MediaLog is
// shared: it is the harness's read-only ground truth.
func (ci *CrashImage) Clone() *CrashImage {
	cp := *ci
	cp.Image = ci.Image.Clone()
	cp.TCB = ci.TCB.CloneExt()
	if ci.Sideband != nil {
		cp.Sideband = make(map[mem.Addr]byte, len(ci.Sideband))
		for a, b := range ci.Sideband {
			cp.Sideband[a] = b
		}
	}
	if ci.Suspects != nil {
		cp.Suspects = append([]mem.Addr(nil), ci.Suspects...)
	}
	if ci.RecoveryJournal != nil {
		cp.RecoveryJournal = append([]byte(nil), ci.RecoveryJournal...)
	}
	return &cp
}

// SecStats accumulates engine-level events.
type SecStats struct {
	Reads      uint64 // LLC read misses served
	Writebacks uint64 // LLC dirty evictions accepted

	HMACOps uint64 // HMAC computations (the serialized unit)
	AESOps  uint64 // one-time-pad generations

	IntegrityViolations uint64 // runtime authentication failures
	CounterOverflows    uint64 // minor-counter overflows (page re-encryption)
	StaleCounterRetries uint64 // Osiris-style online recovery retries

	Drains            uint64 // epoch drains (cc-NVM designs)
	DrainQueueFull    uint64 // trigger 1: dirty address queue exhausted
	DrainEvict        uint64 // trigger 2: dirty metadata line evicted
	DrainUpdateLimit  uint64 // trigger 3: update count exceeded N
	DrainLinesFlushed uint64 // metadata lines written by drains

	WritebackBufferStalls uint64 // evictions that found the buffer full
	WritebackStallCycles  int64

	// Memoization counters for the simulator's own hot-path caches (the
	// OTP pad cache, the data/node HMAC memos and the default-HMAC-line
	// memo). These are observational: modeled cycle counts come from the
	// timing model (HMACOps/AESOps above), so memo hits never change
	// results — see DESIGN.md, "Simulator performance".
	PadCacheHits, PadCacheMisses       uint64
	DataMemoHits, DataMemoMisses       uint64
	NodeMemoHits, NodeMemoMisses       uint64
	DefaultLineHits, DefaultLineMisses uint64
}

// MemoHitRatio reports the combined hit ratio of all memo tables; the
// bench harness tracks it across PRs.
func (s SecStats) MemoHitRatio() float64 {
	hits := s.PadCacheHits + s.DataMemoHits + s.NodeMemoHits + s.DefaultLineHits
	total := hits + s.PadCacheMisses + s.DataMemoMisses + s.NodeMemoMisses + s.DefaultLineMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Params carries the microarchitectural latencies (cycles) and limits.
// Zero values select the paper's configuration at 3 GHz.
type Params struct {
	MetaCycles        int64  // metadata cache access (default 32)
	HMACCycles        int64  // SHA-1 HMAC latency (default 80)
	HMACIssueCycles   int64  // HMAC unit initiation interval (default 24)
	AESCycles         int64  // AES OTP generation (default 216 = 72 ns)
	QueueLookupCycles int64  // dirty address queue lookup (default 32)
	WritebackBuffer   int    // victim buffer entries (default 5)
	UpdateLimit       uint64 // N, per-line update limit (default 16)
	QueueEntries      int    // M, dirty address queue entries (default 64)

	// Workers bounds the worker pool of the parallel security-metadata
	// pipeline: subtree-sharded BMT verify/rebuild, deferred-spreading
	// recomputation and epoch-drain batches run on up to Workers
	// goroutines. 0 or 1 selects the serial engine. Results are
	// bit-identical either way (see DESIGN.md, "Parallel epochs"); only
	// host wall time and memo hit/miss counters may differ.
	Workers int
}

// Fill applies the paper's defaults to unset fields.
func (p *Params) Fill() {
	if p.MetaCycles == 0 {
		p.MetaCycles = 32
	}
	if p.HMACCycles == 0 {
		p.HMACCycles = 80
	}
	if p.HMACIssueCycles == 0 {
		p.HMACIssueCycles = 24
	}
	if p.AESCycles == 0 {
		p.AESCycles = 216
	}
	if p.QueueLookupCycles == 0 {
		p.QueueLookupCycles = 32
	}
	if p.WritebackBuffer == 0 {
		p.WritebackBuffer = 5
	}
	if p.UpdateLimit == 0 {
		p.UpdateLimit = 16
	}
	if p.QueueEntries == 0 {
		p.QueueEntries = 64
	}
}
