package engine

import (
	"ccnvm/internal/design/names"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/seccrypto"
)

// SC is the strict-consistency design (§2.3, §5): every write-back
// atomically persists the data block, its HMAC, the counter line and the
// entire Merkle path — "12 atomic BMT updates on every write-back" for a
// 16 GB NVM: the leaf counter and ten internal nodes written to NVM plus
// the root updated in the TCB. Atomicity is provided by the persistent
// registers of [Osiris, MICRO'18], which we do not model internally; SC
// is crash-consistent by construction.
//
// The cascading HMAC recomputation serializes on the crypto unit, and
// the thirteen line writes per eviction produce the evaluation's
// worst-case write traffic (the 5.5x of §2.3).
type SC struct {
	Base
}

// NewSC builds the strict-consistency engine.
func NewSC(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p Params) *SC {
	s := &SC{}
	s.InitBase(lay, keys, ctrl, metaCfg, p)
	return s
}

// Name implements Engine.
func (s *SC) Name() string { return names.SC }

// ReadBlock implements Engine via the shared path.
func (s *SC) ReadBlock(now int64, addr mem.Addr) (mem.Line, int64) {
	pt, done := s.Base.ReadBlock(now, addr)
	s.handleEvicts(now)
	return pt, done
}

// WriteBack implements Engine: full path recomputation, then all
// thirteen lines into the WPQ before the slot frees.
func (s *SC) WriteBack(now int64, addr mem.Addr, pt mem.Line) int64 {
	s.stats.Writebacks++
	slot, accept := s.AcquireWBSlot(now)
	r := s.BumpCounter(accept, addr)
	leaf := s.Lay.CounterLineIndex(s.Lay.CounterLineOf(addr))
	tPath, _ := s.UpdatePathInCache(r.Avail, leaf)
	// Root persisted in TCB: both registers move together.
	s.TCB.RootOld = s.TCB.RootNew
	// The persistent-register atomicity protocol [Osiris, MICRO'18]
	// orders its commit record ahead of the thirteen in-place writes,
	// exposing one NVM write latency per write-back.
	tOrder := tPath + s.Ctrl.Device().Timing().WriteCycles
	// Data may enter the WPQ only after the root is updated and the
	// commit record is durable.
	done := s.WriteDataBlock(tOrder, tOrder, addr, pt, r.Counter)
	done = max(done, s.persistPath(tOrder, leaf))
	s.handleEvicts(accept)
	s.ReleaseWBSlot(slot, done)
	return accept
}

// persistPath writes the counter line and every internal path node from
// the metadata cache to NVM and marks them clean. Nodes displaced
// mid-operation were already persisted by the eviction handler.
func (s *SC) persistPath(now int64, leaf uint64) int64 {
	t := now
	write := func(a mem.Addr) {
		if content, ok := s.Meta.Peek(a); ok && s.Meta.IsDirty(a) {
			t = max(t, s.Ctrl.Write(t, a, content))
			s.Meta.Clean(a)
		}
	}
	write(s.Lay.CounterLineAddr(leaf))
	for _, pa := range s.Lay.PathFrom(leaf) {
		write(pa)
	}
	return t
}

// handleEvicts persists dirty metadata displaced by fills immediately;
// under SC nothing dirty may linger on chip.
func (s *SC) handleEvicts(now int64) {
	for _, e := range s.TakePendingEvicts() {
		s.Ctrl.Write(now, e.Addr, e.Line)
	}
}

// Settle implements Engine: by construction nothing dirty remains
// between operations, but flush defensively.
func (s *SC) Settle(now int64) int64 {
	s.handleEvicts(now)
	for _, a := range s.Meta.DirtyAddrs() {
		if content, ok := s.Meta.Peek(a); ok {
			s.Ctrl.Write(now, a, content)
			s.Meta.Clean(a)
		}
	}
	return now
}

// Crash implements Engine.
func (s *SC) Crash() *CrashImage {
	s.ApplyCrashVolatility()
	return s.MakeCrashImage(s.Name())
}

var _ Engine = (*SC)(nil)
var _ Engine = (*WoCC)(nil)
var _ Engine = (*Osiris)(nil)
