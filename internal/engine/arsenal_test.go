package engine_test

import (
	"math/rand"
	"testing"

	"ccnvm/internal/attack"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
)

func arsenal(t testing.TB) *engine.Arsenal {
	t.Helper()
	lay := mem.MustLayout(capacity)
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	ctrl := memctrl.New(memctrl.Config{}, dev)
	return engine.NewArsenal(lay, seccrypto.DefaultKeys(), ctrl, metacache.Config{}, engine.Params{})
}

// compressible builds a line BDI handles (near-base values).
func compressible(v byte) mem.Line {
	var l mem.Line
	for i := 0; i < mem.LineSize; i += 8 {
		l[i] = 0x40
		l[i+1] = v
	}
	return l
}

// incompressible builds a line no BDI encoder fits in the budget.
func incompressible(seed int64) mem.Line {
	rng := rand.New(rand.NewSource(seed))
	var l mem.Line
	rng.Read(l[:])
	return l
}

func TestArsenalPackUnpackRoundTrip(t *testing.T) {
	cry := seccrypto.MustEngine(seccrypto.DefaultKeys())
	pt := compressible(9)
	packed, ok := engine.PackArsenalLine(cry, 4096, 7, pt)
	if !ok {
		t.Fatal("compressible line refused")
	}
	got, ctr, ok := engine.UnpackArsenalLine(cry, 4096, packed)
	if !ok || ctr != 7 || got != pt {
		t.Fatalf("round trip failed: ok=%v ctr=%d", ok, ctr)
	}
	// Tampering the packed line breaks the inline HMAC.
	packed[5] ^= 1
	if _, _, ok := engine.UnpackArsenalLine(cry, 4096, packed); ok {
		t.Fatal("tampered packed line accepted")
	}
	// Splicing to another address fails too.
	packed[5] ^= 1
	if _, _, ok := engine.UnpackArsenalLine(cry, 8192, packed); ok {
		t.Fatal("spliced packed line accepted")
	}
}

func TestArsenalIncompressibleRefused(t *testing.T) {
	cry := seccrypto.MustEngine(seccrypto.DefaultKeys())
	if _, ok := engine.PackArsenalLine(cry, 0, 1, incompressible(1)); ok {
		t.Fatal("incompressible line packed")
	}
}

func TestArsenalWriteReadBothModes(t *testing.T) {
	e := arsenal(t)
	now := int64(0)
	cAddr, rAddr := mem.Addr(0), mem.Addr(4096)
	cPT, rPT := compressible(1), incompressible(2)
	now = e.WriteBack(now, cAddr, cPT) + 50
	now = e.WriteBack(now, rAddr, rPT) + 50
	if e.CompressionRatio() != 0.5 {
		t.Fatalf("compression ratio = %v, want 0.5", e.CompressionRatio())
	}
	got, done := e.ReadBlock(now, cAddr)
	if got != cPT {
		t.Fatal("packed block round trip failed")
	}
	now = done + 10
	got, _ = e.ReadBlock(now, rAddr)
	if got != rPT {
		t.Fatal("raw block round trip failed")
	}
	if e.Stats().IntegrityViolations != 0 {
		t.Fatal("violations on clean run")
	}
}

func TestArsenalWriteEfficiency(t *testing.T) {
	// A compressible write-back is ONE NVM line write (data+counter+HMAC
	// inline) vs two for the baseline.
	e := arsenal(t)
	now := int64(0)
	for i := 0; i < 50; i++ {
		now = e.WriteBack(now, mem.Addr(i*64), compressible(byte(i))) + 30
	}
	w := e.Ctrl.Device().Writes()
	if w.Total() != 50 {
		t.Fatalf("50 packed write-backs made %d NVM writes, want 50", w.Total())
	}
	if w.HMAC != 0 || w.Counter != 0 {
		t.Fatalf("packed mode wrote metadata regions: %v", w)
	}
}

func TestArsenalModeSwitch(t *testing.T) {
	// The same block alternating between compressible and raw content.
	e := arsenal(t)
	a := mem.Addr(64)
	now := e.WriteBack(0, a, compressible(1)) + 50
	now = e.WriteBack(now, a, incompressible(3)) + 50
	got, done := e.ReadBlock(now, a)
	if got != incompressible(3) {
		t.Fatal("raw content lost after mode switch")
	}
	now = done + 10
	now = e.WriteBack(now, a, compressible(2)) + 50
	got, _ = e.ReadBlock(now, a)
	if got != compressible(2) {
		t.Fatal("packed content lost after switch back")
	}
	if e.Stats().IntegrityViolations != 0 {
		t.Fatal("violations across mode switches")
	}
}

func TestArsenalOverflowRepacksPage(t *testing.T) {
	e := arsenal(t)
	a, b := mem.Addr(0), mem.Addr(192)
	now := e.WriteBack(0, b, incompressible(7)) + 20
	for i := 0; i < 130; i++ {
		now = e.WriteBack(now, a, compressible(byte(i))) + 20
	}
	if e.Stats().CounterOverflows == 0 {
		t.Fatal("no overflow")
	}
	got, done := e.ReadBlock(now, a)
	if got != compressible(129) {
		t.Fatal("hot packed block wrong after overflow")
	}
	got, _ = e.ReadBlock(done+10, b)
	if got != incompressible(7) {
		t.Fatal("cold raw block wrong after overflow")
	}
	if e.Stats().IntegrityViolations != 0 {
		t.Fatalf("%d violations after overflow", e.Stats().IntegrityViolations)
	}
}

func TestArsenalCleanCrashRecovers(t *testing.T) {
	e := arsenal(t)
	now := int64(0)
	for i := 0; i < 120; i++ {
		a := mem.Addr((i % 24) * 4096)
		pt := compressible(byte(i))
		if i%5 == 0 {
			pt = incompressible(int64(i))
		}
		now = e.WriteBack(now, a, pt) + 30
	}
	img := e.Crash()
	if len(img.Sideband) == 0 {
		t.Fatal("sideband tags missing from crash image")
	}
	rep := recovery.Recover(img)
	if !rep.Clean() {
		t.Fatalf("clean arsenal crash flagged: %+v", rep)
	}
	if rep.Nretry != 0 {
		t.Fatalf("arsenal needed %d retries; inline counters are never stale", rep.Nretry)
	}
}

func TestArsenalSpoofLocatedReplayDetected(t *testing.T) {
	e := arsenal(t)
	now := int64(0)
	for i := 0; i < 60; i++ {
		now = e.WriteBack(now, mem.Addr(i%12*4096), compressible(byte(i))) + 30
	}
	// Spoof: located via the inline HMAC.
	img := e.Crash()
	victim := mem.Addr(0)
	if err := attack.SpoofData(img, victim); err != nil {
		t.Fatal(err)
	}
	rep := recovery.Recover(img)
	if !rep.Located() || len(rep.Tampered) != 1 || rep.Tampered[0].Addr != victim {
		t.Fatalf("arsenal spoof not located: %+v", rep.Tampered)
	}

	// Whole-line replay: internally consistent, detected only via the
	// rebuilt root (Osiris-style), never located.
	e2 := arsenal(t)
	hot := mem.Addr(8 * 4096)
	now = e2.WriteBack(0, hot, compressible(1)) + 50
	early := e2.NVMSnapshot()
	now = e2.WriteBack(now, hot, compressible(2)) + 50
	_ = now
	img2 := e2.Crash()
	if err := attack.ReplayBlock(img2, early, hot); err != nil {
		t.Fatal(err)
	}
	rep2 := recovery.Recover(img2)
	if rep2.Clean() {
		t.Fatal("arsenal missed the replay")
	}
	if rep2.Located() {
		t.Fatal("arsenal cannot locate replays (no persistent tree)")
	}
}
