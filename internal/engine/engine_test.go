package engine_test

import (
	"math/rand"
	"testing"

	"ccnvm/internal/bmt"
	"ccnvm/internal/core"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

const capacity = 1 << 30

// rig builds one engine by name over a fresh device.
func rig(t testing.TB, design string, p engine.Params) engine.Engine {
	t.Helper()
	return rigMeta(t, design, p, metacache.Config{})
}

func rigMeta(t testing.TB, name string, p engine.Params, mc metacache.Config) engine.Engine {
	t.Helper()
	lay := mem.MustLayout(capacity)
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	ctrl := memctrl.New(memctrl.Config{}, dev)
	keys := seccrypto.DefaultKeys()
	d, ok := design.Lookup(name)
	if !ok {
		t.Fatalf("unknown design %q", name)
	}
	return d.New(lay, keys, ctrl, mc, p)
}

var allDesigns = design.PaperNames()

func pattern(addr mem.Addr, v byte) mem.Line {
	var l mem.Line
	for i := range l {
		l[i] = byte(uint64(addr)>>(8*(i%8))) ^ v ^ byte(i)
	}
	return l
}

func TestWriteReadRoundTripAllDesigns(t *testing.T) {
	for _, d := range allDesigns {
		t.Run(d, func(t *testing.T) {
			e := rig(t, d, engine.Params{})
			now := int64(0)
			addrs := []mem.Addr{0, 64, 4096, 8192 + 128, 1 << 20}
			for i, a := range addrs {
				now = e.WriteBack(now, a, pattern(a, byte(i))) + 100
			}
			for i, a := range addrs {
				pt, done := e.ReadBlock(now, a)
				if pt != pattern(a, byte(i)) {
					t.Fatalf("%s: read of %#x returned wrong plaintext", d, uint64(a))
				}
				if done < now {
					t.Fatalf("%s: completion %d before issue %d", d, done, now)
				}
				now = done + 10
			}
			if v := e.Stats().IntegrityViolations; v != 0 {
				t.Fatalf("%s: %d integrity violations on a clean run", d, v)
			}
		})
	}
}

func TestNeverWrittenBlockVerifies(t *testing.T) {
	for _, d := range allDesigns {
		t.Run(d, func(t *testing.T) {
			e := rig(t, d, engine.Params{})
			pt, _ := e.ReadBlock(0, 12345*64)
			if pt != (mem.Line{}) {
				t.Fatalf("%s: never-written block not zero", d)
			}
			if v := e.Stats().IntegrityViolations; v != 0 {
				t.Fatalf("%s: violation reading never-written block", d)
			}
		})
	}
}

func TestRepeatedOverwrites(t *testing.T) {
	for _, d := range allDesigns {
		t.Run(d, func(t *testing.T) {
			e := rig(t, d, engine.Params{})
			a := mem.Addr(4096)
			now := int64(0)
			for i := 0; i < 40; i++ {
				now = e.WriteBack(now, a, pattern(a, byte(i))) + 50
			}
			pt, _ := e.ReadBlock(now, a)
			if pt != pattern(a, 39) {
				t.Fatalf("%s: overwrites lost", d)
			}
			if v := e.Stats().IntegrityViolations; v != 0 {
				t.Fatalf("%s: violations after overwrites", d)
			}
		})
	}
}

func TestCounterOverflowReencryption(t *testing.T) {
	// 7-bit minors overflow after 127 bumps; the page is re-encrypted
	// and everything still round-trips.
	for _, d := range allDesigns {
		t.Run(d, func(t *testing.T) {
			e := rig(t, d, engine.Params{})
			a := mem.Addr(0)
			b := mem.Addr(2 * 64) // same page, different block
			now := e.WriteBack(0, b, pattern(b, 1)) + 10
			for i := 0; i < 130; i++ {
				now = e.WriteBack(now, a, pattern(a, byte(i))) + 10
			}
			if e.Stats().CounterOverflows == 0 {
				t.Fatalf("%s: no overflow after 130 bumps", d)
			}
			pt, _ := e.ReadBlock(now, a)
			if pt != pattern(a, 129) {
				t.Fatalf("%s: hot block wrong after overflow", d)
			}
			pt2, _ := e.ReadBlock(now, b)
			if pt2 != pattern(b, 1) {
				t.Fatalf("%s: cold block of re-encrypted page wrong", d)
			}
			if v := e.Stats().IntegrityViolations; v != 0 {
				t.Fatalf("%s: violations after overflow: %d", d, v)
			}
		})
	}
}

// nvmTreeConsistent checks the epoch invariant: the NVM image's tree
// verifies against ROOTold.
func nvmTreeConsistent(t *testing.T, img *engine.CrashImage) []bmt.Mismatch {
	t.Helper()
	cry := seccrypto.MustEngine(img.Keys)
	tr := bmt.New(img.Image.Layout, cry)
	return tr.VerifyAll(img.Image.Store, img.TCB.RootOld, img.Image.Store.Addrs())
}

func TestEpochInvariantAtArbitraryCrashPoints(t *testing.T) {
	// For cc-NVM (both variants), SC and a settled WoCC, the NVM Merkle
	// tree must verify against ROOTold at any crash point.
	for _, d := range []string{"sc", "ccnvm", "ccnvm-wods"} {
		t.Run(d, func(t *testing.T) {
			// Crash is destructive, so each crash point gets a fresh
			// engine replaying the same deterministic prefix.
			for _, crashAt := range []int{17, 60, 141, 300} {
				rng := rand.New(rand.NewSource(7))
				e := rig(t, d, engine.Params{UpdateLimit: 4, QueueEntries: 32})
				now := int64(0)
				for i := 0; i < crashAt; i++ {
					a := mem.Addr(rng.Intn(64) * 4096)
					now = e.WriteBack(now, a, pattern(a, byte(i))) + 20
				}
				img := e.Crash()
				if bad := nvmTreeConsistent(t, img); len(bad) != 0 {
					t.Fatalf("%s: inconsistent NVM tree at crash point %d: %v", d, crashAt, bad[0])
				}
			}
		})
	}
}

func TestWoCCSettleMakesTreeConsistent(t *testing.T) {
	e := rig(t, "wocc", engine.Params{})
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 200; i++ {
		a := mem.Addr(rng.Intn(128) * 4096)
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 20
	}
	e.Settle(now)
	img := e.Crash()
	if bad := nvmTreeConsistent(t, img); len(bad) != 0 {
		t.Fatalf("wocc settle left inconsistent tree: %v", bad[0])
	}
}

func TestOsirisOnlineRecoveryUnderEvictionPressure(t *testing.T) {
	// A tiny metadata cache forces dirty counter lines to be dropped;
	// later reads must pay retries but still verify.
	e := rigMeta(t, "osiris", engine.Params{UpdateLimit: 16}, metacache.Config{SizeBytes: 2048, Ways: 2})
	rng := rand.New(rand.NewSource(9))
	now := int64(0)
	written := map[mem.Addr]byte{}
	for i := 0; i < 400; i++ {
		a := mem.Addr(rng.Intn(256) * 4096)
		written[a] = byte(i)
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 20
	}
	for a, v := range written {
		pt, done := e.ReadBlock(now, a)
		if pt != pattern(a, v) {
			t.Fatalf("osiris: wrong data at %#x", uint64(a))
		}
		now = done + 10
	}
	st := e.Stats()
	if st.IntegrityViolations != 0 {
		t.Fatalf("osiris: %d violations", st.IntegrityViolations)
	}
	if st.StaleCounterRetries == 0 {
		t.Fatal("osiris: expected online-recovery retries under eviction pressure")
	}
}

func TestCCNVMUpdateLimitTrigger(t *testing.T) {
	e := rig(t, "ccnvm", engine.Params{UpdateLimit: 4})
	a := mem.Addr(0)
	now := int64(0)
	for i := 0; i < 12; i++ {
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 10
	}
	st := e.Stats()
	if st.DrainUpdateLimit < 2 {
		t.Fatalf("update-limit drains = %d, want >= 2 after 12 same-line write-backs with N=4", st.DrainUpdateLimit)
	}
}

func TestCCNVMQueueFullTrigger(t *testing.T) {
	// Distinct pages spread across the tree exhaust a small queue.
	e := rig(t, "ccnvm", engine.Params{QueueEntries: 24, UpdateLimit: 1 << 20})
	now := int64(0)
	for i := 0; i < 64; i++ {
		// Far-apart pages share few ancestors, filling the queue fast.
		a := mem.Addr(uint64(i) * 997 * 4096 % (capacity))
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 10
	}
	if e.Stats().DrainQueueFull == 0 {
		t.Fatal("no queue-full drains with a 24-entry queue and 64 scattered pages")
	}
}

func TestCCNVMNwbAccounting(t *testing.T) {
	c := core.NewCCNVM(mem.MustLayout(capacity), seccrypto.DefaultKeys(),
		memctrl.New(memctrl.Config{}, nvm.NewDevice(mem.MustLayout(capacity), nvm.PCMTiming(3))),
		metacache.Config{}, engine.Params{UpdateLimit: 8})
	now := int64(0)
	for i := 0; i < 5; i++ {
		a := mem.Addr(i * 4096)
		now = c.WriteBack(now, a, pattern(a, byte(i))) + 10
	}
	// Nwb counts write-backs since the last committed drain.
	img := c.Crash()
	if img.TCB.Nwb != 5 {
		t.Fatalf("Nwb = %d, want 5", img.TCB.Nwb)
	}
}

func TestCCNVMDrainResetsNwbAndRoots(t *testing.T) {
	lay := mem.MustLayout(capacity)
	c := core.NewCCNVM(lay, seccrypto.DefaultKeys(),
		memctrl.New(memctrl.Config{}, nvm.NewDevice(lay, nvm.PCMTiming(3))),
		metacache.Config{}, engine.Params{UpdateLimit: 4})
	now := int64(0)
	a := mem.Addr(0)
	for i := 0; i < 4; i++ { // exactly N: the 4th write-back drains
		now = c.WriteBack(now, a, pattern(a, byte(i))) + 10
	}
	img := c.Crash()
	if img.TCB.Nwb != 0 {
		t.Fatalf("Nwb = %d after drain, want 0", img.TCB.Nwb)
	}
	if img.TCB.RootNew != img.TCB.RootOld {
		t.Fatal("roots differ right after a committed drain")
	}
	if c.Stats().Drains == 0 {
		t.Fatal("no drain recorded")
	}
}

func TestCCNVMAvgEpochLength(t *testing.T) {
	lay := mem.MustLayout(capacity)
	c := core.NewCCNVM(lay, seccrypto.DefaultKeys(),
		memctrl.New(memctrl.Config{}, nvm.NewDevice(lay, nvm.PCMTiming(3))),
		metacache.Config{}, engine.Params{UpdateLimit: 4})
	now := int64(0)
	for i := 0; i < 16; i++ {
		now = c.WriteBack(now, 0, pattern(0, byte(i))) + 10
	}
	if got := c.AvgEpochLength(); got != 4 {
		t.Fatalf("average epoch length = %v, want 4 (N=4, single hot line)", got)
	}
}

func TestWriteTrafficOrdering(t *testing.T) {
	// The headline write-traffic relation: SC >> ccnvm >= osiris > wocc,
	// measured on a shared workload.
	traffic := map[string]uint64{}
	rng := rand.New(rand.NewSource(11))
	type op struct {
		a mem.Addr
		v byte
	}
	var ops []op
	for i := 0; i < 600; i++ {
		ops = append(ops, op{mem.Addr(rng.Intn(32) * 4096), byte(i)})
	}
	for _, d := range allDesigns {
		e := rig(t, d, engine.Params{})
		now := int64(0)
		for _, o := range ops {
			now = e.WriteBack(now, o.a, pattern(o.a, o.v)) + 30
		}
		var dev *nvm.Device
		switch x := e.(type) {
		case *engine.WoCC:
			dev = x.Ctrl.Device()
		case *engine.SC:
			dev = x.Ctrl.Device()
		case *engine.Osiris:
			dev = x.Ctrl.Device()
		case *core.CCNVM:
			dev = x.Ctrl.Device()
		}
		traffic[d] = dev.Writes().Total()
	}
	if !(traffic["sc"] > 2*traffic["ccnvm"]) {
		t.Errorf("SC traffic %d not dominating ccnvm %d", traffic["sc"], traffic["ccnvm"])
	}
	if !(traffic["ccnvm"] > traffic["wocc"]) {
		t.Errorf("ccnvm traffic %d not above wocc %d", traffic["ccnvm"], traffic["wocc"])
	}
	if !(traffic["ccnvm"] >= traffic["osiris"]) {
		t.Errorf("ccnvm traffic %d below osiris %d", traffic["ccnvm"], traffic["osiris"])
	}
	if !(traffic["sc"] > traffic["osiris"]) {
		t.Errorf("sc traffic %d not above osiris %d", traffic["sc"], traffic["osiris"])
	}
}
