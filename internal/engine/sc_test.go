package engine_test

import (
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/recovery"
)

// TestSCWriteBackCounts pins SC's defining cost: every write-back
// persists the data line, its HMAC line, the counter line and the whole
// Merkle path — the paper's "13 writes" at this layout's depth.
func TestSCWriteBackCounts(t *testing.T) {
	e, dev := rigDev(t, "sc", engine.Params{})
	lay := mem.MustLayout(capacity)
	perWB := uint64(3 + lay.InternalLevels) // data + HMAC + counter + path

	now := e.WriteBack(0, 0x4000, pattern(0x4000, 1)) + 100
	w := dev.Writes()
	if w.Data != 1 || w.HMAC != 1 || w.Counter != 1 || w.Tree != uint64(lay.InternalLevels) {
		t.Fatalf("single write-back wrote %s, want data=1 hmac=1 ctr=1 tree=%d", w, lay.InternalLevels)
	}

	// Repeated write-backs to the same block pay the full path again:
	// nothing is deferred or coalesced under SC.
	const k = 5
	for i := 0; i < k; i++ {
		now = e.WriteBack(now, 0x4000, pattern(0x4000, byte(2+i))) + 100
	}
	if w := dev.Writes(); w.Total() != (k+1)*perWB {
		t.Fatalf("%d write-backs wrote %s, want %d lines total", k+1, w, (k+1)*perWB)
	}
}

// TestSCCrashRecoverRoundTrip crashes SC mid-run with no settle: the
// full-path persistence means recovery needs zero retries and the data
// survives a reboot.
func TestSCCrashRecoverRoundTrip(t *testing.T) {
	e, _ := rigDev(t, "sc", engine.Params{})
	addrs := []mem.Addr{0, 0x1040, 0x80000, 0x1040}
	now := int64(0)
	for i, a := range addrs {
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 50
	}
	img := e.Crash()
	rep := recovery.Recover(img)
	if !rep.Clean() {
		t.Fatalf("SC crash flagged: %+v", rep)
	}
	if rep.Nretry != 0 || rep.RecoveredBlocks != 0 {
		t.Fatalf("SC needed counter recovery (Nretry=%d blocks=%d); full-path persistence broken", rep.Nretry, rep.RecoveredBlocks)
	}
	if rep.ConsistentRoot != "old" && rep.ConsistentRoot != "new" {
		t.Fatalf("SC tree verifies against neither root (got %q)", rep.ConsistentRoot)
	}
	rec := recovery.Apply(img, rep)

	e2 := reboot(t, "sc", img, rec, engine.Params{})
	for a, v := range map[mem.Addr]byte{0: 0, 0x1040: 3, 0x80000: 2} {
		pt, _ := e2.ReadBlock(now, a)
		if pt != pattern(a, v) {
			t.Fatalf("rebooted read of %#x returned wrong plaintext", uint64(a))
		}
	}
	if v := e2.Stats().IntegrityViolations; v != 0 {
		t.Fatalf("%d integrity violations on the rebooted engine", v)
	}
}
