package engine

import (
	"math/rand"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// newBase builds a bare Base over a fresh device for unit tests.
func newBase(t testing.TB, capacity uint64) *Base {
	t.Helper()
	lay := mem.MustLayout(capacity)
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	ctrl := memctrl.New(memctrl.Config{}, dev)
	b := &Base{}
	b.InitBase(lay, seccrypto.DefaultKeys(), ctrl, metacache.Config{}, Params{})
	return b
}

func TestParamsDefaults(t *testing.T) {
	var p Params
	p.Fill()
	if p.MetaCycles != 32 || p.HMACCycles != 80 || p.AESCycles != 216 ||
		p.QueueLookupCycles != 32 || p.UpdateLimit != 16 || p.QueueEntries != 64 {
		t.Fatalf("defaults wrong: %+v", p)
	}
}

func TestHMACOpChainLatency(t *testing.T) {
	b := newBase(t, 1<<30)
	if got := b.HMACOp(100, 1); got != 180 {
		t.Fatalf("single HMAC done at %d, want 180", got)
	}
	// A Merkle path of 11 levels serializes: 11 x 80.
	if got := b.HMACOp(0, 11); got != 880 {
		t.Fatalf("11-chain done at %d, want 880", got)
	}
	if got := b.HMACOp(50, 0); got != 50 {
		t.Fatalf("empty chain advanced time: %d", got)
	}
	if b.Stats().HMACOps != 12 {
		t.Fatalf("HMACOps = %d, want 12", b.Stats().HMACOps)
	}
}

func TestAESOpLatency(t *testing.T) {
	b := newBase(t, 1<<30)
	if got := b.AESOp(10); got != 226 {
		t.Fatalf("AES done at %d, want 226 (72 ns at 3 GHz)", got)
	}
}

func TestWritebackBufferSlots(t *testing.T) {
	b := newBase(t, 1<<30)
	// Fill every default slot with long-running work.
	for i := 0; i < b.P.WritebackBuffer; i++ {
		slot, accept := b.AcquireWBSlot(0)
		if accept != 0 {
			t.Fatalf("slot %d not immediately free", i)
		}
		b.ReleaseWBSlot(slot, 1000+int64(i))
	}
	// The next acquisition must wait for the earliest release.
	_, accept := b.AcquireWBSlot(0)
	if accept != 1000 {
		t.Fatalf("fifth writeback accepted at %d, want 1000", accept)
	}
	st := b.Stats()
	if st.WritebackBufferStalls != 1 || st.WritebackStallCycles != 1000 {
		t.Fatalf("stall stats = %+v", st)
	}
}

func TestDefaultHMACLineVerifiesZeroBlocks(t *testing.T) {
	b := newBase(t, 1<<30)
	ha, slot := b.Lay.HMACLineOf(256)
	l := b.DefaultHMACLine(ha)
	got := seccrypto.GetHMAC(l, slot)
	want := b.Cry.DataHMAC(256, 0, mem.Line{})
	if got != want {
		t.Fatal("default HMAC line slot does not authenticate a never-written block")
	}
}

func TestFetchChainFillsAndVerifies(t *testing.T) {
	b := newBase(t, 1<<30)
	// Empty NVM: the whole default chain must verify against ROOTold.
	line, done := b.FetchChain(0, 0, 5)
	if line != b.Tree.DefaultNode(0) {
		t.Fatal("fetched default counter line wrong")
	}
	if done <= 0 {
		t.Fatal("fetch took no time")
	}
	if b.Stats().IntegrityViolations != 0 {
		t.Fatal("default chain failed verification")
	}
	if !b.Meta.Contains(b.Lay.CounterLineAddr(5)) {
		t.Fatal("fetched line not installed in meta cache")
	}
	// Second access is a cache hit: CounterLine returns fast.
	_, t2 := b.CounterLine(1000, b.Lay.CounterLineAddr(5))
	if t2 != 1000+b.P.MetaCycles {
		t.Fatalf("cached counter took %d, want meta hit latency", t2-1000)
	}
}

func TestFetchChainDetectsCorruptNVM(t *testing.T) {
	b := newBase(t, 1<<30)
	// Write a counter line to NVM that does not match the (default) tree.
	var cl seccrypto.CounterLine
	cl.Bump(0)
	b.Ctrl.Device().Write(b.Lay.CounterLineAddr(3), cl.Encode())
	b.FetchChain(0, 0, 3)
	if b.Stats().IntegrityViolations == 0 {
		t.Fatal("inconsistent NVM counter accepted")
	}
}

func TestVictimForwardingFromPendingEvicts(t *testing.T) {
	b := newBase(t, 1<<30)
	var dirty mem.Line
	dirty[0] = 0xAB
	ca := b.Lay.CounterLineAddr(9)
	b.pendingEvicts = append(b.pendingEvicts, EvictRec{Addr: ca, Line: dirty})
	got, _ := b.FetchChain(0, 0, 9)
	if got != dirty {
		t.Fatal("fetch did not forward the in-flight victim")
	}
	if b.Stats().IntegrityViolations != 0 {
		t.Fatal("forwarded victim was verified against NVM")
	}
}

func TestVictimForwardingFromStash(t *testing.T) {
	b := newBase(t, 1<<30)
	var stashed mem.Line
	stashed[1] = 0xCD
	ca := b.Lay.CounterLineAddr(11)
	b.StashLookup = func(a mem.Addr) (mem.Line, bool) {
		if a == ca {
			return stashed, true
		}
		return mem.Line{}, false
	}
	got, _ := b.FetchChain(0, 0, 11)
	if got != stashed {
		t.Fatal("fetch did not consult the design stash")
	}
}

func TestUpdatePendingEvict(t *testing.T) {
	b := newBase(t, 1<<30)
	b.pendingEvicts = append(b.pendingEvicts, EvictRec{Addr: 64})
	l, ok := b.UpdatePendingEvict(64, func(n *mem.Line) { n[0] = 7 })
	if !ok || l[0] != 7 {
		t.Fatal("pending evict not updated")
	}
	if _, ok := b.UpdatePendingEvict(128, nil); ok {
		t.Fatal("absent pending evict reported updated")
	}
	if b.pendingEvicts[0].Line[0] != 7 {
		t.Fatal("mutation did not persist in the queue")
	}
}

func TestRequeueEvictsPreservesOrder(t *testing.T) {
	b := newBase(t, 1<<30)
	b.pendingEvicts = []EvictRec{{Addr: 192}}
	b.RequeueEvicts([]EvictRec{{Addr: 64}, {Addr: 128}})
	got := b.TakePendingEvicts()
	if len(got) != 3 || got[0].Addr != 64 || got[1].Addr != 128 || got[2].Addr != 192 {
		t.Fatalf("requeue order wrong: %+v", got)
	}
}

func TestTimingMonotonicityProperty(t *testing.T) {
	// Completion times never precede issue times, across designs and
	// random op mixes.
	lay := mem.MustLayout(1 << 30)
	for _, mk := range []func() Engine{
		func() Engine {
			return NewWoCC(lay, seccrypto.DefaultKeys(),
				memctrl.New(memctrl.Config{}, nvm.NewDevice(lay, nvm.PCMTiming(3))), metacache.Config{}, Params{})
		},
		func() Engine {
			return NewSC(lay, seccrypto.DefaultKeys(),
				memctrl.New(memctrl.Config{}, nvm.NewDevice(lay, nvm.PCMTiming(3))), metacache.Config{}, Params{})
		},
		func() Engine {
			return NewOsiris(lay, seccrypto.DefaultKeys(),
				memctrl.New(memctrl.Config{}, nvm.NewDevice(lay, nvm.PCMTiming(3))), metacache.Config{}, Params{})
		},
	} {
		e := mk()
		rng := rand.New(rand.NewSource(2))
		now := int64(0)
		for i := 0; i < 300; i++ {
			a := mem.Addr(rng.Intn(512) * 64 * 64)
			if rng.Intn(2) == 0 {
				accept := e.WriteBack(now, a, mem.Line{})
				if accept < now {
					t.Fatalf("%s: acceptance %d before issue %d", e.Name(), accept, now)
				}
				now = accept + int64(rng.Intn(40))
			} else {
				_, done := e.ReadBlock(now, a)
				if done < now {
					t.Fatalf("%s: completion %d before issue %d", e.Name(), done, now)
				}
				now += int64(rng.Intn(40))
			}
		}
	}
}

func TestCrashImageCarriesConfig(t *testing.T) {
	b := newBase(t, 1<<30)
	img := b.MakeCrashImage("test")
	if img.Design != "test" || img.UpdateLimit != 16 || img.Keys != b.Keys {
		t.Fatalf("crash image metadata wrong: %+v", img)
	}
}

func TestTCBCloneExt(t *testing.T) {
	var tcb TCB
	if cp := tcb.CloneExt(); cp.ExtDirty != nil {
		t.Fatal("nil map cloned into non-nil")
	}
	tcb.ExtDirty = map[mem.Addr]uint64{64: 3}
	cp := tcb.CloneExt()
	cp.ExtDirty[64] = 9
	if tcb.ExtDirty[64] != 3 {
		t.Fatal("clone aliases the original map")
	}
}
