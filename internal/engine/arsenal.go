package engine

import (
	"ccnvm/internal/compress"
	"ccnvm/internal/design/names"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/seccrypto"
)

// Arsenal is the compression-based baseline of the paper's related work
// [Swami & Mohanram, ARSENAL, IEEE CAL'18]: each data block is BDI-
// compressed and, when it fits, its encryption counter and data HMAC
// ride inline in the same 64 B line — one atomic NVM write carries data
// and metadata, so counter crash consistency costs nothing and even the
// separate HMAC-line write of the other designs disappears.
// Incompressible blocks fall back to the conventional three-line path
// (data, HMAC, counter) behind an ordering point.
//
// Like Osiris Plus, Arsenal keeps its Merkle tree on chip only and
// updates the TCB root on every write-back, so replay attacks are
// detected after a crash (rebuilt root mismatch) but cannot be located.
// The per-line compressibility tag lives in the ECC spare bits of real
// hardware; the model carries it as a persistent sideband map.
//
// Packed line layout: [0]=encoding | encrypted payload | counter (8 B,
// plaintext, as CME counters always are) | HMAC (16 B). The payload
// budget is 64-1-8-16 = 39 bytes: zero, repeat, delta1 and delta2
// blocks fit; delta4 and raw blocks do not.
type Arsenal struct {
	Base
	shadowCtr  map[mem.Addr]seccrypto.CounterLine // newest counter truth
	shadowTree map[mem.Addr]mem.Line              // newest tree truth
	tags       map[mem.Addr]byte                  // sideband: 1 = packed

	compressed   uint64 // write-backs that fit inline
	uncompressed uint64
}

// PackedBudget is the payload space left in a line after the encoding
// byte, inline counter and inline HMAC.
const PackedBudget = mem.LineSize - 1 - 8 - 16

// Sideband tag values.
const (
	TagRaw    byte = 0
	TagPacked byte = 1
)

// CompressLatency is the BDI encode/decode latency in cycles (a few
// comparator stages in hardware).
const CompressLatency = 8

// NewArsenal builds the Arsenal engine.
func NewArsenal(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p Params) *Arsenal {
	a := &Arsenal{
		shadowCtr:  make(map[mem.Addr]seccrypto.CounterLine),
		shadowTree: make(map[mem.Addr]mem.Line),
		tags:       make(map[mem.Addr]byte),
	}
	a.InitBase(lay, keys, ctrl, metaCfg, p)
	a.VerifyFetchedMeta = false // the in-NVM tree is not maintained
	a.SetCounterSource(a.counterLine)
	return a
}

// Name implements Engine.
func (a *Arsenal) Name() string { return names.Arsenal }

// CompressionRatio reports the fraction of write-backs that fit inline.
func (a *Arsenal) CompressionRatio() float64 {
	total := a.compressed + a.uncompressed
	if total == 0 {
		return 0
	}
	return float64(a.compressed) / float64(total)
}

// truth returns the newest counter line content (inline counters are
// authoritative; the shadow mirrors them for whole-line operations).
func (a *Arsenal) truth(ca mem.Addr) seccrypto.CounterLine {
	if cl, ok := a.shadowCtr[ca]; ok {
		return cl
	}
	l, _ := a.Ctrl.Device().Peek(ca)
	return seccrypto.DecodeCounterLine(l)
}

// counterLine serves the shared read/bump paths from the shadow truth;
// Arsenal's counters are never stale (they persist inline with the
// data), so no recovery retries are ever charged.
func (a *Arsenal) counterLine(now int64, ca mem.Addr) (seccrypto.CounterLine, int64) {
	if _, ok := a.Meta.Read(ca); ok {
		return a.truth(ca), now + a.P.MetaCycles
	}
	cl := a.truth(ca)
	a.Meta.Fill(ca, cl.Encode())
	return cl, now + a.P.MetaCycles
}

// PackArsenalLine builds the packed NVM representation: encoding byte,
// encrypted payload, inline plaintext counter and inline HMAC over the
// canonical (zero-padded) ciphertext.
func PackArsenalLine(cry *seccrypto.Engine, addr mem.Addr, ctr uint64, pt mem.Line) (mem.Line, bool) {
	enc, payload, ok := compress.Compress(pt, PackedBudget)
	if !ok {
		return mem.Line{}, false
	}
	// Encrypt the payload bytes with the block's pad.
	var canon mem.Line
	copy(canon[:], payload)
	ct := cry.Encrypt(addr, ctr, canon)
	var out mem.Line
	out[0] = byte(enc)
	copy(out[1:1+len(payload)], ct[:len(payload)])
	putU64(out[1+PackedBudget:1+PackedBudget+8], ctr)
	var ctCanon mem.Line
	copy(ctCanon[:], ct[:len(payload)])
	h := cry.DataHMAC(addr, ctr, ctCanon)
	copy(out[1+PackedBudget+8:], h[:])
	return out, true
}

// UnpackArsenalLine inverts PackArsenalLine, verifying the inline HMAC.
func UnpackArsenalLine(cry *seccrypto.Engine, addr mem.Addr, line mem.Line) (pt mem.Line, ctr uint64, ok bool) {
	enc := compress.Encoding(line[0])
	size := enc.PayloadSize()
	if size > PackedBudget {
		return mem.Line{}, 0, false
	}
	ctr = getU64(line[1+PackedBudget : 1+PackedBudget+8])
	var ctCanon mem.Line
	copy(ctCanon[:], line[1:1+size])
	var stored seccrypto.HMAC
	copy(stored[:], line[1+PackedBudget+8:])
	if cry.DataHMAC(addr, ctr, ctCanon) != stored {
		return mem.Line{}, 0, false
	}
	dec := cry.Decrypt(addr, ctr, ctCanon)
	payload := make([]byte, size)
	copy(payload, dec[:size])
	out, err := compress.Decompress(enc, payload)
	if err != nil {
		return mem.Line{}, 0, false
	}
	return out, ctr, true
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// ReadBlock implements Engine: packed blocks need a single NVM read
// (counter and HMAC are inline); raw blocks follow the conventional
// path.
func (a *Arsenal) ReadBlock(now int64, addr mem.Addr) (mem.Line, int64) {
	addr = mem.Align(addr)
	if a.tags[addr] != TagPacked {
		pt, done := a.Base.ReadBlock(now, addr)
		a.dropEvicts()
		return pt, done
	}
	a.StatsRef().Reads++
	line, _, tData := a.Ctrl.Read(now, addr)
	pt, _, ok := UnpackArsenalLine(a.Cry, addr, line)
	if !ok {
		a.StatsRef().IntegrityViolations++
	}
	tOTP := a.AESOp(tData)
	done := a.HMACOp(tOTP, 1) + CompressLatency
	a.dropEvicts()
	return pt, done
}

// WriteBack implements Engine.
func (a *Arsenal) WriteBack(now int64, addr mem.Addr, pt mem.Line) int64 {
	a.StatsRef().Writebacks++
	addr = mem.Align(addr)
	slot, accept := a.AcquireWBSlot(now)

	ca := a.Lay.CounterLineOf(addr)
	cl, avail := a.counterLine(accept, ca)
	cslot := a.Lay.CounterSlotOf(addr)
	old := cl
	overflowed := cl.Bump(cslot)
	if overflowed {
		a.StatsRef().CounterOverflows++
		avail = a.reencryptPagePacked(avail, addr, old, cl)
	}
	a.shadowCtr[ca] = cl
	if a.Meta.Contains(ca) {
		a.Meta.Update(ca, cl.Encode())
	} else {
		a.Meta.FillDirty(ca, cl.Encode())
	}
	ctr := cl.Counter(cslot)

	// Replay protection: the root moves with every write-back, exactly
	// like Osiris Plus.
	tPath := a.updatePath(avail, a.Lay.CounterLineIndex(ca))

	var done int64
	if packed, ok := PackArsenalLine(a.Cry, addr, ctr, pt); ok {
		a.compressed++
		a.tags[addr] = TagPacked
		tEnc := a.AESOp(tPath) + CompressLatency
		tMac := a.HMACOp(tEnc, 1)
		done = a.Ctrl.Write(tMac, addr, packed)
	} else {
		// Fallback: conventional three-line path behind an ordering
		// point (data must not land before its metadata is durable).
		a.uncompressed++
		a.tags[addr] = TagRaw
		tOrder := tPath + a.Ctrl.Device().Timing().WriteCycles
		done = a.WriteDataBlock(tOrder, tOrder, addr, pt, ctr)
		done = max(done, a.Ctrl.Write(done, ca, cl.Encode()))
	}
	a.dropEvicts()
	a.ReleaseWBSlot(slot, done)
	return accept
}

// updatePath mirrors the Osiris shadow-tree walk.
func (a *Arsenal) updatePath(now int64, leaf uint64) int64 {
	cl := a.truth(a.Lay.CounterLineAddr(leaf))
	child := cl.Encode()
	level, idx := 0, leaf
	t := now
	for level < a.Lay.TopLevel() {
		pl, pi, slot := a.Lay.ParentOf(level, idx)
		pa := a.Lay.NodeAddr(pl, pi)
		node, ok := a.shadowTree[pa]
		if !ok {
			node = a.Tree.DefaultNode(pl)
		}
		if !a.Meta.Contains(pa) {
			_, _, tr := a.Ctrl.ReadBypass(t, pa)
			t = tr
		}
		a.Tree.SetParentSlot(&node, slot, child)
		t = a.HMACOp(t, 1)
		a.shadowTree[pa] = node
		a.Meta.Fill(pa, node)
		child = node
		level, idx = pl, pi
	}
	a.Tree.SetParentSlot(&a.TCB.RootNew, int(idx), child)
	t = a.HMACOp(t, 1)
	a.TCB.RootOld = a.TCB.RootNew
	return t
}

// reencryptPagePacked is the Arsenal form of minor-overflow handling:
// packed lines must be unpacked with their old counters and re-packed
// under the new ones; raw lines follow the conventional re-encryption.
// The new counter line is persisted immediately so the inline/region
// counters stay in lockstep.
func (a *Arsenal) reencryptPagePacked(now int64, addr mem.Addr, old, cl seccrypto.CounterLine) int64 {
	pageBase := mem.Addr(uint64(addr) / mem.PageSize * mem.PageSize)
	t := now
	for s := 0; s < mem.BlocksPerPage; s++ {
		da := pageBase + mem.Addr(s*mem.LineSize)
		raw, present, tr := a.Ctrl.ReadBypass(t, da)
		var pt mem.Line
		switch {
		case !present:
			// Never-written blocks are materialized as zeros so their
			// inline counters match the page's new major (exactly like
			// the base re-encryption sweep).
		case a.tags[da] == TagPacked:
			var ok bool
			pt, _, ok = UnpackArsenalLine(a.Cry, da, raw)
			if !ok {
				a.StatsRef().IntegrityViolations++
				continue
			}
		default:
			pt = a.Cry.Decrypt(da, old.Counter(s), raw)
		}
		if packed, ok := PackArsenalLine(a.Cry, da, cl.Counter(s), pt); ok {
			a.tags[da] = TagPacked
			t = a.Ctrl.Write(tr, da, packed)
		} else {
			a.tags[da] = TagRaw
			ct := a.Cry.Encrypt(da, cl.Counter(s), pt)
			ha, hslot := a.Lay.HMACLineOf(da)
			hl, ok, _ := a.Ctrl.ReadBypass(tr, ha)
			if !ok {
				hl = a.DefaultHMACLine(ha)
			}
			seccrypto.PutHMAC(&hl, hslot, a.Cry.DataHMAC(da, cl.Counter(s), ct))
			t = a.Ctrl.Write(tr, da, ct)
			t = max(t, a.Ctrl.Write(t, ha, hl))
		}
	}
	// Bulk crypto charge: unpack+repack per present block.
	t += a.P.AESCycles + int64(mem.BlocksPerPage)*a.P.HMACCycles/4
	// The region copy of the counter line must follow so raw blocks (and
	// recovery) see the new major.
	t = max(t, a.Ctrl.Write(t, a.Lay.CounterLineOf(addr), cl.Encode()))
	return t
}

func (a *Arsenal) dropEvicts() { a.TakePendingEvicts() }

// Settle implements Engine: inline state is already durable; only the
// raw-fallback counters could lag, and those were written synchronously,
// so nothing remains to flush.
func (a *Arsenal) Settle(now int64) int64 {
	a.dropEvicts()
	return now
}

// Crash implements Engine: the sideband tags persist (ECC spare bits);
// the shadow tree and counter mirrors are volatile.
func (a *Arsenal) Crash() *CrashImage {
	a.ApplyCrashVolatility()
	a.shadowCtr = make(map[mem.Addr]seccrypto.CounterLine)
	a.shadowTree = make(map[mem.Addr]mem.Line)
	img := a.MakeCrashImage(a.Name())
	img.Sideband = make(map[mem.Addr]byte, len(a.tags))
	for k, v := range a.tags {
		img.Sideband[k] = v
	}
	return img
}

var _ Engine = (*Arsenal)(nil)
