package engine

import (
	"ccnvm/internal/design/names"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/seccrypto"
)

// WoCC is the "without crash consistency" baseline: a conventional
// secure memory architecture (counter-mode encryption plus a cached
// Bonsai Merkle Tree) ported to NVM with no consistency machinery at
// all. Metadata updates stay in the metadata cache and propagate lazily:
// when a dirty counter or tree line is evicted, it is written to NVM and
// its new HMAC is folded into the parent — in the cache when the parent
// is resident, otherwise by read-modify-writing NVM up to the first
// resident ancestor (or the root registers).
//
// It is the evaluation's normalization baseline: fastest and with the
// least write traffic, but after a crash the NVM counters and tree are
// arbitrarily stale, so data can be neither decrypted nor authenticated,
// which is indistinguishable from an attack.
type WoCC struct {
	Base
}

// NewWoCC builds the baseline over a controller.
func NewWoCC(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p Params) *WoCC {
	w := &WoCC{}
	w.InitBase(lay, keys, ctrl, metaCfg, p)
	return w
}

// Name implements Engine.
func (w *WoCC) Name() string { return names.WoCC }

// ReadBlock implements Engine via the shared path, then settles any
// dirty metadata the fetch displaced.
func (w *WoCC) ReadBlock(now int64, addr mem.Addr) (mem.Line, int64) {
	pt, done := w.Base.ReadBlock(now, addr)
	w.handleEvicts(now)
	return pt, done
}

// WriteBack implements Engine: bump the counter in the cache, write the
// encrypted block and its HMAC, and let metadata linger on chip.
func (w *WoCC) WriteBack(now int64, addr mem.Addr, pt mem.Line) int64 {
	w.stats.Writebacks++
	slot, accept := w.AcquireWBSlot(now)
	r := w.BumpCounter(accept, addr)
	done := w.WriteDataBlock(accept, r.Avail, addr, pt, r.Counter)
	w.handleEvicts(accept)
	w.ReleaseWBSlot(slot, done)
	return accept
}

// handleEvicts applies the lazy write-back rule to displaced dirty
// metadata lines, one at a time: folding a victim's HMAC into a parent
// that is itself pending must update the pending copy, so each victim is
// taken only when it is actually persisted.
func (w *WoCC) handleEvicts(now int64) {
	for {
		pending := w.TakePendingEvicts()
		if len(pending) == 0 {
			return
		}
		e := pending[0]
		w.RequeueEvicts(pending[1:])
		w.lazyPersist(now, e.Addr, e.Line)
	}
}

// lazyPersist writes a dirty metadata line to NVM and folds its HMAC
// into the parent: in the cache when resident (stopping the walk),
// otherwise read-modify-writing NVM parents upward; reaching the top
// updates both root registers.
func (w *WoCC) lazyPersist(now int64, a mem.Addr, content mem.Line) {
	var level int
	var idx uint64
	switch w.Lay.RegionOf(a) {
	case mem.RegionCounter:
		level, idx = 0, w.Lay.CounterLineIndex(a)
	case mem.RegionTree:
		level, idx = w.Lay.NodeAt(a)
	default:
		panic("wocc: dirty meta eviction outside metadata regions")
	}
	t := w.Ctrl.Write(now, a, content)
	child := content
	for {
		if level == w.Lay.TopLevel() {
			w.Tree.SetParentSlot(&w.TCB.RootNew, int(idx), child)
			w.HMACOp(t, 1)
			w.TCB.RootOld = w.TCB.RootNew
			return
		}
		pl, pi, slot := w.Lay.ParentOf(level, idx)
		pa := w.Lay.NodeAddr(pl, pi)
		if node, ok := w.Meta.Peek(pa); ok {
			w.Tree.SetParentSlot(&node, slot, child)
			w.HMACOp(t, 1)
			w.Meta.Update(pa, node)
			return
		}
		if node, ok := w.UpdatePendingEvict(pa, func(n *mem.Line) {
			w.Tree.SetParentSlot(n, slot, child)
		}); ok {
			// The parent is itself awaiting persistence: the folded slot
			// rides along when its turn comes.
			_ = node
			w.HMACOp(t, 1)
			return
		}
		// Parent off chip: read-modify-write it in NVM and continue up,
		// since its own parent must absorb the change too.
		node, ok, tr := w.Ctrl.ReadBypass(t, pa)
		if !ok {
			node = w.Tree.DefaultNode(pl)
		}
		w.Tree.SetParentSlot(&node, slot, child)
		t = w.HMACOp(tr, 1)
		t = w.Ctrl.Write(t, pa, node)
		child = node
		level, idx = pl, pi
	}
}

// Settle implements Engine: flush every dirty metadata line through the
// lazy rule. Ascending address order is bottom-up in tree levels, and
// re-dirtied parents are picked up by subsequent passes.
func (w *WoCC) Settle(now int64) int64 {
	w.handleEvicts(now)
	for {
		dirty := w.Meta.DirtyAddrs()
		if len(dirty) == 0 {
			return now
		}
		for _, a := range dirty {
			content, ok := w.Meta.Peek(a)
			if !ok {
				continue
			}
			w.Meta.Clean(a)
			w.lazyPersist(now, a, content)
		}
	}
}

// Crash implements Engine.
func (w *WoCC) Crash() *CrashImage {
	w.ApplyCrashVolatility()
	return w.MakeCrashImage(w.Name())
}
