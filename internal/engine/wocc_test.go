package engine_test

import (
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/recovery"
)

// TestWoCCWriteBackCounts pins the lazy write-back economics: a
// write-back persists only data and HMAC; counters and tree nodes stay
// on chip until Settle flushes them through the lazy rule.
func TestWoCCWriteBackCounts(t *testing.T) {
	e, dev := rigDev(t, "wocc", engine.Params{})
	lay := mem.MustLayout(capacity)
	const k = 6
	now := int64(0)
	for i := 0; i < k; i++ {
		now = e.WriteBack(now, 0x3000, pattern(0x3000, byte(i))) + 50
	}
	w := dev.Writes()
	if w.Data != k || w.HMAC != k {
		t.Fatalf("data/HMAC writes = %d/%d, want %d each (%s)", w.Data, w.HMAC, k, w)
	}
	if w.Counter != 0 || w.Tree != 0 {
		t.Fatalf("metadata leaked to NVM before Settle: %s", w)
	}

	// Settle flushes the one dirty counter line and folds it up the
	// (entirely off-chip) tree: one counter write, one node per level.
	e.Settle(now)
	w = dev.Writes()
	if w.Counter != 1 {
		t.Fatalf("settle wrote %d counter lines, want 1 (%s)", w.Counter, w)
	}
	if w.Tree != uint64(lay.InternalLevels) {
		t.Fatalf("settle wrote %d tree nodes, want %d (%s)", w.Tree, lay.InternalLevels, w)
	}
}

// TestWoCCSettledCrashRecoverRoundTrip: after Settle, a crash image is
// fully consistent — recovery is clean with zero retries and the data
// survives a reboot. This is the only crash w/o CC recovers from.
func TestWoCCSettledCrashRecoverRoundTrip(t *testing.T) {
	e, _ := rigDev(t, "wocc", engine.Params{})
	addrs := []mem.Addr{0x3000, 0x3040, 0x40000}
	now := int64(0)
	for i, a := range addrs {
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 50
	}
	now = e.Settle(now)

	img := e.Crash()
	rep := recovery.Recover(img)
	if !rep.Clean() {
		t.Fatalf("settled wocc crash flagged: %+v", rep)
	}
	if rep.Nretry != 0 {
		t.Fatalf("settled image needed %d retries", rep.Nretry)
	}
	rec := recovery.Apply(img, rep)

	e2 := reboot(t, "wocc", img, rec, engine.Params{})
	for i, a := range addrs {
		pt, _ := e2.ReadBlock(now, a)
		if pt != pattern(a, byte(i)) {
			t.Fatalf("rebooted read of %#x returned wrong plaintext", uint64(a))
		}
	}
	if v := e2.Stats().IntegrityViolations; v != 0 {
		t.Fatalf("%d integrity violations on the rebooted engine", v)
	}
}

// TestWoCCUnsettledCrashIsUnrecoverable demonstrates the motivating
// defect: hammering one line past the recovery retry bound and crashing
// without a settle leaves counters stale beyond repair.
func TestWoCCUnsettledCrashIsUnrecoverable(t *testing.T) {
	const n = 8
	e, _ := rigDev(t, "wocc", engine.Params{UpdateLimit: n})
	now := int64(0)
	for i := 0; i < 5*n; i++ {
		now = e.WriteBack(now, 0x3000, pattern(0x3000, byte(i))) + 50
	}
	rep := recovery.Recover(e.Crash())
	if rep.Clean() {
		t.Fatal("crash with unbounded counter staleness recovered clean; w/o CC should be unrecoverable here")
	}
	if len(rep.Tampered) == 0 {
		t.Fatalf("expected stale blocks flagged as unrecoverable, got %+v", rep)
	}
}
