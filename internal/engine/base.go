package engine

import (
	"ccnvm/internal/bmt"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
)

// EvictRec describes a dirty metadata line displaced from the meta
// cache, handed to the owning design's eviction policy.
type EvictRec struct {
	Addr mem.Addr
	Line mem.Line
}

// Base bundles the state and machinery shared by every consistency
// design: layout, crypto, tree logic, memory controller, metadata cache,
// the serialized HMAC unit and AES unit, the writeback victim buffer and
// the TCB registers. Designs embed Base and differ in their WriteBack,
// eviction and drain policies.
type Base struct {
	Lay  *mem.Layout
	Cry  *seccrypto.Engine
	Tree *bmt.Tree
	Ctrl *memctrl.Controller
	Meta *metacache.Cache
	P    Params
	TCB  TCB
	Keys seccrypto.Keys

	// VerifyFetchedMeta controls whether counter/tree lines fetched from
	// NVM are verified against their ancestor chain. Every design except
	// Osiris Plus (whose in-NVM tree is not maintained) keeps it on.
	VerifyFetchedMeta bool

	// counterFn obtains the counter line for the read/write paths. It
	// defaults to Base.CounterLine; Osiris Plus overrides it with its
	// online-recovery source.
	counterFn func(now int64, ca mem.Addr) (seccrypto.CounterLine, int64)

	hmacFree int64 // serialized HMAC unit: next-free cycle
	aesFree  int64 // AES pad-generation unit: next-free cycle
	wbSlots  []int64

	pendingEvicts []EvictRec
	// pendingIdx maps an address to the newest pending-evict record
	// holding it, so victim forwarding and in-place victim updates stay
	// O(1) when the queue grows long. nil means stale: it is rebuilt
	// lazily on the next lookup and invalidated by bulk mutations
	// (TakePendingEvicts, RequeueEvicts).
	pendingIdx map[mem.Addr]int

	// defLines memoizes synthesized default data-HMAC lines (four SHA-1
	// HMACs each), which profiling shows dominate read-path time on
	// sparse images. Direct-mapped and bounded, like the seccrypto memos.
	defLines []defLineSlot

	// OnViolation, when set, observes runtime integrity failures with a
	// short site tag; tests use it to pinpoint verification bugs.
	OnViolation func(site string, a mem.Addr, level int)

	// StashLookup, when set, lets the owning design expose additional
	// on-chip metadata buffers (cc-NVM's epoch stash) to the
	// victim-forwarding path, so a fetch never reads a stale NVM copy of
	// a line that is still in flight on chip.
	StashLookup func(a mem.Addr) (mem.Line, bool)

	stats SecStats
}

// InitBase wires the shared components. Designs call it from their
// constructors; the metadata cache is created here so that its eviction
// hook lands in the shared pending-eviction queue.
func (b *Base) InitBase(lay *mem.Layout, keys seccrypto.Keys, ctrl *memctrl.Controller, metaCfg metacache.Config, p Params) {
	p.Fill()
	b.Lay = lay
	b.Keys = keys
	b.Cry = seccrypto.MustEngine(keys)
	b.Tree = bmt.New(lay, b.Cry)
	b.Ctrl = ctrl
	b.P = p
	b.VerifyFetchedMeta = true
	b.wbSlots = make([]int64, p.WritebackBuffer)
	b.defLines = make([]defLineSlot, defLineSlots)
	b.Meta = metacache.New(metaCfg, func(a mem.Addr, l mem.Line, dirty bool) {
		if dirty {
			b.pendingEvicts = append(b.pendingEvicts, EvictRec{Addr: a, Line: l})
			if b.pendingIdx != nil {
				b.pendingIdx[a] = len(b.pendingEvicts) - 1
			}
		}
	})
	if p.Workers > 1 {
		// Let the controller service epoch-drain batches on the worker
		// pool, partitioned by the same top-level-subtree shard the tree
		// pipeline uses. The controller refuses the split (keeping the
		// single global FIFO) when a fault model is active, since
		// crash-time tear composition replays held entries in global
		// write order.
		b.Ctrl.ConfigureDrainSharding(b.Tree.Shards(), func(a mem.Addr) int {
			switch lay.RegionOf(a) {
			case mem.RegionCounter:
				return b.Tree.ShardOf(0, lay.CounterLineIndex(a))
			case mem.RegionTree:
				return b.Tree.ShardOf(lay.NodeAt(a))
			default:
				return 0
			}
		}, p.Workers)
	}
	// An empty NVM implies the default tree; both root registers start
	// at the default root node so verification works from cycle zero.
	b.TCB.RootNew = b.Tree.RootNode(emptyReader{})
	b.TCB.RootOld = b.TCB.RootNew
	b.counterFn = b.CounterLine
}

// SetCounterSource replaces the counter-line source used by the shared
// read and write paths.
func (b *Base) SetCounterSource(fn func(now int64, ca mem.Addr) (seccrypto.CounterLine, int64)) {
	b.counterFn = fn
}

type emptyReader struct{}

func (emptyReader) Read(mem.Addr) (mem.Line, bool) { return mem.Line{}, false }

// TakePendingEvicts returns and clears the dirty metadata evictions
// accumulated by meta-cache fills since the last call. Designs consume
// them at well-defined points (never inside a Fill) to avoid cache
// reentrancy.
func (b *Base) TakePendingEvicts() []EvictRec {
	e := b.pendingEvicts
	b.pendingEvicts = nil
	b.pendingIdx = nil
	return e
}

// RequeueEvicts puts unprocessed eviction records back at the head of
// the pending queue; designs that persist victims one at a time use it.
func (b *Base) RequeueEvicts(recs []EvictRec) {
	b.pendingEvicts = append(recs, b.pendingEvicts...)
	b.pendingIdx = nil // indices shifted; rebuild on next lookup
}

// findPendingEvict returns the index of the newest pending record at a,
// or -1. It maintains the address index lazily: a full scan happens at
// most once per bulk queue mutation, keeping lookups O(1) amortized
// instead of O(queue length) each.
func (b *Base) findPendingEvict(a mem.Addr) int {
	if len(b.pendingEvicts) == 0 {
		return -1
	}
	if b.pendingIdx == nil {
		b.pendingIdx = make(map[mem.Addr]int, len(b.pendingEvicts))
		for i := range b.pendingEvicts {
			b.pendingIdx[b.pendingEvicts[i].Addr] = i
		}
	}
	if i, ok := b.pendingIdx[a]; ok {
		return i
	}
	return -1
}

// UpdatePendingEvict applies mutate to the pending victim at a, if one
// exists, returning its updated content. It lets eviction policies fold
// child HMACs into parents that are themselves awaiting persistence.
func (b *Base) UpdatePendingEvict(a mem.Addr, mutate func(*mem.Line)) (mem.Line, bool) {
	if i := b.findPendingEvict(a); i >= 0 {
		mutate(&b.pendingEvicts[i].Line)
		return b.pendingEvicts[i].Line, true
	}
	return mem.Line{}, false
}

// StatsRef exposes the mutable statistics to designs in this module.
func (b *Base) StatsRef() *SecStats { return &b.stats }

// Stats returns a copy of the accumulated statistics, folding in the
// crypto engine's memo-table counters.
func (b *Base) Stats() SecStats {
	s := b.stats
	cs := b.Cry.CacheStats()
	s.PadCacheHits, s.PadCacheMisses = cs.PadHits, cs.PadMisses
	s.DataMemoHits, s.DataMemoMisses = cs.DataHits, cs.DataMisses
	s.NodeMemoHits, s.NodeMemoMisses = cs.NodeHits, cs.NodeMisses
	return s
}

// HMACOp schedules a chain of n dependent HMAC computations and
// returns the completion cycle. The unit is modelled as fully
// pipelined: independent chains overlap freely, but within a chain each
// HMAC waits for its predecessor, so a Merkle path update still pays
// the full n x 80-cycle latency — the serialization the paper's §2.3
// calls out. Cross-operation issue contention is neglected (measured
// unit utilization stays in the low single digits for every workload).
func (b *Base) HMACOp(now int64, n int) int64 {
	if n <= 0 {
		return now
	}
	b.stats.HMACOps += uint64(n)
	return now + int64(n)*b.P.HMACCycles
}

// AESOp schedules one pad generation on the AES unit; like the HMAC
// unit it is fully pipelined, so only latency is charged.
func (b *Base) AESOp(now int64) int64 {
	b.stats.AESOps++
	return now + b.P.AESCycles
}

// AcquireWBSlot obtains a writeback-buffer slot, blocking (in simulated
// time) while the buffer is full. It returns the slot index and the
// acceptance cycle; the caller releases the slot by setting its busy
// horizon with ReleaseWBSlot once background processing completes.
func (b *Base) AcquireWBSlot(now int64) (int, int64) {
	best, bestT := 0, b.wbSlots[0]
	for i, t := range b.wbSlots {
		if t < bestT {
			best, bestT = i, t
		}
	}
	if bestT > now {
		b.stats.WritebackBufferStalls++
		b.stats.WritebackStallCycles += bestT - now
		now = bestT
	}
	return best, now
}

// ReleaseWBSlot marks slot busy until done.
func (b *Base) ReleaseWBSlot(slot int, done int64) { b.wbSlots[slot] = done }

// defLineSlots bounds the default-HMAC-line memo (power of two;
// 1024 x ~80 B = ~80 KB).
const defLineSlots = 1024

// defLineSlot memoizes one synthesized default data-HMAC line.
type defLineSlot struct {
	ha   mem.Addr
	live bool
	line mem.Line
}

// DefaultHMACLine synthesizes the content of a never-written data-HMAC
// line: each slot holds the HMAC of a zero ciphertext with counter 0 at
// the slot's data address, which is exactly what verification of a
// never-written block expects. The content is a pure function of the
// keys and ha, so it is served from a bounded direct-mapped memo —
// sparse-image read paths otherwise recompute four SHA-1 HMACs per
// never-written line touched.
func (b *Base) DefaultHMACLine(ha mem.Addr) mem.Line {
	var slot *defLineSlot
	if b.defLines != nil {
		slot = &b.defLines[mem.Mix64(uint64(ha))&(defLineSlots-1)]
		if slot.live && slot.ha == ha {
			b.stats.DefaultLineHits++
			return slot.line
		}
		b.stats.DefaultLineMisses++
	}
	var l mem.Line
	lineIdx := uint64(ha-b.Lay.HMACBase) / mem.LineSize
	for s := 0; s < mem.HMACsPerLine; s++ {
		dataAddr := mem.Addr((lineIdx*mem.HMACsPerLine + uint64(s)) * mem.LineSize)
		seccrypto.PutHMAC(&l, s, b.Cry.DataHMAC(dataAddr, 0, mem.Line{}))
	}
	if slot != nil {
		slot.ha, slot.line, slot.live = ha, l, true
	}
	return l
}

// ReadHMACLine fetches the data-HMAC line covering addr, substituting
// the synthesized default when never written. The core-facing read path
// uses it; bank contention applies.
func (b *Base) ReadHMACLine(now int64, addr mem.Addr) (mem.Line, int, int64) {
	ha, slot := b.Lay.HMACLineOf(addr)
	l, ok, t := b.Ctrl.Read(now, ha)
	if !ok {
		l = b.DefaultHMACLine(ha)
	}
	return l, slot, t
}

// readHMACLineBypass is ReadHMACLine for pipeline-internal callers (the
// write path's read-modify-write and page re-encryption), which run at
// future timestamps and must not reserve bank slots there.
func (b *Base) readHMACLineBypass(now int64, addr mem.Addr) (mem.Line, int, int64) {
	ha, slot := b.Lay.HMACLineOf(addr)
	l, ok, t := b.Ctrl.ReadBypass(now, ha)
	if !ok {
		l = b.DefaultHMACLine(ha)
	}
	return l, slot, t
}

// onChip returns metadata content that has left the metadata cache but
// is still on chip: a displaced victim awaiting its design's eviction
// policy, or a line in the design's stash. Such content is trusted (it
// never left the TCB) and must shadow the NVM copy.
func (b *Base) onChip(a mem.Addr) (mem.Line, bool) {
	if i := b.findPendingEvict(a); i >= 0 {
		return b.pendingEvicts[i].Line, true
	}
	if b.StashLookup != nil {
		return b.StashLookup(a)
	}
	return mem.Line{}, false
}

// metaNodeAddr returns the NVM address of tree position (level, idx),
// where level 0 is the counter level.
func (b *Base) metaNodeAddr(level int, idx uint64) mem.Addr {
	if level == 0 {
		return b.Lay.CounterLineAddr(idx)
	}
	return b.Lay.NodeAddr(level, idx)
}

// slotInParent returns the slot the node at (level, idx) occupies in its
// parent (the TCB root node for top-level nodes).
func (b *Base) slotInParent(level int, idx uint64) int {
	if level == b.Lay.TopLevel() {
		return int(idx)
	}
	_, _, s := b.Lay.ParentOf(level, idx)
	return s
}

// FetchChain brings the metadata node at (level, idx) into the meta
// cache: it reads the node and every uncached ancestor from NVM in
// parallel, verifies the chain top-down against the first trusted
// on-chip ancestor (a cached node, or the ROOTold register), fills the
// nodes clean, and returns the node's content and availability cycle.
// A verification failure counts as a runtime integrity violation.
//
// The caller must already have missed in the meta cache for (level,
// idx); the meta-cache access cost is charged here.
func (b *Base) FetchChain(now int64, level int, idx uint64) (mem.Line, int64) {
	// Victim forwarding: content still on chip shadows NVM and needs no
	// verification.
	reqAddr := b.metaNodeAddr(level, idx)
	if ln, ok := b.onChip(reqAddr); ok {
		b.Meta.Fill(reqAddr, ln)
		return ln, now + b.P.MetaCycles
	}
	type link struct {
		level int
		idx   uint64
		addr  mem.Addr
		line  mem.Line
	}
	chain := []link{{level, idx, reqAddr, mem.Line{}}}
	var anchor *mem.Line
	l, i := level, idx
	for l < b.Lay.TopLevel() {
		pl, pi, _ := b.Lay.ParentOf(l, i)
		pa := b.Lay.NodeAddr(pl, pi)
		if b.Meta.Contains(pa) {
			break
		}
		if ln, ok := b.onChip(pa); ok {
			// An in-flight victim is as trusted as a cached line and
			// terminates the walk.
			anchor = &ln
			break
		}
		chain = append(chain, link{pl, pi, pa, mem.Line{}})
		l, i = pl, pi
	}
	// Parallel NVM reads after the meta-cache miss is known.
	issue := now + b.P.MetaCycles
	maxT := issue
	for k := range chain {
		ln, ok, t := b.Ctrl.ReadBypass(issue, chain[k].addr)
		if !ok {
			ln = b.Tree.DefaultNode(chain[k].level)
		}
		chain[k].line = ln
		if t > maxT {
			maxT = t
		}
	}
	done := b.HMACOp(maxT, len(chain))
	if b.VerifyFetchedMeta {
		// Trusted anchor: the forwarded victim, the cached parent of the
		// chain's top, or ROOTold.
		top := chain[len(chain)-1]
		var parent mem.Line
		switch {
		case anchor != nil:
			parent = *anchor
		case top.level == b.Lay.TopLevel():
			parent = b.TCB.RootOld
		default:
			pl, pi, _ := b.Lay.ParentOf(top.level, top.idx)
			pc, ok := b.Meta.Peek(b.Lay.NodeAddr(pl, pi))
			if !ok {
				panic("engine: chain anchor vanished from meta cache")
			}
			parent = pc
		}
		for k := len(chain) - 1; k >= 0; k-- {
			if !b.Tree.VerifyChild(parent, b.slotInParent(chain[k].level, chain[k].idx), chain[k].line) {
				b.stats.IntegrityViolations++
				if b.OnViolation != nil {
					b.OnViolation("chain", chain[k].addr, chain[k].level)
				}
			}
			parent = chain[k].line
		}
	}
	// Install top-down so the requested node ends most recently used.
	for k := len(chain) - 1; k >= 0; k-- {
		b.Meta.Fill(chain[k].addr, chain[k].line)
	}
	return chain[0].line, done
}

// CounterLine returns the decoded counter line at ca and the cycle it
// becomes available, going through the meta cache and fetching (with
// verification) on a miss.
func (b *Base) CounterLine(now int64, ca mem.Addr) (seccrypto.CounterLine, int64) {
	if l, ok := b.Meta.Read(ca); ok {
		return seccrypto.DecodeCounterLine(l), now + b.P.MetaCycles
	}
	l, t := b.FetchChain(now, 0, b.Lay.CounterLineIndex(ca))
	return seccrypto.DecodeCounterLine(l), t
}

// ReadBlock is the shared read path: fetch ciphertext and data HMAC from
// NVM, obtain the counter, overlap pad generation with the data read,
// decrypt and authenticate. Designs reuse it directly; Osiris wraps it
// with online counter recovery.
func (b *Base) ReadBlock(now int64, addr mem.Addr) (mem.Line, int64) {
	pt, done, _ := b.readBlockChecked(now, addr)
	return pt, done
}

// readBlockChecked is ReadBlock plus an authentication verdict, letting
// Osiris distinguish "stale counter" from "attack".
func (b *Base) readBlockChecked(now int64, addr mem.Addr) (mem.Line, int64, bool) {
	addr = mem.Align(addr)
	b.stats.Reads++
	ct, _, tData := b.Ctrl.Read(now, addr)
	hline, hslot, tH := b.ReadHMACLine(now, addr)
	ca := b.Lay.CounterLineOf(addr)
	cl, tCtr := b.counterFn(now, ca)
	slot := b.Lay.CounterSlotOf(addr)
	ctr := cl.Counter(slot)

	stored := seccrypto.GetHMAC(hline, hslot)
	okAuth := b.Cry.DataHMAC(addr, ctr, ct) == stored

	tOTP := b.AESOp(tCtr)
	tVer := b.HMACOp(max(max(tData, tCtr), tH), 1)
	done := max(max(tData, tOTP), tVer)
	pt := b.Cry.Decrypt(addr, ctr, ct)
	if !okAuth {
		b.stats.IntegrityViolations++
		if b.OnViolation != nil {
			b.OnViolation("data-hmac", addr, -1)
		}
	}
	return pt, done, okAuth
}

// WriteDataBlock encrypts pt under ctr, computes its data HMAC and
// issues the two NVM writes (data line and read-modify-written HMAC
// line). ctrAvail is when the counter became available; the returned
// cycle is when both writes were accepted by the WPQ.
func (b *Base) WriteDataBlock(now, ctrAvail int64, addr mem.Addr, pt mem.Line, ctr uint64) int64 {
	addr = mem.Align(addr)
	ct := b.Cry.Encrypt(addr, ctr, pt)
	tEnc := b.AESOp(ctrAvail)
	hline, hslot, tH := b.readHMACLineBypass(now, addr)
	seccrypto.PutHMAC(&hline, hslot, b.Cry.DataHMAC(addr, ctr, ct))
	tMac := b.HMACOp(max(tEnc, tH), 1)
	ha, _ := b.Lay.HMACLineOf(addr)
	t1 := b.Ctrl.Write(tMac, addr, ct)
	t2 := b.Ctrl.Write(tMac, ha, hline)
	return max(t1, t2)
}

// BumpResult reports a counter bump.
type BumpResult struct {
	Line      seccrypto.CounterLine // post-bump content
	Slot      int
	Counter   uint64 // post-bump effective counter for the slot
	Avail     int64  // cycle the bumped counter is available
	Overflow  bool   // minor overflow occurred (page re-encrypted)
	UpdateCnt uint64 // updates since the line became dirty
}

// BumpCounter advances the counter of data block addr in the meta
// cache, handling minor-counter overflow by re-encrypting the page.
// The caller persists the line according to its own policy.
func (b *Base) BumpCounter(now int64, addr mem.Addr) BumpResult {
	ca := b.Lay.CounterLineOf(addr)
	cl, avail := b.counterFn(now, ca)
	slot := b.Lay.CounterSlotOf(addr)
	old := cl
	overflow := cl.Bump(slot)
	if overflow {
		b.stats.CounterOverflows++
		avail = b.ReencryptPage(avail, addr, old, cl)
	}
	cnt := b.Meta.Update(ca, cl.Encode())
	return BumpResult{Line: cl, Slot: slot, Counter: cl.Counter(slot), Avail: avail, Overflow: overflow, UpdateCnt: cnt}
}

// ReencryptPage rewrites every block of the 4 KB page containing addr
// under the new (post-overflow) counters: old ciphertexts are decrypted
// with the old counters and re-encrypted with the new ones, and all data
// HMACs are refreshed. Writes are durable immediately. It returns the
// cycle the re-encryption finished issuing.
func (b *Base) ReencryptPage(now int64, addr mem.Addr, old, new seccrypto.CounterLine) int64 {
	pageBase := mem.Addr(uint64(addr) / mem.PageSize * mem.PageSize)
	// Gather and rewrite the page's HMAC lines once each.
	hmacLines := map[mem.Addr]mem.Line{}
	t := now
	for s := 0; s < mem.BlocksPerPage; s++ {
		da := pageBase + mem.Addr(s*mem.LineSize)
		ct, _, tr := b.Ctrl.ReadBypass(t, da)
		pt := b.Cry.Decrypt(da, old.Counter(s), ct)
		nct := b.Cry.Encrypt(da, new.Counter(s), pt)
		ha, hslot := b.Lay.HMACLineOf(da)
		hl, ok := hmacLines[ha]
		if !ok {
			raw, present, _ := b.Ctrl.ReadBypass(t, ha)
			if !present {
				raw = b.DefaultHMACLine(ha)
			}
			hl = raw
		}
		seccrypto.PutHMAC(&hl, hslot, b.Cry.DataHMAC(da, new.Counter(s), nct))
		hmacLines[ha] = hl
		tw := b.Ctrl.Write(tr, da, nct)
		if tw > t {
			t = tw
		}
	}
	// Two pad generations (decrypt + encrypt) per block on the AES unit
	// and one HMAC per block; the pads pipeline but the page rewrite is
	// one serial pass, so charge the AES latency once plus the HMACs.
	b.stats.AESOps += uint64(2 * mem.BlocksPerPage)
	t += b.P.AESCycles
	t = b.HMACOp(t, mem.BlocksPerPage)
	for ha, hl := range hmacLines {
		tw := b.Ctrl.Write(t, ha, hl)
		if tw > t {
			t = tw
		}
	}
	return t
}

// UpdatePathInCache recomputes the Merkle path of the counter line at
// leafIdx from the bottom up inside the meta cache, fetching any
// uncached ancestors, and finally updates the TCB ROOTnew register.
// This is the cascading per-write-back update that SC, Osiris Plus and
// cc-NVM w/o DS pay on every eviction; cc-NVM with deferred spreading
// skips it entirely and recomputes paths once per drain instead.
// It returns the completion cycle and the number of levels recomputed
// (internal nodes plus the root).
func (b *Base) UpdatePathInCache(now int64, leafIdx uint64) (int64, int) {
	child, ok := b.Meta.Peek(b.Lay.CounterLineAddr(leafIdx))
	if !ok {
		panic("engine: path update requires the counter line to be resident")
	}
	level, idx := 0, leafIdx
	t := now
	levels := 0
	for level < b.Lay.TopLevel() {
		pl, pi, slot := b.Lay.ParentOf(level, idx)
		pa := b.Lay.NodeAddr(pl, pi)
		node, resident := b.Meta.Peek(pa)
		if !resident {
			node, t = b.FetchChain(t, pl, pi)
		}
		b.Tree.SetParentSlot(&node, slot, child)
		t = b.HMACOp(t, 1)
		b.Meta.Update(pa, node)
		levels++
		child = node
		level, idx = pl, pi
	}
	// Update ROOTnew with the new top-level node.
	b.Tree.SetParentSlot(&b.TCB.RootNew, int(idx), child)
	t = b.HMACOp(t, 1)
	levels++
	return t, levels
}

// ApplyCrashVolatility models the on-chip losses common to all designs:
// the metadata cache and in-flight writeback buffer vanish, and the
// memory controller applies ADR semantics.
func (b *Base) ApplyCrashVolatility() {
	b.Meta.Lose()
	b.pendingEvicts = nil
	b.pendingIdx = nil
	b.Ctrl.Crash()
	for i := range b.wbSlots {
		b.wbSlots[i] = 0
	}
	b.hmacFree, b.aesFree = 0, 0
}

// RestoreTCB installs recovered TCB register state, as a reboot after
// successful recovery would. Exposed on Base so reboot harnesses work
// uniformly across designs without knowing the concrete engine type.
// A recovered TCB carries no extension registers (recovery commits the
// replay window, which resets them); on an extended design they must
// come back as an empty map, not nil, so post-reboot write-backs can
// record into them.
func (b *Base) RestoreTCB(t TCB) {
	if t.ExtDirty == nil && b.TCB.ExtDirty != nil {
		t.ExtDirty = make(map[mem.Addr]uint64)
	}
	b.TCB = t
}

// NVMSnapshot captures the current NVM contents non-destructively: the
// adversary's view of the DIMM at this instant. Unlike Crash it leaves
// the engine fully operational.
func (b *Base) NVMSnapshot() *nvm.Image { return b.Ctrl.Device().Snapshot() }

// MakeCrashImage captures the persistent state. When the device ran
// under a fault model, the image also carries the controller's suspects
// manifest and the harness-only fault log produced by the crash.
func (b *Base) MakeCrashImage(design string) *CrashImage {
	img := &CrashImage{
		Image:       b.Ctrl.Device().Snapshot(),
		TCB:         b.TCB.CloneExt(),
		Keys:        b.Keys,
		UpdateLimit: b.P.UpdateLimit,
		Workers:     b.P.Workers,
		Design:      design,
	}
	if b.Ctrl.Device().FaultModel() != nil {
		img.MediaFaults = true
		if log := b.Ctrl.TakeFaultLog(); log != nil {
			img.Suspects = log.Suspects
			img.MediaLog = log
		}
	}
	return img
}
