package engine_test

import (
	"testing"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
)

// rigDev builds one engine by name and also returns its NVM device, for
// tests that assert per-region write counts.
func rigDev(t testing.TB, design string, p engine.Params) (engine.Engine, *nvm.Device) {
	t.Helper()
	lay := mem.MustLayout(capacity)
	dev := nvm.NewDevice(lay, nvm.PCMTiming(3))
	return engineOn(t, design, dev, p), dev
}

// engineOn builds an engine over an existing device (fresh or restored
// from a crash image).
func engineOn(t testing.TB, name string, dev *nvm.Device, p engine.Params) engine.Engine {
	t.Helper()
	ctrl := memctrl.New(memctrl.Config{}, dev)
	keys := seccrypto.DefaultKeys()
	lay := dev.Layout()
	d, ok := design.Lookup(name)
	if !ok {
		t.Fatalf("unknown design %q", name)
	}
	return d.New(lay, keys, ctrl, metacache.Config{}, p)
}

// reboot restores the (recovered) crash image onto a fresh device,
// builds the same design over it, and installs the recovered TCB — the
// power-on sequence after recovery.Apply.
func reboot(t testing.TB, design string, img *engine.CrashImage, rec recovery.Recovered, p engine.Params) engine.Engine {
	t.Helper()
	dev := nvm.NewDevice(img.Image.Layout, nvm.PCMTiming(3))
	dev.Restore(img.Image)
	e := engineOn(t, design, dev, p)
	e.(interface{ RestoreTCB(engine.TCB) }).RestoreTCB(rec.TCB)
	return e
}

// TestOsirisWriteBackCounts pins Osiris's write economics: every
// write-back costs a data and an HMAC line, the counter line reaches NVM
// only every N-th update (the stop-loss), and the Merkle tree is never
// persisted.
func TestOsirisWriteBackCounts(t *testing.T) {
	const n, k = 4, 10
	e, dev := rigDev(t, "osiris", engine.Params{UpdateLimit: n})
	now := int64(0)
	for i := 0; i < k; i++ {
		now = e.WriteBack(now, 0x2000, pattern(0x2000, byte(i))) + 50
	}
	w := dev.Writes()
	if w.Data != k || w.HMAC != k {
		t.Fatalf("data/HMAC writes = %d/%d, want %d each (%s)", w.Data, w.HMAC, k, w)
	}
	if want := uint64(k / n); w.Counter != want {
		t.Fatalf("counter writes = %d, want %d (stop-loss every %d updates; %s)", w.Counter, want, n, w)
	}
	if w.Tree != 0 {
		t.Fatalf("osiris persisted %d tree nodes; the tree must stay volatile (%s)", w.Tree, w)
	}
}

// TestOsirisCrashRecoverRoundTrip crashes Osiris with counters lagging
// (under the stop-loss), recovers them by online retries, applies the
// result, and reads the data back on a rebooted engine.
func TestOsirisCrashRecoverRoundTrip(t *testing.T) {
	const n = 8
	e, _ := rigDev(t, "osiris", engine.Params{UpdateLimit: n})
	addrs := []mem.Addr{0x2000, 0x2040, 0x2000, 0x9000, 0x2000}
	now := int64(0)
	for i, a := range addrs {
		now = e.WriteBack(now, a, pattern(a, byte(i))) + 50
	}
	// The snapshot hook must be non-destructive: reads still verify.
	_ = e.(interface{ NVMSnapshot() *nvm.Image }).NVMSnapshot()
	if pt, _ := e.ReadBlock(now, 0x9000); pt != pattern(0x9000, 3) {
		t.Fatal("read after NVMSnapshot returned wrong plaintext")
	}

	img := e.Crash()
	rep := recovery.Recover(img)
	if !rep.Clean() {
		t.Fatalf("clean osiris crash flagged: %+v", rep)
	}
	if rep.Nretry == 0 || rep.RecoveredBlocks == 0 {
		t.Fatalf("lagging counters needed no retries (Nretry=%d blocks=%d); stop-loss test is vacuous", rep.Nretry, rep.RecoveredBlocks)
	}
	if rep.Nretry > uint64(len(addrs)) {
		t.Fatalf("Nretry=%d exceeds total updates %d; stop-loss bound broken", rep.Nretry, len(addrs))
	}
	rec := recovery.Apply(img, rep)

	e2 := reboot(t, "osiris", img, rec, engine.Params{UpdateLimit: n})
	for a, v := range map[mem.Addr]byte{0x2000: 4, 0x2040: 1, 0x9000: 3} {
		pt, _ := e2.ReadBlock(now, a)
		if pt != pattern(a, v) {
			t.Fatalf("rebooted read of %#x returned wrong plaintext", uint64(a))
		}
	}
	if v := e2.Stats().IntegrityViolations; v != 0 {
		t.Fatalf("%d integrity violations on the rebooted engine", v)
	}
}
