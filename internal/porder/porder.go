// Package porder turns the memory controller's persistence event
// stream into a persist-ordering graph and enumerates crash points that
// cut distinct ordering edges, in the spirit of WITCHER's output-driven
// crash-state reduction: two crash points that cut the same set of
// happens-before edges land in equivalent crash states, so a torture
// budget is better spent covering one point per distinct edge cut than
// sampling the trace uniformly.
//
// The graph's vertices are the tap events (memctrl.SetEventTap), each
// tagged with the index of the trace operation during which it fired.
// Edges are the durability orderings the ADR/atomic-draining contract
// promises; a crash point "cuts" an edge when its source transition has
// happened but its sink has not, which is exactly the window in which
// an implementation bug reordering the two becomes observable.
package porder

import (
	"fmt"

	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
)

// Event is one controller persistence event, tagged with the trace
// operation during which it fired. Op uses the torture harness's crash
// semantics: CrashAt=k means operations [0,k) executed, so an event
// with Op=i has happened at crash point k iff i < k.
type Event struct {
	Kind memctrl.EventKind
	Addr mem.Addr
	Op   int
}

// Recorder observes one engine run through the controller's event tap
// and tags every event with the current trace operation.
type Recorder struct {
	events []Event
	op     int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// TapTarget is anything carrying the controller's observational event
// tap — the controller itself, or the storage-engine facade fronting
// it.
type TapTarget interface {
	SetEventTap(func(memctrl.Event))
}

// Attach installs the recorder as the target's event tap.
func (r *Recorder) Attach(t TapTarget) {
	t.SetEventTap(func(ev memctrl.Event) {
		r.events = append(r.events, Event{Kind: ev.Kind, Addr: ev.Addr, Op: r.op})
	})
}

// BeginOp tags subsequent events with trace operation i.
func (r *Recorder) BeginOp(i int) { r.op = i }

// Events returns the recorded stream.
func (r *Recorder) Events() []Event { return r.events }

// EdgeKind classifies a happens-before edge.
type EdgeKind uint8

const (
	// EdgeLine orders two successive durable versions of one line: the
	// older version must be on media before the newer replaces it.
	EdgeLine EdgeKind = iota
	// EdgeEpoch orders a durable non-epoch (ADR) write before the next
	// epoch commit: the commit publishes metadata that assumes the
	// write already persisted, which is the ordering cc-NVM's
	// write-data-then-drain protocol depends on.
	EdgeEpoch
	// EdgeHold orders a held epoch entry before its closing commit: the
	// entry must not be durable until the end signal.
	EdgeHold
	// EdgeCommitChain orders consecutive epoch commits.
	EdgeCommitChain
)

// String names the edge kind for diagnostics and golden files.
func (k EdgeKind) String() string {
	switch k {
	case EdgeLine:
		return "line"
	case EdgeEpoch:
		return "epoch"
	case EdgeHold:
		return "hold"
	case EdgeCommitChain:
		return "commit-chain"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// Edge is one happens-before constraint between two events (indices
// into Graph.Events): From's durability transition precedes To's.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Graph is the persist-ordering graph of one recorded run.
type Graph struct {
	Events []Event
	Edges  []Edge
}

// Build derives the happens-before edges from an event stream in one
// O(n) pass (amortized over lines and epochs):
//
//   - EdgeLine: each durable event (write-accept or adr-flush) on a
//     line is ordered after the previous durable event on that line.
//   - EdgeEpoch: every write-accept since the last commit is ordered
//     before the next epoch-commit.
//   - EdgeHold: every epoch-hold of a window is ordered before the
//     commit that closes it.
//   - EdgeCommitChain: each epoch-commit is ordered after the previous
//     one.
//
// ADR flushes are the post-commit servicing of held entries; their
// durability point is the commit itself, so they join the line-version
// chains but do not open new epoch edges.
func Build(events []Event) *Graph {
	g := &Graph{Events: events}
	lastLine := map[mem.Addr]int{} // last durable event per line
	var sinceCommit []int          // durable accepts since the last commit
	var holds []int                // held entries of the open window
	lastCommit := -1
	for i, ev := range events {
		switch ev.Kind {
		case memctrl.EvWriteAccept:
			if j, ok := lastLine[ev.Addr]; ok {
				g.Edges = append(g.Edges, Edge{j, i, EdgeLine})
			}
			lastLine[ev.Addr] = i
			sinceCommit = append(sinceCommit, i)
		case memctrl.EvEpochHold:
			holds = append(holds, i)
		case memctrl.EvEpochCommit:
			for _, w := range sinceCommit {
				g.Edges = append(g.Edges, Edge{w, i, EdgeEpoch})
			}
			sinceCommit = sinceCommit[:0]
			for _, h := range holds {
				g.Edges = append(g.Edges, Edge{h, i, EdgeHold})
			}
			holds = holds[:0]
			if lastCommit >= 0 {
				g.Edges = append(g.Edges, Edge{lastCommit, i, EdgeCommitChain})
			}
			lastCommit = i
		case memctrl.EvADRFlush:
			if j, ok := lastLine[ev.Addr]; ok {
				g.Edges = append(g.Edges, Edge{j, i, EdgeLine})
			}
			lastLine[ev.Addr] = i
		}
	}
	return g
}

// Cuts reports whether crash point k (operations [0,k) executed)
// separates edge e: the source transition has happened, the sink has
// not.
func (g *Graph) Cuts(e Edge, k int) bool {
	return g.Events[e.From].Op < k && k <= g.Events[e.To].Op
}

// Cuttable reports whether any op-granular crash point separates e.
// Edges whose endpoints fire inside one trace operation (e.g. a data
// write and the drain the same WriteBack triggers) are invisible to the
// harness, whose crash points land between operations.
func (g *Graph) Cuttable(e Edge) bool {
	return g.Events[e.From].Op < g.Events[e.To].Op
}

// CuttableCount counts the edges some crash point can cut.
func (g *Graph) CuttableCount() int {
	n := 0
	for _, e := range g.Edges {
		if g.Cuttable(e) {
			n++
		}
	}
	return n
}

// CutSet returns the distinct cuttable-edge indices cut by the points.
func (g *Graph) CutSet(points []int) map[int]bool {
	cut := map[int]bool{}
	for ei, e := range g.Edges {
		for _, k := range points {
			if g.Cuts(e, k) {
				cut[ei] = true
				break
			}
		}
	}
	return cut
}

// EnumeratePoints selects up to budget crash points in [1, maxOp] by
// greedy set cover over the cuttable edges: each pick is the point
// cutting the most not-yet-cut edges (ties to the smallest point), and
// selection stops early once no candidate cuts a new edge — guided
// sweeps never spend cells on crash states equivalent to ones already
// scheduled. Deterministic for a given graph.
func (g *Graph) EnumeratePoints(budget, maxOp int) []int {
	if budget <= 0 || maxOp < 1 {
		return nil
	}
	// Candidate points: a cut set only changes where some edge starts
	// (From.Op+1) or stops (To.Op+1) being cut, so one candidate per
	// region boundary reaches every achievable cut set.
	seen := map[int]bool{}
	var cands []int
	addCand := func(k int) {
		if k >= 1 && k <= maxOp && !seen[k] {
			seen[k] = true
			cands = append(cands, k)
		}
	}
	cutBy := map[int][]int{} // candidate point -> cuttable edge indices
	var cuttable []int
	for ei, e := range g.Edges {
		if g.Cuttable(e) {
			cuttable = append(cuttable, ei)
			addCand(g.Events[e.From].Op + 1)
			addCand(g.Events[e.To].Op)
		}
	}
	if len(cuttable) == 0 {
		return nil
	}
	for _, k := range cands {
		for _, ei := range cuttable {
			if g.Cuts(g.Edges[ei], k) {
				cutBy[k] = append(cutBy[k], ei)
			}
		}
	}
	covered := map[int]bool{}
	var points []int
	for len(points) < budget {
		best, bestGain := 0, 0
		for _, k := range cands {
			gain := 0
			for _, ei := range cutBy[k] {
				if !covered[ei] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && k < best) {
				best, bestGain = k, gain
			}
		}
		if bestGain == 0 {
			break
		}
		points = append(points, best)
		for _, ei := range cutBy[best] {
			covered[ei] = true
		}
	}
	sortInts(points)
	return points
}

// EvenPoints returns n evenly spaced crash points over an ops-long
// trace — the random matrix's historical placement ((i+1)*ops/(n+1)) —
// for like-for-like coverage comparisons against guided enumeration.
func EvenPoints(n, ops int) []int {
	var pts []int
	for i := 0; i < n; i++ {
		k := (i + 1) * ops / (n + 1)
		if k < 1 {
			k = 1
		}
		if len(pts) == 0 || pts[len(pts)-1] != k {
			pts = append(pts, k)
		}
	}
	return pts
}

// sortInts is a tiny insertion sort; point lists are a handful long.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
