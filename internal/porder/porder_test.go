package porder

import (
	"reflect"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
)

// ev builds one tagged event; addresses are line numbers for brevity.
func ev(k memctrl.EventKind, lineNo, op int) Event {
	return Event{Kind: k, Addr: mem.Addr(lineNo) * mem.LineSize, Op: op}
}

// TestBuildLineChains: successive durable versions of one line chain up,
// across both ADR accepts and post-commit flushes; distinct lines do not
// interfere.
func TestBuildLineChains(t *testing.T) {
	g := Build([]Event{
		ev(memctrl.EvWriteAccept, 1, 0),
		ev(memctrl.EvWriteAccept, 2, 1),
		ev(memctrl.EvWriteAccept, 1, 2),
		ev(memctrl.EvWriteAccept, 1, 3),
	})
	want := []Edge{
		{0, 2, EdgeLine},
		{2, 3, EdgeLine},
	}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
}

// TestBuildEpochWindow pins the edge set of one full draining window:
// every pre-commit ADR write gets an epoch edge to the commit, every
// held entry a hold edge, and the flushes join the line chains without
// opening epoch edges of their own.
func TestBuildEpochWindow(t *testing.T) {
	g := Build([]Event{
		ev(memctrl.EvWriteAccept, 1, 0), // 0: data write the epoch publishes
		ev(memctrl.EvEpochBegin, 0, 1),  // 1
		ev(memctrl.EvEpochHold, 8, 1),   // 2: metadata held in the window
		ev(memctrl.EvEpochHold, 9, 1),   // 3
		ev(memctrl.EvEpochCommit, 0, 1), // 4: the atomic commit point
		ev(memctrl.EvADRFlush, 8, 1),    // 5: post-commit servicing
		ev(memctrl.EvADRFlush, 9, 1),    // 6
		ev(memctrl.EvWriteAccept, 8, 2), // 7: later ADR write to a flushed line
	})
	want := []Edge{
		{0, 4, EdgeEpoch},
		{2, 4, EdgeHold},
		{3, 4, EdgeHold},
		{5, 7, EdgeLine},
	}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
}

// TestBuildCommitChain: consecutive commits are ordered, and epoch
// edges reset at each commit (a write belongs to the next commit only).
func TestBuildCommitChain(t *testing.T) {
	g := Build([]Event{
		ev(memctrl.EvWriteAccept, 1, 0), // 0
		ev(memctrl.EvEpochBegin, 0, 1),  // 1
		ev(memctrl.EvEpochCommit, 0, 1), // 2
		ev(memctrl.EvWriteAccept, 2, 2), // 3
		ev(memctrl.EvEpochBegin, 0, 3),  // 4
		ev(memctrl.EvEpochCommit, 0, 3), // 5
	})
	want := []Edge{
		{0, 2, EdgeEpoch},
		{3, 5, EdgeEpoch},
		{2, 5, EdgeCommitChain},
	}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
}

// TestBuildHeldOrdering: a flush joining the chain of a line written
// before the window, and a hold edge over multiple ops, keep their
// op tags so the cut windows are correct.
func TestBuildHeldOrdering(t *testing.T) {
	g := Build([]Event{
		ev(memctrl.EvWriteAccept, 5, 0), // 0
		ev(memctrl.EvEpochBegin, 0, 2),  // 1
		ev(memctrl.EvEpochHold, 5, 2),   // 2
		ev(memctrl.EvEpochCommit, 0, 4), // 3
		ev(memctrl.EvADRFlush, 5, 4),    // 4
	})
	want := []Edge{
		{0, 3, EdgeEpoch},
		{2, 3, EdgeHold},
		{0, 4, EdgeLine},
	}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Fatalf("edges = %v, want %v", g.Edges, want)
	}
	// The hold edge spans ops (2,4]: crash points 3 and 4 cut it, 2 and
	// 5 do not.
	hold := g.Edges[1]
	for k, want := range map[int]bool{2: false, 3: true, 4: true, 5: false} {
		if got := g.Cuts(hold, k); got != want {
			t.Fatalf("Cuts(hold, %d) = %v, want %v", k, got, want)
		}
	}
}

// TestCuttable: an edge entirely inside one trace operation cannot be
// cut by any op-granular crash point.
func TestCuttable(t *testing.T) {
	g := Build([]Event{
		ev(memctrl.EvWriteAccept, 1, 3),
		ev(memctrl.EvWriteAccept, 1, 3), // same op: uncuttable line edge
		ev(memctrl.EvWriteAccept, 1, 7), // later op: cuttable
	})
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %v", g.Edges)
	}
	if g.Cuttable(g.Edges[0]) {
		t.Fatal("same-op edge must be uncuttable")
	}
	if !g.Cuttable(g.Edges[1]) {
		t.Fatal("cross-op edge must be cuttable")
	}
	if got := g.CuttableCount(); got != 1 {
		t.Fatalf("CuttableCount = %d, want 1", got)
	}
}

// TestEnumeratePoints: greedy selection covers every cuttable edge with
// the minimum obvious picks, stops early when nothing new can be cut,
// and is deterministic.
func TestEnumeratePoints(t *testing.T) {
	// Two disjoint windows: line 1 rewritten across ops 0->2, line 2
	// across ops 5->9. One point cannot cut both.
	g := Build([]Event{
		ev(memctrl.EvWriteAccept, 1, 0),
		ev(memctrl.EvWriteAccept, 1, 2),
		ev(memctrl.EvWriteAccept, 2, 5),
		ev(memctrl.EvWriteAccept, 2, 9),
	})
	pts := g.EnumeratePoints(8, 10)
	if want := []int{1, 6}; !reflect.DeepEqual(pts, want) {
		t.Fatalf("points = %v, want %v (one per window, smallest tie)", pts, want)
	}
	if cut := g.CutSet(pts); len(cut) != g.CuttableCount() {
		t.Fatalf("cut %d of %d cuttable edges", len(cut), g.CuttableCount())
	}
	// A budget of one picks a single point; either window, deterministic.
	if one := g.EnumeratePoints(1, 10); len(one) != 1 || one[0] != 1 {
		t.Fatalf("budget-1 points = %v, want [1]", one)
	}
	if empty := Build(nil).EnumeratePoints(4, 10); empty != nil {
		t.Fatalf("empty graph points = %v, want nil", empty)
	}
}

// TestEvenPoints pins the historical random placement.
func TestEvenPoints(t *testing.T) {
	if got, want := EvenPoints(3, 240), []int{60, 120, 180}; !reflect.DeepEqual(got, want) {
		t.Fatalf("EvenPoints(3,240) = %v, want %v", got, want)
	}
	if got, want := EvenPoints(4, 4), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("EvenPoints(4,4) = %v, want %v (deduped, floored at 1)", got, want)
	}
}
