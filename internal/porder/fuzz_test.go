package porder

import (
	"sort"
	"testing"

	"ccnvm/internal/mem"
	"ccnvm/internal/memctrl"
)

// decodeEvents turns fuzz bytes into an event stream: each 3-byte group
// is (kind, line, op-advance), so the fuzzer explores arbitrary kind
// interleavings, address collisions and op clustering.
func decodeEvents(data []byte) []Event {
	var evs []Event
	op := 0
	for i := 0; i+2 < len(data) && len(evs) < 1024; i += 3 {
		op += int(data[i+2] % 3)
		evs = append(evs, Event{
			Kind: memctrl.EventKind(data[i] % 5),
			Addr: mem.Addr(data[i+1]%32) * mem.LineSize,
			Op:   op,
		})
	}
	return evs
}

// referenceEdges is the O(n^2) specification Build is checked against:
// edge membership is decided per pair straight from the definitions,
// with no incremental state.
func referenceEdges(events []Event) []Edge {
	durable := func(k memctrl.EventKind) bool {
		return k == memctrl.EvWriteAccept || k == memctrl.EvADRFlush
	}
	var edges []Edge
	for i, u := range events {
		switch {
		case durable(u.Kind):
			// EdgeLine: the next durable event on the same line.
			for j := i + 1; j < len(events); j++ {
				v := events[j]
				if durable(v.Kind) && v.Addr == u.Addr {
					edges = append(edges, Edge{i, j, EdgeLine})
					break
				}
			}
		}
		switch u.Kind {
		case memctrl.EvWriteAccept, memctrl.EvEpochHold:
			// EdgeEpoch / EdgeHold: the first commit after the event.
			for j := i + 1; j < len(events); j++ {
				if events[j].Kind == memctrl.EvEpochCommit {
					k := EdgeEpoch
					if u.Kind == memctrl.EvEpochHold {
						k = EdgeHold
					}
					edges = append(edges, Edge{i, j, k})
					break
				}
			}
		case memctrl.EvEpochCommit:
			// EdgeCommitChain: the next commit.
			for j := i + 1; j < len(events); j++ {
				if events[j].Kind == memctrl.EvEpochCommit {
					edges = append(edges, Edge{i, j, EdgeCommitChain})
					break
				}
			}
		}
	}
	return edges
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Kind < b.Kind
	})
}

// FuzzPorderEvents feeds arbitrary event streams into the graph builder
// and the point enumerator: no panics, every edge well-formed and
// op-monotonic, the edge set identical to the O(n^2) reference, and a
// generous budget covering every cuttable edge.
func FuzzPorderEvents(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 1, 0, 0, 2, 1, 1, 3, 0, 1, 4, 1, 0, 0, 1, 2})
	f.Add([]byte{0, 5, 0, 0, 5, 1, 0, 5, 1, 3, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeEvents(data)
		g := Build(events)

		maxOp := 0
		for _, e := range g.Edges {
			if e.From < 0 || e.To >= len(events) || e.From >= e.To {
				t.Fatalf("malformed edge %+v over %d events", e, len(events))
			}
			if events[e.From].Op > events[e.To].Op {
				t.Fatalf("edge %+v runs backwards in op order", e)
			}
		}
		for _, ev := range events {
			if ev.Op > maxOp {
				maxOp = ev.Op
			}
		}

		got := append([]Edge(nil), g.Edges...)
		want := referenceEdges(events)
		sortEdges(got)
		sortEdges(want)
		if len(got) != len(want) {
			t.Fatalf("Build found %d edges, reference %d\n got: %v\nwant: %v", len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("edge %d: Build %+v, reference %+v", i, got[i], want[i])
			}
		}

		pts := g.EnumeratePoints(len(g.Edges)+1, maxOp+1)
		for _, k := range pts {
			if k < 1 || k > maxOp+1 {
				t.Fatalf("point %d outside [1,%d]", k, maxOp+1)
			}
		}
		if cut := g.CutSet(pts); len(cut) != g.CuttableCount() {
			t.Fatalf("unbounded budget cut %d of %d cuttable edges (points %v)",
				len(cut), g.CuttableCount(), pts)
		}
	})
}
