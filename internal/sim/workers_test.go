package sim

import (
	"reflect"
	"runtime"
	"testing"

	"ccnvm/internal/design"
	"ccnvm/internal/trace"
)

// TestWorkersBitIdenticalFig5 is the parallel pipeline's contract test:
// every registered design, driven through every Figure 5 benchmark,
// must produce a byte-identical Result with Workers=1 and Workers=N.
// The only schedule-dependent exemption is the crypto memo hit/miss
// counters — parallel workers answer from forked memo tables, so the
// same crypto work can hit or miss depending on which worker ran it
// (memoization never changes an answer, only whether it was cached).
// Everything timing- and correctness-bearing — cycles, IPC, NVM
// traffic, drains, violations, wear — must not move. Run under -race
// (the Makefile race target covers this package) it doubles as the
// data-race proof for the sharded verify/update/drain paths.
func TestWorkersBitIdenticalFig5(t *testing.T) {
	const ops = 6000
	workers := runtime.NumCPU()
	if workers < 4 {
		// A 1-CPU host would make Workers=NumCPU vacuously serial; force
		// real goroutine fan-out regardless of host size.
		workers = 4
	}
	for _, d := range design.Names() {
		for _, b := range trace.Benchmarks() {
			serial, err := RunBenchmark(d, b, ops, 1, Config{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunBenchmark(d, b, ops, 1, Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scrubMemo(serial), scrubMemo(par)) {
				t.Errorf("%s/%s: Workers=%d diverged from serial\nserial: %+v\nparallel: %+v",
					d, b, workers, scrubMemo(serial), scrubMemo(par))
			}
		}
	}
}

// scrubMemo zeroes the schedule-dependent memo counters (and nothing
// else) so the rest of the Result can be compared bit-for-bit.
func scrubMemo(r Result) Result {
	r.Sec.PadCacheHits, r.Sec.PadCacheMisses = 0, 0
	r.Sec.DataMemoHits, r.Sec.DataMemoMisses = 0, 0
	r.Sec.NodeMemoHits, r.Sec.NodeMemoMisses = 0, 0
	r.Sec.DefaultLineHits, r.Sec.DefaultLineMisses = 0, 0
	return r
}
