package sim

import (
	"encoding/json"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/store"
	"ccnvm/internal/trace"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if c.Design != "ccnvm" || c.Capacity != 16<<30 || c.L1Size != 32<<10 ||
		c.L2Size != 256<<10 || c.MSHRs != 8 || c.L2Lat != 20 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestUnknownDesignRejected(t *testing.T) {
	if _, err := New(Config{Design: "morphable"}); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestDesignLabels(t *testing.T) {
	want := map[string]string{
		"wocc": "w/o CC", "sc": "SC", "osiris": "Osiris Plus",
		"ccnvm-wods": "cc-NVM w/o DS", "ccnvm": "cc-NVM", "other": "other",
	}
	for d, l := range want {
		if got := DesignLabel(d); got != l {
			t.Errorf("label(%s) = %q, want %q", d, got, l)
		}
	}
}

// TestEndToEndShadowCheck is the whole-stack functional test: every
// value the core stores must read back identically through L1, L2,
// encryption, authentication and NVM — for every design.
func TestEndToEndShadowCheck(t *testing.T) {
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	ops := trace.Collect(trace.MustGenerator(p, 42), 40000)
	for _, d := range Designs() {
		t.Run(d, func(t *testing.T) {
			m, err := New(Config{Design: d, CheckReads: true})
			if err != nil {
				t.Fatal(err)
			}
			r := m.Run("gcc", ops)
			if m.Mismatches() != 0 {
				t.Fatalf("%d shadow mismatches: the crypto path corrupted data", m.Mismatches())
			}
			if r.Sec.IntegrityViolations != 0 {
				t.Fatalf("%d integrity violations on a clean run", r.Sec.IntegrityViolations)
			}
			if r.IPC <= 0 || r.IPC > 1 {
				t.Fatalf("implausible IPC %v", r.IPC)
			}
		})
	}
}

func TestIdenticalWorkloadAcrossDesigns(t *testing.T) {
	// All designs must see the same instruction count and the same LLC
	// write-back count: they simulate the same machine above the engine.
	p, _ := trace.ProfileByName("lbm")
	ops := trace.Collect(trace.MustGenerator(p, 1), 30000)
	var instr, wb uint64
	for i, d := range Designs() {
		m, err := New(Config{Design: d})
		if err != nil {
			t.Fatal(err)
		}
		r := m.Run("lbm", ops)
		if i == 0 {
			instr, wb = r.Instructions, r.Sec.Writebacks
			continue
		}
		if r.Instructions != instr {
			t.Fatalf("%s: instructions %d != %d", d, r.Instructions, instr)
		}
		if r.Sec.Writebacks != wb {
			t.Fatalf("%s: write-backs %d != %d", d, r.Sec.Writebacks, wb)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	p, _ := trace.ProfileByName("milc")
	ops := trace.Collect(trace.MustGenerator(p, 3), 20000)
	run := func() Result {
		m, _ := New(Config{Design: "ccnvm"})
		return m.Run("milc", ops)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.NVMWrites != b.NVMWrites || a.Sec.Drains != b.Sec.Drains {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestPaperOrderingHolds(t *testing.T) {
	// The paper's qualitative results on a write-heavy workload:
	// IPC: wocc > ccnvm > {osiris ~ sc ~ wods};
	// writes: sc >> ccnvm ~ wods > osiris >= wocc.
	p, _ := trace.ProfileByName("lbm")
	ops := trace.Collect(trace.MustGenerator(p, 1), 60000)
	res := map[string]Result{}
	for _, d := range Designs() {
		m, _ := New(Config{Design: d})
		res[d] = m.Run("lbm", ops)
	}
	ipc := func(d string) float64 { return res[d].IPC }
	wr := func(d string) uint64 { return res[d].NVMWrites.Total() }

	if !(ipc("wocc") > ipc("ccnvm") && ipc("ccnvm") > ipc("osiris")) {
		t.Errorf("IPC ordering broken: wocc=%.3f ccnvm=%.3f osiris=%.3f", ipc("wocc"), ipc("ccnvm"), ipc("osiris"))
	}
	if !(ipc("ccnvm") > ipc("ccnvm-wods")) {
		t.Errorf("deferred spreading did not help: ccnvm=%.3f wods=%.3f", ipc("ccnvm"), ipc("ccnvm-wods"))
	}
	if !(wr("sc") > 4*wr("wocc")) {
		t.Errorf("SC write amplification too small: sc=%d wocc=%d", wr("sc"), wr("wocc"))
	}
	if !(wr("ccnvm") > wr("osiris") && wr("osiris") >= wr("wocc")) {
		t.Errorf("write ordering broken: ccnvm=%d osiris=%d wocc=%d", wr("ccnvm"), wr("osiris"), wr("wocc"))
	}
	if res["ccnvm"].Sec.Drains == 0 {
		t.Error("ccnvm never drained on a write-heavy workload")
	}
	if res["ccnvm"].AvgEpochLen <= 1 {
		t.Errorf("implausible epoch length %v", res["ccnvm"].AvgEpochLen)
	}
}

func TestRunWithCrashProducesRecoverableImage(t *testing.T) {
	p, _ := trace.ProfileByName("gcc")
	ops := trace.Collect(trace.MustGenerator(p, 5), 20000)
	m, _ := New(Config{Design: "ccnvm"})
	res, img := m.RunWithCrash("gcc", ops, 15000)
	if img == nil || img.Design != "ccnvm" {
		t.Fatal("crash image missing or mislabeled")
	}
	if res.Instructions == 0 {
		t.Fatal("partial result empty")
	}
	if img.Image.Store.Len() == 0 {
		t.Fatal("crash image has no persistent state")
	}
}

func TestRunBenchmarkEntryPoint(t *testing.T) {
	r, err := RunBenchmark("ccnvm", "hmmer", 10000, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "hmmer" || r.Design != "ccnvm" || r.Instructions == 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if _, err := RunBenchmark("ccnvm", "nosuch", 10, 1, Config{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSmallCapacityMachine(t *testing.T) {
	// The simulator must work on tiny trees too (fewer levels).
	m, err := New(Config{Design: "ccnvm", Capacity: 64 << 20, CheckReads: true})
	if err != nil {
		t.Fatal(err)
	}
	var ops []trace.Op
	for i := 0; i < 5000; i++ {
		k := trace.Load
		if i%3 == 0 {
			k = trace.Store
		}
		ops = append(ops, trace.Op{Kind: k, Addr: mem.Addr((i % 700) * 64), Gap: 3})
	}
	m.Run("tiny", ops)
	if m.Mismatches() != 0 {
		t.Fatal("shadow mismatches on small capacity")
	}
}

func TestParamsPlumbing(t *testing.T) {
	// N and M must reach the engine: tiny N forces many drains.
	p, _ := trace.ProfileByName("lbm")
	ops := trace.Collect(trace.MustGenerator(p, 1), 20000)
	run := func(n uint64) uint64 {
		m, _ := New(Config{Design: "ccnvm", Params: engine.Params{UpdateLimit: n}})
		return m.Run("lbm", ops).Sec.Drains
	}
	if !(run(4) > run(64)) {
		t.Fatal("smaller N did not increase drain count")
	}
}

func TestExtensionDesignRunsEndToEnd(t *testing.T) {
	p, _ := trace.ProfileByName("gcc")
	ops := trace.Collect(trace.MustGenerator(p, 2), 20000)
	m, err := New(Config{Design: "ccnvm-ext", CheckReads: true})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run("gcc", ops)
	if m.Mismatches() != 0 || r.Sec.IntegrityViolations != 0 {
		t.Fatal("extension design corrupted data")
	}
	// Timing must match plain cc-NVM exactly: the registers are on-chip.
	m2, _ := New(Config{Design: "ccnvm"})
	r2 := m2.Run("gcc", ops)
	if r.Cycles != r2.Cycles || r.NVMWrites != r2.NVMWrites {
		t.Fatalf("extension changed timing/traffic: %d vs %d cycles", r.Cycles, r2.Cycles)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	r, err := RunBenchmark("ccnvm", "hmmer", 5000, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.IPC != r.IPC || back.NVMWrites != r.NVMWrites || back.Cycles != r.Cycles {
		t.Fatal("JSON round trip lost fields")
	}
}

func TestArsenalEndToEnd(t *testing.T) {
	p, _ := trace.ProfileByName("gcc")
	ops := trace.Collect(trace.MustGenerator(p, 4), 30000)
	m, err := New(Config{Design: "arsenal", CheckReads: true})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run("gcc", ops)
	if m.Mismatches() != 0 || r.Sec.IntegrityViolations != 0 {
		t.Fatalf("arsenal corrupted data: mism=%d viol=%d", m.Mismatches(), r.Sec.IntegrityViolations)
	}
	ratio := m.Engine().(*engine.Arsenal).CompressionRatio()
	if ratio < 0.2 || ratio > 0.95 {
		t.Fatalf("implausible compression ratio %v", ratio)
	}
	// Arsenal's selling point: fewer NVM writes than even the
	// no-consistency baseline, thanks to inline metadata.
	mb, _ := New(Config{Design: "wocc"})
	rb := mb.Run("gcc", ops)
	if !(r.NVMWrites.Total() < rb.NVMWrites.Total()) {
		t.Fatalf("arsenal writes %d not below baseline %d", r.NVMWrites.Total(), rb.NVMWrites.Total())
	}
}

// TestSpareDegradationReachesReadOnly drives a machine with a tiny
// finite spare pool through a mid-run power event until the pool
// exhausts: the result must report the degraded health, the pool
// accounting and the refused stores — and a faultless run must report
// none of it, keeping the published result schema zero-valued.
func TestSpareDegradationReachesReadOnly(t *testing.T) {
	// Tiny caches force the trace's working set through the device, so
	// stuck lines are actually read (retry exhaustion) and rewritten
	// (heal on write) instead of idling behind the SRAM.
	m, err := New(Config{Design: "ccnvm", Capacity: 64 << 20,
		L1Size: 2 << 10, L2Size: 4 << 10,
		Faults:   &nvm.FaultModel{Seed: 3, StuckLines: 8, SpareLines: 2},
		ScrubOps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	var ops []trace.Op
	for i := 0; i < 12000; i++ {
		k := trace.Load
		if i%3 == 0 {
			k = trace.Store
		}
		ops = append(ops, trace.Op{Kind: k, Addr: mem.Addr((i % 500) * 64), Gap: 3})
	}
	m.Run("tiny", ops[:4000])
	if h := m.Health(); h != store.HealthHealthy {
		t.Fatalf("health before any fault: %v", h)
	}
	// A power event sticks far more lines than the pool can absorb; the
	// rest of the trace heals through the two spares and then degrades.
	m.Device().InjectStuckLines()
	r := m.Run("tiny", ops[4000:])
	if r.Spares.Total != 2 {
		t.Fatalf("pool not armed in the result: %+v", r.Spares)
	}
	if r.Spares.Remaining() != 0 || r.Health != "read-only" {
		t.Fatalf("pool did not exhaust: health=%q spares=%+v", r.Health, r.Spares)
	}
	if m.Health() != store.HealthReadOnly {
		t.Fatalf("machine health accessor disagrees: %v", m.Health())
	}
	if r.RefusedStores == 0 {
		t.Fatal("read-only machine refused no stores")
	}
	if r.Spares.Refused == 0 && r.Ctrl.PermanentReadErrors == 0 {
		t.Fatal("exhaustion left no trace in the device or controller stats")
	}

	// The faultless schema is untouched: no health string, zero pool.
	clean, err := New(Config{Design: "ccnvm", Capacity: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rc := clean.Run("tiny", ops[:2000])
	if rc.Health != "" || rc.Spares.Finite() || rc.RefusedStores != 0 {
		t.Fatalf("faultless result carries spare fields: health=%q spares=%+v", rc.Health, rc.Spares)
	}
}
