// Package sim wires the full simulated machine: a trace-driven core
// with bounded memory-level parallelism, the L1/L2 data caches, one of
// the five security-engine designs, the memory controller and the NVM
// device. It stands in for the paper's Gem5 setup: an x86-64 core at
// 3 GHz with a 32 KB 2-way L1 (2 cycles), a 256 KB 8-way L2 (20
// cycles), a 128 KB 8-way metadata cache (32 cycles), 64 B lines, LRU
// everywhere, and PCM at 60/150 ns.
package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"runtime/pprof"

	"ccnvm/internal/cache"
	"ccnvm/internal/core"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/metacache"
	"ccnvm/internal/nvm"
	"ccnvm/internal/seccrypto"
	"ccnvm/internal/store"
	"ccnvm/internal/trace"
)

// Designs lists the five evaluated designs in the paper's order. Thin
// wrapper over the design registry, kept so existing callers compile.
func Designs() []string { return design.PaperNames() }

// AllDesigns additionally includes the §4.4 extension and the
// related-work Arsenal baseline, neither of which is part of the
// paper's figures. Thin wrapper over the design registry.
func AllDesigns() []string { return design.Names() }

// DesignLabel maps a design name to the paper's label. Thin wrapper
// over the design registry.
func DesignLabel(d string) string { return design.Label(d) }

// Config describes one machine instance. Zero values select the paper's
// configuration.
type Config struct {
	Design   string // a design registered in internal/design (default cc-NVM)
	Capacity uint64 // NVM data capacity (default 16 GiB)

	L1Size, L1Ways int   // default 32 KiB, 2-way
	L2Size, L2Ways int   // default 256 KiB, 8-way
	L1Lat, L2Lat   int64 // default 2, 20 cycles
	MSHRs          int   // outstanding memory reads (default 8)

	Params  engine.Params
	MemCfg  store.ControllerConfig
	MetaCfg metacache.Config
	Keys    *seccrypto.Keys

	// Workers is a convenience alias for Params.Workers (the engine's
	// parallel-pipeline width); a nonzero value overrides it. 0 or 1 is
	// the serial engine. Results are bit-identical for any value.
	Workers int

	// CheckReads verifies every memory-level read against a shadow copy
	// of what the core last stored — an end-to-end check of the whole
	// encrypt/decrypt/authenticate path. Enabled in tests.
	CheckReads bool

	// Faults installs a media fault model on the NVM device. Nil (the
	// default) is the idealized device every published figure was
	// measured on; all fault machinery is gated on it, so results stay
	// bit-identical with faults off.
	Faults *nvm.FaultModel

	// ScrubOps is the scrubbing cadence under a fault model: one scrub
	// pass every ScrubOps trace operations (default 100000). Ignored
	// without a fault model.
	ScrubOps int
}

func (c *Config) fill() error {
	if c.Design == "" {
		c.Design = design.CCNVM
	}
	if c.Capacity == 0 {
		c.Capacity = 16 << 30
	}
	if c.L1Size == 0 {
		c.L1Size = 32 << 10
	}
	if c.L1Ways == 0 {
		c.L1Ways = 2
	}
	if c.L2Size == 0 {
		c.L2Size = 256 << 10
	}
	if c.L2Ways == 0 {
		c.L2Ways = 8
	}
	if c.L1Lat == 0 {
		c.L1Lat = 2
	}
	if c.L2Lat == 0 {
		c.L2Lat = 20
	}
	if c.MSHRs == 0 {
		c.MSHRs = 8
	}
	if c.ScrubOps == 0 {
		c.ScrubOps = 100000
	}
	if c.Workers != 0 {
		c.Params.Workers = c.Workers
	}
	if c.Keys == nil {
		k := seccrypto.DefaultKeys()
		c.Keys = &k
	}
	if _, ok := design.Lookup(c.Design); !ok {
		return fmt.Errorf("sim: %w", design.UnknownError(c.Design))
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	Design   string
	Workload string

	Instructions uint64
	Cycles       int64
	IPC          float64

	NVMWrites nvm.WriteBreakdown
	NVMReads  uint64

	L1, L2, Meta cache.Stats
	Sec          engine.SecStats
	Ctrl         store.ControllerStats

	AvgEpochLen float64
	MaxWear     uint64

	// Media-management fields, populated only when the fault model arms a
	// finite spare pool (Faults.SpareLines > 0); zero otherwise — and
	// omitted from JSON when zero — so every faultless result stays
	// bit-identical.
	Health        string         `json:",omitzero"` // "healthy", "degraded" or "read-only"
	Spares        nvm.SpareStats `json:",omitzero"` // pool accounting at the end of the run
	RefusedStores uint64         `json:",omitzero"` // trace stores refused in read-only degradation
}

// Machine is one simulated system.
type Machine struct {
	cfg  Config
	st   *store.Store
	dev  *nvm.Device
	eng  engine.Engine
	l1   *cache.Cache
	l2   *cache.Cache
	core coreState

	scrubbing     bool   // fault model active: run periodic scrub passes
	sinceScrub    int    // ops since the last scrub pass
	finiteSpares  bool   // fault model arms a finite spare pool
	refusedStores uint64 // stores refused while the media was read-only

	shadow map[mem.Addr]mem.Line // CheckReads oracle
	seq    uint64                // store content sequence

	base *Result // stats baseline captured by MarkWarm
}

type coreState struct {
	now         int64
	outstanding []int64 // completion times of in-flight memory reads
	instrs      uint64
	mismatches  uint64
}

// New builds a machine. Assembly — layout, device, fault model,
// controller, engine — is the storage-engine facade's job; the
// simulator layers the CPU-side caches and the trace-driven core over
// the facade's engine and drives the timed path directly (it owns the
// clock, which the facade's functional API does not expose).
func New(cfg Config) (*Machine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	st, err := store.Open(store.Options{
		Design:   cfg.Design,
		Capacity: cfg.Capacity,
		Params:   cfg.Params,
		Ctrl:     cfg.MemCfg,
		Meta:     cfg.MetaCfg,
		Keys:     cfg.Keys,
		Faults:   cfg.Faults,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{cfg: cfg, st: st, dev: st.Device(), eng: st.Engine(),
		scrubbing:    cfg.Faults.Enabled(),
		finiteSpares: cfg.Faults != nil && cfg.Faults.SpareLines > 0,
	}
	if cfg.CheckReads {
		m.shadow = make(map[mem.Addr]mem.Line)
	}
	// The L1 evicts into the L2; the L2 evicts into the security engine.
	m.l2 = cache.MustNew(cache.Config{Name: "l2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways},
		func(a mem.Addr, l mem.Line, dirty bool) {
			if dirty {
				accept := m.eng.WriteBack(m.core.now, a, l)
				if accept > m.core.now {
					m.core.now = accept // the fill waits for the victim buffer
				}
			}
		})
	m.l1 = cache.MustNew(cache.Config{Name: "l1", SizeBytes: cfg.L1Size, Ways: cfg.L1Ways},
		func(a mem.Addr, l mem.Line, dirty bool) {
			if dirty {
				m.l2.Fill(a, l, true)
			}
		})
	return m, nil
}

// Engine exposes the machine's security engine (for crash tests).
func (m *Machine) Engine() engine.Engine { return m.eng }

// Device exposes the NVM device.
func (m *Machine) Device() *nvm.Device { return m.dev }

// memRead issues a memory-level read through the security engine with
// MSHR-bounded parallelism. It returns the line and its completion.
func (m *Machine) memRead(a mem.Addr, dep bool) mem.Line {
	// Wait for an MSHR when the window is full.
	if len(m.core.outstanding) >= m.cfg.MSHRs {
		earliest, ei := m.core.outstanding[0], 0
		for i, t := range m.core.outstanding {
			if t < earliest {
				earliest, ei = t, i
			}
		}
		if earliest > m.core.now {
			m.core.now = earliest
		}
		last := len(m.core.outstanding) - 1
		m.core.outstanding[ei] = m.core.outstanding[last]
		m.core.outstanding = m.core.outstanding[:last]
	}
	pt, done := m.eng.ReadBlock(m.core.now, a)
	if dep {
		// The consumer stalls until the verified value arrives.
		if done > m.core.now {
			m.core.now = done
		}
	} else {
		m.core.outstanding = append(m.core.outstanding, done)
	}
	if m.shadow != nil {
		if want, ok := m.shadow[a]; ok && want != pt {
			m.core.mismatches++
		}
	}
	return pt
}

// loadLine brings a line to the L1, charging hit/miss latencies, and
// returns its content.
func (m *Machine) loadLine(a mem.Addr, dep bool) mem.Line {
	if l, hit := m.l1.Read(a); hit {
		return l
	}
	if l, hit := m.l2.Read(a); hit {
		// L1 hits are hidden by the pipeline; an L2 hit pays the L1 miss
		// detection plus the L2 access.
		m.core.now += m.cfg.L1Lat + m.cfg.L2Lat
		m.l1.Fill(a, l, false)
		return l
	}
	l := m.memRead(a, dep)
	m.l2.Fill(a, l, false)
	m.l1.Fill(a, l, false)
	return l
}

// step executes one trace operation.
func (m *Machine) step(op trace.Op) {
	m.core.now += int64(op.Gap)
	m.core.instrs += uint64(op.Gap) + 1
	if m.scrubbing {
		if m.sinceScrub++; m.sinceScrub >= m.cfg.ScrubOps {
			m.sinceScrub = 0
			m.st.Scrub(m.core.now)
		}
	}
	switch op.Kind {
	case trace.Load:
		m.loadLine(op.Addr, op.Dep)
	case trace.Store:
		if m.finiteSpares && m.st.Health() == store.HealthReadOnly {
			// Admission control of the degraded mode: with the spare pool
			// exhausted the controller accepts no new host stores, so the
			// core's store retires without mutating memory. Loads (and the
			// engine's own maintenance traffic) still proceed.
			m.refusedStores++
			return
		}
		// Write-allocate: fetch the line (non-blocking fill), then
		// mutate it in the L1 via the store buffer. Store values mimic
		// real memory content — word-granular, mostly small clustered
		// integers with occasional pointer-like values — so
		// compression-based designs see realistic compressibility.
		line := m.loadLine(op.Addr, false)
		m.seq++
		v := 0x1000 + m.seq%2048
		if m.seq%13 == 0 {
			v = 0x7f40_0000_0000 + m.seq*64 // pointer-like
		}
		w := int(m.seq) % 8 * 8
		binary.LittleEndian.PutUint64(line[w:w+8], v)
		m.l1.Write(op.Addr, line)
		if m.shadow != nil {
			m.shadow[mem.Align(op.Addr)] = line
		}
	}
}

// Run executes the whole op slice and returns the results. The caches
// are NOT flushed at the end: traffic and IPC cover exactly the trace,
// as in the paper's fixed-instruction-window methodology.
func (m *Machine) Run(workload string, ops []trace.Op) Result {
	for _, op := range ops {
		m.step(op)
	}
	// Drain outstanding reads into the cycle count.
	for _, t := range m.core.outstanding {
		if t > m.core.now {
			m.core.now = t
		}
	}
	m.core.outstanding = m.core.outstanding[:0]
	return m.result(workload)
}

// RunWithCrash executes ops[:crashAt], crashes, and returns the crash
// image together with the partial result.
func (m *Machine) RunWithCrash(workload string, ops []trace.Op, crashAt int) (Result, *engine.CrashImage) {
	if crashAt > len(ops) {
		crashAt = len(ops)
	}
	for _, op := range ops[:crashAt] {
		m.step(op)
	}
	res := m.result(workload)
	return res, m.eng.Crash()
}

// MarkWarm ends the warm-up phase: statistics accumulated so far
// (cycles, instructions, traffic, cache and engine counters) are
// subtracted from every subsequent Result, mirroring the paper's
// "simulate for 500 million instructions after fast-forwarding to
// representative regions". Functional and cache state carry over.
func (m *Machine) MarkWarm() {
	r := m.result("")
	m.base = &r
}

// Snapshot captures the current NVM contents non-destructively — the
// adversary's view of the DIMM, used by replay attacks that need an
// older image.
func (m *Machine) Snapshot() *nvm.Image { return m.dev.Snapshot() }

// Crash powers the machine off mid-run: on-chip state is lost, ADR
// semantics apply, and the persistent state is captured. The machine
// must not be used afterwards.
func (m *Machine) Crash() *engine.CrashImage { return m.eng.Crash() }

// Mismatches reports shadow-check failures (CheckReads only).
func (m *Machine) Mismatches() uint64 { return m.core.mismatches }

// Health reports the memory controller's media health state; always
// HealthHealthy without a finite spare pool.
func (m *Machine) Health() store.HealthState { return m.st.Health() }

func (m *Machine) result(workload string) Result {
	r := Result{
		Design:       m.cfg.Design,
		Workload:     workload,
		Instructions: m.core.instrs,
		Cycles:       m.core.now,
		NVMWrites:    m.dev.Writes(),
		NVMReads:     m.dev.Reads(),
		L1:           m.l1.Stats(),
		L2:           m.l2.Stats(),
		Sec:          m.eng.Stats(),
	}
	if c, ok := m.eng.(*core.CCNVM); ok {
		r.AvgEpochLen = c.AvgEpochLength()
		r.Meta = c.Meta.Stats()
		r.Ctrl = c.Ctrl.Stats()
	}
	switch e := m.eng.(type) {
	case *engine.WoCC:
		r.Meta, r.Ctrl = e.Meta.Stats(), e.Ctrl.Stats()
	case *engine.SC:
		r.Meta, r.Ctrl = e.Meta.Stats(), e.Ctrl.Stats()
	case *engine.Osiris:
		r.Meta, r.Ctrl = e.Meta.Stats(), e.Ctrl.Stats()
	}
	_, r.MaxWear = m.dev.MaxWear()
	if m.finiteSpares {
		r.Health = m.st.Health().String()
		r.Spares = m.dev.SpareStats()
		r.RefusedStores = m.refusedStores
	}
	if m.base != nil {
		r = subtractBaseline(r, *m.base)
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	return r
}

// subtractBaseline removes warm-up statistics from a result. MaxWear
// and AvgEpochLen are running quantities, not counters, and stay as-is.
func subtractBaseline(r, b Result) Result {
	r.Instructions -= b.Instructions
	r.Cycles -= b.Cycles
	r.NVMWrites.Data -= b.NVMWrites.Data
	r.NVMWrites.HMAC -= b.NVMWrites.HMAC
	r.NVMWrites.Counter -= b.NVMWrites.Counter
	r.NVMWrites.Tree -= b.NVMWrites.Tree
	r.NVMReads -= b.NVMReads
	r.L1 = subCache(r.L1, b.L1)
	r.L2 = subCache(r.L2, b.L2)
	r.Meta = subCache(r.Meta, b.Meta)
	r.Sec = subSec(r.Sec, b.Sec)
	r.Ctrl = subCtrl(r.Ctrl, b.Ctrl)
	r.RefusedStores -= b.RefusedStores
	return r
}

func subCache(a, b cache.Stats) cache.Stats {
	a.Hits -= b.Hits
	a.Misses -= b.Misses
	a.Evictions -= b.Evictions
	a.DirtyEvicts -= b.DirtyEvicts
	a.Writes -= b.Writes
	a.Reads -= b.Reads
	return a
}

func subSec(a, b engine.SecStats) engine.SecStats {
	a.Reads -= b.Reads
	a.Writebacks -= b.Writebacks
	a.HMACOps -= b.HMACOps
	a.AESOps -= b.AESOps
	a.IntegrityViolations -= b.IntegrityViolations
	a.CounterOverflows -= b.CounterOverflows
	a.StaleCounterRetries -= b.StaleCounterRetries
	a.Drains -= b.Drains
	a.DrainQueueFull -= b.DrainQueueFull
	a.DrainEvict -= b.DrainEvict
	a.DrainUpdateLimit -= b.DrainUpdateLimit
	a.DrainLinesFlushed -= b.DrainLinesFlushed
	a.WritebackBufferStalls -= b.WritebackBufferStalls
	a.WritebackStallCycles -= b.WritebackStallCycles
	a.PadCacheHits -= b.PadCacheHits
	a.PadCacheMisses -= b.PadCacheMisses
	a.DataMemoHits -= b.DataMemoHits
	a.DataMemoMisses -= b.DataMemoMisses
	a.NodeMemoHits -= b.NodeMemoHits
	a.NodeMemoMisses -= b.NodeMemoMisses
	a.DefaultLineHits -= b.DefaultLineHits
	a.DefaultLineMisses -= b.DefaultLineMisses
	return a
}

func subCtrl(a, b store.ControllerStats) store.ControllerStats {
	a.Reads -= b.Reads
	a.Writes -= b.Writes
	a.WPQFullStalls -= b.WPQFullStalls
	a.WPQStallCycles -= b.WPQStallCycles
	a.EpochWrites -= b.EpochWrites
	a.DroppedOnCrash -= b.DroppedOnCrash
	a.RetryRemapped -= b.RetryRemapped
	a.RefusedWrites -= b.RefusedWrites
	a.RefusedEpochs -= b.RefusedEpochs
	return a
}

// RunBenchmark is the one-call entry point: build a machine for design,
// generate the named workload and run n operations after a warm-up of
// warmup operations (statistics cover only the measured window, like
// the paper's fast-forwarding methodology).
func RunBenchmark(design, benchmark string, n int, seed int64, cfg Config) (Result, error) {
	return RunBenchmarkWarm(design, benchmark, n, 0, seed, cfg)
}

// RunBenchmarkWarm is RunBenchmark with an explicit warm-up window.
//
// The run is wrapped in pprof labels (design, workload, phase), so a
// CPU profile captured around a sweep attributes every sample to the
// cell that produced it — `go tool pprof -tagfocus design=ccnvm` or
// `-tagshow phase` slice the profile without re-running anything. See
// DESIGN.md, "Simulator performance".
func RunBenchmarkWarm(design, benchmark string, n, warmup int, seed int64, cfg Config) (Result, error) {
	p, err := trace.ProfileByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	cfg.Design = design
	m, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	g, err := trace.NewGenerator(p, seed)
	if err != nil {
		return Result{}, err
	}
	var res Result
	labels := pprof.Labels("design", design, "workload", benchmark, "phase", "measure")
	if warmup > 0 {
		pprof.Do(context.Background(), pprof.Labels("design", design, "workload", benchmark, "phase", "warmup"),
			func(context.Context) {
				m.Run(benchmark, trace.Collect(g, warmup))
				m.MarkWarm()
			})
	}
	pprof.Do(context.Background(), labels, func(context.Context) {
		res = m.Run(benchmark, trace.Collect(g, n))
	})
	return res, nil
}
