package model_test

import (
	"math"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/model"
	"ccnvm/internal/nvm"
	"ccnvm/internal/store"
)

const capacity = 16 << 30 // the paper's geometry: 10 internal levels

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: simulated %.4f vs predicted %.4f (tol %.4f)", what, got, want, tol)
	}
}

func pattern(v byte) mem.Line {
	var l mem.Line
	l[0] = v
	return l
}

func TestPaperArithmetic(t *testing.T) {
	lay := mem.MustLayout(capacity)
	// "a 16 GB NVM with a 12-level 4-ary BMT requires 12 atomic BMT
	// updates on every write-back (the BMT root is updated on the TCB,
	// whereas 10 internal path nodes and the leaf-level counter are
	// updated in the NVM)" — plus data and HMAC, 13 NVM line writes.
	if got := model.SCWritesPerWriteback(lay); got != 13 {
		t.Fatalf("SC writes per write-back = %d, want 13", got)
	}
	if got := model.SCWriteFactor(lay); got != 6.5 {
		t.Fatalf("SC write factor = %v, want 6.5", got)
	}
}

// build opens the storage facade over the paper-sized layout and
// returns the raw engine plus its device for wear accounting.
func build(t *testing.T, name string, n uint64) (engine.Engine, *nvm.Device) {
	t.Helper()
	st, err := store.Open(store.Options{
		Design:   name,
		Capacity: capacity,
		Params:   engine.Params{UpdateLimit: n},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st.Engine(), st.Device()
}

// run issues write-backs over a block cycle and returns the measured
// write factor vs the 2-per-write-back baseline.
func writeFactor(t *testing.T, design string, n uint64, addrs []mem.Addr, rounds int) float64 {
	t.Helper()
	e, dev := build(t, design, n)
	now := int64(0)
	wb := 0
	for r := 0; r < rounds; r++ {
		for _, a := range addrs {
			now = e.WriteBack(now, a, pattern(byte(r))) + 20
			wb++
		}
	}
	return float64(dev.Writes().Total()) / float64(2*wb)
}

// fourSlots cycles four blocks of one page so per-slot update counts
// stay below the 7-bit minor-counter overflow (which would add page
// re-encryption traffic the closed forms deliberately exclude).
var fourSlots = []mem.Addr{0, 64, 128, 192}

func TestSCMatchesClosedForm(t *testing.T) {
	lay := mem.MustLayout(capacity)
	got := writeFactor(t, "sc", 16, fourSlots, 100)
	within(t, "SC hot line", got, model.SCWriteFactor(lay), 0.05)
}

func TestOsirisMatchesClosedForm(t *testing.T) {
	for _, n := range []uint64{8, 16, 32} {
		got := writeFactor(t, "osiris", n, fourSlots, 100)
		within(t, "Osiris hot line", got, model.OsirisWriteFactor(n), 0.05)
	}
}

func TestCCNVMHotLineMatchesClosedForm(t *testing.T) {
	lay := mem.MustLayout(capacity)
	for _, n := range []uint64{8, 16, 32} {
		got := writeFactor(t, "ccnvm", n, fourSlots, 100)
		within(t, "cc-NVM hot line", got, model.CCNVMHotLineWriteFactor(lay, n), 0.08)
	}
}

func TestCCNVMStreamMatchesClosedForm(t *testing.T) {
	// A unit-stride pass over 64 pages: each page's 64 blocks written
	// once each.
	var addrs []mem.Addr
	for p := 0; p < 64; p++ {
		for b := 0; b < mem.BlocksPerPage; b++ {
			addrs = append(addrs, mem.Addr(p*mem.PageSize+b*mem.LineSize))
		}
	}
	got := writeFactor(t, "ccnvm", 16, addrs, 1)
	within(t, "cc-NVM stream", got, model.CCNVMStreamWriteFactor(mem.MustLayout(capacity), 16), 0.06)
}

func TestBaselineIsExactlyTwo(t *testing.T) {
	got := writeFactor(t, "wocc", 16, []mem.Addr{0, 64, 4096}, 30)
	within(t, "w/o CC", got, 1.0, 0.02)
}
