// Package model derives closed-form first-order predictions for the
// write traffic of each consistency design, straight from the paper's
// arithmetic (§2.3, §5.2). The tests compare these predictions against
// the simulator on workloads simple enough to have exact answers, which
// validates the simulator's accounting against first principles:
//
//   - every write-back writes the data line and read-modify-writes its
//     HMAC line (2 NVM line writes — the w/o-CC baseline);
//   - SC additionally writes the counter line and every internal tree
//     node, "12 atomic BMT updates on every write-back" at 16 GiB: the
//     root in the TCB, 10 internal nodes and the counter in NVM;
//   - Osiris Plus additionally writes one counter line every N
//     write-backs to the same line (the stop-loss);
//   - cc-NVM additionally flushes, once per epoch, every dirty counter
//     line plus the union of their Merkle paths.
package model

import "ccnvm/internal/mem"

// SCWritesPerWriteback returns the NVM line writes a strict-consistency
// write-back issues for the given layout: data + HMAC + counter + all
// internal tree levels.
func SCWritesPerWriteback(lay *mem.Layout) int {
	return 2 + 1 + lay.InternalLevels
}

// SCWriteFactor is SC's write amplification over the w/o-CC baseline
// (which writes data + HMAC only).
func SCWriteFactor(lay *mem.Layout) float64 {
	return float64(SCWritesPerWriteback(lay)) / 2
}

// OsirisWriteFactor is Osiris Plus's amplification for a workload whose
// write-backs cycle uniformly over the blocks of whole pages: every
// counter line absorbs updates until the stop-loss writes it at every
// Nth update.
func OsirisWriteFactor(n uint64) float64 {
	return (2 + 1/float64(n)) / 2
}

// CCNVMHotLineWriteFactor is cc-NVM's amplification for the paper's
// worst small case: a single hot block rewritten continuously. Every N
// write-backs the update-limit trigger drains the counter line and its
// full Merkle path.
func CCNVMHotLineWriteFactor(lay *mem.Layout, n uint64) float64 {
	flushPerEpoch := float64(1 + lay.InternalLevels)
	return (2 + flushPerEpoch/float64(n)) / 2
}

// CCNVMStreamWriteFactor is cc-NVM's amplification for a long
// unit-stride write stream: all 64 blocks of each page are written
// once, so each counter line sees 64 updates and the update-limit
// trigger drains it ceil(64/N) times. Crucially, a drain clears the
// dirty address queue, so the NEXT epoch re-reserves and re-flushes the
// counter's full Merkle path — tree ancestors are rewritten every
// drain, not amortized across them. That per-drain path rewrite is
// exactly the residual write overhead the paper's Figure 5(b) charges
// cc-NVM for.
func CCNVMStreamWriteFactor(lay *mem.Layout, n uint64) float64 {
	drainsPerPage := float64((uint64(mem.BlocksPerPage) + n - 1) / n)
	flushPerPage := drainsPerPage * float64(1+lay.InternalLevels)
	perPage := 2*float64(mem.BlocksPerPage) + flushPerPage
	return perPage / (2 * float64(mem.BlocksPerPage))
}
