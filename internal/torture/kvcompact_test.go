package torture

import (
	"strings"
	"testing"
)

// TestKVCompactCrashSweep crashes the KV namespace at every host-write
// boundary while a compaction pass runs after every second acknowledged
// batch — so the sweep lands inside the pass's copy loop, between the
// run flush and the manifest commit, on the manifest slot write itself,
// and inside the retired half's reclaim. Every boundary must recover to
// an exact reachable prefix state with the manifest generation intact.
func TestKVCompactCrashSweep(t *testing.T) {
	designs := KVDesigns()
	if len(designs) == 0 {
		t.Fatal("no crash-consistent designs registered")
	}
	r := DefaultRunner()
	for _, d := range designs {
		t.Run(d, func(t *testing.T) {
			t.Parallel()
			fail, cells := r.KVSweep(KVCell{Design: d, Seed: 7, Batches: 6, CompactEvery: 2})
			if fail != nil {
				t.Fatal(fail.Detail)
			}
			if cells < 10 {
				t.Fatalf("compact sweep covered only %d crash points; workload too small to matter", cells)
			}
			t.Logf("%s: %d compaction crash boundaries swept clean", d, cells)
		})
	}
}

// TestKVCompactRebootLoopAxis stacks the axes: compaction every second
// acked batch, a crash at every third write boundary, and a recovery
// that is itself re-crashed twice before the final uninterrupted pass.
// Besides the prefix-state oracles this exercises kv-compact-idempotent:
// the looped recovery must land on the same namespace as a single-shot
// recovery of a pristine clone.
func TestKVCompactRebootLoopAxis(t *testing.T) {
	r := DefaultRunner()
	cells := 0
	for n := 0; ; n += 3 {
		c := KVCell{Design: "ccnvm", Seed: 11, Batches: 5, CrashWrite: n,
			Reboots: 2, RebootEvery: 2, CompactEvery: 2}
		fail, struck := r.RunKVCell(c)
		cells++
		if fail != nil {
			t.Fatal(fail.Detail)
		}
		if !struck {
			break
		}
	}
	if cells < 4 {
		t.Fatalf("only %d compact reboot-loop cells ran", cells)
	}
	t.Logf("%d compact reboot-loop cells survived", cells)
}

// TestKVCompactCellValidate rejects a negative compaction stride and
// keeps the spec string round-trippable for compact cells.
func TestKVCompactCellValidate(t *testing.T) {
	err := (KVCell{Design: "ccnvm", Batches: 3, CompactEvery: -1}).Validate()
	if err == nil || !strings.Contains(err.Error(), "compact-every") {
		t.Fatalf("negative compact-every accepted: %v", err)
	}
	if err := (KVCell{Design: "ccnvm", Batches: 3, CompactEvery: 2}).Validate(); err != nil {
		t.Fatalf("valid compact cell rejected: %v", err)
	}
	c := KVCell{Design: "ccnvm", Seed: 1, Batches: 3, CrashWrite: 4, CompactEvery: 2}
	if s := c.String(); !strings.Contains(s, "compact-every=2") {
		t.Fatalf("compact stride missing from cell spec: %q", s)
	}
}

// TestBrokenCompactSwitchCaught proves the compaction oracles have
// teeth: a compactor that switches and reclaims without ever writing
// the manifest commit must be caught, the failing cell must shrink to
// something smaller, and the shrunk cell must pass the unsabotaged
// runner.
func TestBrokenCompactSwitchCaught(t *testing.T) {
	r, err := BrokenRunner("break-compact-switch")
	if err != nil {
		t.Fatal(err)
	}
	c := KVCell{Design: "ccnvm", Seed: 5, Batches: 6, CrashWrite: -1, CompactEvery: 2}
	fail, _ := r.RunKVCell(c)
	if fail == nil {
		t.Fatal("break-compact-switch slipped past every compaction oracle")
	}
	min, runs := ShrinkKVCell(r, c, fail.Oracle, 64)
	if min.Batches > c.Batches {
		t.Fatalf("shrink grew the cell: %s", min)
	}
	again, _ := r.RunKVCell(min)
	if again == nil {
		t.Fatalf("minimized cell %s no longer fails", min)
	}
	if again.Oracle != fail.Oracle {
		t.Fatalf("minimized cell fails a different oracle: %s vs %s", again.Oracle, fail.Oracle)
	}
	if g, _ := DefaultRunner().RunKVCell(min); g != nil {
		t.Fatalf("minimized cell also fails the real compactor: %v", g.Detail)
	}
	// The sabotage must not poison non-compact cells: the same runner on
	// a plain cell stays clean.
	if g, _ := r.RunKVCell(KVCell{Design: "ccnvm", Seed: 5, Batches: 3, CrashWrite: -1}); g != nil {
		t.Fatalf("break-compact-switch leaked into a non-compact cell: %v", g.Detail)
	}
	t.Logf("break-compact-switch caught by oracle %q, shrunk to %s in %d runs", fail.Oracle, min, runs)
}

// FuzzKVCompactCell fuzzes the compaction axis: any (seed, batches,
// crash point, compaction stride, reboot count) combination must
// satisfy every compaction oracle on the real recovery path.
func FuzzKVCompactCell(f *testing.F) {
	f.Add(int64(7), uint8(6), int16(4), uint8(2), uint8(0))
	f.Add(int64(11), uint8(5), int16(12), uint8(1), uint8(2))
	f.Add(int64(3), uint8(8), int16(-1), uint8(3), uint8(0))
	r := DefaultRunner()
	f.Fuzz(func(t *testing.T, seed int64, batches uint8, crash int16, every, reboots uint8) {
		c := KVCell{
			Design:       "ccnvm",
			Seed:         seed,
			Batches:      1 + int(batches)%8,
			CompactEvery: 1 + int(every)%4,
			CrashWrite:   int(crash) % 96,
		}
		if c.CrashWrite < 0 {
			c.CrashWrite = -1
		}
		if n := int(reboots) % 4; n > 0 {
			c.Reboots, c.RebootEvery = n, 2
		}
		if fail, _ := r.RunKVCell(c); fail != nil {
			t.Fatalf("%s: %s", fail.Oracle, fail.Detail)
		}
	})
}
