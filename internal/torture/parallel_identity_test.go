package torture

import (
	"runtime"
	"testing"
)

// TestParallelWorkersBitIdentical drives one torture seed per design —
// trace to a crash, attack injection, recovery — at Workers=1 and at
// parallel widths, and demands the full cell digest (persisted-image
// hash, TCB roots, every recovery-report field) match byte for byte.
// Together with the Fig5 sweep in internal/sim this is the pipeline's
// bit-identity contract: parallelism may only change host wall time,
// never a simulated byte. The media-fault cell additionally pins the
// refusal path — drain sharding must disable itself under a fault
// model (tear composition needs the global write order) while the
// sharded tree verify/rebuild stays parallel.
func TestParallelWorkersBitIdentical(t *testing.T) {
	widths := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		widths = append(widths, n)
	}
	for _, d := range DesignNames() {
		cells := []Cell{
			{Design: d, Workload: "hot", Seed: 11, Ops: 200, CrashAt: 120, Attack: "counter-replay", N: 4},
			{Design: d, Workload: "mixed", Seed: 11, Ops: 200, CrashAt: 133, Attack: "none",
				FaultSeed: 5, Torn: true, ADRBudget: 4},
		}
		for _, c := range cells {
			serial := cellDigestWorkers(t, c, 1)
			if zero := cellDigestWorkers(t, c, 0); zero != serial {
				t.Errorf("%s: Workers=0 and Workers=1 diverged:\n %s\n %s", c.String(), zero, serial)
			}
			for _, w := range widths {
				if got := cellDigestWorkers(t, c, w); got != serial {
					t.Errorf("%s: Workers=%d diverged from serial:\n got %s\nwant %s",
						c.String(), w, got, serial)
				}
			}
		}
	}
}
