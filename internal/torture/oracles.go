package torture

import (
	"fmt"
	"strings"

	"ccnvm/internal/bmt"
	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
	"ccnvm/internal/store"
)

// Context carries one executed cell's evidence to the oracles: the
// reference machine, the (possibly attacked) crash image, the recovery
// report, and the bookkeeping the run recorded on the way.
type Context struct {
	Cell   Cell
	Ref    *Reference
	Img    *engine.CrashImage
	Rep    *recovery.Report
	Runner *Runner

	// AttackChanged reports whether the injected attack actually altered
	// persistent bytes; a no-op mutation leaves nothing to detect and the
	// cell is judged as a clean crash.
	AttackChanged bool
	// Victims are the attack's primary targets: data blocks for
	// spoof/splice/replay, the node address for tree-spoof.
	Victims []mem.Addr

	// RunViolations is the engine's runtime integrity-violation count at
	// the crash; ReadDivergence records the first load that returned
	// content diverging from the reference ("" when none).
	RunViolations  uint64
	ReadDivergence string

	// Media is the harness-side ground-truth fault log the controller
	// recorded at the crash (nil on faultless cells); CtrlStats carries
	// the controller's retry/scrub/crash-damage counters. PostScrubWeak
	// is the number of weak lines surviving the mid-trace scrub pass.
	Media         *nvm.FaultLog
	CtrlStats     store.ControllerStats
	PostScrubWeak int
	// MidTraceStuck counts the stuck lines the spare axis injects
	// mid-trace (see RunCell) — damage with no crash-time fault event,
	// so the cry-wolf arm of adr-budget must not blame the crash for it.
	MidTraceStuck int

	// Spare-pool evidence, populated only when the cell arms a finite
	// pool (Spares > 0). SpareStats, HealthAtCrash and
	// RemapEntriesAtCrash snapshot the device's in-memory pool state at
	// the crash — ground truth the persisted (possibly torn) remap table
	// is judged against. RefusedStores counts trace stores the harness
	// skipped at the read-only front door; ROProbed/ROProbeAddr record
	// the single direct write pushed past it to prove the refusal bites.
	SpareStats          nvm.SpareStats
	HealthAtCrash       store.HealthState
	RemapEntriesAtCrash []nvm.RemapEntry
	RefusedStores       int
	ROProbed            bool
	ROProbeAddr         mem.Addr

	// Recovered is the TCB state Apply produced, once applyRecovery ran.
	Recovered *recovery.Recovered

	// Reboot-loop evidence, populated only when the cell's reboot axis
	// ran (Reboots > 0 and the first recovery was clean). FirstRep is the
	// pre-reboot report; the Golden* trio is the crash image cloned and
	// recovered single-shot through the same runner seams; RebootPlans
	// records each interrupted pass's plan size and FinalPlan the
	// uninterrupted pass's (-1 when the loop converged early).
	FirstRep    *recovery.Report
	GoldenImg   *engine.CrashImage
	GoldenRep   *recovery.Report
	GoldenRec   *recovery.Recovered
	RebootPlans []int
	FinalPlan   int

	applied    bool
	rebootRan  bool
	goldenDivs []string
	goldenRun  bool
}

// Faulty reports whether the cell ran under a media-fault model.
func (c *Context) Faulty() bool { return c.Cell.Faulty() }

// caps resolves the cell's declared capability set from the design
// registry; the oracles read expectations from it instead of matching on
// design names. Cells are validated before running, so the lookup
// cannot miss.
func (c *Context) caps() design.Capabilities { return design.MustLookup(c.Cell.Design).Caps }

// inlinePacked reports whether the cell's design recovers via the
// inline-packed strategy (counters/HMACs inside packed data lines),
// which the golden verification must inspect pre-Apply.
func (c *Context) inlinePacked() bool {
	return design.MustLookup(c.Cell.Design).Strategy == design.RecoverInlinePacked
}

// applyRecovery runs the runner's Apply seam once; oracles that inspect
// post-recovery state share the applied image.
func (c *Context) applyRecovery() {
	if !c.applied {
		rec := c.Runner.applyFn()(c.Img, c.Rep)
		c.Recovered = &rec
		c.applied = true
	}
}

// golden returns the divergences between the recovered image and the
// reference machine, computing them once. Inline-packed images are
// verified functionally pre-Apply (their counters and HMACs live inline
// in packed lines, which the generic Apply does not understand); every
// other design is verified bit-for-bit after Apply.
func (c *Context) golden() []string {
	if c.goldenRun {
		return c.goldenDivs
	}
	c.goldenRun = true
	if c.inlinePacked() {
		c.goldenDivs = c.Ref.VerifyArsenalImage(c.Img)
	} else {
		c.applyRecovery()
		c.goldenDivs = c.Ref.VerifyImage(c.Img)
	}
	return c.goldenDivs
}

// attackInPlay reports whether this cell carries an attack that changed
// persistent state.
func (c *Context) attackInPlay() bool {
	return c.Cell.Attack != "none" && c.AttackChanged
}

// baseRep is the report the single-shot oracles judge. When the reboot
// axis ran, that is the first, pre-reboot report: reboot passes
// legitimately heal stuck lines and shrink the loss evidence as they
// re-apply, and the final (resumed) report's own invariants are owned
// by the reboot oracles, which hold it against the single-shot golden.
func (c *Context) baseRep() *recovery.Report {
	if c.rebootRan {
		return c.FirstRep
	}
	return c.Rep
}

// Oracle is one invariant checked against every cell. Check returns ""
// on pass, otherwise a human-readable failure detail.
type Oracle struct {
	Name  string
	Doc   string
	Check func(*Context) string
}

// Oracles returns the invariant set in evaluation order; RunCell reports
// the first violation. The list is exported so documentation and the CLI
// can enumerate it.
func Oracles() []Oracle { return oracleList }

var oracleList = []Oracle{
	{
		Name: "runtime-reads",
		Doc: "Before the crash, every load returns the reference plaintext and " +
			"the engine flags zero integrity violations on its own traffic.",
		Check: checkRuntimeReads,
	},
	{
		Name: "clean-recovery",
		Doc: "A crash without an effective attack recovers with zero tamper flags " +
			"on every recoverable design (w/o CC is exempt: unbounded staleness is " +
			"its motivating defect). SC additionally needs zero counter retries.",
		Check: checkCleanRecovery,
	},
	{
		Name: "attack-caught",
		Doc: "Every injected attack that changed persistent state is detected, " +
			"and designs that claim location pin it: spoof/splice to the victim " +
			"blocks, counter replay to the victim's counter line, data replay " +
			"(ccnvm-ext) to the victim's page. A report that stays clean is " +
			"tolerated only if recovery provably healed the image back to the " +
			"reference state.",
		Check: checkAttackCaught,
	},
	{
		Name: "epoch-atomicity",
		Doc: "For epoch-draining designs the NVM tree verifies against exactly " +
			"one root register (drains are all-or-nothing), and on clean crashes " +
			"the recovery retries account exactly for the replay window (Nretry " +
			"== Nwb; 0 for SC).",
		Check: checkEpochAtomicity,
	},
	{
		Name: "golden-state",
		Doc: "Whenever recovery reports clean, the recovered image must match the " +
			"golden unmemoized reference machine bit-for-bit: counter lines, " +
			"decrypted data and stored HMACs.",
		Check: checkGoldenState,
	},
	{
		Name: "torn-write-detected",
		Doc: "Under media faults, every surviving block of the recovered image " +
			"verifies as a version the trace actually wrote (nothing is silently " +
			"accepted as fabricated or mixed content), any block left at a stale " +
			"version is covered by a loss report, stuck lines surface as media " +
			"errors, and the post-recovery tree matches the recovered root.",
		Check: checkTornWriteDetected,
	},
	{
		Name: "adr-budget",
		Doc: "The crash-time ADR flush never exceeds its energy budget, every " +
			"damaged line is covered by the suspects manifest recovery consumes, " +
			"and an undamaged fault cell recovers lossless — recovery neither " +
			"trusts torn lines nor cries wolf.",
		Check: checkADRBudget,
	},
	{
		Name: "read-error-bounded-retry",
		Doc: "Transient read errors are absorbed by bounded retry (no read ever " +
			"exhausts the retry budget) and a scrub pass rewrites or remaps every " +
			"weak line, so none survives the maintenance window.",
		Check: checkReadErrorBoundedRetry,
	},
	{
		Name: "reboot-convergence",
		Doc: "A recovery interrupted at every k-th persisted write and re-entered " +
			"across reboots converges to the exact state a single uninterrupted " +
			"recovery produces: store content, stuck-line set and committed root " +
			"registers are all bit-identical to the single-shot golden clone.",
		Check: checkRebootConvergence,
	},
	{
		Name: "reboot-no-new-loss",
		Doc: "Interrupted recovery never makes the verdict worse: the final report " +
			"loses or flags no block the single-shot report did not, and a clean " +
			"single-shot recovery stays clean through any number of reboots.",
		Check: checkRebootNoNewLoss,
	},
	{
		Name: "reboot-bounded",
		Doc: "Designs declaring re-entrant recovery converge within their declared " +
			"reboot budget: write plans shrink monotonically across passes, no plan " +
			"size repeats longer than the capability's stride, and the converged " +
			"image carries no active recovery journal.",
		Check: checkRebootBounded,
	},
	{
		Name: "remap-consistency",
		Doc: "On finite-spare cells the crash image carries a decodable remap " +
			"table whose entries are unique, line-aligned and in-range, recovery's " +
			"report agrees with the table it replayed, and every remapped data " +
			"line the report does not enumerate as lost reads back bit-identical " +
			"to a version the trace actually wrote.",
		Check: checkRemapConsistency,
	},
	{
		Name: "spare-accounting",
		Doc: "Spares consumed equal remap-table entries and never exceed the " +
			"pool (or go negative); the persisted table trails the in-memory " +
			"count by at most the one commit a torn crash may roll back; and a " +
			"refused remap proves the pool was genuinely empty.",
		Check: checkSpareAccounting,
	},
	{
		Name: "degradation-correctness",
		Doc: "A spare-exhausted controller goes read-only for real: the harness " +
			"only ever skips stores once the pool is empty, the direct probe " +
			"write issued past the front door never lands on the device and is " +
			"counted as refused, and no write is refused while the controller " +
			"still claims write service.",
		Check: checkDegradationCorrectness,
	},
}

func checkRuntimeReads(c *Context) string {
	if c.ReadDivergence != "" {
		return c.ReadDivergence
	}
	if c.RunViolations != 0 {
		return fmt.Sprintf("engine flagged %d integrity violations on untampered traffic", c.RunViolations)
	}
	return ""
}

func checkCleanRecovery(c *Context) string {
	if c.attackInPlay() {
		return "" // attack-caught owns attacked cells
	}
	if c.caps().TamperOnCrash {
		return "" // legitimately unrecoverable; golden-state still guards its clean cases
	}
	rep := c.baseRep()
	if !rep.Clean() {
		// This holds on fault cells too: pure media damage must be
		// classified as crash loss (LostBlocks / CrashLossWindow), never
		// as tampering — the loss-vs-attack distinguishability claim.
		return fmt.Sprintf("clean crash flagged: mismatches=%d tampered=%d replayedPages=%d potentialReplay=%v (Nwb=%d Nretry=%d)",
			len(rep.TreeMismatches), len(rep.Tampered), len(rep.ReplayedPages),
			rep.PotentialReplay, rep.Nwb, rep.Nretry)
	}
	if !c.Faulty() && c.caps().ZeroRetryRecovery && (rep.Nretry != 0 || rep.RecoveredBlocks != 0) {
		return fmt.Sprintf("design persists the full path per write-back yet recovery needed %d retries over %d blocks",
			rep.Nretry, rep.RecoveredBlocks)
	}
	return ""
}

func checkAttackCaught(c *Context) string {
	if !c.attackInPlay() || c.caps().TamperOnCrash {
		// A tamper-on-crash design cannot distinguish an attack from its
		// own staleness; its attacked cells assert nothing.
		return ""
	}
	rep := c.Rep
	if c.Faulty() {
		// Under media faults the located-evidence minimums are waived:
		// damage may displace the evidence, and a loss verdict already
		// proves the attacked state was not silently trusted. Only a
		// report that claims a lossless clean image must prove it healed.
		if rep.Clean() && rep.Lossless() {
			if _, divs := c.goldenVersions(); len(divs) > 0 {
				return fmt.Sprintf("%s attack on %s went undetected under faults: %s",
					c.Cell.Attack, victimList(c.Victims), divs[0])
			}
		}
		return ""
	}
	if rep.Clean() {
		// Recovery noticed nothing. That is acceptable only when the
		// recovered state provably equals the reference (e.g. Osiris's
		// online recovery re-deriving a replayed counter line).
		if divs := c.golden(); len(divs) > 0 {
			return fmt.Sprintf("%s attack on %s went undetected and corrupted state: %s",
				c.Cell.Attack, victimList(c.Victims), divs[0])
		}
		return ""
	}
	// Detected. Enforce the location minimums each design claims.
	switch c.Cell.Attack {
	case "spoof":
		if !tamperedContains(rep, c.Victims[0]) {
			return fmt.Sprintf("spoofed block %#x not located (tampered=%v)", uint64(c.Victims[0]), rep.Tampered)
		}
	case "splice":
		for _, v := range c.Victims {
			if !tamperedContains(rep, v) {
				return fmt.Sprintf("splice endpoint %#x not located (tampered=%v)", uint64(v), rep.Tampered)
			}
		}
	case "counter-replay":
		if c.caps().EpochAtomic {
			want := c.Img.Image.Layout.CounterLineOf(c.Victims[0])
			if !mismatchContains(rep, want) {
				return fmt.Sprintf("replayed counter line %#x not located by the tree check (mismatches=%v)",
					uint64(want), rep.TreeMismatches)
			}
		}
	case "data-replay":
		if c.caps().Replay == design.ReplayPerLinePage {
			// The replayed HMAC line spans 8 neighbouring blocks, so the
			// tamper evidence may land on a neighbour; §4.4 claims page
			// granularity, and that is what the oracle demands.
			page := pageOf(c.Victims[0])
			located := pageListed(rep, page)
			for _, tb := range rep.Tampered {
				if pageOf(tb.Addr) == page {
					located = true
				}
			}
			if !located {
				return fmt.Sprintf("extension failed to localize the data replay to page %#x (pages=%v tampered=%v)",
					uint64(page), rep.ReplayedPages, rep.Tampered)
			}
		}
	case "tree-spoof":
		if c.caps().EpochAtomic && !mismatchContains(rep, c.Victims[0]) {
			return fmt.Sprintf("spoofed tree node %#x not located (mismatches=%v)",
				uint64(c.Victims[0]), rep.TreeMismatches)
		}
	}
	return ""
}

func checkEpochAtomicity(c *Context) string {
	caps := c.caps()
	if !caps.EpochAtomic {
		return ""
	}
	if c.Faulty() {
		// Torn or dropped drain writes legitimately leave the tree
		// matching neither root and skew the retry accounting; the
		// torn-write-detected oracle owns fault cells.
		return ""
	}
	rep := c.baseRep()
	treeAttacked := c.attackInPlay() &&
		(c.Cell.Attack == "counter-replay" || c.Cell.Attack == "tree-spoof")
	if !treeAttacked && rep.ConsistentRoot != "old" && rep.ConsistentRoot != "new" {
		return fmt.Sprintf("NVM tree verifies against neither root register (partial epoch leaked?): %d mismatches",
			len(rep.TreeMismatches))
	}
	if c.attackInPlay() {
		return ""
	}
	if caps.ZeroRetryRecovery {
		if rep.Nretry != 0 {
			return fmt.Sprintf("zero-retry crash image needed %d counter retries", rep.Nretry)
		}
	} else if rep.Nretry != rep.Nwb {
		return fmt.Sprintf("replay-window bookkeeping broken on a clean crash: Nretry=%d Nwb=%d", rep.Nretry, rep.Nwb)
	}
	return ""
}

func checkGoldenState(c *Context) string {
	if c.Faulty() {
		// Accepted crash loss means the latest reference state is not
		// the contract; the torn-write-detected oracle holds fault cells
		// to the versioned contract instead.
		return ""
	}
	if !c.baseRep().Clean() {
		return "" // a flagged image is not claimed to be serviceable
	}
	if c.caps().TamperOnCrash && c.attackInPlay() {
		// w/o CC cannot detect replays (its motivating defect): a clean
		// report over an attacked image asserts nothing there.
		return ""
	}
	if divs := c.golden(); len(divs) > 0 {
		return "recovered image diverges from the golden reference: " + strings.Join(divs, "; ")
	}
	return ""
}

// goldenVersions verifies the recovered image against the reference's
// version history (see VerifyImageVersions), excluding the blocks the
// report enumerates as lost or tampered, and caching the result. For
// non-arsenal designs it applies recovery first.
func (c *Context) goldenVersions() (stale []mem.Addr, divs []string) {
	excluded := map[mem.Addr]bool{}
	for _, lb := range c.baseRep().LostBlocks {
		excluded[lb.Addr] = true
	}
	for _, tb := range c.baseRep().Tampered {
		excluded[tb.Addr] = true
	}
	if c.inlinePacked() {
		return c.Ref.VerifyArsenalImageVersions(c.Img, excluded)
	}
	c.applyRecovery()
	return c.Ref.VerifyImageVersions(c.Img, excluded)
}

// checkTornWriteDetected is the tentpole oracle: on fault cells, every
// line the crash damaged must end up healed (rebuilt to a written
// version) or lost-but-detected (enumerated or covered by a loss
// verdict) — never silently accepted.
func checkTornWriteDetected(c *Context) string {
	if !c.Faulty() || c.attackInPlay() {
		return ""
	}
	rep := c.baseRep()
	stale, divs := c.goldenVersions()
	if len(divs) > 0 {
		return "recovered image silently accepts content the trace never wrote: " + divs[0]
	}
	if len(stale) > 0 && rep.Lossless() && !c.caps().TamperOnCrash {
		// Stale content is acceptable crash loss ONLY when the report
		// says so; a lossless verdict over rewound blocks is silent
		// acceptance. (w/o CC is exempt: unbounded staleness is its
		// motivating defect, and it makes no loss claims.)
		return fmt.Sprintf("block %#x recovered at a stale version but the report claims lossless recovery",
			uint64(stale[0]))
	}
	// Stuck lines the device reports must surface as media errors.
	if c.Media != nil {
		for _, ev := range c.Media.Events {
			if ev.Kind != "stuck" {
				continue
			}
			found := false
			for _, ma := range rep.MediaErrors {
				if ma == ev.Addr {
					found = true
					break
				}
			}
			if !found {
				return fmt.Sprintf("stuck line %#x not reported as a media error", uint64(ev.Addr))
			}
		}
	}
	// The post-recovery image must be self-consistent: the rebuilt tree
	// verifies against the root Apply installed. Mismatches at (or under)
	// a stuck line are waived — Apply cannot rewrite an unreadable node,
	// and the report already surfaces it as a media error. (Arsenal is
	// verified functionally pre-Apply; the generic rebuild does not
	// apply.)
	if !c.inlinePacked() && c.Recovered != nil {
		lay := c.Img.Image.Layout
		tree := bmt.New(lay, seccrypto.MustEngine(c.Img.Keys))
		stuck := c.Img.Image.Stuck
		for _, m := range tree.VerifyAll(c.Img.Image, c.Recovered.TCB.RootNew, c.Img.Image.Store.Addrs()) {
			if stuck[m.Addr] {
				continue
			}
			if m.Level < lay.TopLevel() {
				pl, pi, _ := lay.ParentOf(m.Level, m.Index)
				if stuck[lay.NodeAddr(pl, pi)] {
					continue
				}
			}
			return fmt.Sprintf("post-recovery tree mismatches the recovered root beyond any stuck line: %s", m.String())
		}
	}
	return ""
}

// checkADRBudget asserts the crash-time fault machinery kept its own
// contract: the flush count respects the energy budget, the suspects
// manifest covers every damaged line, and a cell whose crash damaged
// nothing recovers lossless.
func checkADRBudget(c *Context) string {
	if !c.Faulty() || c.Media == nil {
		return ""
	}
	rep := c.baseRep()
	if c.Cell.ADRBudget > 0 && c.Media.Flushed > c.Cell.ADRBudget {
		return fmt.Sprintf("ADR flushed %d entries over a budget of %d", c.Media.Flushed, c.Cell.ADRBudget)
	}
	suspects := map[mem.Addr]bool{}
	for _, a := range c.Img.Suspects {
		suspects[a] = true
	}
	for _, ev := range c.Media.Events {
		if ev.Kind == "stuck" {
			continue // stuck lines are reported by the device, not the manifest
		}
		if !suspects[ev.Addr] {
			return fmt.Sprintf("%s line %#x damaged at crash but missing from the suspects manifest", ev.Kind, uint64(ev.Addr))
		}
	}
	// Cry-wolf: a crash that damaged nothing and left no unserviced
	// entries must not be blamed on the media. (Clean()-side verdicts are
	// the other oracles' business — w/o CC legitimately flags its own
	// staleness as tamper.) The spare axis injects stuck lines mid-trace
	// with no crash-time fault event; when the crash lands before the
	// remaining trace has healed them through the pool, the loss those
	// lines cause is real damage, not a false alarm — so the arm only
	// fires when no such injection happened.
	if !c.attackInPlay() && c.MidTraceStuck == 0 && len(c.Media.Events) == 0 && len(c.Img.Suspects) == 0 &&
		(len(rep.LostBlocks) > 0 || len(rep.MediaErrors) > 0 || rep.CrashLossWindow) {
		return fmt.Sprintf("crash damaged nothing yet recovery reports media loss (lost=%d mediaErrs=%d window=%v)",
			len(rep.LostBlocks), len(rep.MediaErrors), rep.CrashLossWindow)
	}
	if len(c.Img.Suspects) > 0 && rep.Lossless() {
		// An unserviced WPQ entry may have dropped a write whole, leaving
		// stale self-consistent bytes no check can flag: recovery must
		// report the loss window pessimistically, never claim lossless.
		return fmt.Sprintf("suspects manifest lists %d unserviced lines yet recovery claims a lossless image",
			len(c.Img.Suspects))
	}
	return ""
}

// checkReadErrorBoundedRetry asserts transient read errors never escape
// the bounded retry (no permanent read error on a weak-only cell) and
// that the scrub pass left no weak line behind. Finite-spare cells relax
// both arms exactly as far as the degraded modes allow: a permanent read
// error is legitimate only once the pool was empty (remap-on-demand had
// nothing to draw from), and a surviving weak line only when scrub ran
// throttled or give-up remaps started failing — states a healthy-at-crash
// controller by definition never entered.
func checkReadErrorBoundedRetry(c *Context) string {
	if c.Cell.WeakPct <= 0 {
		return ""
	}
	if c.CtrlStats.PermanentReadErrors != 0 {
		if c.Cell.Spares == 0 || c.SpareStats.Remaining() > 0 {
			return fmt.Sprintf("%d reads exhausted the retry budget (transient errors must stay transient)",
				c.CtrlStats.PermanentReadErrors)
		}
	}
	if c.PostScrubWeak != 0 {
		if c.Cell.Spares == 0 || c.HealthAtCrash == store.HealthHealthy {
			return fmt.Sprintf("%d weak lines survived the scrub pass", c.PostScrubWeak)
		}
	}
	return ""
}

// checkRemapConsistency holds the persisted remap table to its contract:
// it decodes (recovery repaired any torn slot in place), its entries are
// well-formed and unique, the recovery report reflects exactly the record
// it replayed, and remapped data lines still read back as written — a
// remap must be transparent to content.
func checkRemapConsistency(c *Context) string {
	if c.Cell.Spares <= 0 {
		return ""
	}
	rec, ok, torn := nvm.LoadRemapTable(c.Img.Image.RemapTable)
	if !ok {
		return "finite-pool crash image carries no decodable remap table"
	}
	if torn {
		return "recovery left a torn remap slot unrepaired"
	}
	if rec.Total != c.SpareStats.Total {
		return fmt.Sprintf("remap table claims a pool of %d spares, device was provisioned with %d",
			rec.Total, c.SpareStats.Total)
	}
	lay := c.Img.Image.Layout
	seen := map[mem.Addr]bool{}
	for _, e := range rec.Entries {
		if e.Addr != mem.Align(e.Addr) || uint64(e.Addr) >= lay.TotalBytes() {
			return fmt.Sprintf("remap entry %#x is not a line address inside the device", uint64(e.Addr))
		}
		if seen[e.Addr] {
			return fmt.Sprintf("line %#x remapped twice (one line, one spare)", uint64(e.Addr))
		}
		seen[e.Addr] = true
	}
	rep := c.baseRep()
	if rep.SparesTotal != rec.Total || rep.SparesUsed != len(rec.Entries) {
		return fmt.Sprintf("recovery report (total=%d used=%d) disagrees with the table it replayed (total=%d used=%d)",
			rep.SparesTotal, rep.SparesUsed, rec.Total, len(rec.Entries))
	}
	// Remap transparency: a remapped data line the report does not
	// enumerate as lost must carry a version the trace wrote. The stale
	// set from the versioned walk excludes lost/tampered blocks already,
	// so any remapped member is a remap that corrupted or rewound content.
	stale, _ := c.goldenVersions()
	for _, a := range stale {
		if seen[a] {
			return fmt.Sprintf("remapped line %#x recovered at a version the report does not account for", uint64(a))
		}
	}
	return ""
}

// checkSpareAccounting reconciles the three spare ledgers — in-memory
// pool counters, persisted remap table, recovery report — and pins the
// only divergence a crash may cause: a torn commit rolling back exactly
// one record.
func checkSpareAccounting(c *Context) string {
	if c.Cell.Spares <= 0 {
		return ""
	}
	s := c.SpareStats
	if s.Total != c.Cell.Spares {
		return fmt.Sprintf("device provisioned %d spares, cell asked for %d", s.Total, c.Cell.Spares)
	}
	if s.Used < 0 || s.Used > s.Total {
		return fmt.Sprintf("spare accounting out of range: used %d of %d", s.Used, s.Total)
	}
	if s.Used != len(c.RemapEntriesAtCrash) {
		return fmt.Sprintf("%d spares consumed but %d remap entries recorded in memory",
			s.Used, len(c.RemapEntriesAtCrash))
	}
	if s.Refused > 0 && s.Used != s.Total {
		return fmt.Sprintf("%d remaps refused while %d spares remained", s.Refused, s.Remaining())
	}
	rec, ok, _ := nvm.LoadRemapTable(c.Img.Image.RemapTable)
	if !ok {
		return "" // remap-consistency owns the undecodable case
	}
	if wn := len(rec.Entries); wn != s.Used && !(c.Cell.Torn && wn == s.Used-1) {
		return fmt.Sprintf("persisted table records %d remaps, device consumed %d spares (only a torn commit may roll back, and only one record)",
			wn, s.Used)
	}
	return ""
}

// checkDegradationCorrectness asserts read-only means read-only: stores
// are refused exactly when the pool is empty, and the probe write the
// harness pushed past the front door was rejected by the controller
// itself — counted, and never persisted.
func checkDegradationCorrectness(c *Context) string {
	if c.Cell.Spares <= 0 {
		return ""
	}
	if c.RefusedStores > 0 {
		if c.SpareStats.Remaining() > 0 {
			return fmt.Sprintf("%d stores skipped as read-only while %d spares remained",
				c.RefusedStores, c.SpareStats.Remaining())
		}
		if c.HealthAtCrash != store.HealthReadOnly {
			return fmt.Sprintf("stores were refused but the controller reports %v at the crash", c.HealthAtCrash)
		}
	}
	if c.ROProbed {
		if _, ok := c.Img.Image.Store.Read(c.ROProbeAddr); ok {
			return fmt.Sprintf("read-only controller silently persisted the probe write at %#x", uint64(c.ROProbeAddr))
		}
		if c.CtrlStats.RefusedWrites == 0 {
			return "the read-only probe write vanished without being counted as refused"
		}
	}
	if c.HealthAtCrash != store.HealthReadOnly && c.CtrlStats.RefusedWrites > 0 {
		return fmt.Sprintf("%d writes refused while the controller still claimed write service (%v)",
			c.CtrlStats.RefusedWrites, c.HealthAtCrash)
	}
	return ""
}

// checkRebootConvergence is the reboot tentpole oracle: the image the
// interrupted loop converged to must be bit-identical to the golden
// clone recovered in one uninterrupted shot — store content, stuck-line
// set and the committed root registers.
func checkRebootConvergence(c *Context) string {
	if !c.rebootRan {
		return ""
	}
	got, want := c.Img.Image, c.GoldenImg.Image
	if !got.Store.Equal(want.Store) {
		for _, a := range want.Store.Addrs() {
			wl, _ := want.Store.Read(a)
			if gl, _ := got.Store.Read(a); gl != wl {
				return fmt.Sprintf("store diverges from single-shot recovery at %#x after %d interrupted passes",
					uint64(a), len(c.RebootPlans))
			}
		}
		for _, a := range got.Store.Addrs() {
			gl, _ := got.Store.Read(a)
			if wl, _ := want.Store.Read(a); gl != wl {
				return fmt.Sprintf("store diverges from single-shot recovery at %#x after %d interrupted passes",
					uint64(a), len(c.RebootPlans))
			}
		}
	}
	if len(got.Stuck) != len(want.Stuck) {
		return fmt.Sprintf("stuck-line set diverges from single-shot recovery (%d lines vs %d)",
			len(got.Stuck), len(want.Stuck))
	}
	for a := range want.Stuck {
		if !got.Stuck[a] {
			return fmt.Sprintf("line %#x stuck after single-shot recovery but not after the reboot loop", uint64(a))
		}
	}
	gt, wt := c.Recovered.TCB, c.GoldenRec.TCB
	if gt.RootNew != wt.RootNew || gt.RootOld != wt.RootOld || gt.Nwb != wt.Nwb {
		return fmt.Sprintf("committed TCB registers diverge from single-shot recovery (Nwb %d vs %d)",
			gt.Nwb, wt.Nwb)
	}
	return ""
}

// checkRebootNoNewLoss asserts interruption never worsens the verdict:
// re-entered recovery reports no loss, tamper or pessimism the
// single-shot recovery of the same image did not.
func checkRebootNoNewLoss(c *Context) string {
	if !c.rebootRan {
		return ""
	}
	g, f := c.GoldenRep, c.Rep
	if g.Clean() && !f.Clean() {
		return fmt.Sprintf("single-shot recovery is clean but the resumed report flags: mismatches=%d tampered=%d replayedPages=%d potentialReplay=%v",
			len(f.TreeMismatches), len(f.Tampered), len(f.ReplayedPages), f.PotentialReplay)
	}
	if extra := missingFrom(lostAddrs(f), lostAddrs(g)); len(extra) > 0 {
		return fmt.Sprintf("reboots turned block %#x into crash loss (single-shot recovery kept it)", uint64(extra[0]))
	}
	if extra := missingFrom(tamperedAddrs(f), tamperedAddrs(g)); len(extra) > 0 {
		return fmt.Sprintf("reboots turned block %#x into a tamper verdict (single-shot recovery kept it)", uint64(extra[0]))
	}
	if f.CrashLossWindow && !g.CrashLossWindow {
		return "reboots introduced a crash-loss window the single-shot recovery did not report"
	}
	if f.PotentialReplay && !g.PotentialReplay {
		return "reboots introduced a replay verdict the single-shot recovery did not report"
	}
	return ""
}

// checkRebootBounded asserts re-entrant designs converge within their
// declared budget: every pass's write plan is no larger than its
// predecessor's, no plan size repeats across more interrupted passes
// than the capability's stride allows, and the converged image carries
// no active journal.
func checkRebootBounded(c *Context) string {
	if !c.rebootRan || !c.caps().ReentrantRecovery {
		return ""
	}
	plans := append([]int{}, c.RebootPlans...)
	if c.FinalPlan >= 0 {
		plans = append(plans, c.FinalPlan)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i] > plans[i-1] {
			return fmt.Sprintf("recovery write plan grew across reboots: pass %d planned %d lines after %d",
				i+1, plans[i], plans[i-1])
		}
	}
	if stride := c.caps().RebootStride; c.Cell.RebootEvery >= 2 && stride > 0 {
		// Striking the first write of every pass (RebootEvery == 1) makes
		// zero progress by construction, so the stride bound only binds
		// when each pass can persist at least one record.
		run := 1
		for i := 1; i < len(c.RebootPlans); i++ {
			if c.RebootPlans[i] != c.RebootPlans[i-1] {
				run = 1
				continue
			}
			if run++; run > stride {
				return fmt.Sprintf("plan size %d repeated across %d interrupted passes (declared stride %d): recovery is not progressing",
					c.RebootPlans[i], run, stride)
			}
		}
	}
	if recovery.JournalActive(c.Img) {
		return "converged recovery left an active journal behind"
	}
	return ""
}

// lostAddrs and tamperedAddrs flatten a report's loss evidence for the
// subset checks; missingFrom returns the members of sub absent from
// super.
func lostAddrs(rep *recovery.Report) []mem.Addr {
	out := make([]mem.Addr, 0, len(rep.LostBlocks))
	for _, lb := range rep.LostBlocks {
		out = append(out, lb.Addr)
	}
	return out
}

func tamperedAddrs(rep *recovery.Report) []mem.Addr {
	out := make([]mem.Addr, 0, len(rep.Tampered))
	for _, tb := range rep.Tampered {
		out = append(out, tb.Addr)
	}
	return out
}

func missingFrom(sub, super []mem.Addr) []mem.Addr {
	in := make(map[mem.Addr]bool, len(super))
	for _, a := range super {
		in[a] = true
	}
	var out []mem.Addr
	for _, a := range sub {
		if !in[a] {
			out = append(out, a)
		}
	}
	return out
}

func tamperedContains(rep *recovery.Report, a mem.Addr) bool {
	for _, tb := range rep.Tampered {
		if tb.Addr == a {
			return true
		}
	}
	return false
}

func mismatchContains(rep *recovery.Report, a mem.Addr) bool {
	for _, m := range rep.TreeMismatches {
		if m.Addr == a {
			return true
		}
	}
	return false
}

func pageOf(a mem.Addr) mem.Addr {
	return mem.Addr(uint64(a) / mem.PageSize * mem.PageSize)
}

func pageListed(rep *recovery.Report, page mem.Addr) bool {
	for _, p := range rep.ReplayedPages {
		if p == page {
			return true
		}
	}
	return false
}

func victimList(vs []mem.Addr) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%#x", uint64(v))
	}
	return strings.Join(parts, ",")
}
