package torture

import (
	"fmt"
	"strings"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/recovery"
)

// Context carries one executed cell's evidence to the oracles: the
// reference machine, the (possibly attacked) crash image, the recovery
// report, and the bookkeeping the run recorded on the way.
type Context struct {
	Cell   Cell
	Ref    *Reference
	Img    *engine.CrashImage
	Rep    *recovery.Report
	Runner *Runner

	// AttackChanged reports whether the injected attack actually altered
	// persistent bytes; a no-op mutation leaves nothing to detect and the
	// cell is judged as a clean crash.
	AttackChanged bool
	// Victims are the attack's primary targets: data blocks for
	// spoof/splice/replay, the node address for tree-spoof.
	Victims []mem.Addr

	// RunViolations is the engine's runtime integrity-violation count at
	// the crash; ReadDivergence records the first load that returned
	// content diverging from the reference ("" when none).
	RunViolations  uint64
	ReadDivergence string

	applied    bool
	goldenDivs []string
	goldenRun  bool
}

// applyRecovery runs the runner's Apply seam once; oracles that inspect
// post-recovery state share the applied image.
func (c *Context) applyRecovery() {
	if !c.applied {
		c.Runner.applyFn()(c.Img, c.Rep)
		c.applied = true
	}
}

// golden returns the divergences between the recovered image and the
// reference machine, computing them once. Arsenal images are verified
// functionally pre-Apply (their counters and HMACs live inline in packed
// lines, which the generic Apply does not understand); every other
// design is verified bit-for-bit after Apply.
func (c *Context) golden() []string {
	if c.goldenRun {
		return c.goldenDivs
	}
	c.goldenRun = true
	if c.Cell.Design == "arsenal" {
		c.goldenDivs = c.Ref.VerifyArsenalImage(c.Img)
	} else {
		c.applyRecovery()
		c.goldenDivs = c.Ref.VerifyImage(c.Img)
	}
	return c.goldenDivs
}

// attackInPlay reports whether this cell carries an attack that changed
// persistent state.
func (c *Context) attackInPlay() bool {
	return c.Cell.Attack != "none" && c.AttackChanged
}

// Oracle is one invariant checked against every cell. Check returns ""
// on pass, otherwise a human-readable failure detail.
type Oracle struct {
	Name  string
	Doc   string
	Check func(*Context) string
}

// Oracles returns the invariant set in evaluation order; RunCell reports
// the first violation. The list is exported so documentation and the CLI
// can enumerate it.
func Oracles() []Oracle { return oracleList }

var oracleList = []Oracle{
	{
		Name: "runtime-reads",
		Doc: "Before the crash, every load returns the reference plaintext and " +
			"the engine flags zero integrity violations on its own traffic.",
		Check: checkRuntimeReads,
	},
	{
		Name: "clean-recovery",
		Doc: "A crash without an effective attack recovers with zero tamper flags " +
			"on every recoverable design (w/o CC is exempt: unbounded staleness is " +
			"its motivating defect). SC additionally needs zero counter retries.",
		Check: checkCleanRecovery,
	},
	{
		Name: "attack-caught",
		Doc: "Every injected attack that changed persistent state is detected, " +
			"and designs that claim location pin it: spoof/splice to the victim " +
			"blocks, counter replay to the victim's counter line, data replay " +
			"(ccnvm-ext) to the victim's page. A report that stays clean is " +
			"tolerated only if recovery provably healed the image back to the " +
			"reference state.",
		Check: checkAttackCaught,
	},
	{
		Name: "epoch-atomicity",
		Doc: "For epoch-draining designs the NVM tree verifies against exactly " +
			"one root register (drains are all-or-nothing), and on clean crashes " +
			"the recovery retries account exactly for the replay window (Nretry " +
			"== Nwb; 0 for SC).",
		Check: checkEpochAtomicity,
	},
	{
		Name: "golden-state",
		Doc: "Whenever recovery reports clean, the recovered image must match the " +
			"golden unmemoized reference machine bit-for-bit: counter lines, " +
			"decrypted data and stored HMACs.",
		Check: checkGoldenState,
	},
}

func checkRuntimeReads(c *Context) string {
	if c.ReadDivergence != "" {
		return c.ReadDivergence
	}
	if c.RunViolations != 0 {
		return fmt.Sprintf("engine flagged %d integrity violations on untampered traffic", c.RunViolations)
	}
	return ""
}

func checkCleanRecovery(c *Context) string {
	if c.attackInPlay() {
		return "" // attack-caught owns attacked cells
	}
	if c.Cell.Design == "wocc" {
		return "" // legitimately unrecoverable; golden-state still guards its clean cases
	}
	if !c.Rep.Clean() {
		return fmt.Sprintf("clean crash flagged: mismatches=%d tampered=%d replayedPages=%d potentialReplay=%v (Nwb=%d Nretry=%d)",
			len(c.Rep.TreeMismatches), len(c.Rep.Tampered), len(c.Rep.ReplayedPages),
			c.Rep.PotentialReplay, c.Rep.Nwb, c.Rep.Nretry)
	}
	if c.Cell.Design == "sc" && (c.Rep.Nretry != 0 || c.Rep.RecoveredBlocks != 0) {
		return fmt.Sprintf("SC persists the full path per write-back yet recovery needed %d retries over %d blocks",
			c.Rep.Nretry, c.Rep.RecoveredBlocks)
	}
	return ""
}

func checkAttackCaught(c *Context) string {
	if !c.attackInPlay() || c.Cell.Design == "wocc" {
		// w/o CC cannot distinguish an attack from its own staleness;
		// attacked wocc cells assert nothing.
		return ""
	}
	rep := c.Rep
	if rep.Clean() {
		// Recovery noticed nothing. That is acceptable only when the
		// recovered state provably equals the reference (e.g. Osiris's
		// online recovery re-deriving a replayed counter line).
		if divs := c.golden(); len(divs) > 0 {
			return fmt.Sprintf("%s attack on %s went undetected and corrupted state: %s",
				c.Cell.Attack, victimList(c.Victims), divs[0])
		}
		return ""
	}
	// Detected. Enforce the location minimums each design claims.
	switch c.Cell.Attack {
	case "spoof":
		if !tamperedContains(rep, c.Victims[0]) {
			return fmt.Sprintf("spoofed block %#x not located (tampered=%v)", uint64(c.Victims[0]), rep.Tampered)
		}
	case "splice":
		for _, v := range c.Victims {
			if !tamperedContains(rep, v) {
				return fmt.Sprintf("splice endpoint %#x not located (tampered=%v)", uint64(v), rep.Tampered)
			}
		}
	case "counter-replay":
		if treePersisting(c.Cell.Design) {
			want := c.Img.Image.Layout.CounterLineOf(c.Victims[0])
			if !mismatchContains(rep, want) {
				return fmt.Sprintf("replayed counter line %#x not located by the tree check (mismatches=%v)",
					uint64(want), rep.TreeMismatches)
			}
		}
	case "data-replay":
		if c.Cell.Design == "ccnvm-ext" {
			// The replayed HMAC line spans 8 neighbouring blocks, so the
			// tamper evidence may land on a neighbour; §4.4 claims page
			// granularity, and that is what the oracle demands.
			page := pageOf(c.Victims[0])
			located := pageListed(rep, page)
			for _, tb := range rep.Tampered {
				if pageOf(tb.Addr) == page {
					located = true
				}
			}
			if !located {
				return fmt.Sprintf("extension failed to localize the data replay to page %#x (pages=%v tampered=%v)",
					uint64(page), rep.ReplayedPages, rep.Tampered)
			}
		}
	case "tree-spoof":
		if treePersisting(c.Cell.Design) && !mismatchContains(rep, c.Victims[0]) {
			return fmt.Sprintf("spoofed tree node %#x not located (mismatches=%v)",
				uint64(c.Victims[0]), rep.TreeMismatches)
		}
	}
	return ""
}

func checkEpochAtomicity(c *Context) string {
	if !treePersisting(c.Cell.Design) {
		return ""
	}
	rep := c.Rep
	treeAttacked := c.attackInPlay() &&
		(c.Cell.Attack == "counter-replay" || c.Cell.Attack == "tree-spoof")
	if !treeAttacked && rep.ConsistentRoot != "old" && rep.ConsistentRoot != "new" {
		return fmt.Sprintf("NVM tree verifies against neither root register (partial epoch leaked?): %d mismatches",
			len(rep.TreeMismatches))
	}
	if c.attackInPlay() {
		return ""
	}
	switch c.Cell.Design {
	case "sc":
		if rep.Nretry != 0 {
			return fmt.Sprintf("SC crash image needed %d counter retries", rep.Nretry)
		}
	default: // ccnvm, ccnvm-wods, ccnvm-ext
		if rep.Nretry != rep.Nwb {
			return fmt.Sprintf("replay-window bookkeeping broken on a clean crash: Nretry=%d Nwb=%d", rep.Nretry, rep.Nwb)
		}
	}
	return ""
}

func checkGoldenState(c *Context) string {
	if !c.Rep.Clean() {
		return "" // a flagged image is not claimed to be serviceable
	}
	if c.Cell.Design == "wocc" && c.attackInPlay() {
		// w/o CC cannot detect replays (its motivating defect): a clean
		// report over an attacked image asserts nothing there.
		return ""
	}
	if divs := c.golden(); len(divs) > 0 {
		return "recovered image diverges from the golden reference: " + strings.Join(divs, "; ")
	}
	return ""
}

func tamperedContains(rep *recovery.Report, a mem.Addr) bool {
	for _, tb := range rep.Tampered {
		if tb.Addr == a {
			return true
		}
	}
	return false
}

func mismatchContains(rep *recovery.Report, a mem.Addr) bool {
	for _, m := range rep.TreeMismatches {
		if m.Addr == a {
			return true
		}
	}
	return false
}

func pageOf(a mem.Addr) mem.Addr {
	return mem.Addr(uint64(a) / mem.PageSize * mem.PageSize)
}

func pageListed(rep *recovery.Report, page mem.Addr) bool {
	for _, p := range rep.ReplayedPages {
		if p == page {
			return true
		}
	}
	return false
}

func victimList(vs []mem.Addr) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%#x", uint64(v))
	}
	return strings.Join(parts, ",")
}
