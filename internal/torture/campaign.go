package torture

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// Class is one durability behavior class a campaign cell lands in.
// Every executed cell is classified — the campaign's report is a
// complete census, not a failure list.
type Class string

const (
	// ClassClean: crash (possibly with an ineffective attack) and a
	// recovery reporting no tamper evidence and a lossless image.
	ClassClean Class = "clean"
	// ClassHealed: something was damaged — an effective attack whose
	// rewind counter recovery legitimately replays, or media faults —
	// and recovery restored a clean, lossless image anyway.
	ClassHealed Class = "healed"
	// ClassLostDetected: acknowledged writes were lost, and recovery
	// says so — enumerated lost blocks, media errors, a bounded loss
	// window, or (for designs without crash consistency) a blanket
	// staleness flag. Loss without a lie.
	ClassLostDetected Class = "lost-but-detected"
	// ClassTamperCaught: an effective attack was flagged by recovery.
	ClassTamperCaught Class = "tampered-caught"
	// ClassOracleFailure: the cell violated an oracle — on a healthy
	// tree this class is populated only by the campaign's deliberate
	// sabotage section, which proves the harness still has teeth.
	ClassOracleFailure Class = "oracle-failure"
)

// Classes lists the behavior classes in report order.
func Classes() []Class {
	return []Class{ClassClean, ClassHealed, ClassLostDetected, ClassTamperCaught, ClassOracleFailure}
}

// classDoc is the fixed prose describing each class in the report.
func classDoc(cl Class) string {
	switch cl {
	case ClassClean:
		return "A crash (or an attack that changed nothing) followed by a recovery that reports no tamper evidence and restores every acknowledged write."
	case ClassHealed:
		return "Something was damaged — an attack inside the replay window, or media faults at the power failure — and recovery restored a clean, lossless image anyway."
	case ClassLostDetected:
		return "Acknowledged writes were lost and recovery says so: enumerated lost blocks, media errors, a bounded loss window, or a blanket staleness flag on designs without crash consistency. Loss without a lie."
	case ClassTamperCaught:
		return "An attack that changed persistent bytes was flagged by recovery (located where the design's capabilities promise location)."
	case ClassOracleFailure:
		return "The cell violated an invariant oracle. On a healthy tree only the deliberate ordering-sabotage section below populates this class."
	}
	return string(cl)
}

// Outcome is one classified campaign cell.
type Outcome struct {
	Cell   Cell   `json:"cell"`
	Class  Class  `json:"class"`
	Detail string `json:"detail"`
	Oracle string `json:"oracle,omitempty"` // set for oracle-failure outcomes
}

// ClassifyCell executes one cell and classifies its behavior. Panics
// are converted like RunCell's.
func (r *Runner) ClassifyCell(c Cell) (out Outcome) {
	c = c.normalized()
	out = Outcome{Cell: c}
	defer func() {
		if p := recover(); p != nil {
			out.Class = ClassOracleFailure
			out.Oracle = "panic"
			out.Detail = fmt.Sprintf("cell panicked: %v", p)
		}
	}()
	ctx, fail := r.runCell(c)
	if fail != nil {
		return Outcome{Cell: c, Class: ClassOracleFailure, Detail: fail.Detail, Oracle: fail.Oracle}
	}
	cl, detail := classify(ctx)
	return Outcome{Cell: c, Class: cl, Detail: detail}
}

// classify maps a passing cell's evidence to its behavior class. The
// mapping leans on the oracles having already passed: e.g. a non-clean
// report without an attack can only be a tamper-on-crash design's
// blanket staleness flag, anything else would have failed
// clean-recovery.
func classify(ctx *Context) (Class, string) {
	rep := ctx.baseRep()
	switch {
	case ctx.attackInPlay() && !rep.Clean():
		return ClassTamperCaught, fmt.Sprintf(
			"%s attack flagged: %d tampered blocks, %d tree mismatches, %d replayed pages, potential-replay=%v",
			ctx.Cell.Attack, len(rep.Tampered), len(rep.TreeMismatches), len(rep.ReplayedPages), rep.PotentialReplay)
	case ctx.attackInPlay():
		return ClassHealed, fmt.Sprintf(
			"%s attack healed: the rewind sits inside the replay window and counter recovery restores it (%d blocks re-derived)",
			ctx.Cell.Attack, rep.RecoveredBlocks)
	case !rep.Clean():
		return ClassLostDetected, fmt.Sprintf(
			"crash staleness flagged: %d tree mismatches, %d tampered blocks on a design that cannot distinguish its own crash loss from tampering",
			len(rep.TreeMismatches), len(rep.Tampered))
	case !rep.Lossless():
		return ClassLostDetected, fmt.Sprintf(
			"crash loss surfaced: %d lost blocks, %d media errors, loss-window=%v",
			len(rep.LostBlocks), len(rep.MediaErrors), rep.CrashLossWindow)
	case ctx.Media != nil && len(ctx.Media.Events) > 0:
		return ClassHealed, fmt.Sprintf(
			"%d media-fault events at the crash healed: recovery clean and lossless", len(ctx.Media.Events))
	}
	return ClassClean, fmt.Sprintf(
		"clean crash, clean recovery (%d blocks re-derived, root=%q)",
		rep.RecoveredBlocks, rep.ConsistentRoot)
}

// CampaignSpec is the campaign's fixed configuration as it appears in
// the JSON artifact.
type CampaignSpec struct {
	Designs    []string `json:"designs"`
	Workloads  []string `json:"workloads"`
	Attacks    []string `json:"attacks"`
	Seeds      int      `json:"seeds"`
	Ops        int      `json:"ops"`
	CrashPts   int      `json:"crash_points"`
	FaultSeeds int      `json:"fault_seeds,omitempty"`
	Reboots    int      `json:"reboots,omitempty"`
}

// Exemplar is one class's representative cell: the first cell of the
// class in enumeration order, with the one-line command that replays it
// and the exit code that command must produce.
type Exemplar struct {
	Cell     Cell   `json:"cell"`
	Detail   string `json:"detail"`
	Oracle   string `json:"oracle,omitempty"`
	Repro    string `json:"repro"`
	ExitCode int    `json:"exit_code"`
}

// ClassSummary is one row of the campaign census.
type ClassSummary struct {
	Class    Class     `json:"class"`
	Cells    int       `json:"cells"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// SabotageResult records the campaign's ordering-sabotage self-test:
// the reorder-persist defect run over the pinned slice under both
// enumeration modes at equal cell budget.
type SabotageResult struct {
	Mode        string `json:"mode"`
	GuidedCells int    `json:"guided_cells"`
	RandomCells int    `json:"random_cells"`
	Caught      bool   `json:"caught"`
	RandomMiss  bool   `json:"random_missed"`
	Oracle      string `json:"oracle,omitempty"`
	Detail      string `json:"detail,omitempty"`
	ShrinkRuns  int    `json:"shrink_runs,omitempty"`
	Repro       string `json:"repro,omitempty"`
	ExitCode    int    `json:"exit_code"`
}

// CampaignResult is the durability campaign's complete, deterministic
// outcome: the census over behavior classes, the guided-mode edge
// coverage, and the sabotage self-test.
type CampaignResult struct {
	Schema   int            `json:"schema"`
	Spec     CampaignSpec   `json:"spec"`
	Cells    int            `json:"cells"`
	Classes  []ClassSummary `json:"classes"`
	Coverage []CoverageStat `json:"edge_coverage"`
	Sabotage SabotageResult `json:"sabotage"`
}

// CampaignSchema versions the artifact.
const CampaignSchema = 1

// DefaultCampaignOpts is the slice `make campaign` runs: every design,
// two workloads, the full attack set, media faults and reboot loops —
// sized so the campaign finishes in seconds and every behavior class
// has cells to populate it.
func DefaultCampaignOpts() MatrixOpts {
	return MatrixOpts{
		Workloads:  []string{"hot", "mixed"},
		Seeds:      2,
		Ops:        200,
		CrashPts:   3,
		FaultSeeds: 3,
		Reboots:    2,
	}
}

// Healthy reports whether the campaign saw no real oracle failures and
// the sabotage self-test behaved as designed (guided caught the
// injected bug, random missed it).
func (res *CampaignResult) Healthy() bool {
	for _, cs := range res.Classes {
		if cs.Class == ClassOracleFailure && cs.Cells > 0 {
			return false
		}
	}
	return res.Sabotage.Caught && res.Sabotage.RandomMiss
}

// RunCampaign executes the durability campaign: guided enumeration of
// o, every cell classified, plus the pinned ordering-sabotage
// self-test. The result is deterministic for fixed options — cells are
// classified on a worker pool but collected by index, and nothing
// depends on time or scheduling.
func RunCampaign(ctx context.Context, o MatrixOpts, parallel int) (*CampaignResult, error) {
	o = o.withDefaults()
	cells, stats, err := EnumerateGuidedCells(o)
	if err != nil {
		return nil, err
	}
	outcomes := classifyCells(ctx, DefaultRunner(), cells, parallel)

	res := &CampaignResult{
		Schema: CampaignSchema,
		Spec: CampaignSpec{
			Designs:    o.Designs,
			Workloads:  o.Workloads,
			Attacks:    o.Attacks,
			Seeds:      o.Seeds,
			Ops:        o.Ops,
			CrashPts:   o.CrashPts,
			FaultSeeds: o.FaultSeeds,
			Reboots:    o.Reboots,
		},
		Cells:    len(cells),
		Coverage: stats,
	}
	for _, cl := range Classes() {
		cs := ClassSummary{Class: cl}
		for _, out := range outcomes {
			if out.Class != cl {
				continue
			}
			cs.Cells++
			if cs.Exemplar == nil {
				code := 0
				if cl == ClassOracleFailure {
					code = 1
				}
				cs.Exemplar = &Exemplar{
					Cell:     out.Cell,
					Detail:   out.Detail,
					Oracle:   out.Oracle,
					Repro:    out.Cell.Repro(),
					ExitCode: code,
				}
			}
		}
		res.Classes = append(res.Classes, cs)
	}
	res.Sabotage = runSabotageSection(ctx)
	return res, nil
}

// classifyCells classifies every cell on a worker pool, collecting
// outcomes by index so the census is deterministic under parallelism.
func classifyCells(ctx context.Context, r *Runner, cells []Cell, parallel int) []Outcome {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cells) && len(cells) > 0 {
		parallel = len(cells)
	}
	outcomes := make([]Outcome, len(cells))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				outcomes[i] = r.ClassifyCell(cells[i])
			}
		}()
	}
	for i := range cells {
		select {
		case <-ctx.Done():
		case idxCh <- i:
		}
	}
	close(idxCh)
	wg.Wait()
	return outcomes
}

// runSabotageSection runs the reorder-persist defect over the pinned
// slice in both enumeration modes at equal budget, shrinking the guided
// catch into the report's oracle-failure exemplar.
func runSabotageSection(ctx context.Context) SabotageResult {
	res := SabotageResult{Mode: "reorder-persist", ExitCode: 1}
	br, err := BrokenRunner(res.Mode)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	opts := SabotageMatrixOpts()
	randomCells := EnumerateCells(opts)
	guidedCells, _, err := EnumerateGuidedCells(opts)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	res.GuidedCells = len(guidedCells)
	res.RandomCells = len(randomCells)

	res.RandomMiss = !RunMatrix(ctx, br, randomCells, 0, nil).Failed()
	guided := RunMatrix(ctx, br, guidedCells, 0, nil)
	if guided.Failed() {
		f := guided.Failures[0]
		res.Caught = true
		res.Oracle = f.Oracle
		res.Detail = f.Detail
		res.ShrinkRuns = f.ShrinkRuns
		res.Repro = fmt.Sprintf("go run ./cmd/ccnvm-torture -break %s -repro '%s'", res.Mode, f.Cell.String())
	}
	return res
}

// RenderJSON encodes the campaign artifact exactly as the CLI writes
// it.
func (res *CampaignResult) RenderJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RenderMarkdown renders the durability report. artifact is the name of
// the JSON artifact written beside the report. The output is
// deterministic: no timestamps, no environment, cell order fixed by
// enumeration — regenerating the report after a behavior change yields
// a reviewable diff and `make campaign-short` asserts byte-identity in
// CI.
func (res *CampaignResult) RenderMarkdown(artifact string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# Durability report\n\n")
	fmt.Fprintf(&b, "A complete census of the fixed-seed torture campaign: every executed\n")
	fmt.Fprintf(&b, "cell lands in exactly one behavior class below, and every observed class\n")
	fmt.Fprintf(&b, "carries a one-line repro of its exemplar cell with the exit code that\n")
	fmt.Fprintf(&b, "command must produce. Crash points are chosen by guided persist-ordering\n")
	fmt.Fprintf(&b, "enumeration (`internal/porder`); the coverage table at the bottom scores\n")
	fmt.Fprintf(&b, "them against evenly spaced points of equal budget.\n\n")
	fmt.Fprintf(&b, "Regenerate with `make campaign`; `make campaign-short` (part of `make ci`)\n")
	fmt.Fprintf(&b, "asserts this file is byte-identical to a fresh run.\n\n")

	s := res.Spec
	fmt.Fprintf(&b, "Campaign: designs=%s; workloads=%s; attacks=%s; seeds=%d; ops=%d;\n",
		strings.Join(s.Designs, ","), strings.Join(s.Workloads, ","), strings.Join(s.Attacks, ","), s.Seeds, s.Ops)
	fmt.Fprintf(&b, "guided crash points (≤%d per trace); fault seeds=%d; reboot loops=%d.\n",
		s.CrashPts, s.FaultSeeds, s.Reboots)
	fmt.Fprintf(&b, "Cells executed: %d. Machine-readable artifact: [`%s`](%s).\n\n", res.Cells, artifact, artifact)

	fmt.Fprintf(&b, "## Behavior classes\n\n")
	fmt.Fprintf(&b, "| class | cells | exemplar exit |\n|---|---:|---:|\n")
	for _, cs := range res.Classes {
		exit := "—"
		if cs.Exemplar != nil {
			exit = fmt.Sprintf("%d", cs.Exemplar.ExitCode)
		}
		fmt.Fprintf(&b, "| %s | %d | %s |\n", cs.Class, cs.Cells, exit)
	}
	fmt.Fprintf(&b, "\n")
	for _, cs := range res.Classes {
		fmt.Fprintf(&b, "### %s — %d cells\n\n", cs.Class, cs.Cells)
		fmt.Fprintf(&b, "%s\n\n", classDoc(cs.Class))
		if cs.Exemplar == nil {
			if cs.Class == ClassOracleFailure {
				fmt.Fprintf(&b, "No cell violated an oracle; the sabotage section below proves the\nclass is reachable.\n\n")
			} else {
				fmt.Fprintf(&b, "Not observed in this campaign.\n\n")
			}
			continue
		}
		ex := cs.Exemplar
		fmt.Fprintf(&b, "Exemplar: %s\n\n", ex.Detail)
		fmt.Fprintf(&b, "- repro: `%s`\n", ex.Repro)
		fmt.Fprintf(&b, "- expected exit code: %d\n", ex.ExitCode)
		fmt.Fprintf(&b, "- artifact: `%s` → `classes[%s].exemplar`\n\n", artifact, cs.Class)
	}

	sab := res.Sabotage
	fmt.Fprintf(&b, "## Ordering-sabotage self-test\n\n")
	fmt.Fprintf(&b, "The `%s` break mode injects a controller bug that delays one write's\n", sab.Mode)
	fmt.Fprintf(&b, "durability past the next epoch commit — observable only at a crash point\n")
	fmt.Fprintf(&b, "inside that single persist-ordering edge. At equal cell budget (%d guided\n", sab.GuidedCells)
	fmt.Fprintf(&b, "vs %d evenly spaced cells on the pinned slice):\n\n", sab.RandomCells)
	if sab.Caught {
		fmt.Fprintf(&b, "- guided mode CAUGHT it: oracle `%s`, shrunk in %d runs — %s\n", sab.Oracle, sab.ShrinkRuns, sab.Detail)
		fmt.Fprintf(&b, "- repro: `%s`\n", sab.Repro)
		fmt.Fprintf(&b, "- expected exit code: %d\n", sab.ExitCode)
	} else {
		fmt.Fprintf(&b, "- guided mode MISSED the injected bug — the guided enumeration has regressed\n")
	}
	if sab.RandomMiss {
		fmt.Fprintf(&b, "- evenly spaced points at the same budget passed cleanly: the bug is\n  invisible to uniform sampling, which is the argument for guided mode\n\n")
	} else {
		fmt.Fprintf(&b, "- evenly spaced points ALSO caught it — the pinned window drifted; re-tune\n  `SabotageMatrixOpts`\n\n")
	}

	fmt.Fprintf(&b, "## Edge coverage (guided vs evenly spaced, equal point budget)\n\n")
	fmt.Fprintf(&b, "| design | workload | edges | cuttable | guided cut | random cut | guided %% | random %% |\n")
	fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---:|---:|\n")
	for _, st := range res.Coverage {
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %d | %.1f | %.1f |\n",
			st.Design, st.Workload, st.EdgesTotal, st.EdgesCuttable,
			st.GuidedCut, st.RandomCut, 100*st.GuidedCoverage(), 100*st.RandomCoverage())
	}
	fmt.Fprintf(&b, "\n")
	return []byte(b.String())
}
