package torture

import (
	"context"
	"testing"
)

// TestLongMatrix is the extended matrix, gated behind -torture.long:
//
//	go test ./internal/torture/ -torture.long -timeout 30m
//
// It widens every axis (seeds, crash points, both update limits, longer
// traces) and runs the full cross product with no budget.
func TestLongMatrix(t *testing.T) {
	if !*tortureLong {
		t.Skip("extended matrix runs only with -torture.long")
	}
	opts := MatrixOpts{
		Seeds:      8,
		Ops:        600,
		CrashPts:   6,
		Ns:         []uint64{2, 4, 16, 64},
		FaultSeeds: 20,
	}
	cells := EnumerateCells(opts)
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, func(done, total int, f *Failure) {
		if done%1000 == 0 {
			t.Logf("%d/%d cells", done, total)
		}
	})
	for _, f := range sum.Failures {
		t.Errorf("%s\n  repro: %s", f.Error(), f.Repro)
	}
	t.Logf("%s", sum.Describe())
}
