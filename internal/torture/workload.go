package torture

import (
	"fmt"
	"math/rand"

	"ccnvm/internal/mem"
	"ccnvm/internal/trace"
)

// The harness uses small, torture-specific workload profiles rather than
// the benchmark replicas in trace/profiles.go: cells run a few hundred
// operations, so footprints are sized to exercise the interesting
// machinery (shared counter lines, drains, overflow) within that budget.
// "hammer" is generated directly instead of through a Profile because it
// must concentrate stores far beyond what HotFraction can express: one
// line absorbing hundreds of consecutive write-backs is what drives
// minor-counter overflow and pushes w/o-CC past its retry bound.

var tortureProfiles = map[string]trace.Profile{
	// hot: store-heavy with a small hot set; many write-backs land on the
	// same pages, sharing counter lines and tree ancestors.
	"hot": {
		Name: "torture-hot", FootprintPages: 48, HotPages: 6, HotFraction: 0.8,
		SeqRun: 1, StoreFraction: 0.7, MeanGap: 4, DepFraction: 0.2,
	},
	// stream: sequential runs across a larger footprint; counter lines
	// are touched once and spread wide.
	"stream": {
		Name: "torture-stream", FootprintPages: 96, HotPages: 96, HotFraction: 0,
		SeqRun: 12, AccessesPerLine: 1, StoreFraction: 0.6, MeanGap: 2, DepFraction: 0.1,
	},
	// mixed: loads and stores interleaved over a mid-sized set, so the
	// read path (and its fetch-verify machinery) runs between crashes.
	"mixed": {
		Name: "torture-mixed", FootprintPages: 64, HotPages: 12, HotFraction: 0.55,
		SeqRun: 4, StoreFraction: 0.45, MeanGap: 8, DepFraction: 0.35,
	},
}

// WorkloadNames lists the harness's workload profiles.
func WorkloadNames() []string { return []string{"hot", "stream", "mixed", "hammer"} }

// GenOps materializes the cell's operation stream: deterministic in
// (name, seed), and prefix-stable — GenOps(name, seed, k) is always the
// first k elements of GenOps(name, seed, n) for k <= n, which the
// shrinker relies on when it cuts traces.
func GenOps(name string, seed int64, n int) ([]trace.Op, error) {
	if name == "hammer" {
		return hammerOps(seed, n), nil
	}
	p, ok := tortureProfiles[name]
	if !ok {
		return nil, fmt.Errorf("torture: unknown workload %q", name)
	}
	g, err := trace.NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	return trace.Collect(g, n), nil
}

// hammerOps pounds a handful of lines with stores: roughly 3/4 of the
// operations hit one victim line. A few hundred ops overflow its minor
// counter (forcing page re-encryption) and leave w/o-CC's persistent
// counters stale far beyond any retry bound.
func hammerOps(seed int64, n int) []trace.Op {
	rng := rand.New(rand.NewSource(seed))
	lines := []mem.Addr{
		mem.Addr(rng.Intn(16)) * mem.PageSize,
		mem.Addr(rng.Intn(16))*mem.PageSize + 2*mem.LineSize,
		mem.Addr(16+rng.Intn(16)) * mem.PageSize,
		mem.Addr(32+rng.Intn(16))*mem.PageSize + 7*mem.LineSize,
	}
	ops := make([]trace.Op, n)
	for i := range ops {
		a := lines[0]
		if rng.Intn(4) == 0 {
			a = lines[rng.Intn(len(lines))]
		}
		kind := trace.Store
		if rng.Intn(8) == 0 {
			kind = trace.Load
		}
		ops[i] = trace.Op{Kind: kind, Addr: a, Gap: uint16(rng.Intn(6))}
	}
	return ops
}
