package torture

import (
	"fmt"
	"strings"

	"ccnvm/internal/design/names"
	"ccnvm/internal/engine"
	"ccnvm/internal/porder"
	"ccnvm/internal/trace"
)

// CoverageStat is one design×workload row of the edge-coverage table a
// guided enumeration produces. Counts aggregate over the row's traces
// (one graph per seed). Each row also scores the evenly spaced crash
// points of equal count on the same graphs, so guided and random
// placement are directly comparable at identical budget: GuidedCut and
// RandomCut count the distinct persist-ordering edges each placement
// cuts out of EdgesCuttable.
type CoverageStat struct {
	Design        string `json:"design"`
	Workload      string `json:"workload"`
	Traces        int    `json:"traces"`
	EdgesTotal    int    `json:"edges_total"`
	EdgesCuttable int    `json:"edges_cuttable"`
	GuidedPoints  int    `json:"guided_points"`
	GuidedCut     int    `json:"guided_cut"`
	RandomPoints  int    `json:"random_points"`
	RandomCut     int    `json:"random_cut"`
}

// GuidedCoverage is the fraction of cuttable edges the guided points
// cut; RandomCoverage the same for the evenly spaced points.
func (s CoverageStat) GuidedCoverage() float64 { return frac(s.GuidedCut, s.EdgesCuttable) }

// RandomCoverage is the evenly spaced placement's edge-coverage
// fraction on the same graphs.
func (s CoverageStat) RandomCoverage() float64 { return frac(s.RandomCut, s.EdgesCuttable) }

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// ProfileTrace drives the full (design, workload, seed, ops, n) trace
// on a fresh faultless engine with a persist-order recorder attached
// and returns the resulting ordering graph. The drive loop mirrors
// RunCell's exactly, so the event op tags align with the harness's
// crash-point semantics: a cell crashing at k observes precisely the
// events tagged Op < k.
func ProfileTrace(designName, workload string, seed int64, ops int, n uint64) (*porder.Graph, error) {
	trOps, err := GenOps(workload, seed, ops)
	if err != nil {
		return nil, err
	}
	eng, ctrl, err := BuildEngine(designName, engine.Params{UpdateLimit: n}, nil)
	if err != nil {
		return nil, err
	}
	rec := porder.NewRecorder()
	rec.Attach(ctrl)
	now := int64(0)
	for i, op := range trOps {
		rec.BeginOp(i)
		now += int64(op.Gap)
		switch op.Kind {
		case trace.Store:
			now = eng.WriteBack(now, op.Addr, pattern(op.Addr, byte(i))) + 8
		case trace.Load:
			_, done := eng.ReadBlock(now, op.Addr)
			now = done + 8
		}
	}
	if err := ctrl.Err(); err != nil {
		return nil, fmt.Errorf("torture: profiling %s/%s seed %d: %w", designName, workload, seed, err)
	}
	return porder.Build(rec.Events()), nil
}

// EnumerateGuidedCells is EnumerateCells's ordering-aware counterpart:
// instead of dividing each trace evenly, it profiles the trace's
// persist-ordering graph and schedules one crash point per distinct
// edge cut (greedy set cover, at most CrashPts points — the same
// per-trace budget the random matrix spends). Traces pin their update
// limit by seed so one profiling run serves all of the trace's crash
// points. Fault and reboot cells ride along unchanged — their crash
// points probe media damage and re-entrancy, not ordering — and the
// budget applies after the same refusal filtering as the random
// matrix, so -budget sweeps are mode-comparable.
func EnumerateGuidedCells(o MatrixOpts) ([]Cell, []CoverageStat, error) {
	o = o.withDefaults()
	var cells []Cell
	var stats []CoverageStat
	for _, d := range o.Designs {
		for _, w := range o.Workloads {
			st := CoverageStat{Design: d, Workload: w}
			for seed := 0; seed < o.Seeds; seed++ {
				n := o.Ns[seed%len(o.Ns)]
				g, err := ProfileTrace(d, w, int64(seed), o.Ops, n)
				if err != nil {
					return nil, nil, err
				}
				guided := g.EnumeratePoints(o.CrashPts, o.Ops)
				random := porder.EvenPoints(o.CrashPts, o.Ops)
				st.Traces++
				st.EdgesTotal += len(g.Edges)
				st.EdgesCuttable += g.CuttableCount()
				st.GuidedPoints += len(guided)
				st.GuidedCut += len(g.CutSet(guided))
				st.RandomPoints += len(random)
				st.RandomCut += len(g.CutSet(random))
				for _, cp := range guided {
					for _, atk := range o.Attacks {
						cells = append(cells, Cell{
							Design:   d,
							Workload: w,
							Seed:     int64(seed),
							Ops:      o.Ops,
							CrashAt:  cp,
							Attack:   atk,
							N:        n,
						}.normalized())
					}
				}
			}
			stats = append(stats, st)
		}
	}
	cells = appendFaultCells(cells, o)
	cells = appendRebootCells(cells, o)
	return applyBudget(cells, o), stats, nil
}

// SabotageMatrixOpts is the pinned matrix slice of the guided-mode
// self-test: under the reorder-persist sabotage (BrokenRunner), the
// guided enumeration of this slice must catch the injected ordering
// bug while the evenly spaced enumeration of the SAME slice — the same
// cell budget — passes cleanly. The numbers are empirical and fixed
// forever: on this trace the victim-write→commit window is ops
// (66,100], the evenly spaced points land at 53 and 106 (both
// outside), and the guided set cover picks a point inside it.
func SabotageMatrixOpts() MatrixOpts {
	return MatrixOpts{
		Designs:   []string{names.CCNVM},
		Workloads: []string{"mixed"},
		Attacks:   []string{"none"},
		Seeds:     1,
		Ops:       160,
		CrashPts:  2,
		Ns:        []uint64{4},
	}
}

// DescribeCoverage renders the edge-coverage table for text output.
func DescribeCoverage(stats []CoverageStat) string {
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "edge coverage (guided vs evenly spaced, equal point budget):\n")
	fmt.Fprintf(&b, "  %-12s %-8s %6s %9s %7s %7s\n", "design", "workload", "edges", "cuttable", "guided", "random")
	for _, s := range stats {
		fmt.Fprintf(&b, "  %-12s %-8s %6d %9d %6.1f%% %6.1f%%\n",
			s.Design, s.Workload, s.EdgesTotal, s.EdgesCuttable,
			100*s.GuidedCoverage(), 100*s.RandomCoverage())
	}
	return b.String()
}
