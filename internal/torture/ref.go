package torture

import (
	"fmt"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// Reference is the golden machine the differential oracles compare
// against: a serial, unmemoized model of what the architecture promises.
// It mirrors every write-back at the semantic level — split-counter bump
// (including minor overflow), latest plaintext, write count — using
// seccrypto's uncached engine, so none of the memo tables, caches,
// queues or drain policies under test can influence the expected state.
type Reference struct {
	cry      *seccrypto.Engine
	lay      *mem.Layout
	counters map[mem.Addr]seccrypto.CounterLine
	plain    map[mem.Addr]mem.Line
	writes   map[mem.Addr]uint64
}

// NewReference builds a reference machine over the harness layout.
func NewReference(lay *mem.Layout, keys seccrypto.Keys) *Reference {
	cry, err := seccrypto.NewEngineUncached(keys)
	if err != nil {
		panic(err)
	}
	return &Reference{
		cry:      cry,
		lay:      lay,
		counters: make(map[mem.Addr]seccrypto.CounterLine),
		plain:    make(map[mem.Addr]mem.Line),
		writes:   make(map[mem.Addr]uint64),
	}
}

// WriteBack mirrors one dirty eviction: bump the block's split counter
// (with the same overflow semantics as the engines) and remember the
// plaintext as the block's expected content.
func (r *Reference) WriteBack(addr mem.Addr, pt mem.Line) {
	addr = mem.Align(addr)
	ca := r.lay.CounterLineOf(addr)
	cl := r.counters[ca]
	cl.Bump(r.lay.CounterSlotOf(addr))
	r.counters[ca] = cl
	r.plain[addr] = pt
	r.writes[addr]++
}

// Plaintext returns the expected content of addr (zero if never
// written, matching the never-written NVM semantics).
func (r *Reference) Plaintext(addr mem.Addr) mem.Line {
	return r.plain[mem.Align(addr)]
}

// CounterOf returns the expected effective counter of data block addr.
func (r *Reference) CounterOf(addr mem.Addr) uint64 {
	cl := r.counters[r.lay.CounterLineOf(addr)]
	return cl.Counter(r.lay.CounterSlotOf(addr))
}

// Written returns the written data addresses in ascending order.
func (r *Reference) Written() []mem.Addr {
	out := make([]mem.Addr, 0, len(r.plain))
	for a := range r.plain {
		out = append(out, a)
	}
	sortAddrs(out)
	return out
}

// WriteCounts returns a copy of the per-block write counts; replay
// attacks use the counts at snapshot time to pick meaningful victims.
func (r *Reference) WriteCounts() map[mem.Addr]uint64 {
	cp := make(map[mem.Addr]uint64, len(r.writes))
	for a, n := range r.writes {
		cp[a] = n
	}
	return cp
}

// maxDivergences bounds how many divergences a verify pass reports; one
// is enough to fail a cell, a handful is enough to debug it.
const maxDivergences = 5

// VerifyImage checks a post-Apply crash image of a conventional-layout
// design against the reference, bit-for-bit: every touched counter line
// must equal the reference encoding exactly, and every written block
// must decrypt (with uncached crypto) to the reference plaintext and
// carry the matching stored data HMAC. It returns the divergences, empty
// when the image is golden.
func (r *Reference) VerifyImage(img *engine.CrashImage) []string {
	var divs []string
	add := func(format string, args ...interface{}) bool {
		if len(divs) == maxDivergences {
			divs = append(divs, "... more divergences suppressed")
			return false
		}
		if len(divs) > maxDivergences {
			return false
		}
		divs = append(divs, fmt.Sprintf(format, args...))
		return true
	}
	cas := make([]mem.Addr, 0, len(r.counters))
	for ca := range r.counters {
		cas = append(cas, ca)
	}
	sortAddrs(cas)
	for _, ca := range cas {
		cl := r.counters[ca]
		raw, _ := img.Image.Read(ca)
		if raw != cl.Encode() {
			got := seccrypto.DecodeCounterLine(raw)
			if !add("counter line %#x diverges from reference (got %s, want %s)",
				uint64(ca), got.String(), cl.String()) {
				return divs
			}
		}
	}
	for _, a := range r.Written() {
		ct, _ := img.Image.Read(a)
		ctr := r.CounterOf(a)
		if got := r.cry.Decrypt(a, ctr, ct); got != r.plain[a] {
			if !add("data block %#x does not decrypt to the reference plaintext (counter %d)",
				uint64(a), ctr) {
				return divs
			}
			continue
		}
		if r.storedHMAC(img, a) != r.cry.DataHMAC(a, ctr, ct) {
			if !add("stored HMAC of block %#x diverges from reference (counter %d)",
				uint64(a), ctr) {
				return divs
			}
		}
	}
	return divs
}

// VerifyArsenalImage checks an Arsenal crash image (pre-Apply; the
// generic Apply does not understand packed lines). Packed blocks carry
// counter and HMAC inline, so the check unpacks each written line and
// compares plaintext and counter against the reference; raw-fallback
// blocks follow the conventional decrypt-and-authenticate check.
func (r *Reference) VerifyArsenalImage(img *engine.CrashImage) []string {
	var divs []string
	for _, a := range r.Written() {
		if len(divs) >= maxDivergences {
			divs = append(divs, "... more divergences suppressed")
			return divs
		}
		line, _ := img.Image.Read(a)
		want := r.CounterOf(a)
		if img.Sideband[a] == engine.TagPacked {
			pt, ctr, ok := engine.UnpackArsenalLine(r.cry, a, line)
			switch {
			case !ok:
				divs = append(divs, fmt.Sprintf("packed block %#x fails inline authentication", uint64(a)))
			case ctr != want:
				divs = append(divs, fmt.Sprintf("packed block %#x carries counter %d, reference %d", uint64(a), ctr, want))
			case pt != r.plain[a]:
				divs = append(divs, fmt.Sprintf("packed block %#x decrypts to wrong plaintext", uint64(a)))
			}
			continue
		}
		if got := r.cry.Decrypt(a, want, line); got != r.plain[a] {
			divs = append(divs, fmt.Sprintf("raw block %#x does not decrypt to the reference plaintext (counter %d)", uint64(a), want))
			continue
		}
		if r.storedHMAC(img, a) != r.cry.DataHMAC(a, want, line) {
			divs = append(divs, fmt.Sprintf("stored HMAC of raw block %#x diverges from reference", uint64(a)))
		}
	}
	return divs
}

// storedHMAC extracts the stored data HMAC of block a from the image,
// synthesizing the never-written default line when absent — the same
// rule recovery and the runtime read path apply.
func (r *Reference) storedHMAC(img *engine.CrashImage, a mem.Addr) seccrypto.HMAC {
	ha, hslot := r.lay.HMACLineOf(a)
	hl, ok := img.Image.Read(ha)
	if !ok {
		lineIdx := uint64(ha-r.lay.HMACBase) / mem.LineSize
		for s := 0; s < mem.HMACsPerLine; s++ {
			da := mem.Addr((lineIdx*mem.HMACsPerLine + uint64(s)) * mem.LineSize)
			seccrypto.PutHMAC(&hl, s, r.cry.DataHMAC(da, 0, mem.Line{}))
		}
	}
	return seccrypto.GetHMAC(hl, hslot)
}
