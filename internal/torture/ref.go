package torture

import (
	"fmt"
	"slices"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/seccrypto"
)

// Reference is the golden machine the differential oracles compare
// against: a serial, unmemoized model of what the architecture promises.
// It mirrors every write-back at the semantic level — split-counter bump
// (including minor overflow), latest plaintext, write count — using
// seccrypto's uncached engine, so none of the memo tables, caches,
// queues or drain policies under test can influence the expected state.
type Reference struct {
	cry      *seccrypto.Engine
	lay      *mem.Layout
	counters map[mem.Addr]seccrypto.CounterLine
	plain    map[mem.Addr]mem.Line
	writes   map[mem.Addr]uint64
	history  map[mem.Addr][]version
}

// version is one acceptable post-crash state of a data block: the
// effective counter and plaintext a specific write (or minor-overflow
// re-encryption) gave it. The media-fault oracles verify recovered
// blocks against the history, not just the latest state — a partial ADR
// drain may legitimately leave a block at an older version, which is
// crash loss the report must own, while content matching no version is
// fabrication.
type version struct {
	Ctr uint64
	Pt  mem.Line
}

// NewReference builds a reference machine over the harness layout.
func NewReference(lay *mem.Layout, keys seccrypto.Keys) *Reference {
	cry, err := seccrypto.NewEngineUncached(keys)
	if err != nil {
		panic(err)
	}
	return &Reference{
		cry:      cry,
		lay:      lay,
		counters: make(map[mem.Addr]seccrypto.CounterLine),
		plain:    make(map[mem.Addr]mem.Line),
		writes:   make(map[mem.Addr]uint64),
		history:  make(map[mem.Addr][]version),
	}
}

// WriteBack mirrors one dirty eviction: bump the block's split counter
// (with the same overflow semantics as the engines) and remember the
// plaintext as the block's expected content.
func (r *Reference) WriteBack(addr mem.Addr, pt mem.Line) {
	addr = mem.Align(addr)
	ca := r.lay.CounterLineOf(addr)
	slot := r.lay.CounterSlotOf(addr)
	cl := r.counters[ca]
	overflow := cl.Bump(slot)
	r.counters[ca] = cl
	if overflow {
		// A minor overflow re-encrypts every written block of the page
		// under its new effective counter (the engines persist that
		// immediately), so each gains a fresh acceptable version with
		// unchanged plaintext.
		for b, bpt := range r.plain {
			if b != addr && r.lay.CounterLineOf(b) == ca {
				r.history[b] = append(r.history[b],
					version{Ctr: cl.Counter(r.lay.CounterSlotOf(b)), Pt: bpt})
			}
		}
	}
	r.plain[addr] = pt
	r.writes[addr]++
	r.history[addr] = append(r.history[addr], version{Ctr: cl.Counter(slot), Pt: pt})
}

// Plaintext returns the expected content of addr (zero if never
// written, matching the never-written NVM semantics).
func (r *Reference) Plaintext(addr mem.Addr) mem.Line {
	return r.plain[mem.Align(addr)]
}

// CounterOf returns the expected effective counter of data block addr.
func (r *Reference) CounterOf(addr mem.Addr) uint64 {
	cl := r.counters[r.lay.CounterLineOf(addr)]
	return cl.Counter(r.lay.CounterSlotOf(addr))
}

// Written returns the written data addresses in ascending order.
func (r *Reference) Written() []mem.Addr {
	out := make([]mem.Addr, 0, len(r.plain))
	for a := range r.plain {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// WriteCounts returns a copy of the per-block write counts; replay
// attacks use the counts at snapshot time to pick meaningful victims.
func (r *Reference) WriteCounts() map[mem.Addr]uint64 {
	cp := make(map[mem.Addr]uint64, len(r.writes))
	for a, n := range r.writes {
		cp[a] = n
	}
	return cp
}

// maxDivergences bounds how many divergences a verify pass reports; one
// is enough to fail a cell, a handful is enough to debug it.
const maxDivergences = 5

// VerifyImage checks a post-Apply crash image of a conventional-layout
// design against the reference, bit-for-bit: every touched counter line
// must equal the reference encoding exactly, and every written block
// must decrypt (with uncached crypto) to the reference plaintext and
// carry the matching stored data HMAC. It returns the divergences, empty
// when the image is golden.
func (r *Reference) VerifyImage(img *engine.CrashImage) []string {
	var divs []string
	add := func(format string, args ...interface{}) bool {
		if len(divs) == maxDivergences {
			divs = append(divs, "... more divergences suppressed")
			return false
		}
		if len(divs) > maxDivergences {
			return false
		}
		divs = append(divs, fmt.Sprintf(format, args...))
		return true
	}
	cas := make([]mem.Addr, 0, len(r.counters))
	for ca := range r.counters {
		cas = append(cas, ca)
	}
	slices.Sort(cas)
	for _, ca := range cas {
		cl := r.counters[ca]
		raw, _ := img.Image.Read(ca)
		if raw != cl.Encode() {
			got := seccrypto.DecodeCounterLine(raw)
			if !add("counter line %#x diverges from reference (got %s, want %s)",
				uint64(ca), got.String(), cl.String()) {
				return divs
			}
		}
	}
	for _, a := range r.Written() {
		ct, _ := img.Image.Read(a)
		ctr := r.CounterOf(a)
		if got := r.cry.Decrypt(a, ctr, ct); got != r.plain[a] {
			if !add("data block %#x does not decrypt to the reference plaintext (counter %d)",
				uint64(a), ctr) {
				return divs
			}
			continue
		}
		if r.storedHMAC(img, a) != r.cry.DataHMAC(a, ctr, ct) {
			if !add("stored HMAC of block %#x diverges from reference (counter %d)",
				uint64(a), ctr) {
				return divs
			}
		}
	}
	return divs
}

// VerifyArsenalImage checks an Arsenal crash image (pre-Apply; the
// generic Apply does not understand packed lines). Packed blocks carry
// counter and HMAC inline, so the check unpacks each written line and
// compares plaintext and counter against the reference; raw-fallback
// blocks follow the conventional decrypt-and-authenticate check.
func (r *Reference) VerifyArsenalImage(img *engine.CrashImage) []string {
	var divs []string
	for _, a := range r.Written() {
		if len(divs) >= maxDivergences {
			divs = append(divs, "... more divergences suppressed")
			return divs
		}
		line, _ := img.Image.Read(a)
		want := r.CounterOf(a)
		if img.Sideband[a] == engine.TagPacked {
			pt, ctr, ok := engine.UnpackArsenalLine(r.cry, a, line)
			switch {
			case !ok:
				divs = append(divs, fmt.Sprintf("packed block %#x fails inline authentication", uint64(a)))
			case ctr != want:
				divs = append(divs, fmt.Sprintf("packed block %#x carries counter %d, reference %d", uint64(a), ctr, want))
			case pt != r.plain[a]:
				divs = append(divs, fmt.Sprintf("packed block %#x decrypts to wrong plaintext", uint64(a)))
			}
			continue
		}
		if got := r.cry.Decrypt(a, want, line); got != r.plain[a] {
			divs = append(divs, fmt.Sprintf("raw block %#x does not decrypt to the reference plaintext (counter %d)", uint64(a), want))
			continue
		}
		if r.storedHMAC(img, a) != r.cry.DataHMAC(a, want, line) {
			divs = append(divs, fmt.Sprintf("stored HMAC of raw block %#x diverges from reference", uint64(a)))
		}
	}
	return divs
}

// VerifyImageVersions checks a post-Apply crash image of a
// conventional-layout design against the reference's version history
// instead of its latest state: every written block (minus the excluded
// set, the blocks the report enumerated as lost or tampered) must
// authenticate as SOME state the trace actually produced — the latest
// version, an older one, or the implicit virgin state of a block whose
// every write dropped. Blocks at a non-latest version are returned as
// stale (acceptable crash loss the recovery report must own); content
// matching no version at all is a divergence — recovery silently
// accepted bytes the trace never wrote.
func (r *Reference) VerifyImageVersions(img *engine.CrashImage, excluded map[mem.Addr]bool) (stale []mem.Addr, divs []string) {
	for _, a := range r.Written() {
		if excluded[a] {
			continue
		}
		if len(divs) >= maxDivergences {
			divs = append(divs, "... more divergences suppressed")
			return stale, divs
		}
		old, div := r.checkBlockVersion(img, a)
		switch {
		case div != "":
			divs = append(divs, div)
		case old:
			stale = append(stale, a)
		}
	}
	return stale, divs
}

// VerifyArsenalImageVersions is the Arsenal analogue (pre-Apply, like
// VerifyArsenalImage): packed blocks carry counter and plaintext inline,
// raw-fallback blocks follow the conventional check.
func (r *Reference) VerifyArsenalImageVersions(img *engine.CrashImage, excluded map[mem.Addr]bool) (stale []mem.Addr, divs []string) {
	for _, a := range r.Written() {
		if excluded[a] {
			continue
		}
		if len(divs) >= maxDivergences {
			divs = append(divs, "... more divergences suppressed")
			return stale, divs
		}
		if img.Sideband[a] != engine.TagPacked {
			old, div := r.checkBlockVersion(img, a)
			switch {
			case div != "":
				divs = append(divs, div)
			case old:
				stale = append(stale, a)
			}
			continue
		}
		line, ok := img.Image.Read(a)
		if !ok && line == (mem.Line{}) {
			// Virgin media under a packed tag: the block's every write
			// dropped before reaching the device — stale at version 0.
			stale = append(stale, a)
			continue
		}
		pt, ctr, authed := engine.UnpackArsenalLine(r.cry, a, line)
		if !authed {
			divs = append(divs, fmt.Sprintf("packed block %#x fails inline authentication", uint64(a)))
			continue
		}
		v, known := r.versionAt(a, ctr)
		switch {
		case !known:
			divs = append(divs, fmt.Sprintf("packed block %#x carries counter %d, which no write of the trace produced", uint64(a), ctr))
		case pt != v.Pt:
			divs = append(divs, fmt.Sprintf("packed block %#x authenticates at counter %d but holds content the trace never wrote there", uint64(a), ctr))
		case ctr != r.CounterOf(a):
			stale = append(stale, a)
		}
	}
	return stale, divs
}

// checkBlockVersion classifies one conventional-layout block against the
// version history: ("", false) → latest, ("", true) → an older written
// version or the virgin state, otherwise a divergence message.
func (r *Reference) checkBlockVersion(img *engine.CrashImage, a mem.Addr) (stale bool, div string) {
	raw, _ := img.Image.Read(r.lay.CounterLineOf(a))
	cl := seccrypto.DecodeCounterLine(raw)
	ctrImg := cl.Counter(r.lay.CounterSlotOf(a))
	ct, _ := img.Image.Read(a)
	stored := r.storedHMAC(img, a)
	if ctrImg == 0 {
		// The implicit version 0: counter, data and HMAC all still at
		// their never-written defaults.
		if ct == (mem.Line{}) && stored == r.cry.DataHMAC(a, 0, mem.Line{}) {
			return true, ""
		}
		return false, fmt.Sprintf("block %#x sits at counter 0 with non-virgin content", uint64(a))
	}
	v, known := r.versionAt(a, ctrImg)
	switch {
	case !known:
		return false, fmt.Sprintf("block %#x carries counter %d, which no write of the trace produced", uint64(a), ctrImg)
	case stored != r.cry.DataHMAC(a, ctrImg, ct):
		return false, fmt.Sprintf("block %#x fails authentication at counter %d", uint64(a), ctrImg)
	case r.cry.Decrypt(a, ctrImg, ct) != v.Pt:
		return false, fmt.Sprintf("block %#x authenticates at counter %d but decrypts to content the trace never wrote there", uint64(a), ctrImg)
	}
	return ctrImg != r.CounterOf(a), ""
}

// versionAt finds the history entry of block a carrying the given
// effective counter; counters are strictly increasing per block, so a
// match is unique.
func (r *Reference) versionAt(a mem.Addr, ctr uint64) (version, bool) {
	h := r.history[mem.Align(a)]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Ctr == ctr {
			return h[i], true
		}
	}
	return version{}, false
}

// storedHMAC extracts the stored data HMAC of block a from the image,
// synthesizing the never-written default line when absent — the same
// rule recovery and the runtime read path apply.
func (r *Reference) storedHMAC(img *engine.CrashImage, a mem.Addr) seccrypto.HMAC {
	ha, hslot := r.lay.HMACLineOf(a)
	hl, ok := img.Image.Read(ha)
	if !ok {
		lineIdx := uint64(ha-r.lay.HMACBase) / mem.LineSize
		for s := 0; s < mem.HMACsPerLine; s++ {
			da := mem.Addr((lineIdx*mem.HMACsPerLine + uint64(s)) * mem.LineSize)
			seccrypto.PutHMAC(&hl, s, r.cry.DataHMAC(da, 0, mem.Line{}))
		}
	}
	return seccrypto.GetHMAC(hl, hslot)
}
