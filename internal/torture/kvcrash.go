package torture

import (
	"errors"
	"fmt"
	"math/rand"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/recovery"
	"ccnvm/internal/store"
)

// KV torture cells crash the KV namespace at host-write granularity:
// the facade's ArmCrash strikes the (CrashWrite+1)-th write, so
// sweeping CrashWrite from 0 until a run completes uncrashed visits
// every write boundary inside every batch — including between a
// frame's payload lines and its commit header. After the full
// recovery path (four-step walk, journal resume under the reboot-loop
// axis), the recovered namespace is judged against the prefix states
// of the issued batch sequence:
//
//   - kv-clean-recovery: an un-attacked crash must recover clean.
//   - kv-acked-durable: every acknowledged batch is applied.
//   - kv-no-ghosts: nothing beyond the issued batches appears.
//   - kv-batch-atomic: the namespace equals state-after-batch-j for
//     some j in [acked, issued] — no partial batch is ever visible.
//
// The compaction axis (CompactEvery > 0) runs a garbage-collection pass
// after every CompactEvery-th acknowledged batch, so the crash sweep
// also lands inside the pass's copy, commit and reclaim phases. Compact
// cells swap the seq-based prefix oracle for four compaction ones:
//
//   - kv-compact-lost-acked: a key acknowledged in every reachable
//     prefix state vanished through compact+crash+recover.
//   - kv-no-ghost-resurrection: a key deleted (or never written) in
//     every reachable prefix state came back.
//   - kv-compact-gen: the recovered manifest generation diverges from
//     the in-memory generation at the crash — the single-slot-write
//     commit tore.
//   - kv-reclaim-monotonic: a second reopen over the recovered store
//     found more lines to reclaim — reclaim did not converge.
//   - kv-compact-idempotent (reboot axis only): the reboot-looped
//     recovery disagrees with a single-shot recovery of the same image.
type KVCell struct {
	Design       string `json:"design"`
	Seed         int64  `json:"seed"`
	Batches      int    `json:"batches"`
	CrashWrite   int    `json:"crash_write"`             // -1: never crash
	Reboots      int    `json:"reboots,omitempty"`       // reboot-loop axis passes
	RebootEvery  int    `json:"reboot_every,omitempty"`  // strike the k-th recovery write
	CompactEvery int    `json:"compact_every,omitempty"` // compact after every k-th acked batch
}

// KVCapacity sizes KV cells' stores: small enough that a full crash
// sweep across every write boundary stays fast.
const KVCapacity = 1 << 20

func (c KVCell) String() string {
	s := fmt.Sprintf("kv design=%s seed=%d batches=%d crash-write=%d", c.Design, c.Seed, c.Batches, c.CrashWrite)
	if c.Reboots > 0 {
		s += fmt.Sprintf(" reboots=%d every=%d", c.Reboots, c.RebootEvery)
	}
	if c.CompactEvery > 0 {
		s += fmt.Sprintf(" compact-every=%d", c.CompactEvery)
	}
	return s
}

// Validate rejects malformed cells and designs whose capability sheet
// cannot honor the KV contract: a namespace needs every acknowledged
// write to survive a clean crash (CrashConsistent) and a recovery that
// does not cry wolf (w/o CC flags every crash as tampering, so there
// is no clean image to rebuild a keymap from).
func (c KVCell) Validate() error {
	d, ok := design.Lookup(c.Design)
	if !ok {
		return design.UnknownError(c.Design)
	}
	if !d.Caps.CrashConsistent || d.Caps.TamperOnCrash {
		return fmt.Errorf("torture: design %s is not crash-consistent; KV cells do not apply", c.Design)
	}
	if c.Batches < 1 {
		return fmt.Errorf("torture: kv cell needs at least 1 batch, got %d", c.Batches)
	}
	if c.Reboots > 0 && c.RebootEvery < 1 {
		return fmt.Errorf("torture: kv reboot axis needs reboot-every >= 1, got %d", c.RebootEvery)
	}
	if c.CompactEvery < 0 {
		return fmt.Errorf("torture: kv compact-every must be >= 0, got %d", c.CompactEvery)
	}
	return nil
}

// KVDesigns lists the registered designs KV cells apply to.
func KVDesigns() []string {
	var out []string
	for _, d := range design.All() {
		if d.Caps.CrashConsistent && !d.Caps.TamperOnCrash {
			out = append(out, d.Name)
		}
	}
	return out
}

// genKVBatches derives the cell's deterministic batch sequence: ops
// over a 16-key pool with multi-line values and occasional deletes, so
// frames span several lines and crash points land inside payloads.
func genKVBatches(seed int64, n int) [][]kv.Op {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	batches := make([][]kv.Op, n)
	for i := range batches {
		ops := make([]kv.Op, 1+rng.Intn(4))
		for j := range ops {
			key := []byte(fmt.Sprintf("key-%02d", rng.Intn(16)))
			if rng.Intn(5) == 0 {
				ops[j] = kv.Op{Kind: kv.OpDelete, Key: key}
				continue
			}
			val := make([]byte, rng.Intn(150))
			for b := range val {
				val[b] = byte(rng.Intn(256))
			}
			ops[j] = kv.Op{Kind: kv.OpPut, Key: key, Val: val}
		}
		batches[i] = ops
	}
	return batches
}

// kvApply folds a batch into a model state (nil value = absent).
func kvApply(state map[string][]byte, ops []kv.Op) {
	for _, op := range ops {
		if op.Kind == kv.OpDelete {
			delete(state, string(op.Key))
		} else {
			state[string(op.Key)] = op.Val
		}
	}
}

func kvCloneState(s map[string][]byte) map[string][]byte {
	cp := make(map[string][]byte, len(s))
	for k, v := range s {
		cp[k] = v
	}
	return cp
}

// RunKVCell executes one KV cell end to end: drive batches into a
// fresh namespace, crash at the armed write boundary, recover through
// the runner's seams (honoring the reboot-loop axis), reopen the
// namespace and check the four KV oracles. struck reports whether the
// armed crash point fired — a sweep stops once it no longer does.
func (r *Runner) RunKVCell(c KVCell) (fail *Failure, struck bool) {
	defer func() {
		if p := recover(); p != nil {
			fail = &Failure{Oracle: "panic", Detail: fmt.Sprintf("kv cell panicked: %v (%s)", p, c)}
			struck = false
		}
	}()
	if err := c.Validate(); err != nil {
		return &Failure{Oracle: "cell-spec", Detail: err.Error()}, false
	}
	params := engine.Params{UpdateLimit: 16, QueueEntries: 64}
	st, err := store.Open(store.Options{Design: c.Design, Capacity: KVCapacity, Params: params})
	if err != nil {
		return &Failure{Oracle: "cell-spec", Detail: err.Error()}, false
	}
	db, err := kv.Open(st, kv.Options{})
	if err != nil {
		return &Failure{Oracle: "cell-spec", Detail: err.Error()}, false
	}
	if r.ArmDB != nil {
		r.ArmDB(c, db)
	}

	batches := genKVBatches(c.Seed, c.Batches)
	// Prefix states: states[j] is the namespace after batches [0,j).
	states := make([]map[string][]byte, len(batches)+1)
	states[0] = map[string][]byte{}
	for i, b := range batches {
		states[i+1] = kvCloneState(states[i])
		kvApply(states[i+1], b)
	}

	if c.CrashWrite >= 0 {
		st.ArmCrash(c.CrashWrite)
	}
	acked, issued := 0, 0
	for i, b := range batches {
		issued = i + 1
		err := db.Batch(b)
		if err == nil {
			acked = issued
			if c.CompactEvery > 0 && acked%c.CompactEvery == 0 {
				if cerr := db.Compact(); cerr != nil {
					if errors.Is(cerr, store.ErrCrashed) {
						struck = true
						break
					}
					return &Failure{Oracle: "kv-compact-error",
						Detail: fmt.Sprintf("compaction pass after batch %d failed pre-crash: %v (%s)", i, cerr, c)}, false
				}
			}
			continue
		}
		if errors.Is(err, store.ErrCrashed) {
			struck = true
			break
		}
		return &Failure{Oracle: "kv-batch-error", Detail: fmt.Sprintf("batch %d failed pre-crash: %v (%s)", i, err, c)}, false
	}
	memGen := db.Generation()
	img := db.Crash()
	// The idempotence oracle recovers a pristine clone single-shot; the
	// reboot loop below mutates img in place.
	var goldenImg *engine.CrashImage
	if c.CompactEvery > 0 && c.Reboots > 0 {
		goldenImg = img.Clone()
	}

	rep := r.recoverFn()(img)
	if !rep.Clean() {
		return &Failure{Oracle: "kv-clean-recovery",
			Detail: fmt.Sprintf("un-attacked KV crash flagged: tampered=%d mismatches=%d (%s)",
				len(rep.Tampered), len(rep.TreeMismatches), c)}, struck
	}
	rec, fail := r.kvRecover(c, img, rep)
	if fail != nil {
		return fail, struck
	}

	st2, err := store.OpenRecovered(img, rec, store.Options{Params: params})
	if err != nil {
		return &Failure{Oracle: "kv-clean-recovery", Detail: fmt.Sprintf("reopen after recovery: %v (%s)", err, c)}, struck
	}
	db2, err := kv.Open(st2, kv.Options{})
	if err != nil {
		return &Failure{Oracle: "kv-clean-recovery", Detail: fmt.Sprintf("keymap rebuild: %v (%s)", err, c)}, struck
	}

	if c.CompactEvery > 0 {
		// Compaction renumbers frames, so the seq-based prefix oracle
		// does not apply; compact cells get the compaction oracles.
		return r.checkKVCompact(c, db2, st2, states, acked, issued, memGen, goldenImg), struck
	}

	recovered := int(db2.Stats().Seq)
	switch {
	case recovered < acked:
		return &Failure{Oracle: "kv-acked-durable",
			Detail: fmt.Sprintf("recovered %d batches but %d were acknowledged (%s)", recovered, acked, c)}, struck
	case recovered > issued:
		return &Failure{Oracle: "kv-no-ghosts",
			Detail: fmt.Sprintf("recovered %d batches but only %d were issued (%s)", recovered, issued, c)}, struck
	}
	want := states[recovered]
	live := 0
	for k := range allKVKeys(states[:issued+1]) {
		got, ok, err := db2.Get([]byte(k))
		if err != nil {
			return &Failure{Oracle: "kv-batch-atomic", Detail: fmt.Sprintf("post-recovery get %s: %v (%s)", k, err, c)}, struck
		}
		wv, wok := want[k]
		if ok != wok || (ok && string(got) != string(wv)) {
			return &Failure{Oracle: "kv-batch-atomic",
				Detail: fmt.Sprintf("key %s diverges from prefix state %d (present=%v want %v) — partial batch visible (%s)",
					k, recovered, ok, wok, c)}, struck
		}
		if wok {
			live++
		}
	}
	if got := db2.Stats().Keys; got != live {
		return &Failure{Oracle: "kv-no-ghosts",
			Detail: fmt.Sprintf("recovered keymap has %d keys, prefix state %d has %d (%s)", got, recovered, live, c)}, struck
	}
	return nil, struck
}

// kvRecover applies the recovery via the runner seams, running the
// reboot-loop axis when the cell asks for it: each pass interrupts
// Apply at its RebootEvery-th persisted recovery write, recovery
// re-enters on the half-applied image, and a final uninterrupted pass
// must commit.
func (r *Runner) kvRecover(c KVCell, img *engine.CrashImage, rep *recovery.Report) (recovery.Recovered, *Failure) {
	if c.Reboots <= 0 {
		return r.applyFn()(img, rep), nil
	}
	for pass := 1; pass <= c.Reboots; pass++ {
		itr := &recovery.Interrupt{After: c.RebootEvery, Seq: uint64(pass)}
		rec, ok := r.applyInterruptedFn()(img, rep, itr)
		if ok {
			return rec, nil
		}
		rep = r.recoverFn()(img)
		if !rep.Clean() {
			return recovery.Recovered{}, &Failure{Oracle: "kv-clean-recovery",
				Detail: fmt.Sprintf("re-entered recovery pass %d flagged a clean KV image (%s)", pass, c)}
		}
	}
	rec, ok := r.applyInterruptedFn()(img, rep, &recovery.Interrupt{Seq: uint64(c.Reboots + 1)})
	if !ok {
		return recovery.Recovered{}, &Failure{Oracle: "kv-reboot-bounded",
			Detail: fmt.Sprintf("uninterrupted final recovery pass failed to commit (%s)", c)}
	}
	return rec, nil
}

// checkKVCompact judges a recovered compact cell. The frame seq is not
// the batch count once a pass has renumbered the log, so the oracle
// matches the recovered contents against the reachable prefix states
// directly: the namespace must equal states[j] exactly for some j in
// [acked, issued]. A failed match is classified — a key live after
// recovery but dead in every reachable state is a resurrection; a key
// live in every reachable state but gone is a lost acked write; anything
// else is a visible partial batch. On top of that, the manifest
// generation must have survived the crash exactly (the commit is one
// slot write — it either happened or it did not), reclaim must converge
// (a second reopen finds nothing more to zero), and under the reboot
// axis the looped recovery must agree with a single-shot one.
func (r *Runner) checkKVCompact(c KVCell, db2 *kv.DB, st2 *store.Store, states []map[string][]byte, acked, issued int, memGen uint64, goldenImg *engine.CrashImage) *Failure {
	if g := db2.Generation(); g != memGen {
		return &Failure{Oracle: "kv-compact-gen",
			Detail: fmt.Sprintf("recovered manifest generation %d, but the namespace was at %d when power failed — the compaction commit tore (%s)", g, memGen, c)}
	}
	keys := allKVKeys(states[:issued+1])
	got := map[string][]byte{}
	for k := range keys {
		v, ok, err := db2.Get([]byte(k))
		if err != nil {
			return &Failure{Oracle: "kv-batch-atomic", Detail: fmt.Sprintf("post-recovery get %s: %v (%s)", k, err, c)}
		}
		if ok {
			got[k] = v
		}
	}
	match := -1
	for j := acked; j <= issued; j++ {
		if kvStateEqual(got, states[j]) {
			match = j
			break
		}
	}
	if match < 0 {
		ghost, lost := "", ""
		for k := range keys {
			_, liveNow := got[k]
			anyPresent, allPresent := false, true
			for j := acked; j <= issued; j++ {
				if _, ok := states[j][k]; ok {
					anyPresent = true
				} else {
					allPresent = false
				}
			}
			if liveNow && !anyPresent {
				ghost = k
			}
			if !liveNow && allPresent {
				lost = k
			}
		}
		switch {
		case ghost != "":
			return &Failure{Oracle: "kv-no-ghost-resurrection",
				Detail: fmt.Sprintf("key %s is live after recovery but dead in every reachable prefix state [%d,%d] — compaction resurrected it (%s)", ghost, acked, issued, c)}
		case lost != "":
			return &Failure{Oracle: "kv-compact-lost-acked",
				Detail: fmt.Sprintf("key %s is live in every reachable prefix state [%d,%d] but gone after recovery — compaction lost an acknowledged write (%s)", lost, acked, issued, c)}
		default:
			return &Failure{Oracle: "kv-batch-atomic",
				Detail: fmt.Sprintf("recovered namespace matches no prefix state in [%d,%d] — partial batch visible through compaction (%s)", acked, issued, c)}
		}
	}
	if gotKeys, want := db2.Stats().Keys, len(states[match]); gotKeys != want {
		return &Failure{Oracle: "kv-no-ghosts",
			Detail: fmt.Sprintf("recovered keymap has %d keys, prefix state %d has %d (%s)", gotKeys, match, want, c)}
	}

	// Space-reclaimed-monotonic: the first reopen is allowed (required)
	// to finish an interrupted pass's reclaim; a second reopen over the
	// same recovered store must find nothing left to zero.
	db3, err := kv.Open(st2, kv.Options{})
	if err != nil {
		return &Failure{Oracle: "kv-clean-recovery", Detail: fmt.Sprintf("second keymap rebuild: %v (%s)", err, c)}
	}
	if cs := db3.Stats().Compaction; cs != nil && cs.ReclaimedLines != 0 {
		return &Failure{Oracle: "kv-reclaim-monotonic",
			Detail: fmt.Sprintf("second reopen reclaimed %d more lines — reclaim did not converge (%s)", cs.ReclaimedLines, c)}
	}

	// Compaction-idempotent across the reboot loop: recovering the same
	// crash image in one uninterrupted pass must land on the same
	// namespace the interrupted-and-resumed passes did.
	if goldenImg != nil {
		grep := r.recoverFn()(goldenImg)
		if !grep.Clean() {
			return &Failure{Oracle: "kv-clean-recovery",
				Detail: fmt.Sprintf("single-shot recovery of the golden clone flagged a clean image (%s)", c)}
		}
		grec := r.applyFn()(goldenImg, grep)
		stG, err := store.OpenRecovered(goldenImg, grec, store.Options{Params: engine.Params{UpdateLimit: 16, QueueEntries: 64}})
		if err != nil {
			return &Failure{Oracle: "kv-compact-idempotent", Detail: fmt.Sprintf("golden reopen: %v (%s)", err, c)}
		}
		dbG, err := kv.Open(stG, kv.Options{})
		if err != nil {
			return &Failure{Oracle: "kv-compact-idempotent", Detail: fmt.Sprintf("golden keymap rebuild: %v (%s)", err, c)}
		}
		if dbG.Generation() != db2.Generation() {
			return &Failure{Oracle: "kv-compact-idempotent",
				Detail: fmt.Sprintf("reboot-looped recovery landed on generation %d, single-shot on %d (%s)", db2.Generation(), dbG.Generation(), c)}
		}
		for k := range keys {
			gv, gok, err := dbG.Get([]byte(k))
			if err != nil {
				return &Failure{Oracle: "kv-compact-idempotent", Detail: fmt.Sprintf("golden get %s: %v (%s)", k, err, c)}
			}
			wv, wok := got[k]
			if gok != wok || (gok && string(gv) != string(wv)) {
				return &Failure{Oracle: "kv-compact-idempotent",
					Detail: fmt.Sprintf("key %s diverges between reboot-looped and single-shot recovery (%s)", k, c)}
			}
		}
	}
	return nil
}

// kvStateEqual compares a recovered contents map against a model prefix
// state: same key set, same values.
func kvStateEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || string(v) != string(w) {
			return false
		}
	}
	return true
}

// ShrinkKVCell minimizes a failing KV cell while preserving the violated
// oracle, re-running candidates against the same runner. Phases: drop
// the reboot axis, drop the crash entirely (a cell that fails uncrashed
// is the simplest repro there is), halve the batch count toward one,
// tighten the compaction stride, then bisect and walk the crash write
// downward. Spends at most budget runs; returns the smallest
// still-failing cell and the runs used.
func ShrinkKVCell(r *Runner, c KVCell, oracle string, budget int) (KVCell, int) {
	if budget <= 0 {
		budget = 64
	}
	best := c
	runs := 0
	try := func(cand KVCell) bool {
		if runs >= budget {
			return false
		}
		runs++
		fail, _ := r.RunKVCell(cand)
		if fail == nil || fail.Oracle != oracle {
			return false
		}
		best = cand
		return true
	}

	if best.Reboots > 0 {
		cand := best
		cand.Reboots, cand.RebootEvery = 0, 0
		try(cand)
	}
	if best.CrashWrite >= 0 {
		cand := best
		cand.CrashWrite = -1
		try(cand)
	}
	for best.Batches > 1 {
		cand := best
		cand.Batches = best.Batches / 2
		if !try(cand) {
			cand.Batches = best.Batches - 1
			if !try(cand) {
				break
			}
		}
	}
	if best.CompactEvery > 1 {
		cand := best
		cand.CompactEvery = 1
		try(cand)
	}
	for best.CrashWrite > 0 {
		cand := best
		cand.CrashWrite = best.CrashWrite / 2
		if !try(cand) {
			cand.CrashWrite = best.CrashWrite - 1
			if !try(cand) {
				break
			}
		}
	}
	return best, runs
}

// allKVKeys unions every key any prefix state mentions.
func allKVKeys(states []map[string][]byte) map[string]bool {
	keys := map[string]bool{}
	for _, s := range states {
		for k := range s {
			keys[k] = true
		}
	}
	return keys
}

// KVSweep runs the cell at every host-write crash boundary: CrashWrite
// 0, 1, 2, ... until the armed point no longer strikes (the workload
// finished), then one uncrashed control run. It returns the first
// failure and the number of cells executed.
func (r *Runner) KVSweep(c KVCell) (*Failure, int) {
	cells := 0
	for n := 0; ; n++ {
		cc := c
		cc.CrashWrite = n
		fail, struck := r.RunKVCell(cc)
		cells++
		if fail != nil {
			return fail, cells
		}
		if !struck {
			return nil, cells
		}
	}
}
