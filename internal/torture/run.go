package torture

import (
	"fmt"
	"math/rand"
	"slices"

	"ccnvm/internal/attack"
	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
	"ccnvm/internal/store"
	"ccnvm/internal/trace"
)

// Failure is one oracle violation, tied to the exact cell that produced
// it.
type Failure struct {
	Cell   Cell   `json:"cell"`
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Error renders the failure; Failure satisfies error so cell runs can be
// returned from helpers directly.
func (f *Failure) Error() string {
	return fmt.Sprintf("oracle %s: %s (cell %s)", f.Oracle, f.Detail, f.Cell.String())
}

// Runner executes torture cells. The Recover, Apply and ApplyInterrupted
// seams default to the real recovery implementation; tests substitute
// deliberately broken ones to prove the oracles catch them.
// ArmController, when set, is invoked on every cell's freshly built
// controller before the trace is driven — the seam the reorder-persist
// sabotage uses to inject a pre-crash ordering defect. ArmDB is the KV
// equivalent: it runs on every KV cell's freshly opened namespace before
// batches are driven, and is the seam the break-compact-switch sabotage
// uses to drop the compaction manifest commit.
type Runner struct {
	Recover          func(*engine.CrashImage) *recovery.Report
	Apply            func(*engine.CrashImage, *recovery.Report) recovery.Recovered
	ApplyInterrupted func(*engine.CrashImage, *recovery.Report, *recovery.Interrupt) (recovery.Recovered, bool)
	ArmController    func(Cell, *store.Store)
	ArmDB            func(KVCell, *kv.DB)
}

// DefaultRunner runs cells against the real recovery path.
func DefaultRunner() *Runner { return &Runner{} }

func (r *Runner) recoverFn() func(*engine.CrashImage) *recovery.Report {
	if r.Recover != nil {
		return r.Recover
	}
	return recovery.Recover
}

func (r *Runner) applyFn() func(*engine.CrashImage, *recovery.Report) recovery.Recovered {
	if r.Apply != nil {
		return r.Apply
	}
	return recovery.Apply
}

func (r *Runner) applyInterruptedFn() func(*engine.CrashImage, *recovery.Report, *recovery.Interrupt) (recovery.Recovered, bool) {
	if r.ApplyInterrupted != nil {
		return r.ApplyInterrupted
	}
	return recovery.ApplyInterrupted
}

// pattern derives a block's store content from its address and the op
// sequence number, so every write is distinguishable from every other.
func pattern(addr mem.Addr, v byte) mem.Line {
	var l mem.Line
	for i := range l {
		l[i] = byte(uint64(addr)>>(8*(i%8))) ^ v ^ byte(i)
	}
	return l
}

// RunCell executes one cell end to end and returns the first oracle
// violation, or nil when every oracle passes. A panic anywhere in the
// cell (engine, recovery, oracle) is converted into a "panic" failure —
// fuzzed and fault-injected paths must degrade to typed errors, never
// take the harness down.
func (r *Runner) RunCell(c Cell) (fail *Failure) {
	fail, _ = r.RunCellClass(c)
	return fail
}

// Spare-outcome classes: every finite-spare cell that passes its oracles
// is exactly one of these — the degraded-mode contract that a dying
// device heals what it can, detects what it loses, and refuses what it
// can no longer serve.
const (
	SpareClassHealed  = "spare_healed"
	SpareClassLost    = "spare_lost_detected"
	SpareClassRefused = "spare_readonly_refused"
)

// RunCellClass is RunCell plus the spare-outcome classification of a
// passing finite-spare cell ("" for failing or non-spare cells), which
// RunMatrix aggregates into the summary.
func (r *Runner) RunCellClass(c Cell) (fail *Failure, class string) {
	c = c.normalized()
	defer func() {
		if p := recover(); p != nil {
			fail = &Failure{Cell: c, Oracle: "panic", Detail: fmt.Sprintf("cell panicked: %v", p)}
			class = ""
		}
	}()
	ctx, fail := r.runCell(c)
	if fail == nil && ctx != nil && ctx.Rep != nil && c.Spares > 0 {
		switch {
		case ctx.RefusedStores > 0:
			class = SpareClassRefused
		case !ctx.baseRep().Lossless():
			class = SpareClassLost
		default:
			class = SpareClassHealed
		}
	}
	return fail, class
}

// runCell is RunCell's body, returning the evidence context alongside
// the first oracle violation so the durability campaign can classify
// passing cells too. ctx is nil when setup failed before a trace was
// driven. Callers own the panic conversion.
func (r *Runner) runCell(c Cell) (*Context, *Failure) {
	if err := c.Validate(); err != nil {
		return nil, &Failure{Cell: c, Oracle: "cell-spec", Detail: err.Error()}
	}
	ops, err := GenOps(c.Workload, c.Seed, c.Ops)
	if err != nil {
		return nil, &Failure{Cell: c, Oracle: "cell-spec", Detail: err.Error()}
	}
	eng, ctrl, err := BuildEngine(c.Design, engine.Params{UpdateLimit: c.N, QueueEntries: c.M}, c.faultModel())
	if err != nil {
		return nil, &Failure{Cell: c, Oracle: "cell-spec", Detail: err.Error()}
	}
	if r.ArmController != nil {
		r.ArmController(c, ctrl)
	}
	ref := NewReference(mem.MustLayout(Capacity), seccrypto.DefaultKeys())
	ctx := &Context{Cell: c, Ref: ref, Runner: r}

	// Drive the trace to the crash point, mirroring stores into the
	// reference and checking loads against it. The adversary snapshots
	// the DIMM halfway to the crash — the "old version" replay attacks
	// restore from. On weak-line cells the same point doubles as the
	// maintenance window: a scrub pass rewrites every unstable line, and
	// the read-error oracle asserts none survives it.
	snapAt := c.CrashAt / 2
	var snap *nvm.Image
	var snapWrites map[mem.Addr]uint64
	now := int64(0)
	for i, op := range ops[:c.CrashAt] {
		if i == snapAt {
			snap = eng.(interface{ NVMSnapshot() *nvm.Image }).NVMSnapshot()
			snapWrites = ref.WriteCounts()
			if c.Spares > 0 && c.Stuck > 0 {
				// The spare axis needs live stuck lines to consume the
				// pool: model a mid-trace power event that stuck the
				// cell's lines now, so the rest of the trace heals them
				// through spares on rewrite, remaps them on retry
				// exhaustion at reads, and — once the pool empties —
				// degrades the controller for real.
				ctx.MidTraceStuck = len(ctrl.Device().InjectStuckLines())
			}
			if c.WeakPct > 0 {
				now = ctrl.Scrub(now)
				ctx.PostScrubWeak = len(ctrl.Device().WeakLines())
			}
		}
		now += int64(op.Gap)
		switch op.Kind {
		case trace.Store:
			if c.Spares > 0 && ctrl.Health() == store.HealthReadOnly {
				// Front door of the degraded mode: a spare-exhausted
				// controller accepts no new stores, so the harness skips
				// them (the reference must not advance past what the
				// device acknowledged). On the first refusal it probes the
				// back door once — a direct controller write to a line the
				// reference never touched — so the degradation oracle can
				// prove the refusal is real, not just advisory.
				ctx.RefusedStores++
				if !ctx.ROProbed {
					if probe := roProbeAddr(ref); probe != 0 {
						ctx.ROProbed = true
						ctx.ROProbeAddr = probe
						ctrl.HostWrite(now, probe, pattern(probe, 0xA5))
					}
				}
				continue
			}
			pt := pattern(op.Addr, byte(i))
			now = eng.WriteBack(now, op.Addr, pt) + 8
			ref.WriteBack(op.Addr, pt)
		case trace.Load:
			got, done := eng.ReadBlock(now, op.Addr)
			if got != ref.Plaintext(op.Addr) && ctx.ReadDivergence == "" {
				ctx.ReadDivergence = fmt.Sprintf("op %d: load of %#x returned content diverging from the reference plaintext",
					i, uint64(mem.Align(op.Addr)))
			}
			now = done + 8
		}
	}
	ctx.RunViolations = eng.Stats().IntegrityViolations

	ctx.Img = eng.Crash()
	ctx.Media = ctx.Img.MediaLog
	ctx.CtrlStats = ctrl.CtrlStats()
	if c.Spares > 0 {
		// The device-side pool counters are in-memory state the crash tear
		// cannot touch, so this snapshot is the ground truth the persisted
		// remap table (possibly torn by the crash) is judged against.
		ctx.SpareStats = ctrl.Device().SpareStats()
		ctx.HealthAtCrash = ctrl.Health()
		ctx.RemapEntriesAtCrash = ctrl.Device().RemapEntries()
	}
	if err := ctrl.Err(); err != nil {
		return ctx, &Failure{Cell: c, Oracle: "device-fault", Detail: "controller recorded a device/protocol error: " + err.Error()}
	}
	ctx.Victims, ctx.AttackChanged, err = injectAttack(c, ctx.Img, snap, snapWrites, ref)
	if err != nil {
		return ctx, &Failure{Cell: c, Oracle: "cell-spec", Detail: err.Error()}
	}
	ctx.Rep = r.recoverFn()(ctx.Img)
	if fail := r.runRebootLoop(ctx); fail != nil {
		return ctx, fail
	}

	for _, o := range Oracles() {
		if detail := o.Check(ctx); detail != "" {
			return ctx, &Failure{Cell: c, Oracle: o.Name, Detail: detail}
		}
	}
	return ctx, nil
}

// runRebootLoop executes the cell's reboot axis: after a clean first
// recovery, run Apply with an interrupt striking the RebootEvery-th
// persisted recovery write, re-enter recovery on the half-applied
// image, and repeat, finishing with one uninterrupted pass. Before the
// first strike it clones the crash image and recovers the clone
// single-shot through the same runner seams — the convergence oracle's
// golden final state. Cells whose first recovery is not clean skip the
// loop: their Apply semantics stay owned by the single-shot oracles
// (this also exempts w/o CC, whose crash images always flag tamper).
func (r *Runner) runRebootLoop(ctx *Context) *Failure {
	c := ctx.Cell
	if c.Reboots <= 0 || !ctx.Rep.Clean() {
		return nil
	}
	ctx.FirstRep = ctx.Rep
	ctx.GoldenImg = ctx.Img.Clone()
	ctx.GoldenRep = r.recoverFn()(ctx.GoldenImg)
	grec := r.applyFn()(ctx.GoldenImg, ctx.GoldenRep)
	ctx.GoldenRec = &grec
	ctx.FinalPlan = -1
	rep := ctx.Rep
	done := false
	for pass := 1; pass <= c.Reboots && !done; pass++ {
		itr := &recovery.Interrupt{After: c.RebootEvery, Faults: c.faultModel(), Seq: uint64(pass)}
		rec, ok := r.applyInterruptedFn()(ctx.Img, rep, itr)
		ctx.RebootPlans = append(ctx.RebootPlans, itr.Plan)
		if ok {
			// The pass finished before its strike point: converged early.
			ctx.Recovered = &rec
			done = true
		} else {
			rep = r.recoverFn()(ctx.Img)
		}
	}
	if !done {
		itr := &recovery.Interrupt{Seq: uint64(c.Reboots + 1)}
		rec, ok := r.applyInterruptedFn()(ctx.Img, rep, itr)
		ctx.FinalPlan = itr.Plan
		if !ok {
			return &Failure{Cell: c, Oracle: "reboot-bounded",
				Detail: "uninterrupted final recovery pass failed to commit"}
		}
		ctx.Recovered = &rec
	}
	ctx.Rep = rep
	ctx.applied = true
	ctx.rebootRan = true
	return nil
}

// injectAttack mutates the crash image according to the cell's attack
// kind. It returns the primary victim addresses and whether the image
// content actually changed — a replay that restores identical bytes is a
// no-op the oracles must not demand detection of.
func injectAttack(c Cell, img *engine.CrashImage, snap *nvm.Image, snapWrites map[mem.Addr]uint64, ref *Reference) ([]mem.Addr, bool, error) {
	if c.Attack == "none" {
		return nil, false, nil
	}
	rng := rand.New(rand.NewSource(c.Seed ^ int64(c.CrashAt)<<20 ^ attackSalt(c.Attack)))
	addrs := ref.Written()
	if len(addrs) == 0 {
		return nil, false, nil
	}
	lay := img.Image.Layout
	switch c.Attack {
	case "spoof":
		victim := addrs[rng.Intn(len(addrs))]
		if err := attack.SpoofData(img, victim); err != nil {
			return nil, false, err
		}
		return []mem.Addr{victim}, true, nil

	case "splice":
		if len(addrs) < 2 {
			return nil, false, nil
		}
		a := addrs[rng.Intn(len(addrs))]
		b := addrs[rng.Intn(len(addrs))]
		for b == a {
			b = addrs[rng.Intn(len(addrs))]
		}
		la, _ := img.Image.Read(a)
		lb, _ := img.Image.Read(b)
		if err := attack.SpliceData(img, a, b); err != nil {
			return nil, false, err
		}
		return []mem.Addr{a, b}, la != lb, nil

	case "counter-replay":
		// Prefer a victim whose counter line moved since the snapshot, so
		// the replay actually rewinds state.
		victim := pickVictim(rng, addrs, func(a mem.Addr) bool {
			ca := lay.CounterLineOf(a)
			cur, _ := img.Image.Read(ca)
			old, _ := snap.Read(ca)
			return cur != old
		})
		ca := lay.CounterLineOf(victim)
		before, _ := img.Image.Read(ca)
		if err := attack.ReplayCounterLine(img, snap, victim); err != nil {
			return nil, false, err
		}
		after, _ := img.Image.Read(ca)
		return []mem.Addr{victim}, before != after, nil

	case "data-replay":
		// Prefer a block written on both sides of the snapshot: its old
		// (data, HMAC) pair verifies against the old counter, which is the
		// Figure 4 replay the Nwb bookkeeping exists for.
		victim := pickVictim(rng, addrs, func(a mem.Addr) bool {
			return snapWrites[a] > 0 && ref.writes[a] > snapWrites[a]
		})
		before, _ := img.Image.Read(victim)
		ha, _ := lay.HMACLineOf(victim)
		beforeH, _ := img.Image.Read(ha)
		if err := attack.ReplayBlock(img, snap, victim); err != nil {
			return nil, false, err
		}
		after, _ := img.Image.Read(victim)
		afterH, _ := img.Image.Read(ha)
		return []mem.Addr{victim}, before != after || beforeH != afterH, nil

	case "tree-spoof":
		// Corrupt a persisted level-1 tree node. Designs that keep the
		// tree on chip only never persist one, making this a no-op there.
		var nodes []mem.Addr
		for _, a := range img.Image.Store.Addrs() {
			if lay.RegionOf(a) == mem.RegionTree {
				if lv, _ := lay.NodeAt(a); lv == 1 {
					nodes = append(nodes, a)
				}
			}
		}
		if len(nodes) == 0 {
			return nil, false, nil
		}
		slices.Sort(nodes)
		na := nodes[rng.Intn(len(nodes))]
		_, idx := lay.NodeAt(na)
		if err := attack.SpoofTreeNode(img, 1, idx); err != nil {
			return nil, false, err
		}
		return []mem.Addr{na}, true, nil
	}
	return nil, false, fmt.Errorf("torture: unknown attack %q", c.Attack)
}

// roProbeAddr picks a data line the reference machine never wrote — the
// degradation probe's target, chosen so a leaked write is unambiguously
// the probe's. It scans down from the top of the data region; 0 (never a
// probe-worthy line: the trace's working set starts there) means no free
// line was found.
func roProbeAddr(ref *Reference) mem.Addr {
	for a := mem.Addr(Capacity) - mem.LineSize; a > 0; a -= mem.LineSize {
		if ref.writes[a] == 0 {
			return a
		}
	}
	return 0
}

// pickVictim returns a random address satisfying pref, falling back to
// any address when none does.
func pickVictim(rng *rand.Rand, addrs []mem.Addr, pref func(mem.Addr) bool) mem.Addr {
	var good []mem.Addr
	for _, a := range addrs {
		if pref(a) {
			good = append(good, a)
		}
	}
	if len(good) > 0 {
		return good[rng.Intn(len(good))]
	}
	return addrs[rng.Intn(len(addrs))]
}

func attackSalt(kind string) int64 {
	var h int64
	for _, b := range []byte(kind) {
		h = h*131 + int64(b)
	}
	return h
}
