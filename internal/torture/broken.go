package torture

import (
	"fmt"

	"ccnvm/internal/bmt"
	"ccnvm/internal/engine"
	"ccnvm/internal/kv"
	"ccnvm/internal/mem"
	"ccnvm/internal/recovery"
	"ccnvm/internal/seccrypto"
	"ccnvm/internal/store"
)

// BrokenModes lists the deliberately sabotaged recovery variants the
// harness can run, used to prove the oracles have teeth: each mode must
// be caught by at least one oracle on an otherwise healthy matrix.
func BrokenModes() []string {
	return []string{"skip-counter-replay", "ignore-tampered", "skip-root-check", "accept-torn", "accept-divergent", "reorder-persist", "break-remap-commit", "break-compact-switch"}
}

// reorderAfterCommits is the reorder-persist defect's arming point: the
// first non-epoch write after this many epoch commits is the victim.
// Fixed so repro commands and the guided-mode self-test agree on the
// injected bug's location.
const reorderAfterCommits = 3

// BrokenRunner returns a runner whose recovery is sabotaged in the named
// way. The sabotage forges reports that claim success, so only the
// differential oracles (golden state, replay-window accounting) can tell.
func BrokenRunner(mode string) (*Runner, error) {
	switch mode {
	case "skip-counter-replay":
		// Recovery "succeeds" without replaying stale counters: the report
		// claims a clean image and Apply rebuilds the tree over whatever
		// counter lines the crash left behind. Any design with lagging
		// counters (osiris, ccnvm mid-epoch) then decrypts garbage — the
		// golden-state oracle's job to notice.
		return &Runner{
			Recover: func(img *engine.CrashImage) *recovery.Report {
				rep := recovery.Recover(img)
				rep.Tampered = nil
				rep.TreeMismatches = nil
				rep.ReplayedPages = nil
				rep.PotentialReplay = false
				rep.Nretry = rep.Nwb
				if rep.ConsistentRoot == "" {
					rep.ConsistentRoot = "old"
				}
				return rep
			},
			Apply: func(img *engine.CrashImage, rep *recovery.Report) recovery.Recovered {
				// Rebuild the tree over the stale counters instead of the
				// replayed ones, and do not touch the counter region.
				lay := img.Image.Layout
				tree := bmt.New(lay, seccrypto.MustEngine(img.Keys))
				var cas []mem.Addr
				for _, a := range img.Image.Store.Addrs() {
					if lay.RegionOf(a) == mem.RegionCounter {
						cas = append(cas, a)
					}
				}
				nodes, root := tree.Rebuild(img.Image.Store, cas)
				for a, n := range nodes {
					img.Image.Write(a, n)
				}
				return recovery.Recovered{TCB: engine.TCB{RootNew: root, RootOld: root, Nwb: 0}}
			},
		}, nil
	case "ignore-tampered":
		// Detection is dropped on the floor: whatever recovery finds, the
		// report comes back spotless. Attack cells must trip attack-caught
		// (clean report + corrupted state fails the golden heal check).
		return &Runner{
			Recover: func(img *engine.CrashImage) *recovery.Report {
				rep := recovery.Recover(img)
				rep.Tampered = nil
				rep.TreeMismatches = nil
				rep.ReplayedPages = nil
				rep.PotentialReplay = false
				rep.Nretry = rep.Nwb
				return rep
			},
		}, nil
	case "skip-root-check":
		// The tree-vs-root verification is skipped and the root reported
		// consistent unconditionally; tree spoofs and counter replays on
		// tree-persisting designs then sail through as "clean".
		return &Runner{
			Recover: func(img *engine.CrashImage) *recovery.Report {
				rep := recovery.Recover(img)
				rep.TreeMismatches = nil
				if rep.ConsistentRoot == "" {
					rep.ConsistentRoot = "new"
				}
				return rep
			},
		}, nil
	case "accept-torn":
		// The media-loss classification is erased: recovery trusts every
		// line the crash left behind and the report claims a lossless
		// image. Fault cells must trip the torn-write/adr-budget oracles —
		// stale or fabricated content silently accepted, or a lossless
		// claim over a non-empty suspects manifest.
		return &Runner{
			Recover: func(img *engine.CrashImage) *recovery.Report {
				rep := recovery.Recover(img)
				rep.LostBlocks = nil
				rep.MediaErrors = nil
				rep.CrashLossWindow = false
				return rep
			},
		}, nil
	case "accept-divergent":
		// Re-entrancy is sabotaged: a resumed Apply pass declares victory
		// without writing its remaining plan. It "finishes" recovery on a
		// scratch clone and copies back only the committed registers and
		// the deactivated journal, accepting the half-applied store as
		// converged. The report stays honest and the journal commits, so
		// only the reboot-convergence oracle — final state vs the
		// single-shot golden — can tell.
		return &Runner{
			ApplyInterrupted: func(img *engine.CrashImage, rep *recovery.Report, itr *recovery.Interrupt) (recovery.Recovered, bool) {
				if !recovery.JournalActive(img) {
					return recovery.ApplyInterrupted(img, rep, itr)
				}
				clone := img.Clone()
				rec, ok := recovery.ApplyInterrupted(clone, nil, nil)
				if !ok {
					return rec, false
				}
				img.RecoveryJournal = clone.RecoveryJournal
				img.TCB = clone.TCB
				return rec, true
			},
		}, nil
	case "reorder-persist":
		// A controller-level ordering bug rather than a recovery one: the
		// first non-epoch write after the third epoch commit loses its ADR
		// durability guarantee and persists only at the NEXT commit (see
		// memctrl.SabotageReorderPersist). Runtime reads still see the
		// write (the WPQ forwards it), so the defect is observable only at
		// a crash point inside the victim-write→commit window — exactly
		// one persist-ordering edge of the cell's graph. Guided
		// enumeration schedules a point per distinct edge cut and lands in
		// the window; evenly spaced points at the same budget straddle it.
		// Fault-model cells run unsabotaged: the knob is incompatible with
		// crash-time tear composition and those cells are not the test.
		return &Runner{
			ArmController: func(c Cell, ctrl *store.Store) {
				if c.Faulty() {
					return
				}
				ctrl.SabotageReorderPersist(reorderAfterCommits)
			},
		}, nil
	case "break-remap-commit":
		// A device-level wear-management bug: spares are consumed and lines
		// remapped, but the durable remap record is never written — the
		// atomic-commit discipline silently dropped. Everything looks fine
		// until the crash, when the persisted table disagrees with the
		// spares the device actually spent by more than the one record a
		// torn commit may legitimately roll back. The spare-accounting
		// ledger reconciliation is the oracle that must notice. Only
		// finite-pool cells arm the knob; the rest of the matrix runs
		// clean.
		return &Runner{
			ArmController: func(c Cell, ctrl *store.Store) {
				if c.Spares > 0 {
					ctrl.Device().SabotageDropRemapCommit()
				}
			},
		}, nil
	case "break-compact-switch":
		// A KV-layer crash-consistency bug: the compactor copies the live
		// set, switches the in-memory keymap and reclaims the retired
		// half, but never writes the manifest slot that commits the
		// switch — the classic "forgot the commit record" defect. The
		// namespace looks perfect until the crash, when reopen follows
		// the stale manifest into a half whose frames were just zeroed.
		// The compaction oracles (generation equality first, lost-acked
		// and resurrection checks behind it) must catch it on any compact
		// cell; non-compact cells run clean.
		return &Runner{
			ArmDB: func(c KVCell, db *kv.DB) {
				if c.CompactEvery > 0 {
					db.SabotageDropManifestCommit()
				}
			},
		}, nil
	}
	return nil, fmt.Errorf("torture: unknown broken mode %q (have %v)", mode, BrokenModes())
}
