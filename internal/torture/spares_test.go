package torture

import (
	"context"
	"strings"
	"testing"

	"ccnvm/internal/engine"
	"ccnvm/internal/mem"
	"ccnvm/internal/nvm"
	"ccnvm/internal/recovery"
	"ccnvm/internal/store"
)

// spareMatrixOpts is the finite-spare sweep the tests share: every
// design, two workloads, pool sizes 3/1 layered over the consuming
// fault profiles.
func spareMatrixOpts() MatrixOpts {
	return MatrixOpts{
		Workloads:  []string{"hot", "mixed"},
		Attacks:    []string{"none"},
		Seeds:      2,
		Ops:        200,
		CrashPts:   1,
		FaultSeeds: 0,
		Spares:     3,
	}
}

func spareCellsOnly(opts MatrixOpts) []Cell {
	var cells []Cell
	for _, c := range EnumerateCells(opts) {
		if c.Spares > 0 {
			cells = append(cells, c)
		}
	}
	return cells
}

// TestSpareMatrix is the spare-exhaustion sweep: every cell must pass
// every oracle, and every cell must land in exactly one outcome class —
// healed, lost-but-detected or read-only-refused.
func TestSpareMatrix(t *testing.T) {
	cells := spareCellsOnly(spareMatrixOpts())
	if len(cells) == 0 {
		t.Fatal("spare sweep enumerated no cells")
	}
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, nil)
	for _, f := range sum.Failures {
		t.Errorf("%s\n  repro: %s", f.Error(), f.Repro)
	}
	if sum.SpareCells != len(cells) {
		t.Errorf("summary counted %d spare cells, ran %d", sum.SpareCells, len(cells))
	}
	classified := sum.SpareHealed + sum.SpareLost + sum.SpareRefused
	if classified+len(sum.Failures) != len(cells) {
		t.Errorf("classification does not partition the sweep: %d healed + %d lost + %d refused + %d failed != %d cells",
			sum.SpareHealed, sum.SpareLost, sum.SpareRefused, len(sum.Failures), len(cells))
	}
	t.Logf("spare sweep: %d cells — %d healed, %d lost-but-detected, %d read-only-refused",
		len(cells), sum.SpareHealed, sum.SpareLost, sum.SpareRefused)
}

// TestSpareSweepReachesReadOnly guards the sweep's reach: at least one
// cell must exhaust its pool and be refused, or the degradation oracles
// are running vacuously.
func TestSpareSweepReachesReadOnly(t *testing.T) {
	cells := spareCellsOnly(spareMatrixOpts())
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, nil)
	if sum.Failed() {
		t.Skip("sweep failed; TestSpareMatrix owns the diagnosis")
	}
	if sum.SpareRefused == 0 {
		t.Error("no cell in the spare sweep ever reached read-only; the refusal path is untested")
	}
	if sum.SpareHealed == 0 {
		t.Error("no cell in the spare sweep healed cleanly; the pool sizes are too tight")
	}
}

// TestBrokenRemapCommitCaught proves the spare oracles have teeth: a
// device that consumes spares but drops the durable remap record must be
// caught, the failure must shrink, and the shrunk cell must pass the
// unsabotaged runner.
func TestBrokenRemapCommitCaught(t *testing.T) {
	r, err := BrokenRunner("break-remap-commit")
	if err != nil {
		t.Fatal(err)
	}
	cells := spareCellsOnly(spareMatrixOpts())
	sum := RunMatrix(context.Background(), r, cells, 0, nil)
	if !sum.Failed() {
		t.Fatalf("break-remap-commit slipped past every oracle over %d cells", sum.Cells)
	}
	f := sum.Failures[0]
	if !strings.HasPrefix(f.Repro, "go run ./cmd/ccnvm-torture -repro '") {
		t.Fatalf("failure carries no usable repro line: %q", f.Repro)
	}
	spec := strings.TrimSuffix(strings.TrimPrefix(f.Repro, "go run ./cmd/ccnvm-torture -repro '"), "'")
	cell, err := ParseCell(spec)
	if err != nil {
		t.Fatalf("repro spec does not parse: %v", err)
	}
	again := r.RunCell(cell)
	if again == nil {
		t.Fatalf("minimized repro %s no longer fails", f.Repro)
	}
	if again.Oracle != f.Oracle {
		t.Fatalf("repro fails a different oracle: %s vs %s", again.Oracle, f.Oracle)
	}
	if g := DefaultRunner().RunCell(cell); g != nil {
		t.Fatalf("minimized cell also fails the real device: %v", g)
	}
	t.Logf("break-remap-commit caught by oracle %q after %d shrink runs: %s", f.Oracle, f.ShrinkRuns, f.Repro)
}

// TestSpareCellEvidence drives one deliberately tight cell end to end
// and inspects the evidence the oracles run on, pinning the degraded
// modes to concrete observations rather than just "no oracle fired".
func TestSpareCellEvidence(t *testing.T) {
	c := Cell{
		Design: "ccnvm", Workload: "hot", Seed: 1, Ops: 200, CrashAt: 133,
		Attack: "none", FaultSeed: 7, WeakPct: 20, Stuck: 2, Spares: 1,
	}
	r := DefaultRunner()
	ctx, fail := r.runCell(c.normalized())
	if fail != nil {
		t.Fatalf("cell failed: %v", fail)
	}
	s := ctx.SpareStats
	if !s.Finite() || s.Total != 1 {
		t.Fatalf("pool not armed: %+v", s)
	}
	if s.Used != len(ctx.RemapEntriesAtCrash) {
		t.Fatalf("spares consumed (%d) != remaps recorded (%d)", s.Used, len(ctx.RemapEntriesAtCrash))
	}
	if s.Used == s.Total && ctx.HealthAtCrash != store.HealthReadOnly {
		t.Fatalf("pool exhausted but controller reports %v", ctx.HealthAtCrash)
	}
	rec, ok, torn := nvm.LoadRemapTable(ctx.Img.Image.RemapTable)
	if !ok {
		t.Fatal("crash image carries no decodable remap table")
	}
	if torn {
		t.Fatal("recovery left the table torn")
	}
	if rec.Total != 1 || len(rec.Entries) != s.Used {
		t.Fatalf("persisted table (total=%d used=%d) disagrees with the device (total=%d used=%d)",
			rec.Total, len(rec.Entries), s.Total, s.Used)
	}
	if ctx.Rep.SparesTotal != 1 || ctx.Rep.SparesUsed != len(rec.Entries) {
		t.Fatalf("recovery report (total=%d used=%d) disagrees with the table", ctx.Rep.SparesTotal, ctx.Rep.SparesUsed)
	}
	t.Logf("evidence: health=%v used=%d/%d refusedStores=%d probed=%v",
		ctx.HealthAtCrash, s.Used, s.Total, ctx.RefusedStores, ctx.ROProbed)
}

// TestRemapCommitRecoveryEveryChunk is the exhaustive crash-mid-commit
// property at the recovery layer, mirroring TestRebootCrashEveryWrite
// for the remap table: take a real crash image with committed remaps,
// simulate the next commit being interrupted after every 64-byte chunk
// write, and require recovery to (a) never classify the tear as
// tampering, (b) land on either the old or the new mapping count, and
// (c) leave a repaired table a re-entered recovery reads identically.
func TestRemapCommitRecoveryEveryChunk(t *testing.T) {
	eng, ctrl, err := BuildEngine("ccnvm", engine.Params{UpdateLimit: 4},
		&nvm.FaultModel{Seed: 7, StuckLines: 2, SpareLines: 3})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for i := 0; i < 40; i++ {
		a := mem.Addr(i) * mem.LineSize
		now = eng.WriteBack(now, a, pattern(a, byte(i))) + 8
	}
	dev := ctrl.Device()
	for _, a := range dev.InjectStuckLines() {
		if err := dev.Remap(a, false); err != nil {
			t.Fatal(err)
		}
	}
	crash := eng.Crash()
	rec, ok, torn := nvm.LoadRemapTable(crash.Image.RemapTable)
	if !ok || torn {
		t.Fatalf("crash image table: ok=%v torn=%v", ok, torn)
	}
	n := len(rec.Entries)
	if rec.Seq == 0 || n == 0 || n >= rec.Total {
		t.Fatalf("setup produced no tearable commit: seq=%d used=%d total=%d", rec.Seq, n, rec.Total)
	}
	base := recovery.Recover(crash.Clone())

	// The in-flight commit: one more remap appended to the live entries.
	newAddr := mem.Addr(mem.LineSize)
	for {
		taken := false
		for _, e := range rec.Entries {
			if e.Addr == newAddr {
				taken = true
				break
			}
		}
		if !taken {
			break
		}
		newAddr += mem.LineSize
	}
	next := nvm.RemapRecord{
		Seq:     rec.Seq + 1,
		Total:   rec.Total,
		Entries: append(append([]nvm.RemapEntry(nil), rec.Entries...), nvm.RemapEntry{Addr: newAddr, Exempt: true}),
	}
	enc := nvm.EncodeRemapRecord(next)
	off := int((rec.Seq+1)%2) * nvm.RemapSlotLen

	chunks := nvm.RemapSlotLen / 64
	for k := 0; k <= chunks; k++ {
		img := crash.Clone()
		copy(img.Image.RemapTable[off:off+k*64], enc[:k*64])
		rep := recovery.Recover(img)

		// (a) A torn remap commit is crash damage, never an attack.
		if len(rep.Tampered) != len(base.Tampered) || len(rep.TreeMismatches) != len(base.TreeMismatches) ||
			rep.PotentialReplay != base.PotentialReplay {
			t.Fatalf("chunk %d: tamper verdict shifted: tampered %d->%d, tree %d->%d, replay %v->%v",
				k, len(base.Tampered), len(rep.Tampered), len(base.TreeMismatches), len(rep.TreeMismatches),
				base.PotentialReplay, rep.PotentialReplay)
		}
		// (b) The ruling count is the old mapping set or the new one.
		want := n
		if k == chunks {
			want = n + 1
		}
		if rep.SparesUsed != want || rep.SparesTotal != rec.Total {
			t.Fatalf("chunk %d: recovery reports %d/%d spares used, want %d/%d",
				k, rep.SparesUsed, rep.SparesTotal, want, rec.Total)
		}
		wantTorn := k > 0 && k < chunks
		if rep.RemapTableTorn != wantTorn {
			t.Fatalf("chunk %d: RemapTableTorn=%v, want %v", k, rep.RemapTableTorn, wantTorn)
		}
		// (c) Recovery repaired the table in place; re-entry converges.
		if _, ok2, torn2 := nvm.LoadRemapTable(img.Image.RemapTable); !ok2 || torn2 {
			t.Fatalf("chunk %d: table not repaired (ok=%v torn=%v)", k, ok2, torn2)
		}
		rep2 := recovery.Recover(img)
		if rep2.SparesUsed != want || rep2.RemapTableTorn {
			t.Fatalf("chunk %d: second recovery diverged (used=%d torn=%v)", k, rep2.SparesUsed, rep2.RemapTableTorn)
		}
	}
}

// FuzzSpareCell explores the finite-spare dimension on top of the media
// faults: any (design, workload, seed, crash, fault seed, torn, weak,
// stuck, spares) combination must satisfy every oracle, including the
// three spare-pool ones. A separate target keeps the FuzzFaultCell
// corpus arity valid.
func FuzzSpareCell(f *testing.F) {
	f.Add(uint8(4), uint8(0), int64(1), uint16(200), uint16(150), int64(7), true, uint8(20), uint8(2), uint8(3))
	f.Add(uint8(2), uint8(1), int64(9), uint16(300), uint16(222), int64(3), false, uint8(0), uint8(4), uint8(1))
	f.Add(uint8(6), uint8(3), int64(42), uint16(120), uint16(100), int64(11), true, uint8(35), uint8(1), uint8(7))
	r := DefaultRunner()
	f.Fuzz(func(t *testing.T, design, workload uint8, seed int64, ops, crash uint16, fseed int64, torn bool, weak, stuck, spares uint8) {
		designs, workloads := DesignNames(), WorkloadNames()
		c := Cell{
			Design:    designs[int(design)%len(designs)],
			Workload:  workloads[int(workload)%len(workloads)],
			Seed:      seed,
			Ops:       1 + int(ops)%400,
			Attack:    "none",
			FaultSeed: fseed,
			Torn:      torn,
			WeakPct:   int(weak) % 101,
			Stuck:     1 + int(stuck)%8, // a consumer axis keeps the cell valid
			Spares:    1 + int(spares)%nvm.RemapMaxEntries,
		}
		c.CrashAt = 1 + int(crash)%c.Ops
		if fail := r.RunCell(c); fail != nil {
			t.Fatalf("%v\nrepro: %s", fail, fail.Cell.Repro())
		}
	})
}
