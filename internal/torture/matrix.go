package torture

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// MatrixOpts selects the slice of the torture matrix to run. Zero-value
// fields take the defaults documented on each field.
type MatrixOpts struct {
	Designs   []string // default: DesignNames()
	Workloads []string // default: WorkloadNames()
	Attacks   []string // default: AttackNames() (includes the clean control)
	Seeds     int      // trace seeds per combination; default 4
	Ops       int      // trace length per cell; default 240
	CrashPts  int      // crash points per trace; default 3
	Ns        []uint64 // update limits cycled across cells; default {4, 16}
	Budget    int      // max cells (0 = unbounded); evenly sampled when exceeded

	// FaultSeeds appends media-fault cells: for every design and
	// workload, this many fault seeds are cycled through FaultProfiles.
	// Zero (the default) adds no fault cells, keeping the faultless
	// matrix byte-identical to its historical shape.
	FaultSeeds int

	// Reboots appends reboot-loop cells: for every design, workload and
	// stride in RebootEvery, one faultless cell and one fault-profile
	// cell whose recovery is interrupted at every stride-th persisted
	// write up to Reboots times before the final uninterrupted pass.
	// Zero (the default) adds no reboot cells.
	Reboots     int
	RebootEvery []int // strike strides cycled per reboot cell; default {2, 3, 5}

	// Spares appends finite-spare cells: for every design and workload,
	// pool sizes from Spares down to a single line are layered over the
	// consuming fault profiles (weak/stuck), sweeping the controller
	// through healthy, degraded and read-only service. Zero (the
	// default) adds no spare cells.
	Spares int
}

// FaultProfiles are the media-fault shapes the matrix cycles fault cells
// through. Torn-write profiles always pair with a finite ADR budget: the
// harness drains epochs synchronously inside WriteBack, so the WPQ holds
// no end-signal-less entries at a crash point and tearing only bites on
// entries past the budget.
func FaultProfiles() []Cell {
	return []Cell{
		{Torn: true, ADRBudget: 8},
		{ADRBudget: 4},
		{Torn: true, ADRBudget: 2, WeakPct: 10},
		{WeakPct: 20, Stuck: 2},
		{Torn: true, ADRBudget: 1, Stuck: 1},
	}
}

func (o MatrixOpts) withDefaults() MatrixOpts {
	if len(o.Designs) == 0 {
		o.Designs = DesignNames()
	}
	if len(o.Workloads) == 0 {
		o.Workloads = WorkloadNames()
	}
	if len(o.Attacks) == 0 {
		o.Attacks = AttackNames()
	}
	if o.Seeds <= 0 {
		o.Seeds = 4
	}
	if o.Ops <= 0 {
		o.Ops = 240
	}
	if o.CrashPts <= 0 {
		o.CrashPts = 3
	}
	if len(o.Ns) == 0 {
		o.Ns = []uint64{4, 16}
	}
	if o.Reboots > 0 && len(o.RebootEvery) == 0 {
		o.RebootEvery = []int{2, 3, 5}
	}
	return o
}

// EnumerateCells expands the options into the concrete cell list, in
// deterministic order. Crash points divide the trace evenly; the update
// limit cycles through Ns so neighbouring cells differ in replay-window
// size. When a budget is set, the full matrix is sampled evenly rather
// than truncated, so every design and attack still appears.
func EnumerateCells(o MatrixOpts) []Cell {
	o = o.withDefaults()
	var cells []Cell
	for _, d := range o.Designs {
		for _, w := range o.Workloads {
			for seed := 0; seed < o.Seeds; seed++ {
				for cp := 0; cp < o.CrashPts; cp++ {
					crash := (cp + 1) * o.Ops / (o.CrashPts + 1)
					for ai, atk := range o.Attacks {
						cells = append(cells, Cell{
							Design:   d,
							Workload: w,
							Seed:     int64(seed),
							Ops:      o.Ops,
							CrashAt:  crash,
							Attack:   atk,
							N:        o.Ns[(seed+cp+ai)%len(o.Ns)],
						}.normalized())
					}
				}
			}
		}
	}
	cells = appendFaultCells(cells, o)
	cells = appendRebootCells(cells, o)
	cells = appendSpareCells(cells, o)
	return applyBudget(cells, o)
}

// appendFaultCells rides media-fault cells after the faultless matrix:
// clean crashes under deterministic media damage, cycled through the
// fault profiles.
func appendFaultCells(cells []Cell, o MatrixOpts) []Cell {
	if o.FaultSeeds <= 0 {
		return cells
	}
	profiles := FaultProfiles()
	for _, d := range o.Designs {
		for _, w := range o.Workloads {
			for fs := 0; fs < o.FaultSeeds; fs++ {
				p := profiles[fs%len(profiles)]
				cells = append(cells, Cell{
					Design:    d,
					Workload:  w,
					Seed:      int64(fs % o.Seeds),
					Ops:       o.Ops,
					CrashAt:   o.Ops * 2 / 3,
					Attack:    "none",
					N:         o.Ns[fs%len(o.Ns)],
					FaultSeed: int64(fs)*7919 + 1,
					Torn:      p.Torn,
					ADRBudget: p.ADRBudget,
					WeakPct:   p.WeakPct,
					Stuck:     p.Stuck,
				}.normalized())
			}
		}
	}
	return cells
}

// appendRebootCells rides reboot-loop cells last: clean crashes whose
// recovery is interrupted and re-entered, half on the idealized device
// and half under a fault profile, so re-entrancy is exercised both
// ways.
func appendRebootCells(cells []Cell, o MatrixOpts) []Cell {
	if o.Reboots <= 0 {
		return cells
	}
	profiles := FaultProfiles()
	for _, d := range o.Designs {
		for wi, w := range o.Workloads {
			for ri, stride := range o.RebootEvery {
				base := Cell{
					Design:      d,
					Workload:    w,
					Ops:         o.Ops,
					CrashAt:     o.Ops * 2 / 3,
					Attack:      "none",
					N:           o.Ns[ri%len(o.Ns)],
					RebootEvery: stride,
					Reboots:     o.Reboots,
				}
				faultless := base
				faultless.Seed = int64(ri % o.Seeds)
				cells = append(cells, faultless.normalized())
				faulty := base
				faulty.Seed = int64((ri + 1) % o.Seeds)
				p := profiles[(wi+ri)%len(profiles)]
				faulty.FaultSeed = int64(wi+ri)*7919 + 1
				faulty.Torn = p.Torn
				faulty.ADRBudget = p.ADRBudget
				faulty.WeakPct = p.WeakPct
				faulty.Stuck = p.Stuck
				cells = append(cells, faulty.normalized())
			}
		}
	}
	return cells
}

// appendSpareCells rides finite-spare cells last: pool sizes from the
// requested maximum down to a single line, each layered over a fault
// profile that actually consumes spares (weak or stuck lines). Large
// pools stay healthy, halved pools brush the degraded threshold, and
// single-line pools exhaust into read-only, so one sweep crosses every
// health state the controller can reach.
func appendSpareCells(cells []Cell, o MatrixOpts) []Cell {
	if o.Spares <= 0 {
		return cells
	}
	var profiles []Cell
	for _, p := range FaultProfiles() {
		if p.WeakPct > 0 || p.Stuck > 0 {
			profiles = append(profiles, p)
		}
	}
	pools := []int{o.Spares}
	if h := max(1, o.Spares/2); h != o.Spares {
		pools = append(pools, h)
	}
	if o.Spares > 1 {
		pools = append(pools, 1)
	}
	for di, d := range o.Designs {
		for wi, w := range o.Workloads {
			for pi, pool := range pools {
				p := profiles[(di+wi+pi)%len(profiles)]
				cells = append(cells, Cell{
					Design:    d,
					Workload:  w,
					Seed:      int64((wi + pi) % o.Seeds),
					Ops:       o.Ops,
					CrashAt:   o.Ops * 2 / 3,
					Attack:    "none",
					N:         o.Ns[pi%len(o.Ns)],
					FaultSeed: int64(di*len(pools)+pi)*7919 + 1,
					Torn:      p.Torn,
					ADRBudget: p.ADRBudget,
					WeakPct:   p.WeakPct,
					Stuck:     p.Stuck,
					Spares:    pool,
				}.normalized())
			}
		}
	}
	return cells
}

// applyBudget samples the matrix down to the budget. A budgeted sweep
// buys executed cells, so cells the harness would refuse or waste (see
// Cell.RefusalReason) are dropped before sampling — they used to count
// against the budget, which made guided and random sweeps at the same
// budget execute different numbers of effective cells. Unbudgeted
// enumeration keeps the full matrix, refusable cells included, so the
// historical cell counts (and the axis-shape tests pinning them) are
// unchanged.
func applyBudget(cells []Cell, o MatrixOpts) []Cell {
	if o.Budget <= 0 || len(cells) <= o.Budget {
		return cells
	}
	runnable := make([]Cell, 0, len(cells))
	for _, c := range cells {
		if c.RefusalReason() == "" {
			runnable = append(runnable, c)
		}
	}
	cells = runnable
	if len(cells) <= o.Budget {
		return cells
	}
	sampled := make([]Cell, o.Budget)
	for i := range sampled {
		sampled[i] = cells[i*len(cells)/o.Budget]
	}
	return sampled
}

// MatrixFailure is one shrunk failure from a matrix run.
type MatrixFailure struct {
	Failure
	Repro      string `json:"repro"`
	ShrinkRuns int    `json:"shrink_runs"`
}

// Summary aggregates a matrix run.
type Summary struct {
	Cells    int             `json:"cells"`
	Failures []MatrixFailure `json:"failures"`

	// Interrupted marks a run cut short by context cancellation (SIGINT
	// or -timeout); Skipped counts the cells that never executed. A
	// partial summary still lists every failure seen before the cut.
	Interrupted bool `json:"interrupted,omitempty"`
	Skipped     int  `json:"skipped,omitempty"`

	// Mode records how crash points were enumerated: "guided" when the
	// ordering-aware enumeration chose them, empty for the historical
	// evenly spaced matrix. Coverage is the per-design×workload
	// edge-coverage table a guided enumeration produces (each row also
	// scores the evenly spaced points of equal budget on the same
	// graphs, so the two modes are directly comparable).
	Mode     string         `json:"mode,omitempty"`
	Coverage []CoverageStat `json:"edge_coverage,omitempty"`

	// Spare-axis outcome classification, populated only when the matrix
	// carried finite-spare cells. Every executed spare cell lands in
	// exactly one bucket: healed (lossless recovery, no refusals), lost
	// but detected (the report enumerates the loss), or read-only
	// refused (the pool exhausted and the controller refused stores).
	// Cells that failed an oracle are counted in SpareCells only.
	SpareCells   int `json:"spare_cells,omitempty"`
	SpareHealed  int `json:"spare_healed,omitempty"`
	SpareLost    int `json:"spare_lost_detected,omitempty"`
	SpareRefused int `json:"spare_readonly_refused,omitempty"`
}

// Failed reports whether any cell violated an oracle.
func (s *Summary) Failed() bool { return len(s.Failures) > 0 }

// RunMatrix executes the cells on a worker pool (each cell builds its
// own engine and reference; nothing is shared between cells), shrinks
// every failure, and returns the summary with failures in cell-index
// order. parallel <= 0 selects GOMAXPROCS workers; progress, when
// non-nil, is called after each cell with (done, total, failure-or-nil).
// Cancelling ctx stops dispatching new cells — in-flight cells finish —
// and skips the shrink pass, so a partial summary is returned promptly.
func RunMatrix(ctx context.Context, r *Runner, cells []Cell, parallel int, progress func(done, total int, f *Failure)) *Summary {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cells) && len(cells) > 0 {
		parallel = len(cells)
	}
	type res struct {
		idx     int
		f       *Failure
		class   string
		skipped bool
	}
	idxCh := make(chan int)
	resCh := make(chan res)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				select {
				case <-ctx.Done():
					resCh <- res{idx: i, skipped: true}
				default:
					f, class := r.RunCellClass(cells[i])
					resCh <- res{idx: i, f: f, class: class}
				}
			}
		}()
	}
	go func() {
		for i := range cells {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
		close(resCh)
	}()

	failed := map[int]*Failure{}
	done, skipped := 0, 0
	var spareCells, spareHealed, spareLost, spareRefused int
	for rr := range resCh {
		if rr.skipped {
			skipped++
			continue
		}
		done++
		if cells[rr.idx].Spares > 0 {
			spareCells++
		}
		switch rr.class {
		case SpareClassHealed:
			spareHealed++
		case SpareClassLost:
			spareLost++
		case SpareClassRefused:
			spareRefused++
		}
		if rr.f != nil {
			failed[rr.idx] = rr.f
		}
		if progress != nil {
			progress(done, len(cells), rr.f)
		}
	}

	sum := &Summary{
		Cells: len(cells), Skipped: skipped, Interrupted: ctx.Err() != nil,
		SpareCells: spareCells, SpareHealed: spareHealed,
		SpareLost: spareLost, SpareRefused: spareRefused,
	}
	for i := range cells {
		f, ok := failed[i]
		if !ok {
			continue
		}
		if sum.Interrupted {
			// No time to shrink: report the raw failure with its repro.
			sum.Failures = append(sum.Failures, MatrixFailure{Failure: *f, Repro: f.Cell.Repro()})
			continue
		}
		min, runs := Shrink(r, *f, 64)
		sum.Failures = append(sum.Failures, MatrixFailure{
			Failure:    min,
			Repro:      min.Cell.Repro(),
			ShrinkRuns: runs,
		})
	}
	return sum
}

// Describe renders a short human-readable summary line.
func (s *Summary) Describe() string {
	note := ""
	if s.Interrupted {
		note = fmt.Sprintf(" (interrupted, %d cells skipped)", s.Skipped)
	}
	if s.SpareCells > 0 {
		note += fmt.Sprintf(" [spares: %d cells, %d healed, %d lost-detected, %d readonly-refused]",
			s.SpareCells, s.SpareHealed, s.SpareLost, s.SpareRefused)
	}
	if !s.Failed() {
		return fmt.Sprintf("torture: %d cells, all oracles passed%s", s.Cells-s.Skipped, note)
	}
	return fmt.Sprintf("torture: %d cells, %d FAILED%s", s.Cells-s.Skipped, len(s.Failures), note)
}
