package torture

import "testing"

// FuzzCell lets the native fuzzer mutate the cell coordinates directly:
// any (design, workload, seed, ops, crash, attack, N, M) combination the
// mapper produces must satisfy every oracle. Under plain `go test` only
// the seed corpus runs; `go test -fuzz=FuzzCell ./internal/torture/`
// explores further.
func FuzzCell(f *testing.F) {
	f.Add(uint8(4), uint8(0), int64(1), uint16(120), uint16(60), uint8(0), uint8(4), uint8(0))
	f.Add(uint8(2), uint8(3), int64(9), uint16(300), uint16(222), uint8(3), uint8(2), uint8(16))
	f.Add(uint8(6), uint8(1), int64(42), uint16(80), uint16(79), uint8(4), uint8(33), uint8(8))
	f.Add(uint8(0), uint8(3), int64(7), uint16(250), uint16(10), uint8(5), uint8(1), uint8(0))
	r := DefaultRunner()
	f.Fuzz(func(t *testing.T, design, workload uint8, seed int64, ops, crash uint16, atk, n, m uint8) {
		designs, workloads, attacks := DesignNames(), WorkloadNames(), AttackNames()
		c := Cell{
			Design:   designs[int(design)%len(designs)],
			Workload: workloads[int(workload)%len(workloads)],
			Seed:     seed,
			Ops:      1 + int(ops)%400,
			Attack:   attacks[int(atk)%len(attacks)],
			N:        uint64(n) % 65,
			M:        int(m) % 129,
		}
		c.CrashAt = 1 + int(crash)%c.Ops
		if fail := r.RunCell(c); fail != nil {
			t.Fatalf("%v\nrepro: %s", fail, fail.Cell.Repro())
		}
	})
}
