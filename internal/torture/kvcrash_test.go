package torture

import (
	"strings"
	"testing"

	"ccnvm/internal/bmt"
	"ccnvm/internal/engine"
	"ccnvm/internal/recovery"
)

// TestKVCrashSweepEveryWriteBoundary crashes the KV namespace at every
// host-write boundary — including between a frame's payload lines and
// its commit header — for every crash-consistent design, and demands
// the recovered namespace is an exact batch prefix every time.
func TestKVCrashSweepEveryWriteBoundary(t *testing.T) {
	designs := KVDesigns()
	if len(designs) == 0 {
		t.Fatal("no crash-consistent designs registered")
	}
	r := DefaultRunner()
	for _, d := range designs {
		t.Run(d, func(t *testing.T) {
			t.Parallel()
			fail, cells := r.KVSweep(KVCell{Design: d, Seed: 7, Batches: 5})
			if fail != nil {
				t.Fatal(fail.Detail)
			}
			if cells < 10 {
				t.Fatalf("sweep covered only %d crash points; workload too small to matter", cells)
			}
			t.Logf("%s: %d crash boundaries swept clean", d, cells)
		})
	}
}

// TestKVCrashRebootLoopAxis re-crashes recovery itself while it is
// recovering a crashed KV namespace: every third write boundary of the
// workload, with three interrupted recovery passes before the final
// uninterrupted one. Acked batches must survive the whole gauntlet.
func TestKVCrashRebootLoopAxis(t *testing.T) {
	r := DefaultRunner()
	cells := 0
	for n := 0; ; n += 3 {
		c := KVCell{Design: "ccnvm", Seed: 11, Batches: 4, CrashWrite: n, Reboots: 3, RebootEvery: 2}
		fail, struck := r.RunKVCell(c)
		cells++
		if fail != nil {
			t.Fatal(fail.Detail)
		}
		if !struck {
			break
		}
	}
	if cells < 4 {
		t.Fatalf("only %d reboot-loop cells ran", cells)
	}
	t.Logf("%d reboot-loop cells survived", cells)
}

// TestKVCellValidate rejects designs that cannot honor the KV contract
// and malformed cells.
func TestKVCellValidate(t *testing.T) {
	cases := []struct {
		cell KVCell
		want string
	}{
		{KVCell{Design: "wocc", Batches: 1}, "not crash-consistent"},
		{KVCell{Design: "no-such", Batches: 1}, "unknown design"},
		{KVCell{Design: "ccnvm", Batches: 0}, "at least 1 batch"},
		{KVCell{Design: "ccnvm", Batches: 1, Reboots: 2}, "reboot-every"},
	}
	for _, tc := range cases {
		err := tc.cell.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want %q", tc.cell, err, tc.want)
		}
	}
	if err := (KVCell{Design: "ccnvm", Batches: 3}).Validate(); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
	for _, d := range KVDesigns() {
		if d == "wocc" {
			t.Fatal("wocc listed as a KV design")
		}
	}
}

// TestKVOraclesCatchSabotagedRecovery proves the KV oracles bite: a
// runner whose resumed Apply never commits must trip kv-reboot-bounded,
// and a recovery that cries wolf on a clean crash must trip
// kv-clean-recovery.
func TestKVOraclesCatchSabotagedRecovery(t *testing.T) {
	t.Run("never-commits", func(t *testing.T) {
		r := &Runner{
			ApplyInterrupted: func(img *engine.CrashImage, rep *recovery.Report, itr *recovery.Interrupt) (recovery.Recovered, bool) {
				return recovery.Recovered{}, false
			},
		}
		fail, _ := r.RunKVCell(KVCell{Design: "ccnvm", Seed: 3, Batches: 3, CrashWrite: 4, Reboots: 2, RebootEvery: 2})
		if fail == nil || fail.Oracle != "kv-reboot-bounded" {
			t.Fatalf("sabotage not caught: %+v", fail)
		}
	})
	t.Run("cries-wolf", func(t *testing.T) {
		r := &Runner{
			Recover: func(img *engine.CrashImage) *recovery.Report {
				rep := recovery.Recover(img)
				rep.TreeMismatches = append(rep.TreeMismatches, bmt.Mismatch{})
				return rep
			},
		}
		fail, _ := r.RunKVCell(KVCell{Design: "ccnvm", Seed: 3, Batches: 3, CrashWrite: 4})
		if fail == nil || fail.Oracle != "kv-clean-recovery" {
			t.Fatalf("sabotage not caught: %+v", fail)
		}
	})
}
