// Package torture is the differential crash/attack torture harness: it
// enumerates (design x workload x crash point x attack) cells, runs each
// cell's workload on a real engine up to the crash point, optionally
// injects an attack into the crash image, invokes recovery, and checks a
// shared set of invariant oracles against a golden serial reference
// machine built on unmemoized crypto (see oracles.go for the oracle
// list). Failures carry a one-line `ccnvm-torture -repro` command and
// are minimized by the shrinker (shrink.go) before being reported.
//
// The harness drives engines directly (WriteBack/ReadBlock), not through
// the cached simulator machine, so crash points land between individual
// write-backs and every persisted byte is attributable to a specific
// operation of the trace.
package torture

import (
	"fmt"
	"strconv"
	"strings"

	"ccnvm/internal/design"
	"ccnvm/internal/engine"
	"ccnvm/internal/nvm"
	"ccnvm/internal/store"
)

// Capacity is the NVM data capacity used by every torture cell. 1 GiB
// keeps layout construction cheap while preserving a multi-level tree.
const Capacity = 1 << 30

// DesignNames lists every design the harness can torture, in the
// paper's order followed by the extensions (registry order).
func DesignNames() []string { return design.Names() }

// PaperDesigns lists the five designs of the paper's evaluation.
func PaperDesigns() []string { return design.PaperNames() }

// AttackNames lists the attack kinds a cell may inject; "none" is the
// clean-crash control.
func AttackNames() []string {
	return []string{"none", "spoof", "splice", "counter-replay", "data-replay", "tree-spoof"}
}

// Cell is one torture-matrix point. The zero value is not runnable; use
// (Cell).normalized or EnumerateCells to fill defaults.
type Cell struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	Ops      int    `json:"ops"`    // trace length generated for the cell
	CrashAt  int    `json:"crash"`  // power failure after this many ops
	Attack   string `json:"attack"` // one of AttackNames
	N        uint64 `json:"n"`      // engine update limit (0 = paper default)
	M        int    `json:"m"`      // dirty address queue entries (0 = default)

	// Media-fault dimensions; all zero reproduces the idealized device
	// bit-for-bit. FaultSeed drives every fault decision deterministically.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	Torn      bool  `json:"torn,omitempty"`       // torn-line persistence at crash
	ADRBudget int   `json:"adr_budget,omitempty"` // ADR flushes only this many WPQ entries whole
	WeakPct   int   `json:"weak_pct,omitempty"`   // percent of written lines with transient read errors
	Stuck     int   `json:"stuck,omitempty"`      // lines stuck-at failed at the crash

	// Spares arms the finite spare pool: stuck-line heals, scrub
	// give-ups and retry-exhaustion remaps all draw from this many spare
	// lines, the remap table rides the crash image, and the controller
	// degrades (Degraded → ReadOnly) as the pool empties. Zero keeps the
	// historical unlimited pool. Only meaningful alongside a weak/stuck
	// axis, which Validate enforces.
	Spares int `json:"spares,omitempty"`

	// Reboot-loop dimensions: after the first recovery reports clean,
	// re-run Apply up to Reboots times, striking the RebootEvery-th
	// persisted recovery write of each pass (torn under the cell's fault
	// model, dropped whole without one) and re-entering recovery, then
	// finish with an uninterrupted pass. Zero Reboots reproduces the
	// single-shot harness bit-for-bit.
	RebootEvery int `json:"reboot_every,omitempty"` // strike the k-th recovery write of each pass
	Reboots     int `json:"reboots,omitempty"`      // interrupted recovery passes before the final one
}

// Faulty reports whether any media-fault dimension is active.
func (c Cell) Faulty() bool {
	return c.Torn || c.ADRBudget > 0 || c.WeakPct > 0 || c.Stuck > 0 || c.Spares > 0
}

// faultModel materializes the cell's fault dimensions, nil when the cell
// runs on the idealized device.
func (c Cell) faultModel() *nvm.FaultModel {
	if !c.Faulty() {
		return nil
	}
	return &nvm.FaultModel{
		Seed:         c.FaultSeed,
		TornWrites:   c.Torn,
		ADRBudget:    c.ADRBudget,
		WeakLineRate: float64(c.WeakPct) / 100,
		StuckLines:   c.Stuck,
		SpareLines:   c.Spares,
	}
}

// normalized fills defaults and clamps the crash point into the trace.
func (c Cell) normalized() Cell {
	if c.Workload == "" {
		c.Workload = "hot"
	}
	if c.Attack == "" {
		c.Attack = "none"
	}
	if c.Ops <= 0 {
		c.Ops = 200
	}
	if c.CrashAt <= 0 {
		c.CrashAt = c.Ops
	}
	return c
}

// Validate rejects cells outside the harness's vocabulary.
func (c Cell) Validate() error {
	if !contains(DesignNames(), c.Design) {
		return fmt.Errorf("torture: unknown design %q", c.Design)
	}
	if !contains(WorkloadNames(), c.Workload) {
		return fmt.Errorf("torture: unknown workload %q", c.Workload)
	}
	if !contains(AttackNames(), c.Attack) {
		return fmt.Errorf("torture: unknown attack %q", c.Attack)
	}
	if c.Ops < 1 || c.Ops > 1<<20 {
		return fmt.Errorf("torture: ops %d out of range", c.Ops)
	}
	if c.CrashAt < 1 || c.CrashAt > c.Ops {
		return fmt.Errorf("torture: crash point %d outside trace of %d ops", c.CrashAt, c.Ops)
	}
	if c.WeakPct < 0 || c.WeakPct > 100 {
		return fmt.Errorf("torture: weak-line percentage %d out of range [0,100]", c.WeakPct)
	}
	if c.ADRBudget < 0 || c.ADRBudget > 1<<16 {
		return fmt.Errorf("torture: ADR budget %d out of range", c.ADRBudget)
	}
	if c.Stuck < 0 || c.Stuck > 64 {
		return fmt.Errorf("torture: stuck-line count %d out of range [0,64]", c.Stuck)
	}
	if c.Spares < 0 || c.Spares > nvm.RemapMaxEntries {
		return fmt.Errorf("torture: spare-pool size %d out of range [0,%d]", c.Spares, nvm.RemapMaxEntries)
	}
	if c.Spares > 0 && c.WeakPct == 0 && c.Stuck == 0 {
		// A finite pool no heal or scrub ever draws from exercises
		// nothing; require a consumer axis.
		return fmt.Errorf("torture: spares=%d without a weak or stuck axis to consume them", c.Spares)
	}
	if c.Reboots < 0 || c.Reboots > 64 {
		return fmt.Errorf("torture: reboot count %d out of range [0,64]", c.Reboots)
	}
	if c.RebootEvery < 0 || c.RebootEvery > 1<<16 {
		return fmt.Errorf("torture: reboot stride %d out of range", c.RebootEvery)
	}
	if c.Reboots > 0 && c.RebootEvery < 1 {
		return fmt.Errorf("torture: reboots=%d needs a strike stride (revery >= 1)", c.Reboots)
	}
	if c.RebootEvery > 0 && c.Reboots == 0 {
		return fmt.Errorf("torture: revery=%d without reboots", c.RebootEvery)
	}
	if c.RebootEvery == 1 && c.Reboots > 1 {
		// Striking every pass's FIRST recovery write kills the journal
		// bootstrap record itself each time: no pass can persist any
		// progress, so repeated reboots cannot converge by construction.
		// A single such reboot (Reboots=1) is still a valid probe — the
		// final uninterrupted pass completes it.
		return fmt.Errorf("torture: revery=1 with %d reboots cannot converge (every pass loses its first write)", c.Reboots)
	}
	return nil
}

// RefusalReason reports why the harness would refuse or waste this
// cell, "" when it is fully runnable. Two kinds of cell burn budget
// without exercising anything: specs Validate rejects outright, and
// reboot-axis cells on designs whose recovery flags every crash as
// tampered (TamperOnCrash) — their first recovery is never clean, so
// runRebootLoop skips the entire axis the cell was enumerated for.
// Budgeted sweeps exclude such cells before sampling (see applyBudget).
func (c Cell) RefusalReason() string {
	if err := c.Validate(); err != nil {
		return err.Error()
	}
	if c.Reboots > 0 && design.MustLookup(c.Design).Caps.TamperOnCrash {
		return "reboot loop refused: design flags tamper on every crash"
	}
	if c.Spares > 0 && !design.MustLookup(c.Design).Caps.SpareManaged {
		return "spare axis refused: design does not declare spare-pool media management"
	}
	return ""
}

// String renders the cell as the key=value spec Repro embeds. Fault and
// reboot dimensions are appended only when active, so historical cells
// keep their spec (and repro lines) unchanged.
func (c Cell) String() string {
	s := fmt.Sprintf("design=%s,workload=%s,seed=%d,ops=%d,crash=%d,attack=%s,n=%d,m=%d",
		c.Design, c.Workload, c.Seed, c.Ops, c.CrashAt, c.Attack, c.N, c.M)
	if c.Faulty() {
		s += fmt.Sprintf(",fseed=%d", c.FaultSeed)
		if c.Torn {
			s += ",torn=1"
		}
		if c.ADRBudget > 0 {
			s += fmt.Sprintf(",adr=%d", c.ADRBudget)
		}
		if c.WeakPct > 0 {
			s += fmt.Sprintf(",weak=%d", c.WeakPct)
		}
		if c.Stuck > 0 {
			s += fmt.Sprintf(",stuck=%d", c.Stuck)
		}
		if c.Spares > 0 {
			s += fmt.Sprintf(",spares=%d", c.Spares)
		}
	}
	if c.Reboots > 0 {
		s += fmt.Sprintf(",revery=%d,reboots=%d", c.RebootEvery, c.Reboots)
	}
	return s
}

// Repro is the one-line command that replays exactly this cell.
func (c Cell) Repro() string {
	return fmt.Sprintf("go run ./cmd/ccnvm-torture -repro '%s'", c.String())
}

// ParseCell inverts (Cell).String: a comma-separated key=value spec.
func ParseCell(spec string) (Cell, error) {
	var c Cell
	for _, kv := range strings.Split(strings.TrimSpace(spec), ",") {
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Cell{}, fmt.Errorf("torture: bad cell field %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "design":
			c.Design = v
		case "workload":
			c.Workload = v
		case "attack":
			c.Attack = v
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "ops":
			c.Ops, err = strconv.Atoi(v)
		case "crash":
			c.CrashAt, err = strconv.Atoi(v)
		case "n":
			c.N, err = strconv.ParseUint(v, 10, 64)
		case "m":
			c.M, err = strconv.Atoi(v)
		case "fseed":
			c.FaultSeed, err = strconv.ParseInt(v, 10, 64)
		case "torn":
			c.Torn = v == "1" || v == "true"
		case "adr":
			c.ADRBudget, err = strconv.Atoi(v)
		case "weak":
			c.WeakPct, err = strconv.Atoi(v)
		case "stuck":
			c.Stuck, err = strconv.Atoi(v)
		case "spares":
			c.Spares, err = strconv.Atoi(v)
		case "revery":
			c.RebootEvery, err = strconv.Atoi(v)
		case "reboots":
			c.Reboots, err = strconv.Atoi(v)
		default:
			return Cell{}, fmt.Errorf("torture: unknown cell field %q", k)
		}
		if err != nil {
			return Cell{}, fmt.Errorf("torture: bad value for %s: %w", k, err)
		}
	}
	c = c.normalized()
	if err := c.Validate(); err != nil {
		return Cell{}, err
	}
	return c, nil
}

// BuildEngine constructs a fresh engine of the named design through the
// storage-engine facade, mirroring the simulator's wiring but without
// the CPU-side caches the harness does not need. A non-nil fault model
// arms the device with deterministic media faults; the facade is
// returned so the harness can drive scrubbing and read controller fault
// statistics without reaching below the engine boundary.
func BuildEngine(name string, p engine.Params, fm *nvm.FaultModel) (engine.Engine, *store.Store, error) {
	st, err := store.Open(store.Options{
		Design:   name,
		Capacity: Capacity,
		Params:   p,
		Faults:   fm,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("torture: %w", err)
	}
	return st.Engine(), st, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
