package torture

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestProfileTraceDeterministic: profiling the same trace twice yields
// the identical graph, and the graph is non-trivial for an epoch-based
// design (it must contain both ADR and epoch edges to guide on).
func TestProfileTraceDeterministic(t *testing.T) {
	g1, err := ProfileTrace("ccnvm", "hot", 0, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ProfileTrace("ccnvm", "hot", 0, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1, g2) {
		t.Fatal("ProfileTrace is not deterministic")
	}
	if len(g1.Events) == 0 || g1.CuttableCount() == 0 {
		t.Fatalf("trivial profile: %d events, %d cuttable edges", len(g1.Events), g1.CuttableCount())
	}
}

// TestGuidedBeatsRandomCoverage is the acceptance criterion: at equal
// per-trace point budget on a fixed seed set, guided enumeration cuts
// strictly more distinct ordering edges than the evenly spaced
// placement, on every design×workload row that has cuttable edges.
func TestGuidedBeatsRandomCoverage(t *testing.T) {
	o := MatrixOpts{
		Designs: DesignNames(), Workloads: []string{"hot", "mixed"},
		Attacks: []string{"none"}, Seeds: 2, Ops: 160, CrashPts: 2,
	}
	_, stats, err := EnumerateGuidedCells(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(o.Designs)*len(o.Workloads) {
		t.Fatalf("coverage rows = %d, want %d", len(stats), len(o.Designs)*len(o.Workloads))
	}
	for _, s := range stats {
		if s.EdgesCuttable == 0 {
			t.Fatalf("%s/%s: no cuttable edges to guide on", s.Design, s.Workload)
		}
		if s.GuidedCut <= s.RandomCut {
			t.Fatalf("%s/%s: guided cut %d edges, random %d — guided must be strictly better",
				s.Design, s.Workload, s.GuidedCut, s.RandomCut)
		}
		if s.GuidedPoints > s.RandomPoints {
			t.Fatalf("%s/%s: guided used %d points vs random %d — budgets must match",
				s.Design, s.Workload, s.GuidedPoints, s.RandomPoints)
		}
	}
	if DescribeCoverage(stats) == "" {
		t.Fatal("DescribeCoverage rendered nothing")
	}
}

// TestGuidedCellsRunClean: guided cells are ordinary cells — the full
// oracle set passes on them, and the fault/reboot axes ride along
// exactly as in the random matrix.
func TestGuidedCellsRunClean(t *testing.T) {
	o := MatrixOpts{
		Designs: []string{"ccnvm", "sc"}, Workloads: []string{"hot"},
		Attacks: []string{"none", "spoof"}, Seeds: 1, Ops: 120, CrashPts: 2,
		FaultSeeds: 2,
	}
	cells, _, err := EnumerateGuidedCells(o)
	if err != nil {
		t.Fatal(err)
	}
	faulty := 0
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			t.Fatalf("guided cell %s invalid: %v", c, err)
		}
		if c.Faulty() {
			faulty++
		}
	}
	if want := len(o.Designs) * 2; faulty != want {
		t.Fatalf("fault cells = %d, want %d", faulty, want)
	}
	sum := RunMatrix(context.Background(), DefaultRunner(), cells, 0, nil)
	if sum.Failed() {
		t.Fatalf("guided cells failed the oracles: %v", sum.Failures[0])
	}
}

// TestBudgetExcludesRefusedCells pins the -budget accounting fix: cells
// the harness refuses (reboot loops on tamper-on-crash designs) no
// longer consume budget, so a budgeted sweep buys that many *executed*
// cells; unbudgeted enumeration keeps the historical shape.
func TestBudgetExcludesRefusedCells(t *testing.T) {
	o := MatrixOpts{
		Designs: []string{"wocc", "ccnvm"}, Workloads: []string{"hot"},
		Attacks: []string{"none"}, Seeds: 1, Ops: 120, CrashPts: 1,
		Reboots: 2,
	}
	full := EnumerateCells(o)
	refused := 0
	for _, c := range full {
		if c.RefusalReason() != "" {
			refused++
		}
	}
	// wocc contributes len(RebootEvery) faultless + as many faulty
	// reboot cells, all refused (its recovery flags tamper on every
	// crash, so the reboot loop never runs).
	if want := 2 * 3; refused != want {
		t.Fatalf("refused cells in the full matrix = %d, want %d", refused, want)
	}

	o.Budget = len(full) - refused - 1
	sampled := EnumerateCells(o)
	if len(sampled) != o.Budget {
		t.Fatalf("budgeted enumeration returned %d cells, want %d", len(sampled), o.Budget)
	}
	for _, c := range sampled {
		if reason := c.RefusalReason(); reason != "" {
			t.Fatalf("budgeted sweep wasted a cell on %s (%s)", c, reason)
		}
	}
}

// TestReorderPersistSelfTest is the ordering-sabotage self-test: on the
// pinned slice, guided mode catches the injected reorder-persist bug,
// the failure shrinks to a replayable repro that still fails under the
// sabotage and passes under real recovery — while the evenly spaced
// matrix of the SAME slice at the SAME cell budget misses the bug
// entirely.
func TestReorderPersistSelfTest(t *testing.T) {
	opts := SabotageMatrixOpts()
	br, err := BrokenRunner("reorder-persist")
	if err != nil {
		t.Fatal(err)
	}

	randomCells := EnumerateCells(opts)
	guidedCells, stats, err := EnumerateGuidedCells(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(guidedCells) > len(randomCells) || len(guidedCells) == 0 {
		t.Fatalf("cell budgets: guided %d, random %d — guided must not exceed random",
			len(guidedCells), len(randomCells))
	}
	if len(stats) != 1 || stats[0].GuidedCut <= stats[0].RandomCut {
		t.Fatalf("pinned slice coverage must favor guided: %+v", stats)
	}

	// Random placement at the same budget sails past the injected bug.
	if sum := RunMatrix(context.Background(), br, randomCells, 0, nil); sum.Failed() {
		t.Fatalf("evenly spaced points caught the sabotage (%v) — the pinned window drifted; re-tune SabotageMatrixOpts", sum.Failures[0])
	}

	// Guided placement cuts the victim's persist edge and catches it.
	sum := RunMatrix(context.Background(), br, guidedCells, 0, nil)
	if !sum.Failed() {
		t.Fatalf("guided mode missed the reorder-persist bug over %d cells", sum.Cells)
	}
	f := sum.Failures[0]
	if f.ShrinkRuns == 0 {
		t.Fatalf("failure was not shrunk: %+v", f)
	}

	// The shrunk repro replays: same oracle under the sabotage, clean
	// under the real controller.
	spec := strings.TrimSuffix(strings.TrimPrefix(f.Repro, "go run ./cmd/ccnvm-torture -repro '"), "'")
	cell, err := ParseCell(spec)
	if err != nil {
		t.Fatalf("repro spec %q does not parse: %v", f.Repro, err)
	}
	again := br.RunCell(cell)
	if again == nil {
		t.Fatalf("minimized repro %s no longer fails under the sabotage", f.Repro)
	}
	if again.Oracle != f.Oracle {
		t.Fatalf("repro fails oracle %s, matrix reported %s", again.Oracle, f.Oracle)
	}
	if g := DefaultRunner().RunCell(cell); g != nil {
		t.Fatalf("minimized cell fails real recovery too: %v", g)
	}
	t.Logf("reorder-persist caught by %q, shrunk in %d runs: %s", f.Oracle, f.ShrinkRuns, f.Repro)
}
