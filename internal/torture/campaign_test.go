package torture

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyCampaignOpts is the fixed-seed slice the durability-report golden
// test runs: small enough to finish in seconds, wide enough to populate
// every non-sabotage behavior class (spoof for tampered-caught, a
// counter rewind inside osiris's replay window for healed, media faults
// for lost-but-detected).
func tinyCampaignOpts() MatrixOpts {
	return MatrixOpts{
		Designs:    []string{"ccnvm", "osiris", "wocc"},
		Workloads:  []string{"hot"},
		Attacks:    []string{"none", "spoof", "counter-replay"},
		Seeds:      1,
		Ops:        120,
		CrashPts:   2,
		FaultSeeds: 2,
	}
}

// TestCampaignClassesComplete: every campaign cell lands in exactly one
// class, the census sums to the cell count, classes appear in fixed
// order, and the slice populates the non-sabotage classes.
func TestCampaignClassesComplete(t *testing.T) {
	res, err := RunCampaign(context.Background(), tinyCampaignOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != len(Classes()) {
		t.Fatalf("census has %d classes, want %d", len(res.Classes), len(Classes()))
	}
	total := 0
	for i, cs := range res.Classes {
		if cs.Class != Classes()[i] {
			t.Fatalf("class %d is %s, want %s", i, cs.Class, Classes()[i])
		}
		total += cs.Cells
		if cs.Cells > 0 && cs.Exemplar == nil {
			t.Fatalf("class %s has %d cells but no exemplar", cs.Class, cs.Cells)
		}
		if cs.Exemplar != nil && !strings.Contains(cs.Exemplar.Repro, cs.Exemplar.Cell.String()) {
			t.Fatalf("class %s exemplar repro %q does not replay its cell", cs.Class, cs.Exemplar.Repro)
		}
	}
	if total != res.Cells {
		t.Fatalf("census sums to %d cells, campaign ran %d", total, res.Cells)
	}
	for _, cl := range []Class{ClassClean, ClassHealed, ClassLostDetected, ClassTamperCaught} {
		found := false
		for _, cs := range res.Classes {
			if cs.Class == cl && cs.Cells > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("class %s unobserved on a slice chosen to populate it", cl)
		}
	}
	if !res.Healthy() {
		t.Fatalf("campaign unhealthy: sabotage=%+v", res.Sabotage)
	}
}

// TestCampaignExemplarExitCodes: an exemplar's advertised exit code is
// the truth — class cells replay cleanly under the default runner, and
// the sabotage repro fails under its break mode with the same oracle.
func TestCampaignExemplarExitCodes(t *testing.T) {
	res, err := RunCampaign(context.Background(), tinyCampaignOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r := DefaultRunner()
	for _, cs := range res.Classes {
		if cs.Exemplar == nil || cs.Class == ClassOracleFailure {
			continue
		}
		if f := r.RunCell(cs.Exemplar.Cell); f != nil {
			t.Fatalf("class %s exemplar %s fails its own repro: %v", cs.Class, cs.Exemplar.Cell, f)
		}
	}
	sab := res.Sabotage
	if !sab.Caught || !sab.RandomMiss || sab.ExitCode != 1 {
		t.Fatalf("sabotage section not as designed: %+v", sab)
	}
	spec := strings.TrimSuffix(strings.TrimPrefix(sab.Repro,
		"go run ./cmd/ccnvm-torture -break reorder-persist -repro '"), "'")
	cell, err := ParseCell(spec)
	if err != nil {
		t.Fatalf("sabotage repro %q does not parse: %v", sab.Repro, err)
	}
	br, err := BrokenRunner(sab.Mode)
	if err != nil {
		t.Fatal(err)
	}
	f := br.RunCell(cell)
	if f == nil || f.Oracle != sab.Oracle {
		t.Fatalf("sabotage repro does not reproduce oracle %s: %v", sab.Oracle, f)
	}
}

// TestDurabilityReportGolden pins the generated report for the tiny
// fixed-seed campaign: markdown and JSON artifact must regenerate
// byte-identically. Regenerate after a deliberate change with
//
//	go test ./internal/torture/ -run TestDurabilityReportGolden -golden.update
func TestDurabilityReportGolden(t *testing.T) {
	res, err := RunCampaign(context.Background(), tinyCampaignOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	md := res.RenderMarkdown("durability.golden.json")
	js, err := res.RenderJSON()
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []struct {
		name string
		got  []byte
	}{
		{"durability.golden.md", md},
		{"durability.golden.json", js},
	} {
		golden := filepath.Join("testdata", g.name)
		if *updateGolden {
			if err := os.WriteFile(golden, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (regenerate with -golden.update)", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted from the golden file:\ngot:\n%s", g.name, g.got)
		}
	}

	// Regeneration determinism: a second run renders identical bytes.
	res2, err := RunCampaign(context.Background(), tinyCampaignOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(md, res2.RenderMarkdown("durability.golden.json")) {
		t.Fatal("campaign markdown is not deterministic across runs")
	}
}
