package torture

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("golden.update", false, "rewrite golden files")

// TestJSONSummaryGolden pins the machine-readable schema of
// `ccnvm-torture -json`: field names, omitempty behaviour for the fault
// and interruption dimensions, and the exact indented encoding the CLI
// emits. Consumers parse this output; an accidental rename or a fault
// field leaking into faultless cells is a breaking change this test
// catches. Regenerate after a deliberate schema change with
//
//	go test ./internal/torture/ -run TestJSONSummaryGolden -golden.update
func TestJSONSummaryGolden(t *testing.T) {
	sum := Summary{
		Cells: 3,
		Failures: []MatrixFailure{
			{
				// A faultless attack cell: none of the omitempty fault
				// fields may appear in its encoding.
				Failure: Failure{
					Cell:   Cell{Design: "ccnvm", Workload: "hot", Seed: 3, Ops: 160, CrashAt: 80, Attack: "spoof", N: 4},
					Oracle: "tamper-detected",
					Detail: "spoofed data line accepted as authentic",
				},
				Repro:      "go run ./cmd/ccnvm-torture -repro 'design=ccnvm,workload=hot,seed=3,ops=160,crash=80,attack=spoof,n=4,m=0'",
				ShrinkRuns: 12,
			},
			{
				// A media-fault cell: every fault dimension present.
				Failure: Failure{
					Cell: Cell{
						Design: "sc", Workload: "stream", Seed: 311, Ops: 47, CrashAt: 17, Attack: "none",
						FaultSeed: -245, Torn: true, ADRBudget: 1, WeakPct: 33, Stuck: 3, Spares: 2,
					},
					Oracle: "torn-write-detected",
					Detail: "post-recovery tree mismatches the recovered root",
				},
				Repro:      "go run ./cmd/ccnvm-torture -repro 'design=sc,workload=stream,seed=311,ops=47,crash=17,attack=none,n=0,m=0,fseed=-245,torn=1,adr=1,weak=33,stuck=3,spares=2'",
				ShrinkRuns: 30,
			},
		},
		Interrupted: true,
		Skipped:     1,
		// A guided run stamps its mode and the per-row edge-coverage
		// table; both are omitempty so the historical random-matrix
		// encoding above this point is unchanged.
		Mode: "guided",
		Coverage: []CoverageStat{
			{
				Design: "ccnvm", Workload: "hot", Traces: 2,
				EdgesTotal: 310, EdgesCuttable: 290,
				GuidedPoints: 4, GuidedCut: 212,
				RandomPoints: 4, RandomCut: 118,
			},
		},
		// A spare-carrying matrix stamps the outcome classification; all
		// four counters are omitempty, so summaries without finite-spare
		// cells keep the historical encoding.
		SpareCells: 4, SpareHealed: 2, SpareLost: 1, SpareRefused: 1,
	}

	// Encode exactly as cmd/ccnvm-torture does.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "summary.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -golden.update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json schema drifted from the golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The golden summary must round-trip: a consumer decoding the file
	// sees the same values the CLI encoded.
	var back Summary
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden file does not decode: %v", err)
	}
	if back.Cells != sum.Cells || back.Skipped != sum.Skipped || !back.Interrupted ||
		len(back.Failures) != len(sum.Failures) ||
		back.Failures[1].Cell != sum.Failures[1].Cell ||
		back.Mode != sum.Mode || len(back.Coverage) != 1 || back.Coverage[0] != sum.Coverage[0] ||
		back.SpareCells != sum.SpareCells || back.SpareHealed != sum.SpareHealed ||
		back.SpareLost != sum.SpareLost || back.SpareRefused != sum.SpareRefused {
		t.Fatal("golden summary does not round-trip")
	}
}
